//! Integration tests for the extension features: classical detectors vs
//! the paper's threat model, PGD, sensor faults, and monitor deployment.

use cpsmon::attack::{Fgsm, GaussianNoise, Pgd};
use cpsmon::core::detectors::{Cusum, InvariantRange};
use cpsmon::core::features::FEATURES_PER_STEP;
use cpsmon::core::{robustness_error, DatasetBuilder, LabeledDataset, MonitorKind, TrainConfig};
use cpsmon::nn::GradModel;
use cpsmon::sim::sensor::{CgmFault, CgmFaultKind};
use cpsmon::sim::{CampaignConfig, SimulatorKind};

fn dataset() -> LabeledDataset {
    let traces = CampaignConfig::new(SimulatorKind::Glucosym)
        .patients(2)
        .runs_per_patient(3)
        .steps(144)
        .fault_ratio(0.6)
        .seed(201)
        .run();
    DatasetBuilder::new()
        .build(&traces)
        .expect("usable dataset")
}

fn quick_config() -> TrainConfig {
    TrainConfig {
        epochs: 8,
        lr: 2e-3,
        mlp_hidden: vec![48, 24],
        lstm_hidden: vec![24, 12],
        ..TrainConfig::default()
    }
}

/// Reconstructs per-trace raw BG streams from normalized windows.
fn bg_streams(ds: &LabeledDataset, x: &cpsmon::nn::Matrix) -> Vec<Vec<f64>> {
    let raw = ds.normalizer.inverse(x);
    let col = raw.cols() - FEATURES_PER_STEP;
    ds.test
        .samples_by_trace()
        .into_iter()
        .map(|(_, idxs)| idxs.into_iter().map(|i| raw.get(i, col)).collect())
        .collect()
}

#[test]
fn fgsm_evades_classical_detectors() {
    // The paper's §III threat-model claim, at the budget where it holds
    // unconditionally in our measurements (ε = 0.1; at ε = 0.2 the
    // rate-of-change invariant starts to catch some high-variance traces —
    // see the detector_evasion experiment).
    let ds = dataset();
    let monitor = MonitorKind::Mlp.train(&ds, &quick_config()).unwrap();
    let model = monitor.as_grad_model().unwrap();
    let adv = Fgsm::new(0.1).attack(model, &ds.test.x, &ds.test.labels);
    let dbg_col = ds.feature_dim() - FEATURES_PER_STEP + 2;
    // Meal-tolerant tuning (see the detector_evasion experiment).
    let cusum_proto = Cusum::new(
        ds.normalizer.mean()[dbg_col],
        ds.normalizer.std()[dbg_col],
        2.5,
        10.0,
    );
    let inv = InvariantRange::cgm();
    let clean_streams = bg_streams(&ds, &ds.test.x);
    let adv_streams = bg_streams(&ds, &adv);
    for (clean, attacked) in clean_streams.iter().zip(&adv_streams) {
        let deltas = |s: &[f64]| s.windows(2).map(|w| w[1] - w[0]).collect::<Vec<_>>();
        let mut cusum = cusum_proto.clone();
        let clean_flagged = cusum.detects(&deltas(clean)) || inv.detects(clean);
        let mut cusum = cusum_proto.clone();
        let adv_flagged = cusum.detects(&deltas(attacked)) || inv.detects(attacked);
        // The attack must not make a previously-clean trace detectable.
        assert!(
            !adv_flagged || clean_flagged,
            "ε=0.1 FGSM made a clean trace detectable"
        );
    }
}

#[test]
fn large_gaussian_noise_is_detectable_but_small_is_not() {
    let ds = dataset();
    let dbg_col = ds.feature_dim() - FEATURES_PER_STEP + 2;
    // Meal-tolerant tuning (see the detector_evasion experiment).
    let cusum_proto = Cusum::new(
        ds.normalizer.mean()[dbg_col],
        ds.normalizer.std()[dbg_col],
        2.5,
        10.0,
    );
    let count_flagged = |x: &cpsmon::nn::Matrix| {
        bg_streams(&ds, x)
            .iter()
            .filter(|s| {
                let deltas: Vec<f64> = s.windows(2).map(|w| w[1] - w[0]).collect();
                cusum_proto.clone().detects(&deltas)
            })
            .count()
    };
    let small = count_flagged(&GaussianNoise::new(0.1).apply(&ds.test.x, 5));
    let huge = count_flagged(&GaussianNoise::new(3.0).apply(&ds.test.x, 5));
    assert!(
        huge >= small,
        "detector should flag more at 3·std ({huge}) than at 0.1·std ({small})"
    );
    assert!(huge > 0, "3·std noise should trip the CUSUM somewhere");
}

#[test]
fn pgd_dominates_fgsm_on_trained_monitor() {
    let ds = dataset();
    let monitor = MonitorKind::Mlp.train(&ds, &quick_config()).unwrap();
    let model = monitor.as_grad_model().unwrap();
    let clean = monitor.predict(&ds.test);
    let eps = 0.2;
    let fgsm_err = {
        let adv = Fgsm::new(eps).attack(model, &ds.test.x, &ds.test.labels);
        robustness_error(&clean, &monitor.predict_x(&adv))
    };
    let pgd_err = {
        let adv = Pgd::standard(eps).attack(model, &ds.test.x, &ds.test.labels);
        robustness_error(&clean, &monitor.predict_x(&adv))
    };
    assert!(
        pgd_err >= fgsm_err * 0.9,
        "PGD ({pgd_err}) should be at least as strong as FGSM ({fgsm_err})"
    );
}

#[test]
fn stuck_sensor_breaks_closed_loop_regulation() {
    use cpsmon::sim::glucosym::GlucosymPatient;
    use cpsmon::sim::meal::MealSchedule;
    use cpsmon::sim::openaps::OpenApsController;
    use cpsmon::sim::pump::InsulinPump;
    use cpsmon::sim::{Cgm, ClosedLoop};
    use cpsmon_nn::rng::SmallRng;

    let run = |fault: Option<CgmFault>| {
        let mut rng = SmallRng::new(77);
        let meals = MealSchedule::generate(144, &mut rng);
        let cgm = match fault {
            Some(f) => Cgm::typical(rng.fork(1)).with_fault(f),
            None => Cgm::typical(rng.fork(1)),
        };
        ClosedLoop::new(
            GlucosymPatient::from_profile(0, 42),
            OpenApsController::new(),
            InsulinPump::healthy(),
            cgm,
            meals,
        )
        .run(144, "glucosym", 0, 0)
    };
    let healthy = run(None);
    // Sensor stuck at a pre-meal reading right before breakfast: the
    // controller under-doses the meal.
    let faulty = run(Some(CgmFault {
        kind: CgmFaultKind::StuckValue,
        start_step: 85,
        duration_steps: 40,
    }));
    let max_h = healthy
        .bg_true()
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let max_f = faulty
        .bg_true()
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        max_f > max_h,
        "stuck sensor should worsen the post-meal excursion ({max_f} vs {max_h})"
    );
}

#[test]
fn monitor_networks_roundtrip_through_serialization() {
    use cpsmon::core::monitor::MonitorModel;
    use std::io::BufReader;
    let ds = dataset();
    for kind in [MonitorKind::Mlp, MonitorKind::Lstm] {
        let monitor = kind.train(&ds, &quick_config()).unwrap();
        let preds = monitor.predict(&ds.test);
        let roundtrip_preds = match &monitor.model {
            MonitorModel::Mlp(net) => {
                let mut buf = Vec::new();
                net.save(&mut buf).unwrap();
                cpsmon::nn::MlpNet::load(&mut BufReader::new(buf.as_slice()))
                    .unwrap()
                    .predict_labels(&ds.test.x)
            }
            MonitorModel::Lstm(net) => {
                let mut buf = Vec::new();
                net.save(&mut buf).unwrap();
                cpsmon::nn::LstmNet::load(&mut BufReader::new(buf.as_slice()))
                    .unwrap()
                    .predict_labels(&ds.test.x)
            }
            MonitorModel::Rule(_) => unreachable!(),
        };
        assert_eq!(preds, roundtrip_preds, "{kind}");
    }
}
