//! Mitigation-pipeline property suite.
//!
//! Three contracts from the stage-pipeline refactor (DESIGN.md §14):
//!
//! 1. **Zero-mitigation bit-identity** — a [`PipelineSession`] with no
//!    mitigator, and a fully armed one (guard + mitigator), emit verdicts
//!    whose classification fields (`step`, `label`, `proba` bits) are
//!    identical to the bare [`MonitorSession`] on clean traces — for every
//!    monitor of Table III and both simulators, solo and pooled. The
//!    mitigation stage is pure post-processing.
//! 2. **Closed-loop hazard aversion** — for a pinned campaign member whose
//!    baseline run has a hypoglycemia episode driven by commanded insulin,
//!    the mitigated re-run suspends delivery and erases the episode; the
//!    two traces are bit-identical up to the first applied action and
//!    diverge only after it.
//! 3. **Determinism** — mitigated runs are a pure function of the member
//!    and the monitor: bit-identical traces, verdicts, and action logs
//!    across repeated runs and worker thread counts.

use cpsmon::core::guard::{GuardPolicy, HealthState};
use cpsmon::core::{
    DatasetBuilder, LabeledDataset, MitigatedObserver, Mitigator, MonitorKind, MonitorSession,
    PipelineSession, SessionPool, TrainConfig,
};
use cpsmon::nn::par::ThreadsGuard;
use cpsmon::sim::{CampaignConfig, HazardConfig, SimTrace, SimulatorKind};
use cpsmon::stl::RuleMonitor;

fn campaign(kind: SimulatorKind, seed: u64) -> Vec<SimTrace> {
    CampaignConfig::new(kind)
        .patients(2)
        .runs_per_patient(2)
        .steps(96)
        .fault_ratio(0.5)
        .seed(seed)
        .run()
}

fn dataset_for(kind: SimulatorKind, seed: u64) -> (Vec<SimTrace>, LabeledDataset) {
    let traces = campaign(kind, seed);
    let ds = DatasetBuilder::new()
        .build(&traces)
        .expect("campaign yields a usable dataset");
    (traces, ds)
}

fn hypo_steps(trace: &SimTrace, hc: &HazardConfig) -> usize {
    trace
        .records()
        .iter()
        .filter(|r| r.bg_true < hc.hypo)
        .count()
}

/// Contract 1: for every monitor kind on both simulators, the bare
/// pipeline wrapper and the fully armed pipeline (guard + mitigator)
/// reproduce the bare [`MonitorSession`]'s classification bit for bit on
/// clean traces — and the pooled executor armed with guards and a
/// mitigator matches the unarmed pool the same way.
#[test]
fn zero_mitigation_sessions_and_pools_bit_identical_everywhere() {
    for (kind, seed) in [
        (SimulatorKind::Glucosym, 311),
        (SimulatorKind::T1ds2013, 313),
    ] {
        let (traces, ds) = dataset_for(kind, seed);
        for mk in MonitorKind::ALL {
            let monitor = mk
                .train(&ds, &TrainConfig::quick_test())
                .expect("training succeeds");
            // Solo: bare core vs. bare pipeline vs. armed pipeline.
            let mut plain = MonitorSession::for_dataset(&monitor, &ds);
            let mut pipe = PipelineSession::new(MonitorSession::for_dataset(&monitor, &ds));
            let mut armed = PipelineSession::new(MonitorSession::for_dataset(&monitor, &ds))
                .with_guard(GuardPolicy::aps(), RuleMonitor::new(ds.rules))
                .with_mitigator(Mitigator::aps());
            for trace in &traces {
                plain.reset();
                pipe.reset();
                armed.reset();
                for (t, rec) in trace.records().iter().enumerate() {
                    match (plain.step(rec), pipe.step(rec), armed.step(rec)) {
                        (Some(a), Some(b), Some(c)) => {
                            assert_eq!(a.step, b.verdict.step, "{kind} {mk} step {t}");
                            assert_eq!(a.label, b.verdict.label, "{kind} {mk} step {t}");
                            assert_eq!(
                                a.proba.to_bits(),
                                b.verdict.proba.to_bits(),
                                "{kind} {mk} step {t}: bare pipeline proba bits"
                            );
                            assert!(b.verdict.action.is_none(), "no mitigator, no action");
                            assert_eq!(b.health, HealthState::Healthy);
                            // The armed pipeline may annotate an action but
                            // must never touch the classification.
                            assert_eq!(a.step, c.verdict.step);
                            assert_eq!(a.label, c.verdict.label, "{kind} {mk} step {t}");
                            assert_eq!(
                                a.proba.to_bits(),
                                c.verdict.proba.to_bits(),
                                "{kind} {mk} step {t}: armed pipeline proba bits"
                            );
                        }
                        (None, None, None) => {}
                        other => panic!("readiness mismatch {kind} {mk} step {t}: {other:?}"),
                    }
                }
            }
            // Pooled: one slot per trace, lockstep; armed pool (guards +
            // mitigator) vs. unarmed pool.
            let n = traces.len();
            let mut pool = SessionPool::for_dataset(&monitor, &ds, n);
            let mut pool_armed = SessionPool::for_dataset(&monitor, &ds, n)
                .with_guards(GuardPolicy::aps(), RuleMonitor::new(ds.rules))
                .with_mitigator(Mitigator::aps());
            for t in 0..traces[0].len() {
                for (i, trace) in traces.iter().enumerate() {
                    pool.push(i, &trace.records()[t]);
                    pool_armed.push(i, &trace.records()[t]);
                }
                let plain = pool.drain_ready();
                let armed = pool_armed.drain_ready_guarded();
                for i in 0..n {
                    match (&plain[i], &armed[i]) {
                        (Some(a), Some(b)) => {
                            assert_eq!(a.step, b.verdict.step, "{kind} {mk} slot {i} step {t}");
                            assert_eq!(a.label, b.verdict.label, "{kind} {mk} slot {i} step {t}");
                            assert_eq!(
                                a.proba.to_bits(),
                                b.verdict.proba.to_bits(),
                                "{kind} {mk} slot {i} step {t}: pooled proba bits"
                            );
                            assert_eq!(b.health, HealthState::Healthy);
                        }
                        (None, None) => {}
                        other => {
                            panic!(
                                "pool readiness mismatch {kind} {mk} slot {i} step {t}: {other:?}"
                            )
                        }
                    }
                }
            }
        }
    }
}

/// Contract 2, pinned scenario: T1DS2013 campaign seed 1, patient 3 run 1
/// carries a StuckRate pump fault whose baseline run spends 29 steps under
/// 70 mg/dL. The rule-monitor pipeline suspends basal ahead of the crash
/// and the mitigated run never goes hypoglycemic at all. The monitor only
/// *reads* the trace until its first action is applied, so both runs are
/// bit-identical up to that step and diverge after it.
#[test]
fn closed_loop_mitigation_averts_pinned_hazard() {
    let cfg = CampaignConfig::new(SimulatorKind::T1ds2013)
        .patients(4)
        .runs_per_patient(3)
        .steps(288)
        .fault_ratio(0.5)
        .seed(1);
    let baseline = cfg.member(3, 1).run();
    let hc = HazardConfig::default();
    let base_hypo = hypo_steps(&baseline, &hc);
    assert_eq!(base_hypo, 29, "pinned baseline hypoglycemic exposure");
    assert!(baseline.fault.is_some(), "pinned member is fault-injected");

    // The rule monitor classifies from the raw window context, so any
    // training corpus yields the same deployed behavior.
    let (_, ds) = dataset_for(SimulatorKind::T1ds2013, 313);
    let monitor = MonitorKind::RuleBased
        .train(&ds, &TrainConfig::quick_test())
        .expect("training succeeds");
    let mut session = PipelineSession::new(MonitorSession::for_dataset(&monitor, &ds))
        .with_guard(GuardPolicy::aps(), RuleMonitor::new(ds.rules))
        .with_mitigator(Mitigator::aps());
    let mut observer = MitigatedObserver::new(&mut session, |_, r| *r);
    let mitigated = cfg.member(3, 1).run_observed(&mut observer);
    let actions = observer.actions().to_vec();

    assert!(!actions.is_empty(), "the alarm must act");
    assert_eq!(
        hypo_steps(&mitigated, &hc),
        0,
        "pinned scenario: the episode is fully averted"
    );
    assert!(
        hc.episodes(&mitigated).iter().all(|e| !e.hypo),
        "no hypoglycemia episodes remain"
    );

    // Bit-identity before the first action (commands apply on the *next*
    // control step), divergence strictly after it.
    let first_action = actions[0].0;
    let diverge = baseline
        .records()
        .iter()
        .zip(mitigated.records())
        .position(|(a, b)| a.bg_true.to_bits() != b.bg_true.to_bits())
        .expect("an applied suspension must change the trajectory");
    assert!(
        diverge > first_action,
        "divergence at {diverge} must follow the first action at {first_action}"
    );
    for (t, (a, b)) in baseline
        .records()
        .iter()
        .zip(mitigated.records())
        .take(first_action + 1)
        .enumerate()
    {
        assert_eq!(
            a, b,
            "step {t}: records must be bit-identical before the first action"
        );
    }
}

/// Contract 3: a mitigated member re-run is bit-identical — trace records,
/// verdict classification bits, and the action log — across repeated runs
/// and worker thread counts, here with the batched-matmul MLP monitor
/// whose forward pass is the thread-sensitive part.
#[test]
fn mitigated_runs_deterministic_across_threads() {
    let (_, ds) = dataset_for(SimulatorKind::T1ds2013, 313);
    let monitor = MonitorKind::Mlp
        .train(&ds, &TrainConfig::quick_test())
        .expect("training succeeds");
    let cfg = CampaignConfig::new(SimulatorKind::T1ds2013)
        .patients(2)
        .runs_per_patient(2)
        .steps(96)
        .fault_ratio(0.5)
        .seed(313);

    let run_once = || {
        let mut session = PipelineSession::new(MonitorSession::for_dataset(&monitor, &ds))
            .with_guard(GuardPolicy::aps(), RuleMonitor::new(ds.rules))
            .with_mitigator(Mitigator::aps());
        let mut observer = MitigatedObserver::new(&mut session, |_, r| *r);
        let trace = cfg.member(1, 1).run_observed(&mut observer);
        let (verdicts, actions) = observer.into_parts();
        let verdict_bits: Vec<(usize, usize, u64)> = verdicts
            .iter()
            .map(|(t, v)| (*t, v.verdict.label, v.verdict.proba.to_bits()))
            .collect();
        (trace, verdict_bits, actions)
    };

    let one = {
        let _t = ThreadsGuard::set(1);
        run_once()
    };
    let four = {
        let _t = ThreadsGuard::set(4);
        run_once()
    };
    let rerun = run_once();
    for (label, other) in [("threads", &four), ("rerun", &rerun)] {
        assert_eq!(one.0, other.0, "mitigated trace differs under {label}");
        assert_eq!(one.1, other.1, "verdict bits differ under {label}");
        assert_eq!(one.2, other.2, "action log differs under {label}");
    }
}
