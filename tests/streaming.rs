//! Streaming-equivalence property suite: online [`MonitorSession`] /
//! [`SessionPool`] verdicts must be **bit-identical** to the batch
//! prediction path, for every monitor of Table III and both simulators —
//! plus round-trip persistence checks for trained networks.

use std::io::BufReader;

use cpsmon::core::monitor::MonitorModel;
use cpsmon::core::{
    DatasetBuilder, LabeledDataset, MonitorKind, MonitorSession, SessionPool, TrainConfig,
};
use cpsmon::nn::{GradModel, LstmNet, Matrix, MlpNet};
use cpsmon::sim::meal::MealSchedule;
use cpsmon::sim::pump::InsulinPump;
use cpsmon::sim::{CampaignConfig, Cgm, ClosedLoop, SimTrace, SimulatorKind, StepRecord};

fn campaign(kind: SimulatorKind, seed: u64) -> Vec<SimTrace> {
    CampaignConfig::new(kind)
        .patients(2)
        .runs_per_patient(2)
        .steps(96)
        .fault_ratio(0.5)
        .seed(seed)
        .run()
}

fn dataset_for(kind: SimulatorKind, seed: u64) -> (Vec<SimTrace>, LabeledDataset) {
    let traces = campaign(kind, seed);
    let ds = DatasetBuilder::new()
        .build(&traces)
        .expect("campaign yields a usable dataset");
    (traces, ds)
}

/// Batch ground truth for one trace: normalized windows, window-end steps,
/// and rule contexts, built exactly as the dataset pipeline does.
fn batch_windows(
    ds: &LabeledDataset,
    trace: &SimTrace,
) -> (Matrix, Vec<usize>, Vec<cpsmon::stl::ApsContext>) {
    let labels = ds.hazard_config.labels(trace);
    let windows = ds.feature_config.windows(trace, &labels, 0);
    let rows: Vec<&[f64]> = windows.iter().map(|w| w.features.as_slice()).collect();
    let x = ds.normalizer.transform(&Matrix::from_rows(&rows));
    let steps = windows.iter().map(|w| w.step).collect();
    let contexts = windows.iter().map(|w| w.context).collect();
    (x, steps, contexts)
}

/// The tentpole contract: for every monitor kind and both simulators,
/// replaying a trace record-by-record through a [`MonitorSession`] yields
/// the same verdict sequence — labels always, probabilities to the bit for
/// the ML monitors — as the batch pipeline over the same windows.
#[test]
fn streaming_verdicts_bit_identical_to_batch_everywhere() {
    for (kind, seed) in [
        (SimulatorKind::Glucosym, 201),
        (SimulatorKind::T1ds2013, 203),
    ] {
        let (traces, ds) = dataset_for(kind, seed);
        for mk in MonitorKind::ALL {
            let monitor = mk.train(&ds, &TrainConfig::quick_test()).unwrap();
            for trace in &traces {
                let (x, steps, contexts) = batch_windows(&ds, trace);
                let batch_labels: Vec<usize> = match (&monitor.model, monitor.as_grad_model()) {
                    (_, Some(model)) => model.predict_labels(&x),
                    (MonitorModel::Rule(m), None) => {
                        contexts.iter().map(|c| m.predict(c)).collect()
                    }
                    _ => unreachable!("non-rule monitors are gradient models"),
                };
                let batch_probs = monitor.as_grad_model().map(|m| m.predict_proba(&x));
                let mut session = MonitorSession::for_dataset(&monitor, &ds);
                let mut k = 0;
                for rec in trace.records() {
                    if let Some(v) = session.step(rec) {
                        assert_eq!(v.step, steps[k], "{kind}/{mk}: window-end step");
                        assert_eq!(v.label, batch_labels[k], "{kind}/{mk}: label at {k}");
                        if let Some(p) = &batch_probs {
                            assert_eq!(v.proba, p.get(k, 1), "{kind}/{mk}: proba bits at {k}");
                        }
                        k += 1;
                    }
                }
                assert_eq!(k, steps.len(), "{kind}/{mk}: verdict count");
            }
        }
    }
}

/// Pooled serving: many sessions sharing one batched forward pass per step
/// must agree to the bit with the same sessions stepped individually.
#[test]
fn session_pool_bit_identical_to_individual_sessions() {
    let (traces, ds) = dataset_for(SimulatorKind::T1ds2013, 205);
    for mk in [MonitorKind::Mlp, MonitorKind::Lstm] {
        let monitor = mk.train(&ds, &TrainConfig::quick_test()).unwrap();
        let n = traces.len();
        let steps = traces.iter().map(SimTrace::len).min().unwrap();
        let mut pool = SessionPool::for_dataset(&monitor, &ds, n);
        let mut singles: Vec<MonitorSession<'_>> = (0..n)
            .map(|_| MonitorSession::for_dataset(&monitor, &ds))
            .collect();
        for t in 0..steps {
            let records: Vec<StepRecord> = traces.iter().map(|tr| tr.records()[t]).collect();
            let pooled = pool.step(&records);
            for (i, rec) in records.iter().enumerate() {
                match (pooled[i], singles[i].step(rec)) {
                    (Some(p), Some(s)) => {
                        assert_eq!(p.step, s.step, "{mk}: session {i} step {t}");
                        assert_eq!(p.label, s.label, "{mk}: session {i} step {t}");
                        assert_eq!(p.proba, s.proba, "{mk}: session {i} step {t} proba bits");
                    }
                    (None, None) => {}
                    other => panic!("{mk}: readiness mismatch at session {i} step {t}: {other:?}"),
                }
            }
        }
    }
}

/// Monitor-in-the-loop: a session fed live from
/// [`ClosedLoop::run_observed`] sees the same records (and so emits the
/// same verdicts) as a post-hoc replay of the finished trace, and the
/// observed run's trace is bit-identical to an unobserved run.
#[test]
fn monitor_in_the_loop_matches_post_hoc_replay() {
    let (_, ds) = dataset_for(SimulatorKind::Glucosym, 207);
    let monitor = MonitorKind::Mlp
        .train(&ds, &TrainConfig::quick_test())
        .unwrap();

    let build = || {
        let patient = cpsmon::sim::glucosym::GlucosymPatient::from_profile(0, 42);
        let controller = cpsmon::sim::openaps::OpenApsController::new();
        let mut rng = cpsmon::nn::rng::SmallRng::new(11);
        let meals = MealSchedule::generate(96, &mut rng.fork(1));
        let cgm = Cgm::typical(rng.fork(2));
        ClosedLoop::new(patient, controller, InsulinPump::healthy(), cgm, meals)
    };
    let plain = build().run(96, "glucosym", 0, 0);

    let mut live = MonitorSession::for_dataset(&monitor, &ds);
    let mut live_verdicts = Vec::new();
    let observed = build().run_observed(
        96,
        "glucosym",
        0,
        0,
        &mut |_step: usize, rec: &StepRecord| {
            if let Some(v) = live.step(rec) {
                live_verdicts.push(v);
            }
        },
    );
    assert_eq!(observed, plain, "observing must not perturb the simulation");

    let mut replay = MonitorSession::for_dataset(&monitor, &ds);
    let replay_verdicts: Vec<_> = observed
        .records()
        .iter()
        .filter_map(|rec| replay.step(rec))
        .collect();
    assert_eq!(live_verdicts.len(), replay_verdicts.len());
    for (l, r) in live_verdicts.iter().zip(&replay_verdicts) {
        assert_eq!(l.step, r.step);
        assert_eq!(l.label, r.label);
        assert_eq!(
            l.proba, r.proba,
            "live vs replay proba bits at step {}",
            l.step
        );
    }
}

/// A *trained* MLP survives a save/load round trip with bit-identical
/// predictions on the full test set.
#[test]
fn trained_mlp_roundtrips_bit_identically() {
    let (_, ds) = dataset_for(SimulatorKind::Glucosym, 209);
    let monitor = MonitorKind::MlpCustom
        .train(&ds, &TrainConfig::quick_test())
        .unwrap();
    let MonitorModel::Mlp(net) = &monitor.model else {
        panic!("MlpCustom wraps an MLP network");
    };
    let mut buf = Vec::new();
    net.save(&mut buf).unwrap();
    let loaded = MlpNet::load(&mut BufReader::new(buf.as_slice())).unwrap();
    assert_eq!(
        net.predict_proba(&ds.test.x),
        loaded.predict_proba(&ds.test.x),
        "probabilities must round-trip to the bit"
    );
    assert_eq!(
        net.predict_labels(&ds.test.x),
        loaded.predict_labels(&ds.test.x)
    );
}

/// Same round-trip guarantee for a *trained* stacked LSTM.
#[test]
fn trained_lstm_roundtrips_bit_identically() {
    let (_, ds) = dataset_for(SimulatorKind::T1ds2013, 211);
    let monitor = MonitorKind::Lstm
        .train(&ds, &TrainConfig::quick_test())
        .unwrap();
    let MonitorModel::Lstm(net) = &monitor.model else {
        panic!("Lstm wraps an LSTM network");
    };
    let mut buf = Vec::new();
    net.save(&mut buf).unwrap();
    let loaded = LstmNet::load(&mut BufReader::new(buf.as_slice())).unwrap();
    assert_eq!(
        net.predict_proba(&ds.test.x),
        loaded.predict_proba(&ds.test.x),
        "probabilities must round-trip to the bit"
    );
    assert_eq!(
        net.predict_labels(&ds.test.x),
        loaded.predict_labels(&ds.test.x)
    );
}
