//! End-to-end integration tests: simulate → label → train → attack →
//! evaluate, across both simulators and all monitor variants, at a scale
//! small enough for CI.

use cpsmon::attack::{Fgsm, GaussianNoise, SubstituteAttack};
use cpsmon::core::monitor::evaluate_predictions;
use cpsmon::core::{robustness_error, DatasetBuilder, LabeledDataset, MonitorKind, TrainConfig};
use cpsmon::sim::{CampaignConfig, SimulatorKind};

fn dataset_for(kind: SimulatorKind, seed: u64) -> LabeledDataset {
    let traces = CampaignConfig::new(kind)
        .patients(2)
        .runs_per_patient(3)
        .steps(144)
        .fault_ratio(0.6)
        .seed(seed)
        .run();
    DatasetBuilder::new()
        .build(&traces)
        .expect("campaign yields a usable dataset")
}

fn quick_config() -> TrainConfig {
    TrainConfig {
        epochs: 8,
        lr: 2e-3,
        mlp_hidden: vec![48, 24],
        lstm_hidden: vec![24, 12],
        ..TrainConfig::default()
    }
}

#[test]
fn full_pipeline_runs_on_both_simulators() {
    for kind in SimulatorKind::ALL {
        let ds = dataset_for(kind, 101);
        assert!(
            ds.train.positive_ratio() > 0.02,
            "{kind}: too few positives"
        );
        assert!(
            ds.train.positive_ratio() < 0.98,
            "{kind}: too few negatives"
        );
        for mk in MonitorKind::ALL {
            let monitor = mk.train(&ds, &quick_config()).unwrap();
            let report = monitor.evaluate(&ds.test);
            assert!(
                report.counts.total() == ds.test.len(),
                "{kind}/{mk}: metric did not cover every sample"
            );
            assert!(
                report.accuracy() > 0.4,
                "{kind}/{mk}: accuracy {}",
                report.accuracy()
            );
        }
    }
}

#[test]
fn trained_ml_monitor_beats_random_guessing() {
    let ds = dataset_for(SimulatorKind::Glucosym, 103);
    let monitor = MonitorKind::Mlp.train(&ds, &quick_config()).unwrap();
    let report = monitor.evaluate(&ds.test);
    assert!(report.accuracy() > 0.7, "accuracy {}", report.accuracy());
    assert!(report.f1() > 0.3, "F1 {}", report.f1());
}

#[test]
fn fgsm_degrades_monitor_and_respects_budget() {
    let ds = dataset_for(SimulatorKind::T1ds2013, 105);
    let monitor = MonitorKind::Mlp.train(&ds, &quick_config()).unwrap();
    let model = monitor.as_grad_model().unwrap();
    let clean_preds = monitor.predict(&ds.test);
    let adv = Fgsm::new(0.2).attack(model, &ds.test.x, &ds.test.labels);
    assert!((&adv - &ds.test.x).max_abs() <= 0.2 + 1e-12);
    let err = robustness_error(&clean_preds, &monitor.predict_x(&adv));
    assert!(err > 0.01, "white-box FGSM had no effect (error {err})");
    // F1 under attack should not exceed clean F1 by much (degradation).
    let clean_f1 = evaluate_predictions(&ds.test, &clean_preds, 6).f1();
    let adv_f1 = evaluate_predictions(&ds.test, &monitor.predict_x(&adv), 6).f1();
    assert!(
        adv_f1 <= clean_f1 + 0.05,
        "attack improved F1: {clean_f1} → {adv_f1}"
    );
}

#[test]
fn gaussian_noise_is_sensor_only_and_mild() {
    let ds = dataset_for(SimulatorKind::Glucosym, 107);
    let monitor = MonitorKind::Lstm.train(&ds, &quick_config()).unwrap();
    let clean_preds = monitor.predict(&ds.test);
    let noisy = GaussianNoise::new(0.25).apply(&ds.test.x, 1);
    let gaussian_err = robustness_error(&clean_preds, &monitor.predict_x(&noisy));
    let model = monitor.as_grad_model().unwrap();
    // Paper shape: adversarial ≫ accidental. A CI-scale LSTM can have wide
    // margins, so compare against a generous attack budget.
    let adv = Fgsm::new(0.5).attack(model, &ds.test.x, &ds.test.labels);
    let fgsm_err = robustness_error(&clean_preds, &monitor.predict_x(&adv));
    assert!(
        fgsm_err >= gaussian_err,
        "FGSM ({fgsm_err}) should beat Gaussian ({gaussian_err})"
    );
}

#[test]
fn blackbox_attack_is_weaker_than_whitebox() {
    let ds = dataset_for(SimulatorKind::T1ds2013, 109);
    let monitor = MonitorKind::Mlp.train(&ds, &quick_config()).unwrap();
    let model = monitor.as_grad_model().unwrap();
    let clean_preds = monitor.predict(&ds.test);
    let white = Fgsm::new(0.2).attack(model, &ds.test.x, &ds.test.labels);
    let white_err = robustness_error(&clean_preds, &monitor.predict_x(&white));
    let black = SubstituteAttack::new().craft(model, &ds.train.x, &ds.test.x, 0.2);
    let black_err = robustness_error(&clean_preds, &monitor.predict_x(&black));
    assert!(
        black_err <= white_err + 0.02,
        "black-box ({black_err}) unexpectedly beat white-box ({white_err})"
    );
    assert!(black_err > 0.0, "black-box attack had zero effect");
}

#[test]
fn semantic_loss_reduces_fgsm_robustness_error() {
    // The paper's central claim (RQ2). Averaged over both simulators to
    // damp small-sample noise at CI scale.
    let mut base_total = 0.0;
    let mut custom_total = 0.0;
    for (kind, seed) in [
        (SimulatorKind::Glucosym, 111),
        (SimulatorKind::T1ds2013, 113),
    ] {
        let ds = dataset_for(kind, seed);
        for (mk, acc) in [
            (MonitorKind::Mlp, &mut base_total),
            (MonitorKind::MlpCustom, &mut custom_total),
        ] {
            let monitor = mk.train(&ds, &quick_config()).unwrap();
            let model = monitor.as_grad_model().unwrap();
            let clean_preds = monitor.predict(&ds.test);
            let adv = Fgsm::new(0.1).attack(model, &ds.test.x, &ds.test.labels);
            *acc += robustness_error(&clean_preds, &monitor.predict_x(&adv));
        }
    }
    assert!(
        custom_total <= base_total * 1.10,
        "semantic loss made robustness much worse: base {base_total} vs custom {custom_total}"
    );
}

#[test]
fn rule_monitor_agrees_with_semantic_indicator() {
    // The Eq. 2 indicator and the rule-based monitor must be the same
    // function of the context.
    let ds = dataset_for(SimulatorKind::Glucosym, 115);
    let monitor = MonitorKind::RuleBased.train(&ds, &quick_config()).unwrap();
    let preds = monitor.predict(&ds.test);
    for (p, ind) in preds.iter().zip(&ds.test.indicators) {
        assert_eq!(*p as f64, *ind);
    }
}

#[test]
fn determinism_end_to_end() {
    let run = || {
        let ds = dataset_for(SimulatorKind::Glucosym, 117);
        let monitor = MonitorKind::Mlp.train(&ds, &quick_config()).unwrap();
        monitor.predict(&ds.test)
    };
    assert_eq!(run(), run());
}
