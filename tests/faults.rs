//! Fault-injection and graceful-degradation property suite.
//!
//! Three contracts from the fault subsystem:
//!
//! 1. **Zero-fault transparency** — with no faults injected, a
//!    [`GuardedSession`] emits verdicts bit-identical to an unguarded
//!    [`MonitorSession`], for every monitor kind and both simulators; the
//!    guard never flags a clean campaign record (including paper-scale
//!    campaigns with pump faults, boluses, and suspensions).
//! 2. **Degradation & recovery** — under a stuck-at or dropout campaign
//!    the session reaches `Fallback`, emits the rule monitor's verdicts,
//!    and recovers to `Healthy` after the fault clears.
//! 3. **Determinism** — injection is a pure function of
//!    `(FaultPlan, trace identity)`: bit-identical across repeated runs,
//!    trace iteration orders, and worker thread counts.

use cpsmon::core::guard::{GuardPolicy, HealthState, InputGuard};
use cpsmon::core::{
    DatasetBuilder, GuardedSession, LabeledDataset, MonitorKind, MonitorSession, TrainConfig,
};
use cpsmon::nn::par::ThreadsGuard;
use cpsmon::sim::faults::{ChannelFault, FaultModel, FaultPlan, SensorChannel};
use cpsmon::sim::{CampaignConfig, SimTrace, SimulatorKind};
use cpsmon::stl::RuleMonitor;

fn campaign(kind: SimulatorKind, seed: u64) -> Vec<SimTrace> {
    CampaignConfig::new(kind)
        .patients(2)
        .runs_per_patient(2)
        .steps(96)
        .fault_ratio(0.5)
        .seed(seed)
        .run()
}

fn dataset_for(kind: SimulatorKind, seed: u64) -> (Vec<SimTrace>, LabeledDataset) {
    let traces = campaign(kind, seed);
    let ds = DatasetBuilder::new()
        .build(&traces)
        .expect("campaign yields a usable dataset");
    (traces, ds)
}

/// NaN-safe bit view of the injectable channels of a trace.
fn channel_bits(t: &SimTrace) -> Vec<[u64; 3]> {
    t.records()
        .iter()
        .map(|r| {
            [
                r.bg_sensor.to_bits(),
                r.iob.to_bits(),
                r.delivered_rate.to_bits(),
            ]
        })
        .collect()
}

/// Contract 1, strong form: for every monitor of Table III on both
/// simulators, a guarded session over a clean trace is bit-identical to
/// the unguarded session — same readiness, steps, labels, and probability
/// bits — and reports `Healthy` with nothing imputed at every step.
#[test]
fn zero_faults_guarded_sessions_bit_identical_everywhere() {
    for (kind, seed) in [
        (SimulatorKind::Glucosym, 211),
        (SimulatorKind::T1ds2013, 213),
    ] {
        let (traces, ds) = dataset_for(kind, seed);
        for mk in MonitorKind::ALL {
            let monitor = mk
                .train(&ds, &TrainConfig::quick_test())
                .expect("training succeeds");
            let mut plain = MonitorSession::for_dataset(&monitor, &ds);
            let mut guarded = GuardedSession::for_dataset(&monitor, &ds, GuardPolicy::aps());
            for trace in &traces {
                plain.reset();
                guarded.reset();
                for (t, rec) in trace.records().iter().enumerate() {
                    match (plain.step(rec), guarded.step(rec)) {
                        (Some(a), Some(b)) => {
                            assert_eq!(
                                b.health,
                                HealthState::Healthy,
                                "{kind} {mk} trace p{}r{} step {t}",
                                trace.patient_id,
                                trace.run_id
                            );
                            assert!(!b.imputed);
                            assert_eq!(a.step, b.verdict.step);
                            assert_eq!(a.label, b.verdict.label, "{kind} {mk} step {t}");
                            assert_eq!(
                                a.proba.to_bits(),
                                b.verdict.proba.to_bits(),
                                "{kind} {mk} step {t} proba bits"
                            );
                        }
                        (None, None) => {}
                        other => panic!("readiness mismatch at {kind} {mk} step {t}: {other:?}"),
                    }
                }
            }
        }
    }
}

/// Contract 1, coverage form: the guard's validity thresholds never flag a
/// record of the registry's paper-scale campaigns (20 patients × 4 runs ×
/// 288 steps, 50% pump-fault ratio — overdoses, suspensions, boluses and
/// all). This is what makes the strong form hold at any scale.
#[test]
fn guard_never_flags_clean_paper_scale_campaigns() {
    for kind in SimulatorKind::ALL {
        let traces = CampaignConfig::new(kind)
            .patients(20)
            .runs_per_patient(4)
            .steps(288)
            .fault_ratio(0.5)
            .seed(2022)
            .run();
        let mut guard = InputGuard::new(GuardPolicy::aps());
        for trace in &traces {
            guard.reset();
            for (t, rec) in trace.records().iter().enumerate() {
                let (out, status) = guard.sanitize(rec);
                assert!(
                    !status.any_imputed(),
                    "{kind} p{}r{} step {t}: clean record flagged (bg={}, iob={}, rate={})",
                    trace.patient_id,
                    trace.run_id,
                    rec.bg_sensor,
                    rec.iob,
                    rec.delivered_rate
                );
                assert_eq!(status.health, HealthState::Healthy);
                assert_eq!(&out, rec, "sanitized record must be bit-identical");
            }
        }
    }
}

/// Drives one faulted trace through a guarded session, collecting the
/// per-step health states and checking fallback verdicts against an
/// independent rule monitor.
fn degradation_run(fault: FaultModel, start: usize, duration: usize) -> (Vec<HealthState>, bool) {
    let (traces, ds) = dataset_for(SimulatorKind::Glucosym, 217);
    let monitor = MonitorKind::Mlp
        .train(&ds, &TrainConfig::quick_test())
        .expect("training succeeds");
    let plan = FaultPlan::new(0xDE6).with(ChannelFault::new(
        SensorChannel::BgSensor,
        fault,
        start,
        duration,
    ));
    let faulted = plan.inject(&traces[0]);
    let rules = RuleMonitor::new(ds.rules);
    let mut guarded = GuardedSession::for_dataset(&monitor, &ds, GuardPolicy::aps());
    let mut states = Vec::new();
    let mut fallback_checked = false;
    for rec in faulted.records() {
        if let Some(v) = guarded.step(rec) {
            if v.health == HealthState::Fallback {
                let expect = rules.predict(&guarded.session().window().context());
                assert_eq!(v.verdict.label, expect, "fallback verdict is the rule's");
                assert_eq!(v.verdict.proba, expect as f64);
                fallback_checked = true;
            }
            states.push(v.health);
        }
    }
    (states, fallback_checked)
}

/// Contract 2: a long stuck-at window exhausts the staleness budget
/// (Degraded → Fallback with rule verdicts), and the session re-arms to
/// Healthy once clean samples resume.
#[test]
fn stuck_at_campaign_degrades_to_fallback_and_recovers() {
    let (states, fallback_checked) = degradation_run(FaultModel::StuckAt { duration: 40 }, 20, 40);
    assert!(
        states.contains(&HealthState::Degraded),
        "freeze detection must degrade first: {states:?}"
    );
    assert!(states.contains(&HealthState::Fallback), "{states:?}");
    assert!(
        fallback_checked,
        "fallback verdicts were emitted and checked"
    );
    assert_eq!(
        *states.last().unwrap(),
        HealthState::Healthy,
        "session recovers after the fault clears: {states:?}"
    );
    // Order sanity: the final Healthy run comes after the last Fallback.
    let last_fb = states.iter().rposition(|&h| h == HealthState::Fallback);
    let first_h = states.iter().position(|&h| h == HealthState::Healthy);
    assert!(
        first_h.unwrap() < last_fb.unwrap(),
        "healthy before the fault too"
    );
}

/// Contract 2 for total CGM loss: dropout with p = 1 imputes every step
/// until the budget runs out, then falls back, then recovers.
#[test]
fn total_dropout_campaign_degrades_to_fallback_and_recovers() {
    let (states, fallback_checked) = degradation_run(FaultModel::Dropout { p: 1.0 }, 20, 40);
    assert!(states.contains(&HealthState::Degraded), "{states:?}");
    assert!(states.contains(&HealthState::Fallback), "{states:?}");
    assert!(fallback_checked);
    assert_eq!(*states.last().unwrap(), HealthState::Healthy, "{states:?}");
}

/// Contract 3: repeated injection, reversed trace order, and different
/// worker thread counts all produce bit-identical perturbed traces.
#[test]
fn injection_is_deterministic_across_order_and_threads() {
    let traces = campaign(SimulatorKind::T1ds2013, 219);
    let plan = FaultPlan::new(0x5EED)
        .with(ChannelFault::new(
            SensorChannel::BgSensor,
            FaultModel::Dropout { p: 0.3 },
            10,
            50,
        ))
        .with(ChannelFault::new(
            SensorChannel::BgSensor,
            FaultModel::Spike { magnitude: 80.0 },
            40,
            40,
        ))
        .with(ChannelFault::new(
            SensorChannel::DeliveredRate,
            FaultModel::Bias { offset: 0.7 },
            0,
            96,
        ));
    let one = {
        let _t = ThreadsGuard::set(1);
        plan.inject_all(&traces)
    };
    let two = {
        let _t = ThreadsGuard::set(2);
        plan.inject_all(&traces)
    };
    let rerun = plan.inject_all(&traces);
    let reversed: Vec<SimTrace> = {
        let mut rev: Vec<SimTrace> = traces.iter().rev().cloned().collect();
        rev = plan.inject_all(&rev);
        rev.reverse();
        rev
    };
    let bits: Vec<Vec<[u64; 3]>> = one.iter().map(channel_bits).collect();
    for (label, other) in [("threads", &two), ("rerun", &rerun), ("order", &reversed)] {
        let other_bits: Vec<Vec<[u64; 3]>> = other.iter().map(channel_bits).collect();
        assert_eq!(bits, other_bits, "injection differs under {label}");
    }
}
