#!/usr/bin/env python3
"""Fail when a benchmark's median exceeds its checked-in ceiling.

Usage: check_bench_ceilings.py <snapshot.json>

The snapshot is the JSON written by the criterion shim
(`CPSMON_BENCH_SNAPSHOT`); the ceilings live next to this script in
`bench_ceilings.json`. Keys starting with `_` are comments. A ceiling is
either an absolute ns/iter number, or a relative entry
`{"max_ratio_vs": "<other bench>", "ratio": 1.10}` that bounds this
bench's median to `ratio` times the referenced bench's median from the
same snapshot — immune to runner speed, it pins the *overhead* of one
code path over another.
"""

import json
import pathlib
import sys


def main() -> int:
    snapshot = json.loads(pathlib.Path(sys.argv[1]).read_text())
    ceilings = json.loads(
        (pathlib.Path(__file__).parent / "bench_ceilings.json").read_text()
    )
    failed = False
    for name, ceiling_ns in ceilings.items():
        if name.startswith("_"):
            continue
        entry = snapshot["results"].get(name)
        if entry is None:
            print(f"FAIL {name}: missing from snapshot")
            failed = True
            continue
        median = entry["median"]
        if isinstance(ceiling_ns, dict):
            base_name = ceiling_ns["max_ratio_vs"]
            base = snapshot["results"].get(base_name)
            if base is None:
                print(f"FAIL {name}: ratio base {base_name} missing from snapshot")
                failed = True
                continue
            ceiling = ceiling_ns["ratio"] * base["median"]
            over = median > ceiling
            print(
                f"{'FAIL' if over else 'ok  '} {name}: "
                f"median {median:.0f} ns vs {ceiling_ns['ratio']:.2f}x "
                f"{base_name} = {ceiling:.0f} ns"
            )
        else:
            over = median > ceiling_ns
            print(
                f"{'FAIL' if over else 'ok  '} {name}: "
                f"median {median:.0f} ns vs ceiling {ceiling_ns} ns"
            )
        failed |= over
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
