//! Regression tests for guard reset semantics at trace boundaries.
//!
//! A deployed monitor is reused across patient hand-overs: the session is
//! `reset` between traces. The guard's degradation state machine carries
//! three kinds of per-trace state — per-channel staleness runs, the
//! session health, and the clean-step recovery counter — and a reset that
//! forgets any one of them but not the others leaks the old trace's
//! trouble into the new one. The sharpest edge: a session that entered
//! [`HealthState::Fallback`] and was *mid-recovery* (clean-step counter
//! partially filled) when the reset landed must come back with a full
//! staleness budget and no recovery debt.

use cpsmon_core::guard::{GuardBank, GuardPolicy, HealthState, InputGuard};
use cpsmon_sim::trace::StepRecord;

fn rec(bg: f64) -> StepRecord {
    StepRecord {
        bg_true: bg,
        bg_sensor: bg,
        iob: 1.0,
        commanded_rate: 1.0,
        delivered_rate: 1.0,
        carbs: 0.0,
    }
}

/// Unique-bits clean sample per step (defeats freeze detection).
fn clean(step: usize) -> StepRecord {
    rec(120.0 + step as f64 * 0.25)
}

fn nan_bg(step: usize) -> StepRecord {
    let mut r = clean(step);
    r.bg_sensor = f64::NAN;
    r
}

/// Drives a guard into Fallback, then partway through recovery.
fn drive_to_mid_recovery(guard: &mut InputGuard) {
    let p = *guard.policy();
    guard.sanitize(&clean(0));
    for t in 0..p.staleness_budget + 2 {
        guard.sanitize(&nan_bg(1 + t));
    }
    assert_eq!(guard.health(), HealthState::Fallback);
    // A *partial* clean run: recovery counter spans the reset below.
    for t in 0..p.recovery_steps - 2 {
        guard.sanitize(&clean(100 + t));
        assert_eq!(guard.health(), HealthState::Fallback, "still on probation");
    }
}

#[test]
fn reset_mid_recovery_restores_full_staleness_budget() {
    let policy = GuardPolicy::aps();
    let mut guard = InputGuard::new(policy);
    drive_to_mid_recovery(&mut guard);
    guard.reset();
    assert_eq!(guard.health(), HealthState::Healthy);
    // Next trace: the full budget must be available again. With a stale
    // budget the session would hit Fallback `recovery-deficit` steps
    // early.
    guard.sanitize(&clean(0));
    for t in 0..policy.staleness_budget {
        let (_, status) = guard.sanitize(&nan_bg(1 + t));
        assert_eq!(
            status.health,
            HealthState::Degraded,
            "imputed step {t} within a fresh budget must be Degraded, not Fallback"
        );
    }
    let (_, status) = guard.sanitize(&nan_bg(99));
    assert_eq!(status.health, HealthState::Fallback, "budget spent again");
}

#[test]
fn reset_mid_recovery_owes_no_probation_on_next_trace() {
    let mut guard = InputGuard::new(GuardPolicy::aps());
    drive_to_mid_recovery(&mut guard);
    guard.reset();
    // A single imputed blip in the new trace must read as Degraded and
    // clear on the next clean step — no leftover Fallback probation.
    guard.sanitize(&clean(0));
    let (_, s) = guard.sanitize(&nan_bg(1));
    assert_eq!(s.health, HealthState::Degraded);
    let (_, s) = guard.sanitize(&clean(2));
    assert_eq!(
        s.health,
        HealthState::Healthy,
        "no recovery debt after reset"
    );
}

#[test]
fn bank_reset_all_rearms_every_slot() {
    let policy = GuardPolicy::aps();
    let mut bank = GuardBank::new(policy, 3);
    // Slot 0 healthy, slot 1 degraded, slot 2 in Fallback mid-recovery.
    for t in 0..4 {
        bank.sanitize(0, &clean(t));
    }
    bank.sanitize(1, &clean(0));
    bank.sanitize(1, &nan_bg(1));
    for t in 0..policy.staleness_budget + 2 {
        bank.sanitize(2, &nan_bg(t));
    }
    bank.sanitize(2, &clean(50));
    assert_eq!(bank.health(1), HealthState::Degraded);
    assert_eq!(bank.health(2), HealthState::Fallback);
    bank.reset_all();
    for i in 0..3 {
        assert_eq!(bank.health(i), HealthState::Healthy, "slot {i}");
        // Every slot gets the full budget back, independently.
        bank.sanitize(i, &clean(0));
        for t in 0..policy.staleness_budget {
            let (_, s) = bank.sanitize(i, &nan_bg(1 + t));
            assert_eq!(s.health, HealthState::Degraded, "slot {i} step {t}");
        }
    }
}

#[test]
fn bank_single_slot_reset_leaves_neighbors_alone() {
    let policy = GuardPolicy::aps();
    let mut bank = GuardBank::new(policy, 2);
    for t in 0..policy.staleness_budget + 2 {
        bank.sanitize(0, &nan_bg(t));
        bank.sanitize(1, &nan_bg(t));
    }
    assert_eq!(bank.health(0), HealthState::Fallback);
    assert_eq!(bank.health(1), HealthState::Fallback);
    bank.reset(0);
    assert_eq!(bank.health(0), HealthState::Healthy);
    assert_eq!(
        bank.health(1),
        HealthState::Fallback,
        "neighbor keeps its state"
    );
}
