//! Property-based tests of the stateful pooled-LSTM engine (DESIGN.md §12):
//! pool transparency. A [`LstmSessionPool`] of any size, driven by any push
//! schedule — lockstep, ragged, or a single session — must emit verdicts
//! bit-identical to running each session individually through
//! [`LstmStreamSession`], for both the exact f64 engine and the f32 serving
//! engine. This is the guarantee that lets deployments batch aggressively
//! without re-validating monitor behaviour.

use cpsmon_core::{FeatureConfig, LstmEngine, LstmSessionPool, LstmStreamSession, Normalizer};
use cpsmon_nn::init::random_normal;
use cpsmon_nn::rng::SmallRng;
use cpsmon_nn::{LstmConfig, LstmNet};
use cpsmon_sim::StepRecord;
use proptest::prelude::*;

const FEATURES_PER_STEP: usize = 6;

/// A small (but real) stacked LSTM plus featurization fitted on the same
/// synthetic distribution the records are drawn from.
fn fixture(seed: u64) -> (FeatureConfig, Normalizer, LstmNet) {
    let cfg = FeatureConfig::default();
    let mut rng = SmallRng::new(seed ^ 0xf17);
    let fit = random_normal(64, cfg.window * FEATURES_PER_STEP, 1.0, &mut rng);
    let norm = Normalizer::fit(&fit);
    let net = LstmNet::new(&LstmConfig {
        feature_dim: FEATURES_PER_STEP,
        timesteps: cfg.window,
        hidden: vec![10, 7],
        classes: 2,
        seed,
    });
    (cfg, norm, net)
}

fn record_strategy() -> impl Strategy<Value = StepRecord> {
    (
        40.0f64..400.0,
        -3.0f64..3.0,
        0.0f64..5.0,
        0.0f64..5.0,
        any::<bool>(),
    )
        .prop_map(|(bg, noise, iob, rate, carb)| StepRecord {
            bg_true: bg,
            bg_sensor: bg + noise,
            iob,
            commanded_rate: rate,
            delivered_rate: rate,
            carbs: if carb { 45.0 } else { 0.0 },
        })
}

/// Pool size plus a per-tick / per-session push mask (the ragged schedule).
fn schedule_strategy() -> impl Strategy<Value = (usize, Vec<Vec<bool>>)> {
    (1usize..6).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec(proptest::collection::vec(any::<bool>(), n), 1..10),
        )
    })
}

/// Drives one pool and `n` individual sessions through the same schedule
/// and asserts bit-identical verdicts tick by tick.
fn assert_pool_transparent(
    make_engine: &dyn Fn(&LstmNet) -> LstmEngine<'_>,
    seed: u64,
    n: usize,
    schedule: &[Vec<bool>],
    records: &[StepRecord],
) {
    let (cfg, norm, net) = fixture(seed);
    let mut pool = LstmSessionPool::new(make_engine(&net), cfg, &norm, n);
    let mut singles: Vec<LstmStreamSession<'_>> = (0..n)
        .map(|_| LstmStreamSession::new(make_engine(&net), cfg, &norm))
        .collect();
    let mut rec_idx = 0usize;
    for tick in schedule {
        let mut expected: Vec<Option<(usize, u64, usize)>> = vec![None; n];
        for (i, &push) in tick.iter().enumerate() {
            if push {
                let rec = records[rec_idx % records.len()];
                rec_idx += 1;
                pool.push(i, &rec);
                let v = singles[i].step(&rec);
                expected[i] = Some((v.label, v.proba.to_bits(), v.step));
            }
        }
        let out = pool.drain_ready();
        for (i, want) in expected.iter().enumerate() {
            match (want, &out[i]) {
                (None, None) => {}
                (Some((label, proba_bits, step)), Some(got)) => {
                    assert_eq!(got.verdict.label, *label, "session {i} label");
                    assert_eq!(
                        got.verdict.proba.to_bits(),
                        *proba_bits,
                        "session {i} proba bits"
                    );
                    assert_eq!(got.verdict.step, *step, "session {i} step index");
                }
                (want, got) => {
                    panic!(
                        "session {i}: individual={want:?} pooled-emitted={}",
                        got.is_some()
                    );
                }
            }
        }
    }
}

proptest! {
    // Each case trains nothing (random weights are fine for bit-identity)
    // but steps two full engines; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pooled_f64_engine_is_bit_identical_to_individual_sessions(
        seed in 0u64..1_000,
        (n, schedule) in schedule_strategy(),
        records in proptest::collection::vec(record_strategy(), 48),
    ) {
        assert_pool_transparent(&|net| LstmEngine::F64(net), seed, n, &schedule, &records);
    }

    #[test]
    fn pooled_f32_engine_is_bit_identical_to_individual_sessions(
        seed in 0u64..1_000,
        (n, schedule) in schedule_strategy(),
        records in proptest::collection::vec(record_strategy(), 48),
    ) {
        assert_pool_transparent(&|net| LstmEngine::f32_from(net), seed, n, &schedule, &records);
    }

    #[test]
    fn pool_of_one_matches_single_session_in_lockstep(
        seed in 0u64..1_000,
        ticks in 1usize..20,
        records in proptest::collection::vec(record_strategy(), 20),
    ) {
        let schedule: Vec<Vec<bool>> = vec![vec![true]; ticks];
        assert_pool_transparent(&|net| LstmEngine::F64(net), seed, 1, &schedule, &records);
        assert_pool_transparent(&|net| LstmEngine::f32_from(net), seed, 1, &schedule, &records);
    }
}
