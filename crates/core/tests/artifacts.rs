//! Integration tests for the monitor artifact store: saved-then-loaded
//! bundles must be bit-identical to the in-memory monitors for every
//! monitor kind on both simulators, and every corruption mode must be
//! rejected loudly rather than served silently.

use cpsmon_core::artifact::{dataset_fingerprint, ArtifactError, MonitorBundle};
use cpsmon_core::{DatasetBuilder, LabeledDataset, MonitorKind, TrainConfig};
use cpsmon_sim::{CampaignConfig, SimulatorKind};
use std::io::BufReader;

fn dataset(kind: SimulatorKind) -> LabeledDataset {
    let traces = CampaignConfig::new(kind)
        .patients(2)
        .runs_per_patient(3)
        .steps(144)
        .fault_ratio(0.6)
        .seed(23)
        .run();
    DatasetBuilder::new().seed(23).build(&traces).unwrap()
}

fn saved_bytes(bundle: &MonitorBundle) -> Vec<u8> {
    let mut buf = Vec::new();
    bundle.save(&mut buf).unwrap();
    buf
}

#[test]
fn all_kinds_roundtrip_bit_identically_on_both_simulators() {
    for sim in SimulatorKind::ALL {
        let ds = dataset(sim);
        let cfg = TrainConfig::quick_test();
        let fp = dataset_fingerprint(&ds);
        for mk in MonitorKind::ALL {
            let monitor = mk.train(&ds, &cfg).unwrap();
            let bundle = MonitorBundle::new(monitor, &ds, &cfg);
            assert_eq!(bundle.fingerprint, fp, "{mk} on {sim}");
            let buf = saved_bytes(&bundle);
            let loaded =
                MonitorBundle::load_validated(&mut BufReader::new(buf.as_slice()), fp).unwrap();
            assert_eq!(loaded.monitor.kind, mk);
            // Hard predictions are bit-identical for every kind…
            assert_eq!(
                loaded.monitor.predict(&ds.test),
                bundle.monitor.predict(&ds.test),
                "{mk} on {sim}"
            );
            // …and so are the soft probabilities of the ML kinds.
            if let (Some(orig), Some(load)) = (
                bundle.monitor.as_grad_model(),
                loaded.monitor.as_grad_model(),
            ) {
                assert_eq!(
                    orig.predict_proba(&ds.test.x),
                    load.predict_proba(&ds.test.x),
                    "{mk} on {sim}"
                );
            }
            assert_eq!(loaded.normalizer, ds.normalizer, "{mk} on {sim}");
            assert_eq!(loaded.train_config, cfg, "{mk} on {sim}");
        }
    }
}

#[test]
fn file_roundtrip_through_paths() {
    let ds = dataset(SimulatorKind::Glucosym);
    let cfg = TrainConfig::quick_test();
    let monitor = MonitorKind::Mlp.train(&ds, &cfg).unwrap();
    let bundle = MonitorBundle::new(monitor, &ds, &cfg);
    let path = std::env::temp_dir()
        .join(format!("cpsmon-artifact-{}", std::process::id()))
        .join("mlp.bundle");
    bundle.save_to_path(&path).unwrap();
    let loaded = MonitorBundle::load_from_path(&path, bundle.fingerprint).unwrap();
    assert_eq!(
        loaded.monitor.predict(&ds.test),
        bundle.monitor.predict(&ds.test)
    );
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

#[test]
fn truncation_anywhere_is_rejected() {
    let ds = dataset(SimulatorKind::Glucosym);
    let cfg = TrainConfig::quick_test();
    for mk in [MonitorKind::RuleBased, MonitorKind::Mlp, MonitorKind::Lstm] {
        let monitor = mk.train(&ds, &cfg).unwrap();
        let bundle = MonitorBundle::new(monitor, &ds, &cfg);
        let buf = saved_bytes(&bundle);
        // Cut at several depths: header, normalizer, model payload.
        for keep in [1, buf.len() / 20, buf.len() / 2, buf.len() - 2] {
            let cut = &buf[..keep];
            assert!(
                MonitorBundle::load(&mut BufReader::new(cut)).is_err(),
                "{mk}: truncation to {keep} bytes was accepted"
            );
        }
    }
}

#[test]
fn bad_magic_and_wrong_version_are_rejected() {
    let ds = dataset(SimulatorKind::Glucosym);
    let cfg = TrainConfig::quick_test();
    let monitor = MonitorKind::RuleBased.train(&ds, &cfg).unwrap();
    let buf = saved_bytes(&MonitorBundle::new(monitor, &ds, &cfg));
    let text = String::from_utf8(buf).unwrap();

    let wrong_magic = text.replacen("cpsmon-bundle", "not-a-bundle", 1);
    let err = MonitorBundle::load(&mut BufReader::new(wrong_magic.as_bytes())).unwrap_err();
    assert!(matches!(err, ArtifactError::BadMagic(_)), "{err}");

    let wrong_version = text.replacen("cpsmon-bundle v1", "cpsmon-bundle v3", 1);
    let err = MonitorBundle::load(&mut BufReader::new(wrong_version.as_bytes())).unwrap_err();
    assert!(
        matches!(err, ArtifactError::UnsupportedVersion(v) if v == "v3"),
        "wrong variant"
    );

    // v2 is a real version now (quantized bundles), but a v1 body merely
    // relabeled v2 lacks the mandatory precision line and must not load.
    let relabeled = text.replacen("cpsmon-bundle v1", "cpsmon-bundle v2", 1);
    assert!(MonitorBundle::load(&mut BufReader::new(relabeled.as_bytes())).is_err());
}

#[test]
fn mismatched_fingerprint_is_rejected_for_every_kind() {
    let ds = dataset(SimulatorKind::Glucosym);
    let other = dataset(SimulatorKind::T1ds2013);
    let cfg = TrainConfig::quick_test();
    assert_ne!(dataset_fingerprint(&ds), dataset_fingerprint(&other));
    for mk in MonitorKind::ALL {
        let monitor = mk.train(&ds, &cfg).unwrap();
        let bundle = MonitorBundle::new(monitor, &ds, &cfg);
        let buf = saved_bytes(&bundle);
        let err = MonitorBundle::load_validated(
            &mut BufReader::new(buf.as_slice()),
            dataset_fingerprint(&other),
        )
        .unwrap_err();
        assert!(
            matches!(err, ArtifactError::FingerprintMismatch { .. }),
            "{mk}: {err}"
        );
    }
}
