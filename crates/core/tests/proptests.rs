//! Property-based tests of the metric layer: confusion-count invariants,
//! score ranges, robustness-error identities, and normalizer round-trips.

use cpsmon_core::metrics::{sample_confusion, tolerance_confusion, EvalReport};
use cpsmon_core::robustness::{per_class_flip_rates, robustness_error};
use cpsmon_core::Normalizer;
use cpsmon_nn::Matrix;
use proptest::prelude::*;

fn binary_seq(len: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..2, len)
}

proptest! {
    #[test]
    fn tolerance_counts_partition_samples(
        (preds, labels, delta) in (1usize..40).prop_flat_map(|n| (binary_seq(n), binary_seq(n), 0usize..8)),
    ) {
        let c = tolerance_confusion(&preds, &labels, delta);
        prop_assert_eq!(c.total(), preds.len());
        // Positives are exactly the labeled-positive samples.
        let positives: usize = labels.iter().sum();
        prop_assert_eq!(c.tp + c.fn_, positives);
        prop_assert_eq!(c.fp + c.tn, preds.len() - positives);
    }

    #[test]
    fn larger_tolerance_never_hurts(
        (preds, labels) in (1usize..40).prop_flat_map(|n| (binary_seq(n), binary_seq(n))),
        delta in 0usize..6,
    ) {
        // Growing δ can only convert FN→TP and FP→TN.
        let small = tolerance_confusion(&preds, &labels, delta);
        let large = tolerance_confusion(&preds, &labels, delta + 1);
        prop_assert!(large.tp >= small.tp);
        prop_assert!(large.fp <= small.fp);
    }

    #[test]
    fn scores_are_in_unit_interval(
        (preds, labels) in (1usize..40).prop_flat_map(|n| (binary_seq(n), binary_seq(n))),
        delta in 0usize..8,
    ) {
        let report = EvalReport { counts: tolerance_confusion(&preds, &labels, delta) };
        for v in [report.accuracy(), report.precision(), report.recall(), report.f1()] {
            prop_assert!((0.0..=1.0).contains(&v), "score {v} out of range");
        }
    }

    #[test]
    fn perfect_predictions_are_perfect(labels in binary_seq(25), delta in 0usize..8) {
        let c = tolerance_confusion(&labels, &labels, delta);
        prop_assert_eq!(c.fn_, 0);
        prop_assert_eq!(c.fp, 0);
    }

    #[test]
    fn sample_confusion_matches_tolerance_zero(
        (preds, labels) in (1usize..30).prop_flat_map(|n| (binary_seq(n), binary_seq(n))),
    ) {
        prop_assert_eq!(tolerance_confusion(&preds, &labels, 0), sample_confusion(&preds, &labels));
    }

    #[test]
    fn robustness_error_bounds_and_symmetry(
        (a, b) in (1usize..50).prop_flat_map(|n| (binary_seq(n), binary_seq(n))),
    ) {
        let e = robustness_error(&a, &b);
        prop_assert!((0.0..=1.0).contains(&e));
        prop_assert_eq!(e, robustness_error(&b, &a));
        prop_assert_eq!(robustness_error(&a, &a), 0.0);
    }

    #[test]
    fn per_class_rates_aggregate_to_total(
        (a, b) in (1usize..50).prop_flat_map(|n| (binary_seq(n), binary_seq(n))),
    ) {
        let total = robustness_error(&a, &b);
        let rates = per_class_flip_rates(&a, &b, 2);
        let n0 = a.iter().filter(|&&c| c == 0).count() as f64;
        let n1 = a.len() as f64 - n0;
        let recombined = (rates[0] * n0 + rates[1] * n1) / a.len() as f64;
        prop_assert!((total - recombined).abs() < 1e-12);
    }

    #[test]
    fn normalizer_roundtrip(
        data in proptest::collection::vec(-1e3f64..1e3, 24),
    ) {
        let x = Matrix::from_vec(6, 4, data);
        let nz = Normalizer::fit(&x);
        let back = nz.inverse(&nz.transform(&x));
        for (a, b) in back.as_slice().iter().zip(x.as_slice()) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn normalized_train_columns_have_unit_stats(
        data in proptest::collection::vec(-100.0f64..100.0, 40),
    ) {
        let x = Matrix::from_vec(10, 4, data);
        let nz = Normalizer::fit(&x);
        let z = nz.transform(&x);
        for c in 0..4 {
            let col: Vec<f64> = (0..10).map(|r| z.get(r, c)).collect();
            let mean = col.iter().sum::<f64>() / 10.0;
            prop_assert!(mean.abs() < 1e-9, "column {c} mean {mean}");
            let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 10.0;
            // Either unit variance or a constant column passed through.
            prop_assert!((var - 1.0).abs() < 1e-6 || var < 1e-9, "column {c} var {var}");
        }
    }
}
