//! Streaming monitor sessions: the online inference layer.
//!
//! The batch pipeline ([`crate::dataset`] → [`TrainedMonitor::predict`])
//! evaluates monitors *offline*, over windows extracted from completed
//! traces. This module provides the deployment form the paper assumes — a
//! monitor running *inside* the control loop, predicting at every 5-minute
//! step:
//!
//! - [`WindowStream`]: per-patient featurizer state (feature ring buffer,
//!   incremental `bg/iob/rate` deltas, normalization) that accepts one
//!   [`StepRecord`] at a time and assembles the same flattened windows the
//!   batch path builds.
//! - [`MonitorSession`]: a [`WindowStream`] plus a borrowed
//!   [`TrainedMonitor`], emitting a [`Verdict`] per step once the window
//!   fills. ML monitors classify through the reusable-scratch fast path
//!   ([`cpsmon_nn::MlpNet::predict_proba_scratch`] /
//!   [`cpsmon_nn::LstmNet::predict_proba_scratch`]), so the steady-state
//!   per-step cost allocates nothing.
//! - [`SessionPool`]: many concurrent sessions whose ready rows are batched
//!   through **one** [`cpsmon_nn::GradModel::predict_proba`] call per step.
//!
//! ## Batch-equivalence contract
//!
//! Streaming verdicts are **bit-identical** to the batch path over the same
//! trace. This is by construction, not by tolerance: both paths share the
//! per-step featurization ([`crate::features::step_features`]), the same
//! row normalization ([`Normalizer::transform_row`]), and forward kernels
//! that are row-independent and chunk-transparent (see [`cpsmon_nn::par`]).
//! The workspace-level `streaming` test suite proves the contract for every
//! monitor kind and both simulators.

use std::time::{Duration, Instant};

use crate::dataset::LabeledDataset;
use crate::features::{step_features, FeatureConfig, Normalizer, FEATURES_PER_STEP};
use crate::guard::{GuardPolicy, HealthState, InputGuard};
use crate::monitor::{MonitorModel, TrainedMonitor};
use cpsmon_nn::{LstmNetScratch, Matrix, MlpScratch};
use cpsmon_sim::trace::StepRecord;
use cpsmon_stl::{ApsContext, RuleMonitor};

/// One streaming prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Verdict {
    /// Trace step the verdict's window ends at (0-based).
    pub step: usize,
    /// Predicted class (0 safe / 1 unsafe).
    pub label: usize,
    /// Predicted probability of the unsafe class. The rule-based monitor is
    /// not probabilistic; it reports its hard label as 0.0 / 1.0.
    pub proba: f64,
    /// Wall-clock cost of producing this verdict: featurization plus
    /// classification for [`MonitorSession::step`]; for pooled verdicts, the
    /// whole pool step including the shared batched forward pass.
    pub latency: Duration,
}

/// Per-patient streaming featurizer: consumes one [`StepRecord`] at a time
/// and maintains the most recent flattened feature window, raw and
/// normalized, exactly as [`FeatureConfig::windows`] would have built it
/// from the completed trace.
///
/// The per-step `bg/iob/rate` deltas are computed incrementally from the
/// previously pushed record through the shared
/// [`step_features`] — the same function the batch
/// extractor applies — so a streamed window is bit-identical to its batch
/// counterpart.
#[derive(Debug, Clone)]
pub struct WindowStream {
    cfg: FeatureConfig,
    normalizer: Normalizer,
    /// Circular buffer of the last `window` per-step feature vectors;
    /// `head` is the slot the *next* push overwrites (= oldest entry).
    ring: Vec<[f64; FEATURES_PER_STEP]>,
    head: usize,
    filled: usize,
    prev: Option<StepRecord>,
    steps_seen: usize,
    raw: Vec<f64>,
    x: Vec<f64>,
}

impl WindowStream {
    /// Creates a featurizer. `normalizer` must be the one fitted with the
    /// monitor's training data (see [`LabeledDataset::normalizer`]).
    pub fn new(cfg: FeatureConfig, normalizer: Normalizer) -> Self {
        let dim = cfg.window * FEATURES_PER_STEP;
        Self {
            cfg,
            normalizer,
            ring: vec![[0.0; FEATURES_PER_STEP]; cfg.window],
            head: 0,
            filled: 0,
            prev: None,
            steps_seen: 0,
            raw: vec![0.0; dim],
            x: vec![0.0; dim],
        }
    }

    /// Feeds one record. Returns the window-end step once `window` records
    /// have accumulated (every step from then on), or `None` while the ring
    /// is still filling.
    pub fn push(&mut self, rec: &StepRecord) -> Option<usize> {
        // Reject invalid sensor input at the session boundary: a NaN/inf
        // would silently flow through normalization into the network and
        // poison every later window in the ring. Deployments with unreliable
        // inputs should sanitize through an [`InputGuard`] /
        // [`GuardedSession`] first.
        assert!(
            rec.bg_sensor.is_finite() && rec.iob.is_finite() && rec.delivered_rate.is_finite(),
            "non-finite sensor input at session boundary (bg={}, iob={}, rate={}); \
             wrap the session in a GuardedSession to impute invalid samples",
            rec.bg_sensor,
            rec.iob,
            rec.delivered_rate
        );
        // The batch extractor uses the record itself as "previous" for the
        // first step of a trace (all deltas exactly 0) — mirror that here.
        let prev = self.prev.unwrap_or(*rec);
        self.ring[self.head] = step_features(rec, &prev);
        self.head = (self.head + 1) % self.ring.len();
        self.filled = (self.filled + 1).min(self.ring.len());
        self.prev = Some(*rec);
        let end = self.steps_seen;
        self.steps_seen += 1;
        if self.filled < self.ring.len() {
            return None;
        }
        // Unroll the ring chronologically; after the increment above `head`
        // points at the oldest entry.
        for (k, chunk) in self.raw.chunks_exact_mut(FEATURES_PER_STEP).enumerate() {
            chunk.copy_from_slice(&self.ring[(self.head + k) % self.ring.len()]);
        }
        self.x.copy_from_slice(&self.raw);
        self.normalizer.transform_row(&mut self.x);
        Some(end)
    }

    /// The latest complete window in raw units (valid after
    /// [`push`](Self::push) returned `Some`).
    pub fn window_raw(&self) -> &[f64] {
        &self.raw
    }

    /// The latest complete window, normalized — the monitor-input row.
    pub fn window_x(&self) -> &[f64] {
        &self.x
    }

    /// Rule context aggregated from the latest complete window (Eq. 2's
    /// `f(μ(X_t))`), via the same [`FeatureConfig::context_of`] the batch
    /// path uses.
    pub fn context(&self) -> ApsContext {
        self.cfg.context_of(&self.raw)
    }

    /// Records consumed so far.
    pub fn steps_seen(&self) -> usize {
        self.steps_seen
    }

    /// Whether a complete window is available.
    pub fn is_ready(&self) -> bool {
        self.filled == self.ring.len()
    }

    /// Forgets all state (e.g. at a patient hand-over): the next window
    /// fills from scratch.
    pub fn reset(&mut self) {
        self.head = 0;
        self.filled = 0;
        self.prev = None;
        self.steps_seen = 0;
    }
}

/// Reusable classification scratch matching the session's model kind.
#[derive(Debug, Clone)]
enum NetScratch {
    Rule,
    Mlp(MlpScratch),
    Lstm(LstmNetScratch),
}

impl NetScratch {
    fn for_model(model: &MonitorModel) -> Self {
        match model {
            MonitorModel::Rule(_) => NetScratch::Rule,
            MonitorModel::Mlp(_) => NetScratch::Mlp(MlpScratch::default()),
            MonitorModel::Lstm(_) => NetScratch::Lstm(LstmNetScratch::default()),
        }
    }
}

/// Row argmax with the same tie-breaking as
/// [`Matrix::argmax_rows`] (first strictly-greatest element wins), applied
/// to a single probability row.
fn argmax_row(row: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best
}

/// A live monitor attached to one patient stream: per-patient featurizer
/// state plus a borrowed [`TrainedMonitor`]. Feed it one [`StepRecord`] per
/// control cycle; once the 6-step window fills it emits a [`Verdict`] per
/// step whose label and probability are bit-identical to the batch
/// `predict` path over the same trace.
///
/// To observe a running simulation, pass a closure to
/// [`cpsmon_sim::engine::ClosedLoop::run_observed`]:
///
/// ```no_run
/// # use cpsmon_core::stream::MonitorSession;
/// # fn demo(mut session: MonitorSession<'_>, sim: cpsmon_sim::ClosedLoop<
/// #     cpsmon_sim::glucosym::GlucosymPatient, cpsmon_sim::openaps::OpenApsController>) {
/// let mut verdicts = Vec::new();
/// sim.run_observed(144, "glucosym", 0, 0, &mut |_step: usize, rec: &_| {
///     if let Some(v) = session.step(rec) {
///         verdicts.push(v);
///     }
/// });
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MonitorSession<'m> {
    monitor: &'m TrainedMonitor,
    stream: WindowStream,
    scratch: NetScratch,
    xrow: Matrix,
}

impl<'m> MonitorSession<'m> {
    /// Creates a session for a monitor with explicit featurization
    /// parameters.
    pub fn new(monitor: &'m TrainedMonitor, cfg: FeatureConfig, normalizer: Normalizer) -> Self {
        let dim = cfg.window * FEATURES_PER_STEP;
        Self {
            monitor,
            stream: WindowStream::new(cfg, normalizer),
            scratch: NetScratch::for_model(&monitor.model),
            xrow: Matrix::zeros(1, dim),
        }
    }

    /// Creates a session using the featurization the monitor was trained
    /// with.
    pub fn for_dataset(monitor: &'m TrainedMonitor, ds: &LabeledDataset) -> Self {
        Self::new(monitor, ds.feature_config, ds.normalizer.clone())
    }

    /// The monitor this session wraps.
    pub fn monitor(&self) -> &'m TrainedMonitor {
        self.monitor
    }

    /// The underlying featurizer (e.g. for inspecting the current window).
    pub fn window(&self) -> &WindowStream {
        &self.stream
    }

    /// Feeds one record; returns a verdict once the window is full.
    pub fn step(&mut self, rec: &StepRecord) -> Option<Verdict> {
        let t0 = Instant::now();
        let end = self.stream.push(rec)?;
        let (label, proba) = match (&self.monitor.model, &mut self.scratch) {
            (MonitorModel::Rule(m), NetScratch::Rule) => {
                let label = m.predict(&self.stream.context());
                (label, label as f64)
            }
            (MonitorModel::Mlp(net), NetScratch::Mlp(s)) => {
                self.xrow.row_mut(0).copy_from_slice(self.stream.window_x());
                let p = net.predict_proba_scratch(&self.xrow, s);
                (argmax_row(p.row(0)), p.get(0, 1))
            }
            (MonitorModel::Lstm(net), NetScratch::Lstm(s)) => {
                self.xrow.row_mut(0).copy_from_slice(self.stream.window_x());
                let p = net.predict_proba_scratch(&self.xrow, s);
                (argmax_row(p.row(0)), p.get(0, 1))
            }
            _ => unreachable!("scratch kind matches model kind by construction"),
        };
        Some(Verdict {
            step: end,
            label,
            proba,
            latency: t0.elapsed(),
        })
    }

    /// Resets the featurizer state, keeping the monitor and warm scratch.
    pub fn reset(&mut self) {
        self.stream.reset();
    }
}

/// Many concurrent [`WindowStream`]s (one per patient) sharing one monitor.
/// Each [`step`](Self::step) consumes one record per session and classifies
/// every ready row through a **single** batched
/// [`cpsmon_nn::GradModel::predict_proba`] call — the serving layout for a fleet of
/// patients, where per-session forward passes would waste the matmul
/// kernel's blocking.
///
/// Because the forward kernels are row-independent, pooled verdicts are
/// bit-identical to the same sessions stepped individually.
pub struct SessionPool<'m> {
    monitor: &'m TrainedMonitor,
    streams: Vec<WindowStream>,
    batch: Matrix,
    ready: Vec<usize>,
}

impl<'m> SessionPool<'m> {
    /// Creates `n` sessions with explicit featurization parameters.
    pub fn new(
        monitor: &'m TrainedMonitor,
        cfg: FeatureConfig,
        normalizer: Normalizer,
        n: usize,
    ) -> Self {
        Self {
            monitor,
            streams: vec![WindowStream::new(cfg, normalizer); n],
            batch: Matrix::zeros(0, 0),
            ready: Vec::with_capacity(n),
        }
    }

    /// Creates `n` sessions using the featurization the monitor was trained
    /// with.
    pub fn for_dataset(monitor: &'m TrainedMonitor, ds: &LabeledDataset, n: usize) -> Self {
        Self::new(monitor, ds.feature_config, ds.normalizer.clone(), n)
    }

    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// Whether the pool has no sessions.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// The per-session featurizers (e.g. to reset one patient).
    pub fn sessions_mut(&mut self) -> &mut [WindowStream] {
        &mut self.streams
    }

    /// Advances every session by one record (`records[i]` feeds session
    /// `i`). Returns one entry per session: `None` while its window is
    /// filling, otherwise its verdict for this step. All ready rows share
    /// one batched forward pass and report the same pool-step latency.
    ///
    /// # Panics
    ///
    /// Panics if `records.len() != self.len()`.
    pub fn step(&mut self, records: &[StepRecord]) -> Vec<Option<Verdict>> {
        assert_eq!(records.len(), self.streams.len(), "one record per session");
        let t0 = Instant::now();
        self.ready.clear();
        for (i, (stream, rec)) in self.streams.iter_mut().zip(records).enumerate() {
            if stream.push(rec).is_some() {
                self.ready.push(i);
            }
        }
        let mut out = vec![None; records.len()];
        if self.ready.is_empty() {
            return out;
        }
        match &self.monitor.model {
            MonitorModel::Rule(m) => {
                for &i in &self.ready {
                    let stream = &self.streams[i];
                    let label = m.predict(&stream.context());
                    out[i] = Some(Verdict {
                        step: stream.steps_seen() - 1,
                        label,
                        proba: label as f64,
                        latency: t0.elapsed(),
                    });
                }
            }
            MonitorModel::Mlp(_) | MonitorModel::Lstm(_) => {
                let model = self
                    .monitor
                    .as_grad_model()
                    .expect("ML monitors are gradient models");
                let dim = model.input_width();
                self.batch.reset_shape(self.ready.len(), dim);
                for (r, &i) in self.ready.iter().enumerate() {
                    self.batch
                        .row_mut(r)
                        .copy_from_slice(self.streams[i].window_x());
                }
                let probs = model.predict_proba(&self.batch);
                let labels = probs.argmax_rows();
                let latency = t0.elapsed();
                for (r, &i) in self.ready.iter().enumerate() {
                    out[i] = Some(Verdict {
                        step: self.streams[i].steps_seen() - 1,
                        label: labels[r],
                        proba: probs.get(r, 1),
                        latency,
                    });
                }
            }
        }
        out
    }
}

/// A [`Verdict`] annotated with the guard's per-step health assessment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardedVerdict {
    /// The verdict (the rule fallback's when `health` is
    /// [`HealthState::Fallback`], the wrapped monitor's otherwise).
    pub verdict: Verdict,
    /// Session health at this step.
    pub health: HealthState,
    /// Whether any input channel was imputed this step.
    pub imputed: bool,
}

/// A [`MonitorSession`] behind an [`InputGuard`]: the deployment form for
/// unreliable inputs.
///
/// Every record is sanitized first (invalid samples imputed within the
/// policy's staleness budget), then fed to the wrapped monitor. While the
/// guard reports [`HealthState::Fallback`] the emitted label/probability
/// come from the knowledge-only [`RuleMonitor`] evaluated on the imputed
/// window context — the paper's robust fallback — and the ML verdict is
/// suppressed; recovery is automatic after the policy's clean-step run.
///
/// On a fully clean stream the guard passes every record through
/// bit-identically, so guarded verdicts equal unguarded ones to the bit
/// (property-tested in the workspace `faults` suite).
#[derive(Debug, Clone)]
pub struct GuardedSession<'m> {
    session: MonitorSession<'m>,
    fallback: RuleMonitor,
    guard: InputGuard,
}

impl<'m> GuardedSession<'m> {
    /// Creates a guarded session with explicit featurization parameters
    /// and fallback rules.
    pub fn new(
        monitor: &'m TrainedMonitor,
        cfg: FeatureConfig,
        normalizer: Normalizer,
        fallback: RuleMonitor,
        policy: GuardPolicy,
    ) -> Self {
        Self {
            session: MonitorSession::new(monitor, cfg, normalizer),
            fallback,
            guard: InputGuard::new(policy),
        }
    }

    /// Creates a guarded session using the featurization and safety rules
    /// the monitor's dataset was built with.
    pub fn for_dataset(
        monitor: &'m TrainedMonitor,
        ds: &LabeledDataset,
        policy: GuardPolicy,
    ) -> Self {
        Self::new(
            monitor,
            ds.feature_config,
            ds.normalizer.clone(),
            RuleMonitor::new(ds.rules),
            policy,
        )
    }

    /// Current guard health (as of the last step).
    pub fn health(&self) -> HealthState {
        self.guard.health()
    }

    /// The wrapped session (e.g. for window inspection).
    pub fn session(&self) -> &MonitorSession<'m> {
        &self.session
    }

    /// Sanitizes and feeds one record; returns a verdict once the window
    /// is full.
    pub fn step(&mut self, rec: &StepRecord) -> Option<GuardedVerdict> {
        let (clean, status) = self.guard.sanitize(rec);
        let mut verdict = self.session.step(&clean)?;
        if status.health == HealthState::Fallback {
            let label = self.fallback.predict(&self.session.window().context());
            verdict.label = label;
            verdict.proba = label as f64;
        }
        Some(GuardedVerdict {
            verdict,
            health: status.health,
            imputed: status.any_imputed(),
        })
    }

    /// Resets featurizer and guard state (the monitor and scratch stay
    /// warm).
    pub fn reset(&mut self) {
        self.session.reset();
        self.guard.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::monitor::MonitorKind;
    use crate::train::TrainConfig;
    use cpsmon_sim::{CampaignConfig, SimulatorKind};

    fn dataset() -> (Vec<cpsmon_sim::SimTrace>, LabeledDataset) {
        let traces = CampaignConfig::new(SimulatorKind::Glucosym)
            .patients(2)
            .runs_per_patient(2)
            .steps(96)
            .fault_ratio(0.5)
            .seed(77)
            .run();
        let ds = DatasetBuilder::new().build(&traces).unwrap();
        (traces, ds)
    }

    #[test]
    fn no_verdicts_until_window_fills() {
        let (traces, ds) = dataset();
        let monitor = MonitorKind::RuleBased
            .train(&ds, &TrainConfig::quick_test())
            .unwrap();
        let mut session = MonitorSession::for_dataset(&monitor, &ds);
        let records = traces[0].records();
        for (t, rec) in records.iter().enumerate() {
            let verdict = session.step(rec);
            if t + 1 < ds.feature_config.window {
                assert!(verdict.is_none(), "premature verdict at step {t}");
            } else {
                let v = verdict.expect("window full");
                assert_eq!(v.step, t);
                assert!(v.label <= 1);
            }
        }
    }

    #[test]
    fn session_matches_batch_on_one_trace() {
        let (traces, ds) = dataset();
        let monitor = MonitorKind::Mlp
            .train(&ds, &TrainConfig::quick_test())
            .unwrap();
        let trace = &traces[0];
        let labels = ds.hazard_config.labels(trace);
        let windows = ds.feature_config.windows(trace, &labels, 0);
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for w in &windows {
            rows.push(w.features.clone());
        }
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let x = ds.normalizer.transform(&Matrix::from_rows(&refs));
        let batch_labels = monitor.predict_x(&x);
        let batch_probs = monitor.as_grad_model().unwrap().predict_proba(&x);

        let mut session = MonitorSession::for_dataset(&monitor, &ds);
        let mut k = 0;
        for rec in trace.records() {
            if let Some(v) = session.step(rec) {
                assert_eq!(v.step, windows[k].step);
                assert_eq!(v.label, batch_labels[k], "label at window {k}");
                assert_eq!(v.proba, batch_probs.get(k, 1), "proba bits at window {k}");
                k += 1;
            }
        }
        assert_eq!(k, windows.len());
    }

    #[test]
    fn pool_matches_individual_sessions() {
        let (traces, ds) = dataset();
        let monitor = MonitorKind::Lstm
            .train(&ds, &TrainConfig::quick_test())
            .unwrap();
        let n = traces.len();
        let steps = traces.iter().map(|t| t.len()).min().unwrap();
        let mut pool = SessionPool::for_dataset(&monitor, &ds, n);
        let mut singles: Vec<MonitorSession<'_>> = (0..n)
            .map(|_| MonitorSession::for_dataset(&monitor, &ds))
            .collect();
        for t in 0..steps {
            let records: Vec<StepRecord> = traces.iter().map(|trace| trace.records()[t]).collect();
            let pooled = pool.step(&records);
            for (i, rec) in records.iter().enumerate() {
                let single = singles[i].step(rec);
                match (pooled[i], single) {
                    (Some(p), Some(s)) => {
                        assert_eq!(p.step, s.step);
                        assert_eq!(p.label, s.label, "session {i} step {t}");
                        assert_eq!(p.proba, s.proba, "session {i} step {t} proba bits");
                    }
                    (None, None) => {}
                    other => panic!("readiness mismatch at session {i} step {t}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn pool_handles_staggered_sessions() {
        let (traces, ds) = dataset();
        let monitor = MonitorKind::RuleBased
            .train(&ds, &TrainConfig::quick_test())
            .unwrap();
        let mut pool = SessionPool::for_dataset(&monitor, &ds, 2);
        let records = traces[0].records();
        // Stagger: session 1 joins 3 steps late via a reset.
        for (t, rec) in records.iter().take(10).enumerate() {
            if t == 3 {
                pool.sessions_mut()[1].reset();
            }
            let out = pool.step(&[*rec, *rec]);
            let w = ds.feature_config.window;
            assert_eq!(out[0].is_some(), t + 1 >= w);
            if t >= 3 {
                assert_eq!(out[1].is_some(), t - 3 + 1 >= w);
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-finite sensor input")]
    fn non_finite_input_is_rejected_at_session_boundary() {
        // Regression: NaN used to flow silently through normalization into
        // the network and poison every later window of the ring.
        let (traces, ds) = dataset();
        let mut ws = WindowStream::new(ds.feature_config, ds.normalizer.clone());
        let mut bad = traces[0].records()[0];
        bad.bg_sensor = f64::NAN;
        ws.push(&bad);
    }

    #[test]
    fn guarded_session_matches_unguarded_on_clean_trace() {
        let (traces, ds) = dataset();
        let monitor = MonitorKind::Mlp
            .train(&ds, &TrainConfig::quick_test())
            .unwrap();
        let mut plain = MonitorSession::for_dataset(&monitor, &ds);
        let mut guarded =
            GuardedSession::for_dataset(&monitor, &ds, crate::guard::GuardPolicy::aps());
        for rec in traces[0].records() {
            let a = plain.step(rec);
            let b = guarded.step(rec);
            match (a, b) {
                (Some(a), Some(b)) => {
                    assert_eq!(b.health, HealthState::Healthy);
                    assert!(!b.imputed);
                    assert_eq!(a.step, b.verdict.step);
                    assert_eq!(a.label, b.verdict.label);
                    assert_eq!(a.proba, b.verdict.proba, "proba bits must match");
                }
                (None, None) => {}
                other => panic!("readiness mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn guarded_session_survives_nan_and_falls_back() {
        let (traces, ds) = dataset();
        let monitor = MonitorKind::Mlp
            .train(&ds, &TrainConfig::quick_test())
            .unwrap();
        let policy = crate::guard::GuardPolicy::aps();
        let mut guarded = GuardedSession::for_dataset(&monitor, &ds, policy);
        let rules = cpsmon_stl::RuleMonitor::new(ds.rules);
        let mut saw_fallback = false;
        for (t, rec) in traces[0].records().iter().enumerate() {
            let mut r = *rec;
            if t >= 20 {
                r.bg_sensor = f64::NAN; // total CGM loss from step 20 on
            }
            if let Some(v) = guarded.step(&r) {
                if v.health == HealthState::Fallback {
                    saw_fallback = true;
                    let expect = rules.predict(&guarded.session().window().context());
                    assert_eq!(v.verdict.label, expect, "fallback label is the rule's");
                    assert_eq!(v.verdict.proba, expect as f64);
                }
            }
        }
        assert!(saw_fallback, "budget exhaustion must reach Fallback");
        assert_eq!(guarded.health(), HealthState::Fallback);
    }

    #[test]
    fn stream_reset_refills_window() {
        let (traces, ds) = dataset();
        let mut ws = WindowStream::new(ds.feature_config, ds.normalizer.clone());
        let records = traces[0].records();
        for rec in &records[..ds.feature_config.window] {
            ws.push(rec);
        }
        assert!(ws.is_ready());
        ws.reset();
        assert!(!ws.is_ready());
        assert_eq!(ws.steps_seen(), 0);
        assert_eq!(ws.push(&records[0]), None);
    }
}
