//! Streaming monitor sessions: the online inference layer.
//!
//! The batch pipeline ([`crate::dataset`] → [`TrainedMonitor::predict`])
//! evaluates monitors *offline*, over windows extracted from completed
//! traces. This module provides the deployment form the paper assumes — a
//! monitor running *inside* the control loop, predicting at every 5-minute
//! step:
//!
//! - [`WindowStream`]: per-patient featurizer state (feature ring buffer,
//!   incremental `bg/iob/rate` deltas, normalization) that accepts one
//!   [`StepRecord`] at a time and assembles the same flattened windows the
//!   batch path builds.
//! - [`MonitorSession`]: a [`WindowStream`] plus a borrowed
//!   [`TrainedMonitor`], emitting a [`Verdict`] per step once the window
//!   fills. ML monitors classify through the reusable-scratch fast path
//!   ([`cpsmon_nn::MlpNet::predict_proba_scratch`] /
//!   [`cpsmon_nn::LstmNet::predict_proba_scratch`]), so the steady-state
//!   per-step cost allocates nothing.
//! - [`SessionPool`]: many concurrent sessions whose ready rows are batched
//!   through **one** [`cpsmon_nn::GradModel::predict_proba`] call per step.
//! - [`LstmStreamSession`] / [`LstmSessionPool`]: the *stateful* LSTM
//!   serving engine — hidden/cell state carried across records
//!   (one timestep of compute per record instead of a full-window
//!   recompute), pooled structure-of-arrays so a whole fleet advances
//!   through one fused GEMM per gate block, at either f64 or f32
//!   ([`LstmEngine`]) precision. See DESIGN.md §12.
//!
//! ## Batch-equivalence contract
//!
//! Streaming verdicts are **bit-identical** to the batch path over the same
//! trace. This is by construction, not by tolerance: both paths share the
//! per-step featurization ([`crate::features::step_features`]), the same
//! row normalization ([`Normalizer::transform_row`]), and forward kernels
//! that are row-independent and chunk-transparent (see [`cpsmon_nn::par`]).
//! The workspace-level `streaming` test suite proves the contract for every
//! monitor kind and both simulators.

use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

use crate::dataset::LabeledDataset;
use crate::features::{step_features, FeatureConfig, Normalizer, FEATURES_PER_STEP};
use crate::guard::{GuardBank, GuardPolicy, HealthState};
use crate::monitor::{MonitorModel, TrainedMonitor};
use crate::pipeline::{Action, LatencyAttribution, Mitigator, PipelineSession};
use cpsmon_nn::{LstmNet, LstmNetF32, LstmNetScratch, LstmStreamState, Matrix, MlpScratch};
use cpsmon_sim::trace::StepRecord;
use cpsmon_stl::{ApsContext, RuleMonitor};

/// A non-finite sensor sample reached a session boundary that has no
/// guard in front of it.
///
/// The infallible entry points ([`WindowStream::push`],
/// [`StepStream::push`]) panic on this condition because silently admitting
/// a NaN/inf would poison every later window in the ring; the fallible
/// `try_*` counterparts return this typed error instead, so untrusted
/// per-step input (e.g. frames decoded off the wire by `cpsmon-serve`) can
/// surface as a degraded-mode verdict rather than aborting the session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidSample {
    /// The offending CGM reading.
    pub bg: f64,
    /// The offending insulin-on-board estimate.
    pub iob: f64,
    /// The offending delivered rate.
    pub rate: f64,
}

impl InvalidSample {
    fn check(rec: &StepRecord) -> Result<(), InvalidSample> {
        if rec.bg_sensor.is_finite() && rec.iob.is_finite() && rec.delivered_rate.is_finite() {
            Ok(())
        } else {
            Err(InvalidSample {
                bg: rec.bg_sensor,
                iob: rec.iob,
                rate: rec.delivered_rate,
            })
        }
    }
}

impl fmt::Display for InvalidSample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "non-finite sensor input at session boundary \
             (bg={}, iob={}, rate={}); wrap the session in an input guard \
             to impute invalid samples",
            self.bg, self.iob, self.rate
        )
    }
}

impl Error for InvalidSample {}

/// One streaming prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Verdict {
    /// Trace step the verdict's window ends at (0-based).
    pub step: usize,
    /// Predicted class (0 safe / 1 unsafe).
    pub label: usize,
    /// Predicted probability of the unsafe class. The rule-based monitor is
    /// not probabilistic; it reports its hard label as 0.0 / 1.0.
    pub proba: f64,
    /// Wall-clock cost of producing this verdict: featurization plus
    /// classification for [`MonitorSession::step`]. Pooled verdicts report
    /// their *attributed* share — the session's queue wait (push to
    /// classify start) plus the batched forward pass divided by the number
    /// of rows that shared it — so a 1000-session pool tick no longer
    /// charges every session the full batch time. Always exactly
    /// `attribution.total()`.
    pub latency: Duration,
    /// Corrective action derived by the mitigation stage
    /// ([`Action::None`] when no [`Mitigator`] is armed — mitigation
    /// never alters `label`/`proba`, only annotates).
    pub action: Action,
    /// Stage-by-stage breakdown of `latency`.
    pub attribution: LatencyAttribution,
}

/// Per-patient streaming featurizer: consumes one [`StepRecord`] at a time
/// and maintains the most recent flattened feature window, raw and
/// normalized, exactly as [`FeatureConfig::windows`] would have built it
/// from the completed trace.
///
/// The per-step `bg/iob/rate` deltas are computed incrementally from the
/// previously pushed record through the shared
/// [`step_features`] — the same function the batch
/// extractor applies — so a streamed window is bit-identical to its batch
/// counterpart.
#[derive(Debug, Clone)]
pub struct WindowStream {
    cfg: FeatureConfig,
    normalizer: Normalizer,
    /// Circular buffer of the last `window` per-step feature vectors;
    /// `head` is the slot the *next* push overwrites (= oldest entry).
    ring: Vec<[f64; FEATURES_PER_STEP]>,
    head: usize,
    filled: usize,
    prev: Option<StepRecord>,
    steps_seen: usize,
    raw: Vec<f64>,
    x: Vec<f64>,
}

impl WindowStream {
    /// Creates a featurizer. `normalizer` must be the one fitted with the
    /// monitor's training data (see [`LabeledDataset::normalizer`]).
    pub fn new(cfg: FeatureConfig, normalizer: Normalizer) -> Self {
        let dim = cfg.window * FEATURES_PER_STEP;
        Self {
            cfg,
            normalizer,
            ring: vec![[0.0; FEATURES_PER_STEP]; cfg.window],
            head: 0,
            filled: 0,
            prev: None,
            steps_seen: 0,
            raw: vec![0.0; dim],
            x: vec![0.0; dim],
        }
    }

    /// Feeds one record. Returns the window-end step once `window` records
    /// have accumulated (every step from then on), or `None` while the ring
    /// is still filling.
    ///
    /// # Panics
    ///
    /// Panics on non-finite sensor input — a NaN/inf would silently flow
    /// through normalization into the network and poison every later
    /// window in the ring. Deployments with unreliable inputs should
    /// sanitize through an [`InputGuard`](crate::guard::InputGuard) /
    /// [`GuardedSession`] first, or use [`try_push`](Self::try_push) to
    /// receive the typed [`InvalidSample`] error instead.
    pub fn push(&mut self, rec: &StepRecord) -> Option<usize> {
        match self.try_push(rec) {
            Ok(end) => end,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`push`](Self::push) for untrusted input: a non-finite sample is
    /// rejected with a typed [`InvalidSample`] error, leaving the ring,
    /// deltas, and step count untouched — the caller can impute or degrade
    /// and keep the session alive.
    pub fn try_push(&mut self, rec: &StepRecord) -> Result<Option<usize>, InvalidSample> {
        InvalidSample::check(rec)?;
        // The batch extractor uses the record itself as "previous" for the
        // first step of a trace (all deltas exactly 0) — mirror that here.
        let prev = self.prev.unwrap_or(*rec);
        self.ring[self.head] = step_features(rec, &prev);
        self.head = (self.head + 1) % self.ring.len();
        self.filled = (self.filled + 1).min(self.ring.len());
        self.prev = Some(*rec);
        let end = self.steps_seen;
        self.steps_seen += 1;
        if self.filled < self.ring.len() {
            return Ok(None);
        }
        // Unroll the ring chronologically; after the increment above `head`
        // points at the oldest entry.
        for (k, chunk) in self.raw.chunks_exact_mut(FEATURES_PER_STEP).enumerate() {
            chunk.copy_from_slice(&self.ring[(self.head + k) % self.ring.len()]);
        }
        self.x.copy_from_slice(&self.raw);
        self.normalizer.transform_row(&mut self.x);
        Ok(Some(end))
    }

    /// Swaps the normalization statistics in place — the hot-reload seam:
    /// a freshly installed [`MonitorBundle`](crate::artifact::MonitorBundle)
    /// brings its own normalizer, and live sessions must start normalizing
    /// with it without losing their accumulated window state. The current
    /// complete window (if any) is re-normalized immediately, so the next
    /// classification already sees the new statistics.
    ///
    /// # Panics
    ///
    /// Panics if the new normalizer's width differs from the window width
    /// this stream was built with (incompatible bundles must be rejected
    /// before they reach live sessions).
    pub fn set_normalizer(&mut self, normalizer: Normalizer) {
        assert_eq!(
            normalizer.mean().len(),
            self.raw.len(),
            "replacement normalizer width does not match the feature window"
        );
        self.normalizer = normalizer;
        if self.is_ready() {
            self.x.copy_from_slice(&self.raw);
            self.normalizer.transform_row(&mut self.x);
        }
    }

    /// The latest complete window in raw units (valid after
    /// [`push`](Self::push) returned `Some`).
    pub fn window_raw(&self) -> &[f64] {
        &self.raw
    }

    /// The latest complete window, normalized — the monitor-input row.
    pub fn window_x(&self) -> &[f64] {
        &self.x
    }

    /// Rule context aggregated from the latest complete window (Eq. 2's
    /// `f(μ(X_t))`), via the same [`FeatureConfig::context_of`] the batch
    /// path uses.
    pub fn context(&self) -> ApsContext {
        self.cfg.context_of(&self.raw)
    }

    /// Records consumed so far.
    pub fn steps_seen(&self) -> usize {
        self.steps_seen
    }

    /// Whether a complete window is available.
    pub fn is_ready(&self) -> bool {
        self.filled == self.ring.len()
    }

    /// Forgets all state (e.g. at a patient hand-over): the next window
    /// fills from scratch.
    pub fn reset(&mut self) {
        self.head = 0;
        self.filled = 0;
        self.prev = None;
        self.steps_seen = 0;
    }
}

/// Reusable classification scratch matching the session's model kind.
#[derive(Debug, Clone)]
enum NetScratch {
    Rule,
    Mlp(MlpScratch),
    Lstm(LstmNetScratch),
}

impl NetScratch {
    fn for_model(model: &MonitorModel) -> Self {
        match model {
            MonitorModel::Rule(_) => NetScratch::Rule,
            MonitorModel::Mlp(_) => NetScratch::Mlp(MlpScratch::default()),
            MonitorModel::Lstm(_) => NetScratch::Lstm(LstmNetScratch::default()),
        }
    }
}

/// Row argmax with the same tie-breaking as
/// [`Matrix::argmax_rows`] (first strictly-greatest element wins), applied
/// to a single probability row.
fn argmax_row(row: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best
}

/// A live monitor attached to one patient stream: per-patient featurizer
/// state plus a borrowed [`TrainedMonitor`]. Feed it one [`StepRecord`] per
/// control cycle; once the 6-step window fills it emits a [`Verdict`] per
/// step whose label and probability are bit-identical to the batch
/// `predict` path over the same trace.
///
/// To observe a running simulation, pass a closure to
/// [`cpsmon_sim::engine::ClosedLoop::run_observed`]:
///
/// ```no_run
/// # use cpsmon_core::stream::MonitorSession;
/// # fn demo(mut session: MonitorSession<'_>, sim: cpsmon_sim::ClosedLoop<
/// #     cpsmon_sim::glucosym::GlucosymPatient, cpsmon_sim::openaps::OpenApsController>) {
/// let mut verdicts = Vec::new();
/// sim.run_observed(144, "glucosym", 0, 0, &mut |_step: usize, rec: &_| {
///     if let Some(v) = session.step(rec) {
///         verdicts.push(v);
///     }
/// });
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MonitorSession<'m> {
    monitor: &'m TrainedMonitor,
    stream: WindowStream,
    scratch: NetScratch,
    xrow: Matrix,
    /// The rule context the latest step classified with (rule monitors
    /// only) — downstream stages reuse it instead of re-aggregating.
    last_ctx: Option<ApsContext>,
}

impl<'m> MonitorSession<'m> {
    /// Creates a session for a monitor with explicit featurization
    /// parameters.
    pub fn new(monitor: &'m TrainedMonitor, cfg: FeatureConfig, normalizer: Normalizer) -> Self {
        let dim = cfg.window * FEATURES_PER_STEP;
        Self {
            monitor,
            stream: WindowStream::new(cfg, normalizer),
            scratch: NetScratch::for_model(&monitor.model),
            xrow: Matrix::zeros(1, dim),
            last_ctx: None,
        }
    }

    /// Creates a session using the featurization the monitor was trained
    /// with.
    pub fn for_dataset(monitor: &'m TrainedMonitor, ds: &LabeledDataset) -> Self {
        Self::new(monitor, ds.feature_config, ds.normalizer.clone())
    }

    /// The monitor this session wraps.
    pub fn monitor(&self) -> &'m TrainedMonitor {
        self.monitor
    }

    /// The underlying featurizer (e.g. for inspecting the current window).
    pub fn window(&self) -> &WindowStream {
        &self.stream
    }

    /// Feeds one record; returns a verdict once the window is full.
    ///
    /// # Panics
    ///
    /// Panics on non-finite sensor input (see [`WindowStream::push`]); use
    /// [`try_step`](Self::try_step) for untrusted input.
    pub fn step(&mut self, rec: &StepRecord) -> Option<Verdict> {
        self.step_timed(rec).map(|(v, _)| v)
    }

    /// Fallible [`step`](Self::step): non-finite input surfaces as a typed
    /// [`InvalidSample`] error instead of a panic, leaving the session
    /// state untouched so the caller can degrade and keep serving.
    pub fn try_step(&mut self, rec: &StepRecord) -> Result<Option<Verdict>, InvalidSample> {
        Ok(self.try_step_timed(rec)?.map(|(v, _)| v))
    }

    /// [`step`](Self::step), also returning the instant the compute
    /// measurement ended — downstream stages time themselves against it
    /// instead of paying an extra clock read per step.
    pub fn step_timed(&mut self, rec: &StepRecord) -> Option<(Verdict, Instant)> {
        match self.try_step_timed(rec) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`step_timed`](Self::step_timed) with the typed [`InvalidSample`]
    /// error instead of the boundary panic.
    pub fn try_step_timed(
        &mut self,
        rec: &StepRecord,
    ) -> Result<Option<(Verdict, Instant)>, InvalidSample> {
        let t0 = Instant::now();
        let Some(end) = self.stream.try_push(rec)? else {
            return Ok(None);
        };
        let (label, proba) = match (&self.monitor.model, &mut self.scratch) {
            (MonitorModel::Rule(m), NetScratch::Rule) => {
                let ctx = self.stream.context();
                let label = m.predict(&ctx);
                self.last_ctx = Some(ctx);
                (label, label as f64)
            }
            (MonitorModel::Mlp(net), NetScratch::Mlp(s)) => {
                self.xrow.row_mut(0).copy_from_slice(self.stream.window_x());
                let p = net.predict_proba_scratch(&self.xrow, s);
                (argmax_row(p.row(0)), p.get(0, 1))
            }
            (MonitorModel::Lstm(net), NetScratch::Lstm(s)) => {
                self.xrow.row_mut(0).copy_from_slice(self.stream.window_x());
                let p = net.predict_proba_scratch(&self.xrow, s);
                (argmax_row(p.row(0)), p.get(0, 1))
            }
            _ => unreachable!("scratch kind matches model kind by construction"),
        };
        let ended = Instant::now();
        let attribution = LatencyAttribution::compute_only(ended - t0);
        Ok(Some((
            Verdict {
                step: end,
                label,
                proba,
                latency: attribution.total(),
                action: Action::None,
                attribution,
            },
            ended,
        )))
    }

    /// The rule context the latest step classified with, if this session
    /// wraps a rule monitor. Bit-identical to re-aggregating
    /// `window().context()` at the same step — it *is* that value, cached.
    pub fn last_rule_context(&self) -> Option<ApsContext> {
        self.last_ctx
    }

    /// Resets the featurizer state, keeping the monitor and warm scratch.
    pub fn reset(&mut self) {
        self.stream.reset();
        self.last_ctx = None;
    }
}

/// Many concurrent [`WindowStream`]s (one per patient) sharing one monitor.
/// Each [`step`](Self::step) consumes one record per session and classifies
/// every ready row through a **single** batched
/// [`cpsmon_nn::GradModel::predict_proba`] call — the serving layout for a fleet of
/// patients, where per-session forward passes would waste the matmul
/// kernel's blocking.
///
/// Because the forward kernels are row-independent, pooled verdicts are
/// bit-identical to the same sessions stepped individually.
///
/// Records arrive through [`push`](Self::push) (or the
/// [`step`](Self::step) convenience that pushes one record per session);
/// [`drain_ready`](Self::drain_ready) classifies everything queued since
/// the last drain in one batch and attributes latency per session: queue
/// wait plus an equal share of the batched forward pass.
pub struct SessionPool<'m> {
    monitor: &'m TrainedMonitor,
    streams: Vec<WindowStream>,
    batch: Matrix,
    ready: Vec<usize>,
    /// Queue entry per session whose window became ready and has not
    /// been drained yet.
    pending: Vec<Option<PendingTick>>,
    guards: Option<GuardBank>,
    fallback: Option<RuleMonitor>,
    mitigator: Option<Mitigator>,
}

impl<'m> SessionPool<'m> {
    /// Creates `n` sessions with explicit featurization parameters.
    pub fn new(
        monitor: &'m TrainedMonitor,
        cfg: FeatureConfig,
        normalizer: Normalizer,
        n: usize,
    ) -> Self {
        Self {
            monitor,
            streams: vec![WindowStream::new(cfg, normalizer); n],
            batch: Matrix::zeros(0, 0),
            ready: Vec::with_capacity(n),
            pending: vec![None; n],
            guards: None,
            fallback: None,
            mitigator: None,
        }
    }

    /// Arms per-session input guards with a shared policy and a rule
    /// fallback for slots that degrade to [`HealthState::Fallback`] —
    /// the pooled form of the pipeline's guard stage.
    pub fn with_guards(mut self, policy: GuardPolicy, fallback: RuleMonitor) -> Self {
        self.guards = Some(GuardBank::new(policy, self.streams.len()));
        self.fallback = Some(fallback);
        self
    }

    /// Arms the mitigation stage: every drained verdict carries the
    /// [`Action`] the mitigator derives for it. Classification is
    /// untouched, so armed pools stay bit-identical to unarmed ones.
    pub fn with_mitigator(mut self, mitigator: Mitigator) -> Self {
        self.mitigator = Some(mitigator);
        self
    }

    /// Creates `n` sessions using the featurization the monitor was trained
    /// with.
    pub fn for_dataset(monitor: &'m TrainedMonitor, ds: &LabeledDataset, n: usize) -> Self {
        Self::new(monitor, ds.feature_config, ds.normalizer.clone(), n)
    }

    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// Whether the pool has no sessions.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// The per-session featurizers (e.g. to reset one patient).
    pub fn sessions_mut(&mut self) -> &mut [WindowStream] {
        &mut self.streams
    }

    /// Feeds one record to session `i`. Returns `true` when the session's
    /// window is complete and a verdict will be emitted by the next
    /// [`drain_ready`](Self::drain_ready).
    ///
    /// Pushing the same session again before draining just slides its
    /// window one more step — only the latest window is classified.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn push(&mut self, i: usize, rec: &StepRecord) -> bool {
        let at = Instant::now();
        let (ready, health, imputed) = match &mut self.guards {
            Some(bank) => {
                let (clean, status) = bank.sanitize(i, rec);
                (
                    self.streams[i].push(&clean).is_some(),
                    status.health,
                    status.any_imputed(),
                )
            }
            None => (
                self.streams[i].push(rec).is_some(),
                HealthState::Healthy,
                false,
            ),
        };
        if ready {
            self.pending[i] = Some(PendingTick {
                at,
                health,
                imputed,
            });
        }
        ready
    }

    /// The shared tail of the per-slot stage graph: fallback override,
    /// mitigation, latency attribution. Free-standing so the drain loops
    /// can call it while `self.ready` is borrowed.
    #[allow(clippy::too_many_arguments)]
    fn finish_slot(
        stream: &WindowStream,
        fallback: Option<&RuleMonitor>,
        mitigator: Option<&Mitigator>,
        tick: PendingTick,
        mut label: usize,
        mut proba: f64,
        queue: Duration,
        compute: Duration,
    ) -> GuardedVerdict {
        if tick.health == HealthState::Fallback {
            let rules = fallback.expect("fallback rules exist when guards are armed");
            label = rules.predict(&stream.context());
            proba = label as f64;
        }
        let (action, mitigation) = match mitigator {
            // Alarm-free slots skip the stage (decide is the identity
            // there), clock reads included.
            Some(m) if label == 1 => {
                let m0 = Instant::now();
                let action = m.decide(label, proba, || stream.context());
                (action, m0.elapsed())
            }
            _ => (Action::None, Duration::ZERO),
        };
        let attribution = LatencyAttribution {
            queue,
            compute,
            mitigation,
        };
        GuardedVerdict {
            verdict: Verdict {
                step: stream.steps_seen() - 1,
                label,
                proba,
                latency: attribution.total(),
                action,
                attribution,
            },
            health: tick.health,
            imputed: tick.imputed,
        }
    }

    /// Classifies every session whose window completed since the last
    /// drain, all in one batched forward pass, and runs the per-slot
    /// fallback/mitigation tail. Returns one entry per session: `None` if
    /// nothing was queued for it.
    ///
    /// Each verdict's latency is attributed per session: its queue wait
    /// (push to classify start) plus `batch time / ready rows` plus its
    /// own mitigation time — not the whole pool step, so pooled latencies
    /// are comparable to [`MonitorSession::step`] ones.
    pub fn drain_ready_guarded(&mut self) -> Vec<Option<GuardedVerdict>> {
        self.ready.clear();
        for (i, p) in self.pending.iter().enumerate() {
            if p.is_some() {
                self.ready.push(i);
            }
        }
        let mut out = vec![None; self.streams.len()];
        if self.ready.is_empty() {
            return out;
        }
        match &self.monitor.model {
            MonitorModel::Rule(m) => {
                for &i in &self.ready {
                    let tick = self.pending[i].take().expect("queued");
                    let stream = &self.streams[i];
                    let t0 = Instant::now();
                    let label = m.predict(&stream.context());
                    let compute = t0.elapsed();
                    out[i] = Some(Self::finish_slot(
                        stream,
                        self.fallback.as_ref(),
                        self.mitigator.as_ref(),
                        tick,
                        label,
                        label as f64,
                        t0 - tick.at,
                        compute,
                    ));
                }
            }
            MonitorModel::Mlp(_) | MonitorModel::Lstm(_) => {
                let model = self
                    .monitor
                    .as_grad_model()
                    .expect("ML monitors are gradient models");
                let dim = model.input_width();
                self.batch.reset_shape(self.ready.len(), dim);
                for (r, &i) in self.ready.iter().enumerate() {
                    self.batch
                        .row_mut(r)
                        .copy_from_slice(self.streams[i].window_x());
                }
                let t0 = Instant::now();
                let probs = model.predict_proba(&self.batch);
                let labels = probs.argmax_rows();
                let share = t0.elapsed() / self.ready.len() as u32;
                for (r, &i) in self.ready.iter().enumerate() {
                    let tick = self.pending[i].take().expect("queued");
                    out[i] = Some(Self::finish_slot(
                        &self.streams[i],
                        self.fallback.as_ref(),
                        self.mitigator.as_ref(),
                        tick,
                        labels[r],
                        probs.get(r, 1),
                        t0 - tick.at,
                        share,
                    ));
                }
            }
        }
        out
    }

    /// [`drain_ready_guarded`](Self::drain_ready_guarded) stripped to the
    /// bare verdicts — the historical pool interface.
    pub fn drain_ready(&mut self) -> Vec<Option<Verdict>> {
        self.drain_ready_guarded()
            .into_iter()
            .map(|o| o.map(|g| g.verdict))
            .collect()
    }

    /// Resets one session end to end: featurizer, guard slot, and any
    /// queued record. Unlike `sessions_mut()[i].reset()`, this cannot
    /// leave a stale pending tick (which the next drain would classify
    /// against the reset stream) or carry the old trace's staleness
    /// budget into the next one.
    pub fn reset_session(&mut self, i: usize) {
        self.streams[i].reset();
        self.pending[i] = None;
        if let Some(bank) = &mut self.guards {
            bank.reset(i);
        }
    }

    /// Resets every session (a whole-fleet trace boundary).
    pub fn reset_all(&mut self) {
        for i in 0..self.streams.len() {
            self.reset_session(i);
        }
    }

    /// Advances every session by one record (`records[i]` feeds session
    /// `i`) and drains: returns one entry per session, `None` while its
    /// window is filling, otherwise its verdict for this step. All ready
    /// rows share one batched forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `records.len() != self.len()`.
    pub fn step(&mut self, records: &[StepRecord]) -> Vec<Option<Verdict>> {
        assert_eq!(records.len(), self.streams.len(), "one record per session");
        for (i, rec) in records.iter().enumerate() {
            self.push(i, rec);
        }
        self.drain_ready()
    }
}

/// A [`Verdict`] annotated with the guard's per-step health assessment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardedVerdict {
    /// The verdict (the rule fallback's when `health` is
    /// [`HealthState::Fallback`], the wrapped monitor's otherwise).
    pub verdict: Verdict,
    /// Session health at this step.
    pub health: HealthState,
    /// Whether any input channel was imputed this step.
    pub imputed: bool,
}

/// A [`MonitorSession`] behind an [`InputGuard`](crate::guard::InputGuard): the deployment form for
/// unreliable inputs.
///
/// Every record is sanitized first (invalid samples imputed within the
/// policy's staleness budget), then fed to the wrapped monitor. While the
/// guard reports [`HealthState::Fallback`] the emitted label/probability
/// come from the knowledge-only [`RuleMonitor`] evaluated on the imputed
/// window context — the paper's robust fallback — and the ML verdict is
/// suppressed; recovery is automatic after the policy's clean-step run.
///
/// On a fully clean stream the guard passes every record through
/// bit-identically, so guarded verdicts equal unguarded ones to the bit
/// (property-tested in the workspace `faults` suite).
#[derive(Debug, Clone)]
pub struct GuardedSession<'m> {
    pipeline: PipelineSession<'m>,
}

impl<'m> GuardedSession<'m> {
    /// Creates a guarded session with explicit featurization parameters
    /// and fallback rules.
    pub fn new(
        monitor: &'m TrainedMonitor,
        cfg: FeatureConfig,
        normalizer: Normalizer,
        fallback: RuleMonitor,
        policy: GuardPolicy,
    ) -> Self {
        Self {
            pipeline: PipelineSession::new(MonitorSession::new(monitor, cfg, normalizer))
                .with_guard(policy, fallback),
        }
    }

    /// Creates a guarded session using the featurization and safety rules
    /// the monitor's dataset was built with.
    pub fn for_dataset(
        monitor: &'m TrainedMonitor,
        ds: &LabeledDataset,
        policy: GuardPolicy,
    ) -> Self {
        Self::new(
            monitor,
            ds.feature_config,
            ds.normalizer.clone(),
            RuleMonitor::new(ds.rules),
            policy,
        )
    }

    /// Arms the mitigation stage (see [`Mitigator`]); verdicts then carry
    /// corrective [`Action`]s.
    pub fn with_mitigator(mut self, mitigator: Mitigator) -> Self {
        self.pipeline = self.pipeline.with_mitigator(mitigator);
        self
    }

    /// Current guard health (as of the last step).
    pub fn health(&self) -> HealthState {
        self.pipeline.health()
    }

    /// The wrapped session (e.g. for window inspection).
    pub fn session(&self) -> &MonitorSession<'m> {
        self.pipeline.core()
    }

    /// The underlying stage pipeline.
    pub fn pipeline(&self) -> &PipelineSession<'m> {
        &self.pipeline
    }

    /// Sanitizes and feeds one record; returns a verdict once the window
    /// is full.
    pub fn step(&mut self, rec: &StepRecord) -> Option<GuardedVerdict> {
        self.pipeline.step(rec)
    }

    /// Resets featurizer and guard state (the monitor and scratch stay
    /// warm).
    pub fn reset(&mut self) {
        self.pipeline.reset();
    }
}

/// Per-record featurizer for the *stateful* LSTM engine: one normalized
/// feature row per pushed record, plus a raw ring of the last `window`
/// per-step features so the rule fallback's [`ApsContext`] stays available.
///
/// Unlike [`WindowStream`] — which assembles the full flattened window the
/// batch extractor builds — this normalizes each record with the *final*
/// timestep's column statistics ([`Normalizer::tail`]): the stateful engine
/// carries its own temporal memory in `h`/`c`, so the input at every tick
/// is "the current record", the position whose training-time distribution
/// is the window's last slot.
///
/// Until the ring fills, the missing older slots are padded with the first
/// record's features (a constant-history assumption), so
/// [`context`](Self::context) is well-defined from the very first push.
#[derive(Debug, Clone)]
pub struct StepStream {
    cfg: FeatureConfig,
    tail: Normalizer,
    ring: Vec<[f64; FEATURES_PER_STEP]>,
    head: usize,
    filled: usize,
    prev: Option<StepRecord>,
    steps_seen: usize,
    raw: Vec<f64>,
    x: [f64; FEATURES_PER_STEP],
}

impl StepStream {
    /// Creates a per-record featurizer. `normalizer` is the monitor's full
    /// windowed normalizer (`window × FEATURES_PER_STEP` columns); its tail
    /// is extracted here.
    ///
    /// # Panics
    ///
    /// Panics if the normalizer width does not match `cfg.window`.
    pub fn new(cfg: FeatureConfig, normalizer: &Normalizer) -> Self {
        assert_eq!(
            normalizer.mean().len(),
            cfg.window * FEATURES_PER_STEP,
            "normalizer width does not match the feature window"
        );
        Self {
            cfg,
            tail: normalizer.tail(FEATURES_PER_STEP),
            ring: vec![[0.0; FEATURES_PER_STEP]; cfg.window],
            head: 0,
            filled: 0,
            prev: None,
            steps_seen: 0,
            raw: vec![0.0; cfg.window * FEATURES_PER_STEP],
            x: [0.0; FEATURES_PER_STEP],
        }
    }

    /// Feeds one record and returns its 0-based step index. Every push
    /// yields a usable feature row — stateful sessions emit verdicts from
    /// the first record.
    ///
    /// # Panics
    ///
    /// Panics on non-finite sensor input, like [`WindowStream::push`];
    /// guard unreliable inputs with a [`GuardBank`], or use
    /// [`try_push`](Self::try_push) for the typed error.
    pub fn push(&mut self, rec: &StepRecord) -> usize {
        match self.try_push(rec) {
            Ok(step) => step,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`push`](Self::push) for untrusted input: rejects non-finite
    /// samples with a typed [`InvalidSample`] error instead of panicking,
    /// leaving the featurizer state untouched.
    pub fn try_push(&mut self, rec: &StepRecord) -> Result<usize, InvalidSample> {
        InvalidSample::check(rec)?;
        let prev = self.prev.unwrap_or(*rec);
        let feats = step_features(rec, &prev);
        if self.filled == 0 {
            // Constant-history padding: the context window starts as if the
            // first record had been seen `window` times.
            self.ring.fill(feats);
        }
        self.ring[self.head] = feats;
        self.head = (self.head + 1) % self.ring.len();
        self.filled = (self.filled + 1).min(self.ring.len());
        self.prev = Some(*rec);
        self.x = feats;
        self.tail.transform_row(&mut self.x);
        let step = self.steps_seen;
        self.steps_seen += 1;
        Ok(step)
    }

    /// The latest record's normalized feature row — the engine input.
    pub fn features(&self) -> &[f64] {
        &self.x
    }

    /// Rule context aggregated from the raw ring (padded until it fills),
    /// via the same [`FeatureConfig::context_of`] the batch path uses.
    pub fn context(&mut self) -> ApsContext {
        for (k, chunk) in self.raw.chunks_exact_mut(FEATURES_PER_STEP).enumerate() {
            chunk.copy_from_slice(&self.ring[(self.head + k) % self.ring.len()]);
        }
        self.cfg.context_of(&self.raw)
    }

    /// Records consumed so far.
    pub fn steps_seen(&self) -> usize {
        self.steps_seen
    }

    /// Forgets all state; the next push starts a fresh session.
    pub fn reset(&mut self) {
        self.head = 0;
        self.filled = 0;
        self.prev = None;
        self.steps_seen = 0;
    }
}

/// The numeric engine behind a stateful LSTM session or pool: the
/// full-precision network, or the f32 serving engine quantized bundles
/// dequantize into.
pub enum LstmEngine<'m> {
    /// Borrowed f64 network — bit-identical to the training-time forward.
    F64(&'m LstmNet),
    /// Owned single-precision engine (see [`LstmNetF32`]).
    F32(LstmNetF32),
}

impl<'m> LstmEngine<'m> {
    /// Builds the f32 serving engine from a (possibly dequantized) network.
    pub fn f32_from(net: &LstmNet) -> Self {
        LstmEngine::F32(LstmNetF32::from_net(net))
    }

    /// Features per timestep.
    pub fn feature_dim(&self) -> usize {
        match self {
            LstmEngine::F64(n) => n.feature_dim(),
            LstmEngine::F32(n) => n.feature_dim(),
        }
    }

    /// Precision label for logs and bench metadata.
    pub fn label(&self) -> &'static str {
        match self {
            LstmEngine::F64(_) => "f64",
            LstmEngine::F32(_) => "f32",
        }
    }

    fn stream_state(&self, rows: usize) -> LstmStreamState {
        match self {
            LstmEngine::F64(n) => n.stream_state(rows),
            LstmEngine::F32(n) => n.stream_state(rows),
        }
    }

    fn step<'s>(&self, x: &Matrix, st: &'s mut LstmStreamState) -> &'s Matrix {
        match self {
            LstmEngine::F64(n) => n.step_stream(x, st),
            LstmEngine::F32(n) => n.step_stream(x, st),
        }
    }
}

/// One *stateful* streaming LSTM session: carries `h`/`c` across records
/// instead of recomputing a window per step, so each record costs one
/// timestep of LSTM compute (~1/6 of the windowed path) and a verdict is
/// emitted for every record from the first.
///
/// Note the semantics differ from [`MonitorSession`] with an LSTM monitor:
/// verdicts reflect the whole stream since the session started, not a
/// sliding 6-step window, so they are *not* comparable bit-for-bit to the
/// batch path. What **is** guaranteed (and property-tested) is
/// pool-transparency: this session and any [`LstmSessionPool`] slot fed
/// the same records produce bit-identical verdicts.
pub struct LstmStreamSession<'m> {
    engine: LstmEngine<'m>,
    stream: StepStream,
    state: LstmStreamState,
    x: Matrix,
}

impl<'m> LstmStreamSession<'m> {
    /// Creates a stateful session with explicit featurization parameters.
    pub fn new(engine: LstmEngine<'m>, cfg: FeatureConfig, normalizer: &Normalizer) -> Self {
        let dim = engine.feature_dim();
        Self {
            state: engine.stream_state(1),
            engine,
            stream: StepStream::new(cfg, normalizer),
            x: Matrix::zeros(1, dim),
        }
    }

    /// Creates a stateful session using the featurization the monitor was
    /// trained with.
    pub fn for_dataset(engine: LstmEngine<'m>, ds: &LabeledDataset) -> Self {
        Self::new(engine, ds.feature_config, &ds.normalizer)
    }

    /// Feeds one record; always yields a verdict.
    pub fn step(&mut self, rec: &StepRecord) -> Verdict {
        let t0 = Instant::now();
        let step = self.stream.push(rec);
        self.x.row_mut(0).copy_from_slice(self.stream.features());
        let probs = self.engine.step(&self.x, &mut self.state);
        let attribution = LatencyAttribution::compute_only(t0.elapsed());
        Verdict {
            step,
            label: argmax_row(probs.row(0)),
            proba: probs.get(0, 1),
            latency: attribution.total(),
            action: Action::None,
            attribution,
        }
    }

    /// Resets featurizer and recurrent state.
    pub fn reset(&mut self) {
        self.stream.reset();
        self.state.reset();
    }
}

/// Queue entry for a pool slot that was pushed and awaits the next drain.
#[derive(Clone, Copy)]
struct PendingTick {
    at: Instant,
    health: HealthState,
    imputed: bool,
}

/// Reusable scratch for one pool tick: the packed ready-row state, the
/// batched input, and the ready index list. Lives across ticks so the
/// steady state performs no allocation — buffers only grow, to the
/// high-water mark of concurrent ready rows.
struct PoolArena {
    packed: LstmStreamState,
    x: Matrix,
    ready: Vec<usize>,
}

/// A fleet of *stateful* LSTM sessions advanced in lockstep: the
/// hidden/cell state of every session lives as one row of
/// structure-of-arrays matrices ([`LstmStreamState`]), and each
/// [`drain_ready`](Self::drain_ready) gathers the pushed rows, advances
/// them through **one** fused GEMM per gate block (the M dimension is the
/// number of ready sessions), and scatters the state back.
///
/// Because every kernel in the engine is row-independent, a pooled
/// session's verdict stream is bit-identical to the same records fed to a
/// standalone [`LstmStreamSession`] — regardless of pool size or which
/// other sessions happen to be ready in the same tick (property-tested in
/// the workspace `streaming` suite).
///
/// With [`with_guards`](Self::with_guards) the pool becomes the guarded
/// deployment form: each slot's records are sanitized by its own
/// [`InputGuard`](crate::guard::InputGuard), and while a slot is in [`HealthState::Fallback`] its
/// emitted verdict comes from the knowledge-only rule monitor evaluated on
/// the imputed context (the recurrent state still advances on imputed
/// inputs, so recovery is seamless).
pub struct LstmSessionPool<'m> {
    engine: LstmEngine<'m>,
    streams: Vec<StepStream>,
    state: LstmStreamState,
    arena: PoolArena,
    pending: Vec<Option<PendingTick>>,
    guards: Option<GuardBank>,
    fallback: Option<RuleMonitor>,
    mitigator: Option<Mitigator>,
}

impl<'m> LstmSessionPool<'m> {
    /// Creates `n` stateful sessions with explicit featurization
    /// parameters.
    pub fn new(
        engine: LstmEngine<'m>,
        cfg: FeatureConfig,
        normalizer: &Normalizer,
        n: usize,
    ) -> Self {
        Self {
            state: engine.stream_state(n),
            arena: PoolArena {
                packed: engine.stream_state(0),
                x: Matrix::zeros(0, 0),
                ready: Vec::with_capacity(n),
            },
            engine,
            streams: vec![StepStream::new(cfg, normalizer); n],
            pending: vec![None; n],
            guards: None,
            fallback: None,
            mitigator: None,
        }
    }

    /// Creates `n` stateful sessions using the featurization the monitor
    /// was trained with.
    pub fn for_dataset(engine: LstmEngine<'m>, ds: &LabeledDataset, n: usize) -> Self {
        Self::new(engine, ds.feature_config, &ds.normalizer, n)
    }

    /// Arms per-session input guards with a shared policy and a rule
    /// fallback for slots that degrade to [`HealthState::Fallback`].
    pub fn with_guards(mut self, policy: GuardPolicy, fallback: RuleMonitor) -> Self {
        self.guards = Some(GuardBank::new(policy, self.streams.len()));
        self.fallback = Some(fallback);
        self
    }

    /// Arms the mitigation stage: every drained verdict carries the
    /// [`Action`] the mitigator derives for it. Classification is
    /// untouched, so armed pools stay bit-identical to unarmed ones.
    pub fn with_mitigator(mut self, mitigator: Mitigator) -> Self {
        self.mitigator = Some(mitigator);
        self
    }

    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// Whether the pool has no sessions.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// The engine precision ("f64" / "f32").
    pub fn engine_label(&self) -> &'static str {
        self.engine.label()
    }

    /// Feeds one record to session `i` (sanitized through its guard when
    /// guards are armed). The verdict is produced by the next
    /// [`drain_ready`](Self::drain_ready).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range, or if session `i` was already pushed
    /// since the last drain — a stateful session must advance once per
    /// record, so dropping a queued record would silently skip state.
    pub fn push(&mut self, i: usize, rec: &StepRecord) {
        assert!(
            self.pending[i].is_none(),
            "session {i} pushed twice without drain_ready; \
             stateful sessions must drain between records"
        );
        let at = Instant::now();
        let (health, imputed) = match &mut self.guards {
            Some(bank) => {
                let (clean, status) = bank.sanitize(i, rec);
                self.streams[i].push(&clean);
                (status.health, status.any_imputed())
            }
            None => {
                self.streams[i].push(rec);
                (HealthState::Healthy, false)
            }
        };
        self.pending[i] = Some(PendingTick {
            at,
            health,
            imputed,
        });
    }

    /// Advances every pushed session by one timestep through a single
    /// batched engine step and returns one entry per session (`None` if it
    /// was not pushed since the last drain).
    ///
    /// Latency is attributed per session — queue wait plus an equal share
    /// of the batched step.
    pub fn drain_ready(&mut self) -> Vec<Option<GuardedVerdict>> {
        let n = self.streams.len();
        let mut out = vec![None; n];
        let arena = &mut self.arena;
        arena.ready.clear();
        for (i, p) in self.pending.iter().enumerate() {
            if p.is_some() {
                arena.ready.push(i);
            }
        }
        if arena.ready.is_empty() {
            return out;
        }
        let rows = arena.ready.len();
        // Lockstep fast path: with every session ready the pool state IS
        // the batch (ready = 0..n in order), so the gather/scatter row
        // copies — ~2 × state-size of pure memcpy per tick — are skipped
        // and the engine steps the pool state in place.
        let full = rows == n;
        if !full {
            arena.packed.gather_from(&self.state, &arena.ready);
        }
        arena.x.reset_shape(rows, self.engine.feature_dim());
        for (r, &i) in arena.ready.iter().enumerate() {
            arena
                .x
                .row_mut(r)
                .copy_from_slice(self.streams[i].features());
        }
        let t0 = Instant::now();
        let state = if full {
            &mut self.state
        } else {
            &mut arena.packed
        };
        let probs = self.engine.step(&arena.x, state);
        let share = t0.elapsed() / rows as u32;
        for (r, &i) in arena.ready.iter().enumerate() {
            let tick = self.pending[i].take().expect("queued");
            let (mut label, mut proba) = (argmax_row(probs.row(r)), probs.get(r, 1));
            if tick.health == HealthState::Fallback {
                let rules = self
                    .fallback
                    .as_ref()
                    .expect("fallback rules exist when guards are armed");
                label = rules.predict(&self.streams[i].context());
                proba = label as f64;
            }
            let (action, mitigation) = match &self.mitigator {
                // Alarm-free slots skip the stage (decide is the identity
                // there), clock reads included.
                Some(m) if label == 1 => {
                    let m0 = Instant::now();
                    let action = m.decide(label, proba, || self.streams[i].context());
                    (action, m0.elapsed())
                }
                _ => (Action::None, Duration::ZERO),
            };
            let attribution = LatencyAttribution {
                queue: t0 - tick.at,
                compute: share,
                mitigation,
            };
            out[i] = Some(GuardedVerdict {
                verdict: Verdict {
                    step: self.streams[i].steps_seen() - 1,
                    label,
                    proba,
                    latency: attribution.total(),
                    action,
                    attribution,
                },
                health: tick.health,
                imputed: tick.imputed,
            });
        }
        if !full {
            arena.packed.scatter_to(&mut self.state, &arena.ready);
        }
        out
    }

    /// Pushes one record per session and drains — the lockstep
    /// convenience.
    ///
    /// # Panics
    ///
    /// Panics if `records.len() != self.len()`.
    pub fn step(&mut self, records: &[StepRecord]) -> Vec<Option<GuardedVerdict>> {
        assert_eq!(records.len(), self.streams.len(), "one record per session");
        for (i, rec) in records.iter().enumerate() {
            self.push(i, rec);
        }
        self.drain_ready()
    }

    /// Resets one session: featurizer, recurrent state row, guard slot,
    /// and any queued record.
    pub fn reset_session(&mut self, i: usize) {
        self.streams[i].reset();
        self.state.reset_row(i);
        self.pending[i] = None;
        if let Some(bank) = &mut self.guards {
            bank.reset(i);
        }
    }

    /// Resets every session (a whole-fleet trace boundary).
    pub fn reset_all(&mut self) {
        for i in 0..self.streams.len() {
            self.reset_session(i);
        }
    }
}

/// Bridges a cohort run into a [`SessionPool`]: monitor-in-the-loop over an
/// entire population.
///
/// Used as the observer of a [`cpsmon_sim::CohortEngine`] run, it routes
/// member `j`'s record to pool session `j` during the per-member front end
/// and drains one batched forward pass at each step boundary
/// (`on_step_end`), so the whole cohort costs one classifier call per step.
/// Verdicts accumulate as `(member, step, verdict)` triples; fetch them
/// with [`take_verdicts`](Self::take_verdicts).
///
/// The pool must have one session per cohort member (index-aligned).
pub struct CohortPoolBridge<'p, 'm> {
    pool: &'p mut SessionPool<'m>,
    verdicts: Vec<(usize, usize, Verdict)>,
}

impl<'p, 'm> CohortPoolBridge<'p, 'm> {
    /// Wraps a pool sized to the cohort.
    pub fn new(pool: &'p mut SessionPool<'m>) -> Self {
        Self {
            pool,
            verdicts: Vec::new(),
        }
    }

    /// Verdicts collected so far, in emission order.
    pub fn verdicts(&self) -> &[(usize, usize, Verdict)] {
        &self.verdicts
    }

    /// Drains the collected verdicts (for steady-memory benchmark loops).
    pub fn take_verdicts(&mut self) -> Vec<(usize, usize, Verdict)> {
        std::mem::take(&mut self.verdicts)
    }
}

impl cpsmon_sim::CohortObserver for CohortPoolBridge<'_, '_> {
    fn on_step(&mut self, member: usize, _step: usize, record: &StepRecord) {
        self.pool.push(member, record);
    }

    fn on_step_end(&mut self, step: usize) {
        for (member, verdict) in self.pool.drain_ready().into_iter().enumerate() {
            if let Some(v) = verdict {
                self.verdicts.push((member, step, v));
            }
        }
    }
}

/// [`CohortPoolBridge`]'s stateful-LSTM counterpart: feeds a cohort run
/// through an [`LstmSessionPool`], one fused gate-block GEMM per step for
/// the whole population. See [`CohortPoolBridge`] for the protocol.
pub struct CohortLstmBridge<'p, 'm> {
    pool: &'p mut LstmSessionPool<'m>,
    verdicts: Vec<(usize, usize, GuardedVerdict)>,
}

impl<'p, 'm> CohortLstmBridge<'p, 'm> {
    /// Wraps a pool sized to the cohort.
    pub fn new(pool: &'p mut LstmSessionPool<'m>) -> Self {
        Self {
            pool,
            verdicts: Vec::new(),
        }
    }

    /// Verdicts collected so far, in emission order.
    pub fn verdicts(&self) -> &[(usize, usize, GuardedVerdict)] {
        &self.verdicts
    }

    /// Drains the collected verdicts (for steady-memory benchmark loops).
    pub fn take_verdicts(&mut self) -> Vec<(usize, usize, GuardedVerdict)> {
        std::mem::take(&mut self.verdicts)
    }
}

impl cpsmon_sim::CohortObserver for CohortLstmBridge<'_, '_> {
    fn on_step(&mut self, member: usize, _step: usize, record: &StepRecord) {
        self.pool.push(member, record);
    }

    fn on_step_end(&mut self, step: usize) {
        for (member, verdict) in self.pool.drain_ready().into_iter().enumerate() {
            if let Some(v) = verdict {
                self.verdicts.push((member, step, v));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::monitor::MonitorKind;
    use crate::train::TrainConfig;
    use cpsmon_sim::{CampaignConfig, SimulatorKind};

    fn dataset() -> (Vec<cpsmon_sim::SimTrace>, LabeledDataset) {
        let traces = CampaignConfig::new(SimulatorKind::Glucosym)
            .patients(2)
            .runs_per_patient(2)
            .steps(96)
            .fault_ratio(0.5)
            .seed(77)
            .run();
        let ds = DatasetBuilder::new().build(&traces).unwrap();
        (traces, ds)
    }

    #[test]
    fn no_verdicts_until_window_fills() {
        let (traces, ds) = dataset();
        let monitor = MonitorKind::RuleBased
            .train(&ds, &TrainConfig::quick_test())
            .unwrap();
        let mut session = MonitorSession::for_dataset(&monitor, &ds);
        let records = traces[0].records();
        for (t, rec) in records.iter().enumerate() {
            let verdict = session.step(rec);
            if t + 1 < ds.feature_config.window {
                assert!(verdict.is_none(), "premature verdict at step {t}");
            } else {
                let v = verdict.expect("window full");
                assert_eq!(v.step, t);
                assert!(v.label <= 1);
            }
        }
    }

    #[test]
    fn session_matches_batch_on_one_trace() {
        let (traces, ds) = dataset();
        let monitor = MonitorKind::Mlp
            .train(&ds, &TrainConfig::quick_test())
            .unwrap();
        let trace = &traces[0];
        let labels = ds.hazard_config.labels(trace);
        let windows = ds.feature_config.windows(trace, &labels, 0);
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for w in &windows {
            rows.push(w.features.clone());
        }
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let x = ds.normalizer.transform(&Matrix::from_rows(&refs));
        let batch_labels = monitor.predict_x(&x);
        let batch_probs = monitor.as_grad_model().unwrap().predict_proba(&x);

        let mut session = MonitorSession::for_dataset(&monitor, &ds);
        let mut k = 0;
        for rec in trace.records() {
            if let Some(v) = session.step(rec) {
                assert_eq!(v.step, windows[k].step);
                assert_eq!(v.label, batch_labels[k], "label at window {k}");
                assert_eq!(v.proba, batch_probs.get(k, 1), "proba bits at window {k}");
                k += 1;
            }
        }
        assert_eq!(k, windows.len());
    }

    #[test]
    fn pool_matches_individual_sessions() {
        let (traces, ds) = dataset();
        let monitor = MonitorKind::Lstm
            .train(&ds, &TrainConfig::quick_test())
            .unwrap();
        let n = traces.len();
        let steps = traces.iter().map(|t| t.len()).min().unwrap();
        let mut pool = SessionPool::for_dataset(&monitor, &ds, n);
        let mut singles: Vec<MonitorSession<'_>> = (0..n)
            .map(|_| MonitorSession::for_dataset(&monitor, &ds))
            .collect();
        for t in 0..steps {
            let records: Vec<StepRecord> = traces.iter().map(|trace| trace.records()[t]).collect();
            let pooled = pool.step(&records);
            for (i, rec) in records.iter().enumerate() {
                let single = singles[i].step(rec);
                match (pooled[i], single) {
                    (Some(p), Some(s)) => {
                        assert_eq!(p.step, s.step);
                        assert_eq!(p.label, s.label, "session {i} step {t}");
                        assert_eq!(p.proba, s.proba, "session {i} step {t} proba bits");
                    }
                    (None, None) => {}
                    other => panic!("readiness mismatch at session {i} step {t}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn pool_handles_staggered_sessions() {
        let (traces, ds) = dataset();
        let monitor = MonitorKind::RuleBased
            .train(&ds, &TrainConfig::quick_test())
            .unwrap();
        let mut pool = SessionPool::for_dataset(&monitor, &ds, 2);
        let records = traces[0].records();
        // Stagger: session 1 joins 3 steps late via a reset.
        for (t, rec) in records.iter().take(10).enumerate() {
            if t == 3 {
                pool.sessions_mut()[1].reset();
            }
            let out = pool.step(&[*rec, *rec]);
            let w = ds.feature_config.window;
            assert_eq!(out[0].is_some(), t + 1 >= w);
            if t >= 3 {
                assert_eq!(out[1].is_some(), t - 3 + 1 >= w);
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-finite sensor input")]
    fn non_finite_input_is_rejected_at_session_boundary() {
        // Regression: NaN used to flow silently through normalization into
        // the network and poison every later window of the ring.
        let (traces, ds) = dataset();
        let mut ws = WindowStream::new(ds.feature_config, ds.normalizer.clone());
        let mut bad = traces[0].records()[0];
        bad.bg_sensor = f64::NAN;
        ws.push(&bad);
    }

    #[test]
    fn guarded_session_matches_unguarded_on_clean_trace() {
        let (traces, ds) = dataset();
        let monitor = MonitorKind::Mlp
            .train(&ds, &TrainConfig::quick_test())
            .unwrap();
        let mut plain = MonitorSession::for_dataset(&monitor, &ds);
        let mut guarded =
            GuardedSession::for_dataset(&monitor, &ds, crate::guard::GuardPolicy::aps());
        for rec in traces[0].records() {
            let a = plain.step(rec);
            let b = guarded.step(rec);
            match (a, b) {
                (Some(a), Some(b)) => {
                    assert_eq!(b.health, HealthState::Healthy);
                    assert!(!b.imputed);
                    assert_eq!(a.step, b.verdict.step);
                    assert_eq!(a.label, b.verdict.label);
                    assert_eq!(a.proba, b.verdict.proba, "proba bits must match");
                }
                (None, None) => {}
                other => panic!("readiness mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn guarded_session_survives_nan_and_falls_back() {
        let (traces, ds) = dataset();
        let monitor = MonitorKind::Mlp
            .train(&ds, &TrainConfig::quick_test())
            .unwrap();
        let policy = crate::guard::GuardPolicy::aps();
        let mut guarded = GuardedSession::for_dataset(&monitor, &ds, policy);
        let rules = cpsmon_stl::RuleMonitor::new(ds.rules);
        let mut saw_fallback = false;
        for (t, rec) in traces[0].records().iter().enumerate() {
            let mut r = *rec;
            if t >= 20 {
                r.bg_sensor = f64::NAN; // total CGM loss from step 20 on
            }
            if let Some(v) = guarded.step(&r) {
                if v.health == HealthState::Fallback {
                    saw_fallback = true;
                    let expect = rules.predict(&guarded.session().window().context());
                    assert_eq!(v.verdict.label, expect, "fallback label is the rule's");
                    assert_eq!(v.verdict.proba, expect as f64);
                }
            }
        }
        assert!(saw_fallback, "budget exhaustion must reach Fallback");
        assert_eq!(guarded.health(), HealthState::Fallback);
    }

    fn lstm_net(ds: &LabeledDataset) -> TrainedMonitor {
        MonitorKind::Lstm
            .train(ds, &TrainConfig::quick_test())
            .unwrap()
    }

    fn net_of(monitor: &TrainedMonitor) -> &cpsmon_nn::LstmNet {
        match &monitor.model {
            MonitorModel::Lstm(net) => net,
            _ => unreachable!(),
        }
    }

    #[test]
    fn stateful_pool_bit_identical_to_individual_sessions() {
        let (traces, ds) = dataset();
        let monitor = lstm_net(&ds);
        let net = net_of(&monitor);
        let n = traces.len();
        let steps = traces.iter().map(|t| t.len()).min().unwrap();
        let mut pool = LstmSessionPool::for_dataset(LstmEngine::F64(net), &ds, n);
        let mut singles: Vec<LstmStreamSession<'_>> = (0..n)
            .map(|_| LstmStreamSession::for_dataset(LstmEngine::F64(net), &ds))
            .collect();
        for t in 0..steps {
            let records: Vec<StepRecord> = traces.iter().map(|tr| tr.records()[t]).collect();
            let pooled = pool.step(&records);
            for (i, rec) in records.iter().enumerate() {
                let s = singles[i].step(rec);
                let p = pooled[i].expect("stateful sessions always emit").verdict;
                assert_eq!(p.step, s.step);
                assert_eq!(p.label, s.label, "session {i} step {t}");
                assert_eq!(
                    p.proba.to_bits(),
                    s.proba.to_bits(),
                    "session {i} step {t} proba bits"
                );
            }
        }
    }

    #[test]
    fn stateful_pool_ragged_pushes_match_individual_sessions() {
        let (traces, ds) = dataset();
        let monitor = lstm_net(&ds);
        let net = net_of(&monitor);
        let records = traces[0].records();
        let mut pool = LstmSessionPool::for_dataset(LstmEngine::F64(net), &ds, 3);
        let mut singles: Vec<LstmStreamSession<'_>> = (0..3)
            .map(|_| LstmStreamSession::for_dataset(LstmEngine::F64(net), &ds))
            .collect();
        // Session i is pushed only on ticks where t % (i + 1) == 0, so every
        // drain sees a different ragged ready-set (including singletons).
        for (t, rec) in records.iter().take(24).enumerate() {
            for i in 0..3 {
                if t % (i + 1) == 0 {
                    pool.push(i, rec);
                }
            }
            let pooled = pool.drain_ready();
            for (i, slot) in pooled.iter().enumerate() {
                if t % (i + 1) == 0 {
                    let s = singles[i].step(rec);
                    let p = slot.expect("pushed sessions emit").verdict;
                    assert_eq!(p.step, s.step, "session {i} tick {t}");
                    assert_eq!(
                        p.proba.to_bits(),
                        s.proba.to_bits(),
                        "session {i} tick {t} proba bits"
                    );
                } else {
                    assert!(slot.is_none(), "unpushed session {i} emitted at {t}");
                }
            }
        }
    }

    #[test]
    fn stateful_pool_f32_engine_matches_individual_f32_sessions() {
        let (traces, ds) = dataset();
        let monitor = lstm_net(&ds);
        let net = net_of(&monitor);
        let records = traces[0].records();
        let mut pool = LstmSessionPool::for_dataset(LstmEngine::f32_from(net), &ds, 2);
        let mut single = LstmStreamSession::for_dataset(LstmEngine::f32_from(net), &ds);
        assert_eq!(pool.engine_label(), "f32");
        for rec in records.iter().take(20) {
            let pooled = pool.step(&[*rec, *rec]);
            let s = single.step(rec);
            for slot in &pooled {
                let p = slot.expect("emits").verdict;
                assert_eq!(p.proba.to_bits(), s.proba.to_bits(), "f32 pool diverged");
            }
        }
    }

    #[test]
    #[should_panic(expected = "pushed twice without drain_ready")]
    fn stateful_pool_rejects_double_push() {
        let (traces, ds) = dataset();
        let monitor = lstm_net(&ds);
        let net = net_of(&monitor);
        let mut pool = LstmSessionPool::for_dataset(LstmEngine::F64(net), &ds, 1);
        let rec = traces[0].records()[0];
        pool.push(0, &rec);
        pool.push(0, &rec);
    }

    #[test]
    fn stateful_pool_reset_session_restarts_stream() {
        let (traces, ds) = dataset();
        let monitor = lstm_net(&ds);
        let net = net_of(&monitor);
        let records = traces[0].records();
        let mut pool = LstmSessionPool::for_dataset(LstmEngine::F64(net), &ds, 2);
        let mut fresh = LstmStreamSession::for_dataset(LstmEngine::F64(net), &ds);
        for rec in records.iter().take(8) {
            pool.step(&[*rec, *rec]);
        }
        pool.reset_session(1);
        for (k, rec) in records.iter().take(8).enumerate() {
            let pooled = pool.step(&[*rec, *rec]);
            let s = fresh.step(rec);
            let p = pooled[1].expect("emits").verdict;
            assert_eq!(p.step, k, "reset session restarts step numbering");
            assert_eq!(p.proba.to_bits(), s.proba.to_bits(), "reset slot diverged");
        }
    }

    #[test]
    fn guarded_stateful_pool_falls_back_per_slot() {
        let (traces, ds) = dataset();
        let monitor = lstm_net(&ds);
        let net = net_of(&monitor);
        let rules = RuleMonitor::new(ds.rules);
        let mut pool = LstmSessionPool::for_dataset(LstmEngine::F64(net), &ds, 2)
            .with_guards(crate::guard::GuardPolicy::aps(), rules);
        let mut clean_single = LstmStreamSession::for_dataset(LstmEngine::F64(net), &ds);
        let mut saw_fallback = false;
        for (t, rec) in traces[0].records().iter().take(60).enumerate() {
            let mut bad = *rec;
            if t >= 10 {
                bad.bg_sensor = f64::NAN; // slot 1 loses its CGM
            }
            pool.push(0, rec);
            pool.push(1, &bad);
            let out = pool.drain_ready();
            let clean = clean_single.step(rec);
            let v0 = out[0].expect("emits");
            // Slot 0's stream is clean: guard passthrough is bit-exact.
            assert_eq!(v0.health, HealthState::Healthy);
            assert!(!v0.imputed);
            assert_eq!(v0.verdict.proba.to_bits(), clean.proba.to_bits());
            let v1 = out[1].expect("emits");
            if v1.health == HealthState::Fallback {
                saw_fallback = true;
                assert!(v1.verdict.proba == 0.0 || v1.verdict.proba == 1.0);
            }
        }
        assert!(saw_fallback, "budget exhaustion must reach Fallback");
    }

    #[test]
    fn pool_latency_attribution_stays_below_pool_step() {
        // A windowed pool of n sessions must not charge each verdict the
        // full batch: the attributed share decreases with pool size.
        let (traces, ds) = dataset();
        let monitor = lstm_net(&ds);
        let n = 4;
        let mut pool = SessionPool::for_dataset(&monitor, &ds, n);
        let records = traces[0].records();
        let mut checked = false;
        for rec in records.iter().take(12) {
            let recs: Vec<StepRecord> = vec![*rec; n];
            let t0 = Instant::now();
            let out = pool.step(&recs);
            let whole = t0.elapsed();
            for v in out.into_iter().flatten() {
                assert!(
                    v.latency <= whole,
                    "attributed latency {:?} exceeds whole pool step {:?}",
                    v.latency,
                    whole
                );
                checked = true;
            }
        }
        assert!(checked, "pool never became ready");
    }

    #[test]
    fn solo_pipeline_attribution_sums_to_latency() {
        let (traces, ds) = dataset();
        let monitor = MonitorKind::Mlp
            .train(&ds, &TrainConfig::quick_test())
            .unwrap();
        let mut session = PipelineSession::new(MonitorSession::for_dataset(&monitor, &ds))
            .with_guard(crate::guard::GuardPolicy::aps(), RuleMonitor::new(ds.rules))
            .with_mitigator(Mitigator::aps());
        assert_eq!(
            session.stage_names(),
            ["guard", "featurize", "monitor", "mitigate"]
        );
        let mut checked = 0;
        for rec in traces[0].records() {
            if let Some(v) = session.step(rec) {
                assert_eq!(v.verdict.latency, v.verdict.attribution.total());
                assert_eq!(v.verdict.attribution.queue, Duration::ZERO, "solo session");
                assert!(v.verdict.attribution.compute > Duration::ZERO);
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn mitigated_pool_attribution_sums_to_latency() {
        let (traces, ds) = dataset();
        let monitor = MonitorKind::Mlp
            .train(&ds, &TrainConfig::quick_test())
            .unwrap();
        let n = traces.len();
        let mut pool = SessionPool::for_dataset(&monitor, &ds, n).with_mitigator(Mitigator::aps());
        let steps = traces.iter().map(|t| t.len()).min().unwrap();
        let mut checked = 0;
        for t in 0..steps {
            let records: Vec<StepRecord> = traces.iter().map(|tr| tr.records()[t]).collect();
            for (i, rec) in records.iter().enumerate() {
                pool.push(i, rec);
            }
            for v in pool.drain_ready_guarded().into_iter().flatten() {
                let a = v.verdict.attribution;
                assert_eq!(v.verdict.latency, a.total(), "queue+batch share+mitigation");
                assert!(a.compute > Duration::ZERO);
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn mitigated_lstm_pool_attribution_sums_to_latency() {
        let (traces, ds) = dataset();
        let monitor = lstm_net(&ds);
        let net = net_of(&monitor);
        let mut pool = LstmSessionPool::for_dataset(LstmEngine::F64(net), &ds, 2)
            .with_mitigator(Mitigator::aps());
        for rec in traces[0].records().iter().take(16) {
            for v in pool.step(&[*rec, *rec]).into_iter().flatten() {
                assert_eq!(v.verdict.latency, v.verdict.attribution.total());
            }
        }
    }

    #[test]
    fn mitigator_never_alters_classification() {
        // Armed vs. unarmed pools over the same records: label and proba
        // bit-identical; only the action annotation differs.
        let (traces, ds) = dataset();
        let monitor = MonitorKind::Mlp
            .train(&ds, &TrainConfig::quick_test())
            .unwrap();
        let n = traces.len();
        let mut plain = SessionPool::for_dataset(&monitor, &ds, n);
        let mut armed = SessionPool::for_dataset(&monitor, &ds, n).with_mitigator(Mitigator::aps());
        let steps = traces.iter().map(|t| t.len()).min().unwrap();
        for t in 0..steps {
            let records: Vec<StepRecord> = traces.iter().map(|tr| tr.records()[t]).collect();
            let a = plain.step(&records);
            let b = armed.step(&records);
            for i in 0..n {
                match (a[i], b[i]) {
                    (Some(x), Some(y)) => {
                        assert_eq!(x.label, y.label, "session {i} step {t}");
                        assert_eq!(x.proba.to_bits(), y.proba.to_bits());
                    }
                    (None, None) => {}
                    other => panic!("readiness mismatch: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn windowed_pool_reset_session_clears_pending_and_guard() {
        // Regression (see DESIGN.md §14): resetting a slot through
        // `sessions_mut()[i].reset()` used to leave the queued tick — and,
        // with guards armed, the old trace's staleness budget — behind.
        let (traces, ds) = dataset();
        let monitor = MonitorKind::RuleBased
            .train(&ds, &TrainConfig::quick_test())
            .unwrap();
        let mut pool = SessionPool::for_dataset(&monitor, &ds, 1)
            .with_guards(crate::guard::GuardPolicy::aps(), RuleMonitor::new(ds.rules));
        // Push past the window so a pending tick is queued, then reset
        // without draining: the stale tick must not survive.
        for rec in traces[0].records().iter().take(ds.feature_config.window) {
            pool.push(0, rec);
        }
        pool.reset_session(0);
        assert!(pool.drain_ready()[0].is_none(), "stale pending tick leaked");
        for (k, rec) in traces[0].records().iter().take(8).enumerate() {
            let out = pool.step(std::slice::from_ref(rec));
            if let Some(v) = out[0] {
                assert_eq!(v.step, k, "step numbering restarts after reset");
            }
        }
    }

    #[test]
    fn stream_reset_refills_window() {
        let (traces, ds) = dataset();
        let mut ws = WindowStream::new(ds.feature_config, ds.normalizer.clone());
        let records = traces[0].records();
        for rec in &records[..ds.feature_config.window] {
            ws.push(rec);
        }
        assert!(ws.is_ready());
        ws.reset();
        assert!(!ws.is_ready());
        assert_eq!(ws.steps_seen(), 0);
        assert_eq!(ws.push(&records[0]), None);
    }

    #[test]
    fn cohort_bridge_matches_pool_over_scalar_traces() {
        let (traces, ds) = dataset();
        let monitor = MonitorKind::Mlp
            .train(&ds, &TrainConfig::quick_test())
            .unwrap();
        let cfg = CampaignConfig::new(SimulatorKind::Glucosym)
            .patients(2)
            .runs_per_patient(2)
            .steps(96)
            .fault_ratio(0.5)
            .seed(77);
        let n = traces.len();
        // Reference: the same records through a pool driven per-step from
        // the scalar traces.
        let mut ref_pool = SessionPool::for_dataset(&monitor, &ds, n);
        let mut expected: Vec<(usize, usize, usize, u64)> = Vec::new();
        let steps = traces[0].len();
        for t in 0..steps {
            let records: Vec<StepRecord> = traces.iter().map(|tr| tr.records()[t]).collect();
            for (i, v) in ref_pool.step(&records).into_iter().enumerate() {
                if let Some(v) = v {
                    expected.push((i, t, v.label, v.proba.to_bits()));
                }
            }
        }
        // Cohort run with the bridge as monitor-in-the-loop observer.
        let mut pool = SessionPool::for_dataset(&monitor, &ds, n);
        let mut bridge = CohortPoolBridge::new(&mut pool);
        cpsmon_sim::CohortEngine::from_campaign(&cfg).run_observed(&mut bridge);
        let got: Vec<(usize, usize, usize, u64)> = bridge
            .take_verdicts()
            .into_iter()
            .map(|(m, t, v)| (m, t, v.label, v.proba.to_bits()))
            .collect();
        assert!(!got.is_empty());
        assert_eq!(got, expected);
    }

    #[test]
    fn cohort_lstm_bridge_matches_pool_over_scalar_traces() {
        let (traces, ds) = dataset();
        let monitor = lstm_net(&ds);
        let net = net_of(&monitor);
        let cfg = CampaignConfig::new(SimulatorKind::Glucosym)
            .patients(2)
            .runs_per_patient(2)
            .steps(96)
            .fault_ratio(0.5)
            .seed(77);
        let n = traces.len();
        let mut ref_pool = LstmSessionPool::for_dataset(LstmEngine::F64(net), &ds, n);
        let mut expected: Vec<(usize, usize, usize, u64)> = Vec::new();
        let steps = traces[0].len();
        for t in 0..steps {
            let records: Vec<StepRecord> = traces.iter().map(|tr| tr.records()[t]).collect();
            for (i, v) in ref_pool.step(&records).into_iter().enumerate() {
                if let Some(v) = v {
                    expected.push((i, t, v.verdict.label, v.verdict.proba.to_bits()));
                }
            }
        }
        let mut pool = LstmSessionPool::for_dataset(LstmEngine::F64(net), &ds, n);
        let mut bridge = CohortLstmBridge::new(&mut pool);
        cpsmon_sim::CohortEngine::from_campaign(&cfg).run_observed(&mut bridge);
        let got: Vec<(usize, usize, usize, u64)> = bridge
            .take_verdicts()
            .into_iter()
            .map(|(m, t, v)| (m, t, v.verdict.label, v.verdict.proba.to_bits()))
            .collect();
        assert!(!got.is_empty());
        assert_eq!(got, expected);
    }
}
