//! Training configuration and loops for the ML monitors.

use crate::dataset::LabeledDataset;
use cpsmon_nn::rng::SmallRng;
use cpsmon_nn::{AdamTrainer, LstmConfig, LstmNet, MlpConfig, MlpNet, SemanticLoss};

/// Hyper-parameters for monitor training.
///
/// Defaults follow §IV-A of the paper: MLP 256-128, stacked LSTM 128-64
/// over 6 timesteps, Adam at learning rate 0.001, sparse categorical
/// cross-entropy. The semantic weight `w` of Eq. 2 is not published; we
/// default to 1.0 from the `cpsmon-bench` ablation sweep: it preserves
/// clean F1 (within ±0.04 of the baselines on both simulators) while
/// cutting FGSM robustness error by ~10–30 %; `w = 2` roughly doubles the
/// reduction at a visible clean-F1 cost.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Semantic-loss weight `w` (used by the Custom variants).
    pub semantic_weight: f64,
    /// MLP hidden-layer sizes.
    pub mlp_hidden: Vec<usize>,
    /// LSTM stacked hidden sizes.
    pub lstm_hidden: Vec<usize>,
    /// Weight-init and shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 8,
            batch_size: 128,
            lr: 1e-3,
            semantic_weight: 1.0,
            mlp_hidden: vec![256, 128],
            lstm_hidden: vec![128, 64],
            seed: 0,
        }
    }
}

impl TrainConfig {
    /// A down-scaled configuration for unit tests and doc examples: tiny
    /// networks, few epochs. Not representative of paper results.
    pub fn quick_test() -> Self {
        Self {
            epochs: 3,
            batch_size: 64,
            lr: 5e-3,
            semantic_weight: 1.0,
            mlp_hidden: vec![32, 16],
            lstm_hidden: vec![16, 8],
            seed: 0,
        }
    }
}

/// Shuffled minibatch index stream shared by both training loops.
fn minibatches(n: usize, batch: usize, rng: &mut SmallRng) -> Vec<Vec<usize>> {
    let mut idx: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut idx);
    idx.chunks(batch.max(1)).map(<[usize]>::to_vec).collect()
}

/// Trains an MLP monitor; `custom` enables the Eq. 2 semantic loss.
pub fn train_mlp(ds: &LabeledDataset, cfg: &TrainConfig, custom: bool) -> MlpNet {
    let mut net = MlpNet::new(&MlpConfig {
        input_dim: ds.feature_dim(),
        hidden: cfg.mlp_hidden.clone(),
        classes: 2,
        seed: cfg.seed,
    });
    net.semantic = SemanticLoss::new(cfg.semantic_weight);
    let mut trainer = AdamTrainer::new(net.param_count(), cfg.lr);
    let mut rng = SmallRng::new(cfg.seed ^ 0x6d6c_7074_7261_696e);
    let train = &ds.train;
    for _ in 0..cfg.epochs {
        for batch in minibatches(train.len(), cfg.batch_size, &mut rng) {
            let x = train.x.select_rows(&batch);
            let labels: Vec<usize> = batch.iter().map(|&i| train.labels[i]).collect();
            if custom {
                let ind: Vec<f64> = batch.iter().map(|&i| train.indicators[i]).collect();
                net.train_batch(&x, &labels, Some(&ind), &mut trainer);
            } else {
                net.train_batch(&x, &labels, None, &mut trainer);
            }
        }
    }
    net
}

/// Trains an LSTM monitor; `custom` enables the Eq. 2 semantic loss.
pub fn train_lstm(ds: &LabeledDataset, cfg: &TrainConfig, custom: bool) -> LstmNet {
    let window = ds.feature_config.window;
    let feature_dim = ds.feature_dim() / window;
    let mut net = LstmNet::new(&LstmConfig {
        feature_dim,
        timesteps: window,
        hidden: cfg.lstm_hidden.clone(),
        classes: 2,
        seed: cfg.seed,
    });
    net.semantic = SemanticLoss::new(cfg.semantic_weight);
    let mut trainer = AdamTrainer::new(net.param_count(), cfg.lr);
    let mut rng = SmallRng::new(cfg.seed ^ 0x6c73_7472_6169_6e00);
    let train = &ds.train;
    for _ in 0..cfg.epochs {
        for batch in minibatches(train.len(), cfg.batch_size, &mut rng) {
            let x = train.x.select_rows(&batch);
            let labels: Vec<usize> = batch.iter().map(|&i| train.labels[i]).collect();
            if custom {
                let ind: Vec<f64> = batch.iter().map(|&i| train.indicators[i]).collect();
                net.train_batch(&x, &labels, Some(&ind), &mut trainer);
            } else {
                net.train_batch(&x, &labels, None, &mut trainer);
            }
        }
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use cpsmon_nn::GradModel;
    use cpsmon_sim::{CampaignConfig, SimulatorKind};

    fn dataset() -> LabeledDataset {
        let traces = CampaignConfig::new(SimulatorKind::Glucosym)
            .patients(2)
            .runs_per_patient(3)
            .steps(144)
            .fault_ratio(0.6)
            .seed(21)
            .run();
        DatasetBuilder::new().build(&traces).unwrap()
    }

    #[test]
    fn mlp_training_beats_majority_class() {
        let ds = dataset();
        let net = train_mlp(&ds, &TrainConfig::quick_test(), false);
        let preds = net.predict_labels(&ds.train.x);
        let correct = preds
            .iter()
            .zip(&ds.train.labels)
            .filter(|(p, l)| p == l)
            .count();
        let acc = correct as f64 / preds.len() as f64;
        let majority = 1.0
            - ds.train
                .positive_ratio()
                .min(1.0 - ds.train.positive_ratio());
        assert!(
            acc > majority.max(0.6),
            "train acc {acc} vs majority {majority}"
        );
    }

    #[test]
    fn lstm_training_beats_majority_class() {
        let ds = dataset();
        let net = train_lstm(&ds, &TrainConfig::quick_test(), false);
        let preds = net.predict_labels(&ds.train.x);
        let correct = preds
            .iter()
            .zip(&ds.train.labels)
            .filter(|(p, l)| p == l)
            .count();
        let acc = correct as f64 / preds.len() as f64;
        assert!(acc > 0.6, "train acc {acc}");
    }

    #[test]
    fn custom_training_accepts_indicators() {
        let ds = dataset();
        let net = train_mlp(&ds, &TrainConfig::quick_test(), true);
        // Should still predict sensibly (smoke test).
        let preds = net.predict_labels(&ds.test.x);
        assert_eq!(preds.len(), ds.test.len());
    }

    #[test]
    fn training_is_deterministic() {
        let ds = dataset();
        let cfg = TrainConfig::quick_test();
        let a = train_mlp(&ds, &cfg, false);
        let b = train_mlp(&ds, &cfg, false);
        assert_eq!(a.predict_proba(&ds.test.x), b.predict_proba(&ds.test.x));
    }

    #[test]
    fn minibatches_cover_all_indices() {
        let mut rng = SmallRng::new(1);
        let batches = minibatches(10, 3, &mut rng);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }
}
