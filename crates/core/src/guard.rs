//! Input guarding and graceful degradation for deployed monitor sessions.
//!
//! A monitor in the control loop cannot assume its inputs are valid: CGM
//! samples drop out, transducers freeze, calibration glitches inject
//! spikes (see `cpsmon_sim::faults`). This module puts an [`InputGuard`]
//! in front of the featurizer that, per channel:
//!
//! 1. **flags** invalid samples — non-finite values, out-of-physical-range
//!    values ([`crate::detectors::InvariantRange`] semantics), implausible
//!    jumps, and frozen (stuck-at) runs;
//! 2. **imputes** flagged samples via hold-last or linear extrapolation,
//!    within a bounded *staleness budget*;
//! 3. **degrades** to the knowledge-only rule monitor once any channel's
//!    budget is exhausted (the paper's own resilience result: the
//!    rule-based monitor is the robust fallback), and
//! 4. **recovers** automatically after a configurable run of clean steps.
//!
//! Each step reports a [`HealthState`]:
//!
//! ```text
//!            any channel imputed                 budget exhausted
//!  Healthy ─────────────────────▶ Degraded ─────────────────────▶ Fallback
//!     ▲                              │                               │
//!     │        clean step            │      recovery_steps clean     │
//!     └──────────────────────────────┴───────────────────────────────┘
//! ```
//!
//! The guard's fast path is engineered for the zero-fault case: a clean
//! sample costs a handful of comparisons and three stores, and the
//! sanitized record is **bit-identical** to the input — guarded sessions
//! therefore produce exactly the verdicts unguarded ones do on clean
//! traces (property-tested in the `faults` suite).

use crate::detectors::InvariantRange;
use cpsmon_sim::trace::StepRecord;

/// Session health reported with every guarded verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HealthState {
    /// All channels clean; the ML monitor's verdict is authoritative.
    Healthy,
    /// At least one channel was imputed this step, within budget; the ML
    /// monitor still runs, on repaired inputs.
    Degraded,
    /// A staleness budget was exhausted; verdicts come from the rule-based
    /// fallback until the input stream proves clean again.
    Fallback,
}

impl HealthState {
    /// Table label (`healthy` / `degraded` / `fallback`).
    pub fn label(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Fallback => "fallback",
        }
    }
}

/// How flagged samples are repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Imputation {
    /// Repeat the last accepted value.
    HoldLast,
    /// Extrapolate the last two accepted values linearly (clamped to the
    /// channel's physical range); falls back to hold-last with fewer than
    /// two accepted samples.
    Linear,
}

/// Validity policy for one channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelPolicy {
    /// Physical range; samples outside `[lo, hi]` are flagged. `max_step`
    /// bounds the jump check when `check_jump` is set.
    pub range: InvariantRange,
    /// Whether implausible jumps (vs. the last accepted value) are
    /// flagged. Only meaningful for channels with bounded slew (CGM);
    /// actuation channels jump legitimately (boluses).
    pub check_jump: bool,
    /// Flag the channel as frozen after this many *consecutive repeats*
    /// of the same bit pattern (`None` disables — e.g. a suspended pump
    /// legitimately reports 0.0 for hours).
    pub freeze_steps: Option<usize>,
    /// Imputation value when no sample was ever accepted.
    pub neutral: f64,
}

/// Guard policy for the three monitor-observable channels plus the
/// degradation state machine's budgets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardPolicy {
    /// CGM glucose policy.
    pub bg: ChannelPolicy,
    /// Insulin-on-board policy.
    pub iob: ChannelPolicy,
    /// Delivered-rate policy.
    pub rate: ChannelPolicy,
    /// Consecutive imputed steps tolerated per channel before the session
    /// degrades to the rule fallback.
    pub staleness_budget: usize,
    /// Consecutive fully-clean steps required to leave `Fallback`.
    pub recovery_steps: usize,
    /// Repair strategy for flagged samples.
    pub imputation: Imputation,
}

impl GuardPolicy {
    /// The APS deployment defaults.
    ///
    /// Ranges are deliberately *looser* than the detector defaults
    /// ([`InvariantRange::cgm`] is a detector, not a validity gate): the
    /// guard must never flag values a real run can produce, or guarded
    /// sessions would diverge from unguarded ones on clean traces. CGM
    /// readings are accepted down to the sensor floor and up to 1000
    /// mg/dL with jumps up to 100 mg/dL per step; IOB and delivered rate
    /// accept anything finite in `[0, 250]` (the pump hardware clamp is
    /// 130 U/h) with no jump or freeze checks — boluses jump by design,
    /// and a suspended pump reports exactly 0.0 indefinitely.
    pub fn aps() -> Self {
        GuardPolicy {
            bg: ChannelPolicy {
                range: InvariantRange::new(0.5, 1000.0, 100.0),
                check_jump: true,
                freeze_steps: Some(6),
                neutral: 120.0,
            },
            iob: ChannelPolicy {
                range: InvariantRange::new(0.0, 250.0, f64::INFINITY),
                check_jump: false,
                freeze_steps: None,
                neutral: 0.0,
            },
            rate: ChannelPolicy {
                range: InvariantRange::new(0.0, 250.0, f64::INFINITY),
                check_jump: false,
                freeze_steps: None,
                neutral: 0.0,
            },
            staleness_budget: 6,
            recovery_steps: 6,
            imputation: Imputation::HoldLast,
        }
    }
}

impl Default for GuardPolicy {
    fn default() -> Self {
        Self::aps()
    }
}

/// Per-step guard outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardStatus {
    /// Session health after this step.
    pub health: HealthState,
    /// Which channels were imputed this step (`[bg, iob, rate]`).
    pub imputed: [bool; 3],
}

impl GuardStatus {
    /// Whether any channel was imputed this step.
    pub fn any_imputed(&self) -> bool {
        self.imputed.iter().any(|&b| b)
    }
}

/// Validity + imputation state for one channel.
#[derive(Debug, Clone, Copy)]
struct ChannelGuard {
    policy: ChannelPolicy,
    /// Last admitted value (accepted or imputed) — the jump reference and
    /// hold-last source.
    last_good: Option<f64>,
    /// The admitted value before `last_good` (linear extrapolation).
    prev_good: Option<f64>,
    /// Last *raw* sample (freeze detection and jump resynchronization).
    last_raw: Option<f64>,
    /// Consecutive raw samples bit-identical to their predecessor.
    freeze_run: usize,
    /// Consecutive imputed steps.
    stale_run: usize,
}

impl ChannelGuard {
    fn new(policy: ChannelPolicy) -> Self {
        Self {
            policy,
            last_good: None,
            prev_good: None,
            last_raw: None,
            freeze_run: 0,
            stale_run: 0,
        }
    }

    fn reset(&mut self) {
        self.last_good = None;
        self.prev_good = None;
        self.last_raw = None;
        self.freeze_run = 0;
        self.stale_run = 0;
    }

    /// Admits one raw sample: returns the sanitized value and whether it
    /// was imputed.
    fn admit(&mut self, v: f64, imputation: Imputation) -> (f64, bool) {
        let prev_raw = self.last_raw;
        let mut flagged = !v.is_finite();
        if !flagged {
            // Freeze tracking runs on the raw stream (bit equality: CGM
            // calibration noise makes natural exact repeats implausible).
            if let Some(n) = self.policy.freeze_steps {
                match prev_raw {
                    Some(p) if p.to_bits() == v.to_bits() => self.freeze_run += 1,
                    _ => self.freeze_run = 0,
                }
                flagged = self.freeze_run >= n;
            }
            self.last_raw = Some(v);
            if !flagged {
                let inv = self.policy.range;
                if v < inv.lo || v > inv.hi {
                    flagged = true;
                } else if self.policy.check_jump {
                    // Jump vs. the last *admitted* value — but resync when
                    // the raw stream is self-consistent (e.g. the first
                    // sample after a stuck-at window jumps relative to our
                    // imputed state, not relative to its raw predecessor).
                    let jumped = self.last_good.is_some_and(|g| (v - g).abs() > inv.max_step);
                    let raw_consistent = prev_raw.is_some_and(|p| (v - p).abs() <= inv.max_step);
                    flagged = jumped && !raw_consistent;
                }
            }
        }
        if !flagged {
            self.stale_run = 0;
            self.prev_good = self.last_good;
            self.last_good = Some(v);
            return (v, false);
        }
        self.stale_run += 1;
        let inv = self.policy.range;
        let imputed = match (imputation, self.last_good, self.prev_good) {
            (_, None, _) => self.policy.neutral,
            (Imputation::HoldLast, Some(l), _) | (Imputation::Linear, Some(l), None) => l,
            (Imputation::Linear, Some(l), Some(p)) => (2.0 * l - p).clamp(inv.lo, inv.hi),
        };
        self.prev_good = self.last_good;
        self.last_good = Some(imputed);
        (imputed, true)
    }
}

/// The guard in front of a monitor session: sanitizes each [`StepRecord`]
/// and runs the Healthy → Degraded → Fallback state machine.
#[derive(Debug, Clone)]
pub struct InputGuard {
    policy: GuardPolicy,
    bg: ChannelGuard,
    iob: ChannelGuard,
    rate: ChannelGuard,
    health: HealthState,
    clean_streak: usize,
}

impl InputGuard {
    /// Creates a guard with the given policy.
    pub fn new(policy: GuardPolicy) -> Self {
        Self {
            policy,
            bg: ChannelGuard::new(policy.bg),
            iob: ChannelGuard::new(policy.iob),
            rate: ChannelGuard::new(policy.rate),
            health: HealthState::Healthy,
            clean_streak: 0,
        }
    }

    /// The policy the guard was built with.
    pub fn policy(&self) -> &GuardPolicy {
        &self.policy
    }

    /// Current health (as of the last sanitized step).
    pub fn health(&self) -> HealthState {
        self.health
    }

    /// Sanitizes one record: every monitor-observable channel is admitted
    /// or imputed, and the health state machine advances. Channels the
    /// monitor never featurizes (`bg_true`, `commanded_rate`, `carbs`)
    /// pass through untouched.
    ///
    /// For a fully clean record the output is bit-identical to the input.
    pub fn sanitize(&mut self, rec: &StepRecord) -> (StepRecord, GuardStatus) {
        let imp = self.policy.imputation;
        let (bg, bg_i) = self.bg.admit(rec.bg_sensor, imp);
        let (iob, iob_i) = self.iob.admit(rec.iob, imp);
        let (rate, rate_i) = self.rate.admit(rec.delivered_rate, imp);
        let any = bg_i || iob_i || rate_i;
        if any {
            self.clean_streak = 0;
        } else {
            self.clean_streak += 1;
        }
        let max_stale = self
            .bg
            .stale_run
            .max(self.iob.stale_run)
            .max(self.rate.stale_run);
        self.health = if max_stale > self.policy.staleness_budget {
            HealthState::Fallback
        } else if self.health == HealthState::Fallback
            && self.clean_streak < self.policy.recovery_steps
        {
            // Budget refills only after a sustained clean run.
            HealthState::Fallback
        } else if any {
            HealthState::Degraded
        } else {
            HealthState::Healthy
        };
        let mut out = *rec;
        out.bg_sensor = bg;
        out.iob = iob;
        out.delivered_rate = rate;
        (
            out,
            GuardStatus {
                health: self.health,
                imputed: [bg_i, iob_i, rate_i],
            },
        )
    }

    /// Forgets all channel state and re-arms as `Healthy` (e.g. at a
    /// patient hand-over).
    pub fn reset(&mut self) {
        self.bg.reset();
        self.iob.reset();
        self.rate.reset();
        self.health = HealthState::Healthy;
        self.clean_streak = 0;
    }
}

/// A bank of per-session [`InputGuard`]s sharing one policy — the guarded
/// front end of a session pool. Each slot sanitizes its own patient stream
/// independently, so one patient's sensor outage never degrades another's
/// health state.
#[derive(Debug, Clone)]
pub struct GuardBank {
    guards: Vec<InputGuard>,
}

impl GuardBank {
    /// Creates `n` independent guards with the same policy.
    pub fn new(policy: GuardPolicy, n: usize) -> Self {
        Self {
            guards: vec![InputGuard::new(policy); n],
        }
    }

    /// Number of guard slots.
    pub fn len(&self) -> usize {
        self.guards.len()
    }

    /// Whether the bank has no slots.
    pub fn is_empty(&self) -> bool {
        self.guards.is_empty()
    }

    /// Sanitizes one record through slot `i`'s guard.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn sanitize(&mut self, i: usize, rec: &StepRecord) -> (StepRecord, GuardStatus) {
        self.guards[i].sanitize(rec)
    }

    /// Slot `i`'s current health.
    pub fn health(&self, i: usize) -> HealthState {
        self.guards[i].health()
    }

    /// Slot `i`'s guard (e.g. for policy inspection).
    pub fn guard(&self, i: usize) -> &InputGuard {
        &self.guards[i]
    }

    /// Resets one slot (patient hand-over in that bed only).
    pub fn reset(&mut self, i: usize) {
        self.guards[i].reset();
    }

    /// Resets every slot.
    pub fn reset_all(&mut self) {
        for g in &mut self.guards {
            g.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(bg: f64, iob: f64, rate: f64) -> StepRecord {
        StepRecord {
            bg_true: bg,
            bg_sensor: bg,
            iob,
            commanded_rate: rate,
            delivered_rate: rate,
            carbs: 0.0,
        }
    }

    /// A clean, slightly wiggling record stream (unique bg bits per step).
    fn clean(step: usize) -> StepRecord {
        rec(120.0 + (step as f64) * 0.25, 1.0, 1.5)
    }

    #[test]
    fn clean_stream_passes_bit_identical() {
        let mut g = InputGuard::new(GuardPolicy::aps());
        for t in 0..50 {
            let r = clean(t);
            let (out, status) = g.sanitize(&r);
            assert_eq!(out, r, "clean step {t} must pass through unmodified");
            assert_eq!(status.health, HealthState::Healthy);
            assert!(!status.any_imputed());
        }
    }

    #[test]
    fn nan_is_imputed_hold_last() {
        let mut g = InputGuard::new(GuardPolicy::aps());
        let (_, _) = g.sanitize(&clean(0));
        let mut bad = clean(1);
        bad.bg_sensor = f64::NAN;
        let (out, status) = g.sanitize(&bad);
        assert_eq!(out.bg_sensor, clean(0).bg_sensor);
        assert_eq!(status.health, HealthState::Degraded);
        assert_eq!(status.imputed, [true, false, false]);
    }

    #[test]
    fn neutral_imputation_without_history() {
        let mut g = InputGuard::new(GuardPolicy::aps());
        let mut bad = clean(0);
        bad.bg_sensor = f64::INFINITY;
        let (out, status) = g.sanitize(&bad);
        assert_eq!(out.bg_sensor, 120.0, "neutral value with no history");
        assert!(status.any_imputed());
    }

    #[test]
    fn linear_imputation_extrapolates() {
        let mut policy = GuardPolicy::aps();
        policy.imputation = Imputation::Linear;
        let mut g = InputGuard::new(policy);
        g.sanitize(&rec(100.0, 1.0, 1.0));
        g.sanitize(&rec(110.0, 1.0, 1.0));
        let mut bad = rec(0.0, 1.0, 1.0);
        bad.bg_sensor = f64::NAN;
        let (out, _) = g.sanitize(&bad);
        assert_eq!(out.bg_sensor, 120.0, "linear continuation of 100, 110");
        let (out2, _) = g.sanitize(&bad);
        assert_eq!(out2.bg_sensor, 130.0, "slope persists across imputed steps");
    }

    #[test]
    fn out_of_range_and_jump_are_imputed() {
        let mut g = InputGuard::new(GuardPolicy::aps());
        g.sanitize(&rec(150.0, 1.0, 1.0));
        let (out, s) = g.sanitize(&rec(1500.0, 1.0, 1.0));
        assert_eq!(out.bg_sensor, 150.0);
        assert!(s.any_imputed());
        // +500 in one step: implausible jump even though in range.
        let (out2, s2) = g.sanitize(&rec(650.0, 1.0, 1.0));
        assert_eq!(out2.bg_sensor, 150.0);
        assert!(s2.any_imputed());
    }

    #[test]
    fn jump_resyncs_on_consistent_raw_stream() {
        let mut g = InputGuard::new(GuardPolicy::aps());
        g.sanitize(&rec(150.0, 1.0, 1.0));
        // A spike is rejected…
        let (_, s) = g.sanitize(&rec(400.0, 1.0, 1.0));
        assert!(s.any_imputed());
        // …and a second sample near the spike is raw-consistent with it, so
        // the guard resynchronizes instead of imputing forever.
        let (out, s2) = g.sanitize(&rec(395.0, 1.0, 1.0));
        assert!(!s2.any_imputed());
        assert_eq!(out.bg_sensor, 395.0);
    }

    #[test]
    fn freeze_detection_flags_stuck_bg() {
        let mut g = InputGuard::new(GuardPolicy::aps());
        let frozen = rec(140.0, 1.0, 1.0);
        let mut flagged_at = None;
        for t in 0..12 {
            let (_, s) = g.sanitize(&frozen);
            if s.any_imputed() && flagged_at.is_none() {
                flagged_at = Some(t);
            }
        }
        assert_eq!(flagged_at, Some(6), "seventh identical sample is flagged");
    }

    #[test]
    fn rate_may_freeze_legitimately() {
        // A suspended pump reports exactly 0.0 indefinitely: never flagged.
        let mut g = InputGuard::new(GuardPolicy::aps());
        for t in 0..60 {
            let (_, s) = g.sanitize(&rec(120.0 + t as f64 * 0.1, 0.0, 0.0));
            assert!(!s.any_imputed(), "step {t}");
        }
    }

    #[test]
    fn budget_exhaustion_reaches_fallback_then_recovers() {
        let p = GuardPolicy::aps();
        let mut g = InputGuard::new(p);
        g.sanitize(&clean(0));
        let mut bad = clean(1);
        bad.bg_sensor = f64::NAN;
        let mut states = Vec::new();
        for _ in 0..(p.staleness_budget + 2) {
            let (_, s) = g.sanitize(&bad);
            states.push(s.health);
        }
        assert!(states[..p.staleness_budget]
            .iter()
            .all(|&h| h == HealthState::Degraded));
        assert_eq!(*states.last().unwrap(), HealthState::Fallback);
        // Clean steps: stays Fallback during the probation window, then
        // recovers.
        for t in 0..p.recovery_steps - 1 {
            let (_, s) = g.sanitize(&clean(100 + t));
            assert_eq!(s.health, HealthState::Fallback, "probation step {t}");
        }
        let (_, s) = g.sanitize(&clean(200));
        assert_eq!(s.health, HealthState::Healthy);
        assert_eq!(g.health(), HealthState::Healthy);
    }

    #[test]
    fn reset_rearms_healthy() {
        let mut g = InputGuard::new(GuardPolicy::aps());
        let mut bad = clean(0);
        bad.bg_sensor = f64::NAN;
        for _ in 0..20 {
            g.sanitize(&bad);
        }
        assert_eq!(g.health(), HealthState::Fallback);
        g.reset();
        assert_eq!(g.health(), HealthState::Healthy);
        let (_, s) = g.sanitize(&clean(5));
        assert_eq!(s.health, HealthState::Healthy);
    }
}
