//! The five monitor variants of Table III and their shared interface.

use crate::dataset::{Dataset, LabeledDataset};
use crate::error::CoreError;
use crate::metrics::{tolerance_confusion, ConfusionCounts, EvalReport, DEFAULT_TOLERANCE_STEPS};
use crate::train::{train_lstm, train_mlp, TrainConfig};
use cpsmon_nn::{GradModel, LstmNet, Matrix, MlpNet};
use cpsmon_stl::RuleMonitor;

/// Prediction batch size used when chunking large evaluation sets (keeps
/// the LSTM forward caches small).
const PREDICT_CHUNK: usize = 2048;

/// The monitor variants evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MonitorKind {
    /// Knowledge-only baseline synthesized from the Table I rules.
    RuleBased,
    /// Baseline MLP (256-128).
    Mlp,
    /// Baseline stacked LSTM (128-64, 6 timesteps).
    Lstm,
    /// MLP retrained with the Eq. 2 semantic loss.
    MlpCustom,
    /// LSTM retrained with the Eq. 2 semantic loss.
    LstmCustom,
}

impl MonitorKind {
    /// All five variants, in Table III row order.
    pub const ALL: [MonitorKind; 5] = [
        MonitorKind::RuleBased,
        MonitorKind::Mlp,
        MonitorKind::Lstm,
        MonitorKind::MlpCustom,
        MonitorKind::LstmCustom,
    ];

    /// The four ML variants (everything but the rule-based baseline).
    pub const ML: [MonitorKind; 4] = [
        MonitorKind::Mlp,
        MonitorKind::Lstm,
        MonitorKind::MlpCustom,
        MonitorKind::LstmCustom,
    ];

    /// Table III row label.
    pub fn label(self) -> &'static str {
        match self {
            MonitorKind::RuleBased => "Rule-based",
            MonitorKind::Mlp => "MLP",
            MonitorKind::Lstm => "LSTM",
            MonitorKind::MlpCustom => "MLP-Custom",
            MonitorKind::LstmCustom => "LSTM-Custom",
        }
    }

    /// Whether this variant uses the semantic loss.
    pub fn is_custom(self) -> bool {
        matches!(self, MonitorKind::MlpCustom | MonitorKind::LstmCustom)
    }

    /// Stable lower-case tag used in artifact files and cache-file names.
    pub fn tag(self) -> &'static str {
        match self {
            MonitorKind::RuleBased => "rule-based",
            MonitorKind::Mlp => "mlp",
            MonitorKind::Lstm => "lstm",
            MonitorKind::MlpCustom => "mlp-custom",
            MonitorKind::LstmCustom => "lstm-custom",
        }
    }

    /// Inverse of [`tag`](Self::tag).
    pub fn from_tag(tag: &str) -> Option<MonitorKind> {
        MonitorKind::ALL.into_iter().find(|k| k.tag() == tag)
    }

    /// Trains (or synthesizes) this monitor on a dataset.
    ///
    /// # Errors
    ///
    /// Currently infallible for well-formed datasets; the `Result` reserves
    /// room for future validation failures.
    pub fn train(
        self,
        ds: &LabeledDataset,
        cfg: &TrainConfig,
    ) -> Result<TrainedMonitor, CoreError> {
        if ds.train.is_empty() {
            return Err(CoreError::EmptyDataset);
        }
        let model = match self {
            MonitorKind::RuleBased => MonitorModel::Rule(RuleMonitor::new(ds.rules)),
            MonitorKind::Mlp => MonitorModel::Mlp(train_mlp(ds, cfg, false)),
            MonitorKind::MlpCustom => MonitorModel::Mlp(train_mlp(ds, cfg, true)),
            MonitorKind::Lstm => MonitorModel::Lstm(train_lstm(ds, cfg, false)),
            MonitorKind::LstmCustom => MonitorModel::Lstm(train_lstm(ds, cfg, true)),
        };
        Ok(TrainedMonitor { kind: self, model })
    }
}

impl std::fmt::Display for MonitorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The underlying model of a trained monitor.
#[derive(Debug, Clone)]
pub enum MonitorModel {
    /// Rule-based (knowledge only).
    Rule(RuleMonitor),
    /// MLP network.
    Mlp(MlpNet),
    /// LSTM network.
    Lstm(LstmNet),
}

/// A monitor ready to make predictions and be evaluated.
#[derive(Debug, Clone)]
pub struct TrainedMonitor {
    /// Which Table III variant this is.
    pub kind: MonitorKind,
    /// The underlying model.
    pub model: MonitorModel,
}

impl TrainedMonitor {
    /// Hard predictions for every sample of a dataset.
    ///
    /// ML monitors consume the normalized windows `ds.x`; the rule-based
    /// monitor consumes the raw contexts.
    pub fn predict(&self, ds: &Dataset) -> Vec<usize> {
        match &self.model {
            MonitorModel::Rule(rule) => rule.predict_batch(&ds.contexts),
            MonitorModel::Mlp(net) => predict_chunked(net, &ds.x),
            MonitorModel::Lstm(net) => predict_chunked(net, &ds.x),
        }
    }

    /// Hard predictions for an arbitrary (possibly perturbed) feature
    /// batch.
    ///
    /// # Panics
    ///
    /// Panics if called on the rule-based monitor, which has no feature-
    /// space input; use [`predict`](Self::predict) with a dataset instead.
    pub fn predict_x(&self, x: &Matrix) -> Vec<usize> {
        match &self.model {
            MonitorModel::Rule(_) => {
                panic!("rule-based monitor predicts from contexts, not feature rows")
            }
            MonitorModel::Mlp(net) => predict_chunked(net, x),
            MonitorModel::Lstm(net) => predict_chunked(net, x),
        }
    }

    /// The model as an attackable gradient model, if it is one (the
    /// rule-based monitor is not differentiable).
    pub fn as_grad_model(&self) -> Option<&dyn GradModel> {
        match &self.model {
            MonitorModel::Rule(_) => None,
            MonitorModel::Mlp(net) => Some(net),
            MonitorModel::Lstm(net) => Some(net),
        }
    }

    /// Evaluates this monitor on a dataset with the Table II
    /// tolerance-window metric (δ = 6 steps).
    pub fn evaluate(&self, ds: &Dataset) -> EvalReport {
        let preds = self.predict(ds);
        evaluate_predictions(ds, &preds, DEFAULT_TOLERANCE_STEPS)
    }
}

/// Chunked prediction to bound forward-pass memory.
fn predict_chunked(model: &dyn GradModel, x: &Matrix) -> Vec<usize> {
    let mut preds = Vec::with_capacity(x.rows());
    let mut start = 0;
    while start < x.rows() {
        let end = (start + PREDICT_CHUNK).min(x.rows());
        preds.extend(model.predict_labels(&x.slice_rows(start, end)));
        start = end;
    }
    preds
}

/// Scores an arbitrary prediction vector against a dataset's labels with
/// the Table II tolerance-window metric, grouping samples by source trace
/// (the metric is sequential).
///
/// # Panics
///
/// Panics if `preds.len() != ds.len()`.
pub fn evaluate_predictions(ds: &Dataset, preds: &[usize], delta: usize) -> EvalReport {
    assert_eq!(preds.len(), ds.len(), "prediction count mismatch");
    let mut counts = ConfusionCounts::default();
    for (_, idxs) in ds.samples_by_trace() {
        let p: Vec<usize> = idxs.iter().map(|&i| preds[i]).collect();
        let l: Vec<usize> = idxs.iter().map(|&i| ds.labels[i]).collect();
        counts.merge(tolerance_confusion(&p, &l, delta));
    }
    EvalReport { counts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use cpsmon_sim::{CampaignConfig, SimulatorKind};

    fn dataset() -> LabeledDataset {
        let traces = CampaignConfig::new(SimulatorKind::Glucosym)
            .patients(2)
            .runs_per_patient(3)
            .steps(144)
            .fault_ratio(0.6)
            .seed(31)
            .run();
        DatasetBuilder::new().build(&traces).unwrap()
    }

    #[test]
    fn all_kinds_train_and_predict() {
        let ds = dataset();
        let cfg = TrainConfig::quick_test();
        for kind in MonitorKind::ALL {
            let m = kind.train(&ds, &cfg).unwrap();
            let preds = m.predict(&ds.test);
            assert_eq!(preds.len(), ds.test.len(), "{kind}");
            assert!(preds.iter().all(|&p| p <= 1), "{kind}");
            let report = m.evaluate(&ds.test);
            assert!(report.counts.total() > 0, "{kind}");
        }
    }

    #[test]
    fn ml_monitors_expose_grad_models() {
        let ds = dataset();
        let cfg = TrainConfig::quick_test();
        assert!(MonitorKind::RuleBased
            .train(&ds, &cfg)
            .unwrap()
            .as_grad_model()
            .is_none());
        assert!(MonitorKind::Mlp
            .train(&ds, &cfg)
            .unwrap()
            .as_grad_model()
            .is_some());
        assert!(MonitorKind::Lstm
            .train(&ds, &cfg)
            .unwrap()
            .as_grad_model()
            .is_some());
    }

    #[test]
    fn trained_ml_monitor_is_better_than_chance() {
        let ds = dataset();
        let m = MonitorKind::Mlp
            .train(&ds, &TrainConfig::quick_test())
            .unwrap();
        let report = m.evaluate(&ds.test);
        assert!(report.accuracy() > 0.6, "accuracy {}", report.accuracy());
    }

    #[test]
    fn predict_x_matches_predict_for_ml() {
        let ds = dataset();
        let m = MonitorKind::Mlp
            .train(&ds, &TrainConfig::quick_test())
            .unwrap();
        assert_eq!(m.predict(&ds.test), m.predict_x(&ds.test.x));
    }

    #[test]
    #[should_panic(expected = "rule-based monitor")]
    fn predict_x_panics_for_rule_monitor() {
        let ds = dataset();
        let m = MonitorKind::RuleBased
            .train(&ds, &TrainConfig::quick_test())
            .unwrap();
        let _ = m.predict_x(&ds.test.x);
    }

    #[test]
    fn evaluate_predictions_perfect_score() {
        let ds = dataset();
        let report = evaluate_predictions(&ds.test, &ds.test.labels, 6);
        assert_eq!(report.counts.fn_, 0);
        assert_eq!(report.counts.fp, 0);
    }

    #[test]
    fn labels_display() {
        assert_eq!(MonitorKind::MlpCustom.label(), "MLP-Custom");
        assert_eq!(MonitorKind::LstmCustom.to_string(), "LSTM-Custom");
        assert!(MonitorKind::MlpCustom.is_custom());
        assert!(!MonitorKind::Mlp.is_custom());
    }
}
