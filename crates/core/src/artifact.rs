//! Versioned on-disk artifacts for trained monitors.
//!
//! The paper's pipeline trains five monitors per simulator and then runs
//! ~15 experiments over them; deployment-oriented follow-ups treat the
//! trained monitor as a *persisted, reusable artifact* rather than a
//! per-run byproduct. This module is that artifact layer: a
//! [`MonitorBundle`] packages everything needed to serve a monitor —
//! the model weights (including the rule-monitor parameters), the fitted
//! [`Normalizer`], the [`TrainConfig`] it was trained with, and a
//! fingerprint of the dataset it was trained on — in one versioned,
//! self-describing file.
//!
//! The format extends the line-oriented `cpsmon-net` text format of
//! [`cpsmon_nn::serialize`] (plain text is lossless for `f64` thanks to
//! shortest-round-trip formatting):
//!
//! ```text
//! cpsmon-bundle v1
//! kind mlp-custom
//! fingerprint 8d1c0f3a9b2e4d57
//! epochs 10
//! batch-size 128
//! lr 0.002
//! semantic-weight 1
//! seed 0
//! mlp-hidden 64 32
//! lstm-hidden 32 16
//! normalizer-mean <one float per column>
//! normalizer-std <one float per column>
//! rules 120 70 0.001 1.5          # rule-based bundles
//! cpsmon-net v1 mlp               # ML bundles embed the network document
//! …
//! ```
//!
//! Loading validates the magic, the format version, and — through
//! [`MonitorBundle::load_validated`] — the dataset fingerprint, so a stale
//! bundle can never silently serve a monitor trained on a mismatched
//! dataset.

use crate::dataset::LabeledDataset;
use crate::features::Normalizer;
use crate::monitor::{MonitorKind, MonitorModel, TrainedMonitor};
use crate::train::TrainConfig;
use cpsmon_nn::serialize::LoadError;
use cpsmon_nn::{LstmNet, MlpNet};
use cpsmon_stl::{ApsRules, RuleMonitor};
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Write};
use std::path::Path;

/// Magic token opening every bundle file.
const MAGIC: &str = "cpsmon-bundle";

/// Current format version token.
const VERSION: &str = "v1";

/// Errors arising while loading a monitor bundle.
#[derive(Debug)]
#[non_exhaustive]
pub enum ArtifactError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream did not match the bundle format.
    Parse {
        /// Line number (1-based) where parsing failed.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The file does not start with the `cpsmon-bundle` magic.
    BadMagic(String),
    /// The file is a bundle, but of a format version this build cannot
    /// read.
    UnsupportedVersion(String),
    /// The bundle's dataset fingerprint differs from the dataset it was
    /// asked to serve.
    FingerprintMismatch {
        /// Fingerprint of the live dataset.
        expected: u64,
        /// Fingerprint recorded in the bundle.
        found: u64,
    },
    /// The embedded network document failed to load.
    Net(LoadError),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "i/o error while loading bundle: {e}"),
            ArtifactError::Parse { line, message } => {
                write!(f, "malformed bundle at line {line}: {message}")
            }
            ArtifactError::BadMagic(got) => {
                write!(f, "not a cpsmon-bundle file (starts with '{got}')")
            }
            ArtifactError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported bundle format version '{v}' (expected {VERSION})"
                )
            }
            ArtifactError::FingerprintMismatch { expected, found } => write!(
                f,
                "bundle was trained on a different dataset \
                 (fingerprint {found:016x}, expected {expected:016x})"
            ),
            ArtifactError::Net(e) => write!(f, "embedded network failed to load: {e}"),
        }
    }
}

impl Error for ArtifactError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            ArtifactError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ArtifactError {
    fn from(e: io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

impl From<LoadError> for ArtifactError {
    fn from(e: LoadError) -> Self {
        ArtifactError::Net(e)
    }
}

/// FNV-1a accumulation of raw bytes.
fn fnv1a(state: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *state ^= u64::from(b);
        *state = state.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn fnv_u64(state: &mut u64, v: u64) {
    fnv1a(state, &v.to_le_bytes());
}

fn fnv_f64(state: &mut u64, v: f64) {
    fnv_u64(state, v.to_bits());
}

/// Content fingerprint of a labeled dataset: shapes, every feature bit of
/// both splits, labels, indicators, normalizer statistics, and the rule
/// parameters. Two datasets fingerprint equal iff a monitor trained on one
/// is interchangeable with a monitor trained on the other.
pub fn dataset_fingerprint(ds: &LabeledDataset) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for split in [&ds.train, &ds.test] {
        fnv_u64(&mut h, split.x.rows() as u64);
        fnv_u64(&mut h, split.x.cols() as u64);
        for r in 0..split.x.rows() {
            for &v in split.x.row(r) {
                fnv_f64(&mut h, v);
            }
        }
        for &l in &split.labels {
            fnv_u64(&mut h, l as u64);
        }
        for &i in &split.indicators {
            fnv_f64(&mut h, i);
        }
    }
    for &v in ds.normalizer.mean() {
        fnv_f64(&mut h, v);
    }
    for &v in ds.normalizer.std() {
        fnv_f64(&mut h, v);
    }
    for v in [
        ds.rules.bgt,
        ds.rules.hypo,
        ds.rules.iob_eps,
        ds.rules.bg_trend_eps,
    ] {
        fnv_f64(&mut h, v);
    }
    h
}

/// Stable hash of a training configuration — the train-config component of
/// the bundle cache key.
pub fn train_config_hash(cfg: &TrainConfig) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    fnv_u64(&mut h, cfg.epochs as u64);
    fnv_u64(&mut h, cfg.batch_size as u64);
    fnv_f64(&mut h, cfg.lr);
    fnv_f64(&mut h, cfg.semantic_weight);
    fnv_u64(&mut h, cfg.seed);
    for widths in [&cfg.mlp_hidden, &cfg.lstm_hidden] {
        fnv_u64(&mut h, widths.len() as u64);
        for &w in widths {
            fnv_u64(&mut h, w as u64);
        }
    }
    h
}

/// A trained monitor packaged with everything needed to redeploy it.
#[derive(Debug, Clone)]
pub struct MonitorBundle {
    /// The trained monitor (kind + model weights).
    pub monitor: TrainedMonitor,
    /// Normalizer fitted on the training split the monitor was trained on.
    pub normalizer: Normalizer,
    /// Hyper-parameters the monitor was trained with.
    pub train_config: TrainConfig,
    /// [`dataset_fingerprint`] of the training dataset.
    pub fingerprint: u64,
}

impl MonitorBundle {
    /// Packages a freshly trained monitor with its dataset's normalizer and
    /// fingerprint.
    pub fn new(monitor: TrainedMonitor, ds: &LabeledDataset, cfg: &TrainConfig) -> MonitorBundle {
        MonitorBundle {
            monitor,
            normalizer: ds.normalizer.clone(),
            train_config: cfg.clone(),
            fingerprint: dataset_fingerprint(ds),
        }
    }

    /// Writes the bundle to `w` in the `cpsmon-bundle v1` format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save(&self, w: &mut impl Write) -> io::Result<()> {
        writeln!(w, "{MAGIC} {VERSION}")?;
        writeln!(w, "kind {}", self.monitor.kind.tag())?;
        writeln!(w, "fingerprint {:016x}", self.fingerprint)?;
        let cfg = &self.train_config;
        writeln!(w, "epochs {}", cfg.epochs)?;
        writeln!(w, "batch-size {}", cfg.batch_size)?;
        writeln!(w, "lr {}", cfg.lr)?;
        writeln!(w, "semantic-weight {}", cfg.semantic_weight)?;
        writeln!(w, "seed {}", cfg.seed)?;
        writeln!(w, "mlp-hidden {}", join_usizes(&cfg.mlp_hidden))?;
        writeln!(w, "lstm-hidden {}", join_usizes(&cfg.lstm_hidden))?;
        writeln!(w, "normalizer-mean {}", join_floats(self.normalizer.mean()))?;
        writeln!(w, "normalizer-std {}", join_floats(self.normalizer.std()))?;
        match &self.monitor.model {
            MonitorModel::Rule(rule) => {
                let r = rule.rules();
                writeln!(
                    w,
                    "rules {}",
                    join_floats(&[r.bgt, r.hypo, r.iob_eps, r.bg_trend_eps])
                )?;
            }
            MonitorModel::Mlp(net) => net.save(w)?,
            MonitorModel::Lstm(net) => net.save(w)?,
        }
        // Explicit trailer so truncation anywhere — even inside the final
        // payload line — is detectable.
        writeln!(w, "end")?;
        Ok(())
    }

    /// Convenience wrapper: saves atomically to `path` (write to a
    /// temporary sibling, then rename), creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_to_path(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = path.with_extension("tmp");
        let mut file = io::BufWriter::new(std::fs::File::create(&tmp)?);
        self.save(&mut file)?;
        file.flush()?;
        drop(file);
        std::fs::rename(&tmp, path)
    }

    /// Reads a bundle previously written by [`save`](Self::save), without
    /// checking the fingerprint (inspection path — use
    /// [`load_validated`](Self::load_validated) to serve a dataset).
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError`] on I/O failure, bad magic, unsupported
    /// version, or malformed content.
    pub fn load(r: &mut impl BufRead) -> Result<MonitorBundle, ArtifactError> {
        let mut lines = BundleLines { line: 0 };
        let magic = lines.next(r)?;
        let mut magic_parts = magic.split_whitespace();
        if magic_parts.next() != Some(MAGIC) {
            return Err(ArtifactError::BadMagic(magic.clone()));
        }
        match magic_parts.next() {
            Some(VERSION) => {}
            v => return Err(ArtifactError::UnsupportedVersion(v.unwrap_or("").into())),
        }
        let kind_tag = lines.read_kv(r, "kind")?;
        let kind = MonitorKind::from_tag(kind_tag.first().map_or("", String::as_str))
            .ok_or_else(|| lines.err(format!("unknown monitor kind '{}'", kind_tag.join(" "))))?;
        let fp_hex = lines.read_kv(r, "fingerprint")?;
        let fingerprint = u64::from_str_radix(fp_hex.first().map_or("", String::as_str), 16)
            .map_err(|_| lines.err("bad fingerprint"))?;
        let epochs = lines.read_usize(r, "epochs")?;
        let batch_size = lines.read_usize(r, "batch-size")?;
        let lr = lines.read_f64(r, "lr")?;
        let semantic_weight = lines.read_f64(r, "semantic-weight")?;
        let seed = lines.read_usize(r, "seed")? as u64;
        let mlp_hidden = lines.read_usizes(r, "mlp-hidden")?;
        let lstm_hidden = lines.read_usizes(r, "lstm-hidden")?;
        let mean = lines.read_f64s(r, "normalizer-mean")?;
        let std = lines.read_f64s(r, "normalizer-std")?;
        let normalizer =
            Normalizer::from_params(mean, std).map_err(|e| lines.err(e.to_string()))?;
        let model = match kind {
            MonitorKind::RuleBased => {
                let params = lines.read_f64s(r, "rules")?;
                let [bgt, hypo, iob_eps, bg_trend_eps]: [f64; 4] = params
                    .try_into()
                    .map_err(|_| lines.err("rules line must hold exactly four parameters"))?;
                MonitorModel::Rule(RuleMonitor::new(ApsRules {
                    bgt,
                    hypo,
                    iob_eps,
                    bg_trend_eps,
                }))
            }
            MonitorKind::Mlp | MonitorKind::MlpCustom => MonitorModel::Mlp(MlpNet::load(r)?),
            MonitorKind::Lstm | MonitorKind::LstmCustom => MonitorModel::Lstm(LstmNet::load(r)?),
        };
        let trailer = lines
            .next(r)
            .map_err(|_| lines.err("missing 'end' trailer (bundle truncated mid-payload?)"))?;
        if trailer != "end" {
            return Err(lines.err(format!("expected 'end' trailer, got '{trailer}'")));
        }
        Ok(MonitorBundle {
            monitor: TrainedMonitor { kind, model },
            normalizer,
            train_config: TrainConfig {
                epochs,
                batch_size,
                lr,
                semantic_weight,
                mlp_hidden,
                lstm_hidden,
                seed,
            },
            fingerprint,
        })
    }

    /// Loads a bundle and rejects it unless its recorded fingerprint equals
    /// `expected` — the serving path: a stale bundle can never silently
    /// stand in for a monitor of a different dataset.
    ///
    /// # Errors
    ///
    /// Everything [`load`](Self::load) reports, plus
    /// [`ArtifactError::FingerprintMismatch`].
    pub fn load_validated(
        r: &mut impl BufRead,
        expected: u64,
    ) -> Result<MonitorBundle, ArtifactError> {
        let bundle = Self::load(r)?;
        if bundle.fingerprint != expected {
            return Err(ArtifactError::FingerprintMismatch {
                expected,
                found: bundle.fingerprint,
            });
        }
        Ok(bundle)
    }

    /// [`load_validated`](Self::load_validated) from a file path.
    ///
    /// # Errors
    ///
    /// Everything [`load_validated`](Self::load_validated) reports;
    /// a missing file surfaces as [`ArtifactError::Io`].
    pub fn load_from_path(path: &Path, expected: u64) -> Result<MonitorBundle, ArtifactError> {
        let file = std::fs::File::open(path)?;
        Self::load_validated(&mut io::BufReader::new(file), expected)
    }
}

fn join_floats(vs: &[f64]) -> String {
    vs.iter()
        .map(|v| format!("{v}"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn join_usizes(vs: &[usize]) -> String {
    vs.iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Minimal position-tracking line reader for the bundle header. The
/// embedded network document is parsed by [`cpsmon_nn::serialize`] from the
/// same underlying reader once the header has been consumed.
struct BundleLines {
    line: usize,
}

impl BundleLines {
    fn next(&mut self, r: &mut impl BufRead) -> Result<String, ArtifactError> {
        let mut buf = String::new();
        let n = r.read_line(&mut buf)?;
        self.line += 1;
        if n == 0 {
            return Err(self.err("unexpected end of file"));
        }
        Ok(buf.trim_end().to_string())
    }

    fn err(&self, message: impl Into<String>) -> ArtifactError {
        ArtifactError::Parse {
            line: self.line,
            message: message.into(),
        }
    }

    fn read_kv(&mut self, r: &mut impl BufRead, key: &str) -> Result<Vec<String>, ArtifactError> {
        let line = self.next(r)?;
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some(k) if k == key => Ok(parts.map(str::to_string).collect()),
            other => Err(self.err(format!("expected '{key}', got '{}'", other.unwrap_or("")))),
        }
    }

    fn read_usize(&mut self, r: &mut impl BufRead, key: &str) -> Result<usize, ArtifactError> {
        self.read_kv(r, key)?
            .first()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| self.err(format!("bad value for '{key}'")))
    }

    fn read_f64(&mut self, r: &mut impl BufRead, key: &str) -> Result<f64, ArtifactError> {
        self.read_kv(r, key)?
            .first()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| self.err(format!("bad value for '{key}'")))
    }

    fn read_usizes(
        &mut self,
        r: &mut impl BufRead,
        key: &str,
    ) -> Result<Vec<usize>, ArtifactError> {
        self.read_kv(r, key)?
            .iter()
            .map(|v| v.parse().ok())
            .collect::<Option<Vec<usize>>>()
            .ok_or_else(|| self.err(format!("bad value for '{key}'")))
    }

    fn read_f64s(&mut self, r: &mut impl BufRead, key: &str) -> Result<Vec<f64>, ArtifactError> {
        self.read_kv(r, key)?
            .iter()
            .map(|v| v.parse().ok())
            .collect::<Option<Vec<f64>>>()
            .ok_or_else(|| self.err(format!("bad value for '{key}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use cpsmon_sim::{CampaignConfig, SimulatorKind};
    use std::io::BufReader;

    fn dataset() -> LabeledDataset {
        let traces = CampaignConfig::new(SimulatorKind::Glucosym)
            .patients(2)
            .runs_per_patient(3)
            .steps(144)
            .fault_ratio(0.6)
            .seed(17)
            .run();
        DatasetBuilder::new().build(&traces).unwrap()
    }

    #[test]
    fn fingerprint_is_deterministic_and_discriminating() {
        let ds = dataset();
        assert_eq!(dataset_fingerprint(&ds), dataset_fingerprint(&ds));
        let traces = CampaignConfig::new(SimulatorKind::Glucosym)
            .patients(2)
            .runs_per_patient(3)
            .steps(144)
            .fault_ratio(0.6)
            .seed(18)
            .run();
        let other = DatasetBuilder::new().build(&traces).unwrap();
        assert_ne!(dataset_fingerprint(&ds), dataset_fingerprint(&other));
    }

    #[test]
    fn train_config_hash_tracks_fields() {
        let a = TrainConfig::quick_test();
        let mut b = a.clone();
        assert_eq!(train_config_hash(&a), train_config_hash(&b));
        b.lr *= 2.0;
        assert_ne!(train_config_hash(&a), train_config_hash(&b));
        let mut c = a.clone();
        c.mlp_hidden.push(8);
        assert_ne!(train_config_hash(&a), train_config_hash(&c));
    }

    #[test]
    fn rule_bundle_roundtrips() {
        let ds = dataset();
        let cfg = TrainConfig::quick_test();
        let monitor = MonitorKind::RuleBased.train(&ds, &cfg).unwrap();
        let bundle = MonitorBundle::new(monitor, &ds, &cfg);
        let mut buf = Vec::new();
        bundle.save(&mut buf).unwrap();
        let loaded =
            MonitorBundle::load_validated(&mut BufReader::new(buf.as_slice()), bundle.fingerprint)
                .unwrap();
        assert_eq!(loaded.monitor.kind, MonitorKind::RuleBased);
        assert_eq!(
            loaded.monitor.predict(&ds.test),
            bundle.monitor.predict(&ds.test)
        );
        assert_eq!(loaded.normalizer, bundle.normalizer);
        assert_eq!(loaded.train_config, cfg);
    }

    #[test]
    fn load_rejects_bad_magic() {
        let err = MonitorBundle::load(&mut BufReader::new(b"cpsmon-net v1 mlp\n".as_slice()))
            .unwrap_err();
        assert!(matches!(err, ArtifactError::BadMagic(_)), "{err}");
    }

    #[test]
    fn load_rejects_future_version() {
        let err = MonitorBundle::load(&mut BufReader::new(
            b"cpsmon-bundle v9\nkind mlp\n".as_slice(),
        ))
        .unwrap_err();
        assert!(matches!(err, ArtifactError::UnsupportedVersion(v) if v == "v9"));
    }

    #[test]
    fn load_rejects_fingerprint_mismatch() {
        let ds = dataset();
        let cfg = TrainConfig::quick_test();
        let monitor = MonitorKind::RuleBased.train(&ds, &cfg).unwrap();
        let bundle = MonitorBundle::new(monitor, &ds, &cfg);
        let mut buf = Vec::new();
        bundle.save(&mut buf).unwrap();
        let err = MonitorBundle::load_validated(
            &mut BufReader::new(buf.as_slice()),
            bundle.fingerprint ^ 1,
        )
        .unwrap_err();
        assert!(
            matches!(err, ArtifactError::FingerprintMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn error_source_chain_reaches_net_errors() {
        let ds = dataset();
        let cfg = TrainConfig::quick_test();
        let monitor = MonitorKind::Mlp.train(&ds, &cfg).unwrap();
        let bundle = MonitorBundle::new(monitor, &ds, &cfg);
        let mut buf = Vec::new();
        bundle.save(&mut buf).unwrap();
        buf.truncate(buf.len() - buf.len() / 4);
        let err = MonitorBundle::load(&mut BufReader::new(buf.as_slice())).unwrap_err();
        assert!(matches!(err, ArtifactError::Net(_)), "{err}");
        assert!(err.source().is_some());
    }
}
