//! Versioned on-disk artifacts for trained monitors.
//!
//! The paper's pipeline trains five monitors per simulator and then runs
//! ~15 experiments over them; deployment-oriented follow-ups treat the
//! trained monitor as a *persisted, reusable artifact* rather than a
//! per-run byproduct. This module is that artifact layer: a
//! [`MonitorBundle`] packages everything needed to serve a monitor —
//! the model weights (including the rule-monitor parameters), the fitted
//! [`Normalizer`], the [`TrainConfig`] it was trained with, and a
//! fingerprint of the dataset it was trained on — in one versioned,
//! self-describing file.
//!
//! The format extends the line-oriented `cpsmon-net` text format of
//! [`cpsmon_nn::serialize`] (plain text is lossless for `f64` thanks to
//! shortest-round-trip formatting):
//!
//! ```text
//! cpsmon-bundle v1
//! kind mlp-custom
//! fingerprint 8d1c0f3a9b2e4d57
//! epochs 10
//! batch-size 128
//! lr 0.002
//! semantic-weight 1
//! seed 0
//! mlp-hidden 64 32
//! lstm-hidden 32 16
//! normalizer-mean <one float per column>
//! normalizer-std <one float per column>
//! rules 120 70 0.001 1.5          # rule-based bundles
//! cpsmon-net v1 mlp               # ML bundles embed the network document
//! …
//! ```
//!
//! Loading validates the magic, the format version, and — through
//! [`MonitorBundle::load_validated`] — the dataset fingerprint, so a stale
//! bundle can never silently serve a monitor trained on a mismatched
//! dataset.
//!
//! ## Quantized bundles (v2)
//!
//! Bundles saved with [`MonitorBundle::with_precision`] at
//! [`WeightPrecision::F16`] or [`WeightPrecision::Int8`] use the
//! `cpsmon-bundle v2` magic, add a `precision <f16|int8>` line after
//! `kind`, and embed a v2 network document with `tensor16`/`tensor8`
//! encodings (see [`cpsmon_nn::serialize`]). Exact-f64 bundles keep
//! writing v1, so artifacts stay readable by older builds. Loading always
//! dequantizes to f64; [`MonitorBundle::lstm_engine`] then picks the
//! serving engine — f64 for exact bundles, the native f32 engine for
//! quantized ones. Quantized bundles are additionally held to a
//! documented accuracy contract ([`F16_F1_TOLERANCE`] /
//! [`INT8_F1_TOLERANCE`]) enforced by
//! [`MonitorBundle::validate_accuracy`] and the artifact test suite, and
//! an int8 tensor with a corrupted scale fails at parse time rather than
//! silently mispredicting.

use crate::dataset::{Dataset, LabeledDataset};
use crate::features::Normalizer;
use crate::monitor::{MonitorKind, MonitorModel, TrainedMonitor};
use crate::stream::LstmEngine;
use crate::train::TrainConfig;
use cpsmon_nn::serialize::LoadError;
use cpsmon_nn::{LstmNet, MlpNet, WeightPrecision};
use cpsmon_stl::{ApsRules, RuleMonitor};
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Write};
use std::path::Path;

/// Magic token opening every bundle file.
const MAGIC: &str = "cpsmon-bundle";

/// Format version written for exact-f64 bundles (and the only version
/// older builds can read).
const VERSION: &str = "v1";

/// Format version written for quantized bundles: adds a `precision` line
/// after `kind` and embeds a v2 network document.
const VERSION_V2: &str = "v2";

/// Maximum F1 drift (vs the exact-f64 monitor, on the bundle's test split)
/// a **f16** bundle may exhibit before the accuracy gate rejects it.
/// Binary16 keeps ~11 mantissa bits, which perturbs well-trained decision
/// boundaries by far less than a thousandth of F1 in practice; anything
/// larger indicates a broken tensor, not expected rounding.
pub const F16_F1_TOLERANCE: f64 = 0.005;

/// Maximum F1 drift for an **int8** bundle. Symmetric per-tensor
/// quantization to 8 bits costs noticeably more than f16 — the documented
/// serving contract is "within two F1 points of the exact monitor".
pub const INT8_F1_TOLERANCE: f64 = 0.02;

/// Errors arising while loading a monitor bundle.
#[derive(Debug)]
#[non_exhaustive]
pub enum ArtifactError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream did not match the bundle format.
    Parse {
        /// Line number (1-based) where parsing failed.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The file does not start with the `cpsmon-bundle` magic.
    BadMagic(String),
    /// The file is a bundle, but of a format version this build cannot
    /// read.
    UnsupportedVersion(String),
    /// The bundle's dataset fingerprint differs from the dataset it was
    /// asked to serve.
    FingerprintMismatch {
        /// Fingerprint of the live dataset.
        expected: u64,
        /// Fingerprint recorded in the bundle.
        found: u64,
    },
    /// The embedded network document failed to load.
    Net(LoadError),
    /// A quantized bundle's monitor drifted further from its exact-f64
    /// reference than the precision's documented tolerance allows.
    AccuracyDrift {
        /// Measured |ΔF1| between the bundle's monitor and the reference.
        delta: f64,
        /// The documented tolerance for the bundle's precision.
        tolerance: f64,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "i/o error while loading bundle: {e}"),
            ArtifactError::Parse { line, message } => {
                write!(f, "malformed bundle at line {line}: {message}")
            }
            ArtifactError::BadMagic(got) => {
                write!(f, "not a cpsmon-bundle file (starts with '{got}')")
            }
            ArtifactError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported bundle format version '{v}' \
                     (expected {VERSION} or {VERSION_V2})"
                )
            }
            ArtifactError::FingerprintMismatch { expected, found } => write!(
                f,
                "bundle was trained on a different dataset \
                 (fingerprint {found:016x}, expected {expected:016x})"
            ),
            ArtifactError::Net(e) => write!(f, "embedded network failed to load: {e}"),
            ArtifactError::AccuracyDrift { delta, tolerance } => write!(
                f,
                "quantized bundle drifted {delta:.4} F1 from its exact reference \
                 (tolerance {tolerance})"
            ),
        }
    }
}

impl Error for ArtifactError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            ArtifactError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ArtifactError {
    fn from(e: io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

impl From<LoadError> for ArtifactError {
    fn from(e: LoadError) -> Self {
        ArtifactError::Net(e)
    }
}

/// FNV-1a accumulation of raw bytes.
fn fnv1a(state: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *state ^= u64::from(b);
        *state = state.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn fnv_u64(state: &mut u64, v: u64) {
    fnv1a(state, &v.to_le_bytes());
}

fn fnv_f64(state: &mut u64, v: f64) {
    fnv_u64(state, v.to_bits());
}

/// Content fingerprint of a labeled dataset: shapes, every feature bit of
/// both splits, labels, indicators, normalizer statistics, and the rule
/// parameters. Two datasets fingerprint equal iff a monitor trained on one
/// is interchangeable with a monitor trained on the other.
pub fn dataset_fingerprint(ds: &LabeledDataset) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for split in [&ds.train, &ds.test] {
        fnv_u64(&mut h, split.x.rows() as u64);
        fnv_u64(&mut h, split.x.cols() as u64);
        for r in 0..split.x.rows() {
            for &v in split.x.row(r) {
                fnv_f64(&mut h, v);
            }
        }
        for &l in &split.labels {
            fnv_u64(&mut h, l as u64);
        }
        for &i in &split.indicators {
            fnv_f64(&mut h, i);
        }
    }
    for &v in ds.normalizer.mean() {
        fnv_f64(&mut h, v);
    }
    for &v in ds.normalizer.std() {
        fnv_f64(&mut h, v);
    }
    for v in [
        ds.rules.bgt,
        ds.rules.hypo,
        ds.rules.iob_eps,
        ds.rules.bg_trend_eps,
    ] {
        fnv_f64(&mut h, v);
    }
    h
}

/// Stable hash of a training configuration — the train-config component of
/// the bundle cache key.
pub fn train_config_hash(cfg: &TrainConfig) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    fnv_u64(&mut h, cfg.epochs as u64);
    fnv_u64(&mut h, cfg.batch_size as u64);
    fnv_f64(&mut h, cfg.lr);
    fnv_f64(&mut h, cfg.semantic_weight);
    fnv_u64(&mut h, cfg.seed);
    for widths in [&cfg.mlp_hidden, &cfg.lstm_hidden] {
        fnv_u64(&mut h, widths.len() as u64);
        for &w in widths {
            fnv_u64(&mut h, w as u64);
        }
    }
    h
}

/// A trained monitor packaged with everything needed to redeploy it.
#[derive(Debug, Clone)]
pub struct MonitorBundle {
    /// The trained monitor (kind + model weights). Always f64 in memory:
    /// quantized bundles are dequantized at load; the native f32 serving
    /// engine is obtained via [`lstm_engine`](Self::lstm_engine).
    pub monitor: TrainedMonitor,
    /// Normalizer fitted on the training split the monitor was trained on.
    pub normalizer: Normalizer,
    /// Hyper-parameters the monitor was trained with.
    pub train_config: TrainConfig,
    /// [`dataset_fingerprint`] of the training dataset.
    pub fingerprint: u64,
    /// Weight precision the bundle stores (or was loaded from). Only ML
    /// monitors can be quantized; rule bundles are always
    /// [`WeightPrecision::F64`].
    pub precision: WeightPrecision,
}

impl MonitorBundle {
    /// Packages a freshly trained monitor with its dataset's normalizer and
    /// fingerprint, at exact f64 precision.
    pub fn new(monitor: TrainedMonitor, ds: &LabeledDataset, cfg: &TrainConfig) -> MonitorBundle {
        MonitorBundle {
            monitor,
            normalizer: ds.normalizer.clone(),
            train_config: cfg.clone(),
            fingerprint: dataset_fingerprint(ds),
            precision: WeightPrecision::F64,
        }
    }

    /// Switches the precision the bundle's weights will be *stored* at.
    /// The in-memory monitor is unchanged — quantization happens in
    /// [`save`](Self::save), so round-tripping a quantized bundle is what
    /// realizes the precision loss.
    ///
    /// # Panics
    ///
    /// Panics when asked to quantize a rule-based monitor (it has no
    /// weight tensors).
    pub fn with_precision(mut self, precision: WeightPrecision) -> MonitorBundle {
        assert!(
            precision == WeightPrecision::F64
                || !matches!(self.monitor.model, MonitorModel::Rule(_)),
            "rule-based bundles have no weights to quantize"
        );
        self.precision = precision;
        self
    }

    /// The documented F1-drift tolerance for a storage precision (see
    /// [`F16_F1_TOLERANCE`] / [`INT8_F1_TOLERANCE`]; exact f64 tolerates
    /// zero drift).
    pub fn f1_tolerance(precision: WeightPrecision) -> f64 {
        match precision {
            WeightPrecision::F64 => 0.0,
            WeightPrecision::F16 => F16_F1_TOLERANCE,
            WeightPrecision::Int8 => INT8_F1_TOLERANCE,
        }
    }

    /// The accuracy-delta gate: compares this bundle's monitor against the
    /// exact reference on `test` and rejects the bundle if F1 drifted
    /// beyond its precision's documented tolerance. Returns the measured
    /// |ΔF1| when the gate passes.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::AccuracyDrift`] when the drift exceeds
    /// [`f1_tolerance`](Self::f1_tolerance).
    pub fn validate_accuracy(
        &self,
        reference: &TrainedMonitor,
        test: &Dataset,
    ) -> Result<f64, ArtifactError> {
        let delta = (self.monitor.evaluate(test).f1() - reference.evaluate(test).f1()).abs();
        let tolerance = Self::f1_tolerance(self.precision);
        if delta > tolerance {
            return Err(ArtifactError::AccuracyDrift { delta, tolerance });
        }
        Ok(delta)
    }

    /// The load-time dequant-or-native choice for LSTM bundles: an exact
    /// bundle serves through the f64 engine (bit-identical to training);
    /// a quantized one through the native f32 engine, whose extra rounding
    /// is already inside the precision's accuracy tolerance. `None` for
    /// non-LSTM monitors.
    pub fn lstm_engine(&self) -> Option<LstmEngine<'_>> {
        match &self.monitor.model {
            MonitorModel::Lstm(net) => Some(match self.precision {
                WeightPrecision::F64 => LstmEngine::F64(net),
                _ => LstmEngine::f32_from(net),
            }),
            _ => None,
        }
    }

    /// Writes the bundle: `cpsmon-bundle v1` for exact-f64 bundles (the
    /// format older builds read), `v2` with a `precision` line and a
    /// quantized network document otherwise.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save(&self, w: &mut impl Write) -> io::Result<()> {
        if self.precision == WeightPrecision::F64 {
            writeln!(w, "{MAGIC} {VERSION}")?;
        } else {
            writeln!(w, "{MAGIC} {VERSION_V2}")?;
        }
        writeln!(w, "kind {}", self.monitor.kind.tag())?;
        if self.precision != WeightPrecision::F64 {
            writeln!(w, "precision {}", self.precision.label())?;
        }
        writeln!(w, "fingerprint {:016x}", self.fingerprint)?;
        let cfg = &self.train_config;
        writeln!(w, "epochs {}", cfg.epochs)?;
        writeln!(w, "batch-size {}", cfg.batch_size)?;
        writeln!(w, "lr {}", cfg.lr)?;
        writeln!(w, "semantic-weight {}", cfg.semantic_weight)?;
        writeln!(w, "seed {}", cfg.seed)?;
        writeln!(w, "mlp-hidden {}", join_usizes(&cfg.mlp_hidden))?;
        writeln!(w, "lstm-hidden {}", join_usizes(&cfg.lstm_hidden))?;
        writeln!(w, "normalizer-mean {}", join_floats(self.normalizer.mean()))?;
        writeln!(w, "normalizer-std {}", join_floats(self.normalizer.std()))?;
        match &self.monitor.model {
            MonitorModel::Rule(rule) => {
                let r = rule.rules();
                writeln!(
                    w,
                    "rules {}",
                    join_floats(&[r.bgt, r.hypo, r.iob_eps, r.bg_trend_eps])
                )?;
            }
            MonitorModel::Mlp(net) => {
                if self.precision == WeightPrecision::F64 {
                    net.save(w)?;
                } else {
                    net.save_quantized(w, self.precision)?;
                }
            }
            MonitorModel::Lstm(net) => {
                if self.precision == WeightPrecision::F64 {
                    net.save(w)?;
                } else {
                    net.save_quantized(w, self.precision)?;
                }
            }
        }
        // Explicit trailer so truncation anywhere — even inside the final
        // payload line — is detectable.
        writeln!(w, "end")?;
        Ok(())
    }

    /// Convenience wrapper: saves atomically to `path` (write to a
    /// temporary sibling, then rename), creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_to_path(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = path.with_extension("tmp");
        let mut file = io::BufWriter::new(std::fs::File::create(&tmp)?);
        self.save(&mut file)?;
        file.flush()?;
        drop(file);
        std::fs::rename(&tmp, path)
    }

    /// Reads a bundle previously written by [`save`](Self::save), without
    /// checking the fingerprint (inspection path — use
    /// [`load_validated`](Self::load_validated) to serve a dataset).
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError`] on I/O failure, bad magic, unsupported
    /// version, or malformed content.
    pub fn load(r: &mut impl BufRead) -> Result<MonitorBundle, ArtifactError> {
        let mut lines = BundleLines { line: 0 };
        let magic = lines.next(r)?;
        let mut magic_parts = magic.split_whitespace();
        if magic_parts.next() != Some(MAGIC) {
            return Err(ArtifactError::BadMagic(magic.clone()));
        }
        let v2 = match magic_parts.next() {
            Some(VERSION) => false,
            Some(VERSION_V2) => true,
            v => return Err(ArtifactError::UnsupportedVersion(v.unwrap_or("").into())),
        };
        let kind_tag = lines.read_kv(r, "kind")?;
        let kind = MonitorKind::from_tag(kind_tag.first().map_or("", String::as_str))
            .ok_or_else(|| lines.err(format!("unknown monitor kind '{}'", kind_tag.join(" "))))?;
        let precision = if v2 {
            lines
                .read_kv(r, "precision")?
                .first()
                .and_then(|t| WeightPrecision::from_label(t))
                .ok_or_else(|| lines.err("bad precision token"))?
        } else {
            WeightPrecision::F64
        };
        if precision != WeightPrecision::F64 && kind == MonitorKind::RuleBased {
            return Err(lines.err("rule-based bundles cannot be quantized"));
        }
        let fp_hex = lines.read_kv(r, "fingerprint")?;
        let fingerprint = u64::from_str_radix(fp_hex.first().map_or("", String::as_str), 16)
            .map_err(|_| lines.err("bad fingerprint"))?;
        let epochs = lines.read_usize(r, "epochs")?;
        let batch_size = lines.read_usize(r, "batch-size")?;
        let lr = lines.read_f64(r, "lr")?;
        let semantic_weight = lines.read_f64(r, "semantic-weight")?;
        let seed = lines.read_usize(r, "seed")? as u64;
        let mlp_hidden = lines.read_usizes(r, "mlp-hidden")?;
        let lstm_hidden = lines.read_usizes(r, "lstm-hidden")?;
        let mean = lines.read_f64s(r, "normalizer-mean")?;
        let std = lines.read_f64s(r, "normalizer-std")?;
        let normalizer =
            Normalizer::from_params(mean, std).map_err(|e| lines.err(e.to_string()))?;
        let model = match kind {
            MonitorKind::RuleBased => {
                let params = lines.read_f64s(r, "rules")?;
                let [bgt, hypo, iob_eps, bg_trend_eps]: [f64; 4] = params
                    .try_into()
                    .map_err(|_| lines.err("rules line must hold exactly four parameters"))?;
                MonitorModel::Rule(RuleMonitor::new(ApsRules {
                    bgt,
                    hypo,
                    iob_eps,
                    bg_trend_eps,
                }))
            }
            MonitorKind::Mlp | MonitorKind::MlpCustom => {
                let (net, p) = MlpNet::load_with_precision(r)?;
                if p != precision {
                    return Err(lines.err(format!(
                        "bundle precision {} disagrees with embedded network precision {}",
                        precision.label(),
                        p.label()
                    )));
                }
                MonitorModel::Mlp(net)
            }
            MonitorKind::Lstm | MonitorKind::LstmCustom => {
                let (net, p) = LstmNet::load_with_precision(r)?;
                if p != precision {
                    return Err(lines.err(format!(
                        "bundle precision {} disagrees with embedded network precision {}",
                        precision.label(),
                        p.label()
                    )));
                }
                MonitorModel::Lstm(net)
            }
        };
        let trailer = lines
            .next(r)
            .map_err(|_| lines.err("missing 'end' trailer (bundle truncated mid-payload?)"))?;
        if trailer != "end" {
            return Err(lines.err(format!("expected 'end' trailer, got '{trailer}'")));
        }
        Ok(MonitorBundle {
            monitor: TrainedMonitor { kind, model },
            normalizer,
            train_config: TrainConfig {
                epochs,
                batch_size,
                lr,
                semantic_weight,
                mlp_hidden,
                lstm_hidden,
                seed,
            },
            fingerprint,
            precision,
        })
    }

    /// Loads a bundle and rejects it unless its recorded fingerprint equals
    /// `expected` — the serving path: a stale bundle can never silently
    /// stand in for a monitor of a different dataset.
    ///
    /// # Errors
    ///
    /// Everything [`load`](Self::load) reports, plus
    /// [`ArtifactError::FingerprintMismatch`].
    pub fn load_validated(
        r: &mut impl BufRead,
        expected: u64,
    ) -> Result<MonitorBundle, ArtifactError> {
        let bundle = Self::load(r)?;
        if bundle.fingerprint != expected {
            return Err(ArtifactError::FingerprintMismatch {
                expected,
                found: bundle.fingerprint,
            });
        }
        Ok(bundle)
    }

    /// [`load_validated`](Self::load_validated) from a file path.
    ///
    /// # Errors
    ///
    /// Everything [`load_validated`](Self::load_validated) reports;
    /// a missing file surfaces as [`ArtifactError::Io`].
    pub fn load_from_path(path: &Path, expected: u64) -> Result<MonitorBundle, ArtifactError> {
        let file = std::fs::File::open(path)?;
        Self::load_validated(&mut io::BufReader::new(file), expected)
    }
}

fn join_floats(vs: &[f64]) -> String {
    vs.iter()
        .map(|v| format!("{v}"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn join_usizes(vs: &[usize]) -> String {
    vs.iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Minimal position-tracking line reader for the bundle header. The
/// embedded network document is parsed by [`cpsmon_nn::serialize`] from the
/// same underlying reader once the header has been consumed.
struct BundleLines {
    line: usize,
}

impl BundleLines {
    fn next(&mut self, r: &mut impl BufRead) -> Result<String, ArtifactError> {
        let mut buf = String::new();
        let n = r.read_line(&mut buf)?;
        self.line += 1;
        if n == 0 {
            return Err(self.err("unexpected end of file"));
        }
        Ok(buf.trim_end().to_string())
    }

    fn err(&self, message: impl Into<String>) -> ArtifactError {
        ArtifactError::Parse {
            line: self.line,
            message: message.into(),
        }
    }

    fn read_kv(&mut self, r: &mut impl BufRead, key: &str) -> Result<Vec<String>, ArtifactError> {
        let line = self.next(r)?;
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some(k) if k == key => Ok(parts.map(str::to_string).collect()),
            other => Err(self.err(format!("expected '{key}', got '{}'", other.unwrap_or("")))),
        }
    }

    fn read_usize(&mut self, r: &mut impl BufRead, key: &str) -> Result<usize, ArtifactError> {
        self.read_kv(r, key)?
            .first()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| self.err(format!("bad value for '{key}'")))
    }

    fn read_f64(&mut self, r: &mut impl BufRead, key: &str) -> Result<f64, ArtifactError> {
        self.read_kv(r, key)?
            .first()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| self.err(format!("bad value for '{key}'")))
    }

    fn read_usizes(
        &mut self,
        r: &mut impl BufRead,
        key: &str,
    ) -> Result<Vec<usize>, ArtifactError> {
        self.read_kv(r, key)?
            .iter()
            .map(|v| v.parse().ok())
            .collect::<Option<Vec<usize>>>()
            .ok_or_else(|| self.err(format!("bad value for '{key}'")))
    }

    fn read_f64s(&mut self, r: &mut impl BufRead, key: &str) -> Result<Vec<f64>, ArtifactError> {
        self.read_kv(r, key)?
            .iter()
            .map(|v| v.parse().ok())
            .collect::<Option<Vec<f64>>>()
            .ok_or_else(|| self.err(format!("bad value for '{key}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use cpsmon_sim::{CampaignConfig, SimulatorKind};
    use std::io::BufReader;

    fn dataset() -> LabeledDataset {
        let traces = CampaignConfig::new(SimulatorKind::Glucosym)
            .patients(2)
            .runs_per_patient(3)
            .steps(144)
            .fault_ratio(0.6)
            .seed(17)
            .run();
        DatasetBuilder::new().build(&traces).unwrap()
    }

    #[test]
    fn fingerprint_is_deterministic_and_discriminating() {
        let ds = dataset();
        assert_eq!(dataset_fingerprint(&ds), dataset_fingerprint(&ds));
        let traces = CampaignConfig::new(SimulatorKind::Glucosym)
            .patients(2)
            .runs_per_patient(3)
            .steps(144)
            .fault_ratio(0.6)
            .seed(18)
            .run();
        let other = DatasetBuilder::new().build(&traces).unwrap();
        assert_ne!(dataset_fingerprint(&ds), dataset_fingerprint(&other));
    }

    #[test]
    fn train_config_hash_tracks_fields() {
        let a = TrainConfig::quick_test();
        let mut b = a.clone();
        assert_eq!(train_config_hash(&a), train_config_hash(&b));
        b.lr *= 2.0;
        assert_ne!(train_config_hash(&a), train_config_hash(&b));
        let mut c = a.clone();
        c.mlp_hidden.push(8);
        assert_ne!(train_config_hash(&a), train_config_hash(&c));
    }

    #[test]
    fn rule_bundle_roundtrips() {
        let ds = dataset();
        let cfg = TrainConfig::quick_test();
        let monitor = MonitorKind::RuleBased.train(&ds, &cfg).unwrap();
        let bundle = MonitorBundle::new(monitor, &ds, &cfg);
        let mut buf = Vec::new();
        bundle.save(&mut buf).unwrap();
        let loaded =
            MonitorBundle::load_validated(&mut BufReader::new(buf.as_slice()), bundle.fingerprint)
                .unwrap();
        assert_eq!(loaded.monitor.kind, MonitorKind::RuleBased);
        assert_eq!(
            loaded.monitor.predict(&ds.test),
            bundle.monitor.predict(&ds.test)
        );
        assert_eq!(loaded.normalizer, bundle.normalizer);
        assert_eq!(loaded.train_config, cfg);
    }

    #[test]
    fn load_rejects_bad_magic() {
        let err = MonitorBundle::load(&mut BufReader::new(b"cpsmon-net v1 mlp\n".as_slice()))
            .unwrap_err();
        assert!(matches!(err, ArtifactError::BadMagic(_)), "{err}");
    }

    #[test]
    fn load_rejects_future_version() {
        let err = MonitorBundle::load(&mut BufReader::new(
            b"cpsmon-bundle v9\nkind mlp\n".as_slice(),
        ))
        .unwrap_err();
        assert!(matches!(err, ArtifactError::UnsupportedVersion(v) if v == "v9"));
    }

    #[test]
    fn load_rejects_fingerprint_mismatch() {
        let ds = dataset();
        let cfg = TrainConfig::quick_test();
        let monitor = MonitorKind::RuleBased.train(&ds, &cfg).unwrap();
        let bundle = MonitorBundle::new(monitor, &ds, &cfg);
        let mut buf = Vec::new();
        bundle.save(&mut buf).unwrap();
        let err = MonitorBundle::load_validated(
            &mut BufReader::new(buf.as_slice()),
            bundle.fingerprint ^ 1,
        )
        .unwrap_err();
        assert!(
            matches!(err, ArtifactError::FingerprintMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn quantized_lstm_bundle_roundtrips_and_passes_accuracy_gate() {
        let ds = dataset();
        let cfg = TrainConfig::quick_test();
        let monitor = MonitorKind::Lstm.train(&ds, &cfg).unwrap();
        let reference = monitor.clone();
        for precision in [WeightPrecision::F16, WeightPrecision::Int8] {
            let bundle = MonitorBundle::new(monitor.clone(), &ds, &cfg).with_precision(precision);
            let mut buf = Vec::new();
            bundle.save(&mut buf).unwrap();
            let text = String::from_utf8(buf.clone()).unwrap();
            assert!(text.starts_with("cpsmon-bundle v2\n"), "quantized → v2");
            let loaded = MonitorBundle::load_validated(
                &mut BufReader::new(buf.as_slice()),
                bundle.fingerprint,
            )
            .unwrap();
            assert_eq!(loaded.precision, precision);
            let delta = loaded.validate_accuracy(&reference, &ds.test).unwrap();
            assert!(
                delta <= MonitorBundle::f1_tolerance(precision),
                "{} drift {delta} above documented tolerance",
                precision.label()
            );
            // The dequant-or-native choice: quantized bundles serve f32.
            let engine = loaded.lstm_engine().expect("lstm bundle");
            assert_eq!(engine.label(), "f32");
        }
        // Exact bundles keep the v1 format and the f64 engine.
        let exact = MonitorBundle::new(monitor.clone(), &ds, &cfg);
        let mut buf = Vec::new();
        exact.save(&mut buf).unwrap();
        assert!(String::from_utf8(buf)
            .unwrap()
            .starts_with("cpsmon-bundle v1\n"));
        assert_eq!(exact.lstm_engine().expect("lstm bundle").label(), "f64");
    }

    #[test]
    fn corrupted_int8_scale_fails_load_validated() {
        // The regression the gate exists for: a corrupted scale must fail
        // loudly, not dequantize to garbage and silently mispredict.
        let ds = dataset();
        let cfg = TrainConfig::quick_test();
        let monitor = MonitorKind::Lstm.train(&ds, &cfg).unwrap();
        let bundle = MonitorBundle::new(monitor, &ds, &cfg).with_precision(WeightPrecision::Int8);
        let mut buf = Vec::new();
        bundle.save(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let corrupted: Vec<String> = text
            .lines()
            .map(|l| {
                if let Some(rest) = l.strip_prefix("tensor8 lstm0.wh ") {
                    let mut parts: Vec<&str> = rest.split_whitespace().collect();
                    let n = parts.len();
                    parts[n - 1] = "inf";
                    format!("tensor8 lstm0.wh {}", parts.join(" "))
                } else {
                    l.to_string()
                }
            })
            .collect();
        let joined = corrupted.join("\n");
        let err = MonitorBundle::load_validated(
            &mut BufReader::new(joined.as_bytes()),
            bundle.fingerprint,
        )
        .unwrap_err();
        assert!(matches!(err, ArtifactError::Net(_)), "{err}");
        assert!(err.to_string().contains("scale") || err.source().is_some());
    }

    #[test]
    fn accuracy_gate_rejects_drifted_monitor() {
        // Pair an int8 bundle with a deliberately wrong reference (the rule
        // monitor) so the F1 delta exceeds the tolerance.
        let ds = dataset();
        let cfg = TrainConfig::quick_test();
        let lstm = MonitorKind::Lstm.train(&ds, &cfg).unwrap();
        let rule = MonitorKind::RuleBased.train(&ds, &cfg).unwrap();
        let f1_gap = (lstm.evaluate(&ds.test).f1() - rule.evaluate(&ds.test).f1()).abs();
        assert!(
            f1_gap > INT8_F1_TOLERANCE,
            "fixture monitors too close (gap {f1_gap}) to exercise the gate"
        );
        let bundle = MonitorBundle::new(lstm, &ds, &cfg).with_precision(WeightPrecision::Int8);
        let err = bundle.validate_accuracy(&rule, &ds.test).unwrap_err();
        assert!(matches!(err, ArtifactError::AccuracyDrift { .. }), "{err}");
    }

    #[test]
    #[should_panic(expected = "no weights to quantize")]
    fn rule_bundles_refuse_quantization() {
        let ds = dataset();
        let cfg = TrainConfig::quick_test();
        let monitor = MonitorKind::RuleBased.train(&ds, &cfg).unwrap();
        let _ = MonitorBundle::new(monitor, &ds, &cfg).with_precision(WeightPrecision::F16);
    }

    #[test]
    fn error_source_chain_reaches_net_errors() {
        let ds = dataset();
        let cfg = TrainConfig::quick_test();
        let monitor = MonitorKind::Mlp.train(&ds, &cfg).unwrap();
        let bundle = MonitorBundle::new(monitor, &ds, &cfg);
        let mut buf = Vec::new();
        bundle.save(&mut buf).unwrap();
        buf.truncate(buf.len() - buf.len() / 4);
        let err = MonitorBundle::load(&mut BufReader::new(buf.as_slice())).unwrap_err();
        assert!(matches!(err, ArtifactError::Net(_)), "{err}");
        assert!(err.source().is_some());
    }
}
