//! Feature extraction: turning traces into monitor input windows.
//!
//! Each monitor input is a window of `window` consecutive 5-minute steps
//! (paper default 6 = 30 minutes). Per step the features are:
//!
//! | idx | feature | source |
//! |-----|---------|--------|
//! | 0 | `bg`    | CGM reading (mg/dL) |
//! | 1 | `iob`   | pump IOB estimate (U) |
//! | 2 | `dbg`   | BG change since previous step |
//! | 3 | `diob`  | IOB change since previous step |
//! | 4 | `rate`  | delivered insulin rate (U/h) |
//! | 5 | `drate` | rate change since previous step |
//!
//! Columns 0–3 are *sensor-derived* (the Gaussian-noise experiments perturb
//! only those); 4–5 encode the control commands (FGSM perturbs everything,
//! per §III of the paper). Windows are flattened time-major:
//! `[step0 f0..f5, step1 f0..f5, …]` — the layout [`cpsmon_nn::LstmNet`]
//! splits back into a sequence.

use crate::error::CoreError;
use cpsmon_nn::Matrix;
use cpsmon_sim::trace::{SimTrace, StepRecord};
use cpsmon_stl::{ApsContext, Command};

/// Features per timestep (see the module table).
pub const FEATURES_PER_STEP: usize = 6;

/// The per-step feature vector `[bg, iob, dbg, diob, rate, drate]` for one
/// record given its predecessor. This is the single source of truth for the
/// window layout: batch extraction ([`FeatureConfig::windows`]) and the
/// streaming path ([`crate::stream::WindowStream`]) both call it, so the two
/// paths are bit-identical by construction.
///
/// For the first record of a trace, pass the record itself as `prev` (all
/// deltas are then exactly `0.0`).
pub fn step_features(r: &StepRecord, prev: &StepRecord) -> [f64; FEATURES_PER_STEP] {
    [
        r.bg_sensor,
        r.iob,
        r.bg_sensor - prev.bg_sensor,
        r.iob - prev.iob,
        r.delivered_rate,
        r.delivered_rate - prev.delivered_rate,
    ]
}

/// Whether flattened-window column `col` is sensor-derived (Gaussian noise
/// applies) as opposed to command-derived.
pub fn is_sensor_column(col: usize) -> bool {
    col % FEATURES_PER_STEP < 4
}

/// Windowing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureConfig {
    /// Steps per window; the paper's LSTM uses 6 (30 minutes).
    pub window: usize,
    /// Rate-comparison tolerance when classifying commands (U/h).
    pub rate_eps: f64,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        // The 0.3 U/h command deadband keeps OpenAPS's tiny 5-minute basal
        // adjustments from being classified as increase/decrease commands,
        // which would otherwise turn the Table I command atoms into noise.
        Self {
            window: 6,
            rate_eps: 0.3,
        }
    }
}

/// One extracted sample: the flattened window plus everything downstream
/// consumers need (label, rule indicator context, provenance).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSample {
    /// Flattened `window × FEATURES_PER_STEP` feature vector (raw units).
    pub features: Vec<f64>,
    /// Eq. 1 hazard-prediction label (0 safe / 1 unsafe).
    pub label: usize,
    /// Aggregated context for the Table I rules.
    pub context: ApsContext,
    /// Index of the source trace in the campaign.
    pub trace_idx: usize,
    /// End step of the window within the source trace.
    pub step: usize,
}

impl FeatureConfig {
    /// Extracts all windows from a trace, pairing them with Eq. 1 labels.
    ///
    /// `labels` must be the per-step labels of the same trace (see
    /// [`cpsmon_sim::hazard::HazardConfig::labels`]).
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != trace.len()`.
    pub fn windows(
        &self,
        trace: &SimTrace,
        labels: &[usize],
        trace_idx: usize,
    ) -> Vec<WindowSample> {
        assert_eq!(labels.len(), trace.len(), "label/trace length mismatch");
        let records = trace.records();
        if records.len() < self.window {
            return Vec::new();
        }
        let mut samples = Vec::with_capacity(records.len() - self.window + 1);
        #[allow(clippy::needless_range_loop)]
        for end in (self.window - 1)..records.len() {
            let start = end + 1 - self.window;
            let mut features = Vec::with_capacity(self.window * FEATURES_PER_STEP);
            for t in start..=end {
                let r = &records[t];
                let prev = if t > 0 { &records[t - 1] } else { r };
                features.extend_from_slice(&step_features(r, prev));
            }
            samples.push(WindowSample {
                context: self.context_of(&features),
                features,
                label: labels[end],
                trace_idx,
                step: end,
            });
        }
        samples
    }

    /// Aggregates a flattened *raw* window into the rule context
    /// `f(μ(X_t))` of Eq. 2: mean BG, end-to-end BG/IOB slopes, and the
    /// command classified from the final step's rate.
    pub fn context_of(&self, features: &[f64]) -> ApsContext {
        let w = features.len() / FEATURES_PER_STEP;
        assert!(w >= 1, "window must hold at least one step");
        let f = |t: usize, k: usize| features[t * FEATURES_PER_STEP + k];
        let bg_mean = (0..w).map(|t| f(t, 0)).sum::<f64>() / w as f64;
        let span = (w - 1).max(1) as f64;
        let dbg = (f(w - 1, 0) - f(0, 0)) / span;
        let diob = (f(w - 1, 1) - f(0, 1)) / span;
        let rate = f(w - 1, 4);
        let drate = f(w - 1, 5);
        ApsContext {
            bg: bg_mean,
            dbg,
            diob,
            command: Command::from_rate_change(rate, drate, self.rate_eps),
        }
    }
}

/// Per-column z-score normalizer fitted on training data.
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Normalizer {
    /// Fits mean/std per column. Columns with (near-)zero variance get
    /// std 1 so they pass through unscaled.
    ///
    /// # Panics
    ///
    /// Panics if `x` has no rows.
    pub fn fit(x: &Matrix) -> Self {
        assert!(x.rows() > 0, "cannot fit a normalizer on an empty matrix");
        let n = x.rows() as f64;
        let mut mean = vec![0.0; x.cols()];
        for r in 0..x.rows() {
            for (m, &v) in mean.iter_mut().zip(x.row(r)) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; x.cols()];
        for r in 0..x.rows() {
            for ((s, &v), m) in var.iter_mut().zip(x.row(r)).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        let std = var
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s < 1e-9 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Self { mean, std }
    }

    /// Normalizes a batch (rows are samples).
    pub fn transform(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        for r in 0..out.rows() {
            self.transform_row(out.row_mut(r));
        }
        out
    }

    /// Normalizes a single sample in place. [`Normalizer::transform`] and the
    /// streaming path both go through this, so a row normalized online is
    /// bit-identical to the same row inside a batch.
    pub fn transform_row(&self, row: &mut [f64]) {
        for ((v, m), s) in row.iter_mut().zip(&self.mean).zip(&self.std) {
            *v = (*v - m) / s;
        }
    }

    /// Inverts the normalization (for plotting raw-unit figures).
    pub fn inverse(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        for r in 0..out.rows() {
            for ((v, m), s) in out.row_mut(r).iter_mut().zip(&self.mean).zip(&self.std) {
                *v = *v * s + m;
            }
        }
        out
    }

    /// Rebuilds a normalizer from previously fitted per-column statistics
    /// (the deserialization path of the artifact store).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the vectors disagree in
    /// length, are empty, or any standard deviation is non-positive.
    pub fn from_params(mean: Vec<f64>, std: Vec<f64>) -> Result<Normalizer, CoreError> {
        if mean.is_empty() {
            return Err(CoreError::InvalidConfig(
                "normalizer statistics must be non-empty".into(),
            ));
        }
        if mean.len() != std.len() {
            return Err(CoreError::InvalidConfig(format!(
                "normalizer mean/std length mismatch: {} vs {}",
                mean.len(),
                std.len()
            )));
        }
        if std.iter().any(|&s| s.is_nan() || s <= 0.0) {
            return Err(CoreError::InvalidConfig(
                "normalizer standard deviations must be positive".into(),
            ));
        }
        Ok(Normalizer { mean, std })
    }

    /// Restricts the normalizer to its last `cols` columns.
    ///
    /// A windowed monitor is fitted on flattened `timesteps × features`
    /// windows, so each window *position* carries its own column
    /// statistics. The stateful streaming engine sees one record at a
    /// time instead; it normalizes every incoming record with the final
    /// timestep's statistics — the position whose distribution a "current
    /// record" actually matches.
    ///
    /// # Panics
    ///
    /// Panics if `cols` is zero or exceeds the fitted width.
    pub fn tail(&self, cols: usize) -> Normalizer {
        assert!(
            cols > 0 && cols <= self.mean.len(),
            "tail width {cols} out of range for {}-column normalizer",
            self.mean.len()
        );
        let at = self.mean.len() - cols;
        Normalizer {
            mean: self.mean[at..].to_vec(),
            std: self.std[at..].to_vec(),
        }
    }

    /// Per-column means.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Per-column standard deviations.
    pub fn std(&self) -> &[f64] {
        &self.std
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpsmon_sim::trace::StepRecord;

    fn mk_trace(bgs: &[f64], rates: &[f64]) -> SimTrace {
        let records: Vec<StepRecord> = bgs
            .iter()
            .zip(rates)
            .map(|(&bg, &rate)| StepRecord {
                bg_true: bg,
                bg_sensor: bg,
                iob: 1.0,
                commanded_rate: rate,
                delivered_rate: rate,
                carbs: 0.0,
            })
            .collect();
        SimTrace::new("glucosym", "openaps", 0, 0, None, records)
    }

    #[test]
    fn window_count_and_shape() {
        let trace = mk_trace(&[100.0; 10], &[1.0; 10]);
        let cfg = FeatureConfig::default();
        let ws = cfg.windows(&trace, &[0; 10], 0);
        assert_eq!(ws.len(), 5); // 10 - 6 + 1
        assert_eq!(ws[0].features.len(), 36);
        assert_eq!(ws[0].step, 5);
        assert_eq!(ws[4].step, 9);
    }

    #[test]
    fn too_short_trace_yields_nothing() {
        let trace = mk_trace(&[100.0; 3], &[1.0; 3]);
        let ws = FeatureConfig::default().windows(&trace, &[0; 3], 0);
        assert!(ws.is_empty());
    }

    #[test]
    fn derivative_features_computed() {
        let bgs = [100.0, 110.0, 130.0, 130.0, 120.0, 125.0, 140.0];
        let trace = mk_trace(&bgs, &[1.0; 7]);
        let cfg = FeatureConfig {
            window: 2,
            rate_eps: 0.05,
        };
        let ws = cfg.windows(&trace, &[0; 7], 0);
        // First window covers steps 0..=1; step 1 dbg = 10.
        assert_eq!(ws[0].features[FEATURES_PER_STEP + 2], 10.0);
        // Step 0's dbg uses itself as prev → 0.
        assert_eq!(ws[0].features[2], 0.0);
    }

    #[test]
    fn context_command_classification() {
        let cfg = FeatureConfig::default();
        // Window of one step: bg 200, iob 1, rate 2 rising.
        let feats = vec![200.0, 1.0, 5.0, 0.1, 2.0, 1.0];
        let ctx = cfg.context_of(&feats);
        assert_eq!(ctx.command, Command::IncreaseInsulin);
        assert_eq!(ctx.bg, 200.0);
        // Zero rate → stop.
        let feats = vec![200.0, 1.0, 5.0, 0.1, 0.0, -1.0];
        assert_eq!(cfg.context_of(&feats).command, Command::StopInsulin);
    }

    #[test]
    fn context_slopes_are_end_to_end() {
        let cfg = FeatureConfig {
            window: 3,
            rate_eps: 0.05,
        };
        let mut feats = vec![0.0; 18];
        feats[0] = 100.0; // bg at t0
        feats[6] = 110.0;
        feats[12] = 120.0; // bg at t2
        feats[1] = 2.0; // iob t0
        feats[13] = 1.0; // iob t2
        feats[16] = 1.0; // rate at t2 (keep)
        let ctx = cfg.context_of(&feats);
        assert_eq!(ctx.dbg, 10.0);
        assert_eq!(ctx.diob, -0.5);
        assert_eq!(ctx.command, Command::KeepInsulin);
    }

    #[test]
    fn labels_attach_to_window_end() {
        let trace = mk_trace(&[100.0; 8], &[1.0; 8]);
        let mut labels = vec![0; 8];
        labels[7] = 1;
        let cfg = FeatureConfig::default();
        let ws = cfg.windows(&trace, &labels, 3);
        assert_eq!(ws.last().unwrap().label, 1);
        assert_eq!(ws[0].label, 0);
        assert!(ws.iter().all(|w| w.trace_idx == 3));
    }

    #[test]
    fn normalizer_roundtrip() {
        let x = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 30.0], &[5.0, 20.0]]);
        let nz = Normalizer::fit(&x);
        let z = nz.transform(&x);
        // Each column: mean 0, unit variance.
        for c in 0..2 {
            let col: Vec<f64> = (0..3).map(|r| z.get(r, c)).collect();
            let mean = col.iter().sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
        }
        let back = nz.inverse(&z);
        for (a, b) in back.as_slice().iter().zip(x.as_slice()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn normalizer_handles_constant_columns() {
        let x = Matrix::from_rows(&[&[5.0, 1.0], &[5.0, 2.0]]);
        let nz = Normalizer::fit(&x);
        let z = nz.transform(&x);
        assert!(z.is_finite());
        assert_eq!(z.get(0, 0), 0.0);
    }

    #[test]
    fn sensor_column_mask() {
        assert!(is_sensor_column(0));
        assert!(is_sensor_column(3));
        assert!(!is_sensor_column(4));
        assert!(!is_sensor_column(5));
        assert!(is_sensor_column(6)); // step 1 bg
        assert!(!is_sensor_column(11)); // step 1 drate
    }

    #[test]
    fn from_params_reports_typed_errors() {
        let ok = Normalizer::from_params(vec![1.0, 2.0], vec![0.5, 0.5]);
        assert!(ok.is_ok());
        for (mean, std) in [
            (vec![], vec![]),
            (vec![1.0], vec![0.5, 0.5]),
            (vec![1.0], vec![0.0]),
            (vec![1.0], vec![f64::NAN]),
        ] {
            match Normalizer::from_params(mean, std) {
                Err(CoreError::InvalidConfig(msg)) => assert!(msg.contains("normalizer")),
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
    }
}
