//! Classical CPS input-integrity detectors: CUSUM and invariant ranges.
//!
//! §III of the paper bounds its threat model by arguing that perturbations
//! are "small changes that cannot be detected by the current methods for
//! sensor/input error detection and attack detection, such as invariant
//! detection or change detection techniques (e.g., CUSUM)". This module
//! implements those two reference detectors so the claim can be *tested*
//! (see the `detector_evasion` experiment): Gaussian noise at σ ≤ 1·std
//! and FGSM at ε ≤ 0.2 should stay under their alarm thresholds, while the
//! blunt faults of `cpsmon_sim::faults::PumpFault` should not.

/// A one-sided-pair CUSUM change detector over a scalar signal
/// (Page's test, the variant cited by Cárdenas et al. for control
/// systems).
///
/// Tracks `S⁺ = max(0, S⁺ + (x−μ)/σ − k)` and the symmetric `S⁻`; alarms
/// when either exceeds `h`.
///
/// # Examples
///
/// ```
/// use cpsmon_core::detectors::Cusum;
///
/// let mut d = Cusum::new(0.0, 1.0, 0.5, 5.0);
/// // In-distribution samples: no alarm.
/// assert!(!(0..20).any(|_| d.update(0.3)));
/// // A persistent large shift eventually alarms.
/// assert!((0..20).any(|_| d.update(4.0)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cusum {
    mean: f64,
    std: f64,
    /// Slack `k` in σ units (insensitivity band).
    pub k: f64,
    /// Alarm threshold `h` in σ units.
    pub h: f64,
    s_pos: f64,
    s_neg: f64,
}

impl Cusum {
    /// Creates a detector calibrated to a reference mean/std.
    ///
    /// # Panics
    ///
    /// Panics if `std <= 0`, `k < 0`, or `h <= 0`.
    pub fn new(mean: f64, std: f64, k: f64, h: f64) -> Self {
        assert!(std > 0.0, "std must be positive");
        assert!(k >= 0.0, "slack must be non-negative");
        assert!(h > 0.0, "threshold must be positive");
        Self {
            mean,
            std,
            k,
            h,
            s_pos: 0.0,
            s_neg: 0.0,
        }
    }

    /// Standard tuning: `k = 0.5`, `h = 5` (in σ units).
    pub fn standard(mean: f64, std: f64) -> Self {
        Self::new(mean, std, 0.5, 5.0)
    }

    /// Feeds one sample; returns `true` if the detector alarms on it.
    ///
    /// A non-finite sample (NaN/±inf) alarms unconditionally and leaves
    /// the accumulated statistics untouched: `f64::max` would otherwise
    /// silently absorb a NaN into `S⁺`/`S⁻` and the broken sample would
    /// pass undetected.
    pub fn update(&mut self, x: f64) -> bool {
        if !x.is_finite() {
            return true;
        }
        let z = (x - self.mean) / self.std;
        self.s_pos = (self.s_pos + z - self.k).max(0.0);
        self.s_neg = (self.s_neg - z - self.k).max(0.0);
        self.s_pos > self.h || self.s_neg > self.h
    }

    /// Resets the accumulated statistics.
    pub fn reset(&mut self) {
        self.s_pos = 0.0;
        self.s_neg = 0.0;
    }

    /// Whether any sample of `signal` triggers an alarm (detector reset
    /// first).
    pub fn detects(&mut self, signal: &[f64]) -> bool {
        self.reset();
        signal.iter().any(|&x| self.update(x))
    }
}

/// A per-sample invariant-range detector (Adepu & Mathur-style process
/// invariants reduced to stay-in-range checks): alarms when a value leaves
/// `[lo, hi]` or jumps more than `max_step` between consecutive samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvariantRange {
    /// Lower physical bound.
    pub lo: f64,
    /// Upper physical bound.
    pub hi: f64,
    /// Maximum plausible change between consecutive samples.
    pub max_step: f64,
}

impl InvariantRange {
    /// Creates a range detector.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `max_step <= 0`.
    pub fn new(lo: f64, hi: f64, max_step: f64) -> Self {
        assert!(lo < hi, "invalid range");
        assert!(max_step > 0.0, "max_step must be positive");
        Self { lo, hi, max_step }
    }

    /// The paper-domain defaults for a CGM glucose signal: 20–600 mg/dL
    /// with at most 25 mg/dL change per 5-minute step (physiological
    /// maximum rate of change is ≈ 4–5 mg/dL/min).
    pub fn cgm() -> Self {
        Self::new(20.0, 600.0, 25.0)
    }

    /// Whether any sample (or step) of `signal` violates the invariant.
    ///
    /// This is the batch view over [`InvariantRange::stream`]: it drives a
    /// fresh [`InvariantStream`] over the signal, so offline and online
    /// checks share one code path.
    pub fn detects(&self, signal: &[f64]) -> bool {
        let mut s = self.stream();
        signal.iter().any(|&v| s.update(v))
    }

    /// Starts a stateful online checker for one signal.
    pub fn stream(&self) -> InvariantStream {
        InvariantStream {
            inv: *self,
            prev: None,
        }
    }
}

/// Streaming state for an [`InvariantRange`]: feeds one sample at a time,
/// remembering the previous sample for the jump check. Used by the online
/// monitor path; [`InvariantRange::detects`] is the batch wrapper around it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvariantStream {
    inv: InvariantRange,
    prev: Option<f64>,
}

impl InvariantStream {
    /// Feeds one sample; returns `true` iff it violates the invariant
    /// (non-finite, out of `[lo, hi]`, or jumped more than `max_step`
    /// since the previous sample).
    ///
    /// A non-finite sample alarms without becoming the jump reference —
    /// NaN compares false against everything, so it would otherwise pass
    /// both checks *and* poison the next sample's jump test.
    pub fn update(&mut self, v: f64) -> bool {
        if !v.is_finite() {
            return true;
        }
        let out_of_range = v < self.inv.lo || v > self.inv.hi;
        let jump = self.prev.is_some_and(|p| (v - p).abs() > self.inv.max_step);
        self.prev = Some(v);
        out_of_range || jump
    }

    /// Forgets the previous sample (e.g. at a trace boundary).
    pub fn reset(&mut self) {
        self.prev = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cusum_quiet_on_reference_distribution() {
        let mut d = Cusum::standard(100.0, 10.0);
        // Deterministic in-band wiggle.
        let signal: Vec<f64> = (0..200)
            .map(|i| 100.0 + 5.0 * ((i as f64) * 0.7).sin())
            .collect();
        assert!(!d.detects(&signal));
    }

    #[test]
    fn cusum_alarms_on_sustained_shift() {
        let mut d = Cusum::standard(100.0, 10.0);
        let mut signal = vec![100.0; 10];
        signal.extend(std::iter::repeat_n(130.0, 10)); // +3σ shift
        assert!(d.detects(&signal));
    }

    #[test]
    fn cusum_two_sided() {
        let mut d = Cusum::standard(0.0, 1.0);
        let drop: Vec<f64> = std::iter::repeat_n(-3.0, 10).collect();
        assert!(d.detects(&drop));
    }

    #[test]
    fn cusum_reset_clears_state() {
        let mut d = Cusum::standard(0.0, 1.0);
        for _ in 0..10 {
            d.update(3.0);
        }
        d.reset();
        assert!(!d.update(0.0));
    }

    #[test]
    fn cusum_slack_ignores_small_bias() {
        // A +0.3σ bias is inside the k=0.5 band forever.
        let mut d = Cusum::standard(0.0, 1.0);
        let signal = vec![0.3; 10_000];
        assert!(!d.detects(&signal));
    }

    #[test]
    fn invariant_detects_out_of_range() {
        let d = InvariantRange::cgm();
        assert!(d.detects(&[100.0, 650.0]));
        assert!(d.detects(&[100.0, 10.0]));
        assert!(!d.detects(&[100.0, 110.0, 120.0]));
    }

    #[test]
    fn invariant_detects_jumps() {
        let d = InvariantRange::cgm();
        assert!(d.detects(&[100.0, 160.0])); // +60 in one step
        assert!(!d.detects(&[100.0, 120.0, 140.0]));
    }

    #[test]
    fn invariant_stream_matches_batch() {
        let d = InvariantRange::cgm();
        let signals: [&[f64]; 4] = [
            &[100.0, 650.0],
            &[100.0, 160.0],
            &[100.0, 110.0, 120.0],
            &[100.0, 120.0, 90.0, 700.0],
        ];
        for sig in signals {
            let mut s = d.stream();
            let streamed = sig.iter().map(|&v| s.update(v)).collect::<Vec<_>>();
            assert_eq!(streamed.iter().any(|&a| a), d.detects(sig));
        }
    }

    #[test]
    fn invariant_stream_reset_forgets_prev() {
        let d = InvariantRange::cgm();
        let mut s = d.stream();
        assert!(!s.update(100.0));
        s.reset();
        // Without reset this +60 jump would alarm.
        assert!(!s.update(160.0));
    }

    #[test]
    fn cusum_alarms_on_non_finite_without_poisoning_state() {
        let mut d = Cusum::standard(0.0, 1.0);
        assert!(d.update(f64::NAN));
        assert!(d.update(f64::INFINITY));
        assert!(d.update(f64::NEG_INFINITY));
        // State untouched: an in-band sample right after is still quiet.
        assert!(!d.update(0.0));
        // And reset after NaN behaves like a fresh detector.
        d.update(f64::NAN);
        d.reset();
        assert!(!d.update(0.3));
    }

    #[test]
    fn invariant_alarms_on_non_finite_without_becoming_jump_reference() {
        let d = InvariantRange::cgm();
        let mut s = d.stream();
        assert!(!s.update(100.0));
        assert!(s.update(f64::NAN));
        assert!(s.update(f64::INFINITY));
        // The jump reference is still 100: a +60 jump must alarm even
        // though the in-between samples were non-finite…
        assert!(s.update(160.0));
        // …and a nearby sample must not.
        let mut s2 = d.stream();
        s2.update(100.0);
        s2.update(f64::NAN);
        assert!(!s2.update(110.0));
    }

    #[test]
    fn invariant_boundary_values_are_inside() {
        let d = InvariantRange::new(20.0, 600.0, 25.0);
        let mut s = d.stream();
        assert!(!s.update(20.0), "v == lo is in range");
        s.reset();
        assert!(!s.update(600.0), "v == hi is in range");
        s.reset();
        assert!(
            s.update(f64::from_bits(20.0_f64.to_bits() - 1)),
            "just below lo"
        );
        s.reset();
        assert!(s.update(600.0 + 1e-9), "just above hi");
    }

    #[test]
    fn invariant_first_sample_never_jumps() {
        let d = InvariantRange::new(0.0, 1000.0, 1.0);
        // However extreme the first sample, there is no previous sample to
        // jump from.
        assert!(!d.stream().update(999.0));
    }

    #[test]
    fn invariant_jump_exactly_max_step_is_allowed() {
        let d = InvariantRange::cgm();
        let mut s = d.stream();
        s.update(100.0);
        assert!(!s.update(125.0), "Δ == max_step passes");
        assert!(s.update(150.0 + 1e-9), "Δ just over max_step alarms");
    }

    #[test]
    fn invariant_stream_reset_after_alarm() {
        let d = InvariantRange::cgm();
        let mut s = d.stream();
        s.update(100.0);
        assert!(s.update(700.0), "out of range");
        s.reset();
        // Fresh stream semantics: no jump reference, range still enforced.
        assert!(!s.update(130.0));
        assert!(s.update(10.0));
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn invariant_rejects_bad_range() {
        let _ = InvariantRange::new(5.0, 5.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "std must be positive")]
    fn cusum_rejects_bad_std() {
        let _ = Cusum::new(0.0, 0.0, 0.5, 5.0);
    }
}
