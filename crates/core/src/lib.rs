//! # cpsmon-core — ML safety monitors with knowledge integration
//!
//! This crate is the paper's primary contribution layer. It turns raw
//! closed-loop traces from [`cpsmon_sim`] into windowed, labeled datasets;
//! trains the four ML monitors of the paper (MLP, LSTM, and their "Custom"
//! variants with the Eq. 2 semantic loss); wraps the knowledge-only
//! rule-based monitor from [`cpsmon_stl`]; and computes the paper's two
//! metric families:
//!
//! - **prediction accuracy** with the *sample level with tolerance window*
//!   confusion matrix of Table II ([`metrics`]);
//! - **prediction robustness error** (Eq. 5), the fraction of samples whose
//!   predicted class flips under an input perturbation ([`robustness`]).
//!
//! ## Pipeline
//!
//! ```
//! use cpsmon_core::{DatasetBuilder, MonitorKind, TrainConfig};
//! use cpsmon_sim::{CampaignConfig, SimulatorKind};
//!
//! # fn main() -> Result<(), cpsmon_core::CoreError> {
//! let traces = CampaignConfig::new(SimulatorKind::Glucosym)
//!     .patients(2)
//!     .runs_per_patient(2)
//!     .steps(96)
//!     .seed(9)
//!     .run();
//! let dataset = DatasetBuilder::new().build(&traces)?;
//! let monitor = MonitorKind::Mlp.train(&dataset, &TrainConfig::quick_test())?;
//! let report = monitor.evaluate(&dataset.test);
//! println!("F1 = {:.3}", report.f1());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod artifact;
pub mod dataset;
pub mod detectors;
pub mod error;
pub mod features;
pub mod guard;
pub mod metrics;
pub mod monitor;
pub mod pipeline;
pub mod robustness;
pub mod stream;
pub mod train;

pub use artifact::{dataset_fingerprint, train_config_hash, ArtifactError, MonitorBundle};
pub use dataset::{Dataset, DatasetBuilder, LabeledDataset};
pub use error::CoreError;
pub use features::{FeatureConfig, Normalizer, FEATURES_PER_STEP};
pub use guard::{GuardBank, GuardPolicy, GuardStatus, HealthState, Imputation, InputGuard};
pub use metrics::{ConfusionCounts, EvalReport};
pub use monitor::{MonitorKind, TrainedMonitor};
pub use pipeline::{
    Action, GuardStage, LatencyAttribution, MitigatedObserver, MitigationPolicy, Mitigator,
    PipelineSession, SessionStage,
};
pub use robustness::{robustness_error, sweep_parallel};
pub use stream::{
    CohortLstmBridge, CohortPoolBridge, GuardedSession, GuardedVerdict, InvalidSample, LstmEngine,
    LstmSessionPool, LstmStreamSession, MonitorSession, SessionPool, StepStream, Verdict,
    WindowStream,
};
pub use train::TrainConfig;
