//! The composable session pipeline: `Guard → Featurize → Monitor →
//! Mitigate`.
//!
//! [`crate::stream`] grew its deployment forms one at a time —
//! [`MonitorSession`], [`GuardedSession`](crate::stream::GuardedSession),
//! the pooled executors — and each hard-wired its own composition of the
//! same four stages. This module names the stages ([`SessionStage`]) and
//! provides the one solo composition they all share,
//! [`PipelineSession`]:
//!
//! 1. **Guard** ([`GuardStage`]) — optional input sanitization and the
//!    Healthy → Degraded → Fallback state machine, with the rule monitor
//!    as the degraded-mode verdict source;
//! 2. **Featurize** ([`crate::stream::WindowStream`]) — the incremental
//!    windowed featurizer;
//! 3. **Monitor** ([`MonitorSession`]) — the trained classifier over the
//!    normalized window;
//! 4. **Mitigate** ([`Mitigator`]) — optional rule- and
//!    trajectory-grounded corrective action derivation.
//!
//! The pooled engines ([`crate::stream::SessionPool`],
//! [`crate::stream::LstmSessionPool`]) are batched executors of the same
//! stage graph: they accept the same guard policy and [`Mitigator`] and
//! run the identical per-slot decision logic, with only the classifier
//! stage batched.
//!
//! ## Closing the loop
//!
//! A [`Verdict`](crate::stream::Verdict) now carries a typed
//! [`Action`]. [`MitigatedObserver`]
//! turns a [`PipelineSession`] into a
//! [`cpsmon_sim::StepObserver`] whose [`StepObserver::mitigation`] hook
//! feeds the action back into
//! [`cpsmon_sim::ClosedLoop::run_observed`] as a
//! [`PumpCommand`] — the first point in this codebase where an alarm
//! changes the simulated patient's future (DESIGN.md §14).
//!
//! ## Bit-identity contract
//!
//! The mitigation stage is pure post-processing: it never alters a
//! verdict's `label` or `proba`, and a pipeline without a mitigator takes
//! exactly the pre-pipeline code path. Zero-mitigation pipeline sessions
//! are therefore bitwise equal to the historical
//! `MonitorSession`/`GuardedSession` behavior (property-tested in the
//! workspace `mitigation` suite), and mitigated runs are deterministic:
//! [`Mitigator::decide`] is a pure function of the verdict and the window
//! context, so mitigated traces are identical across thread counts and
//! SIMD backends.

use std::time::{Duration, Instant};

use crate::guard::{GuardPolicy, GuardStatus, HealthState, InputGuard};
use crate::stream::{GuardedVerdict, MonitorSession, WindowStream};
use cpsmon_sim::trace::StepRecord;
use cpsmon_sim::{PumpCommand, StepObserver};
use cpsmon_stl::{ApsContext, ApsRules, HazardType, RuleMonitor};

/// A typed corrective action attached to every
/// [`Verdict`](crate::stream::Verdict).
///
/// Actions only ever *withhold* insulin: a runtime monitor can safely
/// refuse to deliver (the patient's liver raises glucose), but cannot
/// safely add insulin on its own authority — so hyperglycemia-side (H2)
/// alarms map to [`Action::None`] and are left to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Action {
    /// No corrective action.
    #[default]
    None,
    /// Suspend basal delivery entirely for `steps` control steps.
    SuspendBasal {
        /// Duration of the suspension in 5-minute control steps.
        steps: usize,
    },
    /// Cap the delivered rate at `max_rate` U/h for `steps` control steps.
    CapRate {
        /// Delivery ceiling (U/h).
        max_rate: f64,
        /// Duration of the cap in 5-minute control steps.
        steps: usize,
    },
}

impl Action {
    /// Whether this is [`Action::None`].
    pub fn is_none(&self) -> bool {
        matches!(self, Action::None)
    }

    /// Table label (`none` / `suspend_basal` / `cap_rate`).
    pub fn label(&self) -> &'static str {
        match self {
            Action::None => "none",
            Action::SuspendBasal { .. } => "suspend_basal",
            Action::CapRate { .. } => "cap_rate",
        }
    }

    /// The pump command implementing this action (`None` for
    /// [`Action::None`]).
    pub fn to_command(self) -> Option<PumpCommand> {
        match self {
            Action::None => None,
            Action::SuspendBasal { steps } => Some(PumpCommand::suspend(steps)),
            Action::CapRate { max_rate, steps } => Some(PumpCommand::cap(max_rate, steps)),
        }
    }
}

/// Where a verdict's wall-clock latency went, stage by stage.
///
/// The invariant `queue + compute + mitigation == Verdict::latency` holds
/// exactly (the summed field *is* the latency) for solo and pooled
/// sessions alike; the workspace `streaming`/`mitigation` suites pin it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyAttribution {
    /// Time between the record's push and the start of classification
    /// (zero for solo sessions; the batch queue wait for pooled ones).
    pub queue: Duration,
    /// Featurization plus classification — for pooled sessions, the
    /// batched forward pass divided by the rows that shared it.
    pub compute: Duration,
    /// Time spent deriving the corrective [`Action`] (zero when no
    /// mitigator is armed).
    pub mitigation: Duration,
}

impl LatencyAttribution {
    /// Attribution for a solo session: everything is compute.
    pub fn compute_only(compute: Duration) -> Self {
        Self {
            compute,
            ..Self::default()
        }
    }

    /// End-to-end latency: `queue + compute + mitigation`.
    pub fn total(&self) -> Duration {
        self.queue + self.compute + self.mitigation
    }
}

/// Thresholds and action shapes for the [`Mitigator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MitigationPolicy {
    /// Minimum alarm probability before any action is considered. The
    /// rule monitor reports hard 0/1, so it clears any threshold ≤ 1.
    pub threshold: f64,
    /// Hypoglycemia threshold (mg/dL) for the trajectory check.
    pub hypo: f64,
    /// Linear-extrapolation horizon (control steps) for the
    /// predicted-trajectory action.
    pub horizon_steps: usize,
    /// Duration of a basal suspension (control steps).
    pub suspend_steps: usize,
    /// Delivery ceiling for [`Action::CapRate`] (U/h).
    pub cap_rate: f64,
    /// Duration of a rate cap (control steps).
    pub cap_steps: usize,
}

impl Default for MitigationPolicy {
    /// APS deployment defaults: act on any alarm (`threshold` 0.5 — both
    /// argmax labels and hard rule labels clear it), suspend for 30
    /// minutes when hypoglycemia is current or predicted within one hour,
    /// cap at 0.5 U/h for 30 minutes on falling-BG/rising-IOB contexts.
    fn default() -> Self {
        Self {
            threshold: 0.5,
            hypo: 70.0,
            horizon_steps: 12,
            suspend_steps: 6,
            cap_rate: 0.5,
            cap_steps: 6,
        }
    }
}

/// The mitigation stage: derives a corrective [`Action`] from an alarm
/// and the window's rule context.
///
/// Two grounds for acting, both hypoglycemia-side (see [`Action`]):
///
/// - **rule-based** — the fired Table I rule implies hazard H1 (too much
///   insulin): suspend basal, the strongest withhold;
/// - **predicted-trajectory** — current BG, or BG linearly extrapolated
///   over [`MitigationPolicy::horizon_steps`], crosses the hypo
///   threshold: suspend; a falling-BG / rising-IOB context that has not
///   yet crossed gets the softer rate cap.
///
/// `decide` is a pure function of its inputs (no internal state), so
/// mitigated runs replay deterministically.
#[derive(Debug, Clone, Copy)]
pub struct Mitigator {
    rules: ApsRules,
    policy: MitigationPolicy,
}

impl Mitigator {
    /// Creates a mitigator with explicit rules and policy.
    pub fn new(rules: ApsRules, policy: MitigationPolicy) -> Self {
        Self { rules, policy }
    }

    /// The APS defaults ([`ApsRules::default`] +
    /// [`MitigationPolicy::default`]).
    pub fn aps() -> Self {
        Self::new(ApsRules::default(), MitigationPolicy::default())
    }

    /// The policy this mitigator acts under.
    pub fn policy(&self) -> &MitigationPolicy {
        &self.policy
    }

    /// Derives the action for one verdict. `ctx` is evaluated lazily —
    /// only alarms pay for context aggregation, so the armed-but-quiet
    /// per-step overhead is a branch.
    pub fn decide(&self, label: usize, proba: f64, ctx: impl FnOnce() -> ApsContext) -> Action {
        if label != 1 || proba < self.policy.threshold {
            return Action::None;
        }
        let ctx = ctx();
        if let Some(id) = self.rules.violated_rule(&ctx) {
            if ApsRules::hazard_of(id) == HazardType::H1 {
                return Action::SuspendBasal {
                    steps: self.policy.suspend_steps,
                };
            }
        }
        let predicted = ctx.bg + ctx.dbg * self.policy.horizon_steps as f64;
        if ctx.bg <= self.policy.hypo || predicted <= self.policy.hypo {
            return Action::SuspendBasal {
                steps: self.policy.suspend_steps,
            };
        }
        if ctx.dbg < -self.rules.bg_trend_eps && ctx.diob > self.rules.iob_eps {
            return Action::CapRate {
                max_rate: self.policy.cap_rate,
                steps: self.policy.cap_steps,
            };
        }
        Action::None
    }
}

/// A named, resettable stage of the session pipeline.
///
/// The trait is deliberately thin — stages have heterogeneous inputs and
/// outputs, so the data flow stays in [`PipelineSession::step`]; what the
/// stages share is identity (for introspection) and per-trace lifecycle.
pub trait SessionStage {
    /// Stage name (`guard` / `featurize` / `monitor` / `mitigate`).
    fn name(&self) -> &'static str;
    /// Forgets per-trace state (a patient hand-over).
    fn reset_stage(&mut self);
}

impl SessionStage for WindowStream {
    fn name(&self) -> &'static str {
        "featurize"
    }
    fn reset_stage(&mut self) {
        self.reset();
    }
}

impl SessionStage for MonitorSession<'_> {
    fn name(&self) -> &'static str {
        "monitor"
    }
    fn reset_stage(&mut self) {
        self.reset();
    }
}

impl SessionStage for Mitigator {
    fn name(&self) -> &'static str {
        "mitigate"
    }
    fn reset_stage(&mut self) {}
}

/// The guard stage: an [`InputGuard`] plus the rule monitor that takes
/// over while the guard reports [`HealthState::Fallback`].
#[derive(Debug, Clone)]
pub struct GuardStage {
    guard: InputGuard,
    fallback: RuleMonitor,
}

impl GuardStage {
    /// Creates a guard stage.
    pub fn new(policy: GuardPolicy, fallback: RuleMonitor) -> Self {
        Self {
            guard: InputGuard::new(policy),
            fallback,
        }
    }

    /// Current health (as of the last sanitized record).
    pub fn health(&self) -> HealthState {
        self.guard.health()
    }

    /// Sanitizes one record.
    pub fn sanitize(&mut self, rec: &StepRecord) -> (StepRecord, GuardStatus) {
        self.guard.sanitize(rec)
    }

    /// The fallback rule monitor.
    pub fn fallback(&self) -> &RuleMonitor {
        &self.fallback
    }
}

impl SessionStage for GuardStage {
    fn name(&self) -> &'static str {
        "guard"
    }
    fn reset_stage(&mut self) {
        self.guard.reset();
    }
}

/// The solo composition of the stage graph: optional guard, the monitor
/// core, optional mitigator.
///
/// `MonitorSession` behavior is `PipelineSession::new(core)`;
/// `GuardedSession` behavior is `.with_guard(..)`; the closed-loop
/// deployment form adds `.with_mitigator(..)` and wraps the whole thing
/// in a [`MitigatedObserver`].
#[derive(Debug, Clone)]
pub struct PipelineSession<'m> {
    guard: Option<GuardStage>,
    core: MonitorSession<'m>,
    mitigator: Option<Mitigator>,
}

impl<'m> PipelineSession<'m> {
    /// Wraps a monitor core with no guard and no mitigator (equivalent to
    /// the bare [`MonitorSession`], emitting [`GuardedVerdict`]s with
    /// `Healthy` health).
    pub fn new(core: MonitorSession<'m>) -> Self {
        Self {
            guard: None,
            core,
            mitigator: None,
        }
    }

    /// Arms the guard stage.
    pub fn with_guard(mut self, policy: GuardPolicy, fallback: RuleMonitor) -> Self {
        self.guard = Some(GuardStage::new(policy, fallback));
        self
    }

    /// Arms the mitigation stage.
    pub fn with_mitigator(mut self, mitigator: Mitigator) -> Self {
        self.mitigator = Some(mitigator);
        self
    }

    /// The monitor core.
    pub fn core(&self) -> &MonitorSession<'m> {
        &self.core
    }

    /// Current guard health ([`HealthState::Healthy`] when no guard is
    /// armed).
    pub fn health(&self) -> HealthState {
        self.guard
            .as_ref()
            .map_or(HealthState::Healthy, GuardStage::health)
    }

    /// Names of the armed stages, in execution order.
    pub fn stage_names(&self) -> Vec<&'static str> {
        let mut names = Vec::with_capacity(4);
        if let Some(g) = &self.guard {
            names.push(g.name());
        }
        names.push(self.core.window().name());
        names.push(self.core.name());
        if let Some(m) = &self.mitigator {
            names.push(m.name());
        }
        names
    }

    /// Feeds one record through every armed stage; returns a verdict once
    /// the window is full.
    ///
    /// # Panics
    ///
    /// With no guard armed, panics on non-finite sensor input (see
    /// [`WindowStream::push`]); a guarded pipeline imputes instead. Use
    /// [`try_step`](Self::try_step) when the input is untrusted.
    pub fn step(&mut self, rec: &StepRecord) -> Option<GuardedVerdict> {
        match self.try_step(rec) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`step`](Self::step) for untrusted per-step input: with a
    /// guard armed the error is unreachable (invalid samples are imputed
    /// and, past the staleness budget, surface as
    /// [`HealthState::Fallback`] rule verdicts); without one, non-finite
    /// input returns the typed [`InvalidSample`](crate::stream::InvalidSample)
    /// error instead of aborting the session.
    pub fn try_step(
        &mut self,
        rec: &StepRecord,
    ) -> Result<Option<GuardedVerdict>, crate::stream::InvalidSample> {
        let (clean, status) = match &mut self.guard {
            Some(g) => {
                let (clean, status) = g.sanitize(rec);
                (clean, Some(status))
            }
            None => (*rec, None),
        };
        let Some((mut verdict, mut ended)) = self.core.try_step_timed(&clean)? else {
            return Ok(None);
        };
        let (health, imputed) = status.map_or((HealthState::Healthy, false), |s| {
            (s.health, s.any_imputed())
        });
        if health == HealthState::Fallback {
            let g = self.guard.as_ref().expect("fallback implies a guard");
            let label = g.fallback.predict(&self.core.window().context());
            verdict.label = label;
            verdict.proba = label as f64;
            ended = Instant::now(); // keep the fallback work out of mitigation
        }
        // An alarm-free verdict skips the stage entirely (decide is the
        // identity there), so the armed-but-quiet cost is one branch —
        // not even a clock read; alarms pay exactly one, timed against
        // the instant the core's compute measurement ended.
        if let Some(m) = &self.mitigator {
            if verdict.label == 1 {
                // Rule monitors already aggregated this step's context to
                // classify — reuse it (cached, bit-identical) instead of
                // paying the O(window) aggregation twice.
                verdict.action = m.decide(verdict.label, verdict.proba, || {
                    self.core
                        .last_rule_context()
                        .unwrap_or_else(|| self.core.window().context())
                });
                verdict.attribution.mitigation = ended.elapsed();
                verdict.latency = verdict.attribution.total();
            }
        }
        Ok(Some(GuardedVerdict {
            verdict,
            health,
            imputed,
        }))
    }

    /// Resets every armed stage (the monitor and scratch stay warm).
    pub fn reset(&mut self) {
        if let Some(g) = &mut self.guard {
            g.reset_stage();
        }
        self.core.reset_stage();
    }
}

/// `(step, verdict)` pairs collected by a [`MitigatedObserver`].
pub type StepVerdicts = Vec<(usize, GuardedVerdict)>;

/// `(step, action)` pairs for every non-[`Action::None`] action a
/// [`MitigatedObserver`] issued.
pub type StepActions = Vec<(usize, Action)>;

/// Turns a [`PipelineSession`] into a monitor-in-the-loop
/// [`StepObserver`] whose alarms feed back into the pump: when the
/// session's verdict carries an [`Action`], the corresponding
/// [`PumpCommand`] is handed to
/// [`cpsmon_sim::ClosedLoop::run_observed`], which applies it from the
/// *next* control step.
///
/// `perturb` maps each recorded step to what the *monitor sees* — the
/// robustness-testing seam. Identity (`|_, r| *r`) monitors the true
/// trace; noise/attack/fault models perturb only the monitored copy, so
/// the plant dynamics stay those of the underlying run while the monitor
/// operates on corrupted inputs.
pub struct MitigatedObserver<'s, 'm, F> {
    session: &'s mut PipelineSession<'m>,
    perturb: F,
    verdicts: Vec<(usize, GuardedVerdict)>,
    actions: Vec<(usize, Action)>,
    pending: Option<PumpCommand>,
}

impl<'s, 'm, F: FnMut(usize, &StepRecord) -> StepRecord> MitigatedObserver<'s, 'm, F> {
    /// Wraps a session. `perturb` transforms each record before the
    /// monitor sees it (use `|_, r| *r` for a faithful view).
    pub fn new(session: &'s mut PipelineSession<'m>, perturb: F) -> Self {
        Self {
            session,
            perturb,
            verdicts: Vec::new(),
            actions: Vec::new(),
            pending: None,
        }
    }

    /// `(step, verdict)` pairs collected so far.
    pub fn verdicts(&self) -> &[(usize, GuardedVerdict)] {
        &self.verdicts
    }

    /// `(step, action)` pairs for every non-`None` action issued.
    pub fn actions(&self) -> &[(usize, Action)] {
        &self.actions
    }

    /// Consumes the observer, returning verdicts and issued actions.
    pub fn into_parts(self) -> (StepVerdicts, StepActions) {
        (self.verdicts, self.actions)
    }
}

impl<F: FnMut(usize, &StepRecord) -> StepRecord> StepObserver for MitigatedObserver<'_, '_, F> {
    fn on_step(&mut self, step: usize, record: &StepRecord) {
        let seen = (self.perturb)(step, record);
        if let Some(v) = self.session.step(&seen) {
            if !v.verdict.action.is_none() {
                self.actions.push((step, v.verdict.action));
                self.pending = v.verdict.action.to_command();
            }
            self.verdicts.push((step, v));
        }
    }

    fn mitigation(&mut self) -> Option<PumpCommand> {
        self.pending.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpsmon_stl::Command;

    fn ctx(bg: f64, dbg: f64, diob: f64, command: Command) -> ApsContext {
        ApsContext {
            bg,
            dbg,
            diob,
            command,
        }
    }

    #[test]
    fn no_action_without_alarm() {
        let m = Mitigator::aps();
        let c = ctx(60.0, -3.0, 0.2, Command::KeepInsulin);
        assert_eq!(m.decide(0, 0.0, || c), Action::None);
        assert_eq!(m.decide(1, 0.2, || c), Action::None, "below threshold");
    }

    #[test]
    fn h1_rule_alarm_suspends_basal() {
        let m = Mitigator::aps();
        // Rule 10: hypo while not stopping insulin.
        let c = ctx(60.0, 0.5, 0.2, Command::KeepInsulin);
        assert_eq!(m.decide(1, 1.0, || c), Action::SuspendBasal { steps: 6 });
    }

    #[test]
    fn h2_rule_alarm_takes_no_action() {
        let m = Mitigator::aps();
        // Rule 9: stopping insulin while hyperglycemic — H2, nothing a
        // monitor can safely deliver.
        let c = ctx(200.0, 0.0, 0.0, Command::StopInsulin);
        assert_eq!(m.decide(1, 1.0, || c), Action::None);
    }

    #[test]
    fn predicted_trajectory_suspends_before_crossing() {
        let m = Mitigator::aps();
        // BG 95 falling 3 mg/dL per step: 95 - 36 = 59 < 70 within the
        // 12-step horizon. No Table I rule fires (in range, keep, IOB
        // flat would be rule-free), so this is the trajectory ground.
        let c = ctx(95.0, -3.0, 0.0, Command::KeepInsulin);
        assert_eq!(m.decide(1, 1.0, || c), Action::SuspendBasal { steps: 6 });
    }

    #[test]
    fn falling_with_rising_iob_caps_rate() {
        let m = Mitigator::aps();
        // Falling but not projected to cross: 150 - 2*12 = 126 > 70, with
        // IOB still rising — soften with a cap.
        let c = ctx(150.0, -2.0, 0.2, Command::KeepInsulin);
        assert_eq!(
            m.decide(1, 1.0, || c),
            Action::CapRate {
                max_rate: 0.5,
                steps: 6
            }
        );
    }

    #[test]
    fn action_to_command_round_trip() {
        assert_eq!(Action::None.to_command(), None);
        assert_eq!(
            Action::SuspendBasal { steps: 4 }.to_command(),
            Some(PumpCommand::suspend(4))
        );
        assert_eq!(
            Action::CapRate {
                max_rate: 0.8,
                steps: 3
            }
            .to_command(),
            Some(PumpCommand::cap(0.8, 3))
        );
        assert!(Action::None.is_none());
        assert_eq!(Action::SuspendBasal { steps: 1 }.label(), "suspend_basal");
    }
}
