//! Error type for dataset construction and monitor training.

use std::error::Error;
use std::fmt;

/// Errors reported by `cpsmon-core` entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// No usable window could be extracted (traces empty or shorter than
    /// the window length).
    EmptyDataset,
    /// The dataset contains a single class, so a classifier cannot be
    /// trained or meaningfully evaluated.
    SingleClass,
    /// A configuration value was invalid.
    InvalidConfig(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyDataset => {
                write!(f, "no windows could be extracted from the given traces")
            }
            CoreError::SingleClass => {
                write!(f, "dataset contains only one class; cannot train a monitor")
            }
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CoreError::EmptyDataset.to_string().contains("windows"));
        assert!(CoreError::InvalidConfig("bad".into())
            .to_string()
            .contains("bad"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CoreError>();
    }
}
