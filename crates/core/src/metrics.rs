//! Prediction-accuracy metrics: the *sample level with tolerance window*
//! confusion matrix of Table II.
//!
//! A hazard alarm slightly before (or a short time into) the dangerous
//! window is clinically useful, so the paper scores each sample `t` as:
//!
//! - **ground-truth positive** (a hazard lies within `[t, t+δ]`): counted
//!   TP if the monitor raised an alarm anywhere in the δ window ending at
//!   `t`, FN otherwise;
//! - **ground-truth negative**: counted FP if the monitor alarms exactly
//!   at `t`, TN otherwise.
//!
//! Because the scoring is sequential, the functions here take per-trace
//! prediction/label sequences rather than flat sample bags.

/// Confusion-matrix counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionCounts {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// True negatives.
    pub tn: usize,
}

impl ConfusionCounts {
    /// Merges another set of counts into this one.
    pub fn merge(&mut self, other: ConfusionCounts) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
        self.tn += other.tn;
    }

    /// Total samples counted.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.fn_ + self.tn
    }
}

/// An evaluation report: counts plus the derived scores the paper tables
/// use.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EvalReport {
    /// The confusion counts.
    pub counts: ConfusionCounts,
}

impl EvalReport {
    /// Accuracy `(TP+TN)/total`; 0 on an empty report.
    pub fn accuracy(&self) -> f64 {
        let total = self.counts.total();
        if total == 0 {
            return 0.0;
        }
        (self.counts.tp + self.counts.tn) as f64 / total as f64
    }

    /// Precision `TP/(TP+FP)`; 0 when no positives were predicted.
    pub fn precision(&self) -> f64 {
        let denom = self.counts.tp + self.counts.fp;
        if denom == 0 {
            return 0.0;
        }
        self.counts.tp as f64 / denom as f64
    }

    /// Recall `TP/(TP+FN)`; 0 when there are no positive samples.
    pub fn recall(&self) -> f64 {
        let denom = self.counts.tp + self.counts.fn_;
        if denom == 0 {
            return 0.0;
        }
        self.counts.tp as f64 / denom as f64
    }

    /// F1 score (harmonic mean of precision and recall); 0 when undefined.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

/// Scores one trace's prediction sequence against its label sequence with
/// tolerance window `delta` (Table II).
///
/// Per Table II: a labeled-positive sample counts as TP when an alarm was
/// raised anywhere in the δ window ending at it (`Σ_{t-δ'}^{t} P > 0`),
/// and an alarm on a labeled-negative sample is only an FP when no hazard
/// label follows within δ (`Σ_{t}^{t+δ} G == 0`) — an early alarm shortly
/// before a hazard window is credited, not penalized.
///
/// # Panics
///
/// Panics if the sequences differ in length.
pub fn tolerance_confusion(preds: &[usize], labels: &[usize], delta: usize) -> ConfusionCounts {
    assert_eq!(preds.len(), labels.len(), "pred/label length mismatch");
    let n = preds.len();
    let mut counts = ConfusionCounts::default();
    for t in 0..n {
        if labels[t] > 0 {
            let behind_start = t.saturating_sub(delta);
            let covered = preds[behind_start..=t].iter().any(|&p| p > 0);
            if covered {
                counts.tp += 1;
            } else {
                counts.fn_ += 1;
            }
        } else if preds[t] > 0 {
            let ahead_end = (t + delta).min(n - 1);
            let early_warning = labels[t..=ahead_end].iter().any(|&l| l > 0);
            if early_warning {
                counts.tn += 1; // forgiven: alarm precedes a labeled hazard window
            } else {
                counts.fp += 1;
            }
        } else {
            counts.tn += 1;
        }
    }
    counts
}

/// Plain sample-level confusion matrix (tolerance 0 and no look-ahead):
/// the baseline metric used for robustness bookkeeping.
pub fn sample_confusion(preds: &[usize], labels: &[usize]) -> ConfusionCounts {
    assert_eq!(preds.len(), labels.len(), "pred/label length mismatch");
    let mut counts = ConfusionCounts::default();
    for (&p, &l) in preds.iter().zip(labels) {
        match (p > 0, l > 0) {
            (true, true) => counts.tp += 1,
            (true, false) => counts.fp += 1,
            (false, true) => counts.fn_ += 1,
            (false, false) => counts.tn += 1,
        }
    }
    counts
}

/// Default tolerance window δ in steps (30 minutes).
pub const DEFAULT_TOLERANCE_STEPS: usize = 6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let labels = vec![0, 0, 1, 1, 0];
        let counts = tolerance_confusion(&labels, &labels, 2);
        assert_eq!(counts.fn_, 0);
        assert_eq!(counts.fp, 0);
        let report = EvalReport { counts };
        assert_eq!(report.accuracy(), 1.0);
        assert_eq!(report.f1(), 1.0);
    }

    #[test]
    fn early_alarm_within_tolerance_counts_tp() {
        // Alarm at t=1, hazard label at t=3; with δ=2 the alarm covers the
        // positive (lookback from t=3 reaches t=1) and is itself forgiven
        // as an early warning rather than counted FP.
        let preds = vec![0, 1, 0, 0, 0];
        let labels = vec![0, 0, 0, 1, 0];
        let counts = tolerance_confusion(&preds, &labels, 2);
        assert_eq!(counts.fn_, 0);
        assert_eq!(counts.tp, 1);
        assert_eq!(counts.fp, 0);
        assert_eq!(counts.tn, 4);
    }

    #[test]
    fn late_alarm_outside_tolerance_is_fn_and_fp() {
        // Hazard label at t=0, alarm at t=4, δ=1: the positive at t=0 is
        // uncovered (FN) and the alarm at 4 has no upcoming hazard (FP).
        let preds = vec![0, 0, 0, 0, 1];
        let labels = vec![1, 0, 0, 0, 0];
        let counts = tolerance_confusion(&preds, &labels, 1);
        assert_eq!(counts.fn_, 1);
        assert_eq!(counts.fp, 1);
        assert_eq!(counts.tn, 3);
    }

    #[test]
    fn missed_hazard_is_fn_per_sample() {
        let preds = vec![0, 0, 0];
        let labels = vec![0, 1, 1];
        let counts = tolerance_confusion(&preds, &labels, 1);
        assert_eq!(counts.fn_, 2);
        assert_eq!(counts.tp, 0);
        assert_eq!(counts.tn, 1); // t=0 is negative; no alarm raised.
    }

    #[test]
    fn sample_confusion_basic() {
        let counts = sample_confusion(&[1, 0, 1, 0], &[1, 1, 0, 0]);
        assert_eq!(
            counts,
            ConfusionCounts {
                tp: 1,
                fp: 1,
                fn_: 1,
                tn: 1
            }
        );
        let report = EvalReport { counts };
        assert_eq!(report.accuracy(), 0.5);
        assert_eq!(report.precision(), 0.5);
        assert_eq!(report.recall(), 0.5);
        assert_eq!(report.f1(), 0.5);
    }

    #[test]
    fn empty_report_scores_zero() {
        let report = EvalReport::default();
        assert_eq!(report.accuracy(), 0.0);
        assert_eq!(report.f1(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ConfusionCounts {
            tp: 1,
            fp: 2,
            fn_: 3,
            tn: 4,
        };
        a.merge(ConfusionCounts {
            tp: 10,
            fp: 20,
            fn_: 30,
            tn: 40,
        });
        assert_eq!(
            a,
            ConfusionCounts {
                tp: 11,
                fp: 22,
                fn_: 33,
                tn: 44
            }
        );
        assert_eq!(a.total(), 110);
    }

    #[test]
    fn tolerance_zero_equals_sample_level_for_pointwise_labels() {
        // With δ=0 the tolerance metric degenerates to the plain one.
        let preds = vec![1, 0, 1, 1, 0];
        let labels = vec![0, 0, 1, 1, 1];
        assert_eq!(
            tolerance_confusion(&preds, &labels, 0),
            sample_confusion(&preds, &labels)
        );
    }
}
