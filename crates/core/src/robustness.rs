//! The prediction robustness error metric (Eq. 5 of the paper).
//!
//! ```text
//!                    Σᵢ I(f_θ(xᵢ) ≠ f_θ(xᵢ + Δx))
//! robustness error = ───────────────────────────────
//!                              Σⱼ Nⱼ
//! ```
//!
//! i.e. the fraction of samples whose *predicted class flips* when the
//! perturbation is applied. It needs no ground truth — it measures
//! prediction stability, not correctness.

use cpsmon_nn::{par, GradModel, Matrix};

/// Fraction of rows whose predictions differ between two label vectors.
///
/// # Panics
///
/// Panics if the vectors differ in length.
pub fn robustness_error(clean_preds: &[usize], perturbed_preds: &[usize]) -> f64 {
    assert_eq!(
        clean_preds.len(),
        perturbed_preds.len(),
        "prediction length mismatch"
    );
    if clean_preds.is_empty() {
        return 0.0;
    }
    let flips = clean_preds
        .iter()
        .zip(perturbed_preds)
        .filter(|(a, b)| a != b)
        .count();
    flips as f64 / clean_preds.len() as f64
}

/// Convenience: evaluates a model on clean and perturbed batches and
/// returns its robustness error.
///
/// # Panics
///
/// Panics if the two batches differ in shape.
pub fn model_robustness_error(model: &dyn GradModel, clean: &Matrix, perturbed: &Matrix) -> f64 {
    assert_eq!(clean.shape(), perturbed.shape(), "batch shape mismatch");
    robustness_error(
        &model.predict_labels(clean),
        &model.predict_labels(perturbed),
    )
}

/// Evaluates every sweep item — one grid cell of a robustness sweep —
/// through `eval`, fanning the items out across the data-parallel workers
/// of [`cpsmon_nn::par`] (one item per work unit).
///
/// The output order always matches the input order and every item is
/// evaluated exactly once, so the result is identical to
/// `items.iter().map(eval).collect()` regardless of the thread count
/// (`CPSMON_THREADS` honored). Item evaluation may itself use the parallel
/// layer: nested fan-out automatically degrades to inline execution, so
/// grid-level and batch-level parallelism compose without oversubscription.
///
/// Sweeps whose cells share expensive inputs (one loss gradient across an
/// ε sweep, one noise field per seed) should hoist them into
/// `cpsmon_attack::SweepContext`, whose `sweep` method precomputes the
/// shared halves and then fans the cheap per-cell materializations out
/// through this function.
pub fn sweep_parallel<T: Sync, R: Send>(items: &[T], eval: impl Fn(&T) -> R + Sync) -> Vec<R> {
    if items.len() <= 1 || par::max_threads() <= 1 {
        // No parallelism to exploit: skip the chunk grid (range vector,
        // per-chunk result merge) and map directly. Identical output —
        // per-cell evaluation is independent and run_chunks with a
        // single-item chunk visits items in the same order.
        return items.iter().map(&eval).collect();
    }
    // One item per chunk → the chunk-result list is exactly the item list.
    par::run_chunks(items.len(), 1, |r| eval(&items[r.start]))
}

/// Per-class flip rates `(flips in class j) / N_j`, keyed by the clean
/// prediction. Useful for diagnosing whether attacks mainly silence alarms
/// (unsafe → safe) or fabricate them.
pub fn per_class_flip_rates(
    clean_preds: &[usize],
    perturbed_preds: &[usize],
    classes: usize,
) -> Vec<f64> {
    assert_eq!(
        clean_preds.len(),
        perturbed_preds.len(),
        "prediction length mismatch"
    );
    let mut flips = vec![0usize; classes];
    let mut totals = vec![0usize; classes];
    for (&c, &p) in clean_preds.iter().zip(perturbed_preds) {
        totals[c] += 1;
        if c != p {
            flips[c] += 1;
        }
    }
    flips
        .into_iter()
        .zip(totals)
        .map(|(f, t)| if t == 0 { 0.0 } else { f as f64 / t as f64 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_predictions_have_zero_error() {
        let preds = vec![0, 1, 1, 0];
        assert_eq!(robustness_error(&preds, &preds), 0.0);
    }

    #[test]
    fn all_flipped_is_one() {
        assert_eq!(robustness_error(&[0, 1], &[1, 0]), 1.0);
    }

    #[test]
    fn partial_flips() {
        assert_eq!(robustness_error(&[0, 0, 1, 1], &[0, 1, 1, 0]), 0.5);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(robustness_error(&[], &[]), 0.0);
    }

    #[test]
    fn per_class_rates() {
        let clean = vec![0, 0, 0, 1, 1];
        let pert = vec![1, 0, 0, 0, 1];
        let rates = per_class_flip_rates(&clean, &pert, 2);
        assert!((rates[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((rates[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn per_class_handles_empty_class() {
        let rates = per_class_flip_rates(&[0, 0], &[0, 1], 3);
        assert_eq!(rates[1], 0.0);
        assert_eq!(rates[2], 0.0);
    }

    #[test]
    fn sweep_parallel_preserves_order_and_coverage() {
        let items: Vec<usize> = (0..17).collect();
        let out = sweep_parallel(&items, |&i| i * i);
        assert_eq!(out, items.iter().map(|&i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_parallel_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(sweep_parallel(&empty, |&v| v).is_empty());
        assert_eq!(sweep_parallel(&[7u32], |&v| v + 1), vec![8]);
    }

    #[test]
    fn sweep_parallel_matches_serial_across_thread_counts() {
        let items: Vec<usize> = (0..31).collect();
        let expect: Vec<usize> = items.iter().map(|&i| i.wrapping_mul(2654435761)).collect();
        for threads in [1usize, 4] {
            let _guard = cpsmon_nn::par::ThreadsGuard::set(threads);
            assert_eq!(
                sweep_parallel(&items, |&i| i.wrapping_mul(2654435761)),
                expect
            );
        }
    }
}
