//! Labeled, normalized datasets built from simulation campaigns.

use crate::error::CoreError;
use crate::features::{FeatureConfig, Normalizer, WindowSample};
use cpsmon_nn::rng::SmallRng;
use cpsmon_nn::Matrix;
use cpsmon_sim::hazard::HazardConfig;
use cpsmon_sim::trace::SimTrace;
use cpsmon_stl::{ApsContext, ApsRules};

/// A set of monitor samples ready for training or evaluation.
///
/// `x` holds *normalized* flattened windows (one row per sample) — the
/// space in which monitors operate and attacks perturb. Raw-unit values
/// can be recovered through the split's [`Normalizer`]. The rule contexts
/// are kept in raw units (rules are specified on physical quantities).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Normalized feature matrix (`N × window·FEATURES_PER_STEP`).
    pub x: Matrix,
    /// Eq. 1 labels (0 safe / 1 unsafe).
    pub labels: Vec<usize>,
    /// Eq. 2 rule indicators (`1.0` iff any Table I rule fires).
    pub indicators: Vec<f64>,
    /// Raw-unit rule contexts, index-aligned with rows of `x`.
    pub contexts: Vec<ApsContext>,
    /// Source trace index per sample (campaign order).
    pub trace_idx: Vec<usize>,
    /// Window end step per sample.
    pub steps: Vec<usize>,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Fraction of unsafe-labeled samples.
    pub fn positive_ratio(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().sum::<usize>() as f64 / self.labels.len() as f64
    }

    /// Groups sample indices by source trace, preserving step order —
    /// needed by the tolerance-window metrics, which are sequential.
    pub fn samples_by_trace(&self) -> Vec<(usize, Vec<usize>)> {
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for (i, &t) in self.trace_idx.iter().enumerate() {
            match groups.last_mut() {
                Some((last, idxs)) if *last == t => idxs.push(i),
                _ => groups.push((t, vec![i])),
            }
        }
        groups
    }

    /// A copy containing only the rows in `idx` (provenance included).
    pub fn subset(&self, idx: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select_rows(idx),
            labels: idx.iter().map(|&i| self.labels[i]).collect(),
            indicators: idx.iter().map(|&i| self.indicators[i]).collect(),
            contexts: idx.iter().map(|&i| self.contexts[i]).collect(),
            trace_idx: idx.iter().map(|&i| self.trace_idx[i]).collect(),
            steps: idx.iter().map(|&i| self.steps[i]).collect(),
        }
    }
}

/// A train/test split with its fitted normalizer and provenance config.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledDataset {
    /// Training samples.
    pub train: Dataset,
    /// Held-out samples (split by trace, so no window overlap leaks).
    pub test: Dataset,
    /// Normalizer fitted on the *training* rows only.
    pub normalizer: Normalizer,
    /// Windowing configuration used.
    pub feature_config: FeatureConfig,
    /// Hazard/labeling configuration used.
    pub hazard_config: HazardConfig,
    /// Safety-rule parameters the Eq. 2 indicators were computed with (the
    /// rule-based monitor uses the same set, so knowledge- and data-driven
    /// monitors see one consistent specification).
    pub rules: ApsRules,
}

impl LabeledDataset {
    /// Features per window row.
    pub fn feature_dim(&self) -> usize {
        self.train.x.cols()
    }
}

/// Builder turning campaign traces into a [`LabeledDataset`].
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetBuilder {
    feature_config: FeatureConfig,
    hazard_config: HazardConfig,
    rules: ApsRules,
    test_fraction: f64,
    seed: u64,
}

impl Default for DatasetBuilder {
    fn default() -> Self {
        Self {
            feature_config: FeatureConfig::default(),
            hazard_config: HazardConfig::default(),
            rules: ApsRules::default(),
            test_fraction: 0.3,
            seed: 0,
        }
    }
}

impl DatasetBuilder {
    /// Creates a builder with paper-style defaults (6-step windows, 12-step
    /// horizon, 70/30 trace-level split).
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the windowing configuration.
    pub fn feature_config(mut self, cfg: FeatureConfig) -> Self {
        self.feature_config = cfg;
        self
    }

    /// Overrides hazard thresholds / prediction horizon.
    pub fn hazard_config(mut self, cfg: HazardConfig) -> Self {
        self.hazard_config = cfg;
        self
    }

    /// Overrides the Table I rule parameters used for the Eq. 2 indicators
    /// (and, downstream, the rule-based monitor).
    pub fn rules(mut self, rules: ApsRules) -> Self {
        self.rules = rules;
        self
    }

    /// Fraction of *traces* reserved for testing.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < f < 1`.
    pub fn test_fraction(mut self, f: f64) -> Self {
        assert!(f > 0.0 && f < 1.0, "test fraction must be in (0,1)");
        self.test_fraction = f;
        self
    }

    /// Seed for the trace-level shuffle.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Builds the dataset.
    ///
    /// Splitting happens at *trace* granularity: windows from one run never
    /// appear in both train and test (window overlap would otherwise leak
    /// test information into training).
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptyDataset`] if no windows could be extracted;
    /// [`CoreError::SingleClass`] if all labels agree (degenerate campaign).
    pub fn build(&self, traces: &[SimTrace]) -> Result<LabeledDataset, CoreError> {
        let mut samples: Vec<WindowSample> = Vec::new();
        for (idx, trace) in traces.iter().enumerate() {
            let labels = self.hazard_config.labels(trace);
            samples.extend(self.feature_config.windows(trace, &labels, idx));
        }
        if samples.is_empty() {
            return Err(CoreError::EmptyDataset);
        }
        let positives: usize = samples.iter().map(|s| s.label).sum();
        if positives == 0 || positives == samples.len() {
            return Err(CoreError::SingleClass);
        }
        // Trace-level split.
        let mut trace_ids: Vec<usize> = (0..traces.len()).collect();
        let mut rng = SmallRng::new(self.seed ^ 0x7370_6c69_745f_7367);
        rng.shuffle(&mut trace_ids);
        let n_test = ((traces.len() as f64 * self.test_fraction).round() as usize)
            .clamp(1, traces.len().saturating_sub(1).max(1));
        let test_set: std::collections::HashSet<usize> =
            trace_ids.into_iter().take(n_test).collect();
        let (test_samples, train_samples): (Vec<_>, Vec<_>) = samples
            .into_iter()
            .partition(|s| test_set.contains(&s.trace_idx));
        let to_dataset = |samples: &[WindowSample]| {
            let rows: Vec<&[f64]> = samples.iter().map(|s| s.features.as_slice()).collect();
            Dataset {
                x: if rows.is_empty() {
                    Matrix::zeros(0, 0)
                } else {
                    Matrix::from_rows(&rows)
                },
                labels: samples.iter().map(|s| s.label).collect(),
                indicators: Vec::new(), // filled below
                contexts: samples.iter().map(|s| s.context).collect(),
                trace_idx: samples.iter().map(|s| s.trace_idx).collect(),
                steps: samples.iter().map(|s| s.step).collect(),
            }
        };
        let mut train = to_dataset(&train_samples);
        let mut test = to_dataset(&test_samples);
        if train.is_empty() || test.is_empty() {
            return Err(CoreError::EmptyDataset);
        }
        // Rule indicators from raw contexts.
        let rules = self.rules;
        train.indicators = train
            .contexts
            .iter()
            .map(|c| f64::from(u8::from(rules.violated(c))))
            .collect();
        test.indicators = test
            .contexts
            .iter()
            .map(|c| f64::from(u8::from(rules.violated(c))))
            .collect();
        // Normalize with train statistics.
        let normalizer = Normalizer::fit(&train.x);
        train.x = normalizer.transform(&train.x);
        test.x = normalizer.transform(&test.x);
        Ok(LabeledDataset {
            train,
            test,
            normalizer,
            feature_config: self.feature_config,
            hazard_config: self.hazard_config,
            rules,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpsmon_sim::{CampaignConfig, SimulatorKind};

    fn campaign() -> Vec<SimTrace> {
        CampaignConfig::new(SimulatorKind::Glucosym)
            .patients(2)
            .runs_per_patient(3)
            .steps(144)
            .fault_ratio(0.6)
            .seed(13)
            .run()
    }

    #[test]
    fn build_produces_both_splits() {
        let ds = DatasetBuilder::new().build(&campaign()).unwrap();
        assert!(!ds.train.is_empty());
        assert!(!ds.test.is_empty());
        assert_eq!(ds.feature_dim(), 36);
        assert_eq!(ds.train.x.rows(), ds.train.labels.len());
        assert_eq!(ds.train.labels.len(), ds.train.indicators.len());
        assert_eq!(ds.train.labels.len(), ds.train.contexts.len());
    }

    #[test]
    fn split_is_by_trace() {
        let ds = DatasetBuilder::new().build(&campaign()).unwrap();
        let train_traces: std::collections::HashSet<_> = ds.train.trace_idx.iter().collect();
        let test_traces: std::collections::HashSet<_> = ds.test.trace_idx.iter().collect();
        assert!(train_traces.is_disjoint(&test_traces));
    }

    #[test]
    fn train_features_are_normalized() {
        let ds = DatasetBuilder::new().build(&campaign()).unwrap();
        // Column means of the train split should be ~0.
        let x = &ds.train.x;
        for c in 0..x.cols() {
            let mean: f64 = (0..x.rows()).map(|r| x.get(r, c)).sum::<f64>() / x.rows() as f64;
            assert!(mean.abs() < 1e-8, "column {c} mean {mean}");
        }
    }

    #[test]
    fn empty_traces_rejected() {
        let err = DatasetBuilder::new().build(&[]).unwrap_err();
        assert_eq!(err, CoreError::EmptyDataset);
    }

    #[test]
    fn single_class_rejected() {
        // Fault-free short fasting-like campaign may avoid hazards; if it
        // doesn't, skip (we only assert the error path when it happens).
        let traces = CampaignConfig::new(SimulatorKind::Glucosym)
            .patients(1)
            .runs_per_patient(2)
            .steps(24)
            .fault_ratio(0.0)
            .seed(3)
            .run();
        match DatasetBuilder::new().build(&traces) {
            Err(CoreError::SingleClass) => {}
            Err(e) => panic!("unexpected error {e}"),
            Ok(ds) => assert!(ds.train.positive_ratio() > 0.0),
        }
    }

    #[test]
    fn subset_preserves_alignment() {
        let ds = DatasetBuilder::new().build(&campaign()).unwrap();
        let idx = vec![0, 2, 4];
        let sub = ds.train.subset(&idx);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.labels[1], ds.train.labels[2]);
        assert_eq!(sub.x.row(1), ds.train.x.row(2));
        assert_eq!(sub.steps[2], ds.train.steps[4]);
    }

    #[test]
    fn samples_by_trace_groups_contiguously() {
        let ds = DatasetBuilder::new().build(&campaign()).unwrap();
        let groups = ds.test.samples_by_trace();
        let mut seen = std::collections::HashSet::new();
        for (t, idxs) in &groups {
            assert!(seen.insert(*t), "trace {t} appears twice");
            for w in idxs.windows(2) {
                assert!(
                    ds.test.steps[w[0]] < ds.test.steps[w[1]],
                    "steps out of order"
                );
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let traces = campaign();
        let a = DatasetBuilder::new().seed(4).build(&traces).unwrap();
        let b = DatasetBuilder::new().seed(4).build(&traces).unwrap();
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }
}
