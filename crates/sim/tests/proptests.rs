//! Property-based tests of the simulation substrate: physiological
//! plausibility under arbitrary (bounded) insulin policies, labeling
//! equivalence with a brute-force oracle, and pump safety clamps.

use cpsmon_sim::faults::{PumpFault, PumpFaultKind};
use cpsmon_sim::glucosym::GlucosymPatient;
use cpsmon_sim::hazard::HazardConfig;
use cpsmon_sim::patient::PatientModel;
use cpsmon_sim::pump::InsulinPump;
use cpsmon_sim::t1ds::T1dsPatient;
use cpsmon_sim::trace::{SimTrace, StepRecord};
use proptest::prelude::*;

fn trace_from_bg(bgs: &[f64]) -> SimTrace {
    let records = bgs
        .iter()
        .map(|&bg| StepRecord {
            bg_true: bg,
            bg_sensor: bg,
            iob: 0.0,
            commanded_rate: 1.0,
            delivered_rate: 1.0,
            carbs: 0.0,
        })
        .collect();
    SimTrace::new("glucosym", "openaps", 0, 0, None, records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn glucosym_bg_stays_physiological(
        rates in proptest::collection::vec(0.0f64..10.0, 1..60),
        // Realistic meal pattern: at most ~10 % of steps carry a meal.
        meals in proptest::collection::vec((0.0f64..1.0, 0.0f64..80.0), 1..60),
        pid in 0usize..20,
    ) {
        let mut p = GlucosymPatient::from_profile(pid, 1);
        for (r, (roll, grams)) in rates.iter().zip(&meals) {
            let carbs = if *roll < 0.1 { *grams } else { 0.0 };
            p.step(*r, carbs);
            prop_assert!(p.bg().is_finite());
            prop_assert!(p.bg() >= 10.0, "bg {}", p.bg());
            prop_assert!(p.bg() <= 1200.0, "bg {}", p.bg());
            prop_assert!(p.iob() >= 0.0);
        }
    }

    #[test]
    fn t1ds_bg_stays_physiological(
        rates in proptest::collection::vec(0.0f64..10.0, 1..40),
        // Realistic meal pattern: at most ~10 % of steps carry a meal.
        meals in proptest::collection::vec((0.0f64..1.0, 0.0f64..80.0), 1..40),
    ) {
        // Calibration is costly; exercise a single profile under many policies.
        let mut p = T1dsPatient::calibrated(0, 1);
        for (r, (roll, grams)) in rates.iter().zip(&meals) {
            let carbs = if *roll < 0.1 { *grams } else { 0.0 };
            p.step(*r, carbs);
            prop_assert!(p.bg().is_finite());
            prop_assert!(p.bg() >= 10.0, "bg {}", p.bg());
            prop_assert!(p.bg() <= 1200.0, "bg {}", p.bg());
        }
    }

    #[test]
    fn hazard_labels_match_bruteforce_oracle(
        bgs in proptest::collection::vec(30.0f64..350.0, 1..50),
        horizon in 0usize..15,
    ) {
        let cfg = HazardConfig { hypo: 70.0, hyper: 180.0, horizon_steps: horizon };
        let trace = trace_from_bg(&bgs);
        let labels = cfg.labels(&trace);
        #[allow(clippy::needless_range_loop)]
        for t in 0..bgs.len() {
            let expected = (t..=(t + horizon).min(bgs.len() - 1))
                .any(|u| bgs[u] < 70.0 || bgs[u] > 180.0);
            prop_assert_eq!(labels[t] == 1, expected, "t={}", t);
        }
    }

    #[test]
    fn episodes_cover_exactly_the_hazard_steps(bgs in proptest::collection::vec(30.0f64..350.0, 1..50)) {
        let cfg = HazardConfig::default();
        let trace = trace_from_bg(&bgs);
        let episodes = cfg.episodes(&trace);
        let mut covered = vec![false; bgs.len()];
        for e in &episodes {
            prop_assert!(e.start < e.end);
            #[allow(clippy::needless_range_loop)]
            for t in e.start..e.end {
                prop_assert!(!covered[t], "episodes overlap at {t}");
                covered[t] = true;
            }
        }
        for (t, &bg) in bgs.iter().enumerate() {
            prop_assert_eq!(covered[t], cfg.is_hazard(bg), "t={}", t);
        }
    }

    #[test]
    fn pump_delivery_is_always_clamped(
        commands in proptest::collection::vec(-50.0f64..500.0, 1..40),
        kind in 0usize..4,
        start in 0usize..20,
        dur in 1usize..20,
    ) {
        let fault = PumpFault {
            kind: match kind {
                0 => PumpFaultKind::Overdose { rate: 300.0 },
                1 => PumpFaultKind::Underdose { factor: 0.2 },
                2 => PumpFaultKind::StuckRate,
                _ => PumpFaultKind::Suspend,
            },
            start_step: start,
            duration_steps: dur,
        };
        let mut pump = InsulinPump::with_fault(fault);
        let max = pump.max_rate;
        for (step, &cmd) in commands.iter().enumerate() {
            let delivered = pump.deliver(step, cmd);
            prop_assert!((0.0..=max).contains(&delivered), "delivered {delivered}");
        }
    }

    #[test]
    fn pump_outside_fault_window_is_exact(
        commands in proptest::collection::vec(0.0f64..50.0, 1..30),
    ) {
        let fault = PumpFault { kind: PumpFaultKind::Suspend, start_step: 5, duration_steps: 3 };
        let mut pump = InsulinPump::with_fault(fault);
        for (step, &cmd) in commands.iter().enumerate() {
            let delivered = pump.deliver(step, cmd);
            if !(5..8).contains(&step) {
                prop_assert_eq!(delivered, cmd.min(pump.max_rate));
            } else {
                prop_assert_eq!(delivered, 0.0);
            }
        }
    }
}
