//! Property-based bit-identity tests for the structure-of-arrays cohort
//! engine: batched runs must reproduce per-patient [`ClosedLoop`] runs
//! *to the bit* — for both simulators, arbitrary campaign shapes, ragged
//! dropout horizons, live sensor-fault injection, and every SIMD backend
//! this machine can run. The CI matrix additionally re-runs this suite
//! under `CPSMON_SIMD=0` and `CPSMON_SIMD=max`, which drives the engine's
//! *default* backend through the same properties.

use cpsmon_nn::rng::SmallRng;
use cpsmon_sim::engine::ClosedLoop;
use cpsmon_sim::faults::{ChannelFault, FaultModel, FaultPlan, SensorChannel};
use cpsmon_sim::glucosym::GlucosymPatient;
use cpsmon_sim::meal::MealSchedule;
use cpsmon_sim::openaps::OpenApsController;
use cpsmon_sim::patient::PatientModel;
use cpsmon_sim::pump::InsulinPump;
use cpsmon_sim::sensor::Cgm;
use cpsmon_sim::trace::{SimTrace, StepRecord};
use cpsmon_sim::{
    available_backends, CampaignConfig, Cohort, CohortEngine, CohortMember, FaultedCohortObserver,
    SimulatorKind,
};
use proptest::prelude::*;

/// Bitwise trace comparison — stricter than `PartialEq` (`-0.0 != 0.0`).
fn traces_bit_identical(batched: &[SimTrace], scalar: &[SimTrace]) -> Result<(), String> {
    if batched.len() != scalar.len() {
        return Err(format!("{} vs {} traces", batched.len(), scalar.len()));
    }
    for (b, s) in batched.iter().zip(scalar) {
        if (b.simulator, b.controller, b.patient_id, b.run_id, b.fault)
            != (s.simulator, s.controller, s.patient_id, s.run_id, s.fault)
        {
            return Err(format!(
                "metadata mismatch: patient {} run {}",
                s.patient_id, s.run_id
            ));
        }
        if b.len() != s.len() {
            return Err(format!(
                "patient {} run {}: {} vs {} records",
                s.patient_id,
                s.run_id,
                b.len(),
                s.len()
            ));
        }
        for (t, (rb, rs)) in b.records().iter().zip(s.records()).enumerate() {
            let pairs = [
                ("bg_true", rb.bg_true, rs.bg_true),
                ("bg_sensor", rb.bg_sensor, rs.bg_sensor),
                ("iob", rb.iob, rs.iob),
                ("commanded_rate", rb.commanded_rate, rs.commanded_rate),
                ("delivered_rate", rb.delivered_rate, rs.delivered_rate),
                ("carbs", rb.carbs, rs.carbs),
            ];
            for (name, vb, vs) in pairs {
                if vb.to_bits() != vs.to_bits() {
                    return Err(format!(
                        "patient {} run {} step {t} field {name}: {vb} != {vs}",
                        s.patient_id, s.run_id
                    ));
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any Glucosym campaign shape: batched == scalar, bit for bit.
    #[test]
    fn glucosym_campaign_batched_is_bit_identical(
        patients in 1usize..4,
        runs in 1usize..4,
        steps in 4usize..48,
        seed in 0u64..1000,
        fault_pct in 0u8..=10,
    ) {
        let cfg = CampaignConfig::new(SimulatorKind::Glucosym)
            .patients(patients)
            .runs_per_patient(runs)
            .steps(steps)
            .fault_ratio(f64::from(fault_pct) / 10.0)
            .seed(seed);
        prop_assert!(traces_bit_identical(&cfg.run_batched(), &cfg.run()).is_ok());
    }

    /// Any T1DS2013 campaign shape: batched == scalar, bit for bit.
    /// (Smaller shapes — per-patient basal calibration dominates.)
    #[test]
    fn t1ds_campaign_batched_is_bit_identical(
        patients in 1usize..3,
        runs in 1usize..3,
        steps in 4usize..32,
        seed in 0u64..1000,
        fault_pct in 0u8..=10,
    ) {
        let cfg = CampaignConfig::new(SimulatorKind::T1ds2013)
            .patients(patients)
            .runs_per_patient(runs)
            .steps(steps)
            .fault_ratio(f64::from(fault_pct) / 10.0)
            .seed(seed);
        prop_assert!(traces_bit_identical(&cfg.run_batched(), &cfg.run()).is_ok());
    }

    /// Every available SIMD backend agrees with the batched-scalar kernel
    /// bit for bit, for sampled cohorts of both simulators and sizes that
    /// exercise full vector blocks plus ragged tails.
    #[test]
    fn all_backends_agree_bitwise(
        kind_t1ds in 0u8..2,
        n in 1usize..20,
        steps in 4usize..24,
        seed in 0u64..1000,
    ) {
        let kind_t1ds = kind_t1ds == 1;
        let kind = if kind_t1ds { SimulatorKind::T1ds2013 } else { SimulatorKind::Glucosym };
        // Cap T1DS cohorts: calibration is the cost, not the stepping.
        let n = if kind_t1ds { 1 + n % 6 } else { n };
        let cohort = Cohort::sample(kind, seed, n);
        let reference = cohort
            .engine(steps, seed, 0.3)
            .with_backend(cpsmon_nn::simd::Backend::Scalar)
            .run();
        for backend in available_backends() {
            let traces = cohort.engine(steps, seed, 0.3).with_backend(backend).run();
            prop_assert!(
                traces_bit_identical(&traces, &reference).is_ok(),
                "backend {} diverged: {:?}",
                backend.label(),
                traces_bit_identical(&traces, &reference)
            );
        }
    }

    /// Ragged dropout: members with different horizons each reproduce
    /// their own standalone closed-loop run exactly, under every backend.
    #[test]
    fn ragged_horizons_are_bit_identical(
        horizons in proptest::collection::vec(1usize..40, 1..10),
        seed in 0u64..1000,
    ) {
        let mut scalar = Vec::new();
        let make_engine = || {
            let mut engine = CohortEngine::new(SimulatorKind::Glucosym);
            for (i, &h) in horizons.iter().enumerate() {
                let patient = GlucosymPatient::from_profile(i % 20, seed);
                let mut rng = SmallRng::new(seed).fork(i as u64);
                let meals = MealSchedule::generate(h, &mut rng);
                let cgm = Cgm::typical(rng.fork(1));
                engine.push(
                    patient,
                    CohortMember {
                        patient_id: i,
                        run_id: 0,
                        cgm,
                        pump: InsulinPump::healthy(),
                        meals,
                        steps: h,
                    },
                );
            }
            engine
        };
        for (i, &h) in horizons.iter().enumerate() {
            let patient = GlucosymPatient::from_profile(i % 20, seed);
            let mut rng = SmallRng::new(seed).fork(i as u64);
            let meals = MealSchedule::generate(h, &mut rng);
            let cgm = Cgm::typical(rng.fork(1));
            scalar.push(
                ClosedLoop::new(patient, OpenApsController::new(), InsulinPump::healthy(), cgm, meals)
                    .run(h, "glucosym", i, 0),
            );
        }
        for backend in available_backends() {
            let traces = make_engine().with_backend(backend).run();
            prop_assert!(
                traces_bit_identical(&traces, &scalar).is_ok(),
                "backend {} diverged: {:?}",
                backend.label(),
                traces_bit_identical(&traces, &scalar)
            );
        }
    }

    /// Live sensor-fault injection: a monitor behind
    /// [`FaultedCohortObserver`] sees, per member, exactly the records a
    /// per-trace injector would produce over the scalar run.
    #[test]
    fn live_fault_injection_matches_scalar(
        steps in 8usize..32,
        seed in 0u64..1000,
        plan_seed in 0u64..1000,
        bias in -20.0f64..20.0,
        drift in 0.0f64..2.0,
    ) {
        let cfg = CampaignConfig::new(SimulatorKind::Glucosym)
            .patients(2)
            .runs_per_patient(2)
            .steps(steps)
            .fault_ratio(0.5)
            .seed(seed);
        let plan = FaultPlan::new(plan_seed)
            .with(ChannelFault::new(
                SensorChannel::BgSensor,
                FaultModel::Bias { offset: bias },
                1,
                steps / 2,
            ))
            .with(ChannelFault::new(
                SensorChannel::Iob,
                FaultModel::Drift { rate: drift },
                2,
                steps,
            ));
        let engine = CohortEngine::from_campaign(&cfg);
        let mut batched: Vec<Vec<StepRecord>> = vec![Vec::new(); engine.len()];
        {
            let mut sink = |m: usize, _s: usize, r: &StepRecord| batched[m].push(*r);
            let mut faulted = FaultedCohortObserver::for_engine(&plan, &engine, &mut sink);
            engine.run_observed(&mut faulted);
        }
        for (m, trace) in cfg.run().iter().enumerate() {
            let injected = plan.inject(trace);
            prop_assert_eq!(&batched[m], injected.records(), "member {}", m);
        }
    }

    /// Parallel lane-block integration is bit-transparent: a cohort large
    /// enough to fan integration out across `par` workers (above the
    /// 256-lane chunk size) produces bit-identical traces for any
    /// `CPSMON_THREADS`, on every backend this machine can run.
    #[test]
    fn large_cohort_is_thread_invariant(seed in 0u64..100) {
        use cpsmon_nn::par::ThreadsGuard;
        let cohort = Cohort::sample(SimulatorKind::Glucosym, seed, 300);
        for backend in available_backends() {
            let reference = {
                let _guard = ThreadsGuard::set(1);
                cohort.engine(8, seed, 0.2).with_backend(backend).run()
            };
            for threads in [2usize, 5] {
                let _guard = ThreadsGuard::set(threads);
                let traces = cohort.engine(8, seed, 0.2).with_backend(backend).run();
                prop_assert!(
                    traces_bit_identical(&traces, &reference).is_ok(),
                    "backend {} with {} threads diverged: {:?}",
                    backend.label(),
                    threads,
                    traces_bit_identical(&traces, &reference)
                );
            }
        }
    }

    /// The latin-hypercube sampler is order-stable: member `j` of a size-n
    /// cohort has the same parameters regardless of when it is read, and
    /// resampling with the same seed reproduces it exactly.
    #[test]
    fn sampler_is_deterministic(seed in 0u64..1000, n in 1usize..32) {
        let a = Cohort::sample(SimulatorKind::Glucosym, seed, n);
        let b = Cohort::sample(SimulatorKind::Glucosym, seed, n);
        for (pa, pb) in a.patients().iter().zip(b.patients()) {
            match (pa, pb) {
                (
                    cpsmon_sim::CohortPatient::Glucosym(x),
                    cpsmon_sim::CohortPatient::Glucosym(y),
                ) => {
                    prop_assert_eq!(x.params(), y.params());
                    prop_assert_eq!(x.therapy(), y.therapy());
                }
                _ => prop_assert!(false, "wrong patient kind"),
            }
        }
    }
}
