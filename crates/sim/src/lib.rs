//! # cpsmon-sim — closed-loop Artificial Pancreas System simulators
//!
//! The paper evaluates its monitors on traces from two closed-loop APS
//! simulation environments: the Glucosym simulator paired with the OpenAPS
//! controller, and the UVA-Padova T1DS2013 simulator paired with a
//! Basal-Bolus controller, each with 20 diabetic patient profiles. Neither
//! simulator is available as reusable open source (Glucosym is an archived
//! JS service; UVA-Padova is licensed MATLAB), so this crate implements
//! both from scratch (see `DESIGN.md` for the substitution argument):
//!
//! - [`glucosym::GlucosymPatient`] — an extended Bergman minimal-model
//!   glucose–insulin ODE.
//! - [`t1ds::T1dsPatient`] — a reduced Dalla-Man-style multi-compartment
//!   model (the physiology family behind the UVA-Padova simulator).
//! - [`openaps::OpenApsController`] / [`basal_bolus::BasalBolusController`]
//!   — the two control algorithms.
//! - [`sensor::Cgm`] — a continuous glucose monitor with calibration noise.
//! - [`pump::InsulinPump`] + [`faults::PumpFault`] — actuation with
//!   accidental/malicious fault injection (overdose, underdose, stuck rate,
//!   suspension).
//! - [`faults::FaultPlan`] — seeded *sensor-side* fault injection (dropout,
//!   stuck-at, spikes, drift, bias, quantization, delay) for robustness
//!   testing of monitors.
//! - [`engine::ClosedLoop`] — wires everything together and records a
//!   [`trace::SimTrace`].
//! - [`campaign::CampaignConfig`] — seeded multi-patient simulation
//!   campaigns producing labeled trace sets.
//!
//! Time base: one simulation step is **5 minutes** (matching the paper's
//! "each simulation step equals 5 minutes"); the ODE integrators internally
//! subsample at 1 minute.
//!
//! ## Example
//!
//! ```
//! use cpsmon_sim::{CampaignConfig, SimulatorKind};
//!
//! let traces = CampaignConfig::new(SimulatorKind::Glucosym)
//!     .patients(1)
//!     .runs_per_patient(2)
//!     .steps(60)
//!     .seed(1)
//!     .run();
//! assert_eq!(traces.len(), 2);
//! assert!(traces[0].records().len() == 60);
//! ```

#![warn(missing_docs)]

pub mod basal_bolus;
pub mod campaign;
pub mod cohort;
pub mod controller;
pub mod engine;
pub mod faults;
pub mod glucosym;
pub mod hazard;
pub mod meal;
pub mod openaps;
pub mod patient;
pub mod pump;
pub mod sensor;
pub mod t1ds;
pub mod trace;

pub use campaign::{CampaignConfig, MemberLoop, SimulatorKind};
pub use cohort::{
    available_backends, Cohort, CohortEngine, CohortMember, CohortObserver, CohortPatient,
    FaultedCohortObserver,
};
pub use controller::{Controller, Observation};
pub use engine::{ClosedLoop, StepObserver};
pub use faults::{
    ChannelFault, FaultInjector, FaultModel, FaultPlan, FaultedObserver, PumpFault, PumpFaultKind,
    SensorChannel,
};
pub use hazard::{HazardConfig, HazardEpisode};
pub use patient::{PatientModel, TherapyProfile};
pub use pump::{InsulinPump, PumpCommand};
pub use sensor::{Cgm, CgmFault, CgmFaultKind};
pub use trace::{SimTrace, StepRecord};
