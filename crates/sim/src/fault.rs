//! Fault and attack injection on the pump command path.
//!
//! The paper's threat model (§III) includes an attacker who "can remotely
//! login to an insulin pump and change the output control commands" and
//! accidental malfunctions where "the pump can deliver an incorrect insulin
//! dosage". We model both as transformations applied to the commanded rate
//! during a contiguous window of the simulation.

use cpsmon_nn::rng::SmallRng;

/// The kinds of pump-command corruption we can inject.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Attacker forces a fixed high delivery rate regardless of commands
    /// (insulin overdose → hypoglycemia). Absolute, so the controller's
    /// defensive suspension cannot neutralize it — the attacker owns the
    /// pump.
    Overdose {
        /// Forced delivery rate (U/h).
        rate: f64,
    },
    /// Rate multiplied by a factor < 1 (underdose → hyperglycemia).
    Underdose {
        /// Multiplicative factor (< 1).
        factor: f64,
    },
    /// Pump ignores new commands and keeps delivering the rate it had when
    /// the fault began.
    StuckRate,
    /// Delivery suspended entirely.
    Suspend,
}

/// A fault occurrence: what, when, and for how long.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// The corruption applied.
    pub kind: FaultKind,
    /// First affected step.
    pub start_step: usize,
    /// Number of affected steps.
    pub duration_steps: usize,
}

impl FaultPlan {
    /// Whether `step` falls inside the fault window.
    pub fn active_at(&self, step: usize) -> bool {
        step >= self.start_step && step < self.start_step + self.duration_steps
    }

    /// Samples a random fault for a scenario of `steps` steps.
    ///
    /// `reference_rate` is the patient's basal rate; overdose attacks force
    /// a multiple of it. The window starts in the 15–60 % span of the
    /// scenario and lasts 1–6 hours, so there is always clean lead-in data
    /// and room for the hazard to develop — mirroring the paper's
    /// fault-injection campaigns.
    pub fn sample(steps: usize, reference_rate: f64, rng: &mut SmallRng) -> Self {
        let kind = match rng.index(4) {
            0 => FaultKind::Overdose {
                rate: reference_rate * rng.uniform_range(3.0, 8.0),
            },
            1 => FaultKind::Underdose {
                factor: rng.uniform_range(0.0, 0.4),
            },
            2 => FaultKind::StuckRate,
            _ => FaultKind::Suspend,
        };
        let start = (steps as f64 * rng.uniform_range(0.15, 0.60)) as usize;
        let duration = ((rng.uniform_range(60.0, 360.0) / 5.0) as usize).max(1);
        Self {
            kind,
            start_step: start,
            duration_steps: duration,
        }
    }

    /// Short label for reports ("overdose", "suspend", …).
    pub fn label(&self) -> &'static str {
        match self.kind {
            FaultKind::Overdose { .. } => "overdose",
            FaultKind::Underdose { .. } => "underdose",
            FaultKind::StuckRate => "stuck",
            FaultKind::Suspend => "suspend",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_window() {
        let f = FaultPlan {
            kind: FaultKind::Suspend,
            start_step: 10,
            duration_steps: 5,
        };
        assert!(!f.active_at(9));
        assert!(f.active_at(10));
        assert!(f.active_at(14));
        assert!(!f.active_at(15));
    }

    #[test]
    fn sample_within_bounds() {
        let mut rng = SmallRng::new(5);
        for _ in 0..200 {
            let f = FaultPlan::sample(288, 1.0, &mut rng);
            assert!(
                f.start_step >= 43 && f.start_step <= 173,
                "start {}",
                f.start_step
            );
            assert!(f.duration_steps >= 12 && f.duration_steps <= 72);
            match f.kind {
                FaultKind::Overdose { rate } => assert!(rate > 1.0),
                FaultKind::Underdose { factor } => assert!(factor < 1.0),
                _ => {}
            }
        }
    }

    #[test]
    fn sample_covers_all_kinds() {
        let mut rng = SmallRng::new(6);
        let mut seen = [false; 4];
        for _ in 0..100 {
            match FaultPlan::sample(288, 1.0, &mut rng).kind {
                FaultKind::Overdose { .. } => seen[0] = true,
                FaultKind::Underdose { .. } => seen[1] = true,
                FaultKind::StuckRate => seen[2] = true,
                FaultKind::Suspend => seen[3] = true,
            }
        }
        assert!(seen.iter().all(|&s| s), "kinds seen: {seen:?}");
    }
}
