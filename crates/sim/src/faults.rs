//! Sensor-channel fault injection: realistic (non-adversarial) failure
//! modes for robustness testing.
//!
//! The paper perturbs monitor inputs with Gaussian noise and FGSM — both
//! *adversarial* models. A deployed APS monitor also faces *natural*
//! sensor faults: dropped CGM samples, stuck-at readings, spikes from
//! calibration events, slow drift, quantization, and transport delay. This
//! module provides a seeded, deterministic injector for those fault
//! classes, applied to a recorded [`SimTrace`] (offline rewriting) or to a
//! live [`crate::engine::ClosedLoop`] run through the
//! [`StepObserver`] hook ([`FaultedObserver`]).
//!
//! Two fault families live here:
//!
//! - [`PumpFault`] models *pump-side* actuation faults that alter the
//!   physics of the run (overdose, suspension) — the paper's §III threat
//!   model, applied on the command path by [`crate::pump::InsulinPump`].
//! - [`FaultPlan`]/[`ChannelFault`] corrupt only what the *monitor
//!   observes* — the patient dynamics are untouched, which is exactly the
//!   property a robustness sweep needs (ground-truth labels stay valid).
//!
//! ## Determinism contract
//!
//! Injection is a pure function of `(FaultPlan, trace identity)`: the
//! injector RNG is seeded from the plan seed and a stream key derived from
//! `(simulator, patient_id, run_id)`, and each fault in the plan draws
//! from its own forked stream. Injecting the same plan into the same
//! traces therefore yields bit-identical results regardless of iteration
//! order or thread count.
//!
//! ## Example
//!
//! ```
//! use cpsmon_sim::faults::{ChannelFault, FaultModel, FaultPlan, SensorChannel};
//! use cpsmon_sim::{CampaignConfig, SimulatorKind};
//!
//! let traces = CampaignConfig::new(SimulatorKind::Glucosym)
//!     .patients(1)
//!     .steps(48)
//!     .seed(7)
//!     .run();
//! let plan = FaultPlan::new(0xFA01).with(ChannelFault::new(
//!     SensorChannel::BgSensor,
//!     FaultModel::Bias { offset: 40.0 },
//!     10,
//!     20,
//! ));
//! let faulted = plan.inject(&traces[0]);
//! assert_eq!(faulted.records()[15].bg_sensor, traces[0].records()[15].bg_sensor + 40.0);
//! assert_eq!(faulted.records()[5], traces[0].records()[5]); // outside the window
//! ```

use std::collections::VecDeque;

use crate::engine::StepObserver;
use crate::trace::{SimTrace, StepRecord};
use cpsmon_nn::rng::SmallRng;

/// Per-step firing probability of an active [`FaultModel::Spike`] fault
/// (intermittent glitches, not a solid block of outliers).
pub const SPIKE_PROB: f64 = 0.2;

/// Seed salt mixed into every injector RNG so fault streams are decoupled
/// from the campaign streams that produced the traces.
const FAULT_SALT: u64 = 0x7365_6e73_6f72_666c; // "sensorfl"

/// A monitor-observable sensor channel of a [`StepRecord`].
///
/// Only the three channels the monitors featurize are injectable;
/// `bg_true` (labeling ground truth) and `commanded_rate`/`carbs` are
/// never touched, so hazard labels remain valid on faulted traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SensorChannel {
    /// The CGM glucose reading (`bg_sensor`, mg/dL).
    BgSensor,
    /// The pump insulin-on-board estimate (`iob`, U).
    Iob,
    /// The delivered insulin rate on the actuation bus
    /// (`delivered_rate`, U/h).
    DeliveredRate,
}

impl SensorChannel {
    /// Reads this channel from a record.
    pub fn get(&self, rec: &StepRecord) -> f64 {
        match self {
            SensorChannel::BgSensor => rec.bg_sensor,
            SensorChannel::Iob => rec.iob,
            SensorChannel::DeliveredRate => rec.delivered_rate,
        }
    }

    /// The physical floor the channel's transducer enforces (the CGM never
    /// reports below 1 mg/dL — see [`crate::sensor::Cgm`] — and IOB/rate
    /// are non-negative). Finite injected values are clamped here;
    /// non-finite values (dropouts) pass through unclamped.
    pub fn floor(&self) -> f64 {
        match self {
            SensorChannel::BgSensor => 1.0,
            SensorChannel::Iob | SensorChannel::DeliveredRate => 0.0,
        }
    }

    /// Returns a copy of `rec` with this channel set to `v` (clamped to
    /// [`floor`](Self::floor) when finite).
    pub fn set(&self, rec: &StepRecord, v: f64) -> StepRecord {
        let v = if v.is_finite() {
            v.max(self.floor())
        } else {
            v
        };
        let mut out = *rec;
        match self {
            SensorChannel::BgSensor => out.bg_sensor = v,
            SensorChannel::Iob => out.iob = v,
            SensorChannel::DeliveredRate => out.delivered_rate = v,
        }
        out
    }

    /// Short label for tables (`bg` / `iob` / `rate`).
    pub fn label(&self) -> &'static str {
        match self {
            SensorChannel::BgSensor => "bg",
            SensorChannel::Iob => "iob",
            SensorChannel::DeliveredRate => "rate",
        }
    }
}

/// A sensor fault class, parameterized by its intensity.
///
/// All models are standard CPS fault-injection fare (cf. the sensor-fault
/// robustness studies in `PAPERS.md`): they corrupt the *observed* value
/// of a channel without feeding back into the plant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultModel {
    /// Each active step is dropped (replaced by `NaN`) with probability
    /// `p` — a lost CGM transmission.
    Dropout {
        /// Per-step drop probability in `[0, 1]`.
        p: f64,
    },
    /// The channel freezes at its current value for `duration` steps, then
    /// re-latches — a stuck transducer that occasionally resamples.
    StuckAt {
        /// Steps each latched value is held for (≥ 1 enforced).
        duration: usize,
    },
    /// Each active step fires an additive outlier of `±magnitude` with
    /// probability [`SPIKE_PROB`] — calibration glitches.
    Spike {
        /// Absolute outlier amplitude (channel units).
        magnitude: f64,
    },
    /// Linearly accumulating offset: `rate` channel-units per step since
    /// fault onset — uncalibrated sensor drift.
    Drift {
        /// Drift slope (channel units per 5-minute step).
        rate: f64,
    },
    /// Constant additive offset — a miscalibrated sensor.
    Bias {
        /// The offset (channel units).
        offset: f64,
    },
    /// Values are rounded to the nearest multiple of `step` — coarse ADC
    /// quantization.
    Quantize {
        /// Quantization step (> 0, channel units).
        step: f64,
    },
    /// The channel reports the value from `steps` steps ago (the earliest
    /// seen value while history is still shorter) — transport or
    /// processing delay.
    Delay {
        /// Delay depth in steps.
        steps: usize,
    },
}

impl FaultModel {
    /// Short label for tables (`dropout`, `stuck`, `spike`, `drift`,
    /// `bias`, `quantize`, `delay`).
    pub fn label(&self) -> &'static str {
        match self {
            FaultModel::Dropout { .. } => "dropout",
            FaultModel::StuckAt { .. } => "stuck",
            FaultModel::Spike { .. } => "spike",
            FaultModel::Drift { .. } => "drift",
            FaultModel::Bias { .. } => "bias",
            FaultModel::Quantize { .. } => "quantize",
            FaultModel::Delay { .. } => "delay",
        }
    }

    /// The model's scalar intensity (the grid axis of the `fault_sweep`
    /// experiment).
    pub fn intensity(&self) -> f64 {
        match *self {
            FaultModel::Dropout { p } => p,
            FaultModel::StuckAt { duration } => duration as f64,
            FaultModel::Spike { magnitude } => magnitude,
            FaultModel::Drift { rate } => rate,
            FaultModel::Bias { offset } => offset,
            FaultModel::Quantize { step } => step,
            FaultModel::Delay { steps } => steps as f64,
        }
    }
}

/// One fault applied to one channel over one step interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelFault {
    /// The corrupted channel.
    pub channel: SensorChannel,
    /// The fault class and intensity.
    pub model: FaultModel,
    /// First affected step (0-based).
    pub start_step: usize,
    /// Number of affected steps.
    pub duration_steps: usize,
}

impl ChannelFault {
    /// Creates a fault active on `[start_step, start_step + duration_steps)`.
    pub fn new(
        channel: SensorChannel,
        model: FaultModel,
        start_step: usize,
        duration_steps: usize,
    ) -> Self {
        Self {
            channel,
            model,
            start_step,
            duration_steps,
        }
    }

    /// Whether the fault is active at step `t`.
    pub fn active_at(&self, t: usize) -> bool {
        t >= self.start_step && t < self.start_step + self.duration_steps
    }
}

/// A fault-injection campaign: a seed plus any number of [`ChannelFault`]s,
/// composable per channel and per interval (faults are applied in plan
/// order, each seeing its predecessors' output).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// The campaign faults, in application order.
    pub faults: Vec<ChannelFault>,
    /// Root seed; all injector randomness derives from it.
    pub seed: u64,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            faults: Vec::new(),
            seed,
        }
    }

    /// Adds a fault (builder style).
    #[must_use]
    pub fn with(mut self, fault: ChannelFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// A stateful injector on an explicit RNG stream. Prefer
    /// [`injector_for`](Self::injector_for), which derives the stream from
    /// the trace identity.
    pub fn injector(&self, stream: u64) -> FaultInjector {
        let mut root = SmallRng::new(self.seed ^ FAULT_SALT).fork(stream);
        let states = (0..self.faults.len() as u64)
            .map(|i| FaultState::new(root.fork(i)))
            .collect();
        FaultInjector {
            faults: self.faults.clone(),
            states,
            t: 0,
        }
    }

    /// A stateful injector keyed to one trace's identity, so injection is
    /// independent of trace iteration order and thread count.
    pub fn injector_for(&self, simulator: &str, patient_id: usize, run_id: usize) -> FaultInjector {
        self.injector(trace_stream(simulator, patient_id, run_id))
    }

    /// Rewrites one trace's sensor channels. Ground truth (`bg_true`),
    /// commanded rate, carbs, labels-relevant metadata, and the pump-fault
    /// annotation are preserved.
    pub fn inject(&self, trace: &SimTrace) -> SimTrace {
        let mut inj = self.injector_for(trace.simulator, trace.patient_id, trace.run_id);
        let records = trace.records().iter().map(|r| inj.apply(r)).collect();
        SimTrace::new(
            trace.simulator,
            trace.controller,
            trace.patient_id,
            trace.run_id,
            trace.fault,
            records,
        )
    }

    /// [`inject`](Self::inject) over a whole campaign.
    pub fn inject_all(&self, traces: &[SimTrace]) -> Vec<SimTrace> {
        traces.iter().map(|t| self.inject(t)).collect()
    }
}

/// Per-fault mutable state.
#[derive(Debug, Clone)]
struct FaultState {
    rng: SmallRng,
    /// Latched value and steps it remains held (stuck-at).
    stuck: Option<(f64, usize)>,
    /// Raw channel history (delay).
    history: VecDeque<f64>,
}

impl FaultState {
    fn new(rng: SmallRng) -> Self {
        Self {
            rng,
            stuck: None,
            history: VecDeque::new(),
        }
    }
}

/// Stateful sequential injector for one trace/stream: feed records in step
/// order via [`apply`](Self::apply). Created by [`FaultPlan::injector`] /
/// [`FaultPlan::injector_for`].
#[derive(Debug, Clone)]
pub struct FaultInjector {
    faults: Vec<ChannelFault>,
    states: Vec<FaultState>,
    t: usize,
}

impl FaultInjector {
    /// Steps consumed so far.
    pub fn steps_seen(&self) -> usize {
        self.t
    }

    /// Applies the plan to the next record (step index = records fed so
    /// far) and returns the corrupted copy.
    pub fn apply(&mut self, rec: &StepRecord) -> StepRecord {
        let t = self.t;
        self.t += 1;
        let mut out = *rec;
        for (fault, state) in self.faults.iter().zip(&mut self.states) {
            // Later faults compose over earlier faults' output.
            let raw = fault.channel.get(&out);
            if let FaultModel::Delay { steps } = fault.model {
                // Delay history tracks the channel at *every* step so the
                // fault window can reach back before its own onset.
                state.history.push_back(raw);
                while state.history.len() > steps + 1 {
                    state.history.pop_front();
                }
            }
            if !fault.active_at(t) {
                state.stuck = None;
                continue;
            }
            let age = t - fault.start_step;
            let v = match fault.model {
                FaultModel::Dropout { p } => {
                    if state.rng.bernoulli(p) {
                        f64::NAN
                    } else {
                        raw
                    }
                }
                FaultModel::StuckAt { duration } => {
                    let (held, left) = match state.stuck {
                        Some((held, left)) if left > 0 => (held, left),
                        _ => (raw, duration.max(1)),
                    };
                    state.stuck = Some((held, left - 1));
                    held
                }
                FaultModel::Spike { magnitude } => {
                    if state.rng.bernoulli(SPIKE_PROB) {
                        let sign = if state.rng.bernoulli(0.5) { 1.0 } else { -1.0 };
                        raw + sign * magnitude
                    } else {
                        raw
                    }
                }
                FaultModel::Drift { rate } => raw + rate * (age + 1) as f64,
                FaultModel::Bias { offset } => raw + offset,
                FaultModel::Quantize { step } => (raw / step).round() * step,
                FaultModel::Delay { steps } => {
                    // History ends with the current raw value; the value
                    // `steps` back (or the earliest seen) is reported.
                    let n = state.history.len();
                    state.history[n.saturating_sub(steps + 1)]
                }
            };
            out = fault.channel.set(&out, v);
        }
        out
    }
}

/// A [`StepObserver`] adapter corrupting the record stream *before* the
/// inner observer (typically a monitor session) sees it — live
/// fault injection for monitor-in-the-loop runs, bit-identical to
/// [`FaultPlan::inject`] on the recorded trace when keyed the same way.
pub struct FaultedObserver<'a> {
    injector: FaultInjector,
    inner: &'a mut dyn StepObserver,
}

impl<'a> FaultedObserver<'a> {
    /// Wraps `inner` behind `injector`.
    pub fn new(injector: FaultInjector, inner: &'a mut dyn StepObserver) -> Self {
        Self { injector, inner }
    }
}

impl StepObserver for FaultedObserver<'_> {
    fn on_step(&mut self, step: usize, record: &StepRecord) {
        let faulted = self.injector.apply(record);
        self.inner.on_step(step, &faulted);
    }
}

/// The kinds of pump-command corruption we can inject.
///
/// The paper's threat model (§III) includes an attacker who "can remotely
/// login to an insulin pump and change the output control commands" and
/// accidental malfunctions where "the pump can deliver an incorrect insulin
/// dosage". We model both as transformations applied to the commanded rate
/// during a contiguous window of the simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PumpFaultKind {
    /// Attacker forces a fixed high delivery rate regardless of commands
    /// (insulin overdose → hypoglycemia). Absolute, so the controller's
    /// defensive suspension cannot neutralize it — the attacker owns the
    /// pump.
    Overdose {
        /// Forced delivery rate (U/h).
        rate: f64,
    },
    /// Rate multiplied by a factor < 1 (underdose → hyperglycemia).
    Underdose {
        /// Multiplicative factor (< 1).
        factor: f64,
    },
    /// Pump ignores new commands and keeps delivering the rate it had when
    /// the fault began.
    StuckRate,
    /// Delivery suspended entirely.
    Suspend,
}

/// A pump-side fault occurrence: what, when, and for how long.
///
/// Unlike the sensor-side [`FaultPlan`], a pump fault changes the plant's
/// actual insulin delivery, so the physiological trajectory (and its hazard
/// labels) change with it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PumpFault {
    /// The corruption applied.
    pub kind: PumpFaultKind,
    /// First affected step.
    pub start_step: usize,
    /// Number of affected steps.
    pub duration_steps: usize,
}

impl PumpFault {
    /// Whether `step` falls inside the fault window.
    pub fn active_at(&self, step: usize) -> bool {
        step >= self.start_step && step < self.start_step + self.duration_steps
    }

    /// Samples a random fault for a scenario of `steps` steps.
    ///
    /// `reference_rate` is the patient's basal rate; overdose attacks force
    /// a multiple of it. The window starts in the 15–60 % span of the
    /// scenario and lasts 1–6 hours, so there is always clean lead-in data
    /// and room for the hazard to develop — mirroring the paper's
    /// fault-injection campaigns.
    pub fn sample(steps: usize, reference_rate: f64, rng: &mut SmallRng) -> Self {
        let kind = match rng.index(4) {
            0 => PumpFaultKind::Overdose {
                rate: reference_rate * rng.uniform_range(3.0, 8.0),
            },
            1 => PumpFaultKind::Underdose {
                factor: rng.uniform_range(0.0, 0.4),
            },
            2 => PumpFaultKind::StuckRate,
            _ => PumpFaultKind::Suspend,
        };
        let start = (steps as f64 * rng.uniform_range(0.15, 0.60)) as usize;
        let duration = ((rng.uniform_range(60.0, 360.0) / 5.0) as usize).max(1);
        Self {
            kind,
            start_step: start,
            duration_steps: duration,
        }
    }

    /// Short label for reports ("overdose", "suspend", …).
    pub fn label(&self) -> &'static str {
        match self.kind {
            PumpFaultKind::Overdose { .. } => "overdose",
            PumpFaultKind::Underdose { .. } => "underdose",
            PumpFaultKind::StuckRate => "stuck",
            PumpFaultKind::Suspend => "suspend",
        }
    }
}

/// FNV-1a stream key over a trace identity, mixing the simulator label and
/// both indices so every trace of a campaign gets a decoupled RNG stream.
fn trace_stream(simulator: &str, patient_id: usize, run_id: usize) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in simulator
        .bytes()
        .chain((patient_id as u64).to_le_bytes())
        .chain((run_id as u64).to_le_bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignConfig, SimulatorKind};

    fn trace() -> SimTrace {
        CampaignConfig::new(SimulatorKind::Glucosym)
            .patients(1)
            .runs_per_patient(1)
            .steps(60)
            .seed(11)
            .run()
            .remove(0)
    }

    fn bg_fault(model: FaultModel) -> FaultPlan {
        FaultPlan::new(0xFA).with(ChannelFault::new(SensorChannel::BgSensor, model, 10, 30))
    }

    #[test]
    fn empty_plan_is_identity() {
        let t = trace();
        assert_eq!(FaultPlan::new(1).inject(&t), t);
    }

    /// Bit-level view of a trace's injectable channels (NaN-safe, unlike
    /// `PartialEq` on records).
    fn channel_bits(t: &SimTrace) -> Vec<[u64; 3]> {
        t.records()
            .iter()
            .map(|r| {
                [
                    r.bg_sensor.to_bits(),
                    r.iob.to_bits(),
                    r.delivered_rate.to_bits(),
                ]
            })
            .collect()
    }

    #[test]
    fn injection_is_deterministic() {
        let t = trace();
        let plan = bg_fault(FaultModel::Dropout { p: 0.5 });
        assert_eq!(
            channel_bits(&plan.inject(&t)),
            channel_bits(&plan.inject(&t))
        );
    }

    #[test]
    fn seed_changes_dropout_pattern() {
        let t = trace();
        let a = bg_fault(FaultModel::Dropout { p: 0.5 }).inject(&t);
        let mut b_plan = bg_fault(FaultModel::Dropout { p: 0.5 });
        b_plan.seed = 0xFB;
        assert_ne!(channel_bits(&a), channel_bits(&b_plan.inject(&t)));
    }

    #[test]
    fn fault_window_is_respected() {
        let t = trace();
        let out = bg_fault(FaultModel::Bias { offset: 50.0 }).inject(&t);
        for (i, (a, b)) in t.records().iter().zip(out.records()).enumerate() {
            if (10..40).contains(&i) {
                assert_eq!(b.bg_sensor, (a.bg_sensor + 50.0).max(1.0), "step {i}");
            } else {
                assert_eq!(a, b, "step {i} outside window must be untouched");
            }
            assert_eq!(a.bg_true, b.bg_true, "ground truth must never change");
            assert_eq!(a.iob, b.iob);
            assert_eq!(a.delivered_rate, b.delivered_rate);
        }
    }

    #[test]
    fn dropout_rate_tracks_p() {
        let t = trace();
        let out = bg_fault(FaultModel::Dropout { p: 1.0 }).inject(&t);
        let nans = out.records()[10..40]
            .iter()
            .filter(|r| r.bg_sensor.is_nan())
            .count();
        assert_eq!(nans, 30, "p=1 drops every active step");
        let none = bg_fault(FaultModel::Dropout { p: 0.0 }).inject(&t);
        assert_eq!(none, t);
    }

    #[test]
    fn stuck_at_latches_and_relatches() {
        let t = trace();
        let out = bg_fault(FaultModel::StuckAt { duration: 10 }).inject(&t);
        let r = out.records();
        let first = t.records()[10].bg_sensor;
        for (i, held) in r.iter().enumerate().take(20).skip(10) {
            assert_eq!(held.bg_sensor, first, "held value at step {i}");
        }
        let second = t.records()[20].bg_sensor;
        assert_eq!(r[20].bg_sensor, second, "re-latched at step 20");
        assert_ne!(first, second, "CGM noise makes equal readings implausible");
    }

    #[test]
    fn drift_accumulates_linearly() {
        let t = trace();
        let out = bg_fault(FaultModel::Drift { rate: 2.0 }).inject(&t);
        assert_eq!(out.records()[10].bg_sensor, t.records()[10].bg_sensor + 2.0);
        assert_eq!(
            out.records()[39].bg_sensor,
            t.records()[39].bg_sensor + 60.0
        );
    }

    #[test]
    fn quantize_rounds_to_grid() {
        let t = trace();
        let out = bg_fault(FaultModel::Quantize { step: 25.0 }).inject(&t);
        for r in &out.records()[10..40] {
            let q = r.bg_sensor / 25.0;
            assert_eq!(q, q.round());
        }
    }

    #[test]
    fn delay_replays_old_values() {
        let t = trace();
        let out = bg_fault(FaultModel::Delay { steps: 3 }).inject(&t);
        for i in 10..40 {
            assert_eq!(
                out.records()[i].bg_sensor,
                t.records()[i - 3].bg_sensor,
                "step {i} reports the value 3 steps back"
            );
        }
        assert_eq!(out.records()[9], t.records()[9]);
    }

    #[test]
    fn faults_compose_in_plan_order() {
        let t = trace();
        let plan = FaultPlan::new(1)
            .with(ChannelFault::new(
                SensorChannel::BgSensor,
                FaultModel::Bias { offset: 7.0 },
                0,
                60,
            ))
            .with(ChannelFault::new(
                SensorChannel::BgSensor,
                FaultModel::Quantize { step: 10.0 },
                0,
                60,
            ));
        let out = plan.inject(&t);
        for (a, b) in t.records().iter().zip(out.records()) {
            assert_eq!(b.bg_sensor, ((a.bg_sensor + 7.0) / 10.0).round() * 10.0);
        }
    }

    #[test]
    fn other_channels_injectable() {
        let t = trace();
        let plan = FaultPlan::new(2).with(ChannelFault::new(
            SensorChannel::DeliveredRate,
            FaultModel::Bias { offset: 1.5 },
            0,
            60,
        ));
        let out = plan.inject(&t);
        for (a, b) in t.records().iter().zip(out.records()) {
            assert_eq!(b.delivered_rate, a.delivered_rate + 1.5);
            assert_eq!(b.bg_sensor, a.bg_sensor);
        }
    }

    #[test]
    fn floor_clamps_finite_but_not_nan() {
        let rec = StepRecord {
            bg_true: 100.0,
            bg_sensor: 100.0,
            iob: 1.0,
            commanded_rate: 1.0,
            delivered_rate: 1.0,
            carbs: 0.0,
        };
        let clamped = SensorChannel::BgSensor.set(&rec, -50.0);
        assert_eq!(clamped.bg_sensor, 1.0);
        let dropped = SensorChannel::BgSensor.set(&rec, f64::NAN);
        assert!(dropped.bg_sensor.is_nan());
    }

    #[test]
    fn observer_matches_offline_injection() {
        // Re-run the same campaign with a FaultedObserver and check that the
        // observed (live-faulted) records equal the offline inject() of the
        // recorded trace, when keyed identically.
        let plan = bg_fault(FaultModel::StuckAt { duration: 8 });
        let clean = trace();
        let offline = plan.inject(&clean);

        let mut live: Vec<StepRecord> = Vec::new();
        {
            let mut sink = |_step: usize, rec: &StepRecord| live.push(*rec);
            let mut obs = FaultedObserver::new(
                plan.injector_for(clean.simulator, clean.patient_id, clean.run_id),
                &mut sink,
            );
            for (i, rec) in clean.records().iter().enumerate() {
                obs.on_step(i, rec);
            }
        }
        assert_eq!(live, offline.records());
    }

    #[test]
    fn pump_fault_active_window() {
        let f = PumpFault {
            kind: PumpFaultKind::Suspend,
            start_step: 10,
            duration_steps: 5,
        };
        assert!(!f.active_at(9));
        assert!(f.active_at(10));
        assert!(f.active_at(14));
        assert!(!f.active_at(15));
    }

    #[test]
    fn pump_fault_sample_within_bounds() {
        let mut rng = SmallRng::new(5);
        for _ in 0..200 {
            let f = PumpFault::sample(288, 1.0, &mut rng);
            assert!(
                f.start_step >= 43 && f.start_step <= 173,
                "start {}",
                f.start_step
            );
            assert!(f.duration_steps >= 12 && f.duration_steps <= 72);
            match f.kind {
                PumpFaultKind::Overdose { rate } => assert!(rate > 1.0),
                PumpFaultKind::Underdose { factor } => assert!(factor < 1.0),
                _ => {}
            }
        }
    }

    #[test]
    fn pump_fault_sample_covers_all_kinds() {
        let mut rng = SmallRng::new(6);
        let mut seen = [false; 4];
        for _ in 0..100 {
            match PumpFault::sample(288, 1.0, &mut rng).kind {
                PumpFaultKind::Overdose { .. } => seen[0] = true,
                PumpFaultKind::Underdose { .. } => seen[1] = true,
                PumpFaultKind::StuckRate => seen[2] = true,
                PumpFaultKind::Suspend => seen[3] = true,
            }
        }
        assert!(seen.iter().all(|&s| s), "kinds seen: {seen:?}");
    }

    #[test]
    fn stream_keys_differ_per_trace() {
        assert_ne!(
            trace_stream("glucosym", 0, 0),
            trace_stream("glucosym", 0, 1)
        );
        assert_ne!(
            trace_stream("glucosym", 0, 0),
            trace_stream("glucosym", 1, 0)
        );
        assert_ne!(
            trace_stream("glucosym", 0, 0),
            trace_stream("t1ds2013", 0, 0)
        );
    }
}
