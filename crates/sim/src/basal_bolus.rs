//! A Basal-Bolus protocol controller.
//!
//! The hospital-style regimen the paper pairs with the T1DS2013 simulator:
//! a constant basal rate, a meal bolus (`carbs / carb_ratio`) whenever a
//! meal is announced, and a correction bolus (`(BG − target)/ISF`) when the
//! reading is high — with a simple lockout so corrections are not stacked
//! every 5 minutes. Boluses are delivered by raising the pump rate for the
//! single step in which they are issued.

use crate::controller::{Controller, Observation};
use crate::patient::{TherapyProfile, STEP_MINUTES};

/// Basal-Bolus protocol controller.
#[derive(Debug, Clone, PartialEq)]
pub struct BasalBolusController {
    /// BG above which a correction bolus is issued (mg/dL).
    pub correction_threshold: f64,
    /// Minimum steps between correction boluses.
    pub correction_lockout_steps: usize,
    /// Largest single bolus the protocol will issue (U).
    pub max_bolus: f64,
    steps_since_correction: usize,
}

impl Default for BasalBolusController {
    fn default() -> Self {
        Self {
            correction_threshold: 180.0,
            correction_lockout_steps: 24, // 2 h
            max_bolus: 10.0,
            steps_since_correction: usize::MAX / 2,
        }
    }
}

impl BasalBolusController {
    /// Creates the controller with default protocol settings.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Controller for BasalBolusController {
    fn control(&mut self, obs: &Observation, therapy: &TherapyProfile) -> f64 {
        self.steps_since_correction = self.steps_since_correction.saturating_add(1);
        let mut bolus_u = 0.0;
        if obs.announced_carbs > 0.0 {
            bolus_u += obs.announced_carbs / therapy.carb_ratio;
        }
        if obs.bg > self.correction_threshold
            && self.steps_since_correction >= self.correction_lockout_steps
        {
            // Correct toward target, discounting insulin already on board.
            let correction = ((obs.bg - therapy.target_bg) / therapy.isf - obs.iob).max(0.0);
            if correction > 0.05 {
                bolus_u += correction;
                self.steps_since_correction = 0;
            }
        }
        bolus_u = bolus_u.min(self.max_bolus);
        // Hold basal; deliver any bolus within this one step as a rate.
        let bolus_rate = bolus_u * 60.0 / STEP_MINUTES; // U/h equivalent
        if obs.bg < 70.0 {
            // Protocol holds insulin on hypoglycemia.
            return 0.0;
        }
        therapy.basal_rate + bolus_rate
    }

    fn name(&self) -> &'static str {
        "basal-bolus"
    }

    fn reset(&mut self) {
        self.steps_since_correction = usize::MAX / 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn therapy() -> TherapyProfile {
        TherapyProfile {
            basal_rate: 1.0,
            isf: 50.0,
            carb_ratio: 10.0,
            target_bg: 120.0,
        }
    }

    fn obs(bg: f64, carbs: f64, iob: f64) -> Observation {
        Observation {
            bg,
            bg_trend: 0.0,
            iob,
            announced_carbs: carbs,
        }
    }

    #[test]
    fn steady_state_is_basal() {
        let mut c = BasalBolusController::new();
        assert_eq!(c.control(&obs(120.0, 0.0, 0.0), &therapy()), 1.0);
    }

    #[test]
    fn meal_triggers_carb_bolus() {
        let mut c = BasalBolusController::new();
        // 50 g / (10 g/U) = 5 U in one 5-min step = 60 U/h extra.
        let rate = c.control(&obs(120.0, 50.0, 0.0), &therapy());
        assert!((rate - 61.0).abs() < 1e-9, "rate {rate}");
    }

    #[test]
    fn high_bg_triggers_correction_once() {
        let mut c = BasalBolusController::new();
        let first = c.control(&obs(220.0, 0.0, 0.0), &therapy());
        assert!(first > 1.0, "no correction issued");
        // Immediately after, lockout suppresses another correction.
        let second = c.control(&obs(220.0, 0.0, 0.0), &therapy());
        assert_eq!(second, 1.0);
    }

    #[test]
    fn iob_discounts_correction() {
        let mut c = BasalBolusController::new();
        // (220-120)/50 = 2 U needed, 2 U on board → no correction.
        let rate = c.control(&obs(220.0, 0.0, 2.0), &therapy());
        assert_eq!(rate, 1.0);
    }

    #[test]
    fn hypo_suspends() {
        let mut c = BasalBolusController::new();
        assert_eq!(c.control(&obs(60.0, 0.0, 0.0), &therapy()), 0.0);
    }

    #[test]
    fn bolus_capped() {
        let mut c = BasalBolusController::new();
        let rate = c.control(&obs(120.0, 500.0, 0.0), &therapy());
        assert!((rate - (1.0 + 10.0 * 12.0)).abs() < 1e-9, "rate {rate}");
    }

    #[test]
    fn reset_clears_lockout() {
        let mut c = BasalBolusController::new();
        let _ = c.control(&obs(220.0, 0.0, 0.0), &therapy());
        c.reset();
        let rate = c.control(&obs(220.0, 0.0, 0.0), &therapy());
        assert!(rate > 1.0, "lockout survived reset");
    }
}
