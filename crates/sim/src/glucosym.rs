//! Glucosym-style patient: an extended Bergman minimal model.
//!
//! The original Glucosym simulator (an archived open-source JS service the
//! paper drives over HTTP) implements a compact insulin–glucose response
//! model per patient. We substitute the classic Bergman *minimal model*
//! extended with a two-compartment gut absorption stage — the same family
//! of compact single-glucose-pool models — with per-patient parameters
//! sampled from physiological ranges.
//!
//! State (per minute):
//!
//! ```text
//! G' = −p1·(G − Gb) − X·G + Ra/Vg          plasma glucose (mg/dL)
//! X' = −p2·X + p3·(I − Ib)                 remote insulin action (1/min)
//! I' = −n·(I − Ib_infusion) + u/Vi          plasma insulin (mU/L)
//! Q1' = −ka·Q1 + meal                      gut compartment 1 (mg)
//! Q2' = ka·(Q1 − Q2)                       gut compartment 2 (mg)
//! Ra  = f·ka·Q2                            appearance rate (mg/min)
//! ```
//!
//! `Ib` is defined as the plasma insulin produced by the patient's basal
//! pump rate, so the model is *constructed* to be at equilibrium `G = Gb`
//! under basal insulin and no meals.

use crate::patient::{IobTracker, PatientModel, TherapyProfile, STEP_MINUTES, SUBSTEPS};
use cpsmon_nn::rng::SmallRng;

/// Parameters of one Glucosym-style virtual patient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlucosymParams {
    /// Glucose effectiveness (1/min).
    pub p1: f64,
    /// Remote-insulin decay (1/min).
    pub p2: f64,
    /// Insulin action gain (L/mU·min²).
    pub p3: f64,
    /// Insulin clearance (1/min).
    pub n: f64,
    /// Basal (equilibrium) glucose (mg/dL).
    pub gb: f64,
    /// Insulin distribution volume (L).
    pub vi: f64,
    /// Glucose distribution volume (dL).
    pub vg: f64,
    /// Gut absorption rate (1/min).
    pub ka: f64,
    /// Carbohydrate bioavailability (fraction).
    pub f: f64,
    /// IOB action time constant (min).
    pub iob_tau: f64,
}

impl GlucosymParams {
    /// Samples the parameters of patient `id` deterministically from `seed`.
    ///
    /// Ranges are centred on the textbook Bergman values with ±20–30 %
    /// inter-patient spread.
    pub fn profile(id: usize, seed: u64) -> (Self, TherapyProfile) {
        let mut rng = SmallRng::new(seed ^ 0x676c_7563_6f73_796d).fork(id as u64);
        let params = Self {
            p1: rng.uniform_range(0.02, 0.035),
            p2: rng.uniform_range(0.02, 0.03),
            p3: rng.uniform_range(2.2e-5, 3.4e-5),
            n: rng.uniform_range(0.08, 0.10),
            gb: rng.uniform_range(110.0, 150.0),
            vi: rng.uniform_range(11.0, 13.0),
            vg: rng.uniform_range(100.0, 140.0),
            ka: rng.uniform_range(0.015, 0.025),
            f: 0.9,
            iob_tau: rng.uniform_range(100.0, 140.0),
        };
        let therapy = TherapyProfile::sample(&mut rng);
        (params, therapy)
    }
}

/// A Glucosym-style patient instance (see the module docs for the model).
#[derive(Debug, Clone, PartialEq)]
pub struct GlucosymPatient {
    params: GlucosymParams,
    therapy: TherapyProfile,
    /// Plasma insulin at the basal pump rate (mU/L).
    ib: f64,
    g: f64,
    x: f64,
    i: f64,
    q1: f64,
    q2: f64,
    iob: IobTracker,
}

impl GlucosymPatient {
    /// Creates a patient at basal equilibrium (`G = Gb`, no meals on board).
    pub fn new(params: GlucosymParams, therapy: TherapyProfile) -> Self {
        let basal_mu_per_min = therapy.basal_rate * 1000.0 / 60.0;
        let ib = basal_mu_per_min / (params.n * params.vi);
        Self {
            params,
            therapy,
            ib,
            g: params.gb,
            x: 0.0,
            i: ib,
            q1: 0.0,
            q2: 0.0,
            iob: IobTracker::new(params.iob_tau),
        }
    }

    /// Convenience: build patient `id` of the 20-profile cohort.
    pub fn from_profile(id: usize, seed: u64) -> Self {
        let (params, therapy) = GlucosymParams::profile(id, seed);
        Self::new(params, therapy)
    }

    /// The model parameters.
    pub fn params(&self) -> &GlucosymParams {
        &self.params
    }

    /// The dynamic state `(g, x, i, q1, q2)` — read by the cohort engine
    /// when packing a patient into structure-of-arrays buffers.
    pub(crate) fn state(&self) -> (f64, f64, f64, f64, f64) {
        (self.g, self.x, self.i, self.q1, self.q2)
    }

    /// Basal plasma insulin (mU/L), fixed at construction.
    pub(crate) fn ib(&self) -> f64 {
        self.ib
    }

    /// The internal IOB tracker (value + decay), for SoA packing.
    pub(crate) fn iob_tracker(&self) -> &IobTracker {
        &self.iob
    }

    fn derivs(&self, u_mu_per_min: f64) -> (f64, f64, f64, f64, f64) {
        let p = &self.params;
        let ra = p.f * p.ka * self.q2;
        let dg = -p.p1 * (self.g - p.gb) - self.x * self.g + ra / p.vg;
        let dx = -p.p2 * self.x + p.p3 * (self.i - self.ib);
        let di = -p.n * (self.i - self.ib)
            + (u_mu_per_min - self.therapy.basal_rate * 1000.0 / 60.0) / p.vi;
        let dq1 = -p.ka * self.q1;
        let dq2 = p.ka * (self.q1 - self.q2);
        (dg, dx, di, dq1, dq2)
    }
}

impl PatientModel for GlucosymPatient {
    fn bg(&self) -> f64 {
        self.g
    }

    fn iob(&self) -> f64 {
        self.iob.value()
    }

    fn step(&mut self, insulin_rate: f64, carbs_g: f64) {
        let rate = insulin_rate.max(0.0);
        let u_mu_per_min = rate * 1000.0 / 60.0;
        let delivered_per_min = rate / 60.0;
        // Meal lands in the first gut compartment at the start of the step.
        self.q1 += carbs_g * 1000.0;
        let dt = STEP_MINUTES / SUBSTEPS as f64;
        for _ in 0..SUBSTEPS {
            let (dg, dx, di, dq1, dq2) = self.derivs(u_mu_per_min);
            self.g = (self.g + dg * dt).max(10.0);
            self.x += dx * dt;
            self.i = (self.i + di * dt).max(0.0);
            self.q1 = (self.q1 + dq1 * dt).max(0.0);
            self.q2 = (self.q2 + dq2 * dt).max(0.0);
            self.iob.advance_minute(delivered_per_min * dt);
        }
    }

    fn therapy(&self) -> &TherapyProfile {
        &self.therapy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patient() -> GlucosymPatient {
        GlucosymPatient::from_profile(0, 42)
    }

    #[test]
    fn basal_holds_equilibrium() {
        let mut p = patient();
        let g0 = p.bg();
        let basal = p.therapy().basal_rate;
        for _ in 0..288 {
            p.step(basal, 0.0);
        }
        assert!((p.bg() - g0).abs() < 1.0, "drifted from {g0} to {}", p.bg());
    }

    #[test]
    fn meal_raises_glucose() {
        let mut p = patient();
        let basal = p.therapy().basal_rate;
        let g0 = p.bg();
        p.step(basal, 60.0);
        for _ in 0..12 {
            p.step(basal, 0.0);
        }
        assert!(
            p.bg() > g0 + 20.0,
            "meal only moved BG from {g0} to {}",
            p.bg()
        );
    }

    #[test]
    fn extra_insulin_lowers_glucose() {
        let mut a = patient();
        let mut b = patient();
        let basal = a.therapy().basal_rate;
        for _ in 0..36 {
            a.step(basal, 0.0);
            b.step(basal + 2.0, 0.0);
        }
        assert!(
            b.bg() < a.bg() - 20.0,
            "insulin had weak effect: {} vs {}",
            a.bg(),
            b.bg()
        );
    }

    #[test]
    fn suspension_raises_glucose() {
        let mut a = patient();
        let mut b = patient();
        let basal = a.therapy().basal_rate;
        for _ in 0..36 {
            a.step(basal, 0.0);
            b.step(0.0, 0.0);
        }
        assert!(
            b.bg() > a.bg() + 10.0,
            "suspension had weak effect: {} vs {}",
            a.bg(),
            b.bg()
        );
    }

    #[test]
    fn glucose_never_below_floor() {
        let mut p = patient();
        for _ in 0..288 {
            p.step(10.0, 0.0); // massive overdose
        }
        assert!(p.bg() >= 10.0);
    }

    #[test]
    fn iob_tracks_delivery() {
        let mut p = patient();
        assert_eq!(p.iob(), 0.0);
        p.step(2.0, 0.0);
        assert!(p.iob() > 0.1);
    }

    #[test]
    fn profiles_are_deterministic_and_distinct() {
        let a = GlucosymPatient::from_profile(3, 7);
        let b = GlucosymPatient::from_profile(3, 7);
        assert_eq!(a, b);
        let c = GlucosymPatient::from_profile(4, 7);
        assert_ne!(a.params(), c.params());
    }

    #[test]
    fn twenty_profiles_have_spread() {
        let gbs: Vec<f64> = (0..20)
            .map(|id| GlucosymPatient::from_profile(id, 1).params().gb)
            .collect();
        let min = gbs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = gbs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 10.0, "profiles too similar: {min}..{max}");
    }
}
