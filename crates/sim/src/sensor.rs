//! Continuous glucose monitor (CGM) model.

use cpsmon_nn::rng::SmallRng;

/// A sensor-side fault/attack corrupting CGM readings.
///
/// Complements the pump-side faults of [`crate::faults::PumpFault`]: the Medtronic
/// recalls the paper cites cover both malicious command injection and
/// sensor malfunction. Each variant is applied inside a step window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CgmFaultKind {
    /// Constant additive bias (mg/dL) — miscalibration.
    Bias {
        /// Offset added to every reading (mg/dL).
        offset: f64,
    },
    /// Linearly growing bias — compression/drift artifacts.
    Drift {
        /// Bias growth per step (mg/dL per 5 min).
        per_step: f64,
    },
    /// Sensor repeats its last pre-fault reading.
    StuckValue,
}

/// A CGM fault occurrence: what, when, and for how long.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgmFault {
    /// The corruption applied.
    pub kind: CgmFaultKind,
    /// First affected step.
    pub start_step: usize,
    /// Number of affected steps.
    pub duration_steps: usize,
}

impl CgmFault {
    /// Whether `step` falls inside the fault window.
    pub fn active_at(&self, step: usize) -> bool {
        step >= self.start_step && step < self.start_step + self.duration_steps
    }
}

/// A CGM producing noisy, slightly lagged glucose measurements.
///
/// Real CGMs sense interstitial glucose, which trails plasma glucose by a
/// few minutes and carries calibration noise. We model this as a
/// first-order lag plus i.i.d. Gaussian measurement noise — the same
/// structure the paper's "environment noise" assumption (§III) builds on.
/// An optional [`CgmFault`] corrupts readings inside its window.
#[derive(Debug, Clone)]
pub struct Cgm {
    noise_std: f64,
    lag: f64,
    state: Option<f64>,
    rng: SmallRng,
    fault: Option<CgmFault>,
    step: usize,
    stuck_value: Option<f64>,
}

impl Cgm {
    /// Creates a CGM with measurement noise `noise_std` (mg/dL) and a
    /// first-order lag coefficient `lag ∈ [0, 1)` (0 = no lag).
    ///
    /// # Panics
    ///
    /// Panics if `noise_std < 0` or `lag ∉ [0, 1)`.
    pub fn new(noise_std: f64, lag: f64, rng: SmallRng) -> Self {
        assert!(noise_std >= 0.0, "noise std must be non-negative");
        assert!((0.0..1.0).contains(&lag), "lag must be in [0,1)");
        Self {
            noise_std,
            lag,
            state: None,
            rng,
            fault: None,
            step: 0,
            stuck_value: None,
        }
    }

    /// Attaches a sensor fault to this CGM.
    pub fn with_fault(mut self, fault: CgmFault) -> Self {
        self.fault = Some(fault);
        self
    }

    /// A typical CGM: 2 mg/dL noise, mild lag.
    pub fn typical(rng: SmallRng) -> Self {
        Self::new(2.0, 0.3, rng)
    }

    /// A noiseless pass-through sensor (for controlled experiments).
    pub fn ideal(rng: SmallRng) -> Self {
        Self::new(0.0, 0.0, rng)
    }

    /// Reads the sensor given the true plasma glucose.
    pub fn measure(&mut self, true_bg: f64) -> f64 {
        let noise = self.rng.normal_with(0.0, self.noise_std);
        self.measure_with_noise(true_bg, noise)
    }

    /// The lag coefficient (cohort engine column extraction).
    pub(crate) fn lag(&self) -> f64 {
        self.lag
    }

    /// The current lag-filter state, if any reading has been taken.
    pub(crate) fn filter_state(&self) -> Option<f64> {
        self.state
    }

    /// The attached fault, if any.
    pub(crate) fn fault(&self) -> Option<CgmFault> {
        self.fault
    }

    /// How many readings this sensor has already produced.
    pub(crate) fn steps_taken(&self) -> usize {
        self.step
    }

    /// The latched reading, if the sensor is mid `StuckValue` fault.
    pub(crate) fn stuck_reading(&self) -> Option<f64> {
        self.stuck_value
    }

    /// Draws the next `n` noise samples this sensor would add to readings,
    /// consuming its RNG stream.
    ///
    /// The Gaussian draw depends only on the stream position — never on
    /// the measured value — so the cohort engine prerolls a horizon's
    /// worth per member and feeds them back through
    /// [`measure_with_noise`](Self::measure_with_noise), moving the
    /// Box-Muller transcendentals out of the hot loop while reproducing
    /// [`measure`](Self::measure) bit for bit.
    pub(crate) fn draw_noise(&mut self, n: usize) -> Vec<f64> {
        (0..n)
            .map(|_| self.rng.normal_with(0.0, self.noise_std))
            .collect()
    }

    /// [`measure`](Self::measure) with an externally supplied noise sample;
    /// `noise` must be the next sample of this sensor's own stream for the
    /// reading to match.
    pub(crate) fn measure_with_noise(&mut self, true_bg: f64, noise: f64) -> f64 {
        let filtered = match self.state {
            Some(prev) => self.lag * prev + (1.0 - self.lag) * true_bg,
            None => true_bg,
        };
        self.state = Some(filtered);
        let honest = (filtered + noise).max(1.0);
        let step = self.step;
        self.step += 1;
        let Some(fault) = self.fault else {
            return honest;
        };
        if !fault.active_at(step) {
            self.stuck_value = None;
            return honest;
        }
        match fault.kind {
            CgmFaultKind::Bias { offset } => (honest + offset).max(1.0),
            CgmFaultKind::Drift { per_step } => {
                (honest + per_step * (step - fault.start_step + 1) as f64).max(1.0)
            }
            CgmFaultKind::StuckValue => *self.stuck_value.get_or_insert(honest),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_sensor_is_identity() {
        let mut cgm = Cgm::ideal(SmallRng::new(1));
        assert_eq!(cgm.measure(123.0), 123.0);
        assert_eq!(cgm.measure(99.0), 99.0);
    }

    #[test]
    fn noise_has_requested_scale() {
        let mut cgm = Cgm::new(2.0, 0.0, SmallRng::new(2));
        let n = 20_000;
        let errs: Vec<f64> = (0..n).map(|_| cgm.measure(120.0) - 120.0).collect();
        let mean = errs.iter().sum::<f64>() / n as f64;
        let std = (errs.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / n as f64).sqrt();
        assert!(mean.abs() < 0.1, "bias {mean}");
        assert!((std - 2.0).abs() < 0.1, "std {std}");
    }

    #[test]
    fn lag_smooths_steps() {
        let mut cgm = Cgm::new(0.0, 0.5, SmallRng::new(3));
        cgm.measure(100.0);
        let after_jump = cgm.measure(200.0);
        assert!(after_jump < 200.0, "lagged reading should trail the jump");
        assert!(after_jump > 100.0);
    }

    #[test]
    fn readings_stay_positive() {
        let mut cgm = Cgm::new(50.0, 0.0, SmallRng::new(4));
        for _ in 0..100 {
            assert!(cgm.measure(5.0) >= 1.0);
        }
    }

    #[test]
    fn bias_fault_applies_in_window_only() {
        let fault = CgmFault {
            kind: CgmFaultKind::Bias { offset: 40.0 },
            start_step: 2,
            duration_steps: 2,
        };
        let mut cgm = Cgm::ideal(SmallRng::new(5)).with_fault(fault);
        assert_eq!(cgm.measure(100.0), 100.0); // step 0
        assert_eq!(cgm.measure(100.0), 100.0); // step 1
        assert_eq!(cgm.measure(100.0), 140.0); // step 2
        assert_eq!(cgm.measure(100.0), 140.0); // step 3
        assert_eq!(cgm.measure(100.0), 100.0); // step 4
    }

    #[test]
    fn drift_fault_grows_linearly() {
        let fault = CgmFault {
            kind: CgmFaultKind::Drift { per_step: 5.0 },
            start_step: 0,
            duration_steps: 3,
        };
        let mut cgm = Cgm::ideal(SmallRng::new(6)).with_fault(fault);
        assert_eq!(cgm.measure(100.0), 105.0);
        assert_eq!(cgm.measure(100.0), 110.0);
        assert_eq!(cgm.measure(100.0), 115.0);
        assert_eq!(cgm.measure(100.0), 100.0);
    }

    #[test]
    fn stuck_sensor_repeats_first_faulty_reading() {
        let fault = CgmFault {
            kind: CgmFaultKind::StuckValue,
            start_step: 1,
            duration_steps: 3,
        };
        let mut cgm = Cgm::ideal(SmallRng::new(7)).with_fault(fault);
        assert_eq!(cgm.measure(100.0), 100.0);
        assert_eq!(cgm.measure(150.0), 150.0); // latched
        assert_eq!(cgm.measure(200.0), 150.0);
        assert_eq!(cgm.measure(250.0), 150.0);
        assert_eq!(cgm.measure(300.0), 300.0); // released
    }

    #[test]
    fn negative_bias_clamped_at_floor() {
        let fault = CgmFault {
            kind: CgmFaultKind::Bias { offset: -500.0 },
            start_step: 0,
            duration_steps: 5,
        };
        let mut cgm = Cgm::ideal(SmallRng::new(8)).with_fault(fault);
        assert_eq!(cgm.measure(100.0), 1.0);
    }
}
