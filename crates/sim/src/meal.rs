//! Seeded meal schedules for simulation scenarios.

use crate::patient::STEP_MINUTES;
use cpsmon_nn::rng::SmallRng;

/// One meal event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Meal {
    /// Step index at which the meal is ingested.
    pub step: usize,
    /// Carbohydrate content (grams).
    pub carbs_g: f64,
}

/// A day-structured random meal plan.
///
/// Generates breakfast/lunch/dinner (plus an optional snack) per simulated
/// day with jittered times and carb amounts, mimicking the scenario scripts
/// used by APS simulation studies.
#[derive(Debug, Clone, PartialEq)]
pub struct MealSchedule {
    meals: Vec<Meal>,
    steps: usize,
}

impl MealSchedule {
    /// Builds a schedule covering `steps` simulation steps.
    pub fn generate(steps: usize, rng: &mut SmallRng) -> Self {
        let steps_per_day = (24.0 * 60.0 / STEP_MINUTES) as usize; // 288
        let days = steps.div_ceil(steps_per_day).max(1);
        let mut meals = Vec::new();
        for day in 0..days {
            let base = day * steps_per_day;
            // (hour, carb-range) triples for the three main meals.
            for (hour, lo, hi) in [(7.5, 30.0, 60.0), (12.5, 40.0, 80.0), (18.5, 45.0, 90.0)] {
                let jitter = rng.uniform_range(-0.75, 0.75);
                let step = base + (((hour + jitter) * 60.0 / STEP_MINUTES) as usize);
                if step < steps {
                    meals.push(Meal {
                        step,
                        carbs_g: rng.uniform_range(lo, hi),
                    });
                }
            }
            // Occasional snack.
            if rng.bernoulli(0.4) {
                let hour = rng.uniform_range(15.0, 16.5);
                let step = base + ((hour * 60.0 / STEP_MINUTES) as usize);
                if step < steps {
                    meals.push(Meal {
                        step,
                        carbs_g: rng.uniform_range(10.0, 25.0),
                    });
                }
            }
        }
        meals.sort_by_key(|m| m.step);
        Self { meals, steps }
    }

    /// An empty schedule (fasting scenario).
    pub fn fasting(steps: usize) -> Self {
        Self {
            meals: Vec::new(),
            steps,
        }
    }

    /// Carbohydrates ingested at `step` (grams; 0 for most steps).
    pub fn carbs_at(&self, step: usize) -> f64 {
        self.meals
            .iter()
            .filter(|m| m.step == step)
            .map(|m| m.carbs_g)
            .sum()
    }

    /// All meals in step order.
    pub fn meals(&self) -> &[Meal] {
        &self.meals
    }

    /// Scenario length in steps.
    pub fn steps(&self) -> usize {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_day_has_three_or_four_meals() {
        let mut rng = SmallRng::new(1);
        for _ in 0..20 {
            let s = MealSchedule::generate(288, &mut rng);
            assert!(
                (3..=4).contains(&s.meals().len()),
                "{} meals",
                s.meals().len()
            );
        }
    }

    #[test]
    fn meals_are_within_horizon() {
        let mut rng = SmallRng::new(2);
        let s = MealSchedule::generate(100, &mut rng);
        for m in s.meals() {
            assert!(m.step < 100);
        }
    }

    #[test]
    fn carbs_at_sums_coincident_meals() {
        let s = MealSchedule {
            meals: vec![
                Meal {
                    step: 5,
                    carbs_g: 20.0,
                },
                Meal {
                    step: 5,
                    carbs_g: 10.0,
                },
            ],
            steps: 10,
        };
        assert_eq!(s.carbs_at(5), 30.0);
        assert_eq!(s.carbs_at(6), 0.0);
    }

    #[test]
    fn fasting_has_no_carbs() {
        let s = MealSchedule::fasting(50);
        assert!((0..50).all(|t| s.carbs_at(t) == 0.0));
    }

    #[test]
    fn deterministic_given_rng_state() {
        let a = MealSchedule::generate(288, &mut SmallRng::new(9));
        let b = MealSchedule::generate(288, &mut SmallRng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn multi_day_schedules_cover_every_day() {
        let mut rng = SmallRng::new(3);
        let s = MealSchedule::generate(288 * 3, &mut rng);
        for day in 0..3 {
            let in_day = s
                .meals()
                .iter()
                .filter(|m| m.step >= day * 288 && m.step < (day + 1) * 288)
                .count();
            assert!(in_day >= 3, "day {day} has only {in_day} meals");
        }
    }
}
