//! T1DS2013-style patient: a reduced UVA-Padova (Dalla Man) model.
//!
//! The UVA/Padova Type 1 Diabetes Simulator is licensed MATLAB software; we
//! substitute a from-scratch implementation of the published Dalla Man
//! model family it is built on (Dalla Man et al., *IEEE TBME* 2007; 2014
//! new-features update), reduced to the compartments that matter for
//! closed-loop control:
//!
//! - two-compartment plasma/tissue glucose kinetics with endogenous
//!   glucose production, insulin-independent utilization, renal excretion,
//!   and Michaelis–Menten insulin-dependent utilization;
//! - two-compartment subcutaneous insulin absorption feeding
//!   liver/plasma insulin kinetics, remote insulin action `X`, and the
//!   delayed insulin signal `Id` attenuating EGP;
//! - three-compartment oral glucose absorption (stomach solid/liquid,
//!   gut).
//!
//! Population parameters follow the published adult averages with
//! per-patient spread, except that the split between insulin-independent
//! utilization (`Vm0`) and insulin-driven effects (`Vmx`, `kp3`) is
//! re-tuned: dropping the compartments of the full model makes the
//! published averages behave like a non-diabetic (glucose balances with
//! almost no insulin), so we shift utilization onto the insulin-dependent
//! terms until the reduced model exhibits type-1 behaviour — insulin
//! suspension drifts toward severe hyperglycemia, overdose causes
//! hypoglycemia. The basal rate of each profile is then *calibrated* by
//! bisection so the closed-loop experiments start from a clinically
//! sensible steady state (see [`T1dsPatient::calibrated`]).
//!
//! The structural difference from [`crate::glucosym`] (two glucose pools,
//! subcutaneous insulin delays, slower meal path) yields a visibly
//! different sensor-data distribution — the property the paper attributes
//! its per-simulator result differences to.

use crate::patient::{IobTracker, PatientModel, TherapyProfile, STEP_MINUTES, SUBSTEPS};
use cpsmon_nn::rng::SmallRng;

/// Parameters of one T1DS-style virtual patient (units follow Dalla Man:
/// glucose masses in mg/kg, insulin in pmol/kg, rates per minute).
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // field names follow the published model symbols
pub struct T1dsParams {
    pub bw: f64,
    pub vg: f64,
    pub k1: f64,
    pub k2: f64,
    pub kp1: f64,
    pub kp2: f64,
    pub kp3: f64,
    pub ki: f64,
    pub fsnc: f64,
    pub vm0: f64,
    pub vmx: f64,
    pub km0: f64,
    pub p2u: f64,
    pub m1: f64,
    pub m2: f64,
    pub m3: f64,
    pub m4: f64,
    pub kd: f64,
    pub ka1: f64,
    pub ka2: f64,
    pub vi: f64,
    pub ke1: f64,
    pub ke2: f64,
    pub kgri: f64,
    pub kempt: f64,
    pub kabs: f64,
    pub f: f64,
    pub iob_tau: f64,
    /// Target steady-state glucose used to calibrate the basal rate.
    pub gb: f64,
}

impl T1dsParams {
    /// Samples patient `id` around the published adult-average parameters.
    pub fn profile(id: usize, seed: u64) -> (Self, TherapyProfile) {
        let mut rng = SmallRng::new(seed ^ 0x7431_6473_3230_3133).fork(id as u64);
        fn v(rng: &mut SmallRng, center: f64, spread: f64) -> f64 {
            center * rng.uniform_range(1.0 - spread, 1.0 + spread)
        }
        let bw = rng.uniform_range(55.0, 95.0);
        let params = Self {
            bw,
            vg: v(&mut rng, 1.88, 0.10),
            k1: v(&mut rng, 0.065, 0.15),
            k2: v(&mut rng, 0.079, 0.15),
            kp1: v(&mut rng, 2.90, 0.10),
            kp2: v(&mut rng, 0.0021, 0.15),
            kp3: v(&mut rng, 0.012, 0.15),
            ki: v(&mut rng, 0.0079, 0.15),
            fsnc: 1.0,
            vm0: v(&mut rng, 0.80, 0.15),
            vmx: v(&mut rng, 0.060, 0.25),
            km0: v(&mut rng, 225.59, 0.10),
            p2u: v(&mut rng, 0.0331, 0.15),
            m1: v(&mut rng, 0.190, 0.10),
            m2: v(&mut rng, 0.484, 0.10),
            m3: v(&mut rng, 0.277, 0.10),
            m4: v(&mut rng, 0.194, 0.10),
            kd: v(&mut rng, 0.0164, 0.15),
            ka1: v(&mut rng, 0.0018, 0.15),
            ka2: v(&mut rng, 0.0182, 0.15),
            vi: v(&mut rng, 0.05, 0.10),
            ke1: 0.0005,
            ke2: 339.0,
            kgri: v(&mut rng, 0.0558, 0.15),
            kempt: v(&mut rng, 0.035, 0.20),
            kabs: v(&mut rng, 0.057, 0.20),
            f: 0.90,
            iob_tau: rng.uniform_range(100.0, 140.0),
            gb: rng.uniform_range(110.0, 145.0),
        };
        let therapy = TherapyProfile::sample(&mut rng);
        (params, therapy)
    }
}

/// State of a T1DS-style patient.
#[derive(Debug, Clone, PartialEq)]
pub struct T1dsPatient {
    params: T1dsParams,
    therapy: TherapyProfile,
    /// Basal plasma insulin concentration (pmol/L), fixed at calibration.
    ib: f64,
    gp: f64,
    gt: f64,
    ip: f64,
    il: f64,
    isc1: f64,
    isc2: f64,
    i1: f64,
    id: f64,
    x: f64,
    qsto1: f64,
    qsto2: f64,
    qgut: f64,
    iob: IobTracker,
}

impl T1dsPatient {
    /// Creates a patient with the given basal rate already reflected in the
    /// insulin-subsystem steady state (but glucose *not* yet equilibrated —
    /// use [`calibrated`](Self::calibrated) or
    /// [`PatientModel::warm_up`]).
    pub fn new(params: T1dsParams, therapy: TherapyProfile) -> Self {
        // Subcutaneous + plasma insulin steady state under the basal rate.
        let iir = therapy.basal_rate * 6000.0 / 60.0 / params.bw; // pmol/kg/min
        let isc1 = iir / (params.kd + params.ka1);
        let isc2 = params.kd * isc1 / params.ka2;
        let rai = params.ka1 * isc1 + params.ka2 * isc2;
        let il_per_ip = params.m2 / (params.m1 + params.m3);
        let ip = rai / (params.m2 + params.m4 - params.m1 * il_per_ip);
        let il = il_per_ip * ip;
        let ib = ip / params.vi;
        let gp = params.gb * params.vg;
        Self {
            params,
            therapy,
            ib,
            gp,
            gt: gp * 0.75,
            ip,
            il,
            isc1,
            isc2,
            i1: ib,
            id: ib,
            x: 0.0,
            qsto1: 0.0,
            qsto2: 0.0,
            qgut: 0.0,
            iob: IobTracker::new(params.iob_tau),
        }
    }

    /// Builds patient `id` of the cohort with its basal rate calibrated by
    /// bisection so that the open-loop steady state lands near the
    /// profile's `gb`, then warms the state up to that equilibrium.
    pub fn calibrated(id: usize, seed: u64) -> Self {
        let (params, therapy) = T1dsParams::profile(id, seed);
        Self::calibrated_from(params, therapy)
    }

    /// [`calibrated`](Self::calibrated) for explicit parameters: bisects
    /// the basal rate (`therapy.basal_rate` is overwritten) until the
    /// 24-hour open-loop steady state lands near `params.gb`, then warms
    /// up to that equilibrium. Used by the latin-hypercube cohort sampler,
    /// whose parameters do not come from [`T1dsParams::profile`].
    pub fn calibrated_from(params: T1dsParams, mut therapy: TherapyProfile) -> Self {
        let (mut lo, mut hi) = (0.1, 4.0);
        for _ in 0..14 {
            let mid = 0.5 * (lo + hi);
            therapy.basal_rate = mid;
            let mut p = Self::new(params, therapy);
            p.warm_up(288); // 24 h settle
            if p.bg() > params.gb {
                lo = mid; // need more insulin
            } else {
                hi = mid;
            }
        }
        therapy.basal_rate = 0.5 * (lo + hi);
        let mut p = Self::new(params, therapy);
        p.warm_up(288);
        p
    }

    /// The model parameters.
    pub fn params(&self) -> &T1dsParams {
        &self.params
    }

    /// The dynamic state in packing order
    /// `[gp, gt, ip, il, isc1, isc2, i1, id, x, qsto1, qsto2, qgut]` —
    /// read by the cohort engine when packing a patient into
    /// structure-of-arrays buffers.
    pub(crate) fn state(&self) -> [f64; 12] {
        [
            self.gp, self.gt, self.ip, self.il, self.isc1, self.isc2, self.i1, self.id, self.x,
            self.qsto1, self.qsto2, self.qgut,
        ]
    }

    /// Basal plasma insulin concentration (pmol/L), fixed at calibration.
    pub(crate) fn ib(&self) -> f64 {
        self.ib
    }

    /// The internal IOB tracker (value + decay), for SoA packing.
    pub(crate) fn iob_tracker(&self) -> &IobTracker {
        &self.iob
    }

    fn advance_minute(&mut self, iir: f64, delivered_u: f64) {
        let p = &self.params;
        // Oral absorption.
        let dqsto1 = -p.kgri * self.qsto1;
        let dqsto2 = p.kgri * self.qsto1 - p.kempt * self.qsto2;
        let dqgut = p.kempt * self.qsto2 - p.kabs * self.qgut;
        let ra = p.f * p.kabs * self.qgut / p.bw;
        // Insulin subsystem.
        let disc1 = -(p.kd + p.ka1) * self.isc1 + iir;
        let disc2 = p.kd * self.isc1 - p.ka2 * self.isc2;
        let rai = p.ka1 * self.isc1 + p.ka2 * self.isc2;
        let dil = -(p.m1 + p.m3) * self.il + p.m2 * self.ip;
        let dip = -(p.m2 + p.m4) * self.ip + p.m1 * self.il + rai;
        let i_conc = self.ip / p.vi;
        let di1 = -p.ki * (self.i1 - i_conc);
        let did = -p.ki * (self.id - self.i1);
        let dx = -p.p2u * self.x + p.p2u * (i_conc - self.ib);
        // Glucose subsystem.
        let egp = (p.kp1 - p.kp2 * self.gp - p.kp3 * self.id).max(0.0);
        let uii = p.fsnc;
        let e = if self.gp > p.ke2 {
            p.ke1 * (self.gp - p.ke2)
        } else {
            0.0
        };
        let vm = (p.vm0 + p.vmx * self.x).max(0.0);
        let uid = vm * self.gt / (p.km0 + self.gt);
        let dgp = egp + ra - uii - e - p.k1 * self.gp + p.k2 * self.gt;
        let dgt = -uid + p.k1 * self.gp - p.k2 * self.gt;
        // Euler step (dt = 1 min).
        self.qsto1 = (self.qsto1 + dqsto1).max(0.0);
        self.qsto2 = (self.qsto2 + dqsto2).max(0.0);
        self.qgut = (self.qgut + dqgut).max(0.0);
        self.isc1 = (self.isc1 + disc1).max(0.0);
        self.isc2 = (self.isc2 + disc2).max(0.0);
        self.il = (self.il + dil).max(0.0);
        self.ip = (self.ip + dip).max(0.0);
        self.i1 += di1;
        self.id += did;
        self.x += dx;
        // Floor plasma glucose at ~15 mg/dL (counter-regulation keeps real
        // patients above this even in severe hypoglycemia).
        self.gp = (self.gp + dgp).max(15.0 * p.vg);
        self.gt = (self.gt + dgt).max(1.0);
        self.iob.advance_minute(delivered_u);
    }
}

impl PatientModel for T1dsPatient {
    fn bg(&self) -> f64 {
        self.gp / self.params.vg
    }

    fn iob(&self) -> f64 {
        self.iob.value()
    }

    fn step(&mut self, insulin_rate: f64, carbs_g: f64) {
        let rate = insulin_rate.max(0.0);
        let iir = rate * 6000.0 / 60.0 / self.params.bw; // pmol/kg/min
        let delivered_per_min = rate / 60.0;
        self.qsto1 += carbs_g * 1000.0; // stomach compartments hold absolute mg
        debug_assert_eq!(SUBSTEPS as f64 * 1.0, STEP_MINUTES);
        for _ in 0..SUBSTEPS {
            self.advance_minute(iir, delivered_per_min);
        }
    }

    fn therapy(&self) -> &TherapyProfile {
        &self.therapy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patient() -> T1dsPatient {
        T1dsPatient::calibrated(0, 42)
    }

    #[test]
    fn calibrated_patient_starts_near_target() {
        let p = patient();
        let gb = p.params().gb;
        assert!(
            (p.bg() - gb).abs() < 10.0,
            "calibration missed: bg {} vs gb {gb}",
            p.bg()
        );
    }

    #[test]
    fn basal_holds_equilibrium() {
        let mut p = patient();
        let g0 = p.bg();
        let basal = p.therapy().basal_rate;
        for _ in 0..288 {
            p.step(basal, 0.0);
        }
        assert!((p.bg() - g0).abs() < 5.0, "drifted from {g0} to {}", p.bg());
    }

    #[test]
    fn meal_raises_glucose() {
        let mut p = patient();
        let basal = p.therapy().basal_rate;
        let g0 = p.bg();
        p.step(basal, 60.0);
        let mut peak = g0;
        for _ in 0..36 {
            p.step(basal, 0.0);
            peak = peak.max(p.bg());
        }
        assert!(
            peak > g0 + 25.0,
            "meal only moved BG from {g0} to peak {peak}"
        );
    }

    #[test]
    fn extra_insulin_lowers_glucose() {
        let mut a = patient();
        let mut b = patient();
        let basal = a.therapy().basal_rate;
        for _ in 0..48 {
            a.step(basal, 0.0);
            b.step(basal + 2.0, 0.0);
        }
        assert!(
            b.bg() < a.bg() - 15.0,
            "insulin had weak effect: {} vs {}",
            a.bg(),
            b.bg()
        );
    }

    #[test]
    fn suspension_raises_glucose() {
        let mut a = patient();
        let mut b = patient();
        let basal = a.therapy().basal_rate;
        for _ in 0..48 {
            a.step(basal, 0.0);
            b.step(0.0, 0.0);
        }
        assert!(
            b.bg() > a.bg() + 10.0,
            "suspension had weak effect: {} vs {}",
            a.bg(),
            b.bg()
        );
    }

    #[test]
    fn profiles_are_deterministic_and_distinct() {
        let (pa, _) = T1dsParams::profile(2, 9);
        let (pb, _) = T1dsParams::profile(2, 9);
        assert_eq!(pa, pb);
        let (pc, _) = T1dsParams::profile(3, 9);
        assert_ne!(pa, pc);
    }

    #[test]
    fn glucose_floor_respected_under_overdose() {
        let mut p = patient();
        for _ in 0..288 {
            p.step(15.0, 0.0);
        }
        assert!(p.bg() >= 10.0);
        assert!(
            p.bg() < 70.0,
            "overdose should produce hypoglycemia, bg={}",
            p.bg()
        );
    }

    #[test]
    fn distribution_differs_from_glucosym() {
        // Same nominal scenario, different model family ⇒ different meal
        // response shape. Peak times should differ noticeably.
        let mut t1 = patient();
        let mut gl = crate::glucosym::GlucosymPatient::from_profile(0, 42);
        let (bt1, bgl) = (t1.therapy().basal_rate, gl.therapy().basal_rate);
        t1.step(bt1, 50.0);
        gl.step(bgl, 50.0);
        let mut peak_t1 = (0, 0.0f64);
        let mut peak_gl = (0, 0.0f64);
        for s in 1..48 {
            t1.step(bt1, 0.0);
            gl.step(bgl, 0.0);
            if t1.bg() > peak_t1.1 {
                peak_t1 = (s, t1.bg());
            }
            if gl.bg() > peak_gl.1 {
                peak_gl = (s, gl.bg());
            }
        }
        assert_ne!(peak_t1.0, peak_gl.0, "identical peak step is suspicious");
    }
}
