//! An OpenAPS-style temp-basal controller.
//!
//! Follows the oref0 reference design in spirit: every 5 minutes it
//! projects an *eventual BG* from the current reading, the short-term
//! trend, and the BG drop the insulin-on-board will still cause
//! (`iob · ISF`), then sets a temporary basal rate that corrects the
//! difference to target over the correction horizon. Safety clamps mirror
//! oref0's: suspend on projected lows, cap at a multiple of basal.

use crate::controller::{Controller, Observation};
use crate::patient::{TherapyProfile, STEP_MINUTES};

/// OpenAPS-like temp-basal controller.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenApsController {
    /// Trend projection horizon (minutes).
    pub trend_horizon_min: f64,
    /// Correction horizon over which a BG error is neutralized (minutes).
    pub correction_horizon_min: f64,
    /// Maximum temp basal as a multiple of the profile basal.
    pub max_basal_mult: f64,
    /// Suspend threshold: projected BG below this sets a zero temp basal.
    pub suspend_below: f64,
}

impl Default for OpenApsController {
    fn default() -> Self {
        Self {
            trend_horizon_min: 30.0,
            correction_horizon_min: 120.0,
            max_basal_mult: 4.0,
            suspend_below: 80.0,
        }
    }
}

impl OpenApsController {
    /// Creates the controller with default oref0-like settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// The eventual-BG projection driving the dose decision.
    pub fn eventual_bg(&self, obs: &Observation, therapy: &TherapyProfile) -> f64 {
        let trend_per_min = obs.bg_trend / STEP_MINUTES;
        obs.bg + trend_per_min * self.trend_horizon_min - obs.iob * therapy.isf
    }
}

impl Controller for OpenApsController {
    fn control(&mut self, obs: &Observation, therapy: &TherapyProfile) -> f64 {
        let eventual = self.eventual_bg(obs, therapy);
        if eventual < self.suspend_below || obs.bg < 70.0 {
            return 0.0;
        }
        // Units needed to correct the eventual error, spread over the
        // correction horizon, on top of basal.
        let error = eventual - therapy.target_bg;
        let insulin_needed = error / therapy.isf; // U
        let correction_rate = insulin_needed / (self.correction_horizon_min / 60.0); // U/h
        (therapy.basal_rate + correction_rate).clamp(0.0, therapy.basal_rate * self.max_basal_mult)
    }

    fn name(&self) -> &'static str {
        "openaps"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn therapy() -> TherapyProfile {
        TherapyProfile {
            basal_rate: 1.0,
            isf: 50.0,
            carb_ratio: 10.0,
            target_bg: 120.0,
        }
    }

    fn obs(bg: f64, trend: f64, iob: f64) -> Observation {
        Observation {
            bg,
            bg_trend: trend,
            iob,
            announced_carbs: 0.0,
        }
    }

    #[test]
    fn at_target_commands_basal() {
        let mut c = OpenApsController::new();
        let rate = c.control(&obs(120.0, 0.0, 0.0), &therapy());
        assert!((rate - 1.0).abs() < 1e-9, "rate {rate}");
    }

    #[test]
    fn high_bg_raises_rate() {
        let mut c = OpenApsController::new();
        let rate = c.control(&obs(220.0, 0.0, 0.0), &therapy());
        assert!(rate > 1.5, "rate {rate}");
    }

    #[test]
    fn rate_capped_at_max_mult() {
        let mut c = OpenApsController::new();
        let rate = c.control(&obs(500.0, 10.0, 0.0), &therapy());
        assert_eq!(rate, 4.0);
    }

    #[test]
    fn projected_low_suspends() {
        let mut c = OpenApsController::new();
        // Falling fast with IOB: eventual = 90 - 4/5*30 - 1*50 < 80.
        let rate = c.control(&obs(90.0, -4.0, 1.0), &therapy());
        assert_eq!(rate, 0.0);
    }

    #[test]
    fn actual_low_suspends_regardless_of_trend() {
        let mut c = OpenApsController::new();
        let rate = c.control(&obs(65.0, 5.0, 0.0), &therapy());
        assert_eq!(rate, 0.0);
    }

    #[test]
    fn iob_reduces_dosing() {
        let mut c = OpenApsController::new();
        let no_iob = c.control(&obs(200.0, 0.0, 0.0), &therapy());
        let with_iob = c.control(&obs(200.0, 0.0, 1.0), &therapy());
        assert!(with_iob < no_iob, "{with_iob} !< {no_iob}");
    }
}
