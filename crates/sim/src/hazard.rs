//! Hazard detection and hazard-prediction labeling (Eq. 1 of the paper).
//!
//! A sample at time `t` is labeled *unsafe* iff a hazard occurs within the
//! next `T` steps of its own trace:
//!
//! ```text
//! y_t = p(∃ t' ∈ [t, t+T] : x_{t'} ∈ X_h | f(X_t), f(U_t))
//! ```
//!
//! Hazards are the clinical events of Table I's footnote: severe
//! hypoglycemia (H1) and severe hyperglycemia (H2), detected on the
//! *ground-truth* glucose.

use crate::trace::SimTrace;

/// Hazard thresholds and the prediction horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HazardConfig {
    /// Hypoglycemia threshold (mg/dL); BG below this is hazard H1.
    pub hypo: f64,
    /// Hyperglycemia threshold (mg/dL); BG above this is hazard H2.
    pub hyper: f64,
    /// Prediction horizon `T` in steps (paper-style: 60 min = 12 steps).
    pub horizon_steps: usize,
}

impl Default for HazardConfig {
    fn default() -> Self {
        Self {
            hypo: 70.0,
            hyper: 180.0,
            horizon_steps: 12,
        }
    }
}

/// A contiguous stretch of hazardous steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HazardEpisode {
    /// First hazardous step.
    pub start: usize,
    /// One past the last hazardous step.
    pub end: usize,
    /// `true` for hypoglycemia (H1), `false` for hyperglycemia (H2).
    pub hypo: bool,
}

impl HazardConfig {
    /// Whether a single BG value is hazardous.
    pub fn is_hazard(&self, bg_true: f64) -> bool {
        bg_true < self.hypo || bg_true > self.hyper
    }

    /// Per-step hazard flags for a trace (on ground-truth BG).
    pub fn hazard_flags(&self, trace: &SimTrace) -> Vec<bool> {
        trace
            .records()
            .iter()
            .map(|r| self.is_hazard(r.bg_true))
            .collect()
    }

    /// Eq. 1 labels: `labels[t] = 1` iff any hazard occurs in `[t, t+T]`.
    pub fn labels(&self, trace: &SimTrace) -> Vec<usize> {
        let flags = self.hazard_flags(trace);
        let n = flags.len();
        let mut labels = vec![0usize; n];
        // Sweep backwards keeping the distance to the next hazard.
        let mut next_hazard: Option<usize> = None;
        for t in (0..n).rev() {
            if flags[t] {
                next_hazard = Some(t);
            }
            if let Some(h) = next_hazard {
                if h - t <= self.horizon_steps {
                    labels[t] = 1;
                }
            }
        }
        labels
    }

    /// Groups hazardous steps into episodes.
    pub fn episodes(&self, trace: &SimTrace) -> Vec<HazardEpisode> {
        let mut episodes = Vec::new();
        let mut current: Option<HazardEpisode> = None;
        for (t, r) in trace.records().iter().enumerate() {
            let hypo = r.bg_true < self.hypo;
            let hyper = r.bg_true > self.hyper;
            if hypo || hyper {
                match current {
                    Some(ref mut e) if e.hypo == hypo => e.end = t + 1,
                    _ => {
                        if let Some(e) = current.take() {
                            episodes.push(e);
                        }
                        current = Some(HazardEpisode {
                            start: t,
                            end: t + 1,
                            hypo,
                        });
                    }
                }
            } else if let Some(e) = current.take() {
                episodes.push(e);
            }
        }
        if let Some(e) = current {
            episodes.push(e);
        }
        episodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::StepRecord;

    fn trace_from_bg(bgs: &[f64]) -> SimTrace {
        let records = bgs
            .iter()
            .map(|&bg| StepRecord {
                bg_true: bg,
                bg_sensor: bg,
                iob: 0.0,
                commanded_rate: 1.0,
                delivered_rate: 1.0,
                carbs: 0.0,
            })
            .collect();
        SimTrace::new("glucosym", "openaps", 0, 0, None, records)
    }

    #[test]
    fn is_hazard_thresholds() {
        let h = HazardConfig::default();
        assert!(h.is_hazard(69.9));
        assert!(!h.is_hazard(70.0));
        assert!(!h.is_hazard(180.0));
        assert!(h.is_hazard(180.1));
    }

    #[test]
    fn labels_cover_horizon_before_hazard() {
        let h = HazardConfig {
            hypo: 70.0,
            hyper: 300.0,
            horizon_steps: 2,
        };
        let t = trace_from_bg(&[100.0, 100.0, 100.0, 60.0, 100.0]);
        assert_eq!(h.labels(&t), vec![0, 1, 1, 1, 0]);
    }

    #[test]
    fn labels_empty_when_no_hazard() {
        let h = HazardConfig::default();
        let t = trace_from_bg(&[100.0; 20]);
        assert_eq!(h.labels(&t), vec![0; 20]);
    }

    #[test]
    fn labels_through_episode() {
        let h = HazardConfig {
            hypo: 70.0,
            hyper: 300.0,
            horizon_steps: 1,
        };
        let t = trace_from_bg(&[100.0, 60.0, 60.0, 100.0, 100.0]);
        // t=0: hazard at 1 within horizon; t=1,2 hazardous themselves;
        // t=3,4: no hazard ahead.
        assert_eq!(h.labels(&t), vec![1, 1, 1, 0, 0]);
    }

    #[test]
    fn episodes_group_and_split_by_kind() {
        let h = HazardConfig::default();
        let t = trace_from_bg(&[60.0, 60.0, 100.0, 310.0, 310.0, 60.0]);
        let eps = h.episodes(&t);
        assert_eq!(eps.len(), 3);
        assert_eq!(
            eps[0],
            HazardEpisode {
                start: 0,
                end: 2,
                hypo: true
            }
        );
        assert_eq!(
            eps[1],
            HazardEpisode {
                start: 3,
                end: 5,
                hypo: false
            }
        );
        assert_eq!(
            eps[2],
            HazardEpisode {
                start: 5,
                end: 6,
                hypo: true
            }
        );
    }

    #[test]
    fn horizon_zero_labels_only_hazard_steps() {
        let h = HazardConfig {
            hypo: 70.0,
            hyper: 300.0,
            horizon_steps: 0,
        };
        let t = trace_from_bg(&[100.0, 60.0, 100.0]);
        assert_eq!(h.labels(&t), vec![0, 1, 0]);
    }
}
