//! The patient-model abstraction and per-patient therapy settings.

use cpsmon_nn::rng::SmallRng;

/// Minutes per simulation step (the paper's sampling period).
pub const STEP_MINUTES: f64 = 5.0;

/// Internal ODE sub-steps per simulation step (1-minute Euler grid).
pub const SUBSTEPS: usize = 5;

/// A virtual diabetic patient: a glucose–insulin dynamic model advanced in
/// 5-minute steps under insulin infusion and carbohydrate intake.
///
/// Implementations must be deterministic: identical construction and input
/// sequences produce identical trajectories.
pub trait PatientModel {
    /// Current plasma blood glucose (mg/dL) — the ground-truth value used
    /// for hazard detection (the CGM adds noise on top).
    fn bg(&self) -> f64;

    /// Current insulin on board (U): insulin delivered but not yet acted.
    fn iob(&self) -> f64;

    /// Advances the model by one 5-minute step.
    ///
    /// `insulin_rate` is the pump rate in U/h held during the step;
    /// `carbs_g` is the carbohydrate intake (grams) ingested at the
    /// beginning of the step.
    fn step(&mut self, insulin_rate: f64, carbs_g: f64);

    /// The patient's therapy settings, used by the controllers.
    fn therapy(&self) -> &TherapyProfile;

    /// Runs the model to (approximate) steady state under basal insulin
    /// and no meals. Call before starting a scenario so that different
    /// initial conditions do not leak into the evaluation.
    fn warm_up(&mut self, steps: usize) {
        let basal = self.therapy().basal_rate;
        for _ in 0..steps {
            self.step(basal, 0.0);
        }
    }
}

/// Clinician-style therapy parameters attached to each patient profile.
///
/// These drive the controllers: `basal_rate` is the open-loop maintenance
/// rate, `isf` the insulin sensitivity factor (expected BG drop in mg/dL
/// per unit of insulin), and `carb_ratio` the grams of carbohydrate covered
/// by one unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TherapyProfile {
    /// Basal insulin rate (U/h).
    pub basal_rate: f64,
    /// Insulin sensitivity factor (mg/dL per U).
    pub isf: f64,
    /// Carbohydrate ratio (g per U).
    pub carb_ratio: f64,
    /// Controller target BG (mg/dL).
    pub target_bg: f64,
}

impl TherapyProfile {
    /// Samples a plausible therapy profile.
    ///
    /// Ranges follow typical adult type-1 regimens: basal 0.6–1.6 U/h,
    /// ISF 35–65 mg/dL/U, carb ratio 8–15 g/U. The target is fixed at
    /// 120 mg/dL, the `BGT` used by the Table I rules.
    pub fn sample(rng: &mut SmallRng) -> Self {
        Self {
            basal_rate: rng.uniform_range(0.6, 1.6),
            isf: rng.uniform_range(35.0, 65.0),
            carb_ratio: rng.uniform_range(8.0, 15.0),
            target_bg: 120.0,
        }
    }
}

/// Simple exponential insulin-on-board tracker shared by both patient
/// models.
///
/// Real pumps estimate IOB from delivery history with an insulin-action
/// curve; a first-order decay with a ~2-hour time constant is the standard
/// lightweight approximation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IobTracker {
    iob: f64,
    decay_per_min: f64,
}

impl IobTracker {
    /// Creates a tracker with the given action time constant in minutes.
    ///
    /// # Panics
    ///
    /// Panics if `tau_minutes` is not positive.
    pub fn new(tau_minutes: f64) -> Self {
        assert!(tau_minutes > 0.0, "IOB time constant must be positive");
        Self {
            iob: 0.0,
            decay_per_min: 1.0 / tau_minutes,
        }
    }

    /// Current insulin on board (U).
    pub fn value(&self) -> f64 {
        self.iob
    }

    /// The per-minute decay fraction (`1 / tau_minutes`). The cohort
    /// engine reads this to mirror [`advance_minute`](Self::advance_minute)
    /// across structure-of-arrays lanes.
    pub fn decay_per_min(&self) -> f64 {
        self.decay_per_min
    }

    /// Advances one minute with `delivered` units infused during it.
    pub fn advance_minute(&mut self, delivered: f64) {
        self.iob += delivered;
        self.iob -= self.iob * self.decay_per_min;
        if self.iob < 0.0 {
            self.iob = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn therapy_sample_in_ranges() {
        let mut rng = SmallRng::new(3);
        for _ in 0..100 {
            let t = TherapyProfile::sample(&mut rng);
            assert!((0.6..=1.6).contains(&t.basal_rate));
            assert!((35.0..=65.0).contains(&t.isf));
            assert!((8.0..=15.0).contains(&t.carb_ratio));
            assert_eq!(t.target_bg, 120.0);
        }
    }

    #[test]
    fn iob_decays_to_zero() {
        let mut iob = IobTracker::new(120.0);
        iob.advance_minute(2.0);
        assert!(iob.value() > 1.9);
        for _ in 0..1000 {
            iob.advance_minute(0.0);
        }
        assert!(iob.value() < 1e-3);
    }

    #[test]
    fn iob_steady_state_under_constant_rate() {
        // At constant delivery d per minute, steady state is d·tau.
        let mut iob = IobTracker::new(100.0);
        for _ in 0..5000 {
            iob.advance_minute(0.01);
        }
        assert!((iob.value() - 1.0).abs() < 0.02, "iob was {}", iob.value());
    }

    #[test]
    fn iob_never_negative() {
        let mut iob = IobTracker::new(60.0);
        for _ in 0..10 {
            iob.advance_minute(0.0);
        }
        assert!(iob.value() >= 0.0);
    }
}
