//! Recorded simulation traces.

use crate::faults::PumpFault;

/// One 5-minute step of a closed-loop run, as recorded by the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepRecord {
    /// Ground-truth plasma glucose (mg/dL) — used only for labeling.
    pub bg_true: f64,
    /// CGM reading (mg/dL) — what the controller and monitor see.
    pub bg_sensor: f64,
    /// Insulin-on-board estimate (U).
    pub iob: f64,
    /// Rate the controller commanded (U/h).
    pub commanded_rate: f64,
    /// Rate the pump actually delivered after any fault (U/h) — what the
    /// monitor observes on the actuation bus.
    pub delivered_rate: f64,
    /// Carbohydrates ingested at this step (g).
    pub carbs: f64,
}

/// A complete closed-loop simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimTrace {
    /// Simulator family label ("glucosym" / "t1ds2013").
    pub simulator: &'static str,
    /// Controller label ("openaps" / "basal-bolus").
    pub controller: &'static str,
    /// Patient profile index (0-based).
    pub patient_id: usize,
    /// Run index within the campaign.
    pub run_id: usize,
    /// The injected fault, if any.
    pub fault: Option<PumpFault>,
    records: Vec<StepRecord>,
}

impl SimTrace {
    /// Creates a trace from recorded steps.
    pub fn new(
        simulator: &'static str,
        controller: &'static str,
        patient_id: usize,
        run_id: usize,
        fault: Option<PumpFault>,
        records: Vec<StepRecord>,
    ) -> Self {
        Self {
            simulator,
            controller,
            patient_id,
            run_id,
            fault,
            records,
        }
    }

    /// The recorded steps.
    pub fn records(&self) -> &[StepRecord] {
        &self.records
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Sensor BG column.
    pub fn bg_sensor(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.bg_sensor).collect()
    }

    /// Ground-truth BG column.
    pub fn bg_true(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.bg_true).collect()
    }

    /// IOB column.
    pub fn iob(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.iob).collect()
    }

    /// Delivered-rate column.
    pub fn delivered_rate(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.delivered_rate).collect()
    }

    /// Serializes the trace as CSV (header + one line per step), for
    /// external analysis/plotting tools.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out =
            String::from("step,bg_true,bg_sensor,iob,commanded_rate,delivered_rate,carbs\n");
        for (t, r) in self.records.iter().enumerate() {
            let _ = writeln!(
                out,
                "{t},{},{},{},{},{},{}",
                r.bg_true, r.bg_sensor, r.iob, r.commanded_rate, r.delivered_rate, r.carbs
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(bg: f64) -> StepRecord {
        StepRecord {
            bg_true: bg,
            bg_sensor: bg + 1.0,
            iob: 0.5,
            commanded_rate: 1.0,
            delivered_rate: 1.0,
            carbs: 0.0,
        }
    }

    #[test]
    fn columns_extract() {
        let t = SimTrace::new(
            "glucosym",
            "openaps",
            0,
            0,
            None,
            vec![rec(100.0), rec(110.0)],
        );
        assert_eq!(t.len(), 2);
        assert_eq!(t.bg_true(), vec![100.0, 110.0]);
        assert_eq!(t.bg_sensor(), vec![101.0, 111.0]);
        assert_eq!(t.iob(), vec![0.5, 0.5]);
    }

    #[test]
    fn empty_trace() {
        let t = SimTrace::new("glucosym", "openaps", 0, 0, None, vec![]);
        assert!(t.is_empty());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let t = SimTrace::new(
            "glucosym",
            "openaps",
            0,
            0,
            None,
            vec![rec(100.0), rec(110.0)],
        );
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("step,bg_true"));
        assert!(lines[1].starts_with("0,100"));
        assert!(lines[2].starts_with("1,110"));
    }
}
