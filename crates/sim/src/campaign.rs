//! Seeded multi-patient simulation campaigns.
//!
//! A campaign reproduces the paper's data-collection setup: many runs per
//! patient profile, a configurable fraction of them with injected pump
//! faults, using the simulator/controller pairing of the paper
//! (Glucosym + OpenAPS, T1DS2013 + Basal-Bolus).

use crate::basal_bolus::BasalBolusController;
use crate::engine::{ClosedLoop, StepObserver};
use crate::faults::PumpFault;
use crate::glucosym::GlucosymPatient;
use crate::meal::MealSchedule;
use crate::openaps::OpenApsController;
use crate::patient::PatientModel;
use crate::pump::InsulinPump;
use crate::sensor::Cgm;
use crate::t1ds::T1dsPatient;
use crate::trace::SimTrace;
use cpsmon_nn::rng::SmallRng;

/// Salt mixed into the campaign seed before forking per-run RNG streams.
/// Shared with the cohort engine so `CohortEngine::from_campaign` and
/// `Cohort::engine` fork the exact same streams as [`CampaignConfig::run`].
pub(crate) const CAMPAIGN_SALT: u64 = 0x6361_6d70_6169_676e;

/// The two APS simulation environments of the paper (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimulatorKind {
    /// Glucosym-style patients driven by the OpenAPS-like controller.
    Glucosym,
    /// UVA-Padova-style patients driven by the Basal-Bolus protocol.
    T1ds2013,
}

impl SimulatorKind {
    /// Label used in traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            SimulatorKind::Glucosym => "glucosym",
            SimulatorKind::T1ds2013 => "t1ds2013",
        }
    }

    /// Both simulators, in paper order.
    pub const ALL: [SimulatorKind; 2] = [SimulatorKind::Glucosym, SimulatorKind::T1ds2013];
}

impl std::fmt::Display for SimulatorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Builder for a simulation campaign.
///
/// # Examples
///
/// ```
/// use cpsmon_sim::{CampaignConfig, SimulatorKind};
///
/// let traces = CampaignConfig::new(SimulatorKind::T1ds2013)
///     .patients(1)
///     .runs_per_patient(1)
///     .steps(48)
///     .seed(3)
///     .run();
/// assert_eq!(traces.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    pub(crate) kind: SimulatorKind,
    pub(crate) patients: usize,
    pub(crate) runs_per_patient: usize,
    pub(crate) steps: usize,
    pub(crate) fault_ratio: f64,
    pub(crate) seed: u64,
}

impl CampaignConfig {
    /// Creates a campaign for the given simulator with paper-style
    /// defaults: 20 patients, 10 runs each, 24-hour scenarios, half of the
    /// runs fault-injected.
    pub fn new(kind: SimulatorKind) -> Self {
        Self {
            kind,
            patients: 20,
            runs_per_patient: 10,
            steps: 288,
            fault_ratio: 0.5,
            seed: 0,
        }
    }

    /// Number of patient profiles (max 20, matching the paper).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or above 20.
    pub fn patients(mut self, n: usize) -> Self {
        assert!((1..=20).contains(&n), "patients must be in 1..=20");
        self.patients = n;
        self
    }

    /// Number of runs per patient.
    pub fn runs_per_patient(mut self, n: usize) -> Self {
        assert!(n > 0, "runs_per_patient must be positive");
        self.runs_per_patient = n;
        self
    }

    /// Steps per run (5-minute steps).
    pub fn steps(mut self, n: usize) -> Self {
        assert!(n > 0, "steps must be positive");
        self.steps = n;
        self
    }

    /// Fraction of runs that get an injected pump fault.
    pub fn fault_ratio(mut self, r: f64) -> Self {
        assert!((0.0..=1.0).contains(&r), "fault_ratio must be in [0,1]");
        self.fault_ratio = r;
        self
    }

    /// Campaign seed; everything downstream is derived from it.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// The simulator kind.
    pub fn kind(&self) -> SimulatorKind {
        self.kind
    }

    /// Total number of runs this campaign will produce.
    pub fn total_runs(&self) -> usize {
        self.patients * self.runs_per_patient
    }

    /// Executes the campaign through the batched cohort engine.
    ///
    /// Bit-identical to [`run`](Self::run) — every run's RNG streams are
    /// forked the same way and every patient's floating-point op sequence
    /// is preserved by the structure-of-arrays integrators — but all runs
    /// advance together, one fused SIMD pass per Euler substep.
    pub fn run_batched(&self) -> Vec<SimTrace> {
        crate::cohort::CohortEngine::from_campaign(self).run()
    }

    /// Reassembles one campaign member in isolation: the exact patient,
    /// pump (with any drawn fault), CGM stream, and meal schedule that
    /// [`run`](Self::run) gives run `run` of patient `pid` — so a single
    /// member can be re-simulated under an observer (e.g. a mitigating
    /// monitor) and, with a no-op observer, reproduce the campaign trace
    /// bit for bit.
    ///
    /// The campaign root RNG is advanced through every earlier member's
    /// fork in campaign order, because forking mutates the root stream;
    /// this mirrors the loop structure of [`run`](Self::run) exactly.
    ///
    /// # Panics
    ///
    /// Panics if `pid >= patients` or `run >= runs_per_patient`.
    pub fn member(&self, pid: usize, run: usize) -> MemberLoop {
        assert!(pid < self.patients, "pid {pid} out of range");
        assert!(run < self.runs_per_patient, "run {run} out of range");
        let mut root = SmallRng::new(self.seed ^ CAMPAIGN_SALT);
        let mut rng = None;
        'replay: for p in 0..self.patients {
            for r in 0..self.runs_per_patient {
                let forked = root.fork((p * 10_007 + r) as u64);
                if p == pid && r == run {
                    rng = Some(forked);
                    break 'replay;
                }
            }
        }
        let mut rng = rng.expect("member indices validated above");
        let meals = MealSchedule::generate(self.steps, &mut rng);
        let cgm = Cgm::typical(rng.fork(1));
        let glucosym_proto = match self.kind {
            SimulatorKind::Glucosym => Some(GlucosymPatient::from_profile(pid, self.seed)),
            SimulatorKind::T1ds2013 => None,
        };
        let t1ds_proto = match self.kind {
            SimulatorKind::Glucosym => None,
            SimulatorKind::T1ds2013 => Some(T1dsPatient::calibrated(pid, self.seed)),
        };
        let basal = match self.kind {
            SimulatorKind::Glucosym => {
                glucosym_proto
                    .as_ref()
                    .expect("proto built above")
                    .therapy()
                    .basal_rate
            }
            SimulatorKind::T1ds2013 => {
                t1ds_proto
                    .as_ref()
                    .expect("proto built above")
                    .therapy()
                    .basal_rate
            }
        };
        let fault = rng
            .bernoulli(self.fault_ratio)
            .then(|| PumpFault::sample(self.steps, basal, &mut rng));
        let pump = match fault {
            Some(f) => InsulinPump::with_fault(f),
            None => InsulinPump::healthy(),
        };
        let inner = match self.kind {
            SimulatorKind::Glucosym => MemberLoopInner::Glucosym(Box::new(ClosedLoop::new(
                glucosym_proto.expect("proto built above"),
                OpenApsController::new(),
                pump,
                cgm,
                meals,
            ))),
            SimulatorKind::T1ds2013 => MemberLoopInner::T1ds(Box::new(ClosedLoop::new(
                t1ds_proto.expect("proto built above"),
                BasalBolusController::new(),
                pump,
                cgm,
                meals,
            ))),
        };
        MemberLoop {
            inner,
            steps: self.steps,
            label: self.kind.label(),
            pid,
            run,
        }
    }

    /// Executes the campaign, returning one trace per run.
    pub fn run(&self) -> Vec<SimTrace> {
        let mut traces = Vec::with_capacity(self.total_runs());
        let mut root = SmallRng::new(self.seed ^ CAMPAIGN_SALT);
        for pid in 0..self.patients {
            // Patient construction is per-profile; runs share the profile.
            let glucosym_proto = match self.kind {
                SimulatorKind::Glucosym => Some(GlucosymPatient::from_profile(pid, self.seed)),
                SimulatorKind::T1ds2013 => None,
            };
            let t1ds_proto = match self.kind {
                SimulatorKind::Glucosym => None,
                SimulatorKind::T1ds2013 => Some(T1dsPatient::calibrated(pid, self.seed)),
            };
            for run in 0..self.runs_per_patient {
                let mut rng = root.fork((pid * 10_007 + run) as u64);
                let meals = MealSchedule::generate(self.steps, &mut rng);
                let cgm = Cgm::typical(rng.fork(1));
                let basal = match self.kind {
                    SimulatorKind::Glucosym => {
                        glucosym_proto
                            .as_ref()
                            .expect("proto built above")
                            .therapy()
                            .basal_rate
                    }
                    SimulatorKind::T1ds2013 => {
                        t1ds_proto
                            .as_ref()
                            .expect("proto built above")
                            .therapy()
                            .basal_rate
                    }
                };
                let fault = rng
                    .bernoulli(self.fault_ratio)
                    .then(|| PumpFault::sample(self.steps, basal, &mut rng));
                let pump = match fault {
                    Some(f) => InsulinPump::with_fault(f),
                    None => InsulinPump::healthy(),
                };
                let label = self.kind.label();
                let trace = match self.kind {
                    SimulatorKind::Glucosym => {
                        let patient = glucosym_proto.clone().expect("proto built above");
                        ClosedLoop::new(patient, OpenApsController::new(), pump, cgm, meals)
                            .run(self.steps, label, pid, run)
                    }
                    SimulatorKind::T1ds2013 => {
                        let patient = t1ds_proto.clone().expect("proto built above");
                        ClosedLoop::new(patient, BasalBolusController::new(), pump, cgm, meals)
                            .run(self.steps, label, pid, run)
                    }
                };
                traces.push(trace);
            }
        }
        traces
    }
}

/// The simulator-specific closed loop inside a [`MemberLoop`].
enum MemberLoopInner {
    Glucosym(Box<ClosedLoop<GlucosymPatient, OpenApsController>>),
    T1ds(Box<ClosedLoop<T1dsPatient, BasalBolusController>>),
}

/// One campaign member ready to run, produced by
/// [`CampaignConfig::member`]. Running it with a no-op observer reproduces
/// the corresponding [`CampaignConfig::run`] trace bit for bit; running it
/// with a mitigating observer is how an alarm gets to change the simulated
/// patient's future.
pub struct MemberLoop {
    inner: MemberLoopInner,
    steps: usize,
    label: &'static str,
    pid: usize,
    run: usize,
}

impl MemberLoop {
    /// Steps this member's run covers.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Runs the member to completion without an observer.
    pub fn run(self) -> SimTrace {
        let mut noop = |_: usize, _: &crate::trace::StepRecord| {};
        self.run_observed(&mut noop)
    }

    /// Runs the member with a monitor-in-the-loop observer (see
    /// [`crate::engine::StepObserver`]); mitigation commands the observer
    /// returns are applied to the pump on the next control step.
    pub fn run_observed(self, observer: &mut dyn StepObserver) -> SimTrace {
        match self.inner {
            MemberLoopInner::Glucosym(cl) => {
                cl.run_observed(self.steps, self.label, self.pid, self.run, observer)
            }
            MemberLoopInner::T1ds(cl) => {
                cl.run_observed(self.steps, self.label, self.pid, self.run, observer)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hazard::HazardConfig;

    #[test]
    fn campaign_produces_expected_count() {
        let traces = CampaignConfig::new(SimulatorKind::Glucosym)
            .patients(2)
            .runs_per_patient(3)
            .steps(36)
            .seed(1)
            .run();
        assert_eq!(traces.len(), 6);
        assert!(traces.iter().all(|t| t.len() == 36));
        assert!(traces.iter().all(|t| t.simulator == "glucosym"));
    }

    #[test]
    fn fault_ratio_zero_means_no_faults() {
        let traces = CampaignConfig::new(SimulatorKind::Glucosym)
            .patients(2)
            .runs_per_patient(2)
            .steps(24)
            .fault_ratio(0.0)
            .seed(2)
            .run();
        assert!(traces.iter().all(|t| t.fault.is_none()));
    }

    #[test]
    fn fault_ratio_one_means_all_faulty() {
        let traces = CampaignConfig::new(SimulatorKind::Glucosym)
            .patients(2)
            .runs_per_patient(2)
            .steps(24)
            .fault_ratio(1.0)
            .seed(3)
            .run();
        assert!(traces.iter().all(|t| t.fault.is_some()));
    }

    #[test]
    fn campaigns_are_deterministic() {
        let mk = || {
            CampaignConfig::new(SimulatorKind::Glucosym)
                .patients(1)
                .runs_per_patient(2)
                .steps(48)
                .seed(11)
                .run()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn member_loops_reproduce_campaign_traces() {
        for kind in SimulatorKind::ALL {
            let cfg = CampaignConfig::new(kind)
                .patients(2)
                .runs_per_patient(3)
                .steps(36)
                .fault_ratio(0.5)
                .seed(9);
            let traces = cfg.run();
            for pid in 0..2 {
                for run in 0..3 {
                    let solo = cfg.member(pid, run).run();
                    assert_eq!(solo, traces[pid * 3 + run], "{kind} pid {pid} run {run}");
                }
            }
        }
    }

    #[test]
    fn faulty_campaign_produces_positive_labels() {
        // 24h runs with faults must generate hazardous stretches.
        let traces = CampaignConfig::new(SimulatorKind::Glucosym)
            .patients(2)
            .runs_per_patient(2)
            .steps(288)
            .fault_ratio(1.0)
            .seed(5)
            .run();
        let hc = HazardConfig::default();
        let positives: usize = traces
            .iter()
            .map(|t| hc.labels(t).iter().sum::<usize>())
            .sum();
        let total: usize = traces.iter().map(SimTrace::len).sum();
        let ratio = positives as f64 / total as f64;
        assert!(
            ratio > 0.05,
            "fault campaign produced almost no hazards ({ratio})"
        );
    }
}
