//! Structure-of-arrays physiological state for the cohort engine.
//!
//! Each patient model's dynamic state and per-patient constants are packed
//! into parallel `Vec<f64>` columns so one control step advances every
//! cohort member in a fused pass over contiguous lanes: each lane block
//! loads its state once, runs all Euler substeps with the state resident
//! in registers, and stores once. The batched scalar kernels in this file
//! replicate the per-patient integrators' expression trees *operation for
//! operation* (same literals, same association, same floors) — that is
//! the transparency guarantee: reordering the loops from
//! `for patient { for substep }` to `for block { for substep }` leaves
//! every individual patient's floating-point op sequence unchanged
//! (patients are independent within a step), so batched trajectories are
//! bit-identical to [`crate::engine::ClosedLoop`] runs. The AVX2/AVX-512
//! kernels in [`super::kernels`] mirror these scalar kernels with
//! IEEE-exact element-wise intrinsics (no FMA — the scalar code never
//! contracts) and are therefore bit-identical too.

use crate::glucosym::GlucosymPatient;
use crate::patient::{PatientModel, STEP_MINUTES, SUBSTEPS};
use crate::t1ds::T1dsPatient;
use cpsmon_nn::simd::Backend;

/// Euler substep length in minutes; equals the per-patient integrators'
/// `STEP_MINUTES / SUBSTEPS as f64` (1.0) by construction.
pub(crate) const DT: f64 = STEP_MINUTES / SUBSTEPS as f64;

/// Lanes per integration tile on the vector backends.
///
/// 64 lanes keep the widest model's full working set (T1DS2013: 13 state
/// plus ~35 parameter columns, about 25 KB) L1-resident across the fused
/// substep loop while giving each kernel call several independent vector
/// blocks to overlap dependency chains across.
#[cfg(target_arch = "x86_64")]
const TILE_LANES: usize = 64;

/// Lanes per parallel work chunk when the cohort is large enough to fan
/// integration out across `cpsmon_nn::par` workers. A multiple of both
/// vector widths (4 and 8) and of [`TILE_LANES`], so chunk boundaries fall
/// exactly where the serial tile walk would already split: every lane sees
/// the same vector-vs-scalar-tail partition and the same op sequence as
/// the single-threaded sweep, which is what keeps parallel integration
/// bit-identical for any `CPSMON_THREADS`.
const PAR_BLOCK: usize = 256;

/// Shares a raw SoA pointer with `par` workers. Sound only because
/// [`run_chunks`](cpsmon_nn::par::run_chunks) hands every worker a
/// *disjoint* lane range and `integrate_range` touches nothing outside its
/// range (the kernels in [`super::kernels`] load/store lanes
/// `j..j + lanes` exclusively).
struct SyncPtr<T>(*mut T);
unsafe impl<T> Sync for SyncPtr<T> {}

impl<T> SyncPtr<T> {
    /// The wrapped pointer. A method (not field access) so closures
    /// capture the `Sync` wrapper, not the bare `*mut T`.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Fans `integrate_range` out over [`PAR_BLOCK`]-lane chunks. Inlined to a
/// plain serial call by `run_chunks` when only one worker (or one chunk)
/// is available, so small cohorts pay no thread overhead.
fn integrate_chunked<S: Send + Sync>(
    soa: &mut S,
    n: usize,
    range: impl Fn(&mut S, usize, usize) + Sync,
) {
    let ptr = SyncPtr(soa as *mut S);
    cpsmon_nn::par::run_chunks(n, PAR_BLOCK, |r| {
        // SAFETY: chunks partition 0..n into disjoint lane ranges and
        // `range` only reads/writes lanes inside r (see SyncPtr).
        let soa = unsafe { &mut *ptr.get() };
        range(soa, r.start, r.end);
    });
}

/// SoA state of a Glucosym (extended Bergman minimal model) cohort.
///
/// Column order groups the hot dynamic state first; `neg_*` columns hold
/// pre-negated parameters so kernels mirror the scalar `-p.x * y` unary
/// negation exactly (sign flips are IEEE-exact).
#[derive(Debug, Clone, Default)]
pub(crate) struct GlucosymSoa {
    // Dynamic state.
    pub(crate) g: Vec<f64>,
    pub(crate) x: Vec<f64>,
    pub(crate) i: Vec<f64>,
    pub(crate) q1: Vec<f64>,
    pub(crate) q2: Vec<f64>,
    pub(crate) iob: Vec<f64>,
    // Per-patient constants.
    pub(crate) neg_p1: Vec<f64>,
    pub(crate) gb: Vec<f64>,
    pub(crate) neg_p2: Vec<f64>,
    pub(crate) p3: Vec<f64>,
    pub(crate) ib: Vec<f64>,
    pub(crate) neg_n: Vec<f64>,
    pub(crate) neg_ka: Vec<f64>,
    pub(crate) ka: Vec<f64>,
    pub(crate) fka: Vec<f64>,
    pub(crate) vg: Vec<f64>,
    pub(crate) vi: Vec<f64>,
    pub(crate) basal_mu: Vec<f64>,
    pub(crate) iob_decay: Vec<f64>,
    // Per-step scratch (recomputed by `begin_step`).
    pub(crate) u_term: Vec<f64>,
    pub(crate) iob_d: Vec<f64>,
}

impl GlucosymSoa {
    pub(crate) fn len(&self) -> usize {
        self.g.len()
    }

    /// Appends one patient's state and derived constants.
    pub(crate) fn push(&mut self, patient: &GlucosymPatient) {
        let (g, x, i, q1, q2) = patient.state();
        let p = *patient.params();
        let basal_rate = patient.therapy().basal_rate;
        self.g.push(g);
        self.x.push(x);
        self.i.push(i);
        self.q1.push(q1);
        self.q2.push(q2);
        self.iob.push(patient.iob_tracker().value());
        self.neg_p1.push(-p.p1);
        self.gb.push(p.gb);
        self.neg_p2.push(-p.p2);
        self.p3.push(p.p3);
        self.ib.push(patient.ib());
        self.neg_n.push(-p.n);
        self.neg_ka.push(-p.ka);
        self.ka.push(p.ka);
        self.fka.push(p.f * p.ka);
        self.vg.push(p.vg);
        self.vi.push(p.vi);
        self.basal_mu.push(basal_rate * 1000.0 / 60.0);
        self.iob_decay.push(patient.iob_tracker().decay_per_min());
        self.u_term.push(0.0);
        self.iob_d.push(0.0);
    }

    /// Per-step precompute mirroring `GlucosymPatient::step`'s prologue:
    /// clamps the rate, hoists the (substep-invariant) insulin forcing term
    /// and IOB increment, and lands the meal in the first gut compartment.
    pub(crate) fn begin_step(&mut self, delivered: &[f64], carbs: &[f64]) {
        // Branch-free over re-sliced columns so the loop autovectorizes
        // (per-lane IEEE semantics are unchanged by vectorization).
        let n = self.len();
        let u_term = &mut self.u_term[..n];
        let iob_d = &mut self.iob_d[..n];
        let q1 = &mut self.q1[..n];
        let basal_mu = &self.basal_mu[..n];
        let vi = &self.vi[..n];
        let delivered = &delivered[..n];
        let carbs = &carbs[..n];
        for j in 0..n {
            let rate = delivered[j].max(0.0);
            let u_mu_per_min = rate * 1000.0 / 60.0;
            u_term[j] = (u_mu_per_min - basal_mu[j]) / vi[j];
            iob_d[j] = rate / 60.0 * DT;
            q1[j] += carbs[j] * 1000.0;
        }
    }

    /// Advances every lane through one whole control step (all
    /// [`SUBSTEPS`] Euler substeps), via the selected backend.
    ///
    /// Cohorts above [`PAR_BLOCK`] lanes fan the lane range out across
    /// `cpsmon_nn::par` workers in fixed [`PAR_BLOCK`] chunks. The chunk
    /// grid is independent of the worker count and chunk boundaries are
    /// multiples of both vector widths, so every lane's op sequence — and
    /// therefore the whole cohort's state — is bit-identical for any
    /// `CPSMON_THREADS` (and to the serial sweep).
    pub(crate) fn integrate(&mut self, backend: Backend) {
        let n = self.len();
        if n <= PAR_BLOCK {
            self.integrate_range(backend, 0, n);
        } else {
            integrate_chunked(self, n, |s, lo, hi| s.integrate_range(backend, lo, hi));
        }
    }

    /// [`integrate`](Self::integrate) restricted to lanes `lo..hi`
    /// (`lo` must be a multiple of the vector widths; chunk boundaries
    /// are).
    ///
    /// Vector lanes are walked in L1-resident tiles of [`TILE_LANES`]:
    /// within a tile the substep loop is outermost, so each substep
    /// sweeps several independent vector blocks back to back — their
    /// dependency chains overlap in the out-of-order core — while every
    /// column the tile touches stays in L1 between substeps and streams
    /// from L2 only once per step. Patients are independent, so the
    /// loop-nest order leaves each lane's op sequence unchanged.
    fn integrate_range(&mut self, backend: Backend, lo: usize, hi: usize) {
        let mut j = lo;
        #[cfg(target_arch = "x86_64")]
        match backend {
            Backend::Avx512 => {
                // With `lo` a multiple of 8, this is exactly the serial
                // sweep's `n / 8 * 8` boundary restricted to the range.
                let full = lo + (hi - lo) / 8 * 8;
                while j < full {
                    let lanes = (full - j).min(TILE_LANES);
                    // SAFETY: Avx512 is only selected when avx512f is
                    // available (simd::backend() / with_backend both
                    // check); `lanes` is a multiple of 8 within bounds.
                    unsafe { super::kernels::glucosym_step_avx512(self, j, lanes) };
                    j += lanes;
                }
            }
            Backend::Avx2Fma => {
                let full = lo + (hi - lo) / 4 * 4;
                while j < full {
                    let lanes = (full - j).min(TILE_LANES);
                    // SAFETY: as above, for avx2; `lanes` is a multiple
                    // of 4 within bounds.
                    unsafe { super::kernels::glucosym_step_avx2(self, j, lanes) };
                    j += lanes;
                }
            }
            Backend::Scalar | Backend::Neon => {}
        }
        let _ = backend;
        self.integrate_scalar(j, hi);
    }

    /// Batched scalar whole-step kernel for lanes `lo..hi`; the
    /// bit-identity reference the vector kernels mirror. The substep
    /// expression trees copy `GlucosymPatient::derivs`/`step` verbatim;
    /// state lives in locals across the fused substep loop.
    pub(crate) fn integrate_scalar(&mut self, lo: usize, hi: usize) {
        for j in lo..hi {
            let ib = self.ib[j];
            let fka = self.fka[j];
            let neg_p1 = self.neg_p1[j];
            let gb = self.gb[j];
            let vg = self.vg[j];
            let neg_p2 = self.neg_p2[j];
            let p3 = self.p3[j];
            let neg_n = self.neg_n[j];
            let u_term = self.u_term[j];
            let neg_ka = self.neg_ka[j];
            let ka = self.ka[j];
            let iob_d = self.iob_d[j];
            let iob_decay = self.iob_decay[j];
            let mut gv = self.g[j];
            let mut xv = self.x[j];
            let mut iv = self.i[j];
            let mut q1v = self.q1[j];
            let mut q2v = self.q2[j];
            let mut iob = self.iob[j];
            for _ in 0..SUBSTEPS {
                let i_ib = iv - ib;
                let ra = fka * q2v;
                let dg = neg_p1 * (gv - gb) - xv * gv + ra / vg;
                let dx = neg_p2 * xv + p3 * i_ib;
                let di = neg_n * i_ib + u_term;
                let dq1 = neg_ka * q1v;
                let dq2 = ka * (q1v - q2v);
                gv = (gv + dg * DT).max(10.0);
                xv += dx * DT;
                iv = (iv + di * DT).max(0.0);
                q1v = (q1v + dq1 * DT).max(0.0);
                q2v = (q2v + dq2 * DT).max(0.0);
                let mut io = iob + iob_d;
                io -= io * iob_decay;
                iob = if io < 0.0 { 0.0 } else { io };
            }
            self.g[j] = gv;
            self.x[j] = xv;
            self.i[j] = iv;
            self.q1[j] = q1v;
            self.q2[j] = q2v;
            self.iob[j] = iob;
        }
    }
}

/// SoA state of a T1DS2013 (reduced Dalla Man) cohort.
#[derive(Debug, Clone, Default)]
pub(crate) struct T1dsSoa {
    // Dynamic state.
    pub(crate) gp: Vec<f64>,
    pub(crate) gt: Vec<f64>,
    pub(crate) ip: Vec<f64>,
    pub(crate) il: Vec<f64>,
    pub(crate) isc1: Vec<f64>,
    pub(crate) isc2: Vec<f64>,
    pub(crate) i1: Vec<f64>,
    pub(crate) id: Vec<f64>,
    pub(crate) x: Vec<f64>,
    pub(crate) qsto1: Vec<f64>,
    pub(crate) qsto2: Vec<f64>,
    pub(crate) qgut: Vec<f64>,
    pub(crate) iob: Vec<f64>,
    // Per-patient constants.
    pub(crate) kgri: Vec<f64>,
    pub(crate) neg_kgri: Vec<f64>,
    pub(crate) kempt: Vec<f64>,
    pub(crate) kabs: Vec<f64>,
    pub(crate) fkabs: Vec<f64>,
    pub(crate) bw: Vec<f64>,
    pub(crate) neg_kdka1: Vec<f64>,
    pub(crate) kd: Vec<f64>,
    pub(crate) ka1: Vec<f64>,
    pub(crate) ka2: Vec<f64>,
    pub(crate) neg_m13: Vec<f64>,
    pub(crate) neg_m24: Vec<f64>,
    pub(crate) m1: Vec<f64>,
    pub(crate) m2: Vec<f64>,
    pub(crate) vi: Vec<f64>,
    pub(crate) neg_ki: Vec<f64>,
    pub(crate) p2u: Vec<f64>,
    pub(crate) neg_p2u: Vec<f64>,
    pub(crate) ib: Vec<f64>,
    pub(crate) kp1: Vec<f64>,
    pub(crate) kp2: Vec<f64>,
    pub(crate) kp3: Vec<f64>,
    pub(crate) fsnc: Vec<f64>,
    pub(crate) ke1: Vec<f64>,
    pub(crate) ke2: Vec<f64>,
    pub(crate) vm0: Vec<f64>,
    pub(crate) vmx: Vec<f64>,
    pub(crate) km0: Vec<f64>,
    pub(crate) k1: Vec<f64>,
    pub(crate) k2: Vec<f64>,
    pub(crate) gp_floor: Vec<f64>,
    pub(crate) vg: Vec<f64>,
    pub(crate) iob_decay: Vec<f64>,
    // Per-step scratch (recomputed by `begin_step`).
    pub(crate) iir: Vec<f64>,
    pub(crate) iob_d: Vec<f64>,
}

impl T1dsSoa {
    pub(crate) fn len(&self) -> usize {
        self.gp.len()
    }

    /// Appends one patient's state and derived constants.
    pub(crate) fn push(&mut self, patient: &T1dsPatient) {
        let [gp, gt, ip, il, isc1, isc2, i1, id, x, qsto1, qsto2, qgut] = patient.state();
        let p = *patient.params();
        self.gp.push(gp);
        self.gt.push(gt);
        self.ip.push(ip);
        self.il.push(il);
        self.isc1.push(isc1);
        self.isc2.push(isc2);
        self.i1.push(i1);
        self.id.push(id);
        self.x.push(x);
        self.qsto1.push(qsto1);
        self.qsto2.push(qsto2);
        self.qgut.push(qgut);
        self.iob.push(patient.iob_tracker().value());
        self.kgri.push(p.kgri);
        self.neg_kgri.push(-p.kgri);
        self.kempt.push(p.kempt);
        self.kabs.push(p.kabs);
        self.fkabs.push(p.f * p.kabs);
        self.bw.push(p.bw);
        self.neg_kdka1.push(-(p.kd + p.ka1));
        self.kd.push(p.kd);
        self.ka1.push(p.ka1);
        self.ka2.push(p.ka2);
        self.neg_m13.push(-(p.m1 + p.m3));
        self.neg_m24.push(-(p.m2 + p.m4));
        self.m1.push(p.m1);
        self.m2.push(p.m2);
        self.vi.push(p.vi);
        self.neg_ki.push(-p.ki);
        self.p2u.push(p.p2u);
        self.neg_p2u.push(-p.p2u);
        self.ib.push(patient.ib());
        self.kp1.push(p.kp1);
        self.kp2.push(p.kp2);
        self.kp3.push(p.kp3);
        self.fsnc.push(p.fsnc);
        self.ke1.push(p.ke1);
        self.ke2.push(p.ke2);
        self.vm0.push(p.vm0);
        self.vmx.push(p.vmx);
        self.km0.push(p.km0);
        self.k1.push(p.k1);
        self.k2.push(p.k2);
        self.gp_floor.push(15.0 * p.vg);
        self.vg.push(p.vg);
        self.iob_decay.push(patient.iob_tracker().decay_per_min());
        self.iir.push(0.0);
        self.iob_d.push(0.0);
    }

    /// Per-step precompute mirroring `T1dsPatient::step`'s prologue.
    pub(crate) fn begin_step(&mut self, delivered: &[f64], carbs: &[f64]) {
        // Branch-free over re-sliced columns so the loop autovectorizes
        // (per-lane IEEE semantics are unchanged by vectorization).
        let n = self.len();
        let iir = &mut self.iir[..n];
        let iob_d = &mut self.iob_d[..n];
        let qsto1 = &mut self.qsto1[..n];
        let bw = &self.bw[..n];
        let delivered = &delivered[..n];
        let carbs = &carbs[..n];
        for j in 0..n {
            let rate = delivered[j].max(0.0);
            iir[j] = rate * 6000.0 / 60.0 / bw[j];
            iob_d[j] = rate / 60.0;
            qsto1[j] += carbs[j] * 1000.0;
        }
    }

    /// Advances every lane through one whole control step (all
    /// [`SUBSTEPS`] Euler substeps), via the selected backend. See
    /// [`GlucosymSoa::integrate`] for the chunking/tile rationale and why
    /// both the loop-nest order and the parallel fan-out are
    /// bit-transparent.
    pub(crate) fn integrate(&mut self, backend: Backend) {
        let n = self.len();
        if n <= PAR_BLOCK {
            self.integrate_range(backend, 0, n);
        } else {
            integrate_chunked(self, n, |s, lo, hi| s.integrate_range(backend, lo, hi));
        }
    }

    /// [`integrate`](Self::integrate) restricted to lanes `lo..hi`
    /// (`lo` must be a multiple of the vector widths; chunk boundaries
    /// are).
    fn integrate_range(&mut self, backend: Backend, lo: usize, hi: usize) {
        let mut j = lo;
        #[cfg(target_arch = "x86_64")]
        match backend {
            Backend::Avx512 => {
                let full = lo + (hi - lo) / 8 * 8;
                while j < full {
                    let lanes = (full - j).min(TILE_LANES);
                    // SAFETY: Avx512 is only selected when avx512f is
                    // available (simd::backend() / with_backend both
                    // check); `lanes` is a multiple of 8 within bounds.
                    unsafe { super::kernels::t1ds_step_avx512(self, j, lanes) };
                    j += lanes;
                }
            }
            Backend::Avx2Fma => {
                let full = lo + (hi - lo) / 4 * 4;
                while j < full {
                    let lanes = (full - j).min(TILE_LANES);
                    // SAFETY: as above, for avx2; `lanes` is a multiple
                    // of 4 within bounds.
                    unsafe { super::kernels::t1ds_step_avx2(self, j, lanes) };
                    j += lanes;
                }
            }
            Backend::Scalar | Backend::Neon => {}
        }
        let _ = backend;
        self.integrate_scalar(j, hi);
    }

    /// Batched scalar whole-step kernel for lanes `lo..hi`; the substep
    /// expression trees copy `T1dsPatient::advance_minute` verbatim (all
    /// derivatives read the pre-update state, updates and floors follow).
    /// State lives in locals across the fused substep loop.
    pub(crate) fn integrate_scalar(&mut self, lo: usize, hi: usize) {
        for j in lo..hi {
            let neg_kgri = self.neg_kgri[j];
            let kgri = self.kgri[j];
            let kempt = self.kempt[j];
            let kabs = self.kabs[j];
            let fkabs = self.fkabs[j];
            let bw = self.bw[j];
            let neg_kdka1 = self.neg_kdka1[j];
            let iir = self.iir[j];
            let kd = self.kd[j];
            let ka1 = self.ka1[j];
            let ka2 = self.ka2[j];
            let neg_m13 = self.neg_m13[j];
            let neg_m24 = self.neg_m24[j];
            let m1 = self.m1[j];
            let m2 = self.m2[j];
            let vi = self.vi[j];
            let neg_ki = self.neg_ki[j];
            let neg_p2u = self.neg_p2u[j];
            let p2u = self.p2u[j];
            let ib = self.ib[j];
            let kp1 = self.kp1[j];
            let kp2 = self.kp2[j];
            let kp3 = self.kp3[j];
            let uii = self.fsnc[j];
            let ke1 = self.ke1[j];
            let ke2 = self.ke2[j];
            let vm0 = self.vm0[j];
            let vmx = self.vmx[j];
            let km0 = self.km0[j];
            let k1 = self.k1[j];
            let k2 = self.k2[j];
            let gp_floor = self.gp_floor[j];
            let iob_d = self.iob_d[j];
            let iob_decay = self.iob_decay[j];
            let mut gp = self.gp[j];
            let mut gt = self.gt[j];
            let mut ip = self.ip[j];
            let mut il = self.il[j];
            let mut isc1 = self.isc1[j];
            let mut isc2 = self.isc2[j];
            let mut i1 = self.i1[j];
            let mut id = self.id[j];
            let mut x = self.x[j];
            let mut qsto1 = self.qsto1[j];
            let mut qsto2 = self.qsto2[j];
            let mut qgut = self.qgut[j];
            let mut iob = self.iob[j];
            for _ in 0..SUBSTEPS {
                // Oral absorption.
                let dqsto1 = neg_kgri * qsto1;
                let dqsto2 = kgri * qsto1 - kempt * qsto2;
                let dqgut = kempt * qsto2 - kabs * qgut;
                let ra = fkabs * qgut / bw;
                // Insulin subsystem.
                let disc1 = neg_kdka1 * isc1 + iir;
                let disc2 = kd * isc1 - ka2 * isc2;
                let rai = ka1 * isc1 + ka2 * isc2;
                let dil = neg_m13 * il + m2 * ip;
                let dip = neg_m24 * ip + m1 * il + rai;
                let i_conc = ip / vi;
                let di1 = neg_ki * (i1 - i_conc);
                let did = neg_ki * (id - i1);
                let dx = neg_p2u * x + p2u * (i_conc - ib);
                // Glucose subsystem.
                let egp = (kp1 - kp2 * gp - kp3 * id).max(0.0);
                let e = if gp > ke2 { ke1 * (gp - ke2) } else { 0.0 };
                let vm = (vm0 + vmx * x).max(0.0);
                let uid = vm * gt / (km0 + gt);
                let k1gp = k1 * gp;
                let k2gt = k2 * gt;
                let dgp = egp + ra - uii - e - k1gp + k2gt;
                let dgt = -uid + k1gp - k2gt;
                // Euler step (dt = 1 min) with the scalar model's floors.
                qsto1 = (qsto1 + dqsto1).max(0.0);
                qsto2 = (qsto2 + dqsto2).max(0.0);
                qgut = (qgut + dqgut).max(0.0);
                isc1 = (isc1 + disc1).max(0.0);
                isc2 = (isc2 + disc2).max(0.0);
                il = (il + dil).max(0.0);
                ip = (ip + dip).max(0.0);
                i1 += di1;
                id += did;
                x += dx;
                gp = (gp + dgp).max(gp_floor);
                gt = (gt + dgt).max(1.0);
                let mut io = iob + iob_d;
                io -= io * iob_decay;
                iob = if io < 0.0 { 0.0 } else { io };
            }
            self.gp[j] = gp;
            self.gt[j] = gt;
            self.ip[j] = ip;
            self.il[j] = il;
            self.isc1[j] = isc1;
            self.isc2[j] = isc2;
            self.i1[j] = i1;
            self.id[j] = id;
            self.x[j] = x;
            self.qsto1[j] = qsto1;
            self.qsto2[j] = qsto2;
            self.qgut[j] = qgut;
            self.iob[j] = iob;
        }
    }
}
