//! Structure-of-arrays cohort simulation engine.
//!
//! [`CohortEngine`] steps an entire population of closed loops together:
//! every member's physiological state lives in structure-of-arrays buffers
//! (the private `soa` module) and each control step advances all members
//! in one fused pass
//! that keeps each lane block's state in registers across every Euler
//! substep — scalar, AVX2, or AVX-512, selected via
//! [`cpsmon_nn::simd::Backend`].
//! The per-step front end (CGM sampling, controller decisions, pump fault
//! windows, observer callbacks) stays scalar per member, because CGM noise
//! draws member-specific RNG streams; only the ODE integration and
//! pump-IOB bookkeeping — where virtually all the time goes — are batched.
//!
//! The engine is *transparent*: batched trajectories are bit-identical to
//! running each member through [`crate::engine::ClosedLoop`] on its own,
//! because the loop interchange (patients inside substeps instead of
//! substeps inside patients) preserves every member's floating-point
//! operation sequence, and the vector kernels replicate the scalar
//! expression trees with IEEE-exact element-wise arithmetic (the `soa`
//! and `kernels` modules document the discipline).
//! `CampaignConfig::run_batched` relies on this to be a drop-in, faster
//! `run`.
//!
//! ```
//! use cpsmon_sim::{CampaignConfig, SimulatorKind};
//!
//! let cfg = CampaignConfig::new(SimulatorKind::Glucosym)
//!     .patients(1)
//!     .runs_per_patient(2)
//!     .steps(24)
//!     .seed(7);
//! assert_eq!(cfg.run_batched(), cfg.run());
//! ```

mod kernels;
mod soa;

use crate::basal_bolus::BasalBolusController;
use crate::campaign::{CampaignConfig, SimulatorKind, CAMPAIGN_SALT};
use crate::controller::{Controller, Observation};
use crate::engine::PUMP_IOB_TAU_MIN;
use crate::faults::{FaultInjector, FaultPlan, PumpFault};
use crate::glucosym::{GlucosymParams, GlucosymPatient};
use crate::meal::MealSchedule;
use crate::openaps::OpenApsController;
use crate::patient::{PatientModel, TherapyProfile, SUBSTEPS};
use crate::pump::InsulinPump;
use crate::sensor::{Cgm, CgmFault, CgmFaultKind};
use crate::t1ds::{T1dsParams, T1dsPatient};
use crate::trace::{SimTrace, StepRecord};
use cpsmon_nn::rng::SmallRng;
use cpsmon_nn::simd::Backend;
use soa::{GlucosymSoa, T1dsSoa, DT};

/// Pump-firmware IOB decay per minute; same computation as
/// `IobTracker::new(PUMP_IOB_TAU_MIN)` performs.
const PUMP_IOB_DECAY: f64 = 1.0 / PUMP_IOB_TAU_MIN;

/// Salt for [`Cohort::sample`]'s latin-hypercube streams.
const COHORT_SALT: u64 = 0x636f_686f_7274_6c68; // "cohortlh"

/// A patient of either simulator family, as stored in a [`Cohort`] and
/// accepted by [`CohortEngine::push`].
// A cohort is homogeneous in practice, so padding the smaller variant
// wastes less than an indirection on every push/drain would cost.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum CohortPatient {
    /// A Glucosym-style (extended Bergman) patient.
    Glucosym(GlucosymPatient),
    /// A T1DS2013-style (reduced Dalla Man) patient.
    T1ds(T1dsPatient),
}

impl CohortPatient {
    /// Which simulator family this patient belongs to.
    pub fn kind(&self) -> SimulatorKind {
        match self {
            CohortPatient::Glucosym(_) => SimulatorKind::Glucosym,
            CohortPatient::T1ds(_) => SimulatorKind::T1ds2013,
        }
    }

    /// The patient's therapy profile.
    pub fn therapy(&self) -> &TherapyProfile {
        match self {
            CohortPatient::Glucosym(p) => p.therapy(),
            CohortPatient::T1ds(p) => p.therapy(),
        }
    }
}

impl From<GlucosymPatient> for CohortPatient {
    fn from(p: GlucosymPatient) -> Self {
        CohortPatient::Glucosym(p)
    }
}

impl From<T1dsPatient> for CohortPatient {
    fn from(p: T1dsPatient) -> Self {
        CohortPatient::T1ds(p)
    }
}

/// Per-member loop equipment handed to [`CohortEngine::push`]: everything a
/// [`crate::engine::ClosedLoop`] would own besides the patient and
/// controller.
#[derive(Debug, Clone)]
pub struct CohortMember {
    /// Patient profile id recorded in the trace.
    pub patient_id: usize,
    /// Run id recorded in the trace.
    pub run_id: usize,
    /// The member's CGM sensor (owns its noise RNG stream).
    pub cgm: Cgm,
    /// The member's pump, possibly carrying a fault.
    pub pump: InsulinPump,
    /// The member's meal schedule.
    pub meals: MealSchedule,
    /// This member's horizon in 5-minute steps. Members may have different
    /// horizons (ragged dropout); a member past its horizon stops producing
    /// records while the rest of the cohort keeps running.
    pub steps: usize,
}

/// Observer invoked by [`CohortEngine`] as the cohort advances —
/// the population analogue of [`crate::engine::StepObserver`].
///
/// Any `FnMut(usize, usize, &StepRecord)` closure works via the blanket
/// impl (with a no-op `on_step_end`).
pub trait CohortObserver {
    /// Called once per *active* member per step, in member order, with the
    /// record that member's trace will contain.
    fn on_step(&mut self, member: usize, step: usize, record: &StepRecord);

    /// Called once per step after every active member's `on_step`. Batch
    /// consumers (e.g. pooled monitor sessions) drain their verdicts here.
    fn on_step_end(&mut self, step: usize) {
        let _ = step;
    }
}

impl<F: FnMut(usize, usize, &StepRecord)> CohortObserver for F {
    fn on_step(&mut self, member: usize, step: usize, record: &StepRecord) {
        self(member, step, record)
    }
}

/// Applies per-member sensor-fault injectors in front of another cohort
/// observer — the population analogue of [`crate::faults::FaultedObserver`].
///
/// Each member's injector sees exactly the record sequence that member's
/// per-trace [`FaultInjector`] would see, so a monitor behind this observer
/// receives bit-identical faulted records in batched and scalar runs.
pub struct FaultedCohortObserver<'a> {
    injectors: Vec<FaultInjector>,
    inner: &'a mut dyn CohortObserver,
}

impl<'a> FaultedCohortObserver<'a> {
    /// Wraps `inner` with one injector per cohort member (index-aligned).
    pub fn new(injectors: Vec<FaultInjector>, inner: &'a mut dyn CohortObserver) -> Self {
        Self { injectors, inner }
    }

    /// Builds the injectors from `plan`, keyed to each member's trace
    /// identity exactly like [`FaultPlan::injector_for`], so injected noise
    /// matches a scalar per-trace run of the same plan.
    pub fn for_engine(
        plan: &FaultPlan,
        engine: &CohortEngine,
        inner: &'a mut dyn CohortObserver,
    ) -> Self {
        let label = engine.kind().label();
        let injectors = (0..engine.len())
            .map(|j| {
                let (pid, run) = engine.identity(j);
                plan.injector_for(label, pid, run)
            })
            .collect();
        Self::new(injectors, inner)
    }
}

impl CohortObserver for FaultedCohortObserver<'_> {
    fn on_step(&mut self, member: usize, step: usize, record: &StepRecord) {
        let faulted = self.injectors[member].apply(record);
        self.inner.on_step(member, step, &faulted);
    }

    fn on_step_end(&mut self, step: usize) {
        self.inner.on_step_end(step);
    }
}

/// The per-member controller, matching the paper's simulator pairing.
#[derive(Debug, Clone)]
enum MemberController {
    OpenAps(OpenApsController),
    BasalBolus(BasalBolusController),
}

impl MemberController {
    fn for_kind(kind: SimulatorKind) -> Self {
        match kind {
            SimulatorKind::Glucosym => MemberController::OpenAps(OpenApsController::new()),
            SimulatorKind::T1ds2013 => MemberController::BasalBolus(BasalBolusController::new()),
        }
    }

    fn control(&mut self, obs: &Observation, therapy: &TherapyProfile) -> f64 {
        match self {
            MemberController::OpenAps(c) => c.control(obs, therapy),
            MemberController::BasalBolus(c) => c.control(obs, therapy),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            MemberController::OpenAps(c) => c.name(),
            MemberController::BasalBolus(c) => c.name(),
        }
    }
}

/// Cold per-member trace identity; never touched by the hot step loop
/// (which runs over the engine's dense columns) — only by
/// [`CohortEngine::into_traces`].
#[derive(Debug, Clone)]
struct MemberState {
    patient_id: usize,
    run_id: usize,
    horizon: usize,
    fault: Option<PumpFault>,
}

/// Sparse CGM-fault lane: the engine applies the honest sensor pipeline
/// densely and fixes up the few faulted members afterwards, replicating
/// [`Cgm::measure`]'s fault arm exactly (including the stuck-value latch
/// and its reset outside the window).
#[derive(Debug, Clone)]
struct CgmFaultLane {
    member: usize,
    fault: CgmFault,
    /// The member's CGM internal step counter at push time; its counter at
    /// engine step `t` is `step0 + t` because active members measure at
    /// every step of their (prefix) lifetime.
    step0: usize,
    stuck: Option<f64>,
}

// One instance per engine; boxing would put a pointer dereference in
// front of every hot-path column access.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum SoaState {
    Glucosym(GlucosymSoa),
    T1ds(T1dsSoa),
}

impl SoaState {
    fn new(kind: SimulatorKind) -> Self {
        match kind {
            SimulatorKind::Glucosym => SoaState::Glucosym(GlucosymSoa::default()),
            SimulatorKind::T1ds2013 => SoaState::T1ds(T1dsSoa::default()),
        }
    }

    fn push(&mut self, patient: &CohortPatient) {
        match (self, patient) {
            (SoaState::Glucosym(s), CohortPatient::Glucosym(p)) => s.push(p),
            (SoaState::T1ds(s), CohortPatient::T1ds(p)) => s.push(p),
            _ => panic!("patient kind does not match the engine's simulator"),
        }
    }

    /// Current blood glucose of every lane — same expression as the
    /// scalar models' `bg()`, evaluated densely into `out`.
    fn bg_into(&self, out: &mut [f64]) {
        match self {
            SoaState::Glucosym(s) => out.copy_from_slice(&s.g),
            SoaState::T1ds(s) => {
                for (j, o) in out.iter_mut().enumerate() {
                    *o = s.gp[j] / s.vg[j];
                }
            }
        }
    }

    fn begin_step(&mut self, delivered: &[f64], carbs: &[f64]) {
        match self {
            SoaState::Glucosym(s) => s.begin_step(delivered, carbs),
            SoaState::T1ds(s) => s.begin_step(delivered, carbs),
        }
    }

    fn integrate(&mut self, backend: Backend) {
        match self {
            SoaState::Glucosym(s) => s.integrate(backend),
            SoaState::T1ds(s) => s.integrate(backend),
        }
    }
}

/// Backends whose cohort kernels can run on this machine, scalar first.
///
/// Useful for in-process bit-identity tests across every available kernel
/// (the `CPSMON_SIMD` override is latched once per process, so tests use
/// [`CohortEngine::with_backend`] instead).
pub fn available_backends() -> Vec<Backend> {
    let mut backends = vec![Backend::Scalar];
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            backends.push(Backend::Avx2Fma);
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            backends.push(Backend::Avx512);
        }
    }
    #[cfg(target_arch = "aarch64")]
    backends.push(Backend::Neon);
    backends
}

fn backend_available(backend: Backend) -> bool {
    match backend {
        Backend::Scalar => true,
        _ => available_backends().contains(&backend),
    }
}

/// A batched closed-loop engine over a cohort of patients.
///
/// Build one with [`new`](Self::new) + [`push`](Self::push), from a
/// campaign via [`from_campaign`](Self::from_campaign), or from a sampled
/// population via [`Cohort::engine`]; then either [`run`](Self::run) it to
/// completion or drive it step by step with [`advance`](Self::advance).
#[derive(Debug, Clone)]
pub struct CohortEngine {
    kind: SimulatorKind,
    backend: Backend,
    record: bool,
    step: usize,
    max_horizon: usize,
    members: Vec<MemberState>,
    /// Per-member recorded steps (`records[j]` parallels `members[j]`);
    /// kept out of [`MemberState`] so the recording hot path indexes a
    /// dense array of `Vec` headers instead of walking member structs.
    records: Vec<Vec<StepRecord>>,
    state: SoaState,
    // Dense front-end columns (one lane per member): everything the scalar
    // per-step loop needs, packed contiguously so a step streams a few
    // flat arrays instead of a thousand scattered structs.
    /// Member horizon in steps.
    horizon: Vec<usize>,
    /// The member's therapy profile (controller input).
    therapy: Vec<TherapyProfile>,
    /// `basal_rate / 60 * PUMP_IOB_TAU_MIN`, hoisted out of the step loop
    /// (same expression `ClosedLoop` evaluates every step — bit-identical
    /// because its inputs never change).
    basal_iob: Vec<f64>,
    /// CGM lag coefficient and its precomputed complement `1.0 - lag`
    /// (the same subtraction `Cgm::measure` performs per reading).
    cgm_lag: Vec<f64>,
    cgm_one_minus_lag: Vec<f64>,
    /// CGM lag-filter state; valid once `cgm_primed` (or after step 0).
    cgm_filt: Vec<f64>,
    cgm_primed: Vec<bool>,
    /// Previous sensor reading (trend input); valid after step 0.
    prev_bg: Vec<f64>,
    /// Per-member controllers and pumps (small structs, dense).
    controllers: Vec<MemberController>,
    pumps: Vec<InsulinPump>,
    /// `pumps[j].max_rate`, hoisted: a fault-free
    /// [`InsulinPump::deliver`] is exactly `commanded.clamp(0.0,
    /// max_rate)`, so healthy lanes skip the pump struct entirely.
    pump_max_rate: Vec<f64>,
    /// Whether `pumps[j]` carries a fault plan (the slow `deliver` path).
    pump_has_fault: Vec<bool>,
    /// Start of member `j`'s rows in `carbs_flat` / `noise_flat`.
    front_off: Vec<usize>,
    /// `meals.carbs_at(t)` for `t < horizon`, tabulated at push time so the
    /// hot loop indexes instead of re-scanning the schedule.
    carbs_flat: Vec<f64>,
    /// CGM noise samples for `t < horizon`, prerolled from the member's
    /// sensor stream at push time (the draw is position-dependent only, so
    /// replaying them through the lag filter is bit-identical to drawing
    /// inline — see [`Cgm::draw_noise`]).
    noise_flat: Vec<f64>,
    /// Members whose CGM carries a fault (sparse fix-up list).
    cgm_faults: Vec<CgmFaultLane>,
    /// Pump-firmware IOB estimate per member (SoA lane).
    pump_iob: Vec<f64>,
    /// Scratch: true BG of each member this step (mg/dL).
    bg_true: Vec<f64>,
    /// Scratch: sensor reading of each member this step (mg/dL).
    bg_sensor: Vec<f64>,
    /// Scratch: insulin rate delivered to each member this step (U/h).
    delivered: Vec<f64>,
    /// Scratch: carbs announced to each member this step (g).
    carbs: Vec<f64>,
}

impl CohortEngine {
    /// Creates an empty engine for one simulator family, using the
    /// process-wide SIMD backend (the `CPSMON_SIMD` policy).
    pub fn new(kind: SimulatorKind) -> Self {
        Self {
            kind,
            backend: cpsmon_nn::simd::backend(),
            record: true,
            step: 0,
            max_horizon: 0,
            members: Vec::new(),
            records: Vec::new(),
            state: SoaState::new(kind),
            horizon: Vec::new(),
            therapy: Vec::new(),
            basal_iob: Vec::new(),
            cgm_lag: Vec::new(),
            cgm_one_minus_lag: Vec::new(),
            cgm_filt: Vec::new(),
            cgm_primed: Vec::new(),
            prev_bg: Vec::new(),
            controllers: Vec::new(),
            pumps: Vec::new(),
            pump_max_rate: Vec::new(),
            pump_has_fault: Vec::new(),
            front_off: Vec::new(),
            carbs_flat: Vec::new(),
            noise_flat: Vec::new(),
            cgm_faults: Vec::new(),
            pump_iob: Vec::new(),
            bg_true: Vec::new(),
            bg_sensor: Vec::new(),
            delivered: Vec::new(),
            carbs: Vec::new(),
        }
    }

    /// Overrides the SIMD backend (for tests and benchmarks).
    ///
    /// # Panics
    ///
    /// Panics if the requested backend's kernels cannot run on this CPU.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        assert!(
            backend_available(backend),
            "backend {} not available on this CPU",
            backend.label()
        );
        self.backend = backend;
        self
    }

    /// Disables (or re-enables) trace recording. With recording off the
    /// engine can be advanced indefinitely at steady memory — the mode
    /// throughput benchmarks use. [`into_traces`](Self::into_traces) then
    /// returns traces with empty record lists.
    pub fn set_recording(&mut self, record: bool) {
        self.record = record;
    }

    /// Adds one member to the cohort, packing its patient into the SoA
    /// buffers.
    ///
    /// # Panics
    ///
    /// Panics if the patient's simulator family does not match the
    /// engine's, or if the engine has already been stepped — the cohort
    /// must be fully assembled before the first [`advance`](Self::advance)
    /// (member lifetimes are horizon prefixes of the engine's step clock).
    pub fn push(&mut self, patient: impl Into<CohortPatient>, member: CohortMember) {
        let patient = patient.into();
        assert_eq!(
            patient.kind(),
            self.kind,
            "patient kind does not match the engine's simulator"
        );
        assert_eq!(self.step, 0, "members must be pushed before stepping");
        self.state.push(&patient);
        let j = self.members.len();
        let fault = member.pump.fault().copied();
        let therapy = *patient.therapy();
        self.members.push(MemberState {
            patient_id: member.patient_id,
            run_id: member.run_id,
            horizon: member.steps,
            fault,
        });
        self.records.push(Vec::new());
        self.max_horizon = self.max_horizon.max(member.steps);
        self.horizon.push(member.steps);
        self.therapy.push(therapy);
        self.basal_iob
            .push(therapy.basal_rate / 60.0 * PUMP_IOB_TAU_MIN);
        // Unpack the member's CGM into dense columns (+ a sparse fault
        // lane), prerolling its noise stream over the whole horizon.
        let mut cgm = member.cgm;
        self.cgm_lag.push(cgm.lag());
        self.cgm_one_minus_lag.push(1.0 - cgm.lag());
        self.cgm_filt.push(cgm.filter_state().unwrap_or(0.0));
        self.cgm_primed.push(cgm.filter_state().is_some());
        if let Some(cgm_fault) = cgm.fault() {
            self.cgm_faults.push(CgmFaultLane {
                member: j,
                fault: cgm_fault,
                step0: cgm.steps_taken(),
                stuck: cgm.stuck_reading(),
            });
        }
        self.front_off.push(self.carbs_flat.len());
        self.carbs_flat
            .extend((0..member.steps).map(|t| member.meals.carbs_at(t)));
        self.noise_flat.extend(cgm.draw_noise(member.steps));
        self.prev_bg.push(0.0);
        self.controllers.push(MemberController::for_kind(self.kind));
        self.pump_max_rate.push(member.pump.max_rate);
        self.pump_has_fault.push(member.pump.fault().is_some());
        self.pumps.push(member.pump);
        self.pump_iob.push(0.0);
        self.bg_true.push(0.0);
        self.bg_sensor.push(0.0);
        self.delivered.push(0.0);
        self.carbs.push(0.0);
    }

    /// Number of cohort members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cohort is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The engine's simulator family.
    pub fn kind(&self) -> SimulatorKind {
        self.kind
    }

    /// The SIMD backend the integration kernels run on.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// `(patient_id, run_id)` of member `j`.
    pub fn identity(&self, member: usize) -> (usize, usize) {
        let m = &self.members[member];
        (m.patient_id, m.run_id)
    }

    /// Steps advanced so far.
    pub fn steps_done(&self) -> usize {
        self.step
    }

    /// The longest member horizon (the step count [`run`](Self::run) runs
    /// to).
    pub fn horizon(&self) -> usize {
        self.members.iter().map(|m| m.horizon).max().unwrap_or(0)
    }

    /// Advances the whole cohort by one 5-minute step, invoking `observer`
    /// for every active member. Returns `false` once every member is past
    /// its horizon (in which case no state moved).
    ///
    /// Per member the step performs exactly the
    /// [`crate::engine::ClosedLoop`] cycle — CGM → controller → pump →
    /// record → observer — scalar and in member order (CGM noise is an
    /// inherently sequential RNG draw); the `SUBSTEPS` Euler substeps and
    /// pump-IOB updates then advance all members in one fused pass through
    /// the SoA kernels.
    pub fn advance(&mut self, observer: &mut dyn CohortObserver) -> bool {
        self.advance_inner(observer)
    }

    /// Generic body of [`advance`](Self::advance) — monomorphized for
    /// concrete observers (e.g. [`run`](Self::run)'s no-op) so the observer
    /// call disappears instead of costing an indirect call per member-step.
    fn advance_inner<O: CohortObserver + ?Sized>(&mut self, observer: &mut O) -> bool {
        let step = self.step;
        if step >= self.max_horizon {
            // Every member is past its horizon: no state moves.
            return false;
        }
        let n = self.members.len();
        if self.record && step == 0 {
            // One exact allocation per member up front instead of a
            // realloc ladder per push (`Vec::clone` does not carry spare
            // capacity, so cloned engines re-reserve here, not in `push`).
            for (r, &h) in self.records.iter_mut().zip(&self.horizon) {
                r.reserve_exact(h);
            }
        }
        // Pass 1: true BG of every lane, densely.
        self.state.bg_into(&mut self.bg_true);
        // Pass 2: honest sensor pipeline, densely — the expressions
        // replicate `Cgm::measure` bit for bit. At step 0 an unprimed
        // filter passes the true BG through; afterwards every filter is
        // primed, so the loop splits on the step instead of per member.
        // All columns are re-sliced to length `n` so the loops index
        // without bounds checks.
        {
            let horizon = &self.horizon[..n];
            let bg_true = &self.bg_true[..n];
            let cgm_lag = &self.cgm_lag[..n];
            let oml = &self.cgm_one_minus_lag[..n];
            let cgm_filt = &mut self.cgm_filt[..n];
            let bg_sensor = &mut self.bg_sensor[..n];
            let front_off = &self.front_off[..n];
            let noise = self.noise_flat.as_slice();
            if step == 0 {
                let primed = &self.cgm_primed[..n];
                for j in 0..n {
                    if horizon[j] == 0 {
                        continue;
                    }
                    let bt = bg_true[j];
                    let filtered = if primed[j] {
                        cgm_lag[j] * cgm_filt[j] + oml[j] * bt
                    } else {
                        bt
                    };
                    cgm_filt[j] = filtered;
                    bg_sensor[j] = (filtered + noise[front_off[j]]).max(1.0);
                }
            } else {
                for j in 0..n {
                    if step >= horizon[j] {
                        continue;
                    }
                    let bt = bg_true[j];
                    let filtered = cgm_lag[j] * cgm_filt[j] + oml[j] * bt;
                    cgm_filt[j] = filtered;
                    bg_sensor[j] = (filtered + noise[front_off[j] + step]).max(1.0);
                }
            }
        }
        // Pass 2b: sparse CGM-fault fix-up, mirroring `Cgm::measure`'s
        // fault arm (including the stuck latch and its reset outside the
        // window; `cstep` is the sensor's own reading counter).
        for lane in &mut self.cgm_faults {
            let j = lane.member;
            if step >= self.horizon[j] {
                continue;
            }
            let honest = self.bg_sensor[j];
            let cstep = lane.step0 + step;
            if !lane.fault.active_at(cstep) {
                lane.stuck = None;
                continue;
            }
            self.bg_sensor[j] = match lane.fault.kind {
                CgmFaultKind::Bias { offset } => (honest + offset).max(1.0),
                CgmFaultKind::Drift { per_step } => {
                    (honest + per_step * (cstep - lane.fault.start_step + 1) as f64).max(1.0)
                }
                CgmFaultKind::StuckValue => *lane.stuck.get_or_insert(honest),
            };
        }
        // Pass 3: trend → controller → pump → record → observer, scalar
        // and in member order — exactly the `ClosedLoop` cycle.
        {
            let horizon = &self.horizon[..n];
            let bg_true = &self.bg_true[..n];
            let bg_sensor_col = &self.bg_sensor[..n];
            let prev_bg = &mut self.prev_bg[..n];
            let front_off = &self.front_off[..n];
            let carbs_flat = self.carbs_flat.as_slice();
            let pump_iob = &self.pump_iob[..n];
            let basal_iob = &self.basal_iob[..n];
            let therapy = &self.therapy[..n];
            let controllers = &mut self.controllers[..n];
            let pumps = &mut self.pumps[..n];
            let pump_max_rate = &self.pump_max_rate[..n];
            let pump_has_fault = &self.pump_has_fault[..n];
            let delivered_col = &mut self.delivered[..n];
            let carbs_col = &mut self.carbs[..n];
            let records = &mut self.records[..n];
            let record_on = self.record;
            for j in 0..n {
                if step >= horizon[j] {
                    // Drop-out lane: keep integrating with zero
                    // insulin/carbs contributions suppressed by delivering
                    // nothing new.
                    delivered_col[j] = 0.0;
                    carbs_col[j] = 0.0;
                    continue;
                }
                let bg_sensor = bg_sensor_col[j];
                let bg_trend = if step == 0 {
                    0.0
                } else {
                    bg_sensor - prev_bg[j]
                };
                prev_bg[j] = bg_sensor;
                let carbs = carbs_flat[front_off[j] + step];
                let iob_estimate = pump_iob[j];
                let obs = Observation {
                    bg: bg_sensor,
                    bg_trend,
                    iob: iob_estimate - basal_iob[j],
                    announced_carbs: carbs,
                };
                let commanded = controllers[j].control(&obs, &therapy[j]);
                let delivered = if pump_has_fault[j] {
                    pumps[j].deliver(step, commanded)
                } else {
                    // Fault-free `InsulinPump::deliver` is exactly this
                    // clamp; healthy lanes skip the pump struct.
                    commanded.clamp(0.0, pump_max_rate[j])
                };
                let record = StepRecord {
                    bg_true: bg_true[j],
                    bg_sensor,
                    iob: iob_estimate,
                    commanded_rate: commanded,
                    delivered_rate: delivered,
                    carbs,
                };
                observer.on_step(j, step, &record);
                if record_on {
                    records[j].push(record);
                }
                delivered_col[j] = delivered;
                carbs_col[j] = carbs;
            }
        }
        observer.on_step_end(step);
        self.state.begin_step(&self.delivered, &self.carbs);
        self.state.integrate(self.backend);
        // Pump-firmware IOB: same per-substep recurrence as ClosedLoop,
        // fused per member (members are independent, so interchanging the
        // substep and member loops is bit-transparent).
        {
            let delivered = &self.delivered[..n];
            let pump_iob = &mut self.pump_iob[..n];
            for j in 0..n {
                let iob_d = delivered[j] / 60.0 * DT;
                let mut io = pump_iob[j];
                for _ in 0..SUBSTEPS {
                    io += iob_d;
                    io -= io * PUMP_IOB_DECAY;
                    io = if io < 0.0 { 0.0 } else { io };
                }
                pump_iob[j] = io;
            }
        }
        self.step += 1;
        true
    }

    /// Runs every member to its horizon and returns the traces, invoking
    /// `observer` throughout (monitor-in-the-loop over the whole cohort).
    pub fn run_observed(mut self, observer: &mut dyn CohortObserver) -> Vec<SimTrace> {
        while self.advance_inner(observer) {}
        self.into_traces()
    }

    /// Runs every member to its horizon and returns the traces, in push
    /// order.
    pub fn run(mut self) -> Vec<SimTrace> {
        struct Noop;
        impl CohortObserver for Noop {
            #[inline]
            fn on_step(&mut self, _member: usize, _step: usize, _record: &StepRecord) {}
        }
        let mut noop = Noop;
        while self.advance_inner(&mut noop) {}
        self.into_traces()
    }

    /// Consumes the engine, yielding one trace per member in push order.
    pub fn into_traces(self) -> Vec<SimTrace> {
        let label = self.kind.label();
        let controller = MemberController::for_kind(self.kind).name();
        self.members
            .into_iter()
            .zip(self.records)
            .map(|(m, records)| {
                SimTrace::new(label, controller, m.patient_id, m.run_id, m.fault, records)
            })
            .collect()
    }

    /// Builds the batched equivalent of [`CampaignConfig::run`]: same
    /// patients, meal schedules, CGM streams, and fault draws, forked from
    /// the campaign seed in the identical order, so
    /// [`run`](Self::run) reproduces `cfg.run()` bit for bit.
    pub fn from_campaign(cfg: &CampaignConfig) -> Self {
        let mut engine = Self::new(cfg.kind);
        let mut root = SmallRng::new(cfg.seed ^ CAMPAIGN_SALT);
        for pid in 0..cfg.patients {
            let proto: CohortPatient = match cfg.kind {
                SimulatorKind::Glucosym => GlucosymPatient::from_profile(pid, cfg.seed).into(),
                SimulatorKind::T1ds2013 => T1dsPatient::calibrated(pid, cfg.seed).into(),
            };
            for run in 0..cfg.runs_per_patient {
                let mut rng = root.fork((pid * 10_007 + run) as u64);
                let meals = MealSchedule::generate(cfg.steps, &mut rng);
                let cgm = Cgm::typical(rng.fork(1));
                let basal = proto.therapy().basal_rate;
                let fault = rng
                    .bernoulli(cfg.fault_ratio)
                    .then(|| PumpFault::sample(cfg.steps, basal, &mut rng));
                let pump = match fault {
                    Some(f) => InsulinPump::with_fault(f),
                    None => InsulinPump::healthy(),
                };
                engine.push(
                    proto.clone(),
                    CohortMember {
                        patient_id: pid,
                        run_id: run,
                        cgm,
                        pump,
                        meals,
                        steps: cfg.steps,
                    },
                );
            }
        }
        engine
    }
}

/// One latin-hypercube axis: a seeded stratum permutation plus intra-stratum
/// jitter, both forked from `root` so the draw for dimension `dim` is
/// independent of every other dimension and of cohort iteration order.
fn lhs_axis(root: &mut SmallRng, dim: u64, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    let mut perm: Vec<usize> = (0..n).collect();
    let mut prng = root.fork(dim * 2);
    for i in (1..n).rev() {
        let k = prng.index(i + 1);
        perm.swap(i, k);
    }
    let mut jrng = root.fork(dim * 2 + 1);
    (0..n)
        .map(|j| {
            let u = jrng.uniform_range(0.0, 1.0);
            lo + (perm[j] as f64 + u) * (hi - lo) / n as f64
        })
        .collect()
}

/// A seeded population of virtual patients, sampled by latin-hypercube over
/// the same physiological ranges as the 20-profile paper cohorts — but
/// scaling to thousands of members with even coverage of every parameter
/// axis.
///
/// ```
/// use cpsmon_sim::{Cohort, SimulatorKind};
///
/// let cohort = Cohort::sample(SimulatorKind::Glucosym, 9, 8);
/// let traces = cohort.engine(12, 9, 0.0).run();
/// assert_eq!(traces.len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct Cohort {
    kind: SimulatorKind,
    patients: Vec<CohortPatient>,
}

impl Cohort {
    /// Samples `n` patients deterministically from `seed`.
    ///
    /// Every parameter axis is stratified into `n` bins (latin hypercube)
    /// with uniform jitter inside each bin, over the ranges of
    /// [`GlucosymParams::profile`] / [`T1dsParams::profile`] — so the
    /// cohort covers the plausible physiological box instead of clustering
    /// around it. T1DS basal rates are calibrated per member (bisection to
    /// the member's `gb`), which makes T1DS sampling markedly slower than
    /// Glucosym sampling.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample(kind: SimulatorKind, seed: u64, n: usize) -> Self {
        assert!(n > 0, "cohort size must be positive");
        let patients = match kind {
            SimulatorKind::Glucosym => Self::sample_glucosym(seed, n),
            SimulatorKind::T1ds2013 => Self::sample_t1ds(seed, n),
        };
        Self { kind, patients }
    }

    fn sample_glucosym(seed: u64, n: usize) -> Vec<CohortPatient> {
        let mut root = SmallRng::new(seed ^ COHORT_SALT);
        let p1 = lhs_axis(&mut root, 0, n, 0.02, 0.035);
        let p2 = lhs_axis(&mut root, 1, n, 0.02, 0.03);
        let p3 = lhs_axis(&mut root, 2, n, 2.2e-5, 3.4e-5);
        let nn = lhs_axis(&mut root, 3, n, 0.08, 0.10);
        let gb = lhs_axis(&mut root, 4, n, 110.0, 150.0);
        let vi = lhs_axis(&mut root, 5, n, 11.0, 13.0);
        let vg = lhs_axis(&mut root, 6, n, 100.0, 140.0);
        let ka = lhs_axis(&mut root, 7, n, 0.015, 0.025);
        let iob_tau = lhs_axis(&mut root, 8, n, 100.0, 140.0);
        let basal = lhs_axis(&mut root, 9, n, 0.6, 1.6);
        let isf = lhs_axis(&mut root, 10, n, 35.0, 65.0);
        let carb_ratio = lhs_axis(&mut root, 11, n, 8.0, 15.0);
        (0..n)
            .map(|j| {
                let params = GlucosymParams {
                    p1: p1[j],
                    p2: p2[j],
                    p3: p3[j],
                    n: nn[j],
                    gb: gb[j],
                    vi: vi[j],
                    vg: vg[j],
                    ka: ka[j],
                    f: 0.9,
                    iob_tau: iob_tau[j],
                };
                let therapy = TherapyProfile {
                    basal_rate: basal[j],
                    isf: isf[j],
                    carb_ratio: carb_ratio[j],
                    target_bg: 120.0,
                };
                GlucosymPatient::new(params, therapy).into()
            })
            .collect()
    }

    fn sample_t1ds(seed: u64, n: usize) -> Vec<CohortPatient> {
        let mut root = SmallRng::new(seed ^ COHORT_SALT);
        // center * (1 ± spread), the ranges of `T1dsParams::profile`.
        let c = |center: f64, spread: f64| (center * (1.0 - spread), center * (1.0 + spread));
        let mut dim = 0u64;
        let mut axis = |root: &mut SmallRng, (lo, hi): (f64, f64)| {
            let a = lhs_axis(root, dim, n, lo, hi);
            dim += 1;
            a
        };
        let bw = axis(&mut root, (55.0, 95.0));
        let vg = axis(&mut root, c(1.88, 0.10));
        let k1 = axis(&mut root, c(0.065, 0.15));
        let k2 = axis(&mut root, c(0.079, 0.15));
        let kp1 = axis(&mut root, c(2.90, 0.10));
        let kp2 = axis(&mut root, c(0.0021, 0.15));
        let kp3 = axis(&mut root, c(0.012, 0.15));
        let ki = axis(&mut root, c(0.0079, 0.15));
        let vm0 = axis(&mut root, c(0.80, 0.15));
        let vmx = axis(&mut root, c(0.060, 0.25));
        let km0 = axis(&mut root, c(225.59, 0.10));
        let p2u = axis(&mut root, c(0.0331, 0.15));
        let m1 = axis(&mut root, c(0.190, 0.10));
        let m2 = axis(&mut root, c(0.484, 0.10));
        let m3 = axis(&mut root, c(0.277, 0.10));
        let m4 = axis(&mut root, c(0.194, 0.10));
        let kd = axis(&mut root, c(0.0164, 0.15));
        let ka1 = axis(&mut root, c(0.0018, 0.15));
        let ka2 = axis(&mut root, c(0.0182, 0.15));
        let vi = axis(&mut root, c(0.05, 0.10));
        let kgri = axis(&mut root, c(0.0558, 0.15));
        let kempt = axis(&mut root, c(0.035, 0.20));
        let kabs = axis(&mut root, c(0.057, 0.20));
        let iob_tau = axis(&mut root, (100.0, 140.0));
        let gb = axis(&mut root, (110.0, 145.0));
        let isf = axis(&mut root, (35.0, 65.0));
        let carb_ratio = axis(&mut root, (8.0, 15.0));
        (0..n)
            .map(|j| {
                let params = T1dsParams {
                    bw: bw[j],
                    vg: vg[j],
                    k1: k1[j],
                    k2: k2[j],
                    kp1: kp1[j],
                    kp2: kp2[j],
                    kp3: kp3[j],
                    ki: ki[j],
                    fsnc: 1.0,
                    vm0: vm0[j],
                    vmx: vmx[j],
                    km0: km0[j],
                    p2u: p2u[j],
                    m1: m1[j],
                    m2: m2[j],
                    m3: m3[j],
                    m4: m4[j],
                    kd: kd[j],
                    ka1: ka1[j],
                    ka2: ka2[j],
                    vi: vi[j],
                    ke1: 0.0005,
                    ke2: 339.0,
                    kgri: kgri[j],
                    kempt: kempt[j],
                    kabs: kabs[j],
                    f: 0.90,
                    iob_tau: iob_tau[j],
                    gb: gb[j],
                };
                let therapy = TherapyProfile {
                    basal_rate: 1.0, // calibrated below
                    isf: isf[j],
                    carb_ratio: carb_ratio[j],
                    target_bg: 120.0,
                };
                T1dsPatient::calibrated_from(params, therapy).into()
            })
            .collect()
    }

    /// The simulator family of every member.
    pub fn kind(&self) -> SimulatorKind {
        self.kind
    }

    /// Cohort size.
    pub fn len(&self) -> usize {
        self.patients.len()
    }

    /// Whether the cohort is empty (never true for sampled cohorts).
    pub fn is_empty(&self) -> bool {
        self.patients.is_empty()
    }

    /// The sampled patients.
    pub fn patients(&self) -> &[CohortPatient] {
        &self.patients
    }

    /// Equips the cohort for a closed-loop run — meals, CGM streams, and
    /// pump-fault draws forked per member like a campaign's — and returns
    /// the ready engine. Member `j` gets `patient_id = j`, `run_id = 0`.
    pub fn engine(&self, steps: usize, seed: u64, fault_ratio: f64) -> CohortEngine {
        assert!(steps > 0, "steps must be positive");
        assert!(
            (0.0..=1.0).contains(&fault_ratio),
            "fault_ratio must be in [0,1]"
        );
        let mut engine = CohortEngine::new(self.kind);
        let mut root = SmallRng::new(seed ^ CAMPAIGN_SALT);
        for (j, patient) in self.patients.iter().enumerate() {
            let mut rng = root.fork((j * 10_007) as u64);
            let meals = MealSchedule::generate(steps, &mut rng);
            let cgm = Cgm::typical(rng.fork(1));
            let basal = patient.therapy().basal_rate;
            let fault = rng
                .bernoulli(fault_ratio)
                .then(|| PumpFault::sample(steps, basal, &mut rng));
            let pump = match fault {
                Some(f) => InsulinPump::with_fault(f),
                None => InsulinPump::healthy(),
            };
            engine.push(
                patient.clone(),
                CohortMember {
                    patient_id: j,
                    run_id: 0,
                    cgm,
                    pump,
                    meals,
                    steps,
                },
            );
        }
        engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Asserts two traces are equal *bitwise* on every recorded float —
    /// stricter than `PartialEq` (which would treat `-0.0 == 0.0`).
    fn assert_traces_bit_identical(batched: &[SimTrace], scalar: &[SimTrace]) {
        assert_eq!(batched.len(), scalar.len());
        for (b, s) in batched.iter().zip(scalar) {
            assert_eq!(b.simulator, s.simulator);
            assert_eq!(b.controller, s.controller);
            assert_eq!(b.patient_id, s.patient_id);
            assert_eq!(b.run_id, s.run_id);
            assert_eq!(b.fault, s.fault);
            assert_eq!(b.len(), s.len());
            for (t, (rb, rs)) in b.records().iter().zip(s.records()).enumerate() {
                for (name, vb, vs) in [
                    ("bg_true", rb.bg_true, rs.bg_true),
                    ("bg_sensor", rb.bg_sensor, rs.bg_sensor),
                    ("iob", rb.iob, rs.iob),
                    ("commanded_rate", rb.commanded_rate, rs.commanded_rate),
                    ("delivered_rate", rb.delivered_rate, rs.delivered_rate),
                    ("carbs", rb.carbs, rs.carbs),
                ] {
                    assert_eq!(
                        vb.to_bits(),
                        vs.to_bits(),
                        "patient {} run {} step {t} field {name}: {vb} != {vs}",
                        b.patient_id,
                        b.run_id,
                    );
                }
            }
        }
    }

    #[test]
    fn glucosym_campaign_batched_matches_scalar_bitwise() {
        let cfg = CampaignConfig::new(SimulatorKind::Glucosym)
            .patients(2)
            .runs_per_patient(3)
            .steps(48)
            .seed(11);
        assert_traces_bit_identical(&cfg.run_batched(), &cfg.run());
    }

    #[test]
    fn t1ds_campaign_batched_matches_scalar_bitwise() {
        let cfg = CampaignConfig::new(SimulatorKind::T1ds2013)
            .patients(1)
            .runs_per_patient(3)
            .steps(48)
            .seed(13);
        assert_traces_bit_identical(&cfg.run_batched(), &cfg.run());
    }

    #[test]
    fn every_available_backend_is_bit_identical() {
        let cfg = CampaignConfig::new(SimulatorKind::Glucosym)
            .patients(2)
            .runs_per_patient(5) // 10 members: full AVX-512 lane + tail
            .steps(36)
            .seed(17);
        let reference = CohortEngine::from_campaign(&cfg)
            .with_backend(Backend::Scalar)
            .run();
        for backend in available_backends() {
            let traces = CohortEngine::from_campaign(&cfg)
                .with_backend(backend)
                .run();
            assert_traces_bit_identical(&traces, &reference);
        }
    }

    #[test]
    fn ragged_horizons_match_separate_scalar_runs() {
        // Three members with different horizons; each must reproduce its
        // own standalone ClosedLoop run exactly even though the cohort
        // keeps stepping after the short members finish.
        let horizons = [10usize, 31, 24];
        let mut engine = CohortEngine::new(SimulatorKind::Glucosym);
        let mut scalar = Vec::new();
        for (i, &h) in horizons.iter().enumerate() {
            let patient = GlucosymPatient::from_profile(i, 5);
            let mut rng = SmallRng::new(99).fork(i as u64);
            let meals = MealSchedule::generate(h, &mut rng);
            let cgm = Cgm::typical(rng.fork(1));
            engine.push(
                patient.clone(),
                CohortMember {
                    patient_id: i,
                    run_id: 0,
                    cgm: cgm.clone(),
                    pump: InsulinPump::healthy(),
                    meals: meals.clone(),
                    steps: h,
                },
            );
            scalar.push(
                crate::engine::ClosedLoop::new(
                    patient,
                    OpenApsController::new(),
                    InsulinPump::healthy(),
                    cgm,
                    meals,
                )
                .run(h, "glucosym", i, 0),
            );
        }
        assert_traces_bit_identical(&engine.run(), &scalar);
    }

    #[test]
    fn observer_sees_each_active_member_once_per_step() {
        let cfg = CampaignConfig::new(SimulatorKind::Glucosym)
            .patients(1)
            .runs_per_patient(3)
            .steps(12)
            .seed(3);
        let mut seen: Vec<(usize, usize)> = Vec::new();
        let mut ends = 0usize;
        struct Obs<'a> {
            seen: &'a mut Vec<(usize, usize)>,
            ends: &'a mut usize,
        }
        impl CohortObserver for Obs<'_> {
            fn on_step(&mut self, member: usize, step: usize, _r: &StepRecord) {
                self.seen.push((member, step));
            }
            fn on_step_end(&mut self, _step: usize) {
                *self.ends += 1;
            }
        }
        let traces = CohortEngine::from_campaign(&cfg).run_observed(&mut Obs {
            seen: &mut seen,
            ends: &mut ends,
        });
        assert_eq!(traces.len(), 3);
        assert_eq!(seen.len(), 3 * 12);
        assert_eq!(ends, 12);
        for step in 0..12 {
            for member in 0..3 {
                assert_eq!(seen[step * 3 + member], (member, step));
            }
        }
    }

    #[test]
    fn recording_toggle_empties_traces_but_keeps_dynamics() {
        let cfg = CampaignConfig::new(SimulatorKind::Glucosym)
            .patients(1)
            .runs_per_patient(2)
            .steps(10)
            .seed(21);
        let mut engine = CohortEngine::from_campaign(&cfg);
        engine.set_recording(false);
        let mut last_bg = Vec::new();
        let mut obs = |_m: usize, _s: usize, r: &StepRecord| last_bg.push(r.bg_true);
        let traces = engine.run_observed(&mut obs);
        assert!(traces.iter().all(|t| t.records().is_empty()));
        // Observer still saw live records.
        assert_eq!(last_bg.len(), 2 * 10);
        let recorded: Vec<f64> = cfg
            .run()
            .iter()
            .flat_map(|t| t.records().iter().map(|r| r.bg_true))
            .collect();
        // Same dynamics, interleaved member-major per step vs run-major:
        // just compare as multisets of bits.
        let mut a: Vec<u64> = last_bg.iter().map(|v| v.to_bits()).collect();
        let mut b: Vec<u64> = recorded.iter().map(|v| v.to_bits()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn cohort_sampler_is_deterministic_and_in_bounds() {
        let a = Cohort::sample(SimulatorKind::Glucosym, 42, 16);
        let b = Cohort::sample(SimulatorKind::Glucosym, 42, 16);
        assert_eq!(a.len(), 16);
        for (pa, pb) in a.patients().iter().zip(b.patients()) {
            match (pa, pb) {
                (CohortPatient::Glucosym(x), CohortPatient::Glucosym(y)) => {
                    assert_eq!(x.params(), y.params());
                    assert_eq!(x.therapy(), y.therapy());
                }
                _ => panic!("wrong kind"),
            }
        }
        for p in a.patients() {
            let CohortPatient::Glucosym(p) = p else {
                panic!("wrong kind")
            };
            let prm = p.params();
            assert!((0.02..=0.035).contains(&prm.p1));
            assert!((110.0..=150.0).contains(&prm.gb));
            assert!((100.0..=140.0).contains(&prm.vg));
            assert!((0.6..=1.6).contains(&p.therapy().basal_rate));
        }
    }

    #[test]
    fn lhs_covers_each_stratum_once() {
        let n = 10;
        let mut root = SmallRng::new(7 ^ COHORT_SALT);
        let axis = lhs_axis(&mut root, 0, n, 0.0, 1.0);
        let mut strata: Vec<usize> = axis
            .iter()
            .map(|v| ((v * n as f64).floor() as usize).min(n - 1))
            .collect();
        strata.sort_unstable();
        assert_eq!(strata, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn t1ds_sampled_cohort_is_calibrated() {
        let cohort = Cohort::sample(SimulatorKind::T1ds2013, 8, 4);
        for p in cohort.patients() {
            let CohortPatient::T1ds(p) = p else {
                panic!("wrong kind")
            };
            // Calibration targets bg == gb at basal equilibrium.
            assert!(
                (p.bg() - p.params().gb).abs() < 5.0,
                "bg {} far from gb {}",
                p.bg(),
                p.params().gb
            );
        }
    }

    #[test]
    fn faulted_cohort_observer_matches_scalar_injectors() {
        use crate::faults::{FaultModel, SensorChannel};
        let cfg = CampaignConfig::new(SimulatorKind::Glucosym)
            .patients(2)
            .runs_per_patient(2)
            .steps(24)
            .seed(31);
        let plan = FaultPlan::new(77).with(crate::faults::ChannelFault::new(
            SensorChannel::BgSensor,
            FaultModel::Spike { magnitude: 25.0 },
            4,
            12,
        ));
        // Batched: collect faulted records per member.
        let engine = CohortEngine::from_campaign(&cfg);
        let mut batched: Vec<Vec<StepRecord>> = vec![Vec::new(); engine.len()];
        {
            let mut sink = |m: usize, _s: usize, r: &StepRecord| batched[m].push(*r);
            let mut faulted = FaultedCohortObserver::for_engine(&plan, &engine, &mut sink);
            engine.run_observed(&mut faulted);
        }
        // Scalar: inject each trace post-hoc with the same plan.
        for (m, trace) in cfg.run().iter().enumerate() {
            let injected = plan.inject(trace);
            assert_eq!(&batched[m], injected.records(), "member {m}");
        }
    }
}
