//! AVX2 / AVX-512 integration kernels for the cohort SoA state.
//!
//! Each kernel advances a batch of lanes through a whole control step —
//! all [`SUBSTEPS`] Euler substeps — using one of two schedules chosen
//! by model size:
//!
//! * **Glucosym** (6 state + 13 parameter columns): the substep loop is
//!   outermost over an L1-resident tile of vector blocks. Each block's
//!   substep is a short dependency chain, so sweeping independent blocks
//!   back to back lets the out-of-order core overlap several chains,
//!   and the tile's columns stay in L1 between substeps.
//! * **T1DS2013** (13 state + ~35 parameter columns): per-substep μop
//!   count is too large for cross-block overlap to survive the
//!   scheduler window, so instead state and parameters are hoisted into
//!   registers (spilling the excess to one stack frame) across a fused
//!   substep loop, and a const-generic `P` interleaves the dependency
//!   chains of `P` blocks through that loop.
//!
//! Either reordering is bit-transparent: patients are independent within
//! a step, so each lane still sees exactly the per-patient integrator's
//! op sequence.
//!
//! Every kernel mirrors the batched scalar kernel in [`super::soa`]
//! operation for operation with element-wise IEEE-754 intrinsics:
//!
//! * only `vaddpd`/`vsubpd`/`vmulpd`/`vdivpd` — **no FMA**, because the
//!   scalar integrators never contract multiply-adds;
//! * negation is a sign-bit XOR (exact, like Rust's unary `-`);
//! * `f64::max(v, w)` floors become `cmp_lt` + blend (`v < w ? w : v`),
//!   which matches `maxnum` for the finite states these dynamics produce
//!   (the floors keep every compartment non-negative and finite);
//! * the IOB clamp `if iob < 0.0 { 0.0 }` becomes `cmp_lt` + blend to zero.
//!
//! Lanes are packed from contiguous SoA columns with unaligned loads; the
//! caller hands each kernel a whole-blocks lane count and routes the
//! ragged tail through the batched scalar kernel.
#![cfg(target_arch = "x86_64")]
#![allow(unsafe_op_in_unsafe_fn)]

use super::soa::{GlucosymSoa, T1dsSoa, DT};
use crate::patient::SUBSTEPS;
use core::arch::x86_64::*;

/// One full Glucosym control step (all substeps) for lanes
/// `j0..j0 + lanes`.
///
/// # Safety
///
/// Requires AVX2, `lanes % 4 == 0`, and `j0 + lanes <= s.len()`.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn glucosym_step_avx2(s: &mut GlucosymSoa, j0: usize, lanes: usize) {
    macro_rules! ld {
        ($f:ident, $j:expr) => {
            _mm256_loadu_pd(s.$f.as_ptr().add($j))
        };
    }
    macro_rules! st {
        ($f:ident, $j:expr, $v:expr) => {
            _mm256_storeu_pd(s.$f.as_mut_ptr().add($j), $v)
        };
    }
    macro_rules! vmax {
        ($v:expr, $w:expr) => {{
            let v = $v;
            let w = $w;
            _mm256_blendv_pd(v, w, _mm256_cmp_pd::<_CMP_LT_OQ>(v, w))
        }};
    }
    let dt = _mm256_set1_pd(DT);
    let zero = _mm256_setzero_pd();
    let g_floor = _mm256_set1_pd(10.0);
    for _ in 0..SUBSTEPS {
        let mut j = j0;
        while j < j0 + lanes {
            let g = ld!(g, j);
            let x = ld!(x, j);
            let i = ld!(i, j);
            let q1 = ld!(q1, j);
            let q2 = ld!(q2, j);
            let iob = ld!(iob, j);
            let i_ib = _mm256_sub_pd(i, ld!(ib, j));
            let ra = _mm256_mul_pd(ld!(fka, j), q2);
            let dg = _mm256_add_pd(
                _mm256_sub_pd(
                    _mm256_mul_pd(ld!(neg_p1, j), _mm256_sub_pd(g, ld!(gb, j))),
                    _mm256_mul_pd(x, g),
                ),
                _mm256_div_pd(ra, ld!(vg, j)),
            );
            let dx = _mm256_add_pd(
                _mm256_mul_pd(ld!(neg_p2, j), x),
                _mm256_mul_pd(ld!(p3, j), i_ib),
            );
            let di = _mm256_add_pd(_mm256_mul_pd(ld!(neg_n, j), i_ib), ld!(u_term, j));
            let dq1 = _mm256_mul_pd(ld!(neg_ka, j), q1);
            let dq2 = _mm256_mul_pd(ld!(ka, j), _mm256_sub_pd(q1, q2));
            st!(
                g,
                j,
                vmax!(_mm256_add_pd(g, _mm256_mul_pd(dg, dt)), g_floor)
            );
            st!(x, j, _mm256_add_pd(x, _mm256_mul_pd(dx, dt)));
            st!(i, j, vmax!(_mm256_add_pd(i, _mm256_mul_pd(di, dt)), zero));
            st!(
                q1,
                j,
                vmax!(_mm256_add_pd(q1, _mm256_mul_pd(dq1, dt)), zero)
            );
            st!(
                q2,
                j,
                vmax!(_mm256_add_pd(q2, _mm256_mul_pd(dq2, dt)), zero)
            );
            let mut io = _mm256_add_pd(iob, ld!(iob_d, j));
            io = _mm256_sub_pd(io, _mm256_mul_pd(io, ld!(iob_decay, j)));
            st!(
                iob,
                j,
                _mm256_blendv_pd(io, zero, _mm256_cmp_pd::<_CMP_LT_OQ>(io, zero))
            );
            j += 4;
        }
    }
}

/// One full Glucosym control step (all substeps) for lanes
/// `j0..j0 + lanes`.
///
/// # Safety
///
/// Requires AVX-512F, `lanes % 8 == 0`, and `j0 + lanes <= s.len()`.
#[target_feature(enable = "avx512f")]
pub(super) unsafe fn glucosym_step_avx512(s: &mut GlucosymSoa, j0: usize, lanes: usize) {
    macro_rules! ld {
        ($f:ident, $j:expr) => {
            _mm512_loadu_pd(s.$f.as_ptr().add($j))
        };
    }
    macro_rules! st {
        ($f:ident, $j:expr, $v:expr) => {
            _mm512_storeu_pd(s.$f.as_mut_ptr().add($j), $v)
        };
    }
    macro_rules! vmax {
        ($v:expr, $w:expr) => {{
            let v = $v;
            let w = $w;
            _mm512_mask_blend_pd(_mm512_cmp_pd_mask::<_CMP_LT_OQ>(v, w), v, w)
        }};
    }
    let dt = _mm512_set1_pd(DT);
    let zero = _mm512_setzero_pd();
    let g_floor = _mm512_set1_pd(10.0);
    for _ in 0..SUBSTEPS {
        let mut j = j0;
        while j < j0 + lanes {
            let g = ld!(g, j);
            let x = ld!(x, j);
            let i = ld!(i, j);
            let q1 = ld!(q1, j);
            let q2 = ld!(q2, j);
            let iob = ld!(iob, j);
            let i_ib = _mm512_sub_pd(i, ld!(ib, j));
            let ra = _mm512_mul_pd(ld!(fka, j), q2);
            let dg = _mm512_add_pd(
                _mm512_sub_pd(
                    _mm512_mul_pd(ld!(neg_p1, j), _mm512_sub_pd(g, ld!(gb, j))),
                    _mm512_mul_pd(x, g),
                ),
                _mm512_div_pd(ra, ld!(vg, j)),
            );
            let dx = _mm512_add_pd(
                _mm512_mul_pd(ld!(neg_p2, j), x),
                _mm512_mul_pd(ld!(p3, j), i_ib),
            );
            let di = _mm512_add_pd(_mm512_mul_pd(ld!(neg_n, j), i_ib), ld!(u_term, j));
            let dq1 = _mm512_mul_pd(ld!(neg_ka, j), q1);
            let dq2 = _mm512_mul_pd(ld!(ka, j), _mm512_sub_pd(q1, q2));
            st!(
                g,
                j,
                vmax!(_mm512_add_pd(g, _mm512_mul_pd(dg, dt)), g_floor)
            );
            st!(x, j, _mm512_add_pd(x, _mm512_mul_pd(dx, dt)));
            st!(i, j, vmax!(_mm512_add_pd(i, _mm512_mul_pd(di, dt)), zero));
            st!(
                q1,
                j,
                vmax!(_mm512_add_pd(q1, _mm512_mul_pd(dq1, dt)), zero)
            );
            st!(
                q2,
                j,
                vmax!(_mm512_add_pd(q2, _mm512_mul_pd(dq2, dt)), zero)
            );
            let mut io = _mm512_add_pd(iob, ld!(iob_d, j));
            io = _mm512_sub_pd(io, _mm512_mul_pd(io, ld!(iob_decay, j)));
            st!(
                iob,
                j,
                _mm512_mask_blend_pd(_mm512_cmp_pd_mask::<_CMP_LT_OQ>(io, zero), io, zero)
            );
            j += 8;
        }
    }
}

/// One full T1DS2013 control step (all substeps) for lanes
/// `j0..j0 + lanes`.
///
/// # Safety
///
/// Requires AVX2, `lanes % 4 == 0`, and `j0 + lanes <= s.len()`.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn t1ds_step_avx2(s: &mut T1dsSoa, j0: usize, lanes: usize) {
    let mut j = j0;
    // 16 ymm registers cannot hold even one block's 13 state vectors, so
    // interleaving is counterproductive here: single blocks only.
    while j < j0 + lanes {
        t1ds_blocks_avx2::<1>(s, j);
        j += 4;
    }
}

/// `P` interleaved 4-lane T1DS2013 blocks through one fused control step.
///
/// # Safety
///
/// Requires AVX2 and `j0 + 4 * P <= s.len()`.
#[target_feature(enable = "avx2")]
unsafe fn t1ds_blocks_avx2<const P: usize>(s: &mut T1dsSoa, j0: usize) {
    macro_rules! ld {
        ($f:ident) => {{
            let mut a = [_mm256_setzero_pd(); P];
            for (u, slot) in a.iter_mut().enumerate() {
                *slot = _mm256_loadu_pd(s.$f.as_ptr().add(j0 + 4 * u));
            }
            a
        }};
    }
    macro_rules! st {
        ($f:ident, $a:expr) => {
            for (u, v) in $a.iter().enumerate() {
                _mm256_storeu_pd(s.$f.as_mut_ptr().add(j0 + 4 * u), *v);
            }
        };
    }
    macro_rules! vmax {
        ($v:expr, $w:expr) => {{
            let v = $v;
            let w = $w;
            _mm256_blendv_pd(v, w, _mm256_cmp_pd::<_CMP_LT_OQ>(v, w))
        }};
    }
    let zero = _mm256_setzero_pd();
    let one = _mm256_set1_pd(1.0);
    let neg0 = _mm256_set1_pd(-0.0);
    let mut gp = ld!(gp);
    let mut gt = ld!(gt);
    let mut ip = ld!(ip);
    let mut il = ld!(il);
    let mut isc1 = ld!(isc1);
    let mut isc2 = ld!(isc2);
    let mut i1 = ld!(i1);
    let mut id = ld!(id);
    let mut x = ld!(x);
    let mut qsto1 = ld!(qsto1);
    let mut qsto2 = ld!(qsto2);
    let mut qgut = ld!(qgut);
    let mut iob = ld!(iob);
    // Parameter columns hoisted once per call; with more live vectors
    // than registers LLVM spills the cold ones to one contiguous stack
    // frame, which still beats re-walking the SoA columns per substep.
    let neg_kgri = ld!(neg_kgri);
    let kgri = ld!(kgri);
    let kempt = ld!(kempt);
    let kabs = ld!(kabs);
    let fkabs = ld!(fkabs);
    let bw = ld!(bw);
    let neg_kdka1 = ld!(neg_kdka1);
    let iir = ld!(iir);
    let kd = ld!(kd);
    let ka1 = ld!(ka1);
    let ka2 = ld!(ka2);
    let neg_m13 = ld!(neg_m13);
    let m2 = ld!(m2);
    let neg_m24 = ld!(neg_m24);
    let m1 = ld!(m1);
    let vi = ld!(vi);
    let neg_ki = ld!(neg_ki);
    let neg_p2u = ld!(neg_p2u);
    let p2u = ld!(p2u);
    let ib = ld!(ib);
    let kp1 = ld!(kp1);
    let kp2 = ld!(kp2);
    let kp3 = ld!(kp3);
    let ke1 = ld!(ke1);
    let ke2 = ld!(ke2);
    let vm0 = ld!(vm0);
    let vmx = ld!(vmx);
    let km0 = ld!(km0);
    let k1 = ld!(k1);
    let k2 = ld!(k2);
    let fsnc = ld!(fsnc);
    let gp_floor = ld!(gp_floor);
    let iob_d = ld!(iob_d);
    let iob_decay = ld!(iob_decay);
    for _ in 0..SUBSTEPS {
        for u in 0..P {
            // Oral absorption.
            let dqsto1 = _mm256_mul_pd(neg_kgri[u], qsto1[u]);
            let dqsto2 = _mm256_sub_pd(
                _mm256_mul_pd(kgri[u], qsto1[u]),
                _mm256_mul_pd(kempt[u], qsto2[u]),
            );
            let dqgut = _mm256_sub_pd(
                _mm256_mul_pd(kempt[u], qsto2[u]),
                _mm256_mul_pd(kabs[u], qgut[u]),
            );
            let ra = _mm256_div_pd(_mm256_mul_pd(fkabs[u], qgut[u]), bw[u]);
            // Insulin subsystem.
            let disc1 = _mm256_add_pd(_mm256_mul_pd(neg_kdka1[u], isc1[u]), iir[u]);
            let ka2 = ka2[u];
            let disc2 = _mm256_sub_pd(_mm256_mul_pd(kd[u], isc1[u]), _mm256_mul_pd(ka2, isc2[u]));
            let rai = _mm256_add_pd(_mm256_mul_pd(ka1[u], isc1[u]), _mm256_mul_pd(ka2, isc2[u]));
            let dil = _mm256_add_pd(
                _mm256_mul_pd(neg_m13[u], il[u]),
                _mm256_mul_pd(m2[u], ip[u]),
            );
            let dip = _mm256_add_pd(
                _mm256_add_pd(
                    _mm256_mul_pd(neg_m24[u], ip[u]),
                    _mm256_mul_pd(m1[u], il[u]),
                ),
                rai,
            );
            let i_conc = _mm256_div_pd(ip[u], vi[u]);
            let neg_ki = neg_ki[u];
            let di1 = _mm256_mul_pd(neg_ki, _mm256_sub_pd(i1[u], i_conc));
            let did = _mm256_mul_pd(neg_ki, _mm256_sub_pd(id[u], i1[u]));
            let dx = _mm256_add_pd(
                _mm256_mul_pd(neg_p2u[u], x[u]),
                _mm256_mul_pd(p2u[u], _mm256_sub_pd(i_conc, ib[u])),
            );
            // Glucose subsystem.
            let egp = vmax!(
                _mm256_sub_pd(
                    _mm256_sub_pd(kp1[u], _mm256_mul_pd(kp2[u], gp[u])),
                    _mm256_mul_pd(kp3[u], id[u])
                ),
                zero
            );
            let ke2 = ke2[u];
            let e_val = _mm256_mul_pd(ke1[u], _mm256_sub_pd(gp[u], ke2));
            let e = _mm256_blendv_pd(zero, e_val, _mm256_cmp_pd::<_CMP_GT_OQ>(gp[u], ke2));
            let vm = vmax!(_mm256_add_pd(vm0[u], _mm256_mul_pd(vmx[u], x[u])), zero);
            let uid = _mm256_div_pd(_mm256_mul_pd(vm, gt[u]), _mm256_add_pd(km0[u], gt[u]));
            let k1gp = _mm256_mul_pd(k1[u], gp[u]);
            let k2gt = _mm256_mul_pd(k2[u], gt[u]);
            let dgp = _mm256_add_pd(
                _mm256_sub_pd(
                    _mm256_sub_pd(_mm256_sub_pd(_mm256_add_pd(egp, ra), fsnc[u]), e),
                    k1gp,
                ),
                k2gt,
            );
            let neg_uid = _mm256_xor_pd(uid, neg0);
            let dgt = _mm256_sub_pd(_mm256_add_pd(neg_uid, k1gp), k2gt);
            // Euler step (dt = 1 min) with the scalar model's floors.
            qsto1[u] = vmax!(_mm256_add_pd(qsto1[u], dqsto1), zero);
            qsto2[u] = vmax!(_mm256_add_pd(qsto2[u], dqsto2), zero);
            qgut[u] = vmax!(_mm256_add_pd(qgut[u], dqgut), zero);
            isc1[u] = vmax!(_mm256_add_pd(isc1[u], disc1), zero);
            isc2[u] = vmax!(_mm256_add_pd(isc2[u], disc2), zero);
            il[u] = vmax!(_mm256_add_pd(il[u], dil), zero);
            ip[u] = vmax!(_mm256_add_pd(ip[u], dip), zero);
            i1[u] = _mm256_add_pd(i1[u], di1);
            id[u] = _mm256_add_pd(id[u], did);
            x[u] = _mm256_add_pd(x[u], dx);
            gp[u] = vmax!(_mm256_add_pd(gp[u], dgp), gp_floor[u]);
            gt[u] = vmax!(_mm256_add_pd(gt[u], dgt), one);
            let mut io = _mm256_add_pd(iob[u], iob_d[u]);
            io = _mm256_sub_pd(io, _mm256_mul_pd(io, iob_decay[u]));
            iob[u] = _mm256_blendv_pd(io, zero, _mm256_cmp_pd::<_CMP_LT_OQ>(io, zero));
        }
    }
    st!(gp, gp);
    st!(gt, gt);
    st!(ip, ip);
    st!(il, il);
    st!(isc1, isc1);
    st!(isc2, isc2);
    st!(i1, i1);
    st!(id, id);
    st!(x, x);
    st!(qsto1, qsto1);
    st!(qsto2, qsto2);
    st!(qgut, qgut);
    st!(iob, iob);
}

/// One full T1DS2013 control step (all substeps) for lanes
/// `j0..j0 + lanes`.
///
/// # Safety
///
/// Requires AVX-512F, `lanes % 8 == 0`, and `j0 + lanes <= s.len()`.
#[target_feature(enable = "avx512f")]
pub(super) unsafe fn t1ds_step_avx512(s: &mut T1dsSoa, j0: usize, lanes: usize) {
    let mut j = j0;
    // Pairs of interleaved blocks (two dependency chains in flight),
    // then lone blocks; per-lane op sequences are identical either way.
    while j + 16 <= j0 + lanes {
        t1ds_blocks_avx512::<2>(s, j);
        j += 16;
    }
    while j + 8 <= j0 + lanes {
        t1ds_blocks_avx512::<1>(s, j);
        j += 8;
    }
}

/// `P` interleaved 8-lane T1DS2013 blocks through one fused control step.
///
/// # Safety
///
/// Requires AVX-512F and `j0 + 8 * P <= s.len()`.
#[target_feature(enable = "avx512f")]
unsafe fn t1ds_blocks_avx512<const P: usize>(s: &mut T1dsSoa, j0: usize) {
    macro_rules! ld {
        ($f:ident) => {{
            let mut a = [_mm512_setzero_pd(); P];
            for (u, slot) in a.iter_mut().enumerate() {
                *slot = _mm512_loadu_pd(s.$f.as_ptr().add(j0 + 8 * u));
            }
            a
        }};
    }
    macro_rules! st {
        ($f:ident, $a:expr) => {
            for (u, v) in $a.iter().enumerate() {
                _mm512_storeu_pd(s.$f.as_mut_ptr().add(j0 + 8 * u), *v);
            }
        };
    }
    macro_rules! vmax {
        ($v:expr, $w:expr) => {{
            let v = $v;
            let w = $w;
            _mm512_mask_blend_pd(_mm512_cmp_pd_mask::<_CMP_LT_OQ>(v, w), v, w)
        }};
    }
    let zero = _mm512_setzero_pd();
    let one = _mm512_set1_pd(1.0);
    let neg0 = _mm512_castpd_si512(_mm512_set1_pd(-0.0));
    let mut gp = ld!(gp);
    let mut gt = ld!(gt);
    let mut ip = ld!(ip);
    let mut il = ld!(il);
    let mut isc1 = ld!(isc1);
    let mut isc2 = ld!(isc2);
    let mut i1 = ld!(i1);
    let mut id = ld!(id);
    let mut x = ld!(x);
    let mut qsto1 = ld!(qsto1);
    let mut qsto2 = ld!(qsto2);
    let mut qgut = ld!(qgut);
    let mut iob = ld!(iob);
    // Parameter columns hoisted once per call; with more live vectors
    // than registers LLVM spills the cold ones to one contiguous stack
    // frame, which still beats re-walking the SoA columns per substep.
    let neg_kgri = ld!(neg_kgri);
    let kgri = ld!(kgri);
    let kempt = ld!(kempt);
    let kabs = ld!(kabs);
    let fkabs = ld!(fkabs);
    let bw = ld!(bw);
    let neg_kdka1 = ld!(neg_kdka1);
    let iir = ld!(iir);
    let kd = ld!(kd);
    let ka1 = ld!(ka1);
    let ka2 = ld!(ka2);
    let neg_m13 = ld!(neg_m13);
    let m2 = ld!(m2);
    let neg_m24 = ld!(neg_m24);
    let m1 = ld!(m1);
    let vi = ld!(vi);
    let neg_ki = ld!(neg_ki);
    let neg_p2u = ld!(neg_p2u);
    let p2u = ld!(p2u);
    let ib = ld!(ib);
    let kp1 = ld!(kp1);
    let kp2 = ld!(kp2);
    let kp3 = ld!(kp3);
    let ke1 = ld!(ke1);
    let ke2 = ld!(ke2);
    let vm0 = ld!(vm0);
    let vmx = ld!(vmx);
    let km0 = ld!(km0);
    let k1 = ld!(k1);
    let k2 = ld!(k2);
    let fsnc = ld!(fsnc);
    let gp_floor = ld!(gp_floor);
    let iob_d = ld!(iob_d);
    let iob_decay = ld!(iob_decay);
    for _ in 0..SUBSTEPS {
        for u in 0..P {
            // Oral absorption.
            let dqsto1 = _mm512_mul_pd(neg_kgri[u], qsto1[u]);
            let dqsto2 = _mm512_sub_pd(
                _mm512_mul_pd(kgri[u], qsto1[u]),
                _mm512_mul_pd(kempt[u], qsto2[u]),
            );
            let dqgut = _mm512_sub_pd(
                _mm512_mul_pd(kempt[u], qsto2[u]),
                _mm512_mul_pd(kabs[u], qgut[u]),
            );
            let ra = _mm512_div_pd(_mm512_mul_pd(fkabs[u], qgut[u]), bw[u]);
            // Insulin subsystem.
            let disc1 = _mm512_add_pd(_mm512_mul_pd(neg_kdka1[u], isc1[u]), iir[u]);
            let ka2 = ka2[u];
            let disc2 = _mm512_sub_pd(_mm512_mul_pd(kd[u], isc1[u]), _mm512_mul_pd(ka2, isc2[u]));
            let rai = _mm512_add_pd(_mm512_mul_pd(ka1[u], isc1[u]), _mm512_mul_pd(ka2, isc2[u]));
            let dil = _mm512_add_pd(
                _mm512_mul_pd(neg_m13[u], il[u]),
                _mm512_mul_pd(m2[u], ip[u]),
            );
            let dip = _mm512_add_pd(
                _mm512_add_pd(
                    _mm512_mul_pd(neg_m24[u], ip[u]),
                    _mm512_mul_pd(m1[u], il[u]),
                ),
                rai,
            );
            let i_conc = _mm512_div_pd(ip[u], vi[u]);
            let neg_ki = neg_ki[u];
            let di1 = _mm512_mul_pd(neg_ki, _mm512_sub_pd(i1[u], i_conc));
            let did = _mm512_mul_pd(neg_ki, _mm512_sub_pd(id[u], i1[u]));
            let dx = _mm512_add_pd(
                _mm512_mul_pd(neg_p2u[u], x[u]),
                _mm512_mul_pd(p2u[u], _mm512_sub_pd(i_conc, ib[u])),
            );
            // Glucose subsystem.
            let egp = vmax!(
                _mm512_sub_pd(
                    _mm512_sub_pd(kp1[u], _mm512_mul_pd(kp2[u], gp[u])),
                    _mm512_mul_pd(kp3[u], id[u])
                ),
                zero
            );
            let ke2 = ke2[u];
            let e_val = _mm512_mul_pd(ke1[u], _mm512_sub_pd(gp[u], ke2));
            let e = _mm512_maskz_mov_pd(_mm512_cmp_pd_mask::<_CMP_GT_OQ>(gp[u], ke2), e_val);
            let vm = vmax!(_mm512_add_pd(vm0[u], _mm512_mul_pd(vmx[u], x[u])), zero);
            let uid = _mm512_div_pd(_mm512_mul_pd(vm, gt[u]), _mm512_add_pd(km0[u], gt[u]));
            let k1gp = _mm512_mul_pd(k1[u], gp[u]);
            let k2gt = _mm512_mul_pd(k2[u], gt[u]);
            let dgp = _mm512_add_pd(
                _mm512_sub_pd(
                    _mm512_sub_pd(_mm512_sub_pd(_mm512_add_pd(egp, ra), fsnc[u]), e),
                    k1gp,
                ),
                k2gt,
            );
            // Sign-bit XOR via integer ops: `_mm512_xor_pd` needs AVX512DQ,
            // which we do not assume — AVX512F integer XOR is exact on the
            // bit pattern.
            let neg_uid = _mm512_castsi512_pd(_mm512_xor_si512(_mm512_castpd_si512(uid), neg0));
            let dgt = _mm512_sub_pd(_mm512_add_pd(neg_uid, k1gp), k2gt);
            // Euler step (dt = 1 min) with the scalar model's floors.
            qsto1[u] = vmax!(_mm512_add_pd(qsto1[u], dqsto1), zero);
            qsto2[u] = vmax!(_mm512_add_pd(qsto2[u], dqsto2), zero);
            qgut[u] = vmax!(_mm512_add_pd(qgut[u], dqgut), zero);
            isc1[u] = vmax!(_mm512_add_pd(isc1[u], disc1), zero);
            isc2[u] = vmax!(_mm512_add_pd(isc2[u], disc2), zero);
            il[u] = vmax!(_mm512_add_pd(il[u], dil), zero);
            ip[u] = vmax!(_mm512_add_pd(ip[u], dip), zero);
            i1[u] = _mm512_add_pd(i1[u], di1);
            id[u] = _mm512_add_pd(id[u], did);
            x[u] = _mm512_add_pd(x[u], dx);
            gp[u] = vmax!(_mm512_add_pd(gp[u], dgp), gp_floor[u]);
            gt[u] = vmax!(_mm512_add_pd(gt[u], dgt), one);
            let mut io = _mm512_add_pd(iob[u], iob_d[u]);
            io = _mm512_sub_pd(io, _mm512_mul_pd(io, iob_decay[u]));
            iob[u] = _mm512_mask_blend_pd(_mm512_cmp_pd_mask::<_CMP_LT_OQ>(io, zero), io, zero);
        }
    }
    st!(gp, gp);
    st!(gt, gt);
    st!(ip, ip);
    st!(il, il);
    st!(isc1, isc1);
    st!(isc2, isc2);
    st!(i1, i1);
    st!(id, id);
    st!(x, x);
    st!(qsto1, qsto1);
    st!(qsto2, qsto2);
    st!(qgut, qgut);
    st!(iob, iob);
}
