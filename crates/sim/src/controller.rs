//! The controller abstraction shared by OpenAPS-like and Basal-Bolus
//! control algorithms.

use crate::patient::TherapyProfile;

/// What a controller sees at each step: the CGM reading, the pump's IOB
/// estimate, and the (announced) meal for bolus-capable protocols.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// CGM glucose reading (mg/dL).
    pub bg: f64,
    /// CGM reading change since the previous step (mg/dL per step).
    pub bg_trend: f64,
    /// Insulin-on-board estimate (U).
    pub iob: f64,
    /// Carbohydrates announced for this step (grams).
    pub announced_carbs: f64,
}

/// A closed-loop insulin controller.
///
/// Controllers are deterministic functions of their observation history;
/// [`Controller::control`] returns the pump rate (U/h) to hold until the
/// next 5-minute step.
pub trait Controller {
    /// Computes the commanded insulin rate (U/h) for the next step.
    fn control(&mut self, obs: &Observation, therapy: &TherapyProfile) -> f64;

    /// Human-readable controller name (for reports).
    fn name(&self) -> &'static str;

    /// Resets internal state between runs.
    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(f64);

    impl Controller for Fixed {
        fn control(&mut self, _obs: &Observation, _t: &TherapyProfile) -> f64 {
            self.0
        }
        fn name(&self) -> &'static str {
            "fixed"
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let mut c: Box<dyn Controller> = Box::new(Fixed(1.5));
        let obs = Observation {
            bg: 120.0,
            bg_trend: 0.0,
            iob: 0.0,
            announced_carbs: 0.0,
        };
        let therapy = TherapyProfile {
            basal_rate: 1.0,
            isf: 50.0,
            carb_ratio: 10.0,
            target_bg: 120.0,
        };
        assert_eq!(c.control(&obs, &therapy), 1.5);
        assert_eq!(c.name(), "fixed");
    }
}
