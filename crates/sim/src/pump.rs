//! The insulin pump: turns commanded rates into delivered rates, applying
//! any active fault.

use crate::faults::{PumpFault, PumpFaultKind};

/// A corrective command a safety monitor issues to the pump: cap delivery
/// at `max_rate` U/h for the next `steps` control steps. `max_rate == 0.0`
/// is a full basal suspension. Commands take effect on the *next* control
/// step (a monitor reacts to a record it has already seen), mirroring how
/// a deployed mitigation path sits one cycle behind the sensor bus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PumpCommand {
    /// Delivery ceiling while the command is active (U/h).
    pub max_rate: f64,
    /// How many control steps the ceiling stays in force.
    pub steps: usize,
}

impl PumpCommand {
    /// A full basal suspension for `steps` control steps.
    pub fn suspend(steps: usize) -> Self {
        Self {
            max_rate: 0.0,
            steps,
        }
    }

    /// A delivery cap at `max_rate` U/h for `steps` control steps.
    pub fn cap(max_rate: f64, steps: usize) -> Self {
        Self { max_rate, steps }
    }
}

/// An insulin pump with an optional fault plan.
#[derive(Debug, Clone, PartialEq)]
pub struct InsulinPump {
    fault: Option<PumpFault>,
    stuck_rate: Option<f64>,
    /// Active mitigation window: `(first_step, end_step, cap)` caps the
    /// commanded rate at `cap` for steps in `first_step..end_step`.
    mitigation: Option<(usize, usize, f64)>,
    /// Hardware ceiling on deliverable rate (U/h).
    pub max_rate: f64,
}

impl Default for InsulinPump {
    fn default() -> Self {
        Self {
            fault: None,
            stuck_rate: None,
            mitigation: None,
            max_rate: 130.0,
        }
    }
}

impl InsulinPump {
    /// A healthy pump.
    pub fn healthy() -> Self {
        Self::default()
    }

    /// A pump that will exhibit `fault`.
    pub fn with_fault(fault: PumpFault) -> Self {
        Self {
            fault: Some(fault),
            ..Self::default()
        }
    }

    /// The configured fault plan, if any.
    pub fn fault(&self) -> Option<&PumpFault> {
        self.fault.as_ref()
    }

    /// Arms a mitigation window: from `from_step` on, commanded rates are
    /// capped at `max_rate` for `steps` control steps. A later command
    /// replaces the current window (the monitor's most recent decision
    /// wins), so repeated suspensions extend naturally.
    pub fn apply_mitigation(&mut self, from_step: usize, steps: usize, max_rate: f64) {
        self.mitigation = Some((from_step, from_step.saturating_add(steps), max_rate));
    }

    /// Whether a mitigation window caps delivery at `step`.
    pub fn mitigation_active_at(&self, step: usize) -> bool {
        matches!(self.mitigation, Some((from, end, _)) if (from..end).contains(&step))
    }

    /// Computes the rate actually delivered at `step` for a commanded rate.
    ///
    /// The returned value is what both the patient receives and the safety
    /// monitor observes on the actuation bus (per Fig. 1 of the paper, the
    /// monitor sees sensor data and the control commands as issued to the
    /// actuator — which is exactly where the corruption happens).
    pub fn deliver(&mut self, step: usize, commanded: f64) -> f64 {
        let mut commanded = commanded.clamp(0.0, self.max_rate);
        // Safety mitigation caps the *commanded* rate: it models the
        // controller-side override a monitor issues, so a faulty pump
        // (e.g. Overdose, StuckRate) can still defeat it — mitigation is
        // not allowed to silently repair broken hardware.
        if let Some((from, end, cap)) = self.mitigation {
            if step >= end {
                self.mitigation = None;
            } else if step >= from {
                commanded = commanded.min(cap.max(0.0));
            }
        }
        let Some(fault) = self.fault else {
            return commanded;
        };
        if !fault.active_at(step) {
            self.stuck_rate = None;
            return commanded;
        }
        match fault.kind {
            PumpFaultKind::Overdose { rate } => rate.clamp(0.0, self.max_rate),
            PumpFaultKind::Underdose { factor } => (commanded * factor).clamp(0.0, self.max_rate),
            PumpFaultKind::StuckRate => *self.stuck_rate.get_or_insert(commanded),
            PumpFaultKind::Suspend => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_pump_is_identity_with_clamp() {
        let mut p = InsulinPump::healthy();
        assert_eq!(p.deliver(0, 1.5), 1.5);
        assert_eq!(p.deliver(1, -2.0), 0.0);
        assert_eq!(p.deliver(2, 1e9), p.max_rate);
    }

    #[test]
    fn overdose_multiplies_inside_window() {
        let f = PumpFault {
            kind: PumpFaultKind::Overdose { rate: 3.0 },
            start_step: 5,
            duration_steps: 2,
        };
        let mut p = InsulinPump::with_fault(f);
        assert_eq!(p.deliver(4, 1.0), 1.0);
        assert_eq!(p.deliver(5, 1.0), 3.0);
        assert_eq!(p.deliver(6, 1.0), 3.0);
        assert_eq!(p.deliver(7, 1.0), 1.0);
    }

    #[test]
    fn stuck_holds_first_faulty_rate() {
        let f = PumpFault {
            kind: PumpFaultKind::StuckRate,
            start_step: 2,
            duration_steps: 3,
        };
        let mut p = InsulinPump::with_fault(f);
        assert_eq!(p.deliver(2, 2.0), 2.0);
        assert_eq!(p.deliver(3, 0.5), 2.0);
        assert_eq!(p.deliver(4, 5.0), 2.0);
        assert_eq!(p.deliver(5, 0.5), 0.5);
    }

    #[test]
    fn suspend_zeroes_delivery() {
        let f = PumpFault {
            kind: PumpFaultKind::Suspend,
            start_step: 0,
            duration_steps: 10,
        };
        let mut p = InsulinPump::with_fault(f);
        assert_eq!(p.deliver(0, 3.0), 0.0);
    }

    #[test]
    fn mitigation_caps_then_expires() {
        let mut p = InsulinPump::healthy();
        p.apply_mitigation(3, 2, 0.5);
        assert_eq!(p.deliver(2, 2.0), 2.0, "window not yet open");
        assert!(p.mitigation_active_at(3));
        assert_eq!(p.deliver(3, 2.0), 0.5);
        assert_eq!(p.deliver(4, 0.2), 0.2, "cap is a ceiling, not a floor");
        assert_eq!(p.deliver(5, 2.0), 2.0, "window expired");
        assert!(!p.mitigation_active_at(5));
    }

    #[test]
    fn mitigation_suspend_zeroes_but_cannot_fix_overdose() {
        let f = PumpFault {
            kind: PumpFaultKind::Overdose { rate: 3.0 },
            start_step: 1,
            duration_steps: 1,
        };
        let mut p = InsulinPump::with_fault(f);
        p.apply_mitigation(0, 4, 0.0);
        assert_eq!(p.deliver(0, 2.0), 0.0, "suspension zeroes a healthy step");
        assert_eq!(
            p.deliver(1, 2.0),
            3.0,
            "a faulty pump overrides the mitigation cap"
        );
        assert_eq!(p.deliver(2, 2.0), 0.0);
    }

    #[test]
    fn later_mitigation_replaces_earlier() {
        let mut p = InsulinPump::healthy();
        p.apply_mitigation(0, 10, 0.0);
        p.apply_mitigation(1, 1, 1.0);
        assert_eq!(p.deliver(1, 2.0), 1.0);
        assert_eq!(p.deliver(3, 2.0), 2.0, "replaced window is gone");
    }

    #[test]
    fn stuck_rate_resets_after_window() {
        let f = PumpFault {
            kind: PumpFaultKind::StuckRate,
            start_step: 1,
            duration_steps: 1,
        };
        let mut p = InsulinPump::with_fault(f);
        let _ = p.deliver(1, 2.0);
        let _ = p.deliver(2, 1.0);
        // A later re-entry (hypothetically) would re-latch, not reuse 2.0.
        assert_eq!(p.stuck_rate, None);
    }
}
