//! The insulin pump: turns commanded rates into delivered rates, applying
//! any active fault.

use crate::faults::{PumpFault, PumpFaultKind};

/// An insulin pump with an optional fault plan.
#[derive(Debug, Clone, PartialEq)]
pub struct InsulinPump {
    fault: Option<PumpFault>,
    stuck_rate: Option<f64>,
    /// Hardware ceiling on deliverable rate (U/h).
    pub max_rate: f64,
}

impl Default for InsulinPump {
    fn default() -> Self {
        Self {
            fault: None,
            stuck_rate: None,
            max_rate: 130.0,
        }
    }
}

impl InsulinPump {
    /// A healthy pump.
    pub fn healthy() -> Self {
        Self::default()
    }

    /// A pump that will exhibit `fault`.
    pub fn with_fault(fault: PumpFault) -> Self {
        Self {
            fault: Some(fault),
            ..Self::default()
        }
    }

    /// The configured fault plan, if any.
    pub fn fault(&self) -> Option<&PumpFault> {
        self.fault.as_ref()
    }

    /// Computes the rate actually delivered at `step` for a commanded rate.
    ///
    /// The returned value is what both the patient receives and the safety
    /// monitor observes on the actuation bus (per Fig. 1 of the paper, the
    /// monitor sees sensor data and the control commands as issued to the
    /// actuator — which is exactly where the corruption happens).
    pub fn deliver(&mut self, step: usize, commanded: f64) -> f64 {
        let commanded = commanded.clamp(0.0, self.max_rate);
        let Some(fault) = self.fault else {
            return commanded;
        };
        if !fault.active_at(step) {
            self.stuck_rate = None;
            return commanded;
        }
        match fault.kind {
            PumpFaultKind::Overdose { rate } => rate.clamp(0.0, self.max_rate),
            PumpFaultKind::Underdose { factor } => (commanded * factor).clamp(0.0, self.max_rate),
            PumpFaultKind::StuckRate => *self.stuck_rate.get_or_insert(commanded),
            PumpFaultKind::Suspend => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_pump_is_identity_with_clamp() {
        let mut p = InsulinPump::healthy();
        assert_eq!(p.deliver(0, 1.5), 1.5);
        assert_eq!(p.deliver(1, -2.0), 0.0);
        assert_eq!(p.deliver(2, 1e9), p.max_rate);
    }

    #[test]
    fn overdose_multiplies_inside_window() {
        let f = PumpFault {
            kind: PumpFaultKind::Overdose { rate: 3.0 },
            start_step: 5,
            duration_steps: 2,
        };
        let mut p = InsulinPump::with_fault(f);
        assert_eq!(p.deliver(4, 1.0), 1.0);
        assert_eq!(p.deliver(5, 1.0), 3.0);
        assert_eq!(p.deliver(6, 1.0), 3.0);
        assert_eq!(p.deliver(7, 1.0), 1.0);
    }

    #[test]
    fn stuck_holds_first_faulty_rate() {
        let f = PumpFault {
            kind: PumpFaultKind::StuckRate,
            start_step: 2,
            duration_steps: 3,
        };
        let mut p = InsulinPump::with_fault(f);
        assert_eq!(p.deliver(2, 2.0), 2.0);
        assert_eq!(p.deliver(3, 0.5), 2.0);
        assert_eq!(p.deliver(4, 5.0), 2.0);
        assert_eq!(p.deliver(5, 0.5), 0.5);
    }

    #[test]
    fn suspend_zeroes_delivery() {
        let f = PumpFault {
            kind: PumpFaultKind::Suspend,
            start_step: 0,
            duration_steps: 10,
        };
        let mut p = InsulinPump::with_fault(f);
        assert_eq!(p.deliver(0, 3.0), 0.0);
    }

    #[test]
    fn stuck_rate_resets_after_window() {
        let f = PumpFault {
            kind: PumpFaultKind::StuckRate,
            start_step: 1,
            duration_steps: 1,
        };
        let mut p = InsulinPump::with_fault(f);
        let _ = p.deliver(1, 2.0);
        let _ = p.deliver(2, 1.0);
        // A later re-entry (hypothetically) would re-latch, not reuse 2.0.
        assert_eq!(p.stuck_rate, None);
    }
}
