//! The closed-loop simulation engine (Fig. 1(a) of the paper).
//!
//! Wiring per step: CGM reads the patient → controller computes a rate →
//! the pump (possibly faulty) delivers → the patient model advances. The
//! engine records everything a monitor could observe plus the ground truth
//! needed for labeling.

use crate::controller::{Controller, Observation};
use crate::meal::MealSchedule;
use crate::patient::{IobTracker, PatientModel, STEP_MINUTES, SUBSTEPS};
use crate::pump::{InsulinPump, PumpCommand};
use crate::sensor::Cgm;
use crate::trace::{SimTrace, StepRecord};

/// Nominal insulin-action time constant (minutes) the pump firmware uses
/// for its IOB estimate. Deliberately independent of the (unknown) patient
/// physiology, like a real pump's fixed duration-of-insulin-action setting.
pub(crate) const PUMP_IOB_TAU_MIN: f64 = 120.0;

/// A monitor-in-the-loop hook: invoked by
/// [`ClosedLoop::run_observed`] after each step is recorded, with exactly
/// the [`StepRecord`] the trace will contain. A streaming safety monitor
/// implements this to watch (and later mitigate) a run *while* it executes
/// instead of post-processing the finished trace.
///
/// Any `FnMut(usize, &StepRecord)` closure works via the blanket impl.
pub trait StepObserver {
    /// Called once per step, after the record is produced and before the
    /// patient state advances. `step` is the 0-based step index.
    fn on_step(&mut self, step: usize, record: &StepRecord);

    /// Polled by [`ClosedLoop::run_observed`] right after
    /// [`on_step`](Self::on_step): a returned [`PumpCommand`] is applied to
    /// the pump starting at the *next* control step — the mitigation path
    /// from a monitor's alarm back into the loop. The default (and the
    /// closure blanket impl) returns `None`, so purely-observing runs stay
    /// bit-identical to unobserved ones.
    fn mitigation(&mut self) -> Option<PumpCommand> {
        None
    }
}

impl<F: FnMut(usize, &StepRecord)> StepObserver for F {
    fn on_step(&mut self, step: usize, record: &StepRecord) {
        self(step, record)
    }
}

/// A ready-to-run closed loop over one patient.
pub struct ClosedLoop<P, C> {
    patient: P,
    controller: C,
    pump: InsulinPump,
    cgm: Cgm,
    meals: MealSchedule,
}

impl<P: PatientModel, C: Controller> ClosedLoop<P, C> {
    /// Assembles a closed loop.
    pub fn new(
        patient: P,
        controller: C,
        pump: InsulinPump,
        cgm: Cgm,
        meals: MealSchedule,
    ) -> Self {
        Self {
            patient,
            controller,
            pump,
            cgm,
            meals,
        }
    }

    /// Runs `steps` steps and returns the recorded trace.
    ///
    /// Delegates to [`run_observed`](Self::run_observed) with a no-op
    /// observer, so observed and unobserved runs execute the identical
    /// simulation path and produce bit-identical traces.
    pub fn run(
        self,
        steps: usize,
        simulator: &'static str,
        patient_id: usize,
        run_id: usize,
    ) -> SimTrace {
        self.run_observed(
            steps,
            simulator,
            patient_id,
            run_id,
            &mut |_: usize, _: &StepRecord| {},
        )
    }

    /// Runs `steps` steps, invoking `observer` after each step is recorded
    /// (monitor-in-the-loop), and returns the recorded trace.
    ///
    /// The observer sees each [`StepRecord`] within the same control cycle,
    /// before the patient state advances — the deployment position of a
    /// run-time safety monitor.
    pub fn run_observed(
        mut self,
        steps: usize,
        simulator: &'static str,
        patient_id: usize,
        run_id: usize,
        observer: &mut dyn StepObserver,
    ) -> SimTrace {
        let controller_name = self.controller.name();
        let fault = self.pump.fault().copied();
        let mut records = Vec::with_capacity(steps);
        let mut prev_bg_sensor: Option<f64> = None;
        // Pump-firmware IOB estimate, driven by *delivered* insulin. The
        // controller receives the net-of-basal value (oref0-style "netIOB"),
        // so holding basal reads as zero insulin on board.
        let mut pump_iob = IobTracker::new(PUMP_IOB_TAU_MIN);
        for step in 0..steps {
            let bg_sensor = self.cgm.measure(self.patient.bg());
            let bg_trend = prev_bg_sensor.map_or(0.0, |p| bg_sensor - p);
            prev_bg_sensor = Some(bg_sensor);
            let carbs = self.meals.carbs_at(step);
            let therapy = *self.patient.therapy();
            let basal_iob = therapy.basal_rate / 60.0 * PUMP_IOB_TAU_MIN;
            let iob_estimate = pump_iob.value();
            let obs = Observation {
                bg: bg_sensor,
                bg_trend,
                iob: iob_estimate - basal_iob,
                announced_carbs: carbs,
            };
            let commanded = self.controller.control(&obs, &therapy);
            let delivered = self.pump.deliver(step, commanded);
            let record = StepRecord {
                bg_true: self.patient.bg(),
                bg_sensor,
                iob: iob_estimate,
                commanded_rate: commanded,
                delivered_rate: delivered,
                carbs,
            };
            observer.on_step(step, &record);
            if let Some(cmd) = observer.mitigation() {
                self.pump
                    .apply_mitigation(step + 1, cmd.steps, cmd.max_rate);
            }
            self.patient.step(delivered, carbs);
            for _ in 0..SUBSTEPS {
                pump_iob.advance_minute(delivered / 60.0 * (STEP_MINUTES / SUBSTEPS as f64));
            }
            records.push(record);
        }
        SimTrace::new(
            simulator,
            controller_name,
            patient_id,
            run_id,
            fault,
            records,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{PumpFault, PumpFaultKind};
    use crate::glucosym::GlucosymPatient;
    use crate::openaps::OpenApsController;
    use cpsmon_nn::rng::SmallRng;

    fn loop_for(fault: Option<PumpFault>, seed: u64) -> SimTrace {
        let patient = GlucosymPatient::from_profile(0, 42);
        let controller = OpenApsController::new();
        let pump = match fault {
            Some(f) => InsulinPump::with_fault(f),
            None => InsulinPump::healthy(),
        };
        let mut rng = SmallRng::new(seed);
        let meals = MealSchedule::generate(144, &mut rng.fork(1));
        let cgm = Cgm::typical(rng.fork(2));
        ClosedLoop::new(patient, controller, pump, cgm, meals).run(144, "glucosym", 0, 0)
    }

    #[test]
    fn healthy_run_stays_mostly_in_range() {
        let trace = loop_for(None, 1);
        assert_eq!(trace.len(), 144);
        let in_range = trace
            .records()
            .iter()
            .filter(|r| r.bg_true >= 70.0 && r.bg_true <= 300.0)
            .count();
        assert!(
            in_range as f64 / 144.0 > 0.9,
            "only {in_range}/144 steps in safe range"
        );
    }

    #[test]
    fn overdose_fault_drives_bg_down() {
        let fault = PumpFault {
            kind: PumpFaultKind::Overdose { rate: 5.0 },
            start_step: 30,
            duration_steps: 36,
        };
        let healthy = loop_for(None, 1);
        let faulty = loop_for(Some(fault), 1);
        let min_h = healthy
            .bg_true()
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let min_f = faulty
            .bg_true()
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!(
            min_f < min_h - 10.0,
            "overdose ineffective: {min_f} vs {min_h}"
        );
    }

    #[test]
    fn suspend_fault_drives_bg_up() {
        let fault = PumpFault {
            kind: PumpFaultKind::Suspend,
            start_step: 30,
            duration_steps: 40,
        };
        let healthy = loop_for(None, 1);
        let faulty = loop_for(Some(fault), 1);
        let max_h = healthy
            .bg_true()
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let max_f = faulty
            .bg_true()
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max_f > max_h + 10.0,
            "suspension ineffective: {max_f} vs {max_h}"
        );
    }

    #[test]
    fn trace_records_fault_metadata() {
        let fault = PumpFault {
            kind: PumpFaultKind::Suspend,
            start_step: 10,
            duration_steps: 5,
        };
        let trace = loop_for(Some(fault), 2);
        assert_eq!(trace.fault, Some(fault));
        // Delivered rate is zero inside the fault window.
        for (t, r) in trace.records().iter().enumerate() {
            if (10..15).contains(&t) {
                assert_eq!(r.delivered_rate, 0.0, "step {t}");
            }
        }
    }

    #[test]
    fn deterministic_runs() {
        let a = loop_for(None, 7);
        let b = loop_for(None, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn mitigating_observer_changes_the_future() {
        struct SuspendOnce {
            at: usize,
            last: usize,
            fired: bool,
        }
        impl StepObserver for SuspendOnce {
            fn on_step(&mut self, step: usize, _record: &StepRecord) {
                self.last = step;
            }
            fn mitigation(&mut self) -> Option<PumpCommand> {
                if !self.fired && self.last >= self.at {
                    self.fired = true;
                    Some(PumpCommand::suspend(40))
                } else {
                    None
                }
            }
        }
        let plain = loop_for(None, 3);
        let patient = GlucosymPatient::from_profile(0, 42);
        let controller = OpenApsController::new();
        let mut rng = SmallRng::new(3);
        let meals = MealSchedule::generate(144, &mut rng.fork(1));
        let cgm = Cgm::typical(rng.fork(2));
        let mut obs = SuspendOnce {
            at: 30,
            last: 0,
            fired: false,
        };
        let mitigated = ClosedLoop::new(patient, controller, InsulinPump::healthy(), cgm, meals)
            .run_observed(144, "glucosym", 0, 0, &mut obs);
        // The command lands on the *next* control step: everything through
        // step 30 is bit-identical, steps 31..71 deliver nothing.
        for t in 0..=30 {
            assert_eq!(mitigated.records()[t], plain.records()[t], "step {t}");
        }
        for t in 31..71 {
            assert_eq!(mitigated.records()[t].delivered_rate, 0.0, "step {t}");
        }
        // Withholding insulin raises glucose relative to the plain run.
        let max_m = mitigated
            .bg_true()
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let max_p = plain
            .bg_true()
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max_m > max_p,
            "suspension had no effect: {max_m} vs {max_p}"
        );
    }

    #[test]
    fn observed_run_matches_plain_run() {
        let plain = loop_for(None, 3);
        let patient = GlucosymPatient::from_profile(0, 42);
        let controller = OpenApsController::new();
        let mut rng = SmallRng::new(3);
        let meals = MealSchedule::generate(144, &mut rng.fork(1));
        let cgm = Cgm::typical(rng.fork(2));
        let mut seen: Vec<(usize, StepRecord)> = Vec::new();
        let observed = ClosedLoop::new(patient, controller, InsulinPump::healthy(), cgm, meals)
            .run_observed(144, "glucosym", 0, 0, &mut |step: usize, r: &StepRecord| {
                seen.push((step, *r));
            });
        assert_eq!(observed, plain);
        assert_eq!(seen.len(), 144);
        for (i, (step, rec)) in seen.iter().enumerate() {
            assert_eq!(*step, i);
            assert_eq!(rec, &observed.records()[i]);
        }
    }
}
