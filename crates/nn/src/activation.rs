//! Activation functions and their derivatives.
//!
//! The element-wise transcendentals (`sigmoid`, `tanh`, softmax) route
//! through the runtime-dispatched kernels of [`crate::simd`]: every code
//! path that evaluates one of these functions — matrix-at-a-time here, the
//! fused LSTM step, streaming single rows — uses the *same* per-element
//! implementation, so cross-path bit-identity (streaming == batch, fused ==
//! unfused) holds under both the scalar and the AVX2 backend.

use crate::matrix::Matrix;
use crate::simd;

/// Rectified linear unit applied element-wise.
pub fn relu(x: &Matrix) -> Matrix {
    x.map(|v| v.max(0.0))
}

/// Rectified linear unit applied in place (allocation-free variant of
/// [`relu`] for forward-only paths).
pub fn relu_inplace(x: &mut Matrix) {
    x.map_inplace(|v| v.max(0.0));
}

/// Derivative mask of ReLU evaluated at the *pre-activation* `x`
/// (1 where `x > 0`, else 0).
pub fn relu_grad_mask(x: &Matrix) -> Matrix {
    x.map(|v| if v > 0.0 { 1.0 } else { 0.0 })
}

/// Logistic sigmoid, numerically stable for large `|v|` — the scalar
/// backend's per-element kernel (the AVX2 backend substitutes its own
/// mirror, see [`crate::simd::sigmoid_m`]).
pub fn sigmoid_scalar(v: f64) -> f64 {
    if v >= 0.0 {
        1.0 / (1.0 + (-v).exp())
    } else {
        let e = v.exp();
        e / (1.0 + e)
    }
}

/// Logistic sigmoid applied element-wise (dispatched, see
/// [`crate::simd::sigmoid_slice`]).
pub fn sigmoid(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    simd::sigmoid_slice(out.as_mut_slice());
    out
}

/// Hyperbolic tangent applied element-wise (dispatched, see
/// [`crate::simd::tanh_slice`]).
pub fn tanh(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    simd::tanh_slice(out.as_mut_slice());
    out
}

/// Row-wise softmax with the max-subtraction trick for stability.
///
/// Each row of the result sums to 1.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    softmax_rows_inplace(&mut out);
    out
}

/// [`softmax_rows`] applied in place (allocation-free variant for the
/// scratch-buffer prediction path — both share this implementation, so the
/// results are bit-identical). Each row goes through the dispatched
/// per-row kernel ([`crate::simd::softmax_row`]), which touches only the
/// row slice — a row therefore softmaxes to the same bits in a 1-row and
/// an n-row batch.
pub fn softmax_rows_inplace(logits: &mut Matrix) {
    for r in 0..logits.rows() {
        simd::softmax_row(logits.row_mut(r));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]);
        assert_eq!(relu(&x), Matrix::from_rows(&[&[0.0, 0.0, 2.0]]));
    }

    #[test]
    fn relu_mask_matches_definition() {
        let x = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]);
        assert_eq!(relu_grad_mask(&x), Matrix::from_rows(&[&[0.0, 0.0, 1.0]]));
    }

    #[test]
    fn sigmoid_symmetry_and_range() {
        for v in [-50.0, -3.0, 0.0, 3.0, 50.0] {
            let s = sigmoid_scalar(v);
            assert!((0.0..=1.0).contains(&s));
            assert!((s + sigmoid_scalar(-v) - 1.0).abs() < 1e-12);
        }
        assert!((sigmoid_scalar(0.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn sigmoid_stable_for_extremes() {
        assert_eq!(sigmoid_scalar(-1000.0), 0.0);
        assert_eq!(sigmoid_scalar(1000.0), 1.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[100.0, 100.0, 100.0]]);
        let p = softmax_rows(&x);
        for r in 0..2 {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
        // Equal logits → uniform.
        for &v in p.row(1) {
            assert!((v - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_invariant_to_shift() {
        let a = softmax_rows(&Matrix::from_rows(&[&[1.0, 2.0, 3.0]]));
        let b = softmax_rows(&Matrix::from_rows(&[&[1001.0, 1002.0, 1003.0]]));
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}
