//! Saving and loading trained networks.
//!
//! A deployed safety monitor must be trainable offline and shipped to the
//! device, so the networks support (de)serialization. The format is a
//! small line-oriented text format rather than an external one: no
//! serialization-format crate is available in the offline dependency set,
//! and Rust's shortest-round-trip float formatting makes plain text
//! lossless (`f64 → string → f64` is exact).
//!
//! ```text
//! cpsmon-net v1 mlp
//! semantic 0.25
//! classes 2
//! tensors 6
//! tensor dense0.w 36 256
//! <one row of space-separated floats per line>
//! …
//! ```

use crate::dense::Dense;
use crate::gru_net::{GruConfig, GruNet};
use crate::loss::SemanticLoss;
use crate::lstm_net::{LstmConfig, LstmNet};
use crate::matrix::Matrix;
use crate::mlp_net::{MlpConfig, MlpNet};
use std::fmt;
use std::io::{self, BufRead, Write};

/// Errors arising while loading a serialized network.
#[derive(Debug)]
#[non_exhaustive]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream did not match the expected format.
    Parse {
        /// Line number (1-based) where parsing failed.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error while loading network: {e}"),
            LoadError::Parse { line, message } => {
                write!(f, "malformed network file at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            LoadError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

fn write_matrix(w: &mut impl Write, name: &str, m: &Matrix) -> io::Result<()> {
    writeln!(w, "tensor {name} {} {}", m.rows(), m.cols())?;
    for r in 0..m.rows() {
        let row: Vec<String> = m.row(r).iter().map(|v| format!("{v}")).collect();
        writeln!(w, "{}", row.join(" "))?;
    }
    Ok(())
}

/// Streaming line reader with position tracking for error messages.
struct Lines<R> {
    reader: R,
    line: usize,
}

impl<R: BufRead> Lines<R> {
    fn new(reader: R) -> Self {
        Self { reader, line: 0 }
    }

    fn next(&mut self) -> Result<String, LoadError> {
        let mut buf = String::new();
        let n = self.reader.read_line(&mut buf)?;
        self.line += 1;
        if n == 0 {
            return Err(self.err("unexpected end of file"));
        }
        Ok(buf.trim_end().to_string())
    }

    fn err(&self, message: impl Into<String>) -> LoadError {
        LoadError::Parse {
            line: self.line,
            message: message.into(),
        }
    }

    fn read_matrix(&mut self, expected_name: &str) -> Result<Matrix, LoadError> {
        let header = self.next()?;
        let parts: Vec<&str> = header.split_whitespace().collect();
        if parts.len() != 4 || parts[0] != "tensor" {
            return Err(self.err(format!("expected tensor header, got '{header}'")));
        }
        if parts[1] != expected_name {
            return Err(self.err(format!(
                "expected tensor '{expected_name}', got '{}'",
                parts[1]
            )));
        }
        let rows: usize = parts[2].parse().map_err(|_| self.err("bad row count"))?;
        let cols: usize = parts[3].parse().map_err(|_| self.err("bad column count"))?;
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows {
            let line = self.next()?;
            let before = data.len();
            for tok in line.split_whitespace() {
                let v: f64 = tok
                    .parse()
                    .map_err(|_| self.err(format!("bad float '{tok}'")))?;
                data.push(v);
            }
            if data.len() - before != cols {
                return Err(self.err(format!(
                    "expected {cols} values in row, got {}",
                    data.len() - before
                )));
            }
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }

    fn read_kv(&mut self, key: &str) -> Result<Vec<String>, LoadError> {
        let line = self.next()?;
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some(k) if k == key => Ok(parts.map(str::to_string).collect()),
            other => Err(self.err(format!("expected '{key}', got '{}'", other.unwrap_or("")))),
        }
    }
}

impl MlpNet {
    /// Writes the network to `w` in the cpsmon-net v1 format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save(&self, w: &mut impl Write) -> io::Result<()> {
        writeln!(w, "cpsmon-net v1 mlp")?;
        writeln!(w, "semantic {}", self.semantic.weight)?;
        writeln!(w, "layers {}", self.layers().len())?;
        for (i, layer) in self.layers().iter().enumerate() {
            write_matrix(w, &format!("dense{i}.w"), layer.weights())?;
            write_matrix(w, &format!("dense{i}.b"), layer.bias())?;
        }
        Ok(())
    }

    /// Reads a network previously written by [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// Returns [`LoadError`] on I/O failure or malformed input.
    pub fn load(r: &mut impl BufRead) -> Result<MlpNet, LoadError> {
        let mut lines = Lines::new(r);
        let magic = lines.next()?;
        if magic != "cpsmon-net v1 mlp" {
            return Err(lines.err(format!("bad magic '{magic}'")));
        }
        let semantic: f64 = lines.read_kv("semantic")?[0]
            .parse()
            .map_err(|_| lines.err("bad semantic weight"))?;
        let count: usize = lines.read_kv("layers")?[0]
            .parse()
            .map_err(|_| lines.err("bad layer count"))?;
        if count == 0 {
            return Err(lines.err("network must have at least one layer"));
        }
        let mut layers = Vec::with_capacity(count);
        for i in 0..count {
            let w = lines.read_matrix(&format!("dense{i}.w"))?;
            let b = lines.read_matrix(&format!("dense{i}.b"))?;
            layers.push(Dense::from_params(w, b));
        }
        let classes = layers.last().expect("non-empty").output_dim();
        let input_dim = layers[0].input_dim();
        // Rebuild via config then replace parameters, preserving invariants.
        let hidden: Vec<usize> = layers[..count - 1].iter().map(Dense::output_dim).collect();
        let mut net = MlpNet::new(&MlpConfig {
            input_dim,
            hidden,
            classes,
            seed: 0,
        });
        net.semantic = SemanticLoss::new(semantic);
        net.set_layers(layers);
        Ok(net)
    }
}

impl LstmNet {
    /// Writes the network to `w` in the cpsmon-net v1 format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save(&self, w: &mut impl Write) -> io::Result<()> {
        writeln!(w, "cpsmon-net v1 lstm")?;
        writeln!(w, "semantic {}", self.semantic.weight)?;
        writeln!(w, "shape {} {}", self.feature_dim(), self.timesteps())?;
        writeln!(w, "lstms {}", self.lstm_layers().len())?;
        for (i, lstm) in self.lstm_layers().iter().enumerate() {
            write_matrix(w, &format!("lstm{i}.wx"), lstm.wx())?;
            write_matrix(w, &format!("lstm{i}.wh"), lstm.wh())?;
            write_matrix(w, &format!("lstm{i}.b"), lstm.gate_bias())?;
        }
        write_matrix(w, "head.w", self.head().weights())?;
        write_matrix(w, "head.b", self.head().bias())?;
        Ok(())
    }

    /// Reads a network previously written by [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// Returns [`LoadError`] on I/O failure or malformed input.
    pub fn load(r: &mut impl BufRead) -> Result<LstmNet, LoadError> {
        let mut lines = Lines::new(r);
        let magic = lines.next()?;
        if magic != "cpsmon-net v1 lstm" {
            return Err(lines.err(format!("bad magic '{magic}'")));
        }
        let semantic: f64 = lines.read_kv("semantic")?[0]
            .parse()
            .map_err(|_| lines.err("bad semantic weight"))?;
        let shape = lines.read_kv("shape")?;
        if shape.len() != 2 {
            return Err(lines.err("bad shape line"));
        }
        let feature_dim: usize = shape[0].parse().map_err(|_| lines.err("bad feature dim"))?;
        let timesteps: usize = shape[1].parse().map_err(|_| lines.err("bad timesteps"))?;
        let count: usize = lines.read_kv("lstms")?[0]
            .parse()
            .map_err(|_| lines.err("bad lstm count"))?;
        if count == 0 {
            return Err(lines.err("network must have at least one LSTM layer"));
        }
        let mut lstm_params = Vec::with_capacity(count);
        let mut hidden = Vec::with_capacity(count);
        for i in 0..count {
            let wx = lines.read_matrix(&format!("lstm{i}.wx"))?;
            let wh = lines.read_matrix(&format!("lstm{i}.wh"))?;
            let b = lines.read_matrix(&format!("lstm{i}.b"))?;
            hidden.push(wh.rows());
            lstm_params.push((wx, wh, b));
        }
        let head_w = lines.read_matrix("head.w")?;
        let head_b = lines.read_matrix("head.b")?;
        let classes = head_w.cols();
        let mut net = LstmNet::new(&LstmConfig {
            feature_dim,
            timesteps,
            hidden,
            classes,
            seed: 0,
        });
        net.semantic = SemanticLoss::new(semantic);
        net.set_params(lstm_params, Dense::from_params(head_w, head_b))
            .map_err(|msg| lines.err(msg))?;
        Ok(net)
    }
}

/// Names of the nine per-layer GRU tensors, in [`crate::Gru::params`] order.
const GRU_TENSORS: [&str; 9] = ["wxz", "wxr", "wxn", "whz", "whr", "whn", "bz", "br", "bn"];

impl GruNet {
    /// Writes the network to `w` in the cpsmon-net v1 format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save(&self, w: &mut impl Write) -> io::Result<()> {
        writeln!(w, "cpsmon-net v1 gru")?;
        writeln!(w, "semantic {}", self.semantic.weight)?;
        writeln!(w, "shape {} {}", self.feature_dim(), self.timesteps())?;
        writeln!(w, "grus {}", self.gru_layers().len())?;
        for (i, gru) in self.gru_layers().iter().enumerate() {
            for (name, m) in GRU_TENSORS.iter().zip(gru.params()) {
                write_matrix(w, &format!("gru{i}.{name}"), m)?;
            }
        }
        write_matrix(w, "head.w", self.head().weights())?;
        write_matrix(w, "head.b", self.head().bias())?;
        Ok(())
    }

    /// Reads a network previously written by [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// Returns [`LoadError`] on I/O failure or malformed input.
    pub fn load(r: &mut impl BufRead) -> Result<GruNet, LoadError> {
        let mut lines = Lines::new(r);
        let magic = lines.next()?;
        if magic != "cpsmon-net v1 gru" {
            return Err(lines.err(format!("bad magic '{magic}'")));
        }
        let semantic: f64 = lines.read_kv("semantic")?[0]
            .parse()
            .map_err(|_| lines.err("bad semantic weight"))?;
        let shape = lines.read_kv("shape")?;
        if shape.len() != 2 {
            return Err(lines.err("bad shape line"));
        }
        let feature_dim: usize = shape[0].parse().map_err(|_| lines.err("bad feature dim"))?;
        let timesteps: usize = shape[1].parse().map_err(|_| lines.err("bad timesteps"))?;
        let count: usize = lines.read_kv("grus")?[0]
            .parse()
            .map_err(|_| lines.err("bad gru count"))?;
        if count == 0 {
            return Err(lines.err("network must have at least one GRU layer"));
        }
        let mut gru_params = Vec::with_capacity(count);
        let mut hidden = Vec::with_capacity(count);
        for i in 0..count {
            let mut ms = Vec::with_capacity(9);
            for name in GRU_TENSORS {
                ms.push(lines.read_matrix(&format!("gru{i}.{name}"))?);
            }
            let ms: [Matrix; 9] = ms.try_into().expect("exactly nine tensors read");
            hidden.push(ms[3].rows());
            gru_params.push(ms);
        }
        let head_w = lines.read_matrix("head.w")?;
        let head_b = lines.read_matrix("head.b")?;
        let classes = head_w.cols();
        let mut net = GruNet::new(&GruConfig {
            feature_dim,
            timesteps,
            hidden,
            classes,
            seed: 0,
        });
        net.semantic = SemanticLoss::new(semantic);
        net.set_params(gru_params, Dense::from_params(head_w, head_b))
            .map_err(|msg| lines.err(msg))?;
        Ok(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_normal;
    use crate::model::GradModel;
    use crate::rng::SmallRng;
    use std::io::BufReader;

    #[test]
    fn mlp_roundtrip_is_exact() {
        let net = MlpNet::new(&MlpConfig {
            input_dim: 5,
            hidden: vec![7, 3],
            classes: 2,
            seed: 9,
        });
        let mut buf = Vec::new();
        net.save(&mut buf).unwrap();
        let loaded = MlpNet::load(&mut BufReader::new(buf.as_slice())).unwrap();
        let x = random_normal(4, 5, 1.0, &mut SmallRng::new(1));
        assert_eq!(net.predict_proba(&x), loaded.predict_proba(&x));
        assert_eq!(net.semantic, loaded.semantic);
    }

    #[test]
    fn lstm_roundtrip_is_exact() {
        let net = LstmNet::new(&LstmConfig {
            feature_dim: 3,
            timesteps: 4,
            hidden: vec![6, 5],
            classes: 2,
            seed: 11,
        });
        let mut buf = Vec::new();
        net.save(&mut buf).unwrap();
        let loaded = LstmNet::load(&mut BufReader::new(buf.as_slice())).unwrap();
        let x = random_normal(3, 12, 1.0, &mut SmallRng::new(2));
        assert_eq!(net.predict_proba(&x), loaded.predict_proba(&x));
    }

    #[test]
    fn gru_roundtrip_is_exact() {
        let mut net = GruNet::new(&GruConfig {
            feature_dim: 3,
            timesteps: 4,
            hidden: vec![6, 5],
            classes: 2,
            seed: 13,
        });
        net.semantic = SemanticLoss::new(0.5);
        let mut buf = Vec::new();
        net.save(&mut buf).unwrap();
        let loaded = GruNet::load(&mut BufReader::new(buf.as_slice())).unwrap();
        let x = random_normal(5, 12, 1.0, &mut SmallRng::new(3));
        assert_eq!(net.predict_proba(&x), loaded.predict_proba(&x));
        assert_eq!(net.semantic, loaded.semantic);
        assert_eq!(net.param_count(), loaded.param_count());
    }

    #[test]
    fn gru_load_rejects_truncated_file() {
        let net = GruNet::new(&GruConfig {
            feature_dim: 2,
            timesteps: 3,
            hidden: vec![4],
            classes: 2,
            seed: 1,
        });
        let mut buf = Vec::new();
        net.save(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let err = GruNet::load(&mut BufReader::new(buf.as_slice())).unwrap_err();
        assert!(matches!(err, LoadError::Parse { .. }), "{err}");
    }

    #[test]
    fn load_rejects_bad_magic() {
        let data = b"not-a-network\n";
        let err = MlpNet::load(&mut BufReader::new(data.as_slice())).unwrap_err();
        assert!(matches!(err, LoadError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn load_rejects_truncated_file() {
        let net = MlpNet::new(&MlpConfig {
            input_dim: 3,
            hidden: vec![4],
            classes: 2,
            seed: 1,
        });
        let mut buf = Vec::new();
        net.save(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let err = MlpNet::load(&mut BufReader::new(buf.as_slice())).unwrap_err();
        assert!(matches!(err, LoadError::Parse { .. }), "{err}");
    }

    #[test]
    fn load_rejects_corrupt_float() {
        let net = MlpNet::new(&MlpConfig {
            input_dim: 2,
            hidden: vec![2],
            classes: 2,
            seed: 1,
        });
        let mut buf = Vec::new();
        net.save(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap().replacen("0.", "xx.", 1);
        let err = MlpNet::load(&mut BufReader::new(text.as_bytes())).unwrap_err();
        assert!(matches!(err, LoadError::Parse { .. }), "{err}");
    }

    #[test]
    #[allow(clippy::excessive_precision)]
    fn extreme_values_roundtrip() {
        // Shortest-roundtrip float formatting must survive subnormals and
        // large magnitudes.
        let mut net = MlpNet::new(&MlpConfig {
            input_dim: 2,
            hidden: vec![2],
            classes: 2,
            seed: 1,
        });
        net.set_layers(vec![
            Dense::from_params(
                Matrix::from_rows(&[&[1e-308, -1e300], &[std::f64::consts::PI, 0.0]]),
                Matrix::row_vector(&[f64::MIN_POSITIVE, 123.456_789_012_345_68]),
            ),
            Dense::from_params(
                Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]),
                Matrix::row_vector(&[0.0, 0.0]),
            ),
        ]);
        let mut buf = Vec::new();
        net.save(&mut buf).unwrap();
        let loaded = MlpNet::load(&mut BufReader::new(buf.as_slice())).unwrap();
        let x = Matrix::from_rows(&[&[1.0, 1.0]]);
        assert_eq!(net.predict_proba(&x), loaded.predict_proba(&x));
    }
}
