//! Saving and loading trained networks.
//!
//! A deployed safety monitor must be trainable offline and shipped to the
//! device, so the networks support (de)serialization. The format is a
//! small line-oriented text format rather than an external one: no
//! serialization-format crate is available in the offline dependency set,
//! and Rust's shortest-round-trip float formatting makes plain text
//! lossless (`f64 → string → f64` is exact).
//!
//! ```text
//! cpsmon-net v1 mlp
//! semantic 0.25
//! classes 2
//! tensors 6
//! tensor dense0.w 36 256
//! <one row of space-separated floats per line>
//! …
//! ```
//!
//! ## Format v2: quantized tensors
//!
//! Version 2 of the format (magic `cpsmon-net v2 <kind>`) adds a
//! `precision <f64|f16|int8>` line after the magic and two quantized
//! tensor encodings beside the exact `tensor` one:
//!
//! ```text
//! cpsmon-net v2 lstm
//! precision int8
//! semantic 0.25
//! shape 6 6
//! lstms 2
//! tensor16 lstm0.wx 6 512        ← rows of 4-hex-digit IEEE f16 bits
//! tensor8  lstm0.wh 128 512 0.0123 ← per-tensor scale, rows of i8 ints
//! …
//! ```
//!
//! - `tensor16`: each value is the IEEE binary16 bit pattern (round to
//!   nearest even from the f64 weight), written as 4 hex digits.
//! - `tensor8`: symmetric per-tensor affine quantization — `scale`
//!   = max-abs / 127, each value the nearest integer of `v / scale`
//!   clamped to ±127, dequantized as `q × scale`. A non-finite or
//!   non-positive scale is rejected at parse time, so a corrupted file
//!   fails loudly instead of silently mispredicting.
//!
//! Readers accept v1 and v2 interchangeably ([`MlpNet::load`] /
//! [`LstmNet::load`] report which precision was stored via
//! [`load_with_precision`](LstmNet::load_with_precision)); writers emit
//! v1 for exact f64 saves ([`save`](LstmNet::save)) and v2 for quantized
//! ones ([`save_quantized`](LstmNet::save_quantized)), so artifacts
//! produced by older builds keep loading unchanged.

use crate::dense::Dense;
use crate::gru_net::{GruConfig, GruNet};
use crate::loss::SemanticLoss;
use crate::lstm_net::{LstmConfig, LstmNet};
use crate::matrix::Matrix;
use crate::mlp_net::{MlpConfig, MlpNet};
use std::fmt;
use std::io::{self, BufRead, Write};

/// Errors arising while loading a serialized network.
#[derive(Debug)]
#[non_exhaustive]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream did not match the expected format.
    Parse {
        /// Line number (1-based) where parsing failed.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error while loading network: {e}"),
            LoadError::Parse { line, message } => {
                write!(f, "malformed network file at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            LoadError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Weight storage precision of a serialized network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightPrecision {
    /// Exact f64 weights (`tensor`, lossless roundtrip).
    F64,
    /// IEEE binary16 weights (`tensor16`, ~3 decimal digits).
    F16,
    /// Symmetric int8 weights with a per-tensor scale (`tensor8`).
    Int8,
}

impl WeightPrecision {
    /// The token used in the v2 `precision` line.
    pub fn label(&self) -> &'static str {
        match self {
            WeightPrecision::F64 => "f64",
            WeightPrecision::F16 => "f16",
            WeightPrecision::Int8 => "int8",
        }
    }

    /// Parses a `precision` token.
    pub fn from_label(s: &str) -> Option<WeightPrecision> {
        match s {
            "f64" => Some(WeightPrecision::F64),
            "f16" => Some(WeightPrecision::F16),
            "int8" => Some(WeightPrecision::Int8),
            _ => None,
        }
    }
}

/// Converts an f64 to IEEE binary16 bits, rounding to nearest even
/// (through f32 first — exact, since binary16 precision is far below
/// binary32's and double rounding cannot occur at these widths).
pub fn f16_bits_from_f64(v: f64) -> u16 {
    let x = (v as f32).to_bits();
    let sign = ((x >> 16) & 0x8000) as u16;
    let exp = ((x >> 23) & 0xff) as i32;
    let man = x & 0x007f_ffff;
    if exp == 0xff {
        // Inf / NaN (keep NaN distinguishable from Inf).
        return sign | 0x7c00 | u16::from(man != 0) << 9;
    }
    let e16 = exp - 127 + 15;
    if e16 >= 0x1f {
        return sign | 0x7c00; // overflow → ±Inf
    }
    if e16 <= 0 {
        if e16 < -10 {
            return sign; // underflow → ±0
        }
        // Subnormal: shift the (implicit-1) mantissa into place.
        let man = man | 0x0080_0000;
        let shift = (14 - e16) as u32;
        let half = (man >> shift) as u16;
        let rem = man & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let round_up = rem > halfway || (rem == halfway && half & 1 == 1);
        return sign | (half + u16::from(round_up));
    }
    let half = ((e16 as u32) << 10 | man >> 13) as u16;
    let rem = man & 0x1fff;
    let round_up = rem > 0x1000 || (rem == 0x1000 && half & 1 == 1);
    // A mantissa carry correctly bumps the exponent (up to ±Inf).
    sign | (half + u16::from(round_up))
}

/// Converts IEEE binary16 bits to f64 (exact: every finite binary16 value
/// is representable in binary64).
pub fn f64_from_f16_bits(bits: u16) -> f64 {
    let sign = if bits & 0x8000 != 0 { -1.0 } else { 1.0 };
    let exp = ((bits >> 10) & 0x1f) as i32;
    let man = f64::from(bits & 0x3ff);
    let mag = match exp {
        0 => man * 2f64.powi(-24),
        0x1f => {
            if man == 0.0 {
                f64::INFINITY
            } else {
                f64::NAN
            }
        }
        _ => (1.0 + man / 1024.0) * 2f64.powi(exp - 15),
    };
    sign * mag
}

/// The symmetric per-tensor int8 scale: max-abs / 127, or 1 for an
/// all-zero tensor so dequantization stays well-defined.
pub fn int8_scale(m: &Matrix) -> f64 {
    let max_abs = m.as_slice().iter().fold(0.0f64, |a, &v| a.max(v.abs()));
    if max_abs == 0.0 {
        1.0
    } else {
        max_abs / 127.0
    }
}

fn write_matrix(w: &mut impl Write, name: &str, m: &Matrix) -> io::Result<()> {
    writeln!(w, "tensor {name} {} {}", m.rows(), m.cols())?;
    for r in 0..m.rows() {
        let row: Vec<String> = m.row(r).iter().map(|v| format!("{v}")).collect();
        writeln!(w, "{}", row.join(" "))?;
    }
    Ok(())
}

/// Writes one tensor in the encoding `precision` selects (v2 formats).
fn write_matrix_q(
    w: &mut impl Write,
    name: &str,
    m: &Matrix,
    precision: WeightPrecision,
) -> io::Result<()> {
    match precision {
        WeightPrecision::F64 => write_matrix(w, name, m),
        WeightPrecision::F16 => {
            writeln!(w, "tensor16 {name} {} {}", m.rows(), m.cols())?;
            for r in 0..m.rows() {
                let row: Vec<String> = m
                    .row(r)
                    .iter()
                    .map(|&v| format!("{:04x}", f16_bits_from_f64(v)))
                    .collect();
                writeln!(w, "{}", row.join(" "))?;
            }
            Ok(())
        }
        WeightPrecision::Int8 => {
            let scale = int8_scale(m);
            writeln!(w, "tensor8 {name} {} {} {scale}", m.rows(), m.cols())?;
            for r in 0..m.rows() {
                let row: Vec<String> = m
                    .row(r)
                    .iter()
                    .map(|&v| format!("{}", (v / scale).round().clamp(-127.0, 127.0) as i32))
                    .collect();
                writeln!(w, "{}", row.join(" "))?;
            }
            Ok(())
        }
    }
}

/// Streaming line reader with position tracking for error messages.
struct Lines<R> {
    reader: R,
    line: usize,
}

impl<R: BufRead> Lines<R> {
    fn new(reader: R) -> Self {
        Self { reader, line: 0 }
    }

    fn next(&mut self) -> Result<String, LoadError> {
        let mut buf = String::new();
        let n = self.reader.read_line(&mut buf)?;
        self.line += 1;
        if n == 0 {
            return Err(self.err("unexpected end of file"));
        }
        Ok(buf.trim_end().to_string())
    }

    fn err(&self, message: impl Into<String>) -> LoadError {
        LoadError::Parse {
            line: self.line,
            message: message.into(),
        }
    }

    fn read_matrix(&mut self, expected_name: &str) -> Result<Matrix, LoadError> {
        self.read_matrix_v(expected_name, false)
    }

    /// Reads one tensor in any encoding the format version allows:
    /// `tensor` always, `tensor16` / `tensor8` only in v2 files. All
    /// encodings dequantize to an f64 [`Matrix`] here — loading is the
    /// "dequant" half of the dequant-or-native choice; the native f32
    /// engine is built separately from the dequantized network.
    fn read_matrix_v(&mut self, expected_name: &str, v2: bool) -> Result<Matrix, LoadError> {
        let header = self.next()?;
        let parts: Vec<&str> = header.split_whitespace().collect();
        let kind = parts.first().copied().unwrap_or("");
        let quantized = kind == "tensor16" || kind == "tensor8";
        if !(kind == "tensor" || (v2 && quantized)) {
            return Err(self.err(format!("expected tensor header, got '{header}'")));
        }
        let expected_len = if kind == "tensor8" { 5 } else { 4 };
        if parts.len() != expected_len {
            return Err(self.err(format!("malformed {kind} header '{header}'")));
        }
        if parts[1] != expected_name {
            return Err(self.err(format!(
                "expected tensor '{expected_name}', got '{}'",
                parts[1]
            )));
        }
        let rows: usize = parts[2].parse().map_err(|_| self.err("bad row count"))?;
        let cols: usize = parts[3].parse().map_err(|_| self.err("bad column count"))?;
        let scale = if kind == "tensor8" {
            let s: f64 = parts[4]
                .parse()
                .map_err(|_| self.err(format!("bad int8 scale '{}'", parts[4])))?;
            if !s.is_finite() || s <= 0.0 {
                return Err(self.err(format!(
                    "corrupted int8 scale {s} for tensor '{expected_name}' \
                     (must be finite and positive)"
                )));
            }
            s
        } else {
            1.0
        };
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows {
            let line = self.next()?;
            let before = data.len();
            for tok in line.split_whitespace() {
                let v = match kind {
                    "tensor16" => f64_from_f16_bits(
                        u16::from_str_radix(tok, 16)
                            .map_err(|_| self.err(format!("bad f16 bits '{tok}'")))?,
                    ),
                    "tensor8" => {
                        let q: i32 = tok
                            .parse()
                            .map_err(|_| self.err(format!("bad int8 value '{tok}'")))?;
                        if !(-127..=127).contains(&q) {
                            return Err(self.err(format!("int8 value {q} out of range")));
                        }
                        f64::from(q) * scale
                    }
                    _ => tok
                        .parse()
                        .map_err(|_| self.err(format!("bad float '{tok}'")))?,
                };
                data.push(v);
            }
            if data.len() - before != cols {
                return Err(self.err(format!(
                    "expected {cols} values in row, got {}",
                    data.len() - before
                )));
            }
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }

    fn read_kv(&mut self, key: &str) -> Result<Vec<String>, LoadError> {
        let line = self.next()?;
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some(k) if k == key => Ok(parts.map(str::to_string).collect()),
            other => Err(self.err(format!("expected '{key}', got '{}'", other.unwrap_or("")))),
        }
    }
}

/// Parses a `cpsmon-net` magic line for `kind`, returning the stored
/// precision: v1 is implicitly [`WeightPrecision::F64`]; v2 reads the
/// `precision` line that follows the magic.
fn read_magic(lines: &mut Lines<impl BufRead>, kind: &str) -> Result<WeightPrecision, LoadError> {
    let magic = lines.next()?;
    if magic == format!("cpsmon-net v1 {kind}") {
        return Ok(WeightPrecision::F64);
    }
    if magic != format!("cpsmon-net v2 {kind}") {
        return Err(lines.err(format!("bad magic '{magic}'")));
    }
    let token = lines.read_kv("precision")?;
    token
        .first()
        .and_then(|t| WeightPrecision::from_label(t))
        .ok_or_else(|| lines.err("bad precision token"))
}

impl MlpNet {
    /// Writes the network to `w` in the cpsmon-net v1 format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save(&self, w: &mut impl Write) -> io::Result<()> {
        writeln!(w, "cpsmon-net v1 mlp")?;
        writeln!(w, "semantic {}", self.semantic.weight)?;
        writeln!(w, "layers {}", self.layers().len())?;
        for (i, layer) in self.layers().iter().enumerate() {
            write_matrix(w, &format!("dense{i}.w"), layer.weights())?;
            write_matrix(w, &format!("dense{i}.b"), layer.bias())?;
        }
        Ok(())
    }

    /// Writes the network to `w` in the cpsmon-net v2 format with weights
    /// stored at `precision`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save_quantized(&self, w: &mut impl Write, precision: WeightPrecision) -> io::Result<()> {
        writeln!(w, "cpsmon-net v2 mlp")?;
        writeln!(w, "precision {}", precision.label())?;
        writeln!(w, "semantic {}", self.semantic.weight)?;
        writeln!(w, "layers {}", self.layers().len())?;
        for (i, layer) in self.layers().iter().enumerate() {
            write_matrix_q(w, &format!("dense{i}.w"), layer.weights(), precision)?;
            write_matrix_q(w, &format!("dense{i}.b"), layer.bias(), precision)?;
        }
        Ok(())
    }

    /// Reads a network previously written by [`save`](Self::save) or
    /// [`save_quantized`](Self::save_quantized) (v1 or v2, any precision —
    /// quantized weights are dequantized to f64).
    ///
    /// # Errors
    ///
    /// Returns [`LoadError`] on I/O failure or malformed input.
    pub fn load(r: &mut impl BufRead) -> Result<MlpNet, LoadError> {
        Self::load_with_precision(r).map(|(net, _)| net)
    }

    /// Like [`load`](Self::load), also reporting the precision the file
    /// stored its weights at.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError`] on I/O failure or malformed input.
    pub fn load_with_precision(
        r: &mut impl BufRead,
    ) -> Result<(MlpNet, WeightPrecision), LoadError> {
        let mut lines = Lines::new(r);
        let precision = read_magic(&mut lines, "mlp")?;
        let v2 = precision != WeightPrecision::F64;
        let semantic: f64 = lines.read_kv("semantic")?[0]
            .parse()
            .map_err(|_| lines.err("bad semantic weight"))?;
        let count: usize = lines.read_kv("layers")?[0]
            .parse()
            .map_err(|_| lines.err("bad layer count"))?;
        if count == 0 {
            return Err(lines.err("network must have at least one layer"));
        }
        let mut layers = Vec::with_capacity(count);
        for i in 0..count {
            let w = lines.read_matrix_v(&format!("dense{i}.w"), v2)?;
            let b = lines.read_matrix_v(&format!("dense{i}.b"), v2)?;
            layers.push(Dense::from_params(w, b));
        }
        let classes = layers.last().expect("non-empty").output_dim();
        let input_dim = layers[0].input_dim();
        // Rebuild via config then replace parameters, preserving invariants.
        let hidden: Vec<usize> = layers[..count - 1].iter().map(Dense::output_dim).collect();
        let mut net = MlpNet::new(&MlpConfig {
            input_dim,
            hidden,
            classes,
            seed: 0,
        });
        net.semantic = SemanticLoss::new(semantic);
        net.set_layers(layers);
        Ok((net, precision))
    }
}

impl LstmNet {
    /// Writes the network to `w` in the cpsmon-net v1 format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save(&self, w: &mut impl Write) -> io::Result<()> {
        writeln!(w, "cpsmon-net v1 lstm")?;
        writeln!(w, "semantic {}", self.semantic.weight)?;
        writeln!(w, "shape {} {}", self.feature_dim(), self.timesteps())?;
        writeln!(w, "lstms {}", self.lstm_layers().len())?;
        for (i, lstm) in self.lstm_layers().iter().enumerate() {
            write_matrix(w, &format!("lstm{i}.wx"), lstm.wx())?;
            write_matrix(w, &format!("lstm{i}.wh"), lstm.wh())?;
            write_matrix(w, &format!("lstm{i}.b"), lstm.gate_bias())?;
        }
        write_matrix(w, "head.w", self.head().weights())?;
        write_matrix(w, "head.b", self.head().bias())?;
        Ok(())
    }

    /// Writes the network to `w` in the cpsmon-net v2 format with weights
    /// stored at `precision`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save_quantized(&self, w: &mut impl Write, precision: WeightPrecision) -> io::Result<()> {
        writeln!(w, "cpsmon-net v2 lstm")?;
        writeln!(w, "precision {}", precision.label())?;
        writeln!(w, "semantic {}", self.semantic.weight)?;
        writeln!(w, "shape {} {}", self.feature_dim(), self.timesteps())?;
        writeln!(w, "lstms {}", self.lstm_layers().len())?;
        for (i, lstm) in self.lstm_layers().iter().enumerate() {
            write_matrix_q(w, &format!("lstm{i}.wx"), lstm.wx(), precision)?;
            write_matrix_q(w, &format!("lstm{i}.wh"), lstm.wh(), precision)?;
            write_matrix_q(w, &format!("lstm{i}.b"), lstm.gate_bias(), precision)?;
        }
        write_matrix_q(w, "head.w", self.head().weights(), precision)?;
        write_matrix_q(w, "head.b", self.head().bias(), precision)?;
        Ok(())
    }

    /// Reads a network previously written by [`save`](Self::save) or
    /// [`save_quantized`](Self::save_quantized) (v1 or v2, any precision —
    /// quantized weights are dequantized to f64).
    ///
    /// # Errors
    ///
    /// Returns [`LoadError`] on I/O failure or malformed input.
    pub fn load(r: &mut impl BufRead) -> Result<LstmNet, LoadError> {
        Self::load_with_precision(r).map(|(net, _)| net)
    }

    /// Like [`load`](Self::load), also reporting the precision the file
    /// stored its weights at.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError`] on I/O failure or malformed input.
    pub fn load_with_precision(
        r: &mut impl BufRead,
    ) -> Result<(LstmNet, WeightPrecision), LoadError> {
        let mut lines = Lines::new(r);
        let precision = read_magic(&mut lines, "lstm")?;
        let v2 = precision != WeightPrecision::F64;
        let semantic: f64 = lines.read_kv("semantic")?[0]
            .parse()
            .map_err(|_| lines.err("bad semantic weight"))?;
        let shape = lines.read_kv("shape")?;
        if shape.len() != 2 {
            return Err(lines.err("bad shape line"));
        }
        let feature_dim: usize = shape[0].parse().map_err(|_| lines.err("bad feature dim"))?;
        let timesteps: usize = shape[1].parse().map_err(|_| lines.err("bad timesteps"))?;
        let count: usize = lines.read_kv("lstms")?[0]
            .parse()
            .map_err(|_| lines.err("bad lstm count"))?;
        if count == 0 {
            return Err(lines.err("network must have at least one LSTM layer"));
        }
        let mut lstm_params = Vec::with_capacity(count);
        let mut hidden = Vec::with_capacity(count);
        for i in 0..count {
            let wx = lines.read_matrix_v(&format!("lstm{i}.wx"), v2)?;
            let wh = lines.read_matrix_v(&format!("lstm{i}.wh"), v2)?;
            let b = lines.read_matrix_v(&format!("lstm{i}.b"), v2)?;
            hidden.push(wh.rows());
            lstm_params.push((wx, wh, b));
        }
        let head_w = lines.read_matrix_v("head.w", v2)?;
        let head_b = lines.read_matrix_v("head.b", v2)?;
        let classes = head_w.cols();
        let mut net = LstmNet::new(&LstmConfig {
            feature_dim,
            timesteps,
            hidden,
            classes,
            seed: 0,
        });
        net.semantic = SemanticLoss::new(semantic);
        net.set_params(lstm_params, Dense::from_params(head_w, head_b))
            .map_err(|msg| lines.err(msg))?;
        Ok((net, precision))
    }
}

/// Names of the nine per-layer GRU tensors, in [`crate::Gru::params`] order.
const GRU_TENSORS: [&str; 9] = ["wxz", "wxr", "wxn", "whz", "whr", "whn", "bz", "br", "bn"];

impl GruNet {
    /// Writes the network to `w` in the cpsmon-net v1 format.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save(&self, w: &mut impl Write) -> io::Result<()> {
        writeln!(w, "cpsmon-net v1 gru")?;
        writeln!(w, "semantic {}", self.semantic.weight)?;
        writeln!(w, "shape {} {}", self.feature_dim(), self.timesteps())?;
        writeln!(w, "grus {}", self.gru_layers().len())?;
        for (i, gru) in self.gru_layers().iter().enumerate() {
            for (name, m) in GRU_TENSORS.iter().zip(gru.params()) {
                write_matrix(w, &format!("gru{i}.{name}"), m)?;
            }
        }
        write_matrix(w, "head.w", self.head().weights())?;
        write_matrix(w, "head.b", self.head().bias())?;
        Ok(())
    }

    /// Reads a network previously written by [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// Returns [`LoadError`] on I/O failure or malformed input.
    pub fn load(r: &mut impl BufRead) -> Result<GruNet, LoadError> {
        let mut lines = Lines::new(r);
        let magic = lines.next()?;
        if magic != "cpsmon-net v1 gru" {
            return Err(lines.err(format!("bad magic '{magic}'")));
        }
        let semantic: f64 = lines.read_kv("semantic")?[0]
            .parse()
            .map_err(|_| lines.err("bad semantic weight"))?;
        let shape = lines.read_kv("shape")?;
        if shape.len() != 2 {
            return Err(lines.err("bad shape line"));
        }
        let feature_dim: usize = shape[0].parse().map_err(|_| lines.err("bad feature dim"))?;
        let timesteps: usize = shape[1].parse().map_err(|_| lines.err("bad timesteps"))?;
        let count: usize = lines.read_kv("grus")?[0]
            .parse()
            .map_err(|_| lines.err("bad gru count"))?;
        if count == 0 {
            return Err(lines.err("network must have at least one GRU layer"));
        }
        let mut gru_params = Vec::with_capacity(count);
        let mut hidden = Vec::with_capacity(count);
        for i in 0..count {
            let mut ms = Vec::with_capacity(9);
            for name in GRU_TENSORS {
                ms.push(lines.read_matrix(&format!("gru{i}.{name}"))?);
            }
            let ms: [Matrix; 9] = ms.try_into().expect("exactly nine tensors read");
            hidden.push(ms[3].rows());
            gru_params.push(ms);
        }
        let head_w = lines.read_matrix("head.w")?;
        let head_b = lines.read_matrix("head.b")?;
        let classes = head_w.cols();
        let mut net = GruNet::new(&GruConfig {
            feature_dim,
            timesteps,
            hidden,
            classes,
            seed: 0,
        });
        net.semantic = SemanticLoss::new(semantic);
        net.set_params(gru_params, Dense::from_params(head_w, head_b))
            .map_err(|msg| lines.err(msg))?;
        Ok(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_normal;
    use crate::model::GradModel;
    use crate::rng::SmallRng;
    use std::io::BufReader;

    #[test]
    fn mlp_roundtrip_is_exact() {
        let net = MlpNet::new(&MlpConfig {
            input_dim: 5,
            hidden: vec![7, 3],
            classes: 2,
            seed: 9,
        });
        let mut buf = Vec::new();
        net.save(&mut buf).unwrap();
        let loaded = MlpNet::load(&mut BufReader::new(buf.as_slice())).unwrap();
        let x = random_normal(4, 5, 1.0, &mut SmallRng::new(1));
        assert_eq!(net.predict_proba(&x), loaded.predict_proba(&x));
        assert_eq!(net.semantic, loaded.semantic);
    }

    #[test]
    fn lstm_roundtrip_is_exact() {
        let net = LstmNet::new(&LstmConfig {
            feature_dim: 3,
            timesteps: 4,
            hidden: vec![6, 5],
            classes: 2,
            seed: 11,
        });
        let mut buf = Vec::new();
        net.save(&mut buf).unwrap();
        let loaded = LstmNet::load(&mut BufReader::new(buf.as_slice())).unwrap();
        let x = random_normal(3, 12, 1.0, &mut SmallRng::new(2));
        assert_eq!(net.predict_proba(&x), loaded.predict_proba(&x));
    }

    #[test]
    fn gru_roundtrip_is_exact() {
        let mut net = GruNet::new(&GruConfig {
            feature_dim: 3,
            timesteps: 4,
            hidden: vec![6, 5],
            classes: 2,
            seed: 13,
        });
        net.semantic = SemanticLoss::new(0.5);
        let mut buf = Vec::new();
        net.save(&mut buf).unwrap();
        let loaded = GruNet::load(&mut BufReader::new(buf.as_slice())).unwrap();
        let x = random_normal(5, 12, 1.0, &mut SmallRng::new(3));
        assert_eq!(net.predict_proba(&x), loaded.predict_proba(&x));
        assert_eq!(net.semantic, loaded.semantic);
        assert_eq!(net.param_count(), loaded.param_count());
    }

    #[test]
    fn gru_load_rejects_truncated_file() {
        let net = GruNet::new(&GruConfig {
            feature_dim: 2,
            timesteps: 3,
            hidden: vec![4],
            classes: 2,
            seed: 1,
        });
        let mut buf = Vec::new();
        net.save(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let err = GruNet::load(&mut BufReader::new(buf.as_slice())).unwrap_err();
        assert!(matches!(err, LoadError::Parse { .. }), "{err}");
    }

    #[test]
    fn load_rejects_bad_magic() {
        let data = b"not-a-network\n";
        let err = MlpNet::load(&mut BufReader::new(data.as_slice())).unwrap_err();
        assert!(matches!(err, LoadError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn load_rejects_truncated_file() {
        let net = MlpNet::new(&MlpConfig {
            input_dim: 3,
            hidden: vec![4],
            classes: 2,
            seed: 1,
        });
        let mut buf = Vec::new();
        net.save(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let err = MlpNet::load(&mut BufReader::new(buf.as_slice())).unwrap_err();
        assert!(matches!(err, LoadError::Parse { .. }), "{err}");
    }

    #[test]
    fn load_rejects_corrupt_float() {
        let net = MlpNet::new(&MlpConfig {
            input_dim: 2,
            hidden: vec![2],
            classes: 2,
            seed: 1,
        });
        let mut buf = Vec::new();
        net.save(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap().replacen("0.", "xx.", 1);
        let err = MlpNet::load(&mut BufReader::new(text.as_bytes())).unwrap_err();
        assert!(matches!(err, LoadError::Parse { .. }), "{err}");
    }

    fn lstm_fixture(seed: u64) -> LstmNet {
        LstmNet::new(&LstmConfig {
            feature_dim: 3,
            timesteps: 4,
            hidden: vec![6, 5],
            classes: 2,
            seed,
        })
    }

    #[test]
    fn f16_bits_roundtrip_through_f64_exactly() {
        // Every finite binary16 value must survive f16 → f64 → f16.
        for bits in 0..=u16::MAX {
            let v = f64_from_f16_bits(bits);
            if v.is_nan() {
                continue;
            }
            assert_eq!(f16_bits_from_f64(v), bits, "bits {bits:#06x}");
        }
    }

    #[test]
    fn f16_conversion_rounds_to_nearest_even() {
        assert_eq!(f16_bits_from_f64(1.0), 0x3c00);
        assert_eq!(f16_bits_from_f64(-2.0), 0xc000);
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16; ties
        // go to the even mantissa (1.0).
        assert_eq!(f16_bits_from_f64(1.0 + 2f64.powi(-11)), 0x3c00);
        // Slightly above the halfway point rounds up.
        assert_eq!(f16_bits_from_f64(1.0 + 2f64.powi(-11) * 1.01), 0x3c01);
        // Overflow saturates to infinity, tiny values flush to zero.
        assert_eq!(f16_bits_from_f64(1e6), 0x7c00);
        assert_eq!(f16_bits_from_f64(-1e6), 0xfc00);
        assert_eq!(f16_bits_from_f64(1e-12), 0x0000);
    }

    #[test]
    fn lstm_v2_f64_roundtrip_is_exact() {
        let net = lstm_fixture(31);
        let mut buf = Vec::new();
        net.save_quantized(&mut buf, WeightPrecision::F64).unwrap();
        let (loaded, precision) =
            LstmNet::load_with_precision(&mut BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(precision, WeightPrecision::F64);
        let x = random_normal(3, 12, 1.0, &mut SmallRng::new(2));
        assert_eq!(net.predict_proba(&x), loaded.predict_proba(&x));
    }

    #[test]
    fn lstm_quantized_roundtrips_within_precision() {
        let net = lstm_fixture(33);
        let x = random_normal(4, 12, 1.0, &mut SmallRng::new(5));
        let exact = net.predict_proba(&x);
        for (precision, tol) in [(WeightPrecision::F16, 5e-3), (WeightPrecision::Int8, 5e-2)] {
            let mut buf = Vec::new();
            net.save_quantized(&mut buf, precision).unwrap();
            let (loaded, p) =
                LstmNet::load_with_precision(&mut BufReader::new(buf.as_slice())).unwrap();
            assert_eq!(p, precision);
            let probs = loaded.predict_proba(&x);
            for (a, b) in exact.as_slice().iter().zip(probs.as_slice()) {
                assert!(
                    (a - b).abs() < tol,
                    "{} drifted: {a} vs {b}",
                    precision.label()
                );
            }
        }
    }

    #[test]
    fn mlp_quantized_roundtrips_within_precision() {
        let net = MlpNet::new(&MlpConfig {
            input_dim: 5,
            hidden: vec![7, 3],
            classes: 2,
            seed: 9,
        });
        let x = random_normal(4, 5, 1.0, &mut SmallRng::new(1));
        let exact = net.predict_proba(&x);
        let mut buf = Vec::new();
        net.save_quantized(&mut buf, WeightPrecision::F16).unwrap();
        let (loaded, p) = MlpNet::load_with_precision(&mut BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(p, WeightPrecision::F16);
        for (a, b) in exact
            .as_slice()
            .iter()
            .zip(loaded.predict_proba(&x).as_slice())
        {
            assert!((a - b).abs() < 5e-3, "f16 mlp drifted: {a} vs {b}");
        }
    }

    #[test]
    fn corrupted_int8_scale_is_rejected() {
        let net = lstm_fixture(35);
        let mut buf = Vec::new();
        net.save_quantized(&mut buf, WeightPrecision::Int8).unwrap();
        let text = String::from_utf8(buf).unwrap();
        for bad in ["0", "-1", "nan", "inf"] {
            // Replace the first tensor8 scale with a corrupted value.
            let corrupted: Vec<String> = text
                .lines()
                .map(|l| {
                    if let Some(rest) = l.strip_prefix("tensor8 lstm0.wx ") {
                        let mut parts: Vec<&str> = rest.split_whitespace().collect();
                        let n = parts.len();
                        parts[n - 1] = bad;
                        format!("tensor8 lstm0.wx {}", parts.join(" "))
                    } else {
                        l.to_string()
                    }
                })
                .collect();
            let joined = corrupted.join("\n");
            let err = LstmNet::load(&mut BufReader::new(joined.as_bytes())).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains("scale"),
                "scale {bad} must be rejected with a scale error, got: {msg}"
            );
        }
    }

    #[test]
    fn v1_reader_rejects_quantized_tensors() {
        // A v1 magic with v2 tensor encodings must not parse.
        let net = lstm_fixture(37);
        let mut buf = Vec::new();
        net.save_quantized(&mut buf, WeightPrecision::F16).unwrap();
        let text = String::from_utf8(buf).unwrap().replacen(
            "cpsmon-net v2 lstm\nprecision f16\n",
            "cpsmon-net v1 lstm\n",
            1,
        );
        let err = LstmNet::load(&mut BufReader::new(text.as_bytes())).unwrap_err();
        assert!(matches!(err, LoadError::Parse { .. }), "{err}");
    }

    #[test]
    #[allow(clippy::excessive_precision)]
    fn extreme_values_roundtrip() {
        // Shortest-roundtrip float formatting must survive subnormals and
        // large magnitudes.
        let mut net = MlpNet::new(&MlpConfig {
            input_dim: 2,
            hidden: vec![2],
            classes: 2,
            seed: 1,
        });
        net.set_layers(vec![
            Dense::from_params(
                Matrix::from_rows(&[&[1e-308, -1e300], &[std::f64::consts::PI, 0.0]]),
                Matrix::row_vector(&[f64::MIN_POSITIVE, 123.456_789_012_345_68]),
            ),
            Dense::from_params(
                Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]),
                Matrix::row_vector(&[0.0, 0.0]),
            ),
        ]);
        let mut buf = Vec::new();
        net.save(&mut buf).unwrap();
        let loaded = MlpNet::load(&mut BufReader::new(buf.as_slice())).unwrap();
        let x = Matrix::from_rows(&[&[1.0, 1.0]]);
        assert_eq!(net.predict_proba(&x), loaded.predict_proba(&x));
    }
}
