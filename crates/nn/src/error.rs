//! Error type for fallible `cpsmon-nn` operations.

use std::error::Error;
use std::fmt;

/// Errors reported by network construction and training entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NnError {
    /// A batch of inputs had a width different from the model's input size.
    InputDimMismatch {
        /// Width the model expects.
        expected: usize,
        /// Width that was provided.
        got: usize,
    },
    /// Label vector length differs from the batch row count.
    LabelLenMismatch {
        /// Number of rows in the batch.
        rows: usize,
        /// Number of labels provided.
        labels: usize,
    },
    /// A label was outside `0..classes`.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Number of classes the model predicts.
        classes: usize,
    },
    /// A configuration value was invalid (empty hidden stack, zero classes…).
    InvalidConfig(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::InputDimMismatch { expected, got } => {
                write!(
                    f,
                    "input has {got} features but the model expects {expected}"
                )
            }
            NnError::LabelLenMismatch { rows, labels } => {
                write!(f, "{labels} labels provided for a batch of {rows} rows")
            }
            NnError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            NnError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = NnError::InputDimMismatch {
            expected: 36,
            got: 6,
        };
        assert!(e.to_string().contains("36"));
        let e = NnError::LabelOutOfRange {
            label: 3,
            classes: 2,
        };
        assert!(e.to_string().contains("label 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
