//! A standard LSTM layer with full backpropagation through time (BPTT).
//!
//! Gate layout inside the fused pre-activation `z = x·Wx + h·Wh + b`
//! (shape `N × 4H`) is `[input, forget, cell, output]`. The forget-gate bias
//! is initialized to 1.0, the usual trick to avoid vanishing cell gradients
//! early in training.

use crate::activation::{sigmoid, tanh};
use crate::init::xavier_uniform;
use crate::matrix::Matrix;
use crate::rng::SmallRng;
use crate::simd;

/// Reusable buffers for [`Lstm::forward_only_into`]: the fused-gate
/// pre-activation `z`, the running cell state `c`, and the zero initial
/// hidden state. After the first call with a given batch size, subsequent
/// calls allocate nothing.
#[derive(Debug, Clone)]
pub struct LstmScratch {
    z: Matrix,
    c: Matrix,
    h0: Matrix,
}

impl Default for LstmScratch {
    fn default() -> Self {
        Self {
            z: Matrix::zeros(0, 0),
            c: Matrix::zeros(0, 0),
            h0: Matrix::zeros(0, 0),
        }
    }
}

/// Advances the LSTM state one timestep from the fused pre-activation `z`
/// (`N × 4H`, gate order `[i, f, g, o]`), updating `c` in place and writing
/// the new hidden state into `h`.
///
/// Element-wise this computes exactly `c ← f⊙c + i⊙g; h ← o⊙tanh(c)` with
/// the same operation order and the same dispatched per-element
/// transcendentals as the gate-matrix formulation, so every forward path
/// funnelled through here produces identical bits (row-wise kernel:
/// [`cpsmon_nn::simd::lstm_step_row`](crate::simd::lstm_step_row)).
fn step_state(z: &Matrix, c: &mut Matrix, h: &mut Matrix, h_dim: usize) {
    for r in 0..c.rows() {
        // `c` and `h` are distinct matrices, so the two mutable row borrows
        // cannot alias; split the statements to satisfy the borrow checker.
        let hr = h.row_mut(r);
        simd::lstm_step_row(z.row(r), c.row_mut(r), hr, h_dim);
    }
}

/// One LSTM layer (`input_dim → hidden_dim`).
#[derive(Debug, Clone, PartialEq)]
pub struct Lstm {
    wx: Matrix,
    wh: Matrix,
    b: Matrix,
    input_dim: usize,
    hidden_dim: usize,
}

/// Per-timestep intermediate values cached for the backward pass.
#[derive(Debug, Clone)]
struct StepCache {
    x: Matrix,
    h_prev: Matrix,
    c_prev: Matrix,
    i: Matrix,
    f: Matrix,
    g: Matrix,
    o: Matrix,
    tc: Matrix,
}

/// Forward-pass cache consumed by [`Lstm::backward`].
#[derive(Debug, Clone)]
pub struct LstmCache {
    steps: Vec<StepCache>,
}

impl LstmCache {
    /// Number of timesteps this cache covers.
    pub fn timesteps(&self) -> usize {
        self.steps.len()
    }
}

/// Weight gradients produced by [`Lstm::backward`].
#[derive(Debug, Clone)]
pub struct LstmGrads {
    /// Gradient w.r.t. the input-to-hidden weights.
    pub dwx: Matrix,
    /// Gradient w.r.t. the hidden-to-hidden weights.
    pub dwh: Matrix,
    /// Gradient w.r.t. the fused gate bias.
    pub db: Matrix,
}

impl Lstm {
    /// Creates a layer with Xavier-uniform weights, zero biases, and
    /// forget-gate bias 1.0.
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut SmallRng) -> Self {
        let mut b = Matrix::zeros(1, 4 * hidden_dim);
        for c in hidden_dim..2 * hidden_dim {
            b.set(0, c, 1.0);
        }
        Self {
            wx: xavier_uniform(input_dim, 4 * hidden_dim, rng),
            wh: xavier_uniform(hidden_dim, 4 * hidden_dim, rng),
            b,
            input_dim,
            hidden_dim,
        }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden-state width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.wx.len() + self.wh.len() + self.b.len()
    }

    /// Runs the layer over a sequence (`xs[t]` is the `N × input_dim` batch
    /// at timestep `t`). Returns the hidden state at every timestep along
    /// with the cache for [`backward`](Self::backward).
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or any step has the wrong width.
    pub fn forward(&self, xs: &[Matrix]) -> (Vec<Matrix>, LstmCache) {
        assert!(!xs.is_empty(), "LSTM forward needs at least one timestep");
        let n = xs[0].rows();
        let h_dim = self.hidden_dim;
        let mut h = Matrix::zeros(n, h_dim);
        let mut c = Matrix::zeros(n, h_dim);
        let mut hs = Vec::with_capacity(xs.len());
        let mut steps = Vec::with_capacity(xs.len());
        // One fused-gate scratch buffer reused across all timesteps.
        let mut z = Matrix::zeros(n, 4 * h_dim);
        for x in xs {
            assert_eq!(x.cols(), self.input_dim, "timestep width mismatch");
            assert_eq!(x.rows(), n, "timestep batch-size mismatch");
            x.matmul_add_bias_into(&self.wx, &self.b, &mut z);
            h.matmul_acc(&self.wh, &mut z);
            let i = sigmoid(&z.slice_cols(0, h_dim));
            let f = sigmoid(&z.slice_cols(h_dim, 2 * h_dim));
            let g = tanh(&z.slice_cols(2 * h_dim, 3 * h_dim));
            let o = sigmoid(&z.slice_cols(3 * h_dim, 4 * h_dim));
            let c_new = &f.hadamard(&c) + &i.hadamard(&g);
            let tc = tanh(&c_new);
            let h_new = o.hadamard(&tc);
            steps.push(StepCache {
                x: x.clone(),
                h_prev: h,
                c_prev: c,
                i,
                f,
                g,
                o,
                tc,
            });
            hs.push(h_new.clone());
            h = h_new;
            c = c_new;
        }
        (hs, LstmCache { steps })
    }

    /// Forward pass that keeps only the per-step hidden states — the
    /// prediction path. Skips every backward-cache clone (`x`, `h_prev`,
    /// `c_prev`, the gate activations) that [`forward`](Self::forward)
    /// must retain. Thin wrapper over
    /// [`forward_only_into`](Self::forward_only_into), so batch and
    /// streaming predictions share one code path.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or any step has the wrong width.
    pub fn forward_only(&self, xs: &[Matrix]) -> Vec<Matrix> {
        let mut hs = Vec::new();
        let mut scratch = LstmScratch::default();
        self.forward_only_into(xs, &mut hs, &mut scratch);
        hs
    }

    /// [`forward_only`](Self::forward_only) writing the per-step hidden
    /// states into caller-owned buffers. `hs` is resized to `xs.len()`
    /// matrices of shape `N × hidden`; with a warm `scratch` and correctly
    /// sized `hs` no allocation occurs — the per-step latency path for
    /// streaming monitor sessions.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or any step has the wrong width.
    pub fn forward_only_into(
        &self,
        xs: &[Matrix],
        hs: &mut Vec<Matrix>,
        scratch: &mut LstmScratch,
    ) {
        assert!(!xs.is_empty(), "LSTM forward needs at least one timestep");
        let n = xs[0].rows();
        let h_dim = self.hidden_dim;
        hs.resize_with(xs.len(), || Matrix::zeros(0, 0));
        scratch.z.reset_shape(n, 4 * h_dim);
        scratch.c.reset_shape(n, h_dim);
        scratch.c.map_inplace(|_| 0.0);
        scratch.h0.reset_shape(n, h_dim);
        scratch.h0.map_inplace(|_| 0.0);
        for (t, x) in xs.iter().enumerate() {
            assert_eq!(x.cols(), self.input_dim, "timestep width mismatch");
            assert_eq!(x.rows(), n, "timestep batch-size mismatch");
            x.matmul_add_bias_into(&self.wx, &self.b, &mut scratch.z);
            let (done, todo) = hs.split_at_mut(t);
            let h_prev = if t == 0 { &scratch.h0 } else { &done[t - 1] };
            h_prev.matmul_acc(&self.wh, &mut scratch.z);
            let h_t = &mut todo[0];
            h_t.reset_shape(n, h_dim);
            step_state(&scratch.z, &mut scratch.c, h_t, h_dim);
        }
    }

    /// Advances `rows` independent recurrent states by **one** timestep:
    /// `z = x·Wx + b + h·Wh`, then the fused gate update rewrites `h` and
    /// `c` in place. `x` is `N × input_dim`; `h` and `c` are `N × hidden`
    /// (row `r` is session `r`'s carried state); `z` is an `N × 4H` scratch
    /// fully overwritten here.
    ///
    /// Row `r` of the batch goes through exactly the per-element operation
    /// sequence a 1-row call would apply (the GEMM accumulates ascending-`k`
    /// per element and [`simd::lstm_step_row`] is row-wise), so batching
    /// sessions together never changes any session's bits — the invariant
    /// the pooled streaming engine's equivalence tests pin down.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn step_rows(&self, x: &Matrix, h: &mut Matrix, c: &mut Matrix, z: &mut Matrix) {
        let n = x.rows();
        assert_eq!(x.cols(), self.input_dim, "step input width mismatch");
        assert_eq!(h.shape(), (n, self.hidden_dim), "hidden state shape");
        assert_eq!(c.shape(), (n, self.hidden_dim), "cell state shape");
        z.reset_shape(n, 4 * self.hidden_dim);
        x.matmul_add_bias_into(&self.wx, &self.b, z);
        h.matmul_acc(&self.wh, z);
        step_state(z, c, h, self.hidden_dim);
    }

    /// BPTT backward pass.
    ///
    /// `dhs[t]` is the gradient of the loss w.r.t. the hidden state emitted
    /// at timestep `t` (zero matrices for unused steps). Returns the weight
    /// gradients and `dxs[t]`, the gradient w.r.t. each input step — the
    /// piece FGSM needs.
    ///
    /// # Panics
    ///
    /// Panics if `dhs.len()` differs from the cached timestep count.
    pub fn backward(&self, cache: &LstmCache, dhs: &[Matrix]) -> (LstmGrads, Vec<Matrix>) {
        let (grads, dxs) = self.backward_impl(cache, dhs, true);
        (grads.expect("weight grads requested"), dxs)
    }

    /// BPTT backward pass that computes only the input gradients `dxs`,
    /// skipping the three weight-gradient matmuls per timestep. This is the
    /// path attack crafting (FGSM/PGD) takes, where the weights are frozen.
    ///
    /// # Panics
    ///
    /// Panics if `dhs.len()` differs from the cached timestep count.
    pub fn backward_input_only(&self, cache: &LstmCache, dhs: &[Matrix]) -> Vec<Matrix> {
        self.backward_impl(cache, dhs, false).1
    }

    fn backward_impl(
        &self,
        cache: &LstmCache,
        dhs: &[Matrix],
        want_weight_grads: bool,
    ) -> (Option<LstmGrads>, Vec<Matrix>) {
        assert_eq!(dhs.len(), cache.steps.len(), "dhs/timestep count mismatch");
        let h_dim = self.hidden_dim;
        let t_len = cache.steps.len();
        let n = cache.steps[0].x.rows();
        let mut grads = want_weight_grads.then(|| LstmGrads {
            dwx: Matrix::zeros(self.input_dim, 4 * h_dim),
            dwh: Matrix::zeros(h_dim, 4 * h_dim),
            db: Matrix::zeros(1, 4 * h_dim),
        });
        let mut dxs = vec![Matrix::zeros(0, 0); t_len];
        let mut dh_next = Matrix::zeros(n, h_dim);
        let mut dc_next = Matrix::zeros(n, h_dim);
        for t in (0..t_len).rev() {
            let s = &cache.steps[t];
            let dh = &dhs[t] + &dh_next;
            // h = o ⊙ tanh(c)
            let d_o = dh.hadamard(&s.tc);
            let dtc = dh.hadamard(&s.o);
            // d tanh(c) = (1 - tanh(c)^2)
            let mut dc = s.tc.map(|v| 1.0 - v * v).hadamard(&dtc);
            dc += &dc_next;
            // c = f ⊙ c_prev + i ⊙ g
            let d_i = dc.hadamard(&s.g);
            let d_g = dc.hadamard(&s.i);
            let d_f = dc.hadamard(&s.c_prev);
            dc_next = dc.hadamard(&s.f);
            // Through the gate nonlinearities: σ' = σ(1−σ), tanh' = 1−tanh².
            let dz_i = d_i.hadamard(&s.i).hadamard(&s.i.map(|v| 1.0 - v));
            let dz_f = d_f.hadamard(&s.f).hadamard(&s.f.map(|v| 1.0 - v));
            let dz_g = d_g.hadamard(&s.g.map(|v| 1.0 - v * v));
            let dz_o = d_o.hadamard(&s.o).hadamard(&s.o.map(|v| 1.0 - v));
            let mut dz = Matrix::zeros(n, 4 * h_dim);
            dz.set_cols(0, &dz_i);
            dz.set_cols(h_dim, &dz_f);
            dz.set_cols(2 * h_dim, &dz_g);
            dz.set_cols(3 * h_dim, &dz_o);
            if let Some(g) = grads.as_mut() {
                g.dwx += &s.x.transpose_matmul(&dz);
                g.dwh += &s.h_prev.transpose_matmul(&dz);
                g.db += &dz.sum_rows();
            }
            dxs[t] = dz.matmul_tb(&self.wx);
            dh_next = dz.matmul_tb(&self.wh);
        }
        (grads, dxs)
    }

    /// Applies one Adam update using slots starting at `offset`; returns the
    /// next free offset.
    pub fn apply_update(
        &mut self,
        trainer: &mut crate::adam::AdamTrainer,
        offset: usize,
        grads: &LstmGrads,
    ) -> usize {
        let off = trainer.update(offset, &mut self.wx, &grads.dwx);
        let off = trainer.update(off, &mut self.wh, &grads.dwh);
        trainer.update(off, &mut self.b, &grads.db)
    }

    /// Input-to-hidden weights (`input_dim × 4·hidden`).
    pub fn wx(&self) -> &Matrix {
        &self.wx
    }

    /// Hidden-to-hidden weights (`hidden × 4·hidden`).
    pub fn wh(&self) -> &Matrix {
        &self.wh
    }

    /// Fused gate bias (`1 × 4·hidden`).
    pub fn gate_bias(&self) -> &Matrix {
        &self.b
    }

    /// Builds a layer from explicit parameters (used by deserialization).
    ///
    /// # Panics
    ///
    /// Panics if the shapes are inconsistent (`wx: I×4H`, `wh: H×4H`,
    /// `b: 1×4H`).
    pub fn from_params(wx: Matrix, wh: Matrix, b: Matrix) -> Self {
        let hidden_dim = wh.rows();
        assert_eq!(wh.cols(), 4 * hidden_dim, "wh must be H×4H");
        assert_eq!(wx.cols(), 4 * hidden_dim, "wx must be I×4H");
        assert_eq!(b.rows(), 1, "bias must be a row vector");
        assert_eq!(b.cols(), 4 * hidden_dim, "bias must be 1×4H");
        let input_dim = wx.rows();
        Self {
            wx,
            wh,
            b,
            input_dim,
            hidden_dim,
        }
    }

    /// Test-only access to mutate a weight (used by finite-difference checks).
    #[doc(hidden)]
    pub fn perturb_wx(&mut self, r: usize, c: usize, delta: f64) {
        self.wx.set(r, c, self.wx.get(r, c) + delta);
    }

    /// Test-only access to mutate a recurrent weight.
    #[doc(hidden)]
    pub fn perturb_wh(&mut self, r: usize, c: usize, delta: f64) {
        self.wh.set(r, c, self.wh.get(r, c) + delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{max_relative_error, numeric_input_grad};
    use crate::init::random_normal;

    fn objective(lstm: &Lstm, xs: &[Matrix]) -> f64 {
        // Scalar objective: sum of all hidden states over all steps.
        let (hs, _) = lstm.forward(xs);
        hs.iter().map(Matrix::sum).sum()
    }

    #[test]
    fn forward_shapes() {
        let mut rng = SmallRng::new(1);
        let lstm = Lstm::new(3, 5, &mut rng);
        let xs: Vec<Matrix> = (0..4).map(|_| random_normal(2, 3, 1.0, &mut rng)).collect();
        let (hs, cache) = lstm.forward(&xs);
        assert_eq!(hs.len(), 4);
        assert_eq!(cache.timesteps(), 4);
        for h in &hs {
            assert_eq!(h.shape(), (2, 5));
        }
    }

    #[test]
    fn hidden_state_bounded_by_one() {
        // h = o·tanh(c) with o ∈ (0,1) ⇒ |h| < 1 always.
        let mut rng = SmallRng::new(2);
        let lstm = Lstm::new(2, 4, &mut rng);
        let xs: Vec<Matrix> = (0..10)
            .map(|_| random_normal(3, 2, 10.0, &mut rng))
            .collect();
        let (hs, _) = lstm.forward(&xs);
        for h in &hs {
            assert!(h.max_abs() < 1.0);
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = SmallRng::new(3);
        let lstm = Lstm::new(3, 4, &mut rng);
        let xs: Vec<Matrix> = (0..3).map(|_| random_normal(2, 3, 0.5, &mut rng)).collect();
        let (hs, cache) = lstm.forward(&xs);
        let dhs: Vec<Matrix> = hs
            .iter()
            .map(|h| Matrix::filled(h.rows(), h.cols(), 1.0))
            .collect();
        let (_, dxs) = lstm.backward(&cache, &dhs);
        for t in 0..3 {
            let num = numeric_input_grad(&xs[t], 1e-5, |xp| {
                let mut xs2 = xs.clone();
                xs2[t] = xp.clone();
                objective(&lstm, &xs2)
            });
            let err = max_relative_error(&dxs[t], &num);
            assert!(err < 1e-6, "step {t} input-grad error {err}");
        }
    }

    #[test]
    fn weight_gradients_match_finite_difference() {
        let mut rng = SmallRng::new(4);
        let lstm = Lstm::new(2, 3, &mut rng);
        let xs: Vec<Matrix> = (0..3).map(|_| random_normal(2, 2, 0.5, &mut rng)).collect();
        let (hs, cache) = lstm.forward(&xs);
        let dhs: Vec<Matrix> = hs
            .iter()
            .map(|h| Matrix::filled(h.rows(), h.cols(), 1.0))
            .collect();
        let (grads, _) = lstm.backward(&cache, &dhs);
        let h = 1e-5;
        // Check a sample of wx entries.
        for (r, c) in [(0, 0), (1, 5), (0, 11), (1, 7)] {
            let mut plus = lstm.clone();
            plus.perturb_wx(r, c, h);
            let mut minus = lstm.clone();
            minus.perturb_wx(r, c, -h);
            let num = (objective(&plus, &xs) - objective(&minus, &xs)) / (2.0 * h);
            let ana = grads.dwx.get(r, c);
            assert!((ana - num).abs() < 1e-6, "dwx({r},{c}): {ana} vs {num}");
        }
        // And wh entries (these exercise the recurrent path).
        for (r, c) in [(0, 0), (2, 4), (1, 9)] {
            let mut plus = lstm.clone();
            plus.perturb_wh(r, c, h);
            let mut minus = lstm.clone();
            minus.perturb_wh(r, c, -h);
            let num = (objective(&plus, &xs) - objective(&minus, &xs)) / (2.0 * h);
            let ana = grads.dwh.get(r, c);
            assert!((ana - num).abs() < 1e-6, "dwh({r},{c}): {ana} vs {num}");
        }
    }

    #[test]
    fn last_step_only_gradient_flows_back() {
        // Gradient injected only at the last step must still reach x_0
        // through the recurrent connections.
        let mut rng = SmallRng::new(5);
        let lstm = Lstm::new(2, 3, &mut rng);
        let xs: Vec<Matrix> = (0..4).map(|_| random_normal(1, 2, 0.5, &mut rng)).collect();
        let (hs, cache) = lstm.forward(&xs);
        let mut dhs: Vec<Matrix> = hs
            .iter()
            .map(|h| Matrix::zeros(h.rows(), h.cols()))
            .collect();
        let last = dhs.len() - 1;
        dhs[last] = Matrix::filled(1, 3, 1.0);
        let (_, dxs) = lstm.backward(&cache, &dhs);
        assert!(
            dxs[0].max_abs() > 0.0,
            "no gradient reached the first input"
        );
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let mut rng = SmallRng::new(6);
        let lstm = Lstm::new(2, 3, &mut rng);
        for c in 3..6 {
            assert_eq!(lstm.b.get(0, c), 1.0);
        }
        for c in 0..3 {
            assert_eq!(lstm.b.get(0, c), 0.0);
        }
    }

    #[test]
    fn deterministic_construction() {
        let a = Lstm::new(4, 8, &mut SmallRng::new(77));
        let b = Lstm::new(4, 8, &mut SmallRng::new(77));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one timestep")]
    fn forward_rejects_empty_sequence() {
        let lstm = Lstm::new(2, 3, &mut SmallRng::new(7));
        let _ = lstm.forward(&[]);
    }

    #[test]
    fn forward_only_matches_cached_forward() {
        let mut rng = SmallRng::new(8);
        let lstm = Lstm::new(3, 5, &mut rng);
        let xs: Vec<Matrix> = (0..6).map(|_| random_normal(2, 3, 1.0, &mut rng)).collect();
        let (hs, _) = lstm.forward(&xs);
        assert_eq!(lstm.forward_only(&xs), hs);
    }

    #[test]
    fn warm_scratch_stays_bit_identical() {
        let mut rng = SmallRng::new(9);
        let lstm = Lstm::new(3, 4, &mut rng);
        let a: Vec<Matrix> = (0..4).map(|_| random_normal(2, 3, 1.0, &mut rng)).collect();
        let b: Vec<Matrix> = (0..4).map(|_| random_normal(2, 3, 1.0, &mut rng)).collect();
        let mut hs = Vec::new();
        let mut scratch = LstmScratch::default();
        lstm.forward_only_into(&a, &mut hs, &mut scratch);
        // Second pass through the now-dirty scratch must match a fresh run.
        lstm.forward_only_into(&b, &mut hs, &mut scratch);
        assert_eq!(hs, lstm.forward_only(&b));
    }
}
