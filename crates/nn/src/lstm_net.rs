//! The stacked-LSTM monitor network.
//!
//! Architecture per the paper (§IV-A): a two-layer stacked LSTM (128, 64
//! units) over an input window of 6 timesteps (30 minutes of APS data),
//! followed by a fully connected softmax layer, trained with Adam and
//! sparse categorical cross-entropy (plus the optional semantic loss for
//! the "Custom" variant).
//!
//! Inputs are flat `N × (timesteps · feature_dim)` matrices laid out
//! time-major; [`LstmNet`] splits them internally. This keeps one uniform
//! input representation across both monitor architectures so the attack
//! toolkit can perturb either through the same [`GradModel`] interface.

use crate::activation::softmax_rows_inplace;
use crate::adam::AdamTrainer;
use crate::dense::Dense;
use crate::loss::{cross_entropy, softmax_ce_grad, SemanticLoss};
use crate::lstm::{Lstm, LstmScratch};
use crate::matrix::Matrix;
use crate::model::GradModel;
use crate::par;
use crate::rng::SmallRng;

/// Reusable forward buffers for [`LstmNet::predict_proba_scratch`]: the
/// split input timesteps, each layer's hidden-state sequence, per-layer
/// [`LstmScratch`]es, and the logits. After the first call with a given
/// batch size, subsequent calls allocate nothing.
#[derive(Debug, Clone)]
pub struct LstmNetScratch {
    steps: Vec<Matrix>,
    seqs: Vec<Vec<Matrix>>,
    layers: Vec<LstmScratch>,
    logits: Matrix,
}

impl Default for LstmNetScratch {
    fn default() -> Self {
        Self {
            steps: Vec::new(),
            seqs: Vec::new(),
            layers: Vec::new(),
            logits: Matrix::zeros(0, 0),
        }
    }
}

/// Configuration for [`LstmNet::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LstmConfig {
    /// Features per timestep.
    pub feature_dim: usize,
    /// Number of timesteps in the input window; the paper uses 6.
    pub timesteps: usize,
    /// Stacked hidden sizes; the paper uses `[128, 64]`.
    pub hidden: Vec<usize>,
    /// Number of output classes (2 for safe/unsafe).
    pub classes: usize,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl LstmConfig {
    /// The paper's monitor architecture (128-64, 6 steps).
    pub fn paper(feature_dim: usize) -> Self {
        Self {
            feature_dim,
            timesteps: 6,
            hidden: vec![128, 64],
            classes: 2,
            seed: 0,
        }
    }
}

/// A stacked-LSTM softmax classifier over fixed-length windows.
#[derive(Debug, Clone)]
pub struct LstmNet {
    lstms: Vec<Lstm>,
    head: Dense,
    feature_dim: usize,
    timesteps: usize,
    classes: usize,
    /// Optional semantic loss used when an indicator batch is supplied.
    pub semantic: SemanticLoss,
}

impl LstmNet {
    /// Builds the network described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `hidden` is empty.
    pub fn new(config: &LstmConfig) -> Self {
        assert!(config.feature_dim > 0, "feature_dim must be positive");
        assert!(config.timesteps > 0, "timesteps must be positive");
        assert!(config.classes > 0, "classes must be positive");
        assert!(!config.hidden.is_empty(), "need at least one LSTM layer");
        assert!(
            config.hidden.iter().all(|&h| h > 0),
            "hidden widths must be positive"
        );
        let mut rng = SmallRng::new(config.seed ^ 0x6c73_746d_5f6e_6574);
        let mut lstms = Vec::with_capacity(config.hidden.len());
        let mut prev = config.feature_dim;
        for &h in &config.hidden {
            lstms.push(Lstm::new(prev, h, &mut rng));
            prev = h;
        }
        let head = Dense::new(prev, config.classes, &mut rng);
        Self {
            lstms,
            head,
            feature_dim: config.feature_dim,
            timesteps: config.timesteps,
            classes: config.classes,
            semantic: SemanticLoss::default(),
        }
    }

    /// Total number of trainable scalars (for sizing an [`AdamTrainer`]).
    pub fn param_count(&self) -> usize {
        self.lstms.iter().map(Lstm::param_count).sum::<usize>() + self.head.param_count()
    }

    /// Number of timesteps per window.
    pub fn timesteps(&self) -> usize {
        self.timesteps
    }

    /// Features per timestep.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// The stacked LSTM layers in forward order.
    pub fn lstm_layers(&self) -> &[Lstm] {
        &self.lstms
    }

    /// The dense softmax head.
    pub fn head(&self) -> &Dense {
        &self.head
    }

    /// Replaces all parameters (used by deserialization).
    ///
    /// # Errors
    ///
    /// Returns a description of the first shape inconsistency, if any.
    pub fn set_params(
        &mut self,
        lstm_params: Vec<(
            crate::matrix::Matrix,
            crate::matrix::Matrix,
            crate::matrix::Matrix,
        )>,
        head: Dense,
    ) -> Result<(), String> {
        if lstm_params.is_empty() {
            return Err("at least one LSTM layer required".into());
        }
        let mut lstms = Vec::with_capacity(lstm_params.len());
        let mut prev = self.feature_dim;
        for (i, (wx, wh, b)) in lstm_params.into_iter().enumerate() {
            if wx.rows() != prev {
                return Err(format!(
                    "lstm{i} input width {} != expected {prev}",
                    wx.rows()
                ));
            }
            if wh.cols() != 4 * wh.rows() || wx.cols() != wh.cols() || b.cols() != wh.cols() {
                return Err(format!("lstm{i} gate shapes inconsistent"));
            }
            prev = wh.rows();
            lstms.push(Lstm::from_params(wx, wh, b));
        }
        if head.input_dim() != prev {
            return Err(format!(
                "head input width {} != top hidden {prev}",
                head.input_dim()
            ));
        }
        self.classes = head.output_dim();
        self.lstms = lstms;
        self.head = head;
        Ok(())
    }

    /// Splits a flat time-major batch into per-timestep matrices.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != timesteps · feature_dim`.
    fn split_steps(&self, x: &Matrix) -> Vec<Matrix> {
        assert_eq!(
            x.cols(),
            self.timesteps * self.feature_dim,
            "input width mismatch: expected {}·{}",
            self.timesteps,
            self.feature_dim
        );
        (0..self.timesteps)
            .map(|t| x.slice_cols(t * self.feature_dim, (t + 1) * self.feature_dim))
            .collect()
    }

    /// Re-assembles per-timestep gradients into the flat input layout.
    fn join_steps(&self, dxs: &[Matrix]) -> Matrix {
        let n = dxs[0].rows();
        let mut out = Matrix::zeros(n, self.timesteps * self.feature_dim);
        for (t, dx) in dxs.iter().enumerate() {
            out.set_cols(t * self.feature_dim, dx);
        }
        out
    }

    /// Full forward pass; returns logits plus the caches needed to backprop.
    fn forward_cached(&self, x: &Matrix) -> (Matrix, Vec<crate::lstm::LstmCache>, Matrix) {
        let mut seq = self.split_steps(x);
        let mut caches = Vec::with_capacity(self.lstms.len());
        for lstm in &self.lstms {
            let (hs, cache) = lstm.forward(&seq);
            caches.push(cache);
            seq = hs;
        }
        let last_h = seq.pop().expect("at least one timestep");
        let logits = self.head.forward(&last_h);
        (logits, caches, last_h)
    }

    /// Forward pass without any backward caches (the prediction path).
    fn forward_only(&self, x: &Matrix) -> Matrix {
        let mut seq = self.split_steps(x);
        for lstm in &self.lstms {
            seq = lstm.forward_only(&seq);
        }
        let last_h = seq.pop().expect("at least one timestep");
        self.head.forward(&last_h)
    }

    /// Class probabilities through caller-owned scratch buffers — the
    /// single-row/small-batch prediction fast path used by streaming
    /// monitor sessions. Runs the same kernels as the batch path
    /// ([`Lstm::forward_only_into`], [`Dense::forward_into`],
    /// [`softmax_rows_inplace`]) so the result is bit-identical to
    /// [`predict_proba`](GradModel::predict_proba) on the same rows, but
    /// performs no allocation once the scratch is warm.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != timesteps · feature_dim`.
    pub fn predict_proba_scratch<'s>(
        &self,
        x: &Matrix,
        scratch: &'s mut LstmNetScratch,
    ) -> &'s Matrix {
        assert_eq!(
            x.cols(),
            self.timesteps * self.feature_dim,
            "input width mismatch: expected {}·{}",
            self.timesteps,
            self.feature_dim
        );
        let n = x.rows();
        scratch
            .steps
            .resize_with(self.timesteps, || Matrix::zeros(0, 0));
        for (t, step) in scratch.steps.iter_mut().enumerate() {
            step.reset_shape(n, self.feature_dim);
            x.slice_cols_into(t * self.feature_dim, (t + 1) * self.feature_dim, step);
        }
        scratch.seqs.resize_with(self.lstms.len(), Vec::new);
        scratch
            .layers
            .resize_with(self.lstms.len(), LstmScratch::default);
        for (i, lstm) in self.lstms.iter().enumerate() {
            let (done, todo) = scratch.seqs.split_at_mut(i);
            let input: &[Matrix] = if i == 0 { &scratch.steps } else { &done[i - 1] };
            lstm.forward_only_into(input, &mut todo[0], &mut scratch.layers[i]);
        }
        let last_h = scratch
            .seqs
            .last()
            .and_then(|seq| seq.last())
            .expect("at least one layer and timestep");
        scratch.logits.reset_shape(n, self.classes);
        self.head.forward_into(last_h, &mut scratch.logits);
        softmax_rows_inplace(&mut scratch.logits);
        &scratch.logits
    }

    /// Seed gradient for the stacked backward passes: only the last timestep
    /// of the top LSTM receives signal from the head.
    fn seed_dhs(&self, dh_last: Matrix) -> Vec<Matrix> {
        let n = dh_last.rows();
        let top = self.lstms.len() - 1;
        let mut dhs: Vec<Matrix> = (0..self.timesteps)
            .map(|_| Matrix::zeros(n, self.lstms[top].hidden_dim()))
            .collect();
        dhs[self.timesteps - 1] = dh_last;
        dhs
    }

    /// Backward pass from a logits gradient down to the flat input gradient,
    /// collecting weight gradients along the way.
    fn backward_from_dz(
        &self,
        caches: &[crate::lstm::LstmCache],
        last_h: &Matrix,
        dz: &Matrix,
    ) -> (
        Vec<crate::lstm::LstmGrads>,
        crate::dense::DenseGrads,
        Matrix,
    ) {
        let (head_grads, dh_last) = self.head.backward(last_h, dz);
        let mut lstm_grads = vec![None; self.lstms.len()];
        let mut dseq = self.seed_dhs(dh_last);
        for (i, lstm) in self.lstms.iter().enumerate().rev() {
            let (g, dxs) = lstm.backward(&caches[i], &dseq);
            lstm_grads[i] = Some(g);
            dseq = dxs;
        }
        let dx = self.join_steps(&dseq);
        (
            lstm_grads
                .into_iter()
                .map(|g| g.expect("grad computed"))
                .collect(),
            head_grads,
            dx,
        )
    }

    /// Backward pass that skips all weight gradients — the attack path.
    fn backward_input_only(&self, caches: &[crate::lstm::LstmCache], dz: &Matrix) -> Matrix {
        let dh_last = dz.matmul_tb(self.head.weights());
        let mut dseq = self.seed_dhs(dh_last);
        for (i, lstm) in self.lstms.iter().enumerate().rev() {
            dseq = lstm.backward_input_only(&caches[i], &dseq);
        }
        self.join_steps(&dseq)
    }

    /// Loss and weight gradients for one contiguous batch.
    fn batch_grads(
        &self,
        x: &Matrix,
        labels: &[usize],
        indicator: Option<&[f64]>,
    ) -> (f64, Vec<crate::lstm::LstmGrads>, crate::dense::DenseGrads) {
        let (logits, caches, last_h) = self.forward_cached(x);
        let (probs, mut dz) = softmax_ce_grad(&logits, labels);
        let mut loss = cross_entropy(&probs, labels);
        if let Some(ind) = indicator {
            loss += self.semantic.penalty(&probs, ind);
            self.semantic.add_grad(&probs, ind, &mut dz);
        }
        let (lstm_grads, head_grads, _) = self.backward_from_dz(&caches, &last_h, &dz);
        (loss, lstm_grads, head_grads)
    }

    /// One minibatch of training; see [`MlpNet::train_batch`] for the
    /// indicator semantics. Returns the total batch loss.
    ///
    /// # Panics
    ///
    /// Panics on shape/label mismatches.
    ///
    /// [`MlpNet::train_batch`]: crate::mlp_net::MlpNet::train_batch
    pub fn train_batch(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        indicator: Option<&[f64]>,
        trainer: &mut AdamTrainer,
    ) -> f64 {
        assert_eq!(labels.len(), x.rows(), "label count mismatch");
        let n = x.rows();
        let ranges = par::chunk_ranges(n, par::GRAD_CHUNK);
        let (loss, lstm_grads, head_grads) = if ranges.len() <= 1 {
            self.batch_grads(x, labels, indicator)
        } else {
            // Chunked gradient accumulation on the fixed GRAD_CHUNK grid:
            // results are identical for any thread count (see `par` docs).
            let parts = par::run_chunks(n, par::GRAD_CHUNK, |r| {
                let chunk = x.slice_rows(r.start, r.end);
                self.batch_grads(
                    &chunk,
                    &labels[r.clone()],
                    indicator.map(|ind| &ind[r.clone()]),
                )
            });
            let mut merged: Option<(f64, Vec<crate::lstm::LstmGrads>, crate::dense::DenseGrads)> =
                None;
            for (range, (chunk_loss, lg, hg)) in ranges.iter().zip(parts) {
                let weight = range.len() as f64 / n as f64;
                match merged.as_mut() {
                    None => {
                        let mut lg = lg;
                        let mut hg = hg;
                        for g in &mut lg {
                            g.dwx.map_inplace(|v| v * weight);
                            g.dwh.map_inplace(|v| v * weight);
                            g.db.map_inplace(|v| v * weight);
                        }
                        hg.dw.map_inplace(|v| v * weight);
                        hg.db.map_inplace(|v| v * weight);
                        merged = Some((weight * chunk_loss, lg, hg));
                    }
                    Some((loss_acc, lg_acc, hg_acc)) => {
                        *loss_acc += weight * chunk_loss;
                        for (acc, g) in lg_acc.iter_mut().zip(&lg) {
                            acc.dwx.add_scaled(&g.dwx, weight);
                            acc.dwh.add_scaled(&g.dwh, weight);
                            acc.db.add_scaled(&g.db, weight);
                        }
                        hg_acc.dw.add_scaled(&hg.dw, weight);
                        hg_acc.db.add_scaled(&hg.db, weight);
                    }
                }
            }
            merged.expect("at least one chunk")
        };
        trainer.begin_step();
        let mut off = 0;
        for (lstm, g) in self.lstms.iter_mut().zip(lstm_grads.iter()) {
            off = lstm.apply_update(trainer, off, g);
        }
        off = self.head.apply_update(trainer, off, &head_grads);
        debug_assert_eq!(off, trainer.param_count());
        loss
    }

    /// Mean training loss of a batch without updating weights.
    pub fn eval_loss(&self, x: &Matrix, labels: &[usize], indicator: Option<&[f64]>) -> f64 {
        let probs = self.predict_proba(x);
        let mut loss = cross_entropy(&probs, labels);
        if let Some(ind) = indicator {
            loss += self.semantic.penalty(&probs, ind);
        }
        loss
    }
}

/// Carried recurrent state for a batch of independent streaming sessions,
/// laid out structure-of-arrays: row `r` of every per-layer `h`/`c` matrix
/// is session `r`'s state. One state serves both the f64 engine
/// ([`LstmNet::step_stream`]) and the f32 quantized engine
/// ([`LstmNetF32::step_stream`]) — the f32 engine keeps its master state in
/// f64 too (only weights and GEMMs are single precision), so pools can
/// gather/scatter rows without caring which engine advances them.
///
/// The `z`/`probs`/f32 buffers are per-tick scratch, fully overwritten by
/// each step; after the first tick at a given row count the steady state
/// allocates nothing.
#[derive(Debug, Clone)]
pub struct LstmStreamState {
    h: Vec<Matrix>,
    c: Vec<Matrix>,
    z: Matrix,
    probs: Matrix,
    rows: usize,
    // f32 engine scratch (empty unless LstmNetF32 drives this state).
    f32_in: Vec<f32>,
    f32_h: Vec<f32>,
    f32_z: Vec<f32>,
}

impl Default for LstmStreamState {
    fn default() -> Self {
        Self {
            h: Vec::new(),
            c: Vec::new(),
            z: Matrix::zeros(0, 0),
            probs: Matrix::zeros(0, 0),
            rows: 0,
            f32_in: Vec::new(),
            f32_h: Vec::new(),
            f32_z: Vec::new(),
        }
    }
}

impl LstmStreamState {
    /// Number of session rows this state carries.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Zeroes row `i`'s hidden and cell state across all layers — a fresh
    /// session in that slot.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows()`.
    pub fn reset_row(&mut self, i: usize) {
        assert!(i < self.rows, "row {i} out of {}", self.rows);
        for m in self.h.iter_mut().chain(self.c.iter_mut()) {
            m.row_mut(i).fill(0.0);
        }
    }

    /// Zeroes every row (all sessions restart).
    pub fn reset(&mut self) {
        for m in self.h.iter_mut().chain(self.c.iter_mut()) {
            m.map_inplace(|_| 0.0);
        }
    }

    /// Packs rows `idx` of `src` into this state (resizing to
    /// `idx.len()` rows) — the pool's gather step before a batched tick.
    ///
    /// # Panics
    ///
    /// Panics if the two states belong to different architectures or any
    /// index is out of range.
    pub fn gather_from(&mut self, src: &LstmStreamState, idx: &[usize]) {
        assert_eq!(self.h.len(), src.h.len(), "layer count mismatch");
        let n = idx.len();
        for (dst, s) in self.h.iter_mut().zip(&src.h) {
            dst.reset_shape(n, s.cols());
            for (r, &i) in idx.iter().enumerate() {
                dst.row_mut(r).copy_from_slice(s.row(i));
            }
        }
        for (dst, s) in self.c.iter_mut().zip(&src.c) {
            dst.reset_shape(n, s.cols());
            for (r, &i) in idx.iter().enumerate() {
                dst.row_mut(r).copy_from_slice(s.row(i));
            }
        }
        self.rows = n;
    }

    /// Writes this state's rows back into rows `idx` of `dst` — the pool's
    /// scatter step after a batched tick.
    ///
    /// # Panics
    ///
    /// Panics on architecture mismatch, `idx.len() != rows()`, or any index
    /// out of range.
    pub fn scatter_to(&self, dst: &mut LstmStreamState, idx: &[usize]) {
        assert_eq!(idx.len(), self.rows, "index count mismatch");
        for (s, d) in self.h.iter().zip(dst.h.iter_mut()) {
            for (r, &i) in idx.iter().enumerate() {
                d.row_mut(i).copy_from_slice(s.row(r));
            }
        }
        for (s, d) in self.c.iter().zip(dst.c.iter_mut()) {
            for (r, &i) in idx.iter().enumerate() {
                d.row_mut(i).copy_from_slice(s.row(r));
            }
        }
    }
}

impl LstmNet {
    /// Fresh zeroed recurrent state for `rows` streaming sessions.
    pub fn stream_state(&self, rows: usize) -> LstmStreamState {
        LstmStreamState {
            h: self
                .lstms
                .iter()
                .map(|l| Matrix::zeros(rows, l.hidden_dim()))
                .collect(),
            c: self
                .lstms
                .iter()
                .map(|l| Matrix::zeros(rows, l.hidden_dim()))
                .collect(),
            rows,
            ..LstmStreamState::default()
        }
    }

    /// Advances every session row by one timestep and returns the class
    /// probabilities per row (`rows × classes`).
    ///
    /// Unlike the windowed [`predict_proba_scratch`] path — which recomputes
    /// the whole fixed-length window every step — this *carries* `h`/`c`
    /// across calls, costing one timestep of compute per record. Verdicts
    /// therefore reflect the entire stream since the session started (or
    /// since [`LstmStreamState::reset_row`]), not a sliding window, and are
    /// emitted from the very first record (zero initial state).
    ///
    /// Every kernel invoked here is row-wise with a fixed per-element
    /// operation sequence, so row `r`'s outputs are bit-identical whether
    /// stepped alone or batched with any other sessions — the pooled
    /// engine's core invariant.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `state.rows() × feature_dim`.
    ///
    /// [`predict_proba_scratch`]: Self::predict_proba_scratch
    pub fn step_stream<'s>(&self, x: &Matrix, state: &'s mut LstmStreamState) -> &'s Matrix {
        let n = x.rows();
        assert_eq!(x.cols(), self.feature_dim, "step width mismatch");
        assert_eq!(n, state.rows, "state row-count mismatch");
        assert_eq!(state.h.len(), self.lstms.len(), "state layer mismatch");
        let LstmStreamState { h, c, z, probs, .. } = state;
        for (i, lstm) in self.lstms.iter().enumerate() {
            let (done, todo) = h.split_at_mut(i);
            let input: &Matrix = if i == 0 { x } else { &done[i - 1] };
            lstm.step_rows(input, &mut todo[0], &mut c[i], z);
        }
        let last_h = h.last().expect("at least one layer");
        probs.reset_shape(n, self.classes);
        self.head.forward_into(last_h, probs);
        softmax_rows_inplace(probs);
        &state.probs
    }
}

/// One LSTM layer's weights in single precision, row-major.
#[derive(Debug, Clone)]
struct LstmLayerF32 {
    wx: Vec<f32>,
    wh: Vec<f32>,
    b: Vec<f32>,
    input_dim: usize,
    hidden_dim: usize,
}

/// Single-precision serving engine for a [`LstmNet`] — the execution mode
/// behind quantized (`f16`/`int8`) monitor bundles.
///
/// Weights and the two gate GEMMs per layer are f32
/// ([`simd::gemm_acc_f32`](crate::simd::gemm_acc_f32)); the recurrent
/// state, gate transcendentals and softmax stay f64 (converted per
/// element), so the nonlinear tail adds no further precision loss and the
/// engine reuses the same dispatched `lstm_step_row` kernels as the f64
/// path. Accuracy relative to the f64 engine is bounded by the quantized
/// bundle's documented F1 tolerance, enforced by the artifact tests.
#[derive(Debug, Clone)]
pub struct LstmNetF32 {
    layers: Vec<LstmLayerF32>,
    head_w: Vec<f32>,
    head_b: Vec<f32>,
    feature_dim: usize,
    classes: usize,
}

fn to_f32(m: &Matrix) -> Vec<f32> {
    m.as_slice().iter().map(|&v| v as f32).collect()
}

impl LstmNetF32 {
    /// Converts a (typically dequantized) network's weights to f32.
    pub fn from_net(net: &LstmNet) -> Self {
        Self {
            layers: net
                .lstms
                .iter()
                .map(|l| LstmLayerF32 {
                    wx: to_f32(l.wx()),
                    wh: to_f32(l.wh()),
                    b: to_f32(l.gate_bias()),
                    input_dim: l.input_dim(),
                    hidden_dim: l.hidden_dim(),
                })
                .collect(),
            head_w: to_f32(net.head.weights()),
            head_b: to_f32(net.head.bias()),
            feature_dim: net.feature_dim,
            classes: net.classes,
        }
    }

    /// Features per timestep.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Fresh zeroed recurrent state for `rows` streaming sessions;
    /// interchangeable with [`LstmNet::stream_state`] for the same
    /// architecture.
    pub fn stream_state(&self, rows: usize) -> LstmStreamState {
        LstmStreamState {
            h: self
                .layers
                .iter()
                .map(|l| Matrix::zeros(rows, l.hidden_dim))
                .collect(),
            c: self
                .layers
                .iter()
                .map(|l| Matrix::zeros(rows, l.hidden_dim))
                .collect(),
            rows,
            ..LstmStreamState::default()
        }
    }

    /// Advances every session row by one timestep — the f32 analogue of
    /// [`LstmNet::step_stream`], with the same row-independence guarantee
    /// (each row's bits are unchanged by batching).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `state.rows() × feature_dim`.
    pub fn step_stream<'s>(&self, x: &Matrix, state: &'s mut LstmStreamState) -> &'s Matrix {
        use crate::simd::{gemm_acc_f32, lstm_step_row};
        let n = x.rows();
        assert_eq!(x.cols(), self.feature_dim, "step width mismatch");
        assert_eq!(n, state.rows, "state row-count mismatch");
        assert_eq!(state.h.len(), self.layers.len(), "state layer mismatch");
        let LstmStreamState {
            h,
            c,
            z,
            probs,
            f32_in,
            f32_h,
            f32_z,
            ..
        } = state;
        // Layer input in f32; starts as the record batch itself.
        f32_in.clear();
        f32_in.extend(x.as_slice().iter().map(|&v| v as f32));
        let mut in_dim = self.feature_dim;
        for (i, layer) in self.layers.iter().enumerate() {
            let hd = layer.hidden_dim;
            debug_assert_eq!(in_dim, layer.input_dim);
            let (done, todo) = h.split_at_mut(i);
            let _ = done;
            let h_i = &mut todo[0];
            // Pre-update hidden state → f32 for the recurrent GEMM.
            f32_h.clear();
            f32_h.extend(h_i.as_slice().iter().map(|&v| v as f32));
            // z = b (seed) + x·Wx + h·Wh, all single precision.
            f32_z.clear();
            for _ in 0..n {
                f32_z.extend_from_slice(&layer.b);
            }
            gemm_acc_f32(f32_in, n, layer.input_dim, &layer.wx, 4 * hd, f32_z);
            gemm_acc_f32(f32_h, n, hd, &layer.wh, 4 * hd, f32_z);
            // Gate nonlinearities in f64 through the dispatched kernel.
            z.reset_shape(n, 4 * hd);
            for (d, &s) in z.as_mut_slice().iter_mut().zip(f32_z.iter()) {
                *d = f64::from(s);
            }
            for r in 0..n {
                let hr = h_i.row_mut(r);
                lstm_step_row(z.row(r), c[i].row_mut(r), hr, hd);
            }
            // Post-update hidden state feeds the next layer.
            f32_in.clear();
            f32_in.extend(h_i.as_slice().iter().map(|&v| v as f32));
            in_dim = hd;
        }
        // Head + softmax: f32 GEMM, f64 normalization.
        f32_z.clear();
        for _ in 0..n {
            f32_z.extend_from_slice(&self.head_b);
        }
        gemm_acc_f32(f32_in, n, in_dim, &self.head_w, self.classes, f32_z);
        probs.reset_shape(n, self.classes);
        for (d, &s) in probs.as_mut_slice().iter_mut().zip(f32_z.iter()) {
            *d = f64::from(s);
        }
        softmax_rows_inplace(probs);
        &state.probs
    }
}

impl GradModel for LstmNet {
    fn classes(&self) -> usize {
        self.classes
    }

    fn input_width(&self) -> usize {
        self.timesteps * self.feature_dim
    }

    fn predict_proba(&self, x: &Matrix) -> Matrix {
        par::map_rows(x, par::PREDICT_CHUNK, |_, chunk| {
            crate::activation::softmax_rows(&self.forward_only(chunk))
        })
    }

    fn input_gradient(&self, x: &Matrix, labels: &[usize]) -> Matrix {
        assert_eq!(labels.len(), x.rows(), "label count mismatch");
        let n = x.rows();
        par::map_rows(x, par::GRAD_CHUNK, |r, chunk| {
            let (logits, caches, _) = self.forward_cached(chunk);
            let (_, dz) = softmax_ce_grad(&logits, &labels[r.clone()]);
            let mut dx = self.backward_input_only(&caches, &dz);
            if r.len() != n {
                // softmax_ce_grad scales by 1/chunk_rows; rescale to 1/n so
                // the stacked result matches the unchunked gradient.
                let weight = r.len() as f64 / n as f64;
                dx.map_inplace(|v| v * weight);
            }
            dx
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{max_relative_error, numeric_input_grad};
    use crate::init::random_normal;

    fn tiny_net(seed: u64) -> LstmNet {
        LstmNet::new(&LstmConfig {
            feature_dim: 3,
            timesteps: 4,
            hidden: vec![6, 5],
            classes: 2,
            seed,
        })
    }

    #[test]
    fn proba_rows_sum_to_one() {
        let net = tiny_net(1);
        let x = random_normal(4, 12, 1.0, &mut SmallRng::new(2));
        let p = net.predict_proba(&x);
        assert_eq!(p.shape(), (4, 2));
        for r in 0..4 {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let net = tiny_net(3);
        let x = random_normal(2, 12, 0.6, &mut SmallRng::new(4));
        let labels = vec![1usize, 0];
        let ana = net.input_gradient(&x, &labels);
        let num = numeric_input_grad(&x, 1e-6, |xp| {
            cross_entropy(&net.predict_proba(xp), &labels)
        });
        let err = max_relative_error(&ana, &num);
        assert!(err < 1e-5, "input-grad error {err}");
    }

    #[test]
    fn gradient_reaches_every_timestep() {
        let net = tiny_net(5);
        let x = random_normal(1, 12, 0.6, &mut SmallRng::new(6));
        let g = net.input_gradient(&x, &[1]);
        for t in 0..4 {
            let step = g.slice_cols(t * 3, (t + 1) * 3);
            assert!(step.max_abs() > 0.0, "no gradient at timestep {t}");
        }
    }

    #[test]
    fn training_learns_sequence_rule() {
        // Label = 1 iff the *first* timestep's first feature is positive —
        // forces memory across the sequence.
        let mut rng = SmallRng::new(7);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..60 {
            let y = rng.bernoulli(0.5) as usize;
            let mut row = vec![0.0; 12];
            for (i, v) in row.iter_mut().enumerate() {
                *v = rng.normal_with(0.0, 0.3);
                if i == 0 {
                    *v = if y == 1 { 1.5 } else { -1.5 } + rng.normal_with(0.0, 0.2);
                }
            }
            rows.push(row);
            labels.push(y);
        }
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let x = Matrix::from_rows(&refs);
        let mut net = tiny_net(8);
        let mut trainer = AdamTrainer::new(net.param_count(), 0.02);
        for _ in 0..150 {
            net.train_batch(&x, &labels, None, &mut trainer);
        }
        let preds = net.predict_labels(&x);
        let correct = preds.iter().zip(&labels).filter(|(p, y)| p == y).count();
        assert!(correct >= 55, "only {correct}/60 correct");
    }

    #[test]
    fn paper_architecture_has_expected_param_count() {
        let net = LstmNet::new(&LstmConfig::paper(6));
        let lstm1 = 4 * (6 * 128 + 128 * 128 + 128);
        let lstm2 = 4 * (128 * 64 + 64 * 64 + 64);
        let head = 64 * 2 + 2;
        assert_eq!(net.param_count(), lstm1 + lstm2 + head);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = tiny_net(11);
        let b = tiny_net(11);
        let x = random_normal(2, 12, 1.0, &mut SmallRng::new(1));
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn rejects_wrong_input_width() {
        let net = tiny_net(12);
        let x = Matrix::zeros(1, 11);
        let _ = net.predict_proba(&x);
    }

    #[test]
    fn scratch_path_bit_identical_to_batch() {
        let net = tiny_net(13);
        let x = random_normal(5, 12, 1.0, &mut SmallRng::new(14));
        let batch = net.predict_proba(&x);
        let mut scratch = LstmNetScratch::default();
        for r in 0..x.rows() {
            let row = x.slice_rows(r, r + 1);
            let p = net.predict_proba_scratch(&row, &mut scratch);
            assert_eq!(p.as_slice(), batch.row(r), "row {r} diverged");
        }
        let sub = x.slice_rows(1, 4);
        let p = net.predict_proba_scratch(&sub, &mut scratch);
        assert_eq!(p.as_slice(), batch.slice_rows(1, 4).as_slice());
    }

    #[test]
    fn step_stream_pooled_rows_bit_identical_to_individual() {
        let net = tiny_net(21);
        let n = 5;
        let ticks: Vec<Matrix> = (0..7)
            .map(|t| random_normal(n, 3, 1.0, &mut SmallRng::new(100 + t)))
            .collect();
        let mut pooled = net.stream_state(n);
        let mut singles: Vec<_> = (0..n).map(|_| net.stream_state(1)).collect();
        for x in &ticks {
            let batch = net.step_stream(x, &mut pooled).clone();
            for (r, st) in singles.iter_mut().enumerate() {
                let row = x.slice_rows(r, r + 1);
                let p = net.step_stream(&row, st);
                for (a, b) in p.as_slice().iter().zip(batch.row(r)) {
                    assert_eq!(a.to_bits(), b.to_bits(), "row {r} diverged");
                }
            }
        }
    }

    #[test]
    fn step_stream_f32_pooled_rows_bit_identical_to_individual() {
        let net = tiny_net(22);
        let eng = LstmNetF32::from_net(&net);
        let n = 4;
        let ticks: Vec<Matrix> = (0..6)
            .map(|t| random_normal(n, 3, 1.0, &mut SmallRng::new(200 + t)))
            .collect();
        let mut pooled = eng.stream_state(n);
        let mut singles: Vec<_> = (0..n).map(|_| eng.stream_state(1)).collect();
        for x in &ticks {
            let batch = eng.step_stream(x, &mut pooled).clone();
            for (r, st) in singles.iter_mut().enumerate() {
                let row = x.slice_rows(r, r + 1);
                let p = eng.step_stream(&row, st);
                for (a, b) in p.as_slice().iter().zip(batch.row(r)) {
                    assert_eq!(a.to_bits(), b.to_bits(), "row {r} diverged");
                }
            }
        }
    }

    #[test]
    fn step_stream_f32_tracks_f64_engine() {
        let net = tiny_net(23);
        let eng = LstmNetF32::from_net(&net);
        let mut s64 = net.stream_state(3);
        let mut s32 = eng.stream_state(3);
        for t in 0..8 {
            let x = random_normal(3, 3, 0.8, &mut SmallRng::new(300 + t));
            let p64 = net.step_stream(&x, &mut s64).clone();
            let p32 = eng.step_stream(&x, &mut s32).clone();
            for (a, b) in p64.as_slice().iter().zip(p32.as_slice()) {
                assert!((a - b).abs() < 1e-3, "f32 engine drifted: {a} vs {b}");
            }
        }
    }

    #[test]
    fn gather_scatter_roundtrip_and_reset_row() {
        let net = tiny_net(24);
        let n = 6;
        let mut master = net.stream_state(n);
        let x = random_normal(n, 3, 1.0, &mut SmallRng::new(400));
        net.step_stream(&x, &mut master);
        // Gather a ragged subset, advance it, scatter back: untouched rows
        // must be unchanged and gathered rows must match a full-batch step
        // of the same inputs.
        let idx = [4usize, 1, 5];
        let mut packed = net.stream_state(0);
        packed.gather_from(&master, &idx);
        assert_eq!(packed.rows(), 3);
        let x2 = random_normal(n, 3, 1.0, &mut SmallRng::new(401));
        let mut reference = master.clone();
        let xsub = Matrix::from_rows(&[x2.row(4), x2.row(1), x2.row(5)]);
        let p_packed = net.step_stream(&xsub, &mut packed).clone();
        let p_full = net.step_stream(&x2, &mut reference).clone();
        for (r, &i) in idx.iter().enumerate() {
            for (a, b) in p_packed.row(r).iter().zip(p_full.row(i)) {
                assert_eq!(a.to_bits(), b.to_bits(), "gathered row {i} diverged");
            }
        }
        packed.scatter_to(&mut master, &idx);
        // Scattered-back state must step identically to the reference state.
        let x3 = random_normal(n, 3, 1.0, &mut SmallRng::new(402));
        let q1 = net.step_stream(&x3, &mut master).clone();
        let q2 = net.step_stream(&x3, &mut reference).clone();
        let touched: Vec<usize> = idx.to_vec();
        for i in touched {
            for (a, b) in q1.row(i).iter().zip(q2.row(i)) {
                assert_eq!(a.to_bits(), b.to_bits(), "post-scatter row {i}");
            }
        }
        // reset_row gives the same verdict stream as a brand-new session.
        master.reset_row(2);
        let mut fresh = net.stream_state(1);
        let x4 = random_normal(n, 3, 1.0, &mut SmallRng::new(403));
        let pm = net.step_stream(&x4, &mut master).clone();
        let pf = net.step_stream(&x4.slice_rows(2, 3), &mut fresh).clone();
        for (a, b) in pm.row(2).iter().zip(pf.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "reset row diverged");
        }
    }
}
