//! The stacked-GRU classifier — the architecture-ablation sibling of
//! [`crate::lstm_net::LstmNet`] with the identical interface: flat
//! time-major windows in, softmax probabilities and exact input gradients
//! out.

use crate::adam::AdamTrainer;
use crate::dense::Dense;
use crate::gru::Gru;
use crate::loss::{cross_entropy, softmax_ce_grad, SemanticLoss};
use crate::matrix::Matrix;
use crate::model::GradModel;
use crate::par;
use crate::rng::SmallRng;

/// Configuration for [`GruNet::new`] (mirrors
/// [`LstmConfig`](crate::lstm_net::LstmConfig)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GruConfig {
    /// Features per timestep.
    pub feature_dim: usize,
    /// Number of timesteps in the input window.
    pub timesteps: usize,
    /// Stacked hidden sizes.
    pub hidden: Vec<usize>,
    /// Number of output classes.
    pub classes: usize,
    /// Weight-initialization seed.
    pub seed: u64,
}

/// A stacked-GRU softmax classifier over fixed-length windows.
#[derive(Debug, Clone)]
pub struct GruNet {
    grus: Vec<Gru>,
    head: Dense,
    feature_dim: usize,
    timesteps: usize,
    classes: usize,
    /// Optional semantic loss used when an indicator batch is supplied.
    pub semantic: SemanticLoss,
}

impl GruNet {
    /// Builds the network described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `hidden` is empty.
    pub fn new(config: &GruConfig) -> Self {
        assert!(config.feature_dim > 0, "feature_dim must be positive");
        assert!(config.timesteps > 0, "timesteps must be positive");
        assert!(config.classes > 0, "classes must be positive");
        assert!(!config.hidden.is_empty(), "need at least one GRU layer");
        let mut rng = SmallRng::new(config.seed ^ 0x6772_755f_6e65_7400);
        let mut grus = Vec::with_capacity(config.hidden.len());
        let mut prev = config.feature_dim;
        for &h in &config.hidden {
            assert!(h > 0, "hidden widths must be positive");
            grus.push(Gru::new(prev, h, &mut rng));
            prev = h;
        }
        let head = Dense::new(prev, config.classes, &mut rng);
        Self {
            grus,
            head,
            feature_dim: config.feature_dim,
            timesteps: config.timesteps,
            classes: config.classes,
            semantic: SemanticLoss::default(),
        }
    }

    /// Total number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.grus.iter().map(Gru::param_count).sum::<usize>() + self.head.param_count()
    }

    /// Number of timesteps per window.
    pub fn timesteps(&self) -> usize {
        self.timesteps
    }

    /// Features per timestep.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// The stacked GRU layers in forward order.
    pub fn gru_layers(&self) -> &[Gru] {
        &self.grus
    }

    /// The dense softmax head.
    pub fn head(&self) -> &Dense {
        &self.head
    }

    /// Replaces all parameters (used by deserialization). Each GRU layer is
    /// given as the nine matrices of [`Gru::params`] order.
    ///
    /// # Errors
    ///
    /// Returns a description of the first shape inconsistency, if any.
    pub fn set_params(&mut self, gru_params: Vec<[Matrix; 9]>, head: Dense) -> Result<(), String> {
        if gru_params.is_empty() {
            return Err("at least one GRU layer required".into());
        }
        let mut grus = Vec::with_capacity(gru_params.len());
        let mut prev = self.feature_dim;
        for (i, ms) in gru_params.into_iter().enumerate() {
            let gru = Gru::from_params(ms).map_err(|e| format!("gru{i}: {e}"))?;
            if gru.input_dim() != prev {
                return Err(format!(
                    "gru{i} input width {} != expected {prev}",
                    gru.input_dim()
                ));
            }
            prev = gru.hidden_dim();
            grus.push(gru);
        }
        if head.input_dim() != prev {
            return Err(format!(
                "head input width {} != top hidden {prev}",
                head.input_dim()
            ));
        }
        self.classes = head.output_dim();
        self.grus = grus;
        self.head = head;
        Ok(())
    }

    fn split_steps(&self, x: &Matrix) -> Vec<Matrix> {
        assert_eq!(
            x.cols(),
            self.timesteps * self.feature_dim,
            "input width mismatch: expected {}·{}",
            self.timesteps,
            self.feature_dim
        );
        (0..self.timesteps)
            .map(|t| x.slice_cols(t * self.feature_dim, (t + 1) * self.feature_dim))
            .collect()
    }

    fn join_steps(&self, dxs: &[Matrix]) -> Matrix {
        let n = dxs[0].rows();
        let mut out = Matrix::zeros(n, self.timesteps * self.feature_dim);
        for (t, dx) in dxs.iter().enumerate() {
            out.set_cols(t * self.feature_dim, dx);
        }
        out
    }

    fn forward_cached(&self, x: &Matrix) -> (Matrix, Vec<crate::gru::GruCache>, Matrix) {
        let mut seq = self.split_steps(x);
        let mut caches = Vec::with_capacity(self.grus.len());
        for gru in &self.grus {
            let (hs, cache) = gru.forward(&seq);
            caches.push(cache);
            seq = hs;
        }
        let last_h = seq.pop().expect("at least one timestep");
        let logits = self.head.forward(&last_h);
        (logits, caches, last_h)
    }

    /// Forward pass without any backward caches (the prediction path).
    fn forward_only(&self, x: &Matrix) -> Matrix {
        let mut seq = self.split_steps(x);
        for gru in &self.grus {
            seq = gru.forward_only(&seq);
        }
        let last_h = seq.pop().expect("at least one timestep");
        self.head.forward(&last_h)
    }

    /// Seed gradient: only the last timestep of the top GRU receives signal
    /// from the head.
    fn seed_dhs(&self, dh_last: Matrix) -> Vec<Matrix> {
        let n = dh_last.rows();
        let top = self.grus.len() - 1;
        let mut dseq: Vec<Matrix> = (0..self.timesteps)
            .map(|_| Matrix::zeros(n, self.grus[top].hidden_dim()))
            .collect();
        dseq[self.timesteps - 1] = dh_last;
        dseq
    }

    fn backward_from_dz(
        &self,
        caches: &[crate::gru::GruCache],
        last_h: &Matrix,
        dz: &Matrix,
    ) -> (Vec<crate::gru::GruGrads>, crate::dense::DenseGrads, Matrix) {
        let (head_grads, dh_last) = self.head.backward(last_h, dz);
        let mut dseq = self.seed_dhs(dh_last);
        let mut gru_grads = Vec::with_capacity(self.grus.len());
        for (i, gru) in self.grus.iter().enumerate().rev() {
            let (g, dxs) = gru.backward(&caches[i], &dseq);
            gru_grads.push(g);
            dseq = dxs;
        }
        gru_grads.reverse();
        (gru_grads, head_grads, self.join_steps(&dseq))
    }

    /// Backward pass that skips all weight gradients — the attack path.
    fn backward_input_only(&self, caches: &[crate::gru::GruCache], dz: &Matrix) -> Matrix {
        let dh_last = dz.matmul_tb(self.head.weights());
        let mut dseq = self.seed_dhs(dh_last);
        for (i, gru) in self.grus.iter().enumerate().rev() {
            dseq = gru.backward_input_only(&caches[i], &dseq);
        }
        self.join_steps(&dseq)
    }

    /// Loss and weight gradients for one contiguous batch.
    fn batch_grads(
        &self,
        x: &Matrix,
        labels: &[usize],
        indicator: Option<&[f64]>,
    ) -> (f64, Vec<crate::gru::GruGrads>, crate::dense::DenseGrads) {
        let (logits, caches, last_h) = self.forward_cached(x);
        let (probs, mut dz) = softmax_ce_grad(&logits, labels);
        let mut loss = cross_entropy(&probs, labels);
        if let Some(ind) = indicator {
            loss += self.semantic.penalty(&probs, ind);
            self.semantic.add_grad(&probs, ind, &mut dz);
        }
        let (gru_grads, head_grads, _) = self.backward_from_dz(&caches, &last_h, &dz);
        (loss, gru_grads, head_grads)
    }

    /// One minibatch of training; `indicator` enables the semantic loss.
    /// Returns the total batch loss.
    ///
    /// # Panics
    ///
    /// Panics on shape/label mismatches.
    pub fn train_batch(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        indicator: Option<&[f64]>,
        trainer: &mut AdamTrainer,
    ) -> f64 {
        assert_eq!(labels.len(), x.rows(), "label count mismatch");
        let n = x.rows();
        let ranges = par::chunk_ranges(n, par::GRAD_CHUNK);
        let (loss, gru_grads, head_grads) = if ranges.len() <= 1 {
            self.batch_grads(x, labels, indicator)
        } else {
            // Chunked gradient accumulation on the fixed GRAD_CHUNK grid:
            // results are identical for any thread count (see `par` docs).
            let parts = par::run_chunks(n, par::GRAD_CHUNK, |r| {
                let chunk = x.slice_rows(r.start, r.end);
                self.batch_grads(
                    &chunk,
                    &labels[r.clone()],
                    indicator.map(|ind| &ind[r.clone()]),
                )
            });
            let mut merged: Option<(f64, Vec<crate::gru::GruGrads>, crate::dense::DenseGrads)> =
                None;
            for (range, (chunk_loss, gg, hg)) in ranges.iter().zip(parts) {
                let weight = range.len() as f64 / n as f64;
                match merged.as_mut() {
                    None => {
                        let mut gg = gg;
                        let mut hg = hg;
                        for g in &mut gg {
                            for m in &mut g.dw {
                                m.map_inplace(|v| v * weight);
                            }
                            for m in &mut g.db {
                                m.map_inplace(|v| v * weight);
                            }
                        }
                        hg.dw.map_inplace(|v| v * weight);
                        hg.db.map_inplace(|v| v * weight);
                        merged = Some((weight * chunk_loss, gg, hg));
                    }
                    Some((loss_acc, gg_acc, hg_acc)) => {
                        *loss_acc += weight * chunk_loss;
                        for (acc, g) in gg_acc.iter_mut().zip(&gg) {
                            for (am, gm) in acc.dw.iter_mut().zip(&g.dw) {
                                am.add_scaled(gm, weight);
                            }
                            for (am, gm) in acc.db.iter_mut().zip(&g.db) {
                                am.add_scaled(gm, weight);
                            }
                        }
                        hg_acc.dw.add_scaled(&hg.dw, weight);
                        hg_acc.db.add_scaled(&hg.db, weight);
                    }
                }
            }
            merged.expect("at least one chunk")
        };
        trainer.begin_step();
        let mut off = 0;
        for (gru, g) in self.grus.iter_mut().zip(gru_grads.iter()) {
            off = gru.apply_update(trainer, off, g);
        }
        off = self.head.apply_update(trainer, off, &head_grads);
        debug_assert_eq!(off, trainer.param_count());
        loss
    }
}

impl GradModel for GruNet {
    fn classes(&self) -> usize {
        self.classes
    }

    fn input_width(&self) -> usize {
        self.timesteps * self.feature_dim
    }

    fn predict_proba(&self, x: &Matrix) -> Matrix {
        par::map_rows(x, par::PREDICT_CHUNK, |_, chunk| {
            crate::activation::softmax_rows(&self.forward_only(chunk))
        })
    }

    fn input_gradient(&self, x: &Matrix, labels: &[usize]) -> Matrix {
        assert_eq!(labels.len(), x.rows(), "label count mismatch");
        let n = x.rows();
        par::map_rows(x, par::GRAD_CHUNK, |r, chunk| {
            let (logits, caches, _) = self.forward_cached(chunk);
            let (_, dz) = softmax_ce_grad(&logits, &labels[r.clone()]);
            let mut dx = self.backward_input_only(&caches, &dz);
            if r.len() != n {
                // softmax_ce_grad scales by 1/chunk_rows; rescale to 1/n so
                // the stacked result matches the unchunked gradient.
                let weight = r.len() as f64 / n as f64;
                dx.map_inplace(|v| v * weight);
            }
            dx
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{max_relative_error, numeric_input_grad};
    use crate::init::random_normal;

    fn tiny_net(seed: u64) -> GruNet {
        GruNet::new(&GruConfig {
            feature_dim: 3,
            timesteps: 4,
            hidden: vec![6, 5],
            classes: 2,
            seed,
        })
    }

    #[test]
    fn proba_rows_sum_to_one() {
        let net = tiny_net(1);
        let x = random_normal(4, 12, 1.0, &mut SmallRng::new(2));
        let p = net.predict_proba(&x);
        for r in 0..4 {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let net = tiny_net(3);
        let x = random_normal(2, 12, 0.6, &mut SmallRng::new(4));
        let labels = vec![1usize, 0];
        let ana = net.input_gradient(&x, &labels);
        let num = numeric_input_grad(&x, 1e-6, |xp| {
            cross_entropy(&net.predict_proba(xp), &labels)
        });
        let err = max_relative_error(&ana, &num);
        assert!(err < 1e-5, "input-grad error {err}");
    }

    #[test]
    fn training_learns_sequence_rule() {
        let mut rng = SmallRng::new(7);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..60 {
            let y = rng.bernoulli(0.5) as usize;
            let mut row = vec![0.0; 12];
            for (i, v) in row.iter_mut().enumerate() {
                *v = rng.normal_with(0.0, 0.3);
                if i == 0 {
                    *v = if y == 1 { 1.5 } else { -1.5 } + rng.normal_with(0.0, 0.2);
                }
            }
            rows.push(row);
            labels.push(y);
        }
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let x = Matrix::from_rows(&refs);
        let mut net = tiny_net(8);
        let mut trainer = AdamTrainer::new(net.param_count(), 0.02);
        for _ in 0..150 {
            net.train_batch(&x, &labels, None, &mut trainer);
        }
        let preds = net.predict_labels(&x);
        let correct = preds.iter().zip(&labels).filter(|(p, y)| p == y).count();
        assert!(correct >= 55, "only {correct}/60 correct");
    }

    #[test]
    fn gru_has_fewer_params_than_lstm() {
        use crate::lstm_net::{LstmConfig, LstmNet};
        let gru = GruNet::new(&GruConfig {
            feature_dim: 6,
            timesteps: 6,
            hidden: vec![128, 64],
            classes: 2,
            seed: 0,
        });
        let lstm = LstmNet::new(&LstmConfig {
            feature_dim: 6,
            timesteps: 6,
            hidden: vec![128, 64],
            classes: 2,
            seed: 0,
        });
        assert!(gru.param_count() < lstm.param_count());
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn rejects_wrong_input_width() {
        let net = tiny_net(12);
        let x = Matrix::zeros(1, 11);
        let _ = net.predict_proba(&x);
    }
}
