//! Runtime-dispatched SIMD microkernels with scalar fallbacks.
//!
//! Every hot inner kernel — the blocked GEMM behind [`Matrix::matmul`],
//! the sigmoid/tanh/softmax element-wise passes, and the fused LSTM state
//! update — exists in up to four implementations:
//!
//! - a **scalar** kernel, identical to the original portable code (libm
//!   transcendentals, unfused multiply-add),
//! - an **AVX2+FMA** kernel (256-bit lanes),
//! - an **AVX-512F** kernel (512-bit lanes, same ascending-`k` FMA chains
//!   as the AVX2 tier so the two x86 vector tiers are bit-identical per
//!   element), and
//! - a **NEON** GEMM tier on `aarch64` (128-bit fused lanes; the
//!   element-wise passes use the portable scalar kernels there).
//!
//! The active backend is resolved once per process (see [`backend`]) from
//! the `CPSMON_SIMD` environment variable and the CPU's feature flags:
//!
//! | `CPSMON_SIMD`    | effect                                              |
//! |------------------|-----------------------------------------------------|
//! | `0`, `off`, `scalar` | force the portable scalar kernels               |
//! | `avx2`           | cap at AVX2+FMA (scalar if unsupported)             |
//! | `avx512`         | request AVX-512 (degrades to AVX2+FMA, then scalar) |
//! | `neon`           | request NEON (scalar if unsupported)                |
//! | `max`, `1`, unset | widest backend the CPU supports                    |
//!
//! # Determinism contract
//!
//! Within a backend, every kernel computes each output element with a
//! *fixed* operation sequence that depends only on that element's
//! mathematical inputs — never on its position in the buffer, the batch
//! size, or the thread count:
//!
//! - GEMM accumulates in strictly ascending `k` order per element; the
//!   AVX2 variant's scalar column tail uses [`f64::mul_add`], which rounds
//!   identically to the vector `vfmadd` lanes, so an output column produces
//!   the same bits whether it lands in a vector lane or the tail.
//! - The vector transcendentals (`exp`/`sigmoid`/`tanh`) have scalar
//!   mirrors (`exp_m`/`sigmoid_m`/`tanh_m`) built from the *same* operation
//!   sequence (fused multiply-adds included), used for slice tails; a value
//!   therefore maps to the same bits at any offset and slice length.
//!
//! Consequently the existing guarantees — streaming == batch inference,
//! bit-identical results for any `CPSMON_THREADS` — hold under both
//! backends. Results *across* backends differ in the last ulps (FMA fuses
//! rounding steps; the polynomial `exp` is not libm's), which is why the
//! backend is a process-wide constant rather than a per-call choice.
//!
//! [`Matrix::matmul`]: crate::Matrix::matmul

use std::sync::OnceLock;

/// Which kernel family [`backend`] resolved to for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar kernels (libm transcendentals, unfused mul+add).
    Scalar,
    /// AVX2 + FMA vector kernels with bit-mirroring scalar tails.
    Avx2Fma,
    /// AVX-512F vector kernels (512-bit GEMM tiles, 8-lane
    /// transcendentals); per element bit-identical to [`Backend::Avx2Fma`].
    Avx512,
    /// NEON fused GEMM on `aarch64`; element-wise passes run the portable
    /// scalar kernels (`f64::mul_add` fuses natively there, matching the
    /// `vfmaq` lanes).
    Neon,
}

impl Backend {
    /// Short human-readable name, used in logs and bench metadata.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2Fma => "avx2+fma",
            Backend::Avx512 => "avx512",
            Backend::Neon => "neon",
        }
    }

    /// Native `f64` vector width of the backend's registers. Batched
    /// structure-of-arrays passes (e.g. the cohort ODE integrators in
    /// `cpsmon-sim`) use this to size their lane blocks; the NEON answer is
    /// 2 even though those element-wise passes currently fall back to the
    /// scalar kernels.
    pub fn f64_lanes(self) -> usize {
        match self {
            Backend::Scalar => 1,
            Backend::Neon => 2,
            Backend::Avx2Fma => 4,
            Backend::Avx512 => 8,
        }
    }
}

/// CPU capability snapshot feeding [`resolve`]; factored out so the policy
/// is unit-testable without mutating process environment.
#[derive(Debug, Clone, Copy, Default)]
struct Caps {
    avx2_fma: bool,
    avx512: bool,
    neon: bool,
}

/// Pure backend resolution from the `CPSMON_SIMD` setting and the detected
/// CPU capabilities. Forced backends degrade gracefully to the next-widest
/// supported tier rather than aborting, so CI can set `CPSMON_SIMD=avx512`
/// on heterogeneous runners.
fn resolve(simd_env: Option<&str>, caps: Caps) -> Backend {
    let widest = if caps.avx512 {
        Backend::Avx512
    } else if caps.avx2_fma {
        Backend::Avx2Fma
    } else if caps.neon {
        Backend::Neon
    } else {
        Backend::Scalar
    };
    let v = match simd_env.map(str::trim) {
        Some(v) => v,
        None => return widest,
    };
    if v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("scalar") {
        Backend::Scalar
    } else if v.eq_ignore_ascii_case("avx2") {
        if caps.avx2_fma {
            Backend::Avx2Fma
        } else {
            Backend::Scalar
        }
    } else if v.eq_ignore_ascii_case("avx512") {
        if caps.avx512 {
            Backend::Avx512
        } else if caps.avx2_fma {
            Backend::Avx2Fma
        } else {
            Backend::Scalar
        }
    } else if v.eq_ignore_ascii_case("neon") {
        if caps.neon {
            Backend::Neon
        } else {
            Backend::Scalar
        }
    } else {
        // `max`, `1`, or anything unrecognised: widest available.
        widest
    }
}

fn detect_avx2_fma() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// AVX-512 here means `avx512f` *plus* AVX2+FMA: the 512-bit kernels use
/// 256-bit registers for their mid-width tails.
fn detect_avx512() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512f") && detect_avx2_fma()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn detect_caps() -> Caps {
    #[cfg(target_arch = "aarch64")]
    let neon = std::arch::is_aarch64_feature_detected!("neon");
    #[cfg(not(target_arch = "aarch64"))]
    let neon = false;
    Caps {
        avx2_fma: detect_avx2_fma(),
        avx512: detect_avx512(),
        neon,
    }
}

/// The process-wide kernel backend: resolved once on first use from
/// `CPSMON_SIMD` and the CPU's feature flags (see the module table) and
/// cached — changing the environment variable afterwards has no effect,
/// which keeps every computation in a process on one numerical profile.
pub fn backend() -> Backend {
    static BACKEND: OnceLock<Backend> = OnceLock::new();
    *BACKEND.get_or_init(|| resolve(std::env::var("CPSMON_SIMD").ok().as_deref(), detect_caps()))
}

/// Whether the active backend fuses multiply-adds. Tests use this to pick
/// the matching bit-identity reference.
pub fn fma_active() -> bool {
    backend() != Backend::Scalar
}

/// `k`-panel height of the blocked GEMM: a `KC × n` slab of `b` (up to
/// ~256 KiB at `n = 256`) is reused across all `m` rows before the kernel
/// moves to the next panel, keeping it resident in L2.
pub(crate) const GEMM_KC: usize = 128;

// ---------------------------------------------------------------------------
// GEMM: out[m×n] += a[m×k] · b[k×n]
// ---------------------------------------------------------------------------

fn check_gemm_shapes(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, out: &[f64]) {
    assert_eq!(a.len(), m * k, "gemm lhs buffer length mismatch");
    assert_eq!(b.len(), k * n, "gemm rhs buffer length mismatch");
    assert_eq!(out.len(), m * n, "gemm output buffer length mismatch");
}

/// Dispatched `out += a · b` (row-major, `a` is `m×k`, `b` is `k×n`).
///
/// Per output element the multiply-adds are applied in strictly ascending
/// `k` order under both backends; the scalar backend uses unfused
/// `acc += a*b`, the AVX2 backend fused `acc = fma(a, b, acc)`.
///
/// # Panics
///
/// Panics if any buffer length disagrees with the stated shape.
pub fn gemm_acc(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
    check_gemm_shapes(a, m, k, b, n, out);
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { avx512::gemm_acc(a, m, k, b, n, out) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2Fma => unsafe { gemm_acc_avx2(a, m, k, b, n, out) },
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => unsafe { neon::gemm_acc(a, m, k, b, n, out) },
        _ => gemm_acc_scalar(a, m, k, b, n, out),
    }
}

/// The portable blocked `ikj` GEMM with a 4-wide unroll over `k` —
/// bit-identical to the naive triple loop (sequential `+=` per element)
/// over whatever `out` was seeded with.
pub fn gemm_acc_scalar(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
    check_gemm_shapes(a, m, k, b, n, out);
    for k0 in (0..k).step_by(GEMM_KC) {
        let k1 = (k0 + GEMM_KC).min(k);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            let mut kk = k0;
            while kk + 4 <= k1 {
                let (a0, a1, a2, a3) = (a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]);
                let b0 = &b[kk * n..(kk + 1) * n];
                let b1 = &b[(kk + 1) * n..(kk + 2) * n];
                let b2 = &b[(kk + 2) * n..(kk + 3) * n];
                let b3 = &b[(kk + 3) * n..(kk + 4) * n];
                for j in 0..n {
                    // Sequential adds: ascending-k order, one load/store of
                    // the output per four multiply-adds.
                    let mut acc = out_row[j];
                    acc += a0 * b0[j];
                    acc += a1 * b1[j];
                    acc += a2 * b2[j];
                    acc += a3 * b3[j];
                    out_row[j] = acc;
                }
                kk += 4;
            }
            while kk < k1 {
                let a_val = a_row[kk];
                let b_row = &b[kk * n..(kk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_val * bv;
                }
                kk += 1;
            }
        }
    }
}

/// AVX2+FMA GEMM through the safe entry used by tests and benches.
///
/// # Panics
///
/// Panics if the CPU does not support AVX2+FMA or a buffer length
/// disagrees with the stated shape.
#[cfg(target_arch = "x86_64")]
pub fn gemm_acc_fma(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
    assert!(detect_avx2_fma(), "AVX2+FMA not supported on this CPU");
    check_gemm_shapes(a, m, k, b, n, out);
    unsafe { gemm_acc_avx2(a, m, k, b, n, out) }
}

/// AVX-512 GEMM through the safe entry used by tests and benches. Bit-
/// identical to [`gemm_acc_fma`]: both apply one fused multiply-add per
/// `k` step in strictly ascending order per output element, and identical
/// FMA chains round identically regardless of register width.
///
/// # Panics
///
/// Panics if the CPU does not support AVX-512F (plus AVX2+FMA) or a buffer
/// length disagrees with the stated shape.
#[cfg(target_arch = "x86_64")]
pub fn gemm_acc_avx512(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
    assert!(detect_avx512(), "AVX-512F not supported on this CPU");
    check_gemm_shapes(a, m, k, b, n, out);
    unsafe { avx512::gemm_acc(a, m, k, b, n, out) }
}

/// Vectorized GEMM with a 4-row × 8-column register microkernel: four `a`
/// rows share every load of a `b` panel line (¼ the L2 traffic of a
/// row-at-a-time loop), and each of the eight accumulator chains takes one
/// fused multiply-add per `k` step. Row remainders fall back to a
/// single-row vector loop; column tails mirror the lanes with
/// [`f64::mul_add`]. Per element the FMA chain is strictly `k`-ascending
/// regardless of which micro-tile computed it, so results are independent
/// of blocking, batch slicing, and lane/tail position.
///
/// # Safety
///
/// Requires AVX2 and FMA; buffer lengths must match the stated shapes
/// (checked by the safe wrappers).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn gemm_acc_avx2(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
    use std::arch::x86_64::*;
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let op = out.as_mut_ptr();
    for k0 in (0..k).step_by(GEMM_KC) {
        let k1 = (k0 + GEMM_KC).min(k);
        let mut i = 0;
        while i + 4 <= m {
            let a0 = ap.add(i * k);
            let a1 = ap.add((i + 1) * k);
            let a2 = ap.add((i + 2) * k);
            let a3 = ap.add((i + 3) * k);
            let o0 = op.add(i * n);
            let o1 = op.add((i + 1) * n);
            let o2 = op.add((i + 2) * n);
            let o3 = op.add((i + 3) * n);
            let mut j = 0;
            while j + 8 <= n {
                let mut c00 = _mm256_loadu_pd(o0.add(j));
                let mut c01 = _mm256_loadu_pd(o0.add(j + 4));
                let mut c10 = _mm256_loadu_pd(o1.add(j));
                let mut c11 = _mm256_loadu_pd(o1.add(j + 4));
                let mut c20 = _mm256_loadu_pd(o2.add(j));
                let mut c21 = _mm256_loadu_pd(o2.add(j + 4));
                let mut c30 = _mm256_loadu_pd(o3.add(j));
                let mut c31 = _mm256_loadu_pd(o3.add(j + 4));
                for kk in k0..k1 {
                    let b0 = _mm256_loadu_pd(bp.add(kk * n + j));
                    let b1 = _mm256_loadu_pd(bp.add(kk * n + j + 4));
                    let av = _mm256_set1_pd(*a0.add(kk));
                    c00 = _mm256_fmadd_pd(av, b0, c00);
                    c01 = _mm256_fmadd_pd(av, b1, c01);
                    let av = _mm256_set1_pd(*a1.add(kk));
                    c10 = _mm256_fmadd_pd(av, b0, c10);
                    c11 = _mm256_fmadd_pd(av, b1, c11);
                    let av = _mm256_set1_pd(*a2.add(kk));
                    c20 = _mm256_fmadd_pd(av, b0, c20);
                    c21 = _mm256_fmadd_pd(av, b1, c21);
                    let av = _mm256_set1_pd(*a3.add(kk));
                    c30 = _mm256_fmadd_pd(av, b0, c30);
                    c31 = _mm256_fmadd_pd(av, b1, c31);
                }
                _mm256_storeu_pd(o0.add(j), c00);
                _mm256_storeu_pd(o0.add(j + 4), c01);
                _mm256_storeu_pd(o1.add(j), c10);
                _mm256_storeu_pd(o1.add(j + 4), c11);
                _mm256_storeu_pd(o2.add(j), c20);
                _mm256_storeu_pd(o2.add(j + 4), c21);
                _mm256_storeu_pd(o3.add(j), c30);
                _mm256_storeu_pd(o3.add(j + 4), c31);
                j += 8;
            }
            while j + 4 <= n {
                let mut c0 = _mm256_loadu_pd(o0.add(j));
                let mut c1 = _mm256_loadu_pd(o1.add(j));
                let mut c2 = _mm256_loadu_pd(o2.add(j));
                let mut c3 = _mm256_loadu_pd(o3.add(j));
                for kk in k0..k1 {
                    let b0 = _mm256_loadu_pd(bp.add(kk * n + j));
                    c0 = _mm256_fmadd_pd(_mm256_set1_pd(*a0.add(kk)), b0, c0);
                    c1 = _mm256_fmadd_pd(_mm256_set1_pd(*a1.add(kk)), b0, c1);
                    c2 = _mm256_fmadd_pd(_mm256_set1_pd(*a2.add(kk)), b0, c2);
                    c3 = _mm256_fmadd_pd(_mm256_set1_pd(*a3.add(kk)), b0, c3);
                }
                _mm256_storeu_pd(o0.add(j), c0);
                _mm256_storeu_pd(o1.add(j), c1);
                _mm256_storeu_pd(o2.add(j), c2);
                _mm256_storeu_pd(o3.add(j), c3);
                j += 4;
            }
            while j < n {
                // Scalar tail: `mul_add` rounds exactly like the vector
                // `vfmadd` lanes, so column position cannot change bits.
                for row in 0..4 {
                    let ar = ap.add((i + row) * k);
                    let or = op.add((i + row) * n + j);
                    let mut acc = *or;
                    for kk in k0..k1 {
                        acc = (*ar.add(kk)).mul_add(*bp.add(kk * n + j), acc);
                    }
                    *or = acc;
                }
                j += 1;
            }
            i += 4;
        }
        while i < m {
            // Row remainder in ikj order: broadcast `a` elements and axpy
            // across the contiguous `b` rows, keeping the out row hot in L1 —
            // the single-row (streaming-session) shape would otherwise
            // stream the whole `b` panel with stride-`n` loads. Per element
            // this performs the same strictly `k`-ascending FMA chain as the
            // register micro-kernel, so the bits cannot differ.
            let a_row = &a[i * k..(i + 1) * k];
            let or = op.add(i * n);
            let mut kk = k0;
            while kk + 4 <= k1 {
                // Four k-steps per pass over the out row: one load/store of
                // the accumulator amortizes four FMAs (the single-row
                // streaming-session shape is otherwise store-bound at three
                // memory ops per FMA). Per element the chain is still four
                // ascending-k FMAs, exactly as if applied in four passes.
                let av0 = _mm256_set1_pd(a_row[kk]);
                let av1 = _mm256_set1_pd(a_row[kk + 1]);
                let av2 = _mm256_set1_pd(a_row[kk + 2]);
                let av3 = _mm256_set1_pd(a_row[kk + 3]);
                let b0 = bp.add(kk * n);
                let b1 = bp.add((kk + 1) * n);
                let b2 = bp.add((kk + 2) * n);
                let b3 = bp.add((kk + 3) * n);
                let mut j = 0;
                while j + 8 <= n {
                    // Two independent accumulators per pass hide the FMA
                    // latency of the four-deep chains.
                    let mut c0 = _mm256_loadu_pd(or.add(j));
                    let mut c1 = _mm256_loadu_pd(or.add(j + 4));
                    c0 = _mm256_fmadd_pd(av0, _mm256_loadu_pd(b0.add(j)), c0);
                    c1 = _mm256_fmadd_pd(av0, _mm256_loadu_pd(b0.add(j + 4)), c1);
                    c0 = _mm256_fmadd_pd(av1, _mm256_loadu_pd(b1.add(j)), c0);
                    c1 = _mm256_fmadd_pd(av1, _mm256_loadu_pd(b1.add(j + 4)), c1);
                    c0 = _mm256_fmadd_pd(av2, _mm256_loadu_pd(b2.add(j)), c0);
                    c1 = _mm256_fmadd_pd(av2, _mm256_loadu_pd(b2.add(j + 4)), c1);
                    c0 = _mm256_fmadd_pd(av3, _mm256_loadu_pd(b3.add(j)), c0);
                    c1 = _mm256_fmadd_pd(av3, _mm256_loadu_pd(b3.add(j + 4)), c1);
                    _mm256_storeu_pd(or.add(j), c0);
                    _mm256_storeu_pd(or.add(j + 4), c1);
                    j += 8;
                }
                while j + 4 <= n {
                    let mut c = _mm256_loadu_pd(or.add(j));
                    c = _mm256_fmadd_pd(av0, _mm256_loadu_pd(b0.add(j)), c);
                    c = _mm256_fmadd_pd(av1, _mm256_loadu_pd(b1.add(j)), c);
                    c = _mm256_fmadd_pd(av2, _mm256_loadu_pd(b2.add(j)), c);
                    c = _mm256_fmadd_pd(av3, _mm256_loadu_pd(b3.add(j)), c);
                    _mm256_storeu_pd(or.add(j), c);
                    j += 4;
                }
                while j < n {
                    let mut acc = *or.add(j);
                    acc = a_row[kk].mul_add(*b0.add(j), acc);
                    acc = a_row[kk + 1].mul_add(*b1.add(j), acc);
                    acc = a_row[kk + 2].mul_add(*b2.add(j), acc);
                    acc = a_row[kk + 3].mul_add(*b3.add(j), acc);
                    *or.add(j) = acc;
                    j += 1;
                }
                kk += 4;
            }
            while kk < k1 {
                let av = _mm256_set1_pd(a_row[kk]);
                let br = bp.add(kk * n);
                let mut j = 0;
                while j + 4 <= n {
                    let c0 = _mm256_loadu_pd(or.add(j));
                    let c0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(br.add(j)), c0);
                    _mm256_storeu_pd(or.add(j), c0);
                    j += 4;
                }
                while j < n {
                    *or.add(j) = a_row[kk].mul_add(*br.add(j), *or.add(j));
                    j += 1;
                }
                kk += 1;
            }
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Vector transcendentals and their bit-mirroring scalar forms
// ---------------------------------------------------------------------------

// Cephes-style expression of exp(x): range reduction x = n·ln2 + r followed
// by a rational approximation of exp(r) on |r| ≤ ln2/2. The same constants
// and operation order are used by the scalar mirror (`exp_m`) and the AVX2
// lanes (`exp_pd`), so both produce identical bits for identical inputs.
const EXP_LOG2E: f64 = std::f64::consts::LOG2_E;
const EXP_C1: f64 = 6.931_457_519_531_25e-1;
const EXP_C2: f64 = 1.428_606_820_309_417_2e-6;
const EXP_P0: f64 = 1.261_771_930_748_105_9e-4;
const EXP_P1: f64 = 3.029_944_077_074_419_6e-2;
const EXP_P2: f64 = 9.999_999_999_999_999e-1;
const EXP_Q0: f64 = 3.001_985_051_386_644_6e-6;
const EXP_Q1: f64 = 2.524_483_403_496_841e-3;
const EXP_Q2: f64 = 2.272_655_482_081_550_3e-1;
const EXP_Q3: f64 = 2.000_000_000_000_000_2;
/// Clamp bounds keeping `2^n` representable as a plain exponent-field
/// bit pattern (no overflow/denormal scaling needed). Saturates at
/// `exp(±708)`; all in-repo callers (softmax, sigmoid, tanh) pass
/// non-positive arguments, where the low clamp only affects results that
/// are ≈ 1e-308 anyway.
const EXP_CLAMP: f64 = 708.0;

/// Scalar mirror of the AVX2 `exp` lanes: same polynomial, same fused
/// multiply-add sequence ([`f64::mul_add`] rounds like `vfmadd`), so for
/// any input it returns exactly the bits a vector lane would. Used for
/// slice tails under the AVX2 backend. Accuracy vs libm `exp` is a few
/// ulp over the clamped range.
pub fn exp_m(x: f64) -> f64 {
    let x = x.clamp(-EXP_CLAMP, EXP_CLAMP);
    let px = (EXP_LOG2E * x + 0.5).floor();
    let n = px as i64;
    // x -= px*C1; x -= px*C2 — fused, matching _mm256_fnmadd_pd.
    let x = (-px).mul_add(EXP_C1, x);
    let x = (-px).mul_add(EXP_C2, x);
    let xx = x * x;
    let p = x * EXP_P0.mul_add(xx, EXP_P1).mul_add(xx, EXP_P2);
    let q = EXP_Q0
        .mul_add(xx, EXP_Q1)
        .mul_add(xx, EXP_Q2)
        .mul_add(xx, EXP_Q3);
    let r = p / (q - p);
    let r = 2.0f64.mul_add(r, 1.0);
    r * f64::from_bits(((n + 1023) as u64) << 52)
}

/// Scalar mirror of the AVX2 sigmoid lanes: `e/(1+e)` with
/// `e = exp_m(-|v|)`, numerator 1 for `v ≥ 0`.
pub fn sigmoid_m(v: f64) -> f64 {
    let e = exp_m(-v.abs());
    let num = if v >= 0.0 { 1.0 } else { e };
    num / (1.0 + e)
}

/// Threshold below which `tanh(v) = v` to double precision (error is
/// `v³/3`, relatively `v²/3 ≈ 3e-17` at the cutover), avoiding the
/// `1 - e` cancellation of the exponential form near zero.
const TANH_TINY: f64 = 1e-8;

/// Scalar mirror of the AVX2 tanh lanes: `(1-e)/(1+e)` with
/// `e = exp_m(-2|v|)`, sign restored by copysign, identity below
/// `TANH_TINY`.
pub fn tanh_m(v: f64) -> f64 {
    let a = v.abs();
    if a < TANH_TINY {
        return v;
    }
    let e = exp_m(-2.0 * a);
    let t = (1.0 - e) / (1.0 + e);
    t.copysign(v)
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! The vector lanes behind the AVX2 backend. Each `_pd` helper is the
    //! four-lane transliteration of its `_m` scalar mirror in the parent
    //! module — same constants, same operation order — so lane and tail
    //! results are bit-identical per element.
    #![allow(unsafe_op_in_unsafe_fn)]

    use super::*;
    use std::arch::x86_64::*;

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn exp_pd(x: __m256d) -> __m256d {
        let clamp = _mm256_set1_pd(EXP_CLAMP);
        let x = _mm256_min_pd(
            _mm256_max_pd(x, _mm256_sub_pd(_mm256_setzero_pd(), clamp)),
            clamp,
        );
        let px = _mm256_floor_pd(_mm256_add_pd(
            _mm256_mul_pd(_mm256_set1_pd(EXP_LOG2E), x),
            _mm256_set1_pd(0.5),
        ));
        // px holds small exact integers: cvtpd_epi32 is exact; widen to i64
        // and build 2^n directly in the exponent field.
        let n32 = _mm256_cvtpd_epi32(px);
        let n64 = _mm256_cvtepi32_epi64(n32);
        let pow2 = _mm256_castsi256_pd(_mm256_slli_epi64::<52>(_mm256_add_epi64(
            n64,
            _mm256_set1_epi64x(1023),
        )));
        let x = _mm256_fnmadd_pd(px, _mm256_set1_pd(EXP_C1), x);
        let x = _mm256_fnmadd_pd(px, _mm256_set1_pd(EXP_C2), x);
        let xx = _mm256_mul_pd(x, x);
        let p = _mm256_fmadd_pd(_mm256_set1_pd(EXP_P0), xx, _mm256_set1_pd(EXP_P1));
        let p = _mm256_fmadd_pd(p, xx, _mm256_set1_pd(EXP_P2));
        let p = _mm256_mul_pd(x, p);
        let q = _mm256_fmadd_pd(_mm256_set1_pd(EXP_Q0), xx, _mm256_set1_pd(EXP_Q1));
        let q = _mm256_fmadd_pd(q, xx, _mm256_set1_pd(EXP_Q2));
        let q = _mm256_fmadd_pd(q, xx, _mm256_set1_pd(EXP_Q3));
        let r = _mm256_div_pd(p, _mm256_sub_pd(q, p));
        let r = _mm256_fmadd_pd(_mm256_set1_pd(2.0), r, _mm256_set1_pd(1.0));
        _mm256_mul_pd(r, pow2)
    }

    const SIGN_MASK: i64 = i64::MIN; // 0x8000_0000_0000_0000

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn sigmoid_pd(v: __m256d) -> __m256d {
        let sign = _mm256_castsi256_pd(_mm256_set1_epi64x(SIGN_MASK));
        let abs = _mm256_andnot_pd(sign, v);
        let e = exp_pd(_mm256_sub_pd(_mm256_setzero_pd(), abs));
        let one = _mm256_set1_pd(1.0);
        // v ≥ 0 → numerator 1, else e (matches the stable scalar form).
        let nonneg = _mm256_cmp_pd::<_CMP_GE_OQ>(v, _mm256_setzero_pd());
        let num = _mm256_blendv_pd(e, one, nonneg);
        _mm256_div_pd(num, _mm256_add_pd(one, e))
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn tanh_pd(v: __m256d) -> __m256d {
        let sign_bit = _mm256_castsi256_pd(_mm256_set1_epi64x(SIGN_MASK));
        let abs = _mm256_andnot_pd(sign_bit, v);
        let e = exp_pd(_mm256_mul_pd(_mm256_set1_pd(-2.0), abs));
        let one = _mm256_set1_pd(1.0);
        let t = _mm256_div_pd(_mm256_sub_pd(one, e), _mm256_add_pd(one, e));
        // copysign(t, v): take |t| (t ≥ 0 here) and v's sign bit.
        let signed = _mm256_or_pd(t, _mm256_and_pd(sign_bit, v));
        // |v| < TANH_TINY → identity, dodging the 1-e cancellation.
        let tiny = _mm256_cmp_pd::<_CMP_LT_OQ>(abs, _mm256_set1_pd(TANH_TINY));
        _mm256_blendv_pd(signed, v, tiny)
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn sigmoid_slice(xs: &mut [f64]) {
        let p = xs.as_mut_ptr();
        let mut i = 0;
        while i + 4 <= xs.len() {
            _mm256_storeu_pd(p.add(i), sigmoid_pd(_mm256_loadu_pd(p.add(i))));
            i += 4;
        }
        for v in &mut xs[i..] {
            *v = sigmoid_m(*v);
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn tanh_slice(xs: &mut [f64]) {
        let p = xs.as_mut_ptr();
        let mut i = 0;
        while i + 4 <= xs.len() {
            _mm256_storeu_pd(p.add(i), tanh_pd(_mm256_loadu_pd(p.add(i))));
            i += 4;
        }
        for v in &mut xs[i..] {
            *v = tanh_m(*v);
        }
    }

    /// Softmax of one row: vector max / exp / sum with a fixed
    /// lane-reduction order (pairwise within the final register, then the
    /// tail elements in ascending order), then the division pass.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn softmax_row(row: &mut [f64]) {
        let n = row.len();
        let p = row.as_mut_ptr();
        // Row maximum: vector fold then ordered tail.
        let mut i = 0;
        let mut max = f64::NEG_INFINITY;
        if n >= 4 {
            let mut mv = _mm256_loadu_pd(p);
            i = 4;
            while i + 4 <= n {
                mv = _mm256_max_pd(mv, _mm256_loadu_pd(p.add(i)));
                i += 4;
            }
            let mut lanes = [0.0f64; 4];
            _mm256_storeu_pd(lanes.as_mut_ptr(), mv);
            max = lanes[0].max(lanes[1]).max(lanes[2]).max(lanes[3]);
        }
        for &v in &row[i..] {
            max = max.max(v);
        }
        // Exponentiate shifted values and accumulate the sum: lane partial
        // sums folded pairwise, tail added in ascending order afterwards —
        // a fixed order for a given row, independent of anything else.
        let mv = _mm256_set1_pd(max);
        let mut i = 0;
        let mut sum;
        if n >= 4 {
            let mut sv = _mm256_setzero_pd();
            while i + 4 <= n {
                let e = exp_pd(_mm256_sub_pd(_mm256_loadu_pd(p.add(i)), mv));
                _mm256_storeu_pd(p.add(i), e);
                sv = _mm256_add_pd(sv, e);
                i += 4;
            }
            let mut lanes = [0.0f64; 4];
            _mm256_storeu_pd(lanes.as_mut_ptr(), sv);
            sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        } else {
            sum = 0.0;
        }
        for v in &mut row[i..] {
            *v = exp_m(*v - max);
            sum += *v;
        }
        let sv = _mm256_set1_pd(sum);
        let mut i = 0;
        while i + 4 <= n {
            _mm256_storeu_pd(p.add(i), _mm256_div_pd(_mm256_loadu_pd(p.add(i)), sv));
            i += 4;
        }
        for v in &mut row[i..] {
            *v /= sum;
        }
    }

    /// Fused LSTM state update for one row — the vector form of
    /// [`lstm_step_row_scalar`](super::lstm_step_row_scalar) under the
    /// AVX2 transcendentals. The gate algebra deliberately uses *unfused*
    /// mul/add so it matches the cached-forward path, which computes
    /// `f⊙c + i⊙g` through separate element-wise passes.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn lstm_step_row(z: &[f64], c: &mut [f64], h: &mut [f64], h_dim: usize) {
        let zp = z.as_ptr();
        let cp = c.as_mut_ptr();
        let hp = h.as_mut_ptr();
        let mut j = 0;
        while j + 4 <= h_dim {
            let i_g = sigmoid_pd(_mm256_loadu_pd(zp.add(j)));
            let f_g = sigmoid_pd(_mm256_loadu_pd(zp.add(h_dim + j)));
            let g_g = tanh_pd(_mm256_loadu_pd(zp.add(2 * h_dim + j)));
            let o_g = sigmoid_pd(_mm256_loadu_pd(zp.add(3 * h_dim + j)));
            let c_new = _mm256_add_pd(
                _mm256_mul_pd(f_g, _mm256_loadu_pd(cp.add(j))),
                _mm256_mul_pd(i_g, g_g),
            );
            _mm256_storeu_pd(cp.add(j), c_new);
            _mm256_storeu_pd(hp.add(j), _mm256_mul_pd(o_g, tanh_pd(c_new)));
            j += 4;
        }
        while j < h_dim {
            let i_g = sigmoid_m(z[j]);
            let f_g = sigmoid_m(z[h_dim + j]);
            let g_g = tanh_m(z[2 * h_dim + j]);
            let o_g = sigmoid_m(z[3 * h_dim + j]);
            let c_new = f_g * c[j] + i_g * g_g;
            c[j] = c_new;
            h[j] = o_g * tanh_m(c_new);
            j += 1;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx512 {
    //! The 512-bit kernel tier. The GEMM applies the same strictly
    //! `k`-ascending one-FMA-per-step chain per output element as the AVX2
    //! tier, and the 8-lane transcendentals are transliterations of the
    //! same `_m` scalar mirrors — so every kernel here is bit-identical
    //! per element to its AVX2 counterpart; only throughput differs.
    #![allow(unsafe_op_in_unsafe_fn)]

    use super::*;
    use std::arch::x86_64::*;
    use std::cell::RefCell;

    /// Row count above which packing B pays for itself: the pack streams
    /// `k·n` doubles once and every 4-row block then reads contiguous
    /// panels instead of `n`-strided rows.
    const PACK_MIN_M: usize = 64;

    thread_local! {
        /// Reused kk-major B-panel scratch (see [`gemm_acc`]); thread-local
        /// so concurrent worker GEMMs never contend.
        static PACK_B: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
    }

    /// 4-row × 16-column register microkernel (8 zmm accumulators), with
    /// 8-, 4- (ymm) and scalar-`mul_add` column tails, then a single-row
    /// axpy remainder with a 4-deep `k` unroll. Per element every path is
    /// the same ascending-`k` FMA chain.
    ///
    /// Large-`m` calls (the pooled stateful LSTM engine) first repack B
    /// into kk-major 16-column panels: the raw layout walks B with an
    /// `n`-element stride, which for the monitor shapes (n = 256/512) is a
    /// multiple of 4 KiB per step — every load in a panel lands in the
    /// same L1 set and the panel thrashes instead of caching. Packing only
    /// rearranges memory; each output element keeps the identical
    /// ascending-`k` FMA chain, so results are bit-identical with and
    /// without it.
    ///
    /// # Safety
    ///
    /// Requires AVX-512F plus AVX2+FMA; buffer lengths must match the
    /// stated shapes (checked by the safe wrappers).
    #[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
    pub unsafe fn gemm_acc(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
        if m >= PACK_MIN_M && n >= 16 {
            return PACK_B.with(|cell| {
                let mut buf = cell.borrow_mut();
                let n16 = n - n % 16;
                buf.resize(k * n16, 0.0);
                for jt in 0..n16 / 16 {
                    let panel = &mut buf[jt * k * 16..(jt + 1) * k * 16];
                    for kk in 0..k {
                        panel[kk * 16..kk * 16 + 16]
                            .copy_from_slice(&b[kk * n + jt * 16..kk * n + jt * 16 + 16]);
                    }
                }
                unsafe { gemm_acc_inner(a, m, k, b, n, out, buf.as_ptr()) }
            });
        }
        gemm_acc_inner(a, m, k, b, n, out, std::ptr::null());
    }

    /// The microkernel proper. `pack` is either null (read B rows in
    /// place) or the kk-major panel buffer covering the first
    /// `n - n % 16` columns.
    #[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
    unsafe fn gemm_acc_inner(
        a: &[f64],
        m: usize,
        k: usize,
        b: &[f64],
        n: usize,
        out: &mut [f64],
        pack: *const f64,
    ) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        for k0 in (0..k).step_by(GEMM_KC) {
            let k1 = (k0 + GEMM_KC).min(k);
            let mut i = 0;
            while i + 4 <= m {
                let a0 = ap.add(i * k);
                let a1 = ap.add((i + 1) * k);
                let a2 = ap.add((i + 2) * k);
                let a3 = ap.add((i + 3) * k);
                let o0 = op.add(i * n);
                let o1 = op.add((i + 1) * n);
                let o2 = op.add((i + 2) * n);
                let o3 = op.add((i + 3) * n);
                let mut j = 0;
                while j + 16 <= n {
                    // Inside this loop j < n - n%16 always holds, so the
                    // packed panels (when present) cover every iteration.
                    let (pb, bs) = if pack.is_null() {
                        (bp.add(j), n)
                    } else {
                        (pack.add((j / 16) * k * 16), 16)
                    };
                    let mut c00 = _mm512_loadu_pd(o0.add(j));
                    let mut c01 = _mm512_loadu_pd(o0.add(j + 8));
                    let mut c10 = _mm512_loadu_pd(o1.add(j));
                    let mut c11 = _mm512_loadu_pd(o1.add(j + 8));
                    let mut c20 = _mm512_loadu_pd(o2.add(j));
                    let mut c21 = _mm512_loadu_pd(o2.add(j + 8));
                    let mut c30 = _mm512_loadu_pd(o3.add(j));
                    let mut c31 = _mm512_loadu_pd(o3.add(j + 8));
                    for kk in k0..k1 {
                        let b0 = _mm512_loadu_pd(pb.add(kk * bs));
                        let b1 = _mm512_loadu_pd(pb.add(kk * bs + 8));
                        let av = _mm512_set1_pd(*a0.add(kk));
                        c00 = _mm512_fmadd_pd(av, b0, c00);
                        c01 = _mm512_fmadd_pd(av, b1, c01);
                        let av = _mm512_set1_pd(*a1.add(kk));
                        c10 = _mm512_fmadd_pd(av, b0, c10);
                        c11 = _mm512_fmadd_pd(av, b1, c11);
                        let av = _mm512_set1_pd(*a2.add(kk));
                        c20 = _mm512_fmadd_pd(av, b0, c20);
                        c21 = _mm512_fmadd_pd(av, b1, c21);
                        let av = _mm512_set1_pd(*a3.add(kk));
                        c30 = _mm512_fmadd_pd(av, b0, c30);
                        c31 = _mm512_fmadd_pd(av, b1, c31);
                    }
                    _mm512_storeu_pd(o0.add(j), c00);
                    _mm512_storeu_pd(o0.add(j + 8), c01);
                    _mm512_storeu_pd(o1.add(j), c10);
                    _mm512_storeu_pd(o1.add(j + 8), c11);
                    _mm512_storeu_pd(o2.add(j), c20);
                    _mm512_storeu_pd(o2.add(j + 8), c21);
                    _mm512_storeu_pd(o3.add(j), c30);
                    _mm512_storeu_pd(o3.add(j + 8), c31);
                    j += 16;
                }
                while j + 8 <= n {
                    let mut c0 = _mm512_loadu_pd(o0.add(j));
                    let mut c1 = _mm512_loadu_pd(o1.add(j));
                    let mut c2 = _mm512_loadu_pd(o2.add(j));
                    let mut c3 = _mm512_loadu_pd(o3.add(j));
                    for kk in k0..k1 {
                        let b0 = _mm512_loadu_pd(bp.add(kk * n + j));
                        c0 = _mm512_fmadd_pd(_mm512_set1_pd(*a0.add(kk)), b0, c0);
                        c1 = _mm512_fmadd_pd(_mm512_set1_pd(*a1.add(kk)), b0, c1);
                        c2 = _mm512_fmadd_pd(_mm512_set1_pd(*a2.add(kk)), b0, c2);
                        c3 = _mm512_fmadd_pd(_mm512_set1_pd(*a3.add(kk)), b0, c3);
                    }
                    _mm512_storeu_pd(o0.add(j), c0);
                    _mm512_storeu_pd(o1.add(j), c1);
                    _mm512_storeu_pd(o2.add(j), c2);
                    _mm512_storeu_pd(o3.add(j), c3);
                    j += 8;
                }
                while j + 4 <= n {
                    let mut c0 = _mm256_loadu_pd(o0.add(j));
                    let mut c1 = _mm256_loadu_pd(o1.add(j));
                    let mut c2 = _mm256_loadu_pd(o2.add(j));
                    let mut c3 = _mm256_loadu_pd(o3.add(j));
                    for kk in k0..k1 {
                        let b0 = _mm256_loadu_pd(bp.add(kk * n + j));
                        c0 = _mm256_fmadd_pd(_mm256_set1_pd(*a0.add(kk)), b0, c0);
                        c1 = _mm256_fmadd_pd(_mm256_set1_pd(*a1.add(kk)), b0, c1);
                        c2 = _mm256_fmadd_pd(_mm256_set1_pd(*a2.add(kk)), b0, c2);
                        c3 = _mm256_fmadd_pd(_mm256_set1_pd(*a3.add(kk)), b0, c3);
                    }
                    _mm256_storeu_pd(o0.add(j), c0);
                    _mm256_storeu_pd(o1.add(j), c1);
                    _mm256_storeu_pd(o2.add(j), c2);
                    _mm256_storeu_pd(o3.add(j), c3);
                    j += 4;
                }
                while j < n {
                    for row in 0..4 {
                        let ar = ap.add((i + row) * k);
                        let or = op.add((i + row) * n + j);
                        let mut acc = *or;
                        for kk in k0..k1 {
                            acc = (*ar.add(kk)).mul_add(*bp.add(kk * n + j), acc);
                        }
                        *or = acc;
                    }
                    j += 1;
                }
                i += 4;
            }
            while i < m {
                // Single-row axpy remainder, 4 k-steps per pass over the out
                // row (see the AVX2 kernel for the rationale — identical
                // per-element chains, twice the lane width).
                let a_row = &a[i * k..(i + 1) * k];
                let or = op.add(i * n);
                let mut kk = k0;
                while kk + 4 <= k1 {
                    let av0 = _mm512_set1_pd(a_row[kk]);
                    let av1 = _mm512_set1_pd(a_row[kk + 1]);
                    let av2 = _mm512_set1_pd(a_row[kk + 2]);
                    let av3 = _mm512_set1_pd(a_row[kk + 3]);
                    let b0 = bp.add(kk * n);
                    let b1 = bp.add((kk + 1) * n);
                    let b2 = bp.add((kk + 2) * n);
                    let b3 = bp.add((kk + 3) * n);
                    let mut j = 0;
                    while j + 16 <= n {
                        let mut c0 = _mm512_loadu_pd(or.add(j));
                        let mut c1 = _mm512_loadu_pd(or.add(j + 8));
                        c0 = _mm512_fmadd_pd(av0, _mm512_loadu_pd(b0.add(j)), c0);
                        c1 = _mm512_fmadd_pd(av0, _mm512_loadu_pd(b0.add(j + 8)), c1);
                        c0 = _mm512_fmadd_pd(av1, _mm512_loadu_pd(b1.add(j)), c0);
                        c1 = _mm512_fmadd_pd(av1, _mm512_loadu_pd(b1.add(j + 8)), c1);
                        c0 = _mm512_fmadd_pd(av2, _mm512_loadu_pd(b2.add(j)), c0);
                        c1 = _mm512_fmadd_pd(av2, _mm512_loadu_pd(b2.add(j + 8)), c1);
                        c0 = _mm512_fmadd_pd(av3, _mm512_loadu_pd(b3.add(j)), c0);
                        c1 = _mm512_fmadd_pd(av3, _mm512_loadu_pd(b3.add(j + 8)), c1);
                        _mm512_storeu_pd(or.add(j), c0);
                        _mm512_storeu_pd(or.add(j + 8), c1);
                        j += 16;
                    }
                    while j + 8 <= n {
                        let mut c = _mm512_loadu_pd(or.add(j));
                        c = _mm512_fmadd_pd(av0, _mm512_loadu_pd(b0.add(j)), c);
                        c = _mm512_fmadd_pd(av1, _mm512_loadu_pd(b1.add(j)), c);
                        c = _mm512_fmadd_pd(av2, _mm512_loadu_pd(b2.add(j)), c);
                        c = _mm512_fmadd_pd(av3, _mm512_loadu_pd(b3.add(j)), c);
                        _mm512_storeu_pd(or.add(j), c);
                        j += 8;
                    }
                    while j < n {
                        let mut acc = *or.add(j);
                        acc = a_row[kk].mul_add(*b0.add(j), acc);
                        acc = a_row[kk + 1].mul_add(*b1.add(j), acc);
                        acc = a_row[kk + 2].mul_add(*b2.add(j), acc);
                        acc = a_row[kk + 3].mul_add(*b3.add(j), acc);
                        *or.add(j) = acc;
                        j += 1;
                    }
                    kk += 4;
                }
                while kk < k1 {
                    let av = _mm512_set1_pd(a_row[kk]);
                    let br = bp.add(kk * n);
                    let mut j = 0;
                    while j + 8 <= n {
                        let c = _mm512_loadu_pd(or.add(j));
                        let c = _mm512_fmadd_pd(av, _mm512_loadu_pd(br.add(j)), c);
                        _mm512_storeu_pd(or.add(j), c);
                        j += 8;
                    }
                    while j < n {
                        *or.add(j) = a_row[kk].mul_add(*br.add(j), *or.add(j));
                        j += 1;
                    }
                    kk += 1;
                }
                i += 1;
            }
        }
    }

    const SIGN_MASK: i64 = i64::MIN;

    /// floor + suppress-exceptions immediate for `_mm512_roundscale_pd`.
    const FLOOR_IMM: i32 = 0x09; // _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC

    #[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
    pub unsafe fn exp_pd(x: __m512d) -> __m512d {
        let clamp = _mm512_set1_pd(EXP_CLAMP);
        let x = _mm512_min_pd(
            _mm512_max_pd(x, _mm512_sub_pd(_mm512_setzero_pd(), clamp)),
            clamp,
        );
        let px = _mm512_roundscale_pd::<FLOOR_IMM>(_mm512_add_pd(
            _mm512_mul_pd(_mm512_set1_pd(EXP_LOG2E), x),
            _mm512_set1_pd(0.5),
        ));
        let n32 = _mm512_cvtpd_epi32(px);
        let n64 = _mm512_cvtepi32_epi64(n32);
        let pow2 = _mm512_castsi512_pd(_mm512_slli_epi64::<52>(_mm512_add_epi64(
            n64,
            _mm512_set1_epi64(1023),
        )));
        let x = _mm512_fnmadd_pd(px, _mm512_set1_pd(EXP_C1), x);
        let x = _mm512_fnmadd_pd(px, _mm512_set1_pd(EXP_C2), x);
        let xx = _mm512_mul_pd(x, x);
        let p = _mm512_fmadd_pd(_mm512_set1_pd(EXP_P0), xx, _mm512_set1_pd(EXP_P1));
        let p = _mm512_fmadd_pd(p, xx, _mm512_set1_pd(EXP_P2));
        let p = _mm512_mul_pd(x, p);
        let q = _mm512_fmadd_pd(_mm512_set1_pd(EXP_Q0), xx, _mm512_set1_pd(EXP_Q1));
        let q = _mm512_fmadd_pd(q, xx, _mm512_set1_pd(EXP_Q2));
        let q = _mm512_fmadd_pd(q, xx, _mm512_set1_pd(EXP_Q3));
        let r = _mm512_div_pd(p, _mm512_sub_pd(q, p));
        let r = _mm512_fmadd_pd(_mm512_set1_pd(2.0), r, _mm512_set1_pd(1.0));
        _mm512_mul_pd(r, pow2)
    }

    #[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
    unsafe fn abs_pd(v: __m512d) -> __m512d {
        _mm512_castsi512_pd(_mm512_andnot_si512(
            _mm512_set1_epi64(SIGN_MASK),
            _mm512_castpd_si512(v),
        ))
    }

    #[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
    pub unsafe fn sigmoid_pd(v: __m512d) -> __m512d {
        let abs = abs_pd(v);
        let e = exp_pd(_mm512_sub_pd(_mm512_setzero_pd(), abs));
        let one = _mm512_set1_pd(1.0);
        let nonneg = _mm512_cmp_pd_mask::<_CMP_GE_OQ>(v, _mm512_setzero_pd());
        let num = _mm512_mask_blend_pd(nonneg, e, one);
        _mm512_div_pd(num, _mm512_add_pd(one, e))
    }

    #[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
    pub unsafe fn tanh_pd(v: __m512d) -> __m512d {
        let abs = abs_pd(v);
        let e = exp_pd(_mm512_mul_pd(_mm512_set1_pd(-2.0), abs));
        let one = _mm512_set1_pd(1.0);
        let t = _mm512_div_pd(_mm512_sub_pd(one, e), _mm512_add_pd(one, e));
        // copysign(t, v): t ≥ 0 here, so OR in v's sign bit.
        let sign = _mm512_set1_epi64(SIGN_MASK);
        let signed = _mm512_castsi512_pd(_mm512_or_si512(
            _mm512_castpd_si512(t),
            _mm512_and_si512(sign, _mm512_castpd_si512(v)),
        ));
        let tiny = _mm512_cmp_pd_mask::<_CMP_LT_OQ>(abs, _mm512_set1_pd(TANH_TINY));
        _mm512_mask_blend_pd(tiny, signed, v)
    }

    #[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
    pub unsafe fn sigmoid_slice(xs: &mut [f64]) {
        let p = xs.as_mut_ptr();
        let mut i = 0;
        while i + 8 <= xs.len() {
            _mm512_storeu_pd(p.add(i), sigmoid_pd(_mm512_loadu_pd(p.add(i))));
            i += 8;
        }
        for v in &mut xs[i..] {
            *v = sigmoid_m(*v);
        }
    }

    #[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
    pub unsafe fn tanh_slice(xs: &mut [f64]) {
        let p = xs.as_mut_ptr();
        let mut i = 0;
        while i + 8 <= xs.len() {
            _mm512_storeu_pd(p.add(i), tanh_pd(_mm512_loadu_pd(p.add(i))));
            i += 8;
        }
        for v in &mut xs[i..] {
            *v = tanh_m(*v);
        }
    }

    /// Softmax of one row; same shape as the AVX2 kernel with 8-lane
    /// blocks. The lane partial sums fold pairwise
    /// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))` — a fixed order for a given
    /// row, independent of everything else.
    #[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
    pub unsafe fn softmax_row(row: &mut [f64]) {
        let n = row.len();
        let p = row.as_mut_ptr();
        let mut i = 0;
        let mut max = f64::NEG_INFINITY;
        if n >= 8 {
            let mut mv = _mm512_loadu_pd(p);
            i = 8;
            while i + 8 <= n {
                mv = _mm512_max_pd(mv, _mm512_loadu_pd(p.add(i)));
                i += 8;
            }
            // max is exact under any association.
            max = _mm512_reduce_max_pd(mv);
        }
        for &v in &row[i..] {
            max = max.max(v);
        }
        let mv = _mm512_set1_pd(max);
        let mut i = 0;
        let mut sum;
        if n >= 8 {
            let mut sv = _mm512_setzero_pd();
            while i + 8 <= n {
                let e = exp_pd(_mm512_sub_pd(_mm512_loadu_pd(p.add(i)), mv));
                _mm512_storeu_pd(p.add(i), e);
                sv = _mm512_add_pd(sv, e);
                i += 8;
            }
            let mut lanes = [0.0f64; 8];
            _mm512_storeu_pd(lanes.as_mut_ptr(), sv);
            sum = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
                + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
        } else {
            sum = 0.0;
        }
        for v in &mut row[i..] {
            *v = exp_m(*v - max);
            sum += *v;
        }
        let sv = _mm512_set1_pd(sum);
        let mut i = 0;
        while i + 8 <= n {
            _mm512_storeu_pd(p.add(i), _mm512_div_pd(_mm512_loadu_pd(p.add(i)), sv));
            i += 8;
        }
        for v in &mut row[i..] {
            *v /= sum;
        }
    }

    /// Fused LSTM state update for one row — the 8-lane form of the AVX2
    /// kernel. Gate algebra stays *unfused* mul/add to match the cached
    /// forward path.
    #[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
    pub unsafe fn lstm_step_row(z: &[f64], c: &mut [f64], h: &mut [f64], h_dim: usize) {
        let zp = z.as_ptr();
        let cp = c.as_mut_ptr();
        let hp = h.as_mut_ptr();
        let mut j = 0;
        while j + 8 <= h_dim {
            let i_g = sigmoid_pd(_mm512_loadu_pd(zp.add(j)));
            let f_g = sigmoid_pd(_mm512_loadu_pd(zp.add(h_dim + j)));
            let g_g = tanh_pd(_mm512_loadu_pd(zp.add(2 * h_dim + j)));
            let o_g = sigmoid_pd(_mm512_loadu_pd(zp.add(3 * h_dim + j)));
            let c_new = _mm512_add_pd(
                _mm512_mul_pd(f_g, _mm512_loadu_pd(cp.add(j))),
                _mm512_mul_pd(i_g, g_g),
            );
            _mm512_storeu_pd(cp.add(j), c_new);
            _mm512_storeu_pd(hp.add(j), _mm512_mul_pd(o_g, tanh_pd(c_new)));
            j += 8;
        }
        while j < h_dim {
            let i_g = sigmoid_m(z[j]);
            let f_g = sigmoid_m(z[h_dim + j]);
            let g_g = tanh_m(z[2 * h_dim + j]);
            let o_g = sigmoid_m(z[3 * h_dim + j]);
            let c_new = f_g * c[j] + i_g * g_g;
            c[j] = c_new;
            h[j] = o_g * tanh_m(c_new);
            j += 1;
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    //! NEON GEMM tier (2-lane f64 `vfmaq_f64`). Only the GEMM is
    //! vectorized; the element-wise transcendental passes use the portable
    //! scalar kernels under [`Backend::Neon`](super::Backend::Neon). The
    //! scalar column tail's `f64::mul_add` lowers to a native fused
    //! multiply-add on aarch64, matching the vector lanes bit-for-bit.
    #![allow(unsafe_op_in_unsafe_fn)]

    use super::*;
    use std::arch::aarch64::*;

    /// Blocked ikj axpy GEMM: per output element one fused multiply-add
    /// per `k` step in strictly ascending order.
    ///
    /// # Safety
    ///
    /// Requires NEON; buffer lengths must match the stated shapes (checked
    /// by the safe wrappers).
    #[target_feature(enable = "neon")]
    pub unsafe fn gemm_acc(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        for k0 in (0..k).step_by(GEMM_KC) {
            let k1 = (k0 + GEMM_KC).min(k);
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let or = op.add(i * n);
                for kk in k0..k1 {
                    let av = vdupq_n_f64(a_row[kk]);
                    let br = bp.add(kk * n);
                    let mut j = 0;
                    while j + 2 <= n {
                        let c = vld1q_f64(or.add(j));
                        let c = vfmaq_f64(c, av, vld1q_f64(br.add(j)));
                        vst1q_f64(or.add(j), c);
                        j += 2;
                    }
                    while j < n {
                        *or.add(j) = a_row[kk].mul_add(*br.add(j), *or.add(j));
                        j += 1;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// f32 GEMM (quantized serving engine)
// ---------------------------------------------------------------------------

fn check_gemm_shapes_f32(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &[f32]) {
    assert_eq!(a.len(), m * k, "gemm lhs buffer length mismatch");
    assert_eq!(b.len(), k * n, "gemm rhs buffer length mismatch");
    assert_eq!(out.len(), m * n, "gemm output buffer length mismatch");
}

/// Dispatched `out += a · b` in single precision — the GEMM behind the
/// quantized (`f16`/`int8`-sourced) serving engine. Per output element the
/// multiply-adds are applied in strictly ascending `k` order under every
/// backend (scalar: unfused; vector tiers: fused with `f32::mul_add`
/// tails, which round identically to the `ps` lanes), so each row of a
/// batch gets the same bits it would get in a 1-row call.
///
/// # Panics
///
/// Panics if any buffer length disagrees with the stated shape.
pub fn gemm_acc_f32(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    check_gemm_shapes_f32(a, m, k, b, n, out);
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { gemm_acc_f32_avx512(a, m, k, b, n, out) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2Fma => unsafe { gemm_acc_f32_avx2(a, m, k, b, n, out) },
        _ => gemm_acc_f32_scalar(a, m, k, b, n, out),
    }
}

/// Portable f32 GEMM: blocked ikj with sequential unfused `+=` per
/// element, ascending `k`.
pub fn gemm_acc_f32_scalar(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    check_gemm_shapes_f32(a, m, k, b, n, out);
    for k0 in (0..k).step_by(GEMM_KC) {
        let k1 = (k0 + GEMM_KC).min(k);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for kk in k0..k1 {
                let a_val = a_row[kk];
                let b_row = &b[kk * n..(kk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_val * bv;
                }
            }
        }
    }
}

/// AVX2+FMA f32 GEMM: 4-row × 8-lane microkernel with `f32::mul_add`
/// scalar tails, single-row axpy remainder. Ascending-`k` FMA chain per
/// element everywhere.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn gemm_acc_f32_avx2(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    use std::arch::x86_64::*;
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let op = out.as_mut_ptr();
    for k0 in (0..k).step_by(GEMM_KC) {
        let k1 = (k0 + GEMM_KC).min(k);
        let mut i = 0;
        while i + 4 <= m {
            let a0 = ap.add(i * k);
            let a1 = ap.add((i + 1) * k);
            let a2 = ap.add((i + 2) * k);
            let a3 = ap.add((i + 3) * k);
            let o0 = op.add(i * n);
            let o1 = op.add((i + 1) * n);
            let o2 = op.add((i + 2) * n);
            let o3 = op.add((i + 3) * n);
            let mut j = 0;
            while j + 8 <= n {
                let mut c0 = _mm256_loadu_ps(o0.add(j));
                let mut c1 = _mm256_loadu_ps(o1.add(j));
                let mut c2 = _mm256_loadu_ps(o2.add(j));
                let mut c3 = _mm256_loadu_ps(o3.add(j));
                for kk in k0..k1 {
                    let b0 = _mm256_loadu_ps(bp.add(kk * n + j));
                    c0 = _mm256_fmadd_ps(_mm256_set1_ps(*a0.add(kk)), b0, c0);
                    c1 = _mm256_fmadd_ps(_mm256_set1_ps(*a1.add(kk)), b0, c1);
                    c2 = _mm256_fmadd_ps(_mm256_set1_ps(*a2.add(kk)), b0, c2);
                    c3 = _mm256_fmadd_ps(_mm256_set1_ps(*a3.add(kk)), b0, c3);
                }
                _mm256_storeu_ps(o0.add(j), c0);
                _mm256_storeu_ps(o1.add(j), c1);
                _mm256_storeu_ps(o2.add(j), c2);
                _mm256_storeu_ps(o3.add(j), c3);
                j += 8;
            }
            while j < n {
                for row in 0..4 {
                    let ar = ap.add((i + row) * k);
                    let or = op.add((i + row) * n + j);
                    let mut acc = *or;
                    for kk in k0..k1 {
                        acc = (*ar.add(kk)).mul_add(*bp.add(kk * n + j), acc);
                    }
                    *or = acc;
                }
                j += 1;
            }
            i += 4;
        }
        while i < m {
            let a_row = &a[i * k..(i + 1) * k];
            let or = op.add(i * n);
            #[allow(clippy::needless_range_loop)] // kk also strides into b
            for kk in k0..k1 {
                let av = _mm256_set1_ps(a_row[kk]);
                let br = bp.add(kk * n);
                let mut j = 0;
                while j + 8 <= n {
                    let c = _mm256_loadu_ps(or.add(j));
                    let c = _mm256_fmadd_ps(av, _mm256_loadu_ps(br.add(j)), c);
                    _mm256_storeu_ps(or.add(j), c);
                    j += 8;
                }
                while j < n {
                    *or.add(j) = a_row[kk].mul_add(*br.add(j), *or.add(j));
                    j += 1;
                }
            }
            i += 1;
        }
    }
}

/// AVX-512 f32 GEMM: 4-row × 16-lane microkernel, same chain discipline.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
unsafe fn gemm_acc_f32_avx512(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    use std::arch::x86_64::*;
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let op = out.as_mut_ptr();
    for k0 in (0..k).step_by(GEMM_KC) {
        let k1 = (k0 + GEMM_KC).min(k);
        let mut i = 0;
        while i + 4 <= m {
            let a0 = ap.add(i * k);
            let a1 = ap.add((i + 1) * k);
            let a2 = ap.add((i + 2) * k);
            let a3 = ap.add((i + 3) * k);
            let o0 = op.add(i * n);
            let o1 = op.add((i + 1) * n);
            let o2 = op.add((i + 2) * n);
            let o3 = op.add((i + 3) * n);
            let mut j = 0;
            while j + 16 <= n {
                let mut c0 = _mm512_loadu_ps(o0.add(j));
                let mut c1 = _mm512_loadu_ps(o1.add(j));
                let mut c2 = _mm512_loadu_ps(o2.add(j));
                let mut c3 = _mm512_loadu_ps(o3.add(j));
                for kk in k0..k1 {
                    let b0 = _mm512_loadu_ps(bp.add(kk * n + j));
                    c0 = _mm512_fmadd_ps(_mm512_set1_ps(*a0.add(kk)), b0, c0);
                    c1 = _mm512_fmadd_ps(_mm512_set1_ps(*a1.add(kk)), b0, c1);
                    c2 = _mm512_fmadd_ps(_mm512_set1_ps(*a2.add(kk)), b0, c2);
                    c3 = _mm512_fmadd_ps(_mm512_set1_ps(*a3.add(kk)), b0, c3);
                }
                _mm512_storeu_ps(o0.add(j), c0);
                _mm512_storeu_ps(o1.add(j), c1);
                _mm512_storeu_ps(o2.add(j), c2);
                _mm512_storeu_ps(o3.add(j), c3);
                j += 16;
            }
            while j < n {
                for row in 0..4 {
                    let ar = ap.add((i + row) * k);
                    let or = op.add((i + row) * n + j);
                    let mut acc = *or;
                    for kk in k0..k1 {
                        acc = (*ar.add(kk)).mul_add(*bp.add(kk * n + j), acc);
                    }
                    *or = acc;
                }
                j += 1;
            }
            i += 4;
        }
        while i < m {
            let a_row = &a[i * k..(i + 1) * k];
            let or = op.add(i * n);
            #[allow(clippy::needless_range_loop)] // kk also strides into b
            for kk in k0..k1 {
                let av = _mm512_set1_ps(a_row[kk]);
                let br = bp.add(kk * n);
                let mut j = 0;
                while j + 16 <= n {
                    let c = _mm512_loadu_ps(or.add(j));
                    let c = _mm512_fmadd_ps(av, _mm512_loadu_ps(br.add(j)), c);
                    _mm512_storeu_ps(or.add(j), c);
                    j += 16;
                }
                while j < n {
                    *or.add(j) = a_row[kk].mul_add(*br.add(j), *or.add(j));
                    j += 1;
                }
            }
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatched element-wise kernels
// ---------------------------------------------------------------------------

/// In-place logistic sigmoid over a slice, dispatched by [`backend`]. The
/// scalar backend is the numerically-stable libm form
/// ([`sigmoid_scalar`](crate::activation::sigmoid_scalar)).
pub fn sigmoid_slice(xs: &mut [f64]) {
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { avx512::sigmoid_slice(xs) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2Fma => unsafe { avx2::sigmoid_slice(xs) },
        _ => {
            for v in xs {
                *v = crate::activation::sigmoid_scalar(*v);
            }
        }
    }
}

/// In-place hyperbolic tangent over a slice, dispatched by [`backend`].
/// The scalar backend is libm [`f64::tanh`].
pub fn tanh_slice(xs: &mut [f64]) {
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { avx512::tanh_slice(xs) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2Fma => unsafe { avx2::tanh_slice(xs) },
        _ => {
            for v in xs {
                *v = v.tanh();
            }
        }
    }
}

/// In-place softmax of one row (max-subtraction form), dispatched by
/// [`backend`]. Operates on the row slice only, so a row maps to the same
/// result in a 1-row and an n-row batch.
pub fn softmax_row(row: &mut [f64]) {
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { avx512::softmax_row(row) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2Fma => unsafe { avx2::softmax_row(row) },
        _ => softmax_row_scalar(row),
    }
}

/// The portable softmax row kernel (libm `exp`, strictly ascending sum).
pub fn softmax_row_scalar(row: &mut [f64]) {
    let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in row.iter_mut() {
        *v /= sum;
    }
}

/// Fused LSTM state update for one row: given the pre-activation row `z`
/// (`4·h_dim` wide, gate order `i|f|g|o`), updates `c ← σ(f)⊙c + σ(i)⊙tanh(g)`
/// and `h ← σ(o)⊙tanh(c)` in place. Dispatched by [`backend`]; both
/// implementations use the same per-element transcendentals as
/// [`sigmoid_slice`]/[`tanh_slice`], so the fused path stays bit-identical
/// to the unfused matrix-at-a-time path under either backend.
///
/// # Panics
///
/// Panics if the slice lengths disagree with `h_dim`.
pub fn lstm_step_row(z: &[f64], c: &mut [f64], h: &mut [f64], h_dim: usize) {
    assert_eq!(z.len(), 4 * h_dim, "gate row width mismatch");
    assert_eq!(c.len(), h_dim, "cell row width mismatch");
    assert_eq!(h.len(), h_dim, "hidden row width mismatch");
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx512 => unsafe { avx512::lstm_step_row(z, c, h, h_dim) },
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2Fma => unsafe { avx2::lstm_step_row(z, c, h, h_dim) },
        _ => lstm_step_row_scalar(z, c, h, h_dim),
    }
}

/// The portable LSTM state update (libm transcendentals) — the original
/// fused step loop.
pub fn lstm_step_row_scalar(z: &[f64], c: &mut [f64], h: &mut [f64], h_dim: usize) {
    use crate::activation::sigmoid_scalar;
    for j in 0..h_dim {
        let i = sigmoid_scalar(z[j]);
        let f = sigmoid_scalar(z[h_dim + j]);
        let g = z[2 * h_dim + j].tanh();
        let o = sigmoid_scalar(z[3 * h_dim + j]);
        let c_new = f * c[j] + i * g;
        c[j] = c_new;
        h[j] = o * c_new.tanh();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_policy() {
        let x86_512 = Caps {
            avx2_fma: true,
            avx512: true,
            neon: false,
        };
        let x86_256 = Caps {
            avx2_fma: true,
            avx512: false,
            neon: false,
        };
        let arm = Caps {
            avx2_fma: false,
            avx512: false,
            neon: true,
        };
        let none = Caps::default();
        // Unset / max / unrecognised: widest available.
        assert_eq!(resolve(None, x86_512), Backend::Avx512);
        assert_eq!(resolve(None, x86_256), Backend::Avx2Fma);
        assert_eq!(resolve(None, arm), Backend::Neon);
        assert_eq!(resolve(None, none), Backend::Scalar);
        assert_eq!(resolve(Some("max"), x86_512), Backend::Avx512);
        assert_eq!(resolve(Some("1"), x86_256), Backend::Avx2Fma);
        assert_eq!(resolve(Some("1"), none), Backend::Scalar);
        // Forced scalar.
        assert_eq!(resolve(Some("0"), x86_512), Backend::Scalar);
        assert_eq!(resolve(Some("off"), x86_512), Backend::Scalar);
        assert_eq!(resolve(Some(" 0 "), x86_512), Backend::Scalar);
        assert_eq!(resolve(Some("scalar"), x86_512), Backend::Scalar);
        // Forced tiers cap below the widest...
        assert_eq!(resolve(Some("avx2"), x86_512), Backend::Avx2Fma);
        // ...and degrade gracefully when the CPU lacks them.
        assert_eq!(resolve(Some("avx512"), x86_512), Backend::Avx512);
        assert_eq!(resolve(Some("avx512"), x86_256), Backend::Avx2Fma);
        assert_eq!(resolve(Some("avx512"), none), Backend::Scalar);
        assert_eq!(resolve(Some("avx2"), arm), Backend::Scalar);
        assert_eq!(resolve(Some("neon"), arm), Backend::Neon);
        assert_eq!(resolve(Some("neon"), x86_512), Backend::Scalar);
        assert_eq!(resolve(Some("AVX512"), x86_512), Backend::Avx512);
        assert_eq!(Backend::Scalar.label(), "scalar");
        assert_eq!(Backend::Avx2Fma.label(), "avx2+fma");
        assert_eq!(Backend::Avx512.label(), "avx512");
        assert_eq!(Backend::Neon.label(), "neon");
    }

    #[test]
    fn exp_mirror_tracks_libm() {
        // A few ulp of libm over the range our callers use (args ≤ 0).
        let mut x = -700.0;
        while x <= 0.0 {
            let got = exp_m(x);
            let want = x.exp();
            assert!(
                (got - want).abs() <= 1e-13 * want.abs(),
                "exp_m({x}) = {got} vs libm {want}"
            );
            x += 0.37;
        }
        assert_eq!(exp_m(0.0), 1.0);
        // Saturation below the clamp, still positive.
        assert!(exp_m(-1000.0) > 0.0);
        assert!(exp_m(-1000.0) < 1e-300);
    }

    #[test]
    fn sigmoid_tanh_mirrors_track_libm() {
        let mut v = -30.0;
        while v <= 30.0 {
            let s = sigmoid_m(v);
            let s_ref = crate::activation::sigmoid_scalar(v);
            assert!((s - s_ref).abs() <= 1e-12, "sigmoid_m({v})");
            let t = tanh_m(v);
            let t_ref = v.tanh();
            assert!((t - t_ref).abs() <= 1e-12, "tanh_m({v})");
            v += 0.173;
        }
        assert_eq!(sigmoid_m(0.0), 0.5);
        assert_eq!(tanh_m(0.0), 0.0);
        assert_eq!(tanh_m(-0.0).to_bits(), (-0.0f64).to_bits());
        // Tiny arguments take the identity branch exactly.
        assert_eq!(tanh_m(1e-9), 1e-9);
        assert_eq!(tanh_m(-1e-9), -1e-9);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_lanes_mirror_scalar_tails_bitwise() {
        if !detect_avx2_fma() {
            return;
        }
        // Values at every lane position and an odd tail: lane/tail identity
        // means results are independent of offset and slice length.
        let vals: Vec<f64> = (0..23)
            .map(|i| (i as f64 - 11.0) * 1.7 + 0.013 * i as f64)
            .collect();
        let mut sig = vals.clone();
        let mut th = vals.clone();
        unsafe {
            avx2::sigmoid_slice(&mut sig);
            avx2::tanh_slice(&mut th);
        }
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(sig[i].to_bits(), sigmoid_m(v).to_bits(), "sigmoid lane {i}");
            assert_eq!(th[i].to_bits(), tanh_m(v).to_bits(), "tanh lane {i}");
        }
        // Same values pushed through at a different offset (drop the first
        // element) must give the same bits per value.
        let mut shifted = vals[1..].to_vec();
        unsafe { avx2::sigmoid_slice(&mut shifted) };
        for (i, &v) in shifted.iter().enumerate() {
            assert_eq!(v.to_bits(), sig[i + 1].to_bits(), "offset invariance {i}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_gemm_matches_mul_add_reference() {
        if !detect_avx2_fma() {
            return;
        }
        // Shapes crossing the 16- and 4-column vector widths and the KC
        // panel boundary.
        for (m, k, n) in [(1, 1, 1), (3, 5, 18), (2, 130, 21), (4, 7, 3)] {
            let a: Vec<f64> = (0..m * k).map(|i| (i as f64 * 0.37).sin()).collect();
            let b: Vec<f64> = (0..k * n).map(|i| (i as f64 * 0.61).cos()).collect();
            let mut out = vec![0.25; m * n];
            let mut want = out.clone();
            gemm_acc_fma(&a, m, k, &b, n, &mut out);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = want[i * n + j];
                    for kk in 0..k {
                        acc = a[i * k + kk].mul_add(b[kk * n + j], acc);
                    }
                    want[i * n + j] = acc;
                }
            }
            assert_eq!(out, want, "{m}x{k}·{k}x{n}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx512_kernels_bit_identical_to_avx2() {
        if !detect_avx512() {
            return;
        }
        // GEMM: both tiers are one-FMA-per-k-step ascending chains, so the
        // 512-bit kernel must reproduce the 256-bit kernel exactly. Shapes
        // cross the 16/8/4-lane tails, the 4-row microkernel boundary, the
        // KC panel boundary, and the m >= 64 B-packing threshold (with and
        // without a non-16-multiple column tail).
        for (m, k, n) in [
            (1, 1, 1),
            (5, 9, 37),
            (4, 130, 16),
            (7, 33, 19),
            (64, 10, 16),
            (70, 5, 37),
            (129, 130, 48),
        ] {
            let a: Vec<f64> = (0..m * k).map(|i| (i as f64 * 0.37).sin()).collect();
            let b: Vec<f64> = (0..k * n).map(|i| (i as f64 * 0.61).cos()).collect();
            let mut got = vec![0.25; m * n];
            let mut want = got.clone();
            gemm_acc_avx512(&a, m, k, &b, n, &mut got);
            gemm_acc_fma(&a, m, k, &b, n, &mut want);
            assert_eq!(got, want, "{m}x{k}·{k}x{n}");
        }
        // Transcendental lanes mirror the scalar `_m` forms (and therefore
        // the AVX2 lanes) bitwise, at every lane position.
        let vals: Vec<f64> = (0..29)
            .map(|i| (i as f64 - 14.0) * 1.3 + 0.017 * i as f64)
            .collect();
        let mut sig = vals.clone();
        let mut th = vals.clone();
        unsafe {
            avx512::sigmoid_slice(&mut sig);
            avx512::tanh_slice(&mut th);
        }
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(sig[i].to_bits(), sigmoid_m(v).to_bits(), "sigmoid lane {i}");
            assert_eq!(th[i].to_bits(), tanh_m(v).to_bits(), "tanh lane {i}");
        }
        // Fused LSTM step: identical to the AVX2 kernel per element.
        for h_dim in [1usize, 7, 8, 9, 16, 21] {
            let z: Vec<f64> = (0..4 * h_dim)
                .map(|i| (i as f64 * 0.7).sin() * 3.0)
                .collect();
            let c0: Vec<f64> = (0..h_dim).map(|i| (i as f64 * 0.3).cos()).collect();
            let mut c_512 = c0.clone();
            let mut h_512 = vec![0.0; h_dim];
            let mut c_256 = c0.clone();
            let mut h_256 = vec![0.0; h_dim];
            unsafe {
                avx512::lstm_step_row(&z, &mut c_512, &mut h_512, h_dim);
                avx2::lstm_step_row(&z, &mut c_256, &mut h_256, h_dim);
            }
            for j in 0..h_dim {
                assert_eq!(c_512[j].to_bits(), c_256[j].to_bits(), "{h_dim} c[{j}]");
                assert_eq!(h_512[j].to_bits(), h_256[j].to_bits(), "{h_dim} h[{j}]");
            }
        }
        // Softmax: same max-shift/exp/normalize; lane sums fold pairwise so
        // values agree to ulps (association differs from 4-lane AVX2).
        for n in [1usize, 2, 7, 8, 9, 16, 19] {
            let base: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).sin() * 4.0).collect();
            let mut got = base.clone();
            let mut want = base.clone();
            unsafe {
                avx512::softmax_row(&mut got);
                avx2::softmax_row(&mut want);
            }
            for i in 0..n {
                assert!(
                    (got[i] - want[i]).abs() <= 1e-14 * want[i].max(1e-300),
                    "n={n} lane {i}: {} vs {}",
                    got[i],
                    want[i]
                );
            }
        }
    }

    #[test]
    fn f32_gemm_backends_agree() {
        // Scalar f32 reference vs whatever vector tier is active, plus a
        // row-independence check: row r of a batched call must equal a
        // 1-row call on that row (the pooled-engine invariant).
        for (m, k, n) in [(1, 1, 1), (5, 9, 37), (6, 130, 33), (4, 16, 16)] {
            let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.37).sin()).collect();
            let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.61).cos()).collect();
            let mut got = vec![0.5f32; m * n];
            gemm_acc_f32(&a, m, k, &b, n, &mut got);
            let mut want = vec![0.5f32; m * n];
            gemm_acc_f32_scalar(&a, m, k, &b, n, &mut want);
            for i in 0..m * n {
                assert!(
                    (got[i] - want[i]).abs() <= 1e-4 * want[i].abs().max(1.0),
                    "{m}x{k}·{k}x{n} elt {i}: {} vs {}",
                    got[i],
                    want[i]
                );
            }
            for i in 0..m {
                let mut row = vec![0.5f32; n];
                gemm_acc_f32(&a[i * k..(i + 1) * k], 1, k, &b, n, &mut row);
                assert_eq!(
                    row.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    got[i * n..(i + 1) * n]
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<_>>(),
                    "{m}x{k}·{k}x{n} row {i} not independent"
                );
            }
        }
    }

    #[test]
    fn softmax_row_scalar_matches_definition() {
        let mut row = [1.0, 2.0, 3.0];
        softmax_row_scalar(&mut row);
        let s: f64 = row.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!(row[2] > row[1] && row[1] > row[0]);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_softmax_close_to_scalar() {
        if !detect_avx2_fma() {
            return;
        }
        for n in [1usize, 2, 3, 4, 5, 8, 11] {
            let base: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).sin() * 4.0).collect();
            let mut simd = base.clone();
            let mut scalar = base.clone();
            unsafe { avx2::softmax_row(&mut simd) };
            softmax_row_scalar(&mut scalar);
            let sum: f64 = simd.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "n={n} sum {sum}");
            for i in 0..n {
                assert!(
                    (simd[i] - scalar[i]).abs() <= 1e-12 * scalar[i].max(1e-300),
                    "n={n} lane {i}: {} vs {}",
                    simd[i],
                    scalar[i]
                );
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_lstm_step_close_to_scalar_and_tail_consistent() {
        if !detect_avx2_fma() {
            return;
        }
        for h_dim in [1usize, 3, 4, 5, 8, 13] {
            let z: Vec<f64> = (0..4 * h_dim)
                .map(|i| (i as f64 * 0.7).sin() * 3.0)
                .collect();
            let c0: Vec<f64> = (0..h_dim).map(|i| (i as f64 * 0.3).cos()).collect();
            let mut c_simd = c0.clone();
            let mut h_simd = vec![0.0; h_dim];
            unsafe { avx2::lstm_step_row(&z, &mut c_simd, &mut h_simd, h_dim) };
            let mut c_scalar = c0.clone();
            let mut h_scalar = vec![0.0; h_dim];
            lstm_step_row_scalar(&z, &mut c_scalar, &mut h_scalar, h_dim);
            for j in 0..h_dim {
                assert!(
                    (c_simd[j] - c_scalar[j]).abs() <= 1e-9,
                    "h_dim={h_dim} c[{j}]"
                );
                assert!(
                    (h_simd[j] - h_scalar[j]).abs() <= 1e-9,
                    "h_dim={h_dim} h[{j}]"
                );
            }
        }
    }

    #[test]
    fn dispatched_kernels_run_under_active_backend() {
        // Smoke: whatever backend() resolves to in this process, the
        // dispatched entry points must produce sane values.
        let mut s = vec![-2.0, -0.5, 0.0, 0.5, 2.0];
        sigmoid_slice(&mut s);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!((s[2] - 0.5).abs() < 1e-12);

        let mut t = vec![-1.0, 0.0, 1.0];
        tanh_slice(&mut t);
        assert!((t[1]).abs() < 1e-15 && t[0] < 0.0 && t[2] > 0.0);

        let mut row = vec![0.3, 1.1];
        softmax_row(&mut row);
        assert!((row[0] + row[1] - 1.0).abs() < 1e-12);

        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut out = [0.0; 4];
        gemm_acc(&a, 2, 2, &b, 2, &mut out);
        assert_eq!(out, [19.0, 22.0, 43.0, 50.0]);
    }
}
