//! Runtime-dispatched SIMD microkernels (AVX2+FMA) with scalar fallbacks.
//!
//! Every hot inner kernel — the blocked GEMM behind [`Matrix::matmul`],
//! the sigmoid/tanh/softmax element-wise passes, and the fused LSTM state
//! update — exists in two implementations:
//!
//! - a **scalar** kernel, identical to the original portable code (libm
//!   transcendentals, unfused multiply-add), and
//! - an **AVX2+FMA** kernel selected at runtime via
//!   [`is_x86_feature_detected!`].
//!
//! The active backend is resolved once per process (see [`backend`]) from
//! the `CPSMON_SIMD` environment variable (`CPSMON_SIMD=0` forces the
//! scalar fallback) and the CPU's feature flags.
//!
//! # Determinism contract
//!
//! Within a backend, every kernel computes each output element with a
//! *fixed* operation sequence that depends only on that element's
//! mathematical inputs — never on its position in the buffer, the batch
//! size, or the thread count:
//!
//! - GEMM accumulates in strictly ascending `k` order per element; the
//!   AVX2 variant's scalar column tail uses [`f64::mul_add`], which rounds
//!   identically to the vector `vfmadd` lanes, so an output column produces
//!   the same bits whether it lands in a vector lane or the tail.
//! - The vector transcendentals (`exp`/`sigmoid`/`tanh`) have scalar
//!   mirrors (`exp_m`/`sigmoid_m`/`tanh_m`) built from the *same* operation
//!   sequence (fused multiply-adds included), used for slice tails; a value
//!   therefore maps to the same bits at any offset and slice length.
//!
//! Consequently the existing guarantees — streaming == batch inference,
//! bit-identical results for any `CPSMON_THREADS` — hold under both
//! backends. Results *across* backends differ in the last ulps (FMA fuses
//! rounding steps; the polynomial `exp` is not libm's), which is why the
//! backend is a process-wide constant rather than a per-call choice.
//!
//! [`Matrix::matmul`]: crate::Matrix::matmul

use std::sync::OnceLock;

/// Which kernel family [`backend`] resolved to for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar kernels (libm transcendentals, unfused mul+add).
    Scalar,
    /// AVX2 + FMA vector kernels with bit-mirroring scalar tails.
    Avx2Fma,
}

impl Backend {
    /// Short human-readable name, used in logs and bench metadata.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2Fma => "avx2+fma",
        }
    }
}

/// Pure backend resolution from the `CPSMON_SIMD` setting and the detected
/// CPU capability; factored out of [`backend`] so the policy is unit-testable
/// without mutating process environment.
fn resolve(simd_env: Option<&str>, has_avx2_fma: bool) -> Backend {
    match simd_env {
        Some(v) if v.trim() == "0" || v.eq_ignore_ascii_case("off") => Backend::Scalar,
        _ if has_avx2_fma => Backend::Avx2Fma,
        _ => Backend::Scalar,
    }
}

fn detect_avx2_fma() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The process-wide kernel backend: `CPSMON_SIMD=0` (or `off`) forces
/// [`Backend::Scalar`]; otherwise AVX2+FMA is used when the CPU supports
/// it. Resolved once on first use and cached — changing the environment
/// variable afterwards has no effect, which keeps every computation in a
/// process on one numerical profile.
pub fn backend() -> Backend {
    static BACKEND: OnceLock<Backend> = OnceLock::new();
    *BACKEND.get_or_init(|| {
        resolve(
            std::env::var("CPSMON_SIMD").ok().as_deref(),
            detect_avx2_fma(),
        )
    })
}

/// Whether the active backend fuses multiply-adds (AVX2+FMA). Tests use
/// this to pick the matching bit-identity reference.
pub fn fma_active() -> bool {
    backend() == Backend::Avx2Fma
}

/// `k`-panel height of the blocked GEMM: a `KC × n` slab of `b` (up to
/// ~256 KiB at `n = 256`) is reused across all `m` rows before the kernel
/// moves to the next panel, keeping it resident in L2.
pub(crate) const GEMM_KC: usize = 128;

// ---------------------------------------------------------------------------
// GEMM: out[m×n] += a[m×k] · b[k×n]
// ---------------------------------------------------------------------------

fn check_gemm_shapes(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, out: &[f64]) {
    assert_eq!(a.len(), m * k, "gemm lhs buffer length mismatch");
    assert_eq!(b.len(), k * n, "gemm rhs buffer length mismatch");
    assert_eq!(out.len(), m * n, "gemm output buffer length mismatch");
}

/// Dispatched `out += a · b` (row-major, `a` is `m×k`, `b` is `k×n`).
///
/// Per output element the multiply-adds are applied in strictly ascending
/// `k` order under both backends; the scalar backend uses unfused
/// `acc += a*b`, the AVX2 backend fused `acc = fma(a, b, acc)`.
///
/// # Panics
///
/// Panics if any buffer length disagrees with the stated shape.
pub fn gemm_acc(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
    check_gemm_shapes(a, m, k, b, n, out);
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2Fma => unsafe { gemm_acc_avx2(a, m, k, b, n, out) },
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2Fma => gemm_acc_scalar(a, m, k, b, n, out),
        Backend::Scalar => gemm_acc_scalar(a, m, k, b, n, out),
    }
}

/// The portable blocked `ikj` GEMM with a 4-wide unroll over `k` —
/// bit-identical to the naive triple loop (sequential `+=` per element)
/// over whatever `out` was seeded with.
pub fn gemm_acc_scalar(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
    check_gemm_shapes(a, m, k, b, n, out);
    for k0 in (0..k).step_by(GEMM_KC) {
        let k1 = (k0 + GEMM_KC).min(k);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            let mut kk = k0;
            while kk + 4 <= k1 {
                let (a0, a1, a2, a3) = (a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]);
                let b0 = &b[kk * n..(kk + 1) * n];
                let b1 = &b[(kk + 1) * n..(kk + 2) * n];
                let b2 = &b[(kk + 2) * n..(kk + 3) * n];
                let b3 = &b[(kk + 3) * n..(kk + 4) * n];
                for j in 0..n {
                    // Sequential adds: ascending-k order, one load/store of
                    // the output per four multiply-adds.
                    let mut acc = out_row[j];
                    acc += a0 * b0[j];
                    acc += a1 * b1[j];
                    acc += a2 * b2[j];
                    acc += a3 * b3[j];
                    out_row[j] = acc;
                }
                kk += 4;
            }
            while kk < k1 {
                let a_val = a_row[kk];
                let b_row = &b[kk * n..(kk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_val * bv;
                }
                kk += 1;
            }
        }
    }
}

/// AVX2+FMA GEMM through the safe entry used by tests and benches.
///
/// # Panics
///
/// Panics if the CPU does not support AVX2+FMA or a buffer length
/// disagrees with the stated shape.
#[cfg(target_arch = "x86_64")]
pub fn gemm_acc_fma(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
    assert!(detect_avx2_fma(), "AVX2+FMA not supported on this CPU");
    check_gemm_shapes(a, m, k, b, n, out);
    unsafe { gemm_acc_avx2(a, m, k, b, n, out) }
}

/// Vectorized GEMM with a 4-row × 8-column register microkernel: four `a`
/// rows share every load of a `b` panel line (¼ the L2 traffic of a
/// row-at-a-time loop), and each of the eight accumulator chains takes one
/// fused multiply-add per `k` step. Row remainders fall back to a
/// single-row vector loop; column tails mirror the lanes with
/// [`f64::mul_add`]. Per element the FMA chain is strictly `k`-ascending
/// regardless of which micro-tile computed it, so results are independent
/// of blocking, batch slicing, and lane/tail position.
///
/// # Safety
///
/// Requires AVX2 and FMA; buffer lengths must match the stated shapes
/// (checked by the safe wrappers).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn gemm_acc_avx2(a: &[f64], m: usize, k: usize, b: &[f64], n: usize, out: &mut [f64]) {
    use std::arch::x86_64::*;
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let op = out.as_mut_ptr();
    for k0 in (0..k).step_by(GEMM_KC) {
        let k1 = (k0 + GEMM_KC).min(k);
        let mut i = 0;
        while i + 4 <= m {
            let a0 = ap.add(i * k);
            let a1 = ap.add((i + 1) * k);
            let a2 = ap.add((i + 2) * k);
            let a3 = ap.add((i + 3) * k);
            let o0 = op.add(i * n);
            let o1 = op.add((i + 1) * n);
            let o2 = op.add((i + 2) * n);
            let o3 = op.add((i + 3) * n);
            let mut j = 0;
            while j + 8 <= n {
                let mut c00 = _mm256_loadu_pd(o0.add(j));
                let mut c01 = _mm256_loadu_pd(o0.add(j + 4));
                let mut c10 = _mm256_loadu_pd(o1.add(j));
                let mut c11 = _mm256_loadu_pd(o1.add(j + 4));
                let mut c20 = _mm256_loadu_pd(o2.add(j));
                let mut c21 = _mm256_loadu_pd(o2.add(j + 4));
                let mut c30 = _mm256_loadu_pd(o3.add(j));
                let mut c31 = _mm256_loadu_pd(o3.add(j + 4));
                for kk in k0..k1 {
                    let b0 = _mm256_loadu_pd(bp.add(kk * n + j));
                    let b1 = _mm256_loadu_pd(bp.add(kk * n + j + 4));
                    let av = _mm256_set1_pd(*a0.add(kk));
                    c00 = _mm256_fmadd_pd(av, b0, c00);
                    c01 = _mm256_fmadd_pd(av, b1, c01);
                    let av = _mm256_set1_pd(*a1.add(kk));
                    c10 = _mm256_fmadd_pd(av, b0, c10);
                    c11 = _mm256_fmadd_pd(av, b1, c11);
                    let av = _mm256_set1_pd(*a2.add(kk));
                    c20 = _mm256_fmadd_pd(av, b0, c20);
                    c21 = _mm256_fmadd_pd(av, b1, c21);
                    let av = _mm256_set1_pd(*a3.add(kk));
                    c30 = _mm256_fmadd_pd(av, b0, c30);
                    c31 = _mm256_fmadd_pd(av, b1, c31);
                }
                _mm256_storeu_pd(o0.add(j), c00);
                _mm256_storeu_pd(o0.add(j + 4), c01);
                _mm256_storeu_pd(o1.add(j), c10);
                _mm256_storeu_pd(o1.add(j + 4), c11);
                _mm256_storeu_pd(o2.add(j), c20);
                _mm256_storeu_pd(o2.add(j + 4), c21);
                _mm256_storeu_pd(o3.add(j), c30);
                _mm256_storeu_pd(o3.add(j + 4), c31);
                j += 8;
            }
            while j + 4 <= n {
                let mut c0 = _mm256_loadu_pd(o0.add(j));
                let mut c1 = _mm256_loadu_pd(o1.add(j));
                let mut c2 = _mm256_loadu_pd(o2.add(j));
                let mut c3 = _mm256_loadu_pd(o3.add(j));
                for kk in k0..k1 {
                    let b0 = _mm256_loadu_pd(bp.add(kk * n + j));
                    c0 = _mm256_fmadd_pd(_mm256_set1_pd(*a0.add(kk)), b0, c0);
                    c1 = _mm256_fmadd_pd(_mm256_set1_pd(*a1.add(kk)), b0, c1);
                    c2 = _mm256_fmadd_pd(_mm256_set1_pd(*a2.add(kk)), b0, c2);
                    c3 = _mm256_fmadd_pd(_mm256_set1_pd(*a3.add(kk)), b0, c3);
                }
                _mm256_storeu_pd(o0.add(j), c0);
                _mm256_storeu_pd(o1.add(j), c1);
                _mm256_storeu_pd(o2.add(j), c2);
                _mm256_storeu_pd(o3.add(j), c3);
                j += 4;
            }
            while j < n {
                // Scalar tail: `mul_add` rounds exactly like the vector
                // `vfmadd` lanes, so column position cannot change bits.
                for row in 0..4 {
                    let ar = ap.add((i + row) * k);
                    let or = op.add((i + row) * n + j);
                    let mut acc = *or;
                    for kk in k0..k1 {
                        acc = (*ar.add(kk)).mul_add(*bp.add(kk * n + j), acc);
                    }
                    *or = acc;
                }
                j += 1;
            }
            i += 4;
        }
        while i < m {
            // Row remainder in ikj order: broadcast `a` elements and axpy
            // across the contiguous `b` rows, keeping the out row hot in L1 —
            // the single-row (streaming-session) shape would otherwise
            // stream the whole `b` panel with stride-`n` loads. Per element
            // this performs the same strictly `k`-ascending FMA chain as the
            // register micro-kernel, so the bits cannot differ.
            let a_row = &a[i * k..(i + 1) * k];
            let or = op.add(i * n);
            let mut kk = k0;
            while kk + 4 <= k1 {
                // Four k-steps per pass over the out row: one load/store of
                // the accumulator amortizes four FMAs (the single-row
                // streaming-session shape is otherwise store-bound at three
                // memory ops per FMA). Per element the chain is still four
                // ascending-k FMAs, exactly as if applied in four passes.
                let av0 = _mm256_set1_pd(a_row[kk]);
                let av1 = _mm256_set1_pd(a_row[kk + 1]);
                let av2 = _mm256_set1_pd(a_row[kk + 2]);
                let av3 = _mm256_set1_pd(a_row[kk + 3]);
                let b0 = bp.add(kk * n);
                let b1 = bp.add((kk + 1) * n);
                let b2 = bp.add((kk + 2) * n);
                let b3 = bp.add((kk + 3) * n);
                let mut j = 0;
                while j + 8 <= n {
                    // Two independent accumulators per pass hide the FMA
                    // latency of the four-deep chains.
                    let mut c0 = _mm256_loadu_pd(or.add(j));
                    let mut c1 = _mm256_loadu_pd(or.add(j + 4));
                    c0 = _mm256_fmadd_pd(av0, _mm256_loadu_pd(b0.add(j)), c0);
                    c1 = _mm256_fmadd_pd(av0, _mm256_loadu_pd(b0.add(j + 4)), c1);
                    c0 = _mm256_fmadd_pd(av1, _mm256_loadu_pd(b1.add(j)), c0);
                    c1 = _mm256_fmadd_pd(av1, _mm256_loadu_pd(b1.add(j + 4)), c1);
                    c0 = _mm256_fmadd_pd(av2, _mm256_loadu_pd(b2.add(j)), c0);
                    c1 = _mm256_fmadd_pd(av2, _mm256_loadu_pd(b2.add(j + 4)), c1);
                    c0 = _mm256_fmadd_pd(av3, _mm256_loadu_pd(b3.add(j)), c0);
                    c1 = _mm256_fmadd_pd(av3, _mm256_loadu_pd(b3.add(j + 4)), c1);
                    _mm256_storeu_pd(or.add(j), c0);
                    _mm256_storeu_pd(or.add(j + 4), c1);
                    j += 8;
                }
                while j + 4 <= n {
                    let mut c = _mm256_loadu_pd(or.add(j));
                    c = _mm256_fmadd_pd(av0, _mm256_loadu_pd(b0.add(j)), c);
                    c = _mm256_fmadd_pd(av1, _mm256_loadu_pd(b1.add(j)), c);
                    c = _mm256_fmadd_pd(av2, _mm256_loadu_pd(b2.add(j)), c);
                    c = _mm256_fmadd_pd(av3, _mm256_loadu_pd(b3.add(j)), c);
                    _mm256_storeu_pd(or.add(j), c);
                    j += 4;
                }
                while j < n {
                    let mut acc = *or.add(j);
                    acc = a_row[kk].mul_add(*b0.add(j), acc);
                    acc = a_row[kk + 1].mul_add(*b1.add(j), acc);
                    acc = a_row[kk + 2].mul_add(*b2.add(j), acc);
                    acc = a_row[kk + 3].mul_add(*b3.add(j), acc);
                    *or.add(j) = acc;
                    j += 1;
                }
                kk += 4;
            }
            while kk < k1 {
                let av = _mm256_set1_pd(a_row[kk]);
                let br = bp.add(kk * n);
                let mut j = 0;
                while j + 4 <= n {
                    let c0 = _mm256_loadu_pd(or.add(j));
                    let c0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(br.add(j)), c0);
                    _mm256_storeu_pd(or.add(j), c0);
                    j += 4;
                }
                while j < n {
                    *or.add(j) = a_row[kk].mul_add(*br.add(j), *or.add(j));
                    j += 1;
                }
                kk += 1;
            }
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Vector transcendentals and their bit-mirroring scalar forms
// ---------------------------------------------------------------------------

// Cephes-style expression of exp(x): range reduction x = n·ln2 + r followed
// by a rational approximation of exp(r) on |r| ≤ ln2/2. The same constants
// and operation order are used by the scalar mirror (`exp_m`) and the AVX2
// lanes (`exp_pd`), so both produce identical bits for identical inputs.
const EXP_LOG2E: f64 = std::f64::consts::LOG2_E;
const EXP_C1: f64 = 6.931_457_519_531_25e-1;
const EXP_C2: f64 = 1.428_606_820_309_417_2e-6;
const EXP_P0: f64 = 1.261_771_930_748_105_9e-4;
const EXP_P1: f64 = 3.029_944_077_074_419_6e-2;
const EXP_P2: f64 = 9.999_999_999_999_999e-1;
const EXP_Q0: f64 = 3.001_985_051_386_644_6e-6;
const EXP_Q1: f64 = 2.524_483_403_496_841e-3;
const EXP_Q2: f64 = 2.272_655_482_081_550_3e-1;
const EXP_Q3: f64 = 2.000_000_000_000_000_2;
/// Clamp bounds keeping `2^n` representable as a plain exponent-field
/// bit pattern (no overflow/denormal scaling needed). Saturates at
/// `exp(±708)`; all in-repo callers (softmax, sigmoid, tanh) pass
/// non-positive arguments, where the low clamp only affects results that
/// are ≈ 1e-308 anyway.
const EXP_CLAMP: f64 = 708.0;

/// Scalar mirror of the AVX2 `exp` lanes: same polynomial, same fused
/// multiply-add sequence ([`f64::mul_add`] rounds like `vfmadd`), so for
/// any input it returns exactly the bits a vector lane would. Used for
/// slice tails under the AVX2 backend. Accuracy vs libm `exp` is a few
/// ulp over the clamped range.
pub fn exp_m(x: f64) -> f64 {
    let x = x.clamp(-EXP_CLAMP, EXP_CLAMP);
    let px = (EXP_LOG2E * x + 0.5).floor();
    let n = px as i64;
    // x -= px*C1; x -= px*C2 — fused, matching _mm256_fnmadd_pd.
    let x = (-px).mul_add(EXP_C1, x);
    let x = (-px).mul_add(EXP_C2, x);
    let xx = x * x;
    let p = x * EXP_P0.mul_add(xx, EXP_P1).mul_add(xx, EXP_P2);
    let q = EXP_Q0
        .mul_add(xx, EXP_Q1)
        .mul_add(xx, EXP_Q2)
        .mul_add(xx, EXP_Q3);
    let r = p / (q - p);
    let r = 2.0f64.mul_add(r, 1.0);
    r * f64::from_bits(((n + 1023) as u64) << 52)
}

/// Scalar mirror of the AVX2 sigmoid lanes: `e/(1+e)` with
/// `e = exp_m(-|v|)`, numerator 1 for `v ≥ 0`.
pub fn sigmoid_m(v: f64) -> f64 {
    let e = exp_m(-v.abs());
    let num = if v >= 0.0 { 1.0 } else { e };
    num / (1.0 + e)
}

/// Threshold below which `tanh(v) = v` to double precision (error is
/// `v³/3`, relatively `v²/3 ≈ 3e-17` at the cutover), avoiding the
/// `1 - e` cancellation of the exponential form near zero.
const TANH_TINY: f64 = 1e-8;

/// Scalar mirror of the AVX2 tanh lanes: `(1-e)/(1+e)` with
/// `e = exp_m(-2|v|)`, sign restored by copysign, identity below
/// `TANH_TINY`.
pub fn tanh_m(v: f64) -> f64 {
    let a = v.abs();
    if a < TANH_TINY {
        return v;
    }
    let e = exp_m(-2.0 * a);
    let t = (1.0 - e) / (1.0 + e);
    t.copysign(v)
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! The vector lanes behind the AVX2 backend. Each `_pd` helper is the
    //! four-lane transliteration of its `_m` scalar mirror in the parent
    //! module — same constants, same operation order — so lane and tail
    //! results are bit-identical per element.
    #![allow(unsafe_op_in_unsafe_fn)]

    use super::*;
    use std::arch::x86_64::*;

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn exp_pd(x: __m256d) -> __m256d {
        let clamp = _mm256_set1_pd(EXP_CLAMP);
        let x = _mm256_min_pd(
            _mm256_max_pd(x, _mm256_sub_pd(_mm256_setzero_pd(), clamp)),
            clamp,
        );
        let px = _mm256_floor_pd(_mm256_add_pd(
            _mm256_mul_pd(_mm256_set1_pd(EXP_LOG2E), x),
            _mm256_set1_pd(0.5),
        ));
        // px holds small exact integers: cvtpd_epi32 is exact; widen to i64
        // and build 2^n directly in the exponent field.
        let n32 = _mm256_cvtpd_epi32(px);
        let n64 = _mm256_cvtepi32_epi64(n32);
        let pow2 = _mm256_castsi256_pd(_mm256_slli_epi64::<52>(_mm256_add_epi64(
            n64,
            _mm256_set1_epi64x(1023),
        )));
        let x = _mm256_fnmadd_pd(px, _mm256_set1_pd(EXP_C1), x);
        let x = _mm256_fnmadd_pd(px, _mm256_set1_pd(EXP_C2), x);
        let xx = _mm256_mul_pd(x, x);
        let p = _mm256_fmadd_pd(_mm256_set1_pd(EXP_P0), xx, _mm256_set1_pd(EXP_P1));
        let p = _mm256_fmadd_pd(p, xx, _mm256_set1_pd(EXP_P2));
        let p = _mm256_mul_pd(x, p);
        let q = _mm256_fmadd_pd(_mm256_set1_pd(EXP_Q0), xx, _mm256_set1_pd(EXP_Q1));
        let q = _mm256_fmadd_pd(q, xx, _mm256_set1_pd(EXP_Q2));
        let q = _mm256_fmadd_pd(q, xx, _mm256_set1_pd(EXP_Q3));
        let r = _mm256_div_pd(p, _mm256_sub_pd(q, p));
        let r = _mm256_fmadd_pd(_mm256_set1_pd(2.0), r, _mm256_set1_pd(1.0));
        _mm256_mul_pd(r, pow2)
    }

    const SIGN_MASK: i64 = i64::MIN; // 0x8000_0000_0000_0000

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn sigmoid_pd(v: __m256d) -> __m256d {
        let sign = _mm256_castsi256_pd(_mm256_set1_epi64x(SIGN_MASK));
        let abs = _mm256_andnot_pd(sign, v);
        let e = exp_pd(_mm256_sub_pd(_mm256_setzero_pd(), abs));
        let one = _mm256_set1_pd(1.0);
        // v ≥ 0 → numerator 1, else e (matches the stable scalar form).
        let nonneg = _mm256_cmp_pd::<_CMP_GE_OQ>(v, _mm256_setzero_pd());
        let num = _mm256_blendv_pd(e, one, nonneg);
        _mm256_div_pd(num, _mm256_add_pd(one, e))
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn tanh_pd(v: __m256d) -> __m256d {
        let sign_bit = _mm256_castsi256_pd(_mm256_set1_epi64x(SIGN_MASK));
        let abs = _mm256_andnot_pd(sign_bit, v);
        let e = exp_pd(_mm256_mul_pd(_mm256_set1_pd(-2.0), abs));
        let one = _mm256_set1_pd(1.0);
        let t = _mm256_div_pd(_mm256_sub_pd(one, e), _mm256_add_pd(one, e));
        // copysign(t, v): take |t| (t ≥ 0 here) and v's sign bit.
        let signed = _mm256_or_pd(t, _mm256_and_pd(sign_bit, v));
        // |v| < TANH_TINY → identity, dodging the 1-e cancellation.
        let tiny = _mm256_cmp_pd::<_CMP_LT_OQ>(abs, _mm256_set1_pd(TANH_TINY));
        _mm256_blendv_pd(signed, v, tiny)
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn sigmoid_slice(xs: &mut [f64]) {
        let p = xs.as_mut_ptr();
        let mut i = 0;
        while i + 4 <= xs.len() {
            _mm256_storeu_pd(p.add(i), sigmoid_pd(_mm256_loadu_pd(p.add(i))));
            i += 4;
        }
        for v in &mut xs[i..] {
            *v = sigmoid_m(*v);
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn tanh_slice(xs: &mut [f64]) {
        let p = xs.as_mut_ptr();
        let mut i = 0;
        while i + 4 <= xs.len() {
            _mm256_storeu_pd(p.add(i), tanh_pd(_mm256_loadu_pd(p.add(i))));
            i += 4;
        }
        for v in &mut xs[i..] {
            *v = tanh_m(*v);
        }
    }

    /// Softmax of one row: vector max / exp / sum with a fixed
    /// lane-reduction order (pairwise within the final register, then the
    /// tail elements in ascending order), then the division pass.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn softmax_row(row: &mut [f64]) {
        let n = row.len();
        let p = row.as_mut_ptr();
        // Row maximum: vector fold then ordered tail.
        let mut i = 0;
        let mut max = f64::NEG_INFINITY;
        if n >= 4 {
            let mut mv = _mm256_loadu_pd(p);
            i = 4;
            while i + 4 <= n {
                mv = _mm256_max_pd(mv, _mm256_loadu_pd(p.add(i)));
                i += 4;
            }
            let mut lanes = [0.0f64; 4];
            _mm256_storeu_pd(lanes.as_mut_ptr(), mv);
            max = lanes[0].max(lanes[1]).max(lanes[2]).max(lanes[3]);
        }
        for &v in &row[i..] {
            max = max.max(v);
        }
        // Exponentiate shifted values and accumulate the sum: lane partial
        // sums folded pairwise, tail added in ascending order afterwards —
        // a fixed order for a given row, independent of anything else.
        let mv = _mm256_set1_pd(max);
        let mut i = 0;
        let mut sum;
        if n >= 4 {
            let mut sv = _mm256_setzero_pd();
            while i + 4 <= n {
                let e = exp_pd(_mm256_sub_pd(_mm256_loadu_pd(p.add(i)), mv));
                _mm256_storeu_pd(p.add(i), e);
                sv = _mm256_add_pd(sv, e);
                i += 4;
            }
            let mut lanes = [0.0f64; 4];
            _mm256_storeu_pd(lanes.as_mut_ptr(), sv);
            sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        } else {
            sum = 0.0;
        }
        for v in &mut row[i..] {
            *v = exp_m(*v - max);
            sum += *v;
        }
        let sv = _mm256_set1_pd(sum);
        let mut i = 0;
        while i + 4 <= n {
            _mm256_storeu_pd(p.add(i), _mm256_div_pd(_mm256_loadu_pd(p.add(i)), sv));
            i += 4;
        }
        for v in &mut row[i..] {
            *v /= sum;
        }
    }

    /// Fused LSTM state update for one row — the vector form of
    /// [`lstm_step_row_scalar`](super::lstm_step_row_scalar) under the
    /// AVX2 transcendentals. The gate algebra deliberately uses *unfused*
    /// mul/add so it matches the cached-forward path, which computes
    /// `f⊙c + i⊙g` through separate element-wise passes.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn lstm_step_row(z: &[f64], c: &mut [f64], h: &mut [f64], h_dim: usize) {
        let zp = z.as_ptr();
        let cp = c.as_mut_ptr();
        let hp = h.as_mut_ptr();
        let mut j = 0;
        while j + 4 <= h_dim {
            let i_g = sigmoid_pd(_mm256_loadu_pd(zp.add(j)));
            let f_g = sigmoid_pd(_mm256_loadu_pd(zp.add(h_dim + j)));
            let g_g = tanh_pd(_mm256_loadu_pd(zp.add(2 * h_dim + j)));
            let o_g = sigmoid_pd(_mm256_loadu_pd(zp.add(3 * h_dim + j)));
            let c_new = _mm256_add_pd(
                _mm256_mul_pd(f_g, _mm256_loadu_pd(cp.add(j))),
                _mm256_mul_pd(i_g, g_g),
            );
            _mm256_storeu_pd(cp.add(j), c_new);
            _mm256_storeu_pd(hp.add(j), _mm256_mul_pd(o_g, tanh_pd(c_new)));
            j += 4;
        }
        while j < h_dim {
            let i_g = sigmoid_m(z[j]);
            let f_g = sigmoid_m(z[h_dim + j]);
            let g_g = tanh_m(z[2 * h_dim + j]);
            let o_g = sigmoid_m(z[3 * h_dim + j]);
            let c_new = f_g * c[j] + i_g * g_g;
            c[j] = c_new;
            h[j] = o_g * tanh_m(c_new);
            j += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatched element-wise kernels
// ---------------------------------------------------------------------------

/// In-place logistic sigmoid over a slice, dispatched by [`backend`]. The
/// scalar backend is the numerically-stable libm form
/// ([`sigmoid_scalar`](crate::activation::sigmoid_scalar)).
pub fn sigmoid_slice(xs: &mut [f64]) {
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2Fma => unsafe { avx2::sigmoid_slice(xs) },
        _ => {
            for v in xs {
                *v = crate::activation::sigmoid_scalar(*v);
            }
        }
    }
}

/// In-place hyperbolic tangent over a slice, dispatched by [`backend`].
/// The scalar backend is libm [`f64::tanh`].
pub fn tanh_slice(xs: &mut [f64]) {
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2Fma => unsafe { avx2::tanh_slice(xs) },
        _ => {
            for v in xs {
                *v = v.tanh();
            }
        }
    }
}

/// In-place softmax of one row (max-subtraction form), dispatched by
/// [`backend`]. Operates on the row slice only, so a row maps to the same
/// result in a 1-row and an n-row batch.
pub fn softmax_row(row: &mut [f64]) {
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2Fma => unsafe { avx2::softmax_row(row) },
        _ => softmax_row_scalar(row),
    }
}

/// The portable softmax row kernel (libm `exp`, strictly ascending sum).
pub fn softmax_row_scalar(row: &mut [f64]) {
    let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in row.iter_mut() {
        *v /= sum;
    }
}

/// Fused LSTM state update for one row: given the pre-activation row `z`
/// (`4·h_dim` wide, gate order `i|f|g|o`), updates `c ← σ(f)⊙c + σ(i)⊙tanh(g)`
/// and `h ← σ(o)⊙tanh(c)` in place. Dispatched by [`backend`]; both
/// implementations use the same per-element transcendentals as
/// [`sigmoid_slice`]/[`tanh_slice`], so the fused path stays bit-identical
/// to the unfused matrix-at-a-time path under either backend.
///
/// # Panics
///
/// Panics if the slice lengths disagree with `h_dim`.
pub fn lstm_step_row(z: &[f64], c: &mut [f64], h: &mut [f64], h_dim: usize) {
    assert_eq!(z.len(), 4 * h_dim, "gate row width mismatch");
    assert_eq!(c.len(), h_dim, "cell row width mismatch");
    assert_eq!(h.len(), h_dim, "hidden row width mismatch");
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2Fma => unsafe { avx2::lstm_step_row(z, c, h, h_dim) },
        _ => lstm_step_row_scalar(z, c, h, h_dim),
    }
}

/// The portable LSTM state update (libm transcendentals) — the original
/// fused step loop.
pub fn lstm_step_row_scalar(z: &[f64], c: &mut [f64], h: &mut [f64], h_dim: usize) {
    use crate::activation::sigmoid_scalar;
    for j in 0..h_dim {
        let i = sigmoid_scalar(z[j]);
        let f = sigmoid_scalar(z[h_dim + j]);
        let g = z[2 * h_dim + j].tanh();
        let o = sigmoid_scalar(z[3 * h_dim + j]);
        let c_new = f * c[j] + i * g;
        c[j] = c_new;
        h[j] = o * c_new.tanh();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_policy() {
        assert_eq!(resolve(None, true), Backend::Avx2Fma);
        assert_eq!(resolve(None, false), Backend::Scalar);
        assert_eq!(resolve(Some("0"), true), Backend::Scalar);
        assert_eq!(resolve(Some("off"), true), Backend::Scalar);
        assert_eq!(resolve(Some(" 0 "), true), Backend::Scalar);
        assert_eq!(resolve(Some("1"), true), Backend::Avx2Fma);
        assert_eq!(resolve(Some("1"), false), Backend::Scalar);
        assert_eq!(Backend::Scalar.label(), "scalar");
        assert_eq!(Backend::Avx2Fma.label(), "avx2+fma");
    }

    #[test]
    fn exp_mirror_tracks_libm() {
        // A few ulp of libm over the range our callers use (args ≤ 0).
        let mut x = -700.0;
        while x <= 0.0 {
            let got = exp_m(x);
            let want = x.exp();
            assert!(
                (got - want).abs() <= 1e-13 * want.abs(),
                "exp_m({x}) = {got} vs libm {want}"
            );
            x += 0.37;
        }
        assert_eq!(exp_m(0.0), 1.0);
        // Saturation below the clamp, still positive.
        assert!(exp_m(-1000.0) > 0.0);
        assert!(exp_m(-1000.0) < 1e-300);
    }

    #[test]
    fn sigmoid_tanh_mirrors_track_libm() {
        let mut v = -30.0;
        while v <= 30.0 {
            let s = sigmoid_m(v);
            let s_ref = crate::activation::sigmoid_scalar(v);
            assert!((s - s_ref).abs() <= 1e-12, "sigmoid_m({v})");
            let t = tanh_m(v);
            let t_ref = v.tanh();
            assert!((t - t_ref).abs() <= 1e-12, "tanh_m({v})");
            v += 0.173;
        }
        assert_eq!(sigmoid_m(0.0), 0.5);
        assert_eq!(tanh_m(0.0), 0.0);
        assert_eq!(tanh_m(-0.0).to_bits(), (-0.0f64).to_bits());
        // Tiny arguments take the identity branch exactly.
        assert_eq!(tanh_m(1e-9), 1e-9);
        assert_eq!(tanh_m(-1e-9), -1e-9);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_lanes_mirror_scalar_tails_bitwise() {
        if !detect_avx2_fma() {
            return;
        }
        // Values at every lane position and an odd tail: lane/tail identity
        // means results are independent of offset and slice length.
        let vals: Vec<f64> = (0..23)
            .map(|i| (i as f64 - 11.0) * 1.7 + 0.013 * i as f64)
            .collect();
        let mut sig = vals.clone();
        let mut th = vals.clone();
        unsafe {
            avx2::sigmoid_slice(&mut sig);
            avx2::tanh_slice(&mut th);
        }
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(sig[i].to_bits(), sigmoid_m(v).to_bits(), "sigmoid lane {i}");
            assert_eq!(th[i].to_bits(), tanh_m(v).to_bits(), "tanh lane {i}");
        }
        // Same values pushed through at a different offset (drop the first
        // element) must give the same bits per value.
        let mut shifted = vals[1..].to_vec();
        unsafe { avx2::sigmoid_slice(&mut shifted) };
        for (i, &v) in shifted.iter().enumerate() {
            assert_eq!(v.to_bits(), sig[i + 1].to_bits(), "offset invariance {i}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_gemm_matches_mul_add_reference() {
        if !detect_avx2_fma() {
            return;
        }
        // Shapes crossing the 16- and 4-column vector widths and the KC
        // panel boundary.
        for (m, k, n) in [(1, 1, 1), (3, 5, 18), (2, 130, 21), (4, 7, 3)] {
            let a: Vec<f64> = (0..m * k).map(|i| (i as f64 * 0.37).sin()).collect();
            let b: Vec<f64> = (0..k * n).map(|i| (i as f64 * 0.61).cos()).collect();
            let mut out = vec![0.25; m * n];
            let mut want = out.clone();
            gemm_acc_fma(&a, m, k, &b, n, &mut out);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = want[i * n + j];
                    for kk in 0..k {
                        acc = a[i * k + kk].mul_add(b[kk * n + j], acc);
                    }
                    want[i * n + j] = acc;
                }
            }
            assert_eq!(out, want, "{m}x{k}·{k}x{n}");
        }
    }

    #[test]
    fn softmax_row_scalar_matches_definition() {
        let mut row = [1.0, 2.0, 3.0];
        softmax_row_scalar(&mut row);
        let s: f64 = row.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!(row[2] > row[1] && row[1] > row[0]);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_softmax_close_to_scalar() {
        if !detect_avx2_fma() {
            return;
        }
        for n in [1usize, 2, 3, 4, 5, 8, 11] {
            let base: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).sin() * 4.0).collect();
            let mut simd = base.clone();
            let mut scalar = base.clone();
            unsafe { avx2::softmax_row(&mut simd) };
            softmax_row_scalar(&mut scalar);
            let sum: f64 = simd.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "n={n} sum {sum}");
            for i in 0..n {
                assert!(
                    (simd[i] - scalar[i]).abs() <= 1e-12 * scalar[i].max(1e-300),
                    "n={n} lane {i}: {} vs {}",
                    simd[i],
                    scalar[i]
                );
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_lstm_step_close_to_scalar_and_tail_consistent() {
        if !detect_avx2_fma() {
            return;
        }
        for h_dim in [1usize, 3, 4, 5, 8, 13] {
            let z: Vec<f64> = (0..4 * h_dim)
                .map(|i| (i as f64 * 0.7).sin() * 3.0)
                .collect();
            let c0: Vec<f64> = (0..h_dim).map(|i| (i as f64 * 0.3).cos()).collect();
            let mut c_simd = c0.clone();
            let mut h_simd = vec![0.0; h_dim];
            unsafe { avx2::lstm_step_row(&z, &mut c_simd, &mut h_simd, h_dim) };
            let mut c_scalar = c0.clone();
            let mut h_scalar = vec![0.0; h_dim];
            lstm_step_row_scalar(&z, &mut c_scalar, &mut h_scalar, h_dim);
            for j in 0..h_dim {
                assert!(
                    (c_simd[j] - c_scalar[j]).abs() <= 1e-9,
                    "h_dim={h_dim} c[{j}]"
                );
                assert!(
                    (h_simd[j] - h_scalar[j]).abs() <= 1e-9,
                    "h_dim={h_dim} h[{j}]"
                );
            }
        }
    }

    #[test]
    fn dispatched_kernels_run_under_active_backend() {
        // Smoke: whatever backend() resolves to in this process, the
        // dispatched entry points must produce sane values.
        let mut s = vec![-2.0, -0.5, 0.0, 0.5, 2.0];
        sigmoid_slice(&mut s);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!((s[2] - 0.5).abs() < 1e-12);

        let mut t = vec![-1.0, 0.0, 1.0];
        tanh_slice(&mut t);
        assert!((t[1]).abs() < 1e-15 && t[0] < 0.0 && t[2] > 0.0);

        let mut row = vec![0.3, 1.1];
        softmax_row(&mut row);
        assert!((row[0] + row[1] - 1.0).abs() < 1e-12);

        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut out = [0.0; 4];
        gemm_acc(&a, 2, 2, &b, 2, &mut out);
        assert_eq!(out, [19.0, 22.0, 43.0, 50.0]);
    }
}
