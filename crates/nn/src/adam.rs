//! The Adam optimizer (Kingma & Ba, 2015) with bias correction.
//!
//! The paper trains all monitors with Adam at the Keras default learning
//! rate of `0.001`; we use the same defaults
//! (`β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`).

use crate::matrix::Matrix;

/// Adam optimizer state over a model's flattened parameter vector.
///
/// The trainer tracks first/second moment estimates for `param_count`
/// scalars. Networks apply it by calling [`AdamTrainer::begin_step`] once
/// per minibatch and then [`AdamTrainer::update`] for each parameter tensor
/// in a fixed order, passing the running offset.
#[derive(Debug, Clone)]
pub struct AdamTrainer {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl AdamTrainer {
    /// Creates an optimizer for `param_count` scalars with learning rate `lr`
    /// and the standard `β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not a positive finite number.
    pub fn new(param_count: usize, lr: f64) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: vec![0.0; param_count],
            v: vec![0.0; param_count],
        }
    }

    /// Overrides the exponential-decay coefficients.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= β < 1` for both.
    pub fn with_betas(mut self, beta1: f64, beta2: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2),
            "betas must be in [0,1)"
        );
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// The learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.lr
    }

    /// Number of scalars this trainer manages.
    pub fn param_count(&self) -> usize {
        self.m.len()
    }

    /// Number of optimizer steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Advances the step counter; call once per minibatch before the
    /// per-tensor [`update`](Self::update) calls.
    pub fn begin_step(&mut self) {
        self.t += 1;
    }

    /// Applies one Adam update to `param` given its gradient, using moment
    /// slots starting at `offset`. Returns the offset just past this tensor,
    /// so call sites can chain: `off = trainer.update(off, &mut w, &dw);`.
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch, the slots run past `param_count`, or
    /// [`begin_step`](Self::begin_step) has not been called.
    pub fn update(&mut self, offset: usize, param: &mut Matrix, grad: &Matrix) -> usize {
        assert_eq!(param.shape(), grad.shape(), "param/grad shape mismatch");
        assert!(self.t > 0, "begin_step must be called before update");
        let len = param.len();
        assert!(
            offset + len <= self.m.len(),
            "optimizer slots exhausted: offset {offset} + {len} > {}",
            self.m.len()
        );
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (m, v) = (
            &mut self.m[offset..offset + len],
            &mut self.v[offset..offset + len],
        );
        for ((p, &g), (mi, vi)) in param
            .as_mut_slice()
            .iter_mut()
            .zip(grad.as_slice())
            .zip(m.iter_mut().zip(v.iter_mut()))
        {
            *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
            *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
            let m_hat = *mi / bc1;
            let v_hat = *vi / bc2;
            *p -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
        offset + len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_moves_by_lr() {
        // With bias correction, the very first Adam step has magnitude ≈ lr
        // regardless of gradient scale.
        let mut t = AdamTrainer::new(1, 0.1);
        let mut p = Matrix::row_vector(&[1.0]);
        let g = Matrix::row_vector(&[123.0]);
        t.begin_step();
        t.update(0, &mut p, &g);
        assert!(
            (p.get(0, 0) - (1.0 - 0.1)).abs() < 1e-6,
            "param was {}",
            p.get(0, 0)
        );
    }

    #[test]
    fn converges_on_quadratic() {
        // Minimize f(x) = (x-3)^2; grad = 2(x-3).
        let mut t = AdamTrainer::new(1, 0.1);
        let mut p = Matrix::row_vector(&[0.0]);
        for _ in 0..500 {
            let g = Matrix::row_vector(&[2.0 * (p.get(0, 0) - 3.0)]);
            t.begin_step();
            t.update(0, &mut p, &g);
        }
        assert!(
            (p.get(0, 0) - 3.0).abs() < 1e-3,
            "param was {}",
            p.get(0, 0)
        );
    }

    #[test]
    fn offsets_chain_across_tensors() {
        let mut t = AdamTrainer::new(6, 0.01);
        let mut a = Matrix::zeros(1, 2);
        let mut b = Matrix::zeros(2, 2);
        let ga = Matrix::filled(1, 2, 1.0);
        let gb = Matrix::filled(2, 2, 1.0);
        t.begin_step();
        let off = t.update(0, &mut a, &ga);
        assert_eq!(off, 2);
        let off = t.update(off, &mut b, &gb);
        assert_eq!(off, 6);
    }

    #[test]
    #[should_panic(expected = "slots exhausted")]
    fn rejects_overflowing_offsets() {
        let mut t = AdamTrainer::new(2, 0.01);
        let mut a = Matrix::zeros(2, 2);
        let g = Matrix::zeros(2, 2);
        t.begin_step();
        t.update(0, &mut a, &g);
    }

    #[test]
    #[should_panic(expected = "begin_step")]
    fn update_requires_begin_step() {
        let mut t = AdamTrainer::new(1, 0.01);
        let mut a = Matrix::zeros(1, 1);
        let g = Matrix::zeros(1, 1);
        t.update(0, &mut a, &g);
    }
}
