//! Row-major `f64` matrices with the handful of kernels the networks need.
//!
//! This is deliberately *not* a general linear-algebra library: it provides
//! exactly the operations used by the dense and LSTM layers, with shapes
//! validated eagerly (panicking on mismatch, like indexing out of bounds)
//! so that shape bugs surface at the call site instead of corrupting
//! training.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

use crate::simd::gemm_acc;

thread_local! {
    /// Reusable transpose-pack buffer for [`Matrix::matmul_tb`]. Per
    /// thread so the backward pass's per-timestep `dz·Wᵀ` calls stop
    /// paying a fresh `k·n` allocation (and the allocator-layout jitter it
    /// induced on the output buffer) on every call.
    static PACK_SCRATCH: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// A dense, row-major matrix of `f64` values.
///
/// # Examples
///
/// ```
/// use cpsmon_nn::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for r in 0..max_rows {
            write!(f, "  [")?;
            let max_cols = 8.min(self.cols);
            for c in 0..max_cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self.get(r, c))?;
            }
            if self.cols > max_cols {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize");
        Self {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        m.data.fill(value);
        m
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has length {} != {cols}", r.len());
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a single-row matrix from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major view of the underlying buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major view of the underlying buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Extracts a copy of rows `[start, end)` as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > rows`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.rows,
            "invalid row range {start}..{end} for {} rows",
            self.rows
        );
        Matrix::from_vec(
            end - start,
            self.cols,
            self.data[start * self.cols..end * self.cols].to_vec(),
        )
    }

    /// Extracts a copy of columns `[start, end)` as a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > cols`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        let mut out = Matrix::zeros(self.rows, end.saturating_sub(start));
        self.slice_cols_into(start, end, &mut out);
        out
    }

    /// [`slice_cols`](Self::slice_cols) writing into a caller-owned buffer
    /// of shape `rows × (end − start)` (scratch-reuse variant for the
    /// streaming prediction path).
    ///
    /// # Panics
    ///
    /// Panics if `start > end`, `end > cols`, or `out` has the wrong shape.
    pub fn slice_cols_into(&self, start: usize, end: usize, out: &mut Matrix) {
        assert!(
            start <= end && end <= self.cols,
            "invalid col range {start}..{end} for {} cols",
            self.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, end - start),
            "output shape mismatch"
        );
        for r in 0..self.rows {
            let src = &self.row(r)[start..end];
            out.row_mut(r).copy_from_slice(src);
        }
    }

    /// Reshapes this matrix to `rows × cols`, reusing the existing buffer
    /// when the element count is unchanged. The contents are unspecified
    /// afterwards — intended for scratch buffers that the next kernel fully
    /// overwrites.
    ///
    /// # Panics
    ///
    /// Panics if `rows · cols` overflows `usize`.
    pub fn reset_shape(&mut self, rows: usize, cols: usize) {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize");
        if self.data.len() != len {
            self.data.resize(len, 0.0);
        }
        self.rows = rows;
        self.cols = cols;
    }

    /// Writes `block` into columns `[start, start + block.cols())`.
    ///
    /// # Panics
    ///
    /// Panics on row-count mismatch or if the block does not fit.
    pub fn set_cols(&mut self, start: usize, block: &Matrix) {
        assert_eq!(self.rows, block.rows, "row count mismatch");
        assert!(
            start + block.cols <= self.cols,
            "block does not fit at column {start}"
        );
        for r in 0..self.rows {
            let cols = self.cols;
            self.data[r * cols + start..r * cols + start + block.cols]
                .copy_from_slice(block.row(r));
        }
    }

    /// Builds a new matrix keeping only the rows whose index is in `idx`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (i, &r) in idx.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Stacks `self` on top of `other`.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "column mismatch in vstack");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix::from_vec(self.rows + other.rows, self.cols, data)
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Matrix product `self · rhs` via the cache-blocked, runtime-dispatched
    /// GEMM kernel ([`cpsmon_nn::simd::gemm_acc`](crate::simd::gemm_acc)).
    ///
    /// Accumulation over `k` is strictly ascending per output element under
    /// both kernel backends, so the result is bit-identical to the naive
    /// triple loop written with the active backend's multiply-add (unfused
    /// `+=a*b` for the scalar backend, [`f64::mul_add`] for AVX2+FMA) —
    /// blocking, vector width, and batch slicing change only the memory
    /// schedule, never the bits.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        gemm_acc(
            &self.data,
            self.rows,
            self.cols,
            &rhs.data,
            rhs.cols,
            &mut out.data,
        );
        out
    }

    /// Accumulates `self · rhs` into `out` (`out += self · rhs`), reusing
    /// `out`'s buffer. Same kernel and accumulation order as [`matmul`].
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    ///
    /// [`matmul`]: Self::matmul
    pub fn matmul_acc(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(
            out.shape(),
            (self.rows, rhs.cols),
            "matmul_acc output shape mismatch"
        );
        gemm_acc(
            &self.data,
            self.rows,
            self.cols,
            &rhs.data,
            rhs.cols,
            &mut out.data,
        );
    }

    /// Fused `self · rhs + bias` (bias broadcast over rows), the dense-layer
    /// forward kernel. The accumulator is *seeded* with the bias, so each
    /// element is `bias_j + Σ_k a·b` — one pass over the output instead of
    /// a product pass plus a broadcast pass. (This regroups the additions
    /// relative to `matmul` + [`add_row_broadcast`], so results may differ
    /// from the unfused pair in the last ulp.)
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or if `bias` is not `1 × rhs.cols()`.
    ///
    /// [`add_row_broadcast`]: Self::add_row_broadcast
    pub fn matmul_add_bias(&self, rhs: &Matrix, bias: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_add_bias_into(rhs, bias, &mut out);
        out
    }

    /// [`matmul_add_bias`] writing into a caller-owned buffer, so hot loops
    /// (LSTM/GRU timesteps) can reuse one scratch matrix instead of
    /// allocating per step. `out` is overwritten, not accumulated into.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    ///
    /// [`matmul_add_bias`]: Self::matmul_add_bias
    pub fn matmul_add_bias_into(&self, rhs: &Matrix, bias: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, rhs.cols, "bias width mismatch");
        assert_eq!(out.shape(), (self.rows, rhs.cols), "output shape mismatch");
        let n = rhs.cols;
        for r in 0..self.rows {
            out.data[r * n..(r + 1) * n].copy_from_slice(&bias.data);
        }
        gemm_acc(
            &self.data,
            self.rows,
            self.cols,
            &rhs.data,
            rhs.cols,
            &mut out.data,
        );
    }

    /// `self · rhsᵀ` (the backward-pass and attack workhorse: `dx = dz·Wᵀ`).
    ///
    /// The transposed operand is packed once per call into a row-major
    /// `k × n` panel and the product then runs through the same dispatched
    /// GEMM kernel as [`matmul`](Self::matmul) — column-major strided reads
    /// of `rhs` happen exactly once (during packing) instead of once per
    /// `self` row, and the multiply itself gets the vectorized kernel.
    ///
    /// Each output element accumulates in strictly ascending `k` order, so
    /// the result is bit-identical to the naive row-dot implementation
    /// written with the active backend's multiply-add.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_tb(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_transpose shape mismatch: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let k = self.cols;
        let n = rhs.rows;
        // Transpose kk-major into a thread-local pack scratch. kk-major
        // keeps the writes contiguous (the j-major form scatters writes at
        // stride `8n` bytes, stalling on a read-for-ownership round trip
        // per element — measured ~6× the pack cost on the 256×36 backward
        // shape), and reusing one long-lived buffer keeps the allocator
        // pattern identical to `matmul` (interleaving a fresh `k·n` chunk
        // with the output allocation measurably perturbed how the output
        // buffer itself was served, costing more than the pack).
        PACK_SCRATCH.with(|cell| {
            let mut packed = cell.borrow_mut();
            if packed.len() < k * n {
                packed.resize(k * n, 0.0);
            }
            let rp = rhs.data.as_ptr();
            for (kk, dst) in packed[..k * n].chunks_exact_mut(n).enumerate() {
                // SAFETY: j*k + kk < n*k = rhs.data.len().
                for (j, d) in dst.iter_mut().enumerate() {
                    *d = unsafe { *rp.add(j * k + kk) };
                }
            }
            let mut out = Matrix::zeros(self.rows, n);
            gemm_acc(&self.data, self.rows, k, &packed[..k * n], n, &mut out.data);
            out
        })
    }

    /// Alias for [`matmul_tb`](Self::matmul_tb), kept for callers written
    /// against the original kernel name.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_transpose(&self, rhs: &Matrix) -> Matrix {
        self.matmul_tb(rhs)
    }

    /// `selfᵀ · rhs` without materializing the transpose (the weight-grad
    /// kernel: `dW = xᵀ·dz`).
    ///
    /// Accumulation over the shared row index is strictly ascending per
    /// output element; four rows are fused per pass so the output panel is
    /// loaded and stored once per four rank-1 updates.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn transpose_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "transpose_matmul shape mismatch: ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let m = self.cols;
        let n = rhs.cols;
        let mut out = Matrix::zeros(m, n);
        let mut r = 0;
        while r + 4 <= self.rows {
            let a0 = &self.data[r * m..(r + 1) * m];
            let a1 = &self.data[(r + 1) * m..(r + 2) * m];
            let a2 = &self.data[(r + 2) * m..(r + 3) * m];
            let a3 = &self.data[(r + 3) * m..(r + 4) * m];
            let b0 = &rhs.data[r * n..(r + 1) * n];
            let b1 = &rhs.data[(r + 1) * n..(r + 2) * n];
            let b2 = &rhs.data[(r + 2) * n..(r + 3) * n];
            let b3 = &rhs.data[(r + 3) * n..(r + 4) * n];
            for i in 0..m {
                let (c0, c1, c2, c3) = (a0[i], a1[i], a2[i], a3[i]);
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for j in 0..n {
                    // Sequential adds keep the row-ascending accumulation
                    // order identical to the unfused rank-1 updates.
                    let mut acc = out_row[j];
                    acc += c0 * b0[j];
                    acc += c1 * b1[j];
                    acc += c2 * b2[j];
                    acc += c3 * b3[j];
                    out_row[j] = acc;
                }
            }
            r += 4;
        }
        while r < self.rows {
            let a_row = &self.data[r * m..(r + 1) * m];
            let b_row = &rhs.data[r * n..(r + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
            r += 1;
        }
        out
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| a * b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Returns a copy with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&v| f(v)).collect(),
        )
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Returns a copy scaled by `k`.
    pub fn scale(&self, k: f64) -> Matrix {
        self.map(|v| v * k)
    }

    /// Adds `rhs * k` into `self` (axpy).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, rhs: &Matrix, k: f64) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b * k;
        }
    }

    /// Adds `bias` (a `1 × cols` row vector) to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × cols`.
    pub fn add_row_broadcast(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        for r in 0..self.rows {
            let cols = self.cols;
            for (v, &b) in self.data[r * cols..(r + 1) * cols]
                .iter_mut()
                .zip(bias.data.iter())
            {
                *v += b;
            }
        }
    }

    /// Sums over rows, producing a `1 × cols` row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r).iter()) {
                *o += v;
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements; `0.0` for an empty matrix.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Maximum absolute element; `0.0` for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&v| v * v).sum::<f64>().sqrt()
    }

    /// Index of the maximum entry in each row (first maximum wins).
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Returns `true` if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        self.add_scaled(rhs, 1.0);
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, k: f64) -> Matrix {
        self.scale(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let id = Matrix::identity(3);
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_transpose_agrees_with_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5, -1.0], &[2.0, -2.0, 0.0]]);
        assert_eq!(a.matmul_transpose(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transpose_matmul_agrees_with_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, -1.0], &[0.5, 2.0], &[0.0, 3.0]]);
        assert_eq!(a.transpose_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn row_broadcast_adds_bias() {
        let mut a = Matrix::zeros(2, 3);
        let b = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        a.add_row_broadcast(&b);
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(a.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn sum_rows_collapses() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[10.0, 20.0]]);
        assert_eq!(a.sum_rows(), Matrix::row_vector(&[11.0, 22.0]));
    }

    #[test]
    fn argmax_rows_first_max_wins() {
        let a = Matrix::from_rows(&[&[0.3, 0.7], &[0.5, 0.5], &[0.9, 0.1]]);
        assert_eq!(a.argmax_rows(), vec![1, 0, 0]);
    }

    #[test]
    fn slice_and_set_cols_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0]]);
        let block = a.slice_cols(1, 3);
        assert_eq!(block, Matrix::from_rows(&[&[2.0, 3.0], &[6.0, 7.0]]));
        let mut b = Matrix::zeros(2, 4);
        b.set_cols(1, &block);
        assert_eq!(b.get(0, 1), 2.0);
        assert_eq!(b.get(1, 2), 7.0);
        assert_eq!(b.get(0, 0), 0.0);
    }

    #[test]
    fn select_rows_picks_subset() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        assert_eq!(a.select_rows(&[2, 0]), Matrix::from_rows(&[&[3.0], &[1.0]]));
    }

    #[test]
    fn vstack_concatenates() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = a.vstack(&b);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.row(2), &[5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_rejects_out_of_bounds() {
        let a = Matrix::zeros(2, 2);
        let _ = a.get(2, 0);
    }

    /// Naive reference product with per-element ascending-k accumulation
    /// using the *active backend's* multiply-add (unfused for scalar,
    /// [`f64::mul_add`] under AVX2+FMA) — the order and rounding the
    /// dispatched GEMM promises to reproduce bit-for-bit.
    fn reference_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let fma = crate::simd::fma_active();
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    if fma {
                        acc = a.get(i, k).mul_add(b.get(k, j), acc);
                    } else {
                        acc += a.get(i, k) * b.get(k, j);
                    }
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Plain (never-fused) naive reference, for the kernels that stay
    /// scalar under every backend (`transpose_matmul`).
    fn reference_matmul_plain(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    fn arbitrary_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed;
        let data = (0..rows * cols)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn blocked_matmul_bit_identical_to_reference() {
        // Sizes straddling both the 4-k unroll remainder and the KC panel
        // boundary (k = 300 > GEMM_KC = 128).
        for (m, k, n) in [(1, 1, 1), (3, 5, 2), (7, 300, 9), (5, 129, 4)] {
            let a = arbitrary_matrix(m, k, 11 + m as u64);
            let b = arbitrary_matrix(k, n, 17 + n as u64);
            let fast = a.matmul(&b);
            let reference = reference_matmul(&a, &b);
            assert_eq!(fast.as_slice(), reference.as_slice(), "{m}x{k}·{k}x{n}");
        }
    }

    #[test]
    fn matmul_tb_bit_identical_to_reference() {
        for (m, k, n) in [(1, 3, 1), (4, 7, 6), (3, 130, 10)] {
            let a = arbitrary_matrix(m, k, 23);
            let b = arbitrary_matrix(n, k, 29);
            let fast = a.matmul_tb(&b);
            let reference = reference_matmul(&a, &b.transpose());
            assert_eq!(fast.as_slice(), reference.as_slice(), "{m}x{k}·({n}x{k})ᵀ");
        }
    }

    #[test]
    fn transpose_matmul_bit_identical_to_reference() {
        for (k, m, n) in [(1, 2, 2), (6, 4, 5), (131, 3, 8)] {
            let a = arbitrary_matrix(k, m, 31);
            let b = arbitrary_matrix(k, n, 37);
            let fast = a.transpose_matmul(&b);
            let reference = reference_matmul_plain(&a.transpose(), &b);
            assert_eq!(fast.as_slice(), reference.as_slice(), "({k}x{m})ᵀ·{k}x{n}");
        }
    }

    #[test]
    fn matmul_acc_accumulates() {
        let a = arbitrary_matrix(3, 4, 41);
        let b = arbitrary_matrix(4, 5, 43);
        let seed = arbitrary_matrix(3, 5, 47);
        let mut out = seed.clone();
        a.matmul_acc(&b, &mut out);
        // Bit-identity: accumulating onto `seed` element-wise in ascending-k
        // order (with the active backend's multiply-add) equals the
        // reference loop seeded the same way.
        let fma = crate::simd::fma_active();
        let mut reference = seed;
        for i in 0..3 {
            for j in 0..5 {
                let mut acc = reference.get(i, j);
                for k in 0..4 {
                    if fma {
                        acc = a.get(i, k).mul_add(b.get(k, j), acc);
                    } else {
                        acc += a.get(i, k) * b.get(k, j);
                    }
                }
                reference.set(i, j, acc);
            }
        }
        assert_eq!(out, reference);
    }

    #[test]
    fn matmul_add_bias_close_to_unfused() {
        let a = arbitrary_matrix(6, 9, 53);
        let b = arbitrary_matrix(9, 7, 59);
        let bias = arbitrary_matrix(1, 7, 61);
        let fused = a.matmul_add_bias(&b, &bias);
        let mut unfused = a.matmul(&b);
        unfused.add_row_broadcast(&bias);
        for (f, u) in fused.as_slice().iter().zip(unfused.as_slice()) {
            // The fused kernel seeds the accumulator with the bias, so the
            // grouping differs; agreement must still be at rounding level.
            assert!((f - u).abs() <= 1e-12 * u.abs().max(1.0), "{f} vs {u}");
        }
    }

    #[test]
    fn matmul_add_bias_into_reuses_buffer() {
        let a = arbitrary_matrix(2, 3, 67);
        let b = arbitrary_matrix(3, 4, 71);
        let bias = arbitrary_matrix(1, 4, 73);
        let mut scratch = Matrix::filled(2, 4, f64::NAN);
        a.matmul_add_bias_into(&b, &bias, &mut scratch);
        assert_eq!(scratch, a.matmul_add_bias(&b, &bias));
    }

    #[test]
    #[should_panic(expected = "matmul_acc output shape mismatch")]
    fn matmul_acc_rejects_bad_output_shape() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 4);
        let mut out = Matrix::zeros(2, 5);
        a.matmul_acc(&b, &mut out);
    }

    #[test]
    fn norms_and_stats() {
        let a = Matrix::from_rows(&[&[3.0, -4.0]]);
        assert_eq!(a.frobenius_norm(), 5.0);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.sum(), -1.0);
        assert_eq!(a.mean(), -0.5);
    }
}
