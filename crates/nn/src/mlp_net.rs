//! The multi-layer-perceptron monitor network.
//!
//! Architecture per the paper (§IV-A): fully connected layers of 256 and
//! 128 units with ReLU activations, followed by a softmax output layer,
//! trained with Adam and sparse categorical cross-entropy. The "Custom"
//! variant adds the semantic-loss term (Eq. 2) through the optional
//! indicator argument of [`MlpNet::train_batch`].

use crate::activation::{relu, relu_grad_mask, relu_inplace, softmax_rows, softmax_rows_inplace};
use crate::adam::AdamTrainer;
use crate::dense::{Dense, DenseGrads};
use crate::loss::{cross_entropy, softmax_ce_grad, SemanticLoss};
use crate::matrix::Matrix;
use crate::model::GradModel;
use crate::par;
use crate::rng::SmallRng;

/// Configuration for [`MlpNet::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MlpConfig {
    /// Width of a flattened input row.
    pub input_dim: usize,
    /// Hidden-layer sizes; the paper uses `[256, 128]`.
    pub hidden: Vec<usize>,
    /// Number of output classes (2 for safe/unsafe).
    pub classes: usize,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl MlpConfig {
    /// The paper's monitor architecture (256-128) for the given input width.
    pub fn paper(input_dim: usize) -> Self {
        Self {
            input_dim,
            hidden: vec![256, 128],
            classes: 2,
            seed: 0,
        }
    }
}

/// Reusable per-layer activation buffers for
/// [`MlpNet::predict_proba_scratch`]. After the first call with a given
/// batch size, subsequent calls allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct MlpScratch {
    acts: Vec<Matrix>,
}

/// A feed-forward softmax classifier with ReLU hidden layers.
#[derive(Debug, Clone)]
pub struct MlpNet {
    layers: Vec<Dense>,
    classes: usize,
    /// Optional semantic loss used when an indicator batch is supplied.
    pub semantic: SemanticLoss,
}

impl MlpNet {
    /// Builds the network described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if `input_dim`, `classes`, or any hidden width is zero.
    pub fn new(config: &MlpConfig) -> Self {
        assert!(config.input_dim > 0, "input_dim must be positive");
        assert!(config.classes > 0, "classes must be positive");
        assert!(
            config.hidden.iter().all(|&h| h > 0),
            "hidden widths must be positive"
        );
        let mut rng = SmallRng::new(config.seed ^ 0x6d6c_705f_6e65_7400);
        let mut layers = Vec::with_capacity(config.hidden.len() + 1);
        let mut prev = config.input_dim;
        for &h in &config.hidden {
            layers.push(Dense::new(prev, h, &mut rng));
            prev = h;
        }
        layers.push(Dense::new(prev, config.classes, &mut rng));
        Self {
            layers,
            classes: config.classes,
            semantic: SemanticLoss::default(),
        }
    }

    /// Total number of trainable scalars (for sizing an [`AdamTrainer`]).
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// The dense layers in forward order (hidden layers then the head).
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Replaces all layers (used by deserialization).
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or consecutive layers' widths mismatch.
    pub fn set_layers(&mut self, layers: Vec<Dense>) {
        assert!(!layers.is_empty(), "network must have at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].output_dim(),
                pair[1].input_dim(),
                "consecutive layer widths must match"
            );
        }
        self.classes = layers.last().expect("non-empty").output_dim();
        self.layers = layers;
    }

    /// Raw (pre-softmax) logits for a batch, computed over parallel row
    /// chunks (the forward pass is row-independent, so chunking is
    /// bit-transparent at any thread count).
    pub fn predict_logits(&self, x: &Matrix) -> Matrix {
        par::map_rows(x, par::PREDICT_CHUNK, |_, chunk| self.forward_only(chunk))
    }

    /// Forward pass without caching (prediction path): no intermediate
    /// clones, ReLU applied in place.
    fn forward_only(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.layers[0].input_dim(), "input width mismatch");
        let last = self.layers.len() - 1;
        let mut cur = self.layers[0].forward(x);
        if last > 0 {
            relu_inplace(&mut cur);
        }
        for (i, layer) in self.layers.iter().enumerate().skip(1) {
            cur = layer.forward(&cur);
            if i != last {
                relu_inplace(&mut cur);
            }
        }
        cur
    }

    /// Class probabilities through caller-owned scratch buffers — the
    /// single-row/small-batch prediction fast path used by streaming
    /// monitor sessions. Runs the same kernels as the batch path
    /// ([`Dense::forward_into`], [`relu_inplace`], [`softmax_rows_inplace`])
    /// so the result is bit-identical to
    /// [`predict_proba`](GradModel::predict_proba) on the same rows, but
    /// performs no allocation once the scratch is warm.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` differs from the network input width.
    pub fn predict_proba_scratch<'s>(&self, x: &Matrix, scratch: &'s mut MlpScratch) -> &'s Matrix {
        assert_eq!(x.cols(), self.layers[0].input_dim(), "input width mismatch");
        let n = x.rows();
        let last = self.layers.len() - 1;
        scratch
            .acts
            .resize_with(self.layers.len(), || Matrix::zeros(0, 0));
        for (i, layer) in self.layers.iter().enumerate() {
            let (done, todo) = scratch.acts.split_at_mut(i);
            let input = if i == 0 { x } else { &done[i - 1] };
            let out = &mut todo[0];
            out.reset_shape(n, layer.output_dim());
            layer.forward_into(input, out);
            if i != last {
                relu_inplace(out);
            }
        }
        let probs = &mut scratch.acts[last];
        softmax_rows_inplace(probs);
        probs
    }

    /// Forward pass caching layer inputs and hidden pre-activations.
    /// Returns `(logits, inputs, zs)` where `inputs[i]` is the input to
    /// layer `i` and `zs[i]` is hidden layer `i`'s pre-activation (needed
    /// for the ReLU mask — cached here so the backward pass does not redo
    /// the forward matmuls).
    fn forward_cached(&self, x: &Matrix) -> (Matrix, Vec<Matrix>, Vec<Matrix>) {
        assert_eq!(x.cols(), self.layers[0].input_dim(), "input width mismatch");
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut zs = Vec::with_capacity(self.layers.len() - 1);
        let mut cur = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            let z = layer.forward(&cur);
            inputs.push(cur);
            if i + 1 == self.layers.len() {
                return (z, inputs, zs);
            }
            cur = relu(&z);
            zs.push(z);
        }
        unreachable!("network has at least one layer");
    }

    /// Shared backward pass from a logits-gradient to (weight grads, dx).
    fn backward_from_dz(
        &self,
        inputs: &[Matrix],
        zs: &[Matrix],
        mut dz: Matrix,
    ) -> (Vec<DenseGrads>, Matrix) {
        let mut grads = Vec::with_capacity(self.layers.len());
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let (g, dx) = layer.backward(&inputs[i], &dz);
            grads.push(g);
            dz = if i > 0 {
                dx.hadamard(&relu_grad_mask(&zs[i - 1]))
            } else {
                dx
            };
        }
        grads.reverse();
        (grads, dz)
    }

    /// Input-gradient-only backward pass: skips the weight-gradient
    /// matmuls, which attacks (FGSM/PGD) never consume.
    fn backward_input_only(&self, zs: &[Matrix], mut dz: Matrix) -> Matrix {
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let dx = dz.matmul_tb(layer.weights());
            dz = if i > 0 {
                dx.hadamard(&relu_grad_mask(&zs[i - 1]))
            } else {
                dx
            };
        }
        dz
    }

    /// Loss and weight gradients of one (sub-)batch, without updating.
    fn batch_grads(
        &self,
        x: &Matrix,
        labels: &[usize],
        indicator: Option<&[f64]>,
    ) -> (f64, Vec<DenseGrads>) {
        let (logits, inputs, zs) = self.forward_cached(x);
        let (probs, mut dz) = softmax_ce_grad(&logits, labels);
        let mut loss = cross_entropy(&probs, labels);
        if let Some(ind) = indicator {
            loss += self.semantic.penalty(&probs, ind);
            self.semantic.add_grad(&probs, ind, &mut dz);
        }
        let (grads, _) = self.backward_from_dz(&inputs, &zs, dz);
        (loss, grads)
    }

    /// One minibatch of training. `indicator` is the per-row safety-rule
    /// truth value; when present, the semantic loss (Eq. 2) is added with
    /// weight [`MlpNet::semantic`]. Returns the total batch loss.
    ///
    /// Batches larger than [`par::GRAD_CHUNK`] rows are split into fixed
    /// row chunks whose gradients are computed in parallel and merged in
    /// chunk order with weights `chunk_rows / batch_rows` (the per-chunk
    /// mean-loss gradients recombine into the batch mean). The chunk grid
    /// is independent of the thread count, so training is bit-deterministic
    /// for any `CPSMON_THREADS`; batches of at most one chunk take the
    /// legacy whole-batch path unchanged.
    ///
    /// # Panics
    ///
    /// Panics on shape/label mismatches.
    pub fn train_batch(
        &mut self,
        x: &Matrix,
        labels: &[usize],
        indicator: Option<&[f64]>,
        trainer: &mut AdamTrainer,
    ) -> f64 {
        assert_eq!(labels.len(), x.rows(), "label count mismatch");
        let n = x.rows();
        let ranges = par::chunk_ranges(n, par::GRAD_CHUNK);
        let (loss, grads) = if ranges.len() <= 1 {
            self.batch_grads(x, labels, indicator)
        } else {
            let parts = par::run_chunks(n, par::GRAD_CHUNK, |r| {
                let chunk = x.slice_rows(r.start, r.end);
                self.batch_grads(&chunk, &labels[r.clone()], indicator.map(|ind| &ind[r]))
            });
            let mut loss = 0.0;
            let mut merged: Option<Vec<DenseGrads>> = None;
            for (range, (chunk_loss, chunk_grads)) in ranges.iter().zip(parts) {
                let weight = range.len() as f64 / n as f64;
                loss += weight * chunk_loss;
                match &mut merged {
                    None => {
                        let mut scaled = chunk_grads;
                        for g in &mut scaled {
                            g.dw.map_inplace(|v| v * weight);
                            g.db.map_inplace(|v| v * weight);
                        }
                        merged = Some(scaled);
                    }
                    Some(acc) => {
                        for (a, g) in acc.iter_mut().zip(&chunk_grads) {
                            a.dw.add_scaled(&g.dw, weight);
                            a.db.add_scaled(&g.db, weight);
                        }
                    }
                }
            }
            (loss, merged.expect("at least one chunk"))
        };
        trainer.begin_step();
        let mut off = 0;
        for (layer, g) in self.layers.iter_mut().zip(grads.iter()) {
            off = layer.apply_update(trainer, off, g);
        }
        debug_assert_eq!(off, trainer.param_count());
        loss
    }

    /// Mean training loss of a batch without updating weights.
    pub fn eval_loss(&self, x: &Matrix, labels: &[usize], indicator: Option<&[f64]>) -> f64 {
        let probs = self.predict_proba(x);
        let mut loss = cross_entropy(&probs, labels);
        if let Some(ind) = indicator {
            loss += self.semantic.penalty(&probs, ind);
        }
        loss
    }
}

impl GradModel for MlpNet {
    fn classes(&self) -> usize {
        self.classes
    }

    fn input_width(&self) -> usize {
        self.layers[0].input_dim()
    }

    fn predict_proba(&self, x: &Matrix) -> Matrix {
        // Softmax is per-row, so fusing it into the chunk map keeps one
        // parallel pass and stays bit-identical to the serial pipeline.
        par::map_rows(x, par::PREDICT_CHUNK, |_, chunk| {
            softmax_rows(&self.forward_only(chunk))
        })
    }

    fn input_gradient(&self, x: &Matrix, labels: &[usize]) -> Matrix {
        assert_eq!(labels.len(), x.rows(), "label count mismatch");
        let n = x.rows();
        par::map_rows(x, par::GRAD_CHUNK, |r, chunk| {
            let (logits, _, zs) = self.forward_cached(chunk);
            let (_, dz) = softmax_ce_grad(&logits, &labels[r.clone()]);
            let mut dx = self.backward_input_only(&zs, dz);
            if r.len() != n {
                // Per-chunk gradients carry a 1/chunk_rows mean factor;
                // reweight to the batch mean. (Positive scaling — the FGSM
                // sign is unaffected either way.)
                let weight = r.len() as f64 / n as f64;
                dx.map_inplace(|v| v * weight);
            }
            dx
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{max_relative_error, numeric_input_grad};
    use crate::init::random_normal;

    fn tiny_net(seed: u64) -> MlpNet {
        MlpNet::new(&MlpConfig {
            input_dim: 4,
            hidden: vec![8, 6],
            classes: 2,
            seed,
        })
    }

    #[test]
    fn proba_rows_sum_to_one() {
        let net = tiny_net(1);
        let x = random_normal(5, 4, 1.0, &mut SmallRng::new(2));
        let p = net.predict_proba(&x);
        for r in 0..5 {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let net = tiny_net(3);
        let mut rng = SmallRng::new(4);
        let x = random_normal(3, 4, 0.8, &mut rng);
        let labels = vec![0usize, 1, 0];
        let ana = net.input_gradient(&x, &labels);
        let num = numeric_input_grad(&x, 1e-6, |xp| {
            cross_entropy(&net.predict_proba(xp), &labels)
        });
        let err = max_relative_error(&ana, &num);
        assert!(err < 1e-5, "input-grad error {err}");
    }

    #[test]
    fn training_reduces_loss_on_toy_task() {
        // Linearly separable blobs.
        let mut rng = SmallRng::new(5);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..40 {
            let y = rng.bernoulli(0.5) as usize;
            let center = if y == 1 { 2.0 } else { -2.0 };
            rows.push(vec![
                rng.normal_with(center, 0.5),
                rng.normal_with(-center, 0.5),
                rng.normal(),
                rng.normal(),
            ]);
            labels.push(y);
        }
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let x = Matrix::from_rows(&refs);
        let mut net = tiny_net(6);
        let mut trainer = AdamTrainer::new(net.param_count(), 0.01);
        let before = net.eval_loss(&x, &labels, None);
        for _ in 0..100 {
            net.train_batch(&x, &labels, None, &mut trainer);
        }
        let after = net.eval_loss(&x, &labels, None);
        assert!(after < before * 0.2, "loss {before} → {after}");
        // And classify nearly everything correctly.
        let preds = net.predict_labels(&x);
        let correct = preds.iter().zip(&labels).filter(|(p, y)| p == y).count();
        assert!(correct >= 38, "only {correct}/40 correct");
    }

    #[test]
    fn semantic_indicator_pulls_predictions() {
        // With a large semantic weight and indicator fixed at 1, the model
        // should predict "unsafe" even where labels say safe.
        let x = Matrix::from_rows(&[&[1.0, 0.0, 0.0, 0.0]]);
        let labels = vec![0usize];
        let ind = vec![1.0f64];
        let mut net = tiny_net(7);
        net.semantic = SemanticLoss::new(10.0);
        let mut trainer = AdamTrainer::new(net.param_count(), 0.05);
        for _ in 0..200 {
            net.train_batch(&x, &labels, Some(&ind), &mut trainer);
        }
        let p = net.predict_proba(&x);
        assert!(p.get(0, 1) > 0.5, "semantic term failed to dominate: {p:?}");
    }

    #[test]
    fn paper_architecture_has_expected_param_count() {
        let net = MlpNet::new(&MlpConfig::paper(36));
        // 36·256+256 + 256·128+128 + 128·2+2
        assert_eq!(
            net.param_count(),
            36 * 256 + 256 + 256 * 128 + 128 + 128 * 2 + 2
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = tiny_net(9);
        let b = tiny_net(9);
        let x = random_normal(2, 4, 1.0, &mut SmallRng::new(1));
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn rejects_wrong_input_width() {
        let net = tiny_net(10);
        let x = Matrix::zeros(1, 3);
        let _ = net.predict_proba(&x);
    }

    #[test]
    fn scratch_path_bit_identical_to_batch() {
        let net = tiny_net(13);
        let x = random_normal(7, 4, 1.0, &mut SmallRng::new(14));
        let batch = net.predict_proba(&x);
        let mut scratch = MlpScratch::default();
        // Row by row through the reused scratch: every probability must
        // match the batch result bit for bit.
        for r in 0..x.rows() {
            let row = x.slice_rows(r, r + 1);
            let p = net.predict_proba_scratch(&row, &mut scratch);
            assert_eq!(p.as_slice(), batch.row(r), "row {r} diverged");
        }
        // And a small multi-row batch through the same scratch.
        let sub = x.slice_rows(2, 6);
        let p = net.predict_proba_scratch(&sub, &mut scratch);
        assert_eq!(p.as_slice(), batch.slice_rows(2, 6).as_slice());
    }
}
