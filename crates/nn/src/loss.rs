//! Loss functions: sparse categorical cross-entropy and the paper's
//! knowledge-integration *semantic loss* (Eq. 2).
//!
//! The semantic loss penalizes the model whenever its predicted probability
//! of the *unsafe* class disagrees with the truth value of the STL safety
//! rules evaluated on the (un-normalized) system context:
//!
//! ```text
//! loss = loss_ex + w · | p_unsafe − I(⋁ Φ_h ⊨ context) |
//! ```
//!
//! Both terms are averaged over the batch. The indicator `I` is computed
//! outside this crate (by `cpsmon-core` using `cpsmon-stl`) and passed in as
//! a per-row 0/1 vector, which keeps this crate free of CPS specifics.

use crate::activation::softmax_rows;
use crate::matrix::Matrix;

/// Mean sparse categorical cross-entropy of `probs` against integer labels.
///
/// # Panics
///
/// Panics if `labels.len() != probs.rows()` or a label is out of range.
pub fn cross_entropy(probs: &Matrix, labels: &[usize]) -> f64 {
    assert_eq!(labels.len(), probs.rows(), "label count mismatch");
    let n = labels.len().max(1) as f64;
    labels
        .iter()
        .enumerate()
        .map(|(i, &y)| {
            assert!(y < probs.cols(), "label {y} out of range");
            -(probs.get(i, y).max(1e-12)).ln()
        })
        .sum::<f64>()
        / n
}

/// Gradient of mean cross-entropy with respect to the *logits*:
/// `(softmax(z) − onehot(y)) / N`. Returns `(probs, dlogits)` so callers can
/// reuse the probabilities.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or a label is out of range.
pub fn softmax_ce_grad(logits: &Matrix, labels: &[usize]) -> (Matrix, Matrix) {
    assert_eq!(labels.len(), logits.rows(), "label count mismatch");
    let probs = softmax_rows(logits);
    let n = labels.len().max(1) as f64;
    let mut dz = probs.scale(1.0 / n);
    for (i, &y) in labels.iter().enumerate() {
        assert!(y < logits.cols(), "label {y} out of range");
        dz.set(i, y, dz.get(i, y) - 1.0 / n);
    }
    (probs, dz)
}

/// The semantic-loss term of Eq. 2.
///
/// `UNSAFE_CLASS` is fixed at class index 1, matching the convention used
/// throughout `cpsmon` (0 = safe, 1 = unsafe).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SemanticLoss {
    /// Weight `w` controlling how strongly the safety specification steers
    /// training. The paper does not publish its value; we default to `0.5`
    /// and ablate it (see `DESIGN.md`).
    pub weight: f64,
}

/// Class index of the "unsafe" prediction in all `cpsmon` monitors.
pub const UNSAFE_CLASS: usize = 1;

impl Default for SemanticLoss {
    fn default() -> Self {
        Self { weight: 0.5 }
    }
}

impl SemanticLoss {
    /// Creates a semantic loss with the given weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or non-finite.
    pub fn new(weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "semantic weight must be finite and >= 0"
        );
        Self { weight }
    }

    /// Mean semantic penalty `w·|p_unsafe − I|` over the batch.
    ///
    /// # Panics
    ///
    /// Panics if `indicator.len() != probs.rows()` or the model is not
    /// binary (needs an unsafe-class column).
    pub fn penalty(&self, probs: &Matrix, indicator: &[f64]) -> f64 {
        assert_eq!(indicator.len(), probs.rows(), "indicator count mismatch");
        assert!(
            probs.cols() > UNSAFE_CLASS,
            "model must have an unsafe class column"
        );
        let n = indicator.len().max(1) as f64;
        indicator
            .iter()
            .enumerate()
            .map(|(i, &ind)| (probs.get(i, UNSAFE_CLASS) - ind).abs())
            .sum::<f64>()
            * self.weight
            / n
    }

    /// Adds the semantic term's gradient (w.r.t. the logits) into `dz`.
    ///
    /// With `p = softmax(z)`, `∂|p₁−I|/∂z_j = sign(p₁−I)·p₁·(δ_{1j} − p_j)`;
    /// the batch mean and weight are folded in.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn add_grad(&self, probs: &Matrix, indicator: &[f64], dz: &mut Matrix) {
        assert_eq!(indicator.len(), probs.rows(), "indicator count mismatch");
        assert_eq!(probs.shape(), dz.shape(), "dz shape mismatch");
        let n = indicator.len().max(1) as f64;
        let scale = self.weight / n;
        for (i, &ind) in indicator.iter().enumerate() {
            let p1 = probs.get(i, UNSAFE_CLASS);
            let s = (p1 - ind).signum();
            if s == 0.0 {
                continue;
            }
            for j in 0..probs.cols() {
                let delta = if j == UNSAFE_CLASS { 1.0 } else { 0.0 };
                let g = s * p1 * (delta - probs.get(i, j));
                dz.set(i, j, dz.get(i, j) + scale * g);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_perfect_prediction_is_zero() {
        let probs = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert!(cross_entropy(&probs, &[0, 1]) < 1e-10);
    }

    #[test]
    fn cross_entropy_uniform_is_log_classes() {
        let probs = Matrix::from_rows(&[&[0.5, 0.5]]);
        assert!((cross_entropy(&probs, &[0]) - 2.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn ce_grad_rows_sum_to_zero() {
        let logits = Matrix::from_rows(&[&[0.2, -1.0, 3.0], &[1.0, 1.0, 1.0]]);
        let (_, dz) = softmax_ce_grad(&logits, &[2, 0]);
        for r in 0..2 {
            let s: f64 = dz.row(r).iter().sum();
            assert!(s.abs() < 1e-12, "row {r} grad sum {s}");
        }
    }

    #[test]
    fn ce_grad_matches_finite_difference() {
        let logits = Matrix::from_rows(&[&[0.3, -0.7], &[1.5, 0.1]]);
        let labels = [1usize, 0];
        let (_, dz) = softmax_ce_grad(&logits, &labels);
        let h = 1e-6;
        for r in 0..2 {
            for c in 0..2 {
                let mut plus = logits.clone();
                plus.set(r, c, plus.get(r, c) + h);
                let mut minus = logits.clone();
                minus.set(r, c, minus.get(r, c) - h);
                let lp = cross_entropy(&softmax_rows(&plus), &labels);
                let lm = cross_entropy(&softmax_rows(&minus), &labels);
                let num = (lp - lm) / (2.0 * h);
                assert!(
                    (num - dz.get(r, c)).abs() < 1e-6,
                    "grad mismatch at ({r},{c}): {num} vs {}",
                    dz.get(r, c)
                );
            }
        }
    }

    #[test]
    fn semantic_penalty_zero_when_agreeing() {
        let probs = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let sl = SemanticLoss::new(1.0);
        assert!(sl.penalty(&probs, &[1.0, 0.0]) < 1e-12);
    }

    #[test]
    fn semantic_penalty_max_when_disagreeing() {
        let probs = Matrix::from_rows(&[&[0.0, 1.0]]);
        let sl = SemanticLoss::new(2.0);
        // p_unsafe = 1, indicator = 0 → penalty = w·1 = 2.
        assert!((sl.penalty(&probs, &[0.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn semantic_grad_matches_finite_difference() {
        let logits = Matrix::from_rows(&[&[0.4, -0.2], &[-1.0, 0.8]]);
        let indicator = [1.0, 0.0];
        let sl = SemanticLoss::new(0.7);
        let probs = softmax_rows(&logits);
        let mut dz = Matrix::zeros(2, 2);
        sl.add_grad(&probs, &indicator, &mut dz);
        let h = 1e-6;
        for r in 0..2 {
            for c in 0..2 {
                let mut plus = logits.clone();
                plus.set(r, c, plus.get(r, c) + h);
                let mut minus = logits.clone();
                minus.set(r, c, minus.get(r, c) - h);
                let lp = sl.penalty(&softmax_rows(&plus), &indicator);
                let lm = sl.penalty(&softmax_rows(&minus), &indicator);
                let num = (lp - lm) / (2.0 * h);
                assert!(
                    (num - dz.get(r, c)).abs() < 1e-6,
                    "grad mismatch at ({r},{c}): {num} vs {}",
                    dz.get(r, c)
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "semantic weight")]
    fn semantic_rejects_negative_weight() {
        let _ = SemanticLoss::new(-1.0);
    }
}
