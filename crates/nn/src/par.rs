//! Data-parallel execution layer: deterministic row-chunked fan-out on
//! `std::thread::scope`, with zero external dependencies.
//!
//! # Determinism contract
//!
//! Every parallel routine in `cpsmon` is built on [`run_chunks`], which
//! guarantees **bit-identical results for every thread count**, including 1:
//!
//! 1. Work is split into chunks whose boundaries are a pure function of the
//!    input size and a *fixed* chunk size — never of the thread count.
//! 2. Each chunk is computed independently (workers pull chunk indices from
//!    an atomic counter, so *scheduling* is nondeterministic, but no chunk's
//!    result depends on another's).
//! 3. Results are merged in ascending chunk order.
//!
//! Consequently `CPSMON_THREADS=1` and `CPSMON_THREADS=32` produce the same
//! bits, and the observable effect of the thread count is wall-clock time
//! only. Row-independent maps (forward passes, softmax, FGSM sign steps) are
//! additionally bit-identical to the *unchunked* computation; chunked
//! gradient *accumulation* regroups floating-point sums, so training results
//! are pinned to the fixed chunk grid rather than to the legacy whole-batch
//! grouping (batches of at most [`GRAD_CHUNK`] rows take the legacy
//! single-chunk path unchanged).
//!
//! The contract is independent of the kernel backend ([`crate::simd`]):
//! both the scalar and the AVX2+FMA kernels compute each output element as
//! a pure function of its mathematical inputs (strictly `k`-ascending
//! accumulation, position-invariant tails), so chunk boundaries stay
//! invisible under either backend — thread invariance and backend choice
//! compose orthogonally.
//!
//! # Thread-count resolution
//!
//! [`max_threads`] reads the `CPSMON_THREADS` environment variable
//! (a positive integer; invalid values are ignored) and falls back to
//! [`std::thread::available_parallelism`]. Nested fan-outs run serially: a
//! worker thread that reaches another `run_chunks` call executes it inline,
//! so grid-level parallelism (robustness sweeps) composes with batch-level
//! parallelism (chunked prediction) without oversubscription.

use crate::matrix::Matrix;
use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Rows per chunk for parallel prediction (forward passes are
/// row-independent, so this affects scheduling granularity only).
pub const PREDICT_CHUNK: usize = 64;

/// Rows per chunk for parallel gradient accumulation. Gradients of batches
/// up to this size take the legacy single-chunk path bit-exactly.
pub const GRAD_CHUNK: usize = 64;

thread_local! {
    /// Set inside `run_chunks` workers so nested fan-outs run serially.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Upper bound on worker threads for the next fan-out: `CPSMON_THREADS` if
/// set to a positive integer, else the machine's available parallelism.
/// Returns 1 inside a parallel worker (nested fan-outs are serial).
pub fn max_threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    if let Ok(v) = std::env::var("CPSMON_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Splits `0..n` into ranges of `chunk` items (the last may be shorter).
/// The boundaries depend only on `n` and `chunk` — see the module docs.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn chunk_ranges(n: usize, chunk: usize) -> Vec<Range<usize>> {
    assert!(chunk > 0, "chunk size must be positive");
    if n == 0 {
        return Vec::new();
    }
    (0..n.div_ceil(chunk))
        .map(|i| i * chunk..((i + 1) * chunk).min(n))
        .collect()
}

/// Runs `worker` over every chunk of `0..n` and returns the results in
/// ascending chunk order, regardless of which thread computed what.
///
/// With one chunk or one thread the workers run inline on the calling
/// thread, in order — the results are identical either way (see the module
/// docs for the determinism contract).
///
/// # Panics
///
/// Panics if `chunk == 0`, and re-raises any panic from `worker`.
pub fn run_chunks<T, F>(n: usize, chunk: usize, worker: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = chunk_ranges(n, chunk);
    let threads = max_threads().min(ranges.len());
    if threads <= 1 {
        return ranges.into_iter().map(worker).collect();
    }
    let next = AtomicUsize::new(0);
    let ranges_ref = &ranges;
    let worker_ref = &worker;
    let next_ref = &next;
    let mut per_thread: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    let mut local = Vec::new();
                    loop {
                        let i = next_ref.fetch_add(1, Ordering::Relaxed);
                        let Some(range) = ranges_ref.get(i) else {
                            break;
                        };
                        local.push((i, worker_ref(range.clone())));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });
    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(ranges.len()).collect();
    for (i, value) in per_thread.drain(..).flatten() {
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every chunk index was claimed exactly once"))
        .collect()
}

/// Applies a row-chunk transform to `x` in parallel and stacks the results.
///
/// `f` receives each chunk's row range within `x` plus the chunk itself and
/// must return a matrix with one output row per input row (column count may
/// differ but must agree across chunks). With a single chunk, `f` is called
/// directly on `x` without copying.
///
/// # Panics
///
/// Panics if `chunk == 0` or the chunk outputs disagree in shape.
pub fn map_rows<F>(x: &Matrix, chunk: usize, f: F) -> Matrix
where
    F: Fn(Range<usize>, &Matrix) -> Matrix + Sync,
{
    let n = x.rows();
    if n <= chunk {
        let out = f(0..n, x);
        assert_eq!(out.rows(), n, "map_rows output must keep the row count");
        return out;
    }
    let parts = run_chunks(n, chunk, |r| {
        let piece = x.slice_rows(r.start, r.end);
        let out = f(r.clone(), &piece);
        assert_eq!(
            out.rows(),
            r.len(),
            "map_rows output must keep the row count"
        );
        out
    });
    let cols = parts[0].cols();
    let mut out = Matrix::zeros(n, cols);
    let mut row = 0;
    for part in &parts {
        assert_eq!(
            part.cols(),
            cols,
            "map_rows chunk outputs disagree in width"
        );
        for r in 0..part.rows() {
            out.row_mut(row).copy_from_slice(part.row(r));
            row += 1;
        }
    }
    out
}

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Test helper: sets `CPSMON_THREADS` for the guard's lifetime and restores
/// the previous value on drop, holding a process-wide lock so concurrent
/// tests cannot race on the variable.
///
/// Results never depend on the thread count (that is the point of the
/// determinism contract), so a racing *reader* is harmless — the lock only
/// serializes tests that each want a specific setting.
pub struct ThreadsGuard {
    prev: Option<String>,
    _lock: MutexGuard<'static, ()>,
}

impl ThreadsGuard {
    /// Pins the fan-out width to `n` threads until the guard is dropped.
    pub fn set(n: usize) -> Self {
        let lock = ENV_LOCK
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let prev = std::env::var("CPSMON_THREADS").ok();
        std::env::set_var("CPSMON_THREADS", n.to_string());
        Self { prev, _lock: lock }
    }
}

impl Drop for ThreadsGuard {
    fn drop(&mut self) {
        match &self.prev {
            Some(v) => std::env::set_var("CPSMON_THREADS", v),
            None => std::env::remove_var("CPSMON_THREADS"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly() {
        assert_eq!(chunk_ranges(0, 4), vec![]);
        assert_eq!(chunk_ranges(3, 4), vec![0..3]);
        assert_eq!(chunk_ranges(8, 4), vec![0..4, 4..8]);
        assert_eq!(chunk_ranges(9, 4), vec![0..4, 4..8, 8..9]);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_rejected() {
        let _ = chunk_ranges(5, 0);
    }

    #[test]
    fn run_chunks_preserves_chunk_order() {
        let _guard = ThreadsGuard::set(4);
        let out = run_chunks(103, 10, |r| r.start);
        let expected: Vec<usize> = (0..11).map(|i| i * 10).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn run_chunks_same_result_across_thread_counts() {
        let serial = {
            let _guard = ThreadsGuard::set(1);
            run_chunks(57, 8, |r| r.map(|i| i * i).sum::<usize>())
        };
        for threads in [2usize, 3, 8] {
            let _guard = ThreadsGuard::set(threads);
            assert_eq!(
                run_chunks(57, 8, |r| r.map(|i| i * i).sum::<usize>()),
                serial
            );
        }
    }

    #[test]
    fn nested_fanout_runs_serially() {
        let _guard = ThreadsGuard::set(4);
        let out = run_chunks(4, 1, |outer| {
            // Inside a worker, max_threads() must report 1 so that nested
            // run_chunks calls execute inline.
            assert_eq!(max_threads(), 1);
            run_chunks(3, 1, move |inner| outer.start * 10 + inner.start)
        });
        assert_eq!(
            out,
            vec![
                vec![0, 1, 2],
                vec![10, 11, 12],
                vec![20, 21, 22],
                vec![30, 31, 32]
            ]
        );
    }

    #[test]
    fn map_rows_matches_direct_apply() {
        let x = Matrix::from_vec(10, 3, (0..30).map(|v| v as f64).collect());
        let direct = x.map(|v| v * 2.0);
        let _guard = ThreadsGuard::set(3);
        let mapped = map_rows(&x, 4, |_, chunk| chunk.map(|v| v * 2.0));
        assert_eq!(mapped, direct);
    }

    #[test]
    fn map_rows_passes_global_ranges() {
        let x = Matrix::zeros(9, 2);
        let out = map_rows(&x, 4, |range, chunk| {
            let mut m = chunk.clone();
            for r in 0..m.rows() {
                m.set(r, 0, (range.start + r) as f64);
            }
            m
        });
        for r in 0..9 {
            assert_eq!(out.get(r, 0), r as f64);
        }
    }

    #[test]
    fn threads_guard_restores_previous_value() {
        std::env::remove_var("CPSMON_THREADS");
        {
            let _guard = ThreadsGuard::set(7);
            assert_eq!(max_threads(), 7);
        }
        assert!(std::env::var("CPSMON_THREADS").is_err());
    }

    #[test]
    fn invalid_env_value_is_ignored() {
        let _guard = ThreadsGuard::set(2);
        std::env::set_var("CPSMON_THREADS", "not-a-number");
        assert!(max_threads() >= 1);
        std::env::set_var("CPSMON_THREADS", "2");
    }

    #[test]
    #[should_panic(expected = "worker exploded")]
    fn worker_panics_propagate() {
        let _guard = ThreadsGuard::set(2);
        let _ = run_chunks(8, 1, |r| {
            if r.start == 5 {
                panic!("worker exploded");
            }
            r.start
        });
    }
}
