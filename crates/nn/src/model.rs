//! The [`GradModel`] trait: the common surface monitors and attacks rely on.

use crate::matrix::Matrix;

/// A differentiable classifier over flat feature rows.
///
/// Sequence models (the LSTM network) also implement this by flattening the
/// window time-major (`[t0 features..., t1 features..., …]`), so attacks can
/// treat every monitor uniformly: a batch is always an `N × input_width`
/// matrix and the input gradient comes back in the same shape.
///
/// This trait is object-safe; the attack toolkit works with
/// `&dyn GradModel`.
///
/// `Sync` is a supertrait so that attack crafting and robustness sweeps can
/// share one model across the data-parallel workers of [`crate::par`]
/// (`&dyn GradModel` must cross scoped-thread boundaries).
pub trait GradModel: Sync {
    /// Number of output classes.
    fn classes(&self) -> usize;

    /// Width of a flattened input row.
    fn input_width(&self) -> usize;

    /// Class probabilities for a batch (`N × classes`, rows sum to 1).
    fn predict_proba(&self, x: &Matrix) -> Matrix;

    /// Gradient of the mean cross-entropy loss `J(x, labels)` with respect
    /// to the input batch — the `∇_x J` of FGSM (Eq. 4 of the paper).
    fn input_gradient(&self, x: &Matrix, labels: &[usize]) -> Matrix;

    /// Hard class predictions (argmax of [`predict_proba`](Self::predict_proba)).
    fn predict_labels(&self, x: &Matrix) -> Vec<usize> {
        self.predict_proba(x).argmax_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Constant;

    impl GradModel for Constant {
        fn classes(&self) -> usize {
            2
        }
        fn input_width(&self) -> usize {
            3
        }
        fn predict_proba(&self, x: &Matrix) -> Matrix {
            let mut p = Matrix::zeros(x.rows(), 2);
            for r in 0..x.rows() {
                p.set(r, 0, 0.25);
                p.set(r, 1, 0.75);
            }
            p
        }
        fn input_gradient(&self, x: &Matrix, _labels: &[usize]) -> Matrix {
            Matrix::zeros(x.rows(), x.cols())
        }
    }

    #[test]
    fn default_predict_labels_uses_argmax() {
        let m = Constant;
        let x = Matrix::zeros(4, 3);
        assert_eq!(m.predict_labels(&x), vec![1, 1, 1, 1]);
    }

    #[test]
    fn trait_is_object_safe() {
        let m = Constant;
        let dyn_m: &dyn GradModel = &m;
        assert_eq!(dyn_m.classes(), 2);
    }
}
