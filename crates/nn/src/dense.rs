//! Fully connected (dense) layers.

use crate::init::he_uniform;
use crate::matrix::Matrix;
use crate::rng::SmallRng;

/// A fully connected layer computing `z = x·W + b` (no activation — the
/// caller applies ReLU/softmax so that backward passes can compose cleanly).
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    w: Matrix,
    b: Matrix,
}

/// Weight gradients produced by [`Dense::backward`].
#[derive(Debug, Clone)]
pub struct DenseGrads {
    /// Gradient of the loss w.r.t. the weight matrix.
    pub dw: Matrix,
    /// Gradient of the loss w.r.t. the bias row vector.
    pub db: Matrix,
}

impl Dense {
    /// Creates a layer with He-uniform weights and zero bias.
    pub fn new(input_dim: usize, output_dim: usize, rng: &mut SmallRng) -> Self {
        Self {
            w: he_uniform(input_dim, output_dim, rng),
            b: Matrix::zeros(1, output_dim),
        }
    }

    /// Builds a layer from explicit parameters (used in tests and by the
    /// black-box substitute builder).
    ///
    /// # Panics
    ///
    /// Panics if `b` is not `1 × w.cols()`.
    pub fn from_params(w: Matrix, b: Matrix) -> Self {
        assert_eq!(b.rows(), 1, "bias must be a row vector");
        assert_eq!(b.cols(), w.cols(), "bias width must match weight columns");
        Self { w, b }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.w.cols()
    }

    /// Number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Borrow of the weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Borrow of the bias row.
    pub fn bias(&self) -> &Matrix {
        &self.b
    }

    /// Forward pass: `z = x·W + b`, computed by the fused
    /// [`Matrix::matmul_add_bias`] kernel (one pass over `z`).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != input_dim`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        x.matmul_add_bias(&self.w, &self.b)
    }

    /// [`forward`](Self::forward) writing into a caller-owned scratch buffer
    /// of shape `x.rows() × output_dim`.
    ///
    /// # Panics
    ///
    /// Panics on any shape mismatch.
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        x.matmul_add_bias_into(&self.w, &self.b, out);
    }

    /// Backward pass given the upstream gradient `dz` and the cached input
    /// `x` of the forward pass. Returns the weight gradients and the
    /// gradient w.r.t. the input (for deeper layers / FGSM).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn backward(&self, x: &Matrix, dz: &Matrix) -> (DenseGrads, Matrix) {
        assert_eq!(dz.cols(), self.output_dim(), "dz width mismatch");
        assert_eq!(x.rows(), dz.rows(), "batch size mismatch");
        let dw = x.transpose_matmul(dz);
        let db = dz.sum_rows();
        let dx = dz.matmul_transpose(&self.w);
        (DenseGrads { dw, db }, dx)
    }

    /// Applies one Adam update using slots starting at `offset`; returns the
    /// next free offset.
    pub fn apply_update(
        &mut self,
        trainer: &mut crate::adam::AdamTrainer,
        offset: usize,
        grads: &DenseGrads,
    ) -> usize {
        let off = trainer.update(offset, &mut self.w, &grads.dw);
        trainer.update(off, &mut self.b, &grads.db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::numeric_input_grad;

    #[test]
    fn forward_matches_manual_computation() {
        let w = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
        let b = Matrix::row_vector(&[0.5, -0.5]);
        let layer = Dense::from_params(w, b);
        let x = Matrix::from_rows(&[&[3.0, 4.0]]);
        let z = layer.forward(&x);
        assert_eq!(z, Matrix::from_rows(&[&[3.5, 7.5]]));
    }

    #[test]
    fn backward_input_grad_matches_finite_difference() {
        let mut rng = SmallRng::new(42);
        let layer = Dense::new(4, 3, &mut rng);
        let x = crate::init::random_normal(2, 4, 1.0, &mut rng);
        // Scalar objective: sum of outputs.
        let dz = Matrix::filled(2, 3, 1.0);
        let (_, dx) = layer.backward(&x, &dz);
        let num = numeric_input_grad(&x, 1e-5, |xp| layer.forward(xp).sum());
        for (a, n) in dx.as_slice().iter().zip(num.as_slice()) {
            assert!((a - n).abs() < 1e-5, "analytic {a} vs numeric {n}");
        }
    }

    #[test]
    fn backward_weight_grad_matches_finite_difference() {
        let mut rng = SmallRng::new(43);
        let layer = Dense::new(3, 2, &mut rng);
        let x = crate::init::random_normal(4, 3, 1.0, &mut rng);
        let dz = Matrix::filled(4, 2, 1.0);
        let (grads, _) = layer.backward(&x, &dz);
        let h = 1e-5;
        for r in 0..3 {
            for c in 0..2 {
                let mut wp = layer.w.clone();
                wp.set(r, c, wp.get(r, c) + h);
                let mut wm = layer.w.clone();
                wm.set(r, c, wm.get(r, c) - h);
                let lp = Dense::from_params(wp, layer.b.clone()).forward(&x).sum();
                let lm = Dense::from_params(wm, layer.b.clone()).forward(&x).sum();
                let num = (lp - lm) / (2.0 * h);
                assert!((grads.dw.get(r, c) - num).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn bias_grad_is_column_sum() {
        let mut rng = SmallRng::new(44);
        let layer = Dense::new(2, 2, &mut rng);
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let dz = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let (grads, _) = layer.backward(&x, &dz);
        assert_eq!(grads.db, Matrix::row_vector(&[9.0, 12.0]));
    }

    #[test]
    fn param_count_counts_all() {
        let mut rng = SmallRng::new(45);
        let layer = Dense::new(10, 7, &mut rng);
        assert_eq!(layer.param_count(), 10 * 7 + 7);
    }
}
