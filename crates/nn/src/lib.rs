//! # cpsmon-nn — a small, deterministic neural-network substrate
//!
//! The paper trains its safety monitors with TensorFlow; no comparable
//! framework exists in the offline Rust ecosystem, so this crate implements
//! the required subset from scratch:
//!
//! - [`Matrix`]: a row-major `f64` matrix with a blocked GEMM kernel.
//! - [`simd`]: runtime-dispatched AVX2+FMA microkernels behind the GEMM,
//!   softmax, sigmoid/tanh, and fused-LSTM-step hot loops, with the
//!   portable scalar kernels as fallback (`CPSMON_SIMD=0` forces them).
//! - [`Dense`]: fully connected layers with ReLU / linear activations.
//! - [`Lstm`]: a standard LSTM layer with full backpropagation through time.
//! - [`MlpNet`] / [`LstmNet`]: the two monitor architectures used in the
//!   paper (MLP 256-128 and stacked LSTM 128-64 over 6 timesteps), both with
//!   softmax heads trained by sparse categorical cross-entropy and Adam.
//! - [`SemanticLoss`]: the knowledge-integration term of Eq. 2 of the paper,
//!   `loss = loss_ex + w·|p_unsafe − I(φ)|`.
//! - **Input gradients**: both networks expose `input_gradient`, the exact
//!   gradient of the loss with respect to the *input*, which is what the
//!   FGSM attack (Eq. 3–4) needs.
//!
//! Everything is deterministic: all stochastic operations take an explicit
//! seed through [`rng::SmallRng`]; there is no global RNG and no
//! platform-dependent behaviour.
//!
//! ## Example
//!
//! ```
//! use cpsmon_nn::{GradModel, Matrix, MlpNet, MlpConfig};
//!
//! // Learn XOR with a tiny MLP.
//! let x = Matrix::from_rows(&[&[0., 0.], &[0., 1.], &[1., 0.], &[1., 1.]]);
//! let y = vec![0usize, 1, 1, 0];
//! let mut net = MlpNet::new(&MlpConfig {
//!     input_dim: 2,
//!     hidden: vec![16, 16],
//!     classes: 2,
//!     seed: 1,
//! });
//! let mut trainer = cpsmon_nn::AdamTrainer::new(net.param_count(), 0.05);
//! for _ in 0..400 {
//!     net.train_batch(&x, &y, None, &mut trainer);
//! }
//! let p = net.predict_proba(&x);
//! assert!(p.get(0, 0) > 0.5 && p.get(1, 1) > 0.5);
//! ```

#![warn(missing_docs)]

pub mod activation;
pub mod adam;
pub mod dense;
pub mod error;
pub mod gradcheck;
pub mod gru;
pub mod gru_net;
pub mod init;
pub mod loss;
pub mod lstm;
pub mod lstm_net;
pub mod matrix;
pub mod mlp_net;
pub mod model;
pub mod par;
pub mod rng;
pub mod serialize;
pub mod simd;

pub use adam::AdamTrainer;
pub use dense::Dense;
pub use error::NnError;
pub use gru::Gru;
pub use gru_net::{GruConfig, GruNet};
pub use loss::SemanticLoss;
pub use lstm::{Lstm, LstmScratch};
pub use lstm_net::{LstmConfig, LstmNet, LstmNetF32, LstmNetScratch, LstmStreamState};
pub use matrix::Matrix;
pub use mlp_net::{MlpConfig, MlpNet, MlpScratch};
pub use model::GradModel;
pub use serialize::{LoadError, WeightPrecision};
