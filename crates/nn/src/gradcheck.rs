//! Finite-difference utilities used by the gradient-check tests.
//!
//! Exact analytic gradients are the load-bearing part of this crate: FGSM
//! (Eq. 3–4 of the paper) perturbs inputs along `sign(∇_x J)`, so a wrong
//! input gradient silently produces a wrong attack. Every layer's tests use
//! these helpers to validate gradients against central differences.

use crate::matrix::Matrix;

/// Central-difference gradient of a scalar objective `f` with respect to
/// every element of `x`.
///
/// Cost is `2 · x.len()` evaluations of `f` — keep inputs tiny in tests.
pub fn numeric_input_grad(x: &Matrix, h: f64, f: impl Fn(&Matrix) -> f64) -> Matrix {
    let mut grad = Matrix::zeros(x.rows(), x.cols());
    for r in 0..x.rows() {
        for c in 0..x.cols() {
            let mut plus = x.clone();
            plus.set(r, c, plus.get(r, c) + h);
            let mut minus = x.clone();
            minus.set(r, c, minus.get(r, c) - h);
            grad.set(r, c, (f(&plus) - f(&minus)) / (2.0 * h));
        }
    }
    grad
}

/// Maximum element-wise discrepancy between two gradients, normalized by
/// `max(1, |a|, |b|)` so it is meaningful for both tiny and large values.
pub fn max_relative_error(analytic: &Matrix, numeric: &Matrix) -> f64 {
    assert_eq!(analytic.shape(), numeric.shape(), "gradient shape mismatch");
    analytic
        .as_slice()
        .iter()
        .zip(numeric.as_slice())
        .map(|(&a, &n)| (a - n).abs() / 1.0f64.max(a.abs()).max(n.abs()))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_grad_of_quadratic() {
        // f(x) = sum(x^2) → grad = 2x.
        let x = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);
        let g = numeric_input_grad(&x, 1e-5, |m| m.as_slice().iter().map(|v| v * v).sum());
        let expected = x.scale(2.0);
        assert!(max_relative_error(&expected, &g) < 1e-8);
    }

    #[test]
    fn relative_error_detects_mismatch() {
        let a = Matrix::row_vector(&[1.0, 2.0]);
        let b = Matrix::row_vector(&[1.0, 2.5]);
        assert!(max_relative_error(&a, &b) > 0.1);
    }
}
