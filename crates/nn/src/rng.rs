//! A tiny deterministic pseudo-random number generator.
//!
//! The whole reproduction must be bit-for-bit deterministic across runs and
//! platforms, so instead of threading an external RNG crate through every
//! layer we use a self-contained [xoshiro256++] generator seeded via
//! SplitMix64 — the standard, well-tested construction. It is *not*
//! cryptographically secure and does not need to be.
//!
//! [xoshiro256++]: https://prng.di.unimi.it/

/// Deterministic xoshiro256++ generator with convenience samplers.
///
/// # Examples
///
/// ```
/// use cpsmon_nn::rng::SmallRng;
///
/// let mut a = SmallRng::new(42);
/// let mut b = SmallRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SmallRng {
    s: [u64; 4],
    /// Cached second sample from the Box–Muller transform.
    gauss_spare: Option<f64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
            gauss_spare: None,
        }
    }

    /// Derives an independent child generator; useful for giving each
    /// patient / trace / layer its own stream.
    pub fn fork(&mut self, stream: u64) -> SmallRng {
        SmallRng::new(self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits → uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid range {lo}..{hi}"
        );
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        // Modulo bias is negligible for n << 2^64 (all our uses).
        (self.next_u64() % n as u64) as usize
    }

    /// Bernoulli sample with probability `p` of `true`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Rejection-free polar-less form; u1 bounded away from zero.
        let u1 = self.uniform().max(1e-300);
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev < 0`.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        mean + std_dev * self.normal()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::new(123);
        let mut b = SmallRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::new(1);
        let mut b = SmallRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = SmallRng::new(7);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut rng = SmallRng::new(11);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = SmallRng::new(13);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean was {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance was {var}");
    }

    #[test]
    fn normal_with_scales_and_shifts() {
        let mut rng = SmallRng::new(17);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal_with(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean was {mean}");
        assert!((var - 4.0).abs() < 0.15, "variance was {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::new(19);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..100).collect::<Vec<_>>(),
            "shuffle left slice sorted"
        );
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = SmallRng::new(5);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn index_bounds() {
        let mut rng = SmallRng::new(23);
        for _ in 0..1000 {
            assert!(rng.index(7) < 7);
        }
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = SmallRng::new(29);
        let n = 50_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate was {rate}");
    }
}
