//! Weight initialization schemes.

use crate::matrix::Matrix;
use crate::rng::SmallRng;

/// Glorot/Xavier uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Suitable for tanh/sigmoid layers
/// (the LSTM gates) and acceptable for small ReLU stacks.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut SmallRng) -> Matrix {
    let a = (6.0 / (rows + cols) as f64).sqrt();
    random_uniform(rows, cols, -a, a, rng)
}

/// He/Kaiming uniform initialization: `U(-a, a)` with `a = sqrt(6 / fan_in)`.
/// The standard choice for ReLU layers.
pub fn he_uniform(rows: usize, cols: usize, rng: &mut SmallRng) -> Matrix {
    let a = (6.0 / rows as f64).sqrt();
    random_uniform(rows, cols, -a, a, rng)
}

/// Matrix with i.i.d. uniform entries in `[lo, hi)`.
pub fn random_uniform(rows: usize, cols: usize, lo: f64, hi: f64, rng: &mut SmallRng) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.uniform_range(lo, hi);
    }
    m
}

/// Matrix with i.i.d. standard-normal entries scaled by `std_dev`.
pub fn random_normal(rows: usize, cols: usize, std_dev: f64, rng: &mut SmallRng) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.normal() * std_dev;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_bound_respected() {
        let mut rng = SmallRng::new(1);
        let m = xavier_uniform(30, 10, &mut rng);
        let a = (6.0 / 40.0f64).sqrt();
        assert!(m.max_abs() <= a);
        assert!(m.max_abs() > 0.0);
    }

    #[test]
    fn he_bound_respected() {
        let mut rng = SmallRng::new(2);
        let m = he_uniform(24, 8, &mut rng);
        let a = (6.0 / 24.0f64).sqrt();
        assert!(m.max_abs() <= a);
    }

    #[test]
    fn init_is_deterministic() {
        let a = xavier_uniform(5, 5, &mut SmallRng::new(9));
        let b = xavier_uniform(5, 5, &mut SmallRng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    fn normal_init_scales() {
        let mut rng = SmallRng::new(3);
        let m = random_normal(100, 100, 0.01, &mut rng);
        let std = (m.as_slice().iter().map(|v| v * v).sum::<f64>() / m.len() as f64).sqrt();
        assert!((std - 0.01).abs() < 0.002, "std was {std}");
    }
}
