//! A GRU layer (Cho et al., 2014) with full backpropagation through time.
//!
//! Provided as the architecture-ablation counterpart to [`crate::lstm`]:
//! the paper evaluates MLP vs LSTM and leaves broader architecture studies
//! to future work; the GRU is the standard lighter-weight recurrent cell
//! to compare against.
//!
//! Gates (original formulation, reset applied to the hidden state before
//! the candidate matmul):
//!
//! ```text
//! z = σ(x·Wxz + h·Whz + bz)          update gate
//! r = σ(x·Wxr + h·Whr + br)          reset gate
//! n = tanh(x·Wxn + (r⊙h)·Whn + bn)   candidate
//! h' = (1−z)⊙n + z⊙h
//! ```

use crate::activation::{sigmoid, tanh};
use crate::init::xavier_uniform;
use crate::matrix::Matrix;
use crate::rng::SmallRng;

/// One GRU layer (`input_dim → hidden_dim`).
#[derive(Debug, Clone, PartialEq)]
pub struct Gru {
    wxz: Matrix,
    wxr: Matrix,
    wxn: Matrix,
    whz: Matrix,
    whr: Matrix,
    whn: Matrix,
    bz: Matrix,
    br: Matrix,
    bn: Matrix,
    input_dim: usize,
    hidden_dim: usize,
}

/// Per-timestep values cached for the backward pass.
#[derive(Debug, Clone)]
struct StepCache {
    x: Matrix,
    h_prev: Matrix,
    z: Matrix,
    r: Matrix,
    n: Matrix,
    rh: Matrix,
}

/// Forward-pass cache consumed by [`Gru::backward`].
#[derive(Debug, Clone)]
pub struct GruCache {
    steps: Vec<StepCache>,
}

/// Weight gradients produced by [`Gru::backward`], in the same parameter
/// order as [`Gru::apply_update`] consumes them.
#[derive(Debug, Clone)]
pub struct GruGrads {
    /// Gradients for `[wxz, wxr, wxn, whz, whr, whn]`.
    pub dw: [Matrix; 6],
    /// Gradients for `[bz, br, bn]`.
    pub db: [Matrix; 3],
}

impl Gru {
    /// Creates a layer with Xavier-uniform weights and zero biases.
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut SmallRng) -> Self {
        Self {
            wxz: xavier_uniform(input_dim, hidden_dim, rng),
            wxr: xavier_uniform(input_dim, hidden_dim, rng),
            wxn: xavier_uniform(input_dim, hidden_dim, rng),
            whz: xavier_uniform(hidden_dim, hidden_dim, rng),
            whr: xavier_uniform(hidden_dim, hidden_dim, rng),
            whn: xavier_uniform(hidden_dim, hidden_dim, rng),
            bz: Matrix::zeros(1, hidden_dim),
            br: Matrix::zeros(1, hidden_dim),
            bn: Matrix::zeros(1, hidden_dim),
            input_dim,
            hidden_dim,
        }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden-state width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Number of trainable scalars.
    pub fn param_count(&self) -> usize {
        3 * (self.input_dim * self.hidden_dim)
            + 3 * (self.hidden_dim * self.hidden_dim)
            + 3 * self.hidden_dim
    }

    /// The nine parameter matrices in
    /// `[wxz, wxr, wxn, whz, whr, whn, bz, br, bn]` order (the layout
    /// [`from_params`](Self::from_params) consumes).
    pub fn params(&self) -> [&Matrix; 9] {
        [
            &self.wxz, &self.wxr, &self.wxn, &self.whz, &self.whr, &self.whn, &self.bz, &self.br,
            &self.bn,
        ]
    }

    /// Rebuilds a layer from the matrices of [`params`](Self::params) (used
    /// by deserialization).
    ///
    /// # Errors
    ///
    /// Returns a description of the first shape inconsistency, if any.
    pub fn from_params(ms: [Matrix; 9]) -> Result<Gru, String> {
        let [wxz, wxr, wxn, whz, whr, whn, bz, br, bn] = ms;
        let input_dim = wxz.rows();
        let hidden_dim = wxz.cols();
        if input_dim == 0 || hidden_dim == 0 {
            return Err("GRU dimensions must be positive".into());
        }
        for (name, m) in [("wxr", &wxr), ("wxn", &wxn)] {
            if m.rows() != input_dim || m.cols() != hidden_dim {
                return Err(format!("{name} shape inconsistent with wxz"));
            }
        }
        for (name, m) in [("whz", &whz), ("whr", &whr), ("whn", &whn)] {
            if m.rows() != hidden_dim || m.cols() != hidden_dim {
                return Err(format!("{name} must be hidden×hidden"));
            }
        }
        for (name, m) in [("bz", &bz), ("br", &br), ("bn", &bn)] {
            if m.rows() != 1 || m.cols() != hidden_dim {
                return Err(format!("{name} must be a 1×hidden row vector"));
            }
        }
        Ok(Gru {
            wxz,
            wxr,
            wxn,
            whz,
            whr,
            whn,
            bz,
            br,
            bn,
            input_dim,
            hidden_dim,
        })
    }

    /// Runs the layer over a sequence; returns per-step hidden states and
    /// the backward cache.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or any step has the wrong width.
    pub fn forward(&self, xs: &[Matrix]) -> (Vec<Matrix>, GruCache) {
        assert!(!xs.is_empty(), "GRU forward needs at least one timestep");
        let n_rows = xs[0].rows();
        let mut h = Matrix::zeros(n_rows, self.hidden_dim);
        let mut hs = Vec::with_capacity(xs.len());
        let mut steps = Vec::with_capacity(xs.len());
        // Pre-activation scratch reused across timesteps.
        let mut pre = Matrix::zeros(n_rows, self.hidden_dim);
        for x in xs {
            assert_eq!(x.cols(), self.input_dim, "timestep width mismatch");
            x.matmul_add_bias_into(&self.wxz, &self.bz, &mut pre);
            h.matmul_acc(&self.whz, &mut pre);
            let z = sigmoid(&pre);
            x.matmul_add_bias_into(&self.wxr, &self.br, &mut pre);
            h.matmul_acc(&self.whr, &mut pre);
            let r = sigmoid(&pre);
            let rh = r.hadamard(&h);
            x.matmul_add_bias_into(&self.wxn, &self.bn, &mut pre);
            rh.matmul_acc(&self.whn, &mut pre);
            let n = tanh(&pre);
            // h' = (1−z)⊙n + z⊙h
            let h_new = &n.hadamard(&z.map(|v| 1.0 - v)) + &z.hadamard(&h);
            steps.push(StepCache {
                x: x.clone(),
                h_prev: h,
                z,
                r,
                n,
                rh,
            });
            hs.push(h_new.clone());
            h = h_new;
        }
        (hs, GruCache { steps })
    }

    /// Forward pass that keeps only the per-step hidden states (the
    /// prediction path) — no backward caches, no per-step clones.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or any step has the wrong width.
    pub fn forward_only(&self, xs: &[Matrix]) -> Vec<Matrix> {
        assert!(!xs.is_empty(), "GRU forward needs at least one timestep");
        let n_rows = xs[0].rows();
        let mut h = Matrix::zeros(n_rows, self.hidden_dim);
        let mut hs = Vec::with_capacity(xs.len());
        let mut pre = Matrix::zeros(n_rows, self.hidden_dim);
        for x in xs {
            assert_eq!(x.cols(), self.input_dim, "timestep width mismatch");
            x.matmul_add_bias_into(&self.wxz, &self.bz, &mut pre);
            h.matmul_acc(&self.whz, &mut pre);
            let z = sigmoid(&pre);
            x.matmul_add_bias_into(&self.wxr, &self.br, &mut pre);
            h.matmul_acc(&self.whr, &mut pre);
            let r = sigmoid(&pre);
            let rh = r.hadamard(&h);
            x.matmul_add_bias_into(&self.wxn, &self.bn, &mut pre);
            rh.matmul_acc(&self.whn, &mut pre);
            let n = tanh(&pre);
            h = &n.hadamard(&z.map(|v| 1.0 - v)) + &z.hadamard(&h);
            hs.push(h.clone());
        }
        hs
    }

    /// BPTT backward pass; `dhs[t]` is the loss gradient w.r.t. the hidden
    /// state at step `t`. Returns weight gradients and per-step input
    /// gradients.
    ///
    /// # Panics
    ///
    /// Panics if `dhs.len()` differs from the cached timestep count.
    pub fn backward(&self, cache: &GruCache, dhs: &[Matrix]) -> (GruGrads, Vec<Matrix>) {
        let (grads, dxs) = self.backward_impl(cache, dhs, true);
        (grads.expect("weight grads requested"), dxs)
    }

    /// BPTT backward pass that computes only the input gradients, skipping
    /// the six weight-gradient matmuls per timestep (the attack path).
    ///
    /// # Panics
    ///
    /// Panics if `dhs.len()` differs from the cached timestep count.
    pub fn backward_input_only(&self, cache: &GruCache, dhs: &[Matrix]) -> Vec<Matrix> {
        self.backward_impl(cache, dhs, false).1
    }

    fn backward_impl(
        &self,
        cache: &GruCache,
        dhs: &[Matrix],
        want_weight_grads: bool,
    ) -> (Option<GruGrads>, Vec<Matrix>) {
        assert_eq!(dhs.len(), cache.steps.len(), "dhs/timestep count mismatch");
        let t_len = cache.steps.len();
        let n_rows = cache.steps[0].x.rows();
        let mut grads = want_weight_grads.then(|| GruGrads {
            dw: [
                Matrix::zeros(self.input_dim, self.hidden_dim),
                Matrix::zeros(self.input_dim, self.hidden_dim),
                Matrix::zeros(self.input_dim, self.hidden_dim),
                Matrix::zeros(self.hidden_dim, self.hidden_dim),
                Matrix::zeros(self.hidden_dim, self.hidden_dim),
                Matrix::zeros(self.hidden_dim, self.hidden_dim),
            ],
            db: [
                Matrix::zeros(1, self.hidden_dim),
                Matrix::zeros(1, self.hidden_dim),
                Matrix::zeros(1, self.hidden_dim),
            ],
        });
        let mut dxs = vec![Matrix::zeros(0, 0); t_len];
        let mut dh_next = Matrix::zeros(n_rows, self.hidden_dim);
        for t in (0..t_len).rev() {
            let s = &cache.steps[t];
            let dh = &dhs[t] + &dh_next;
            // h' = (1−z)⊙n + z⊙h_prev
            let dz = dh.hadamard(&(&s.h_prev - &s.n));
            let dn = dh.hadamard(&s.z.map(|v| 1.0 - v));
            let mut dh_prev = dh.hadamard(&s.z);
            // Candidate path: n = tanh(zn), zn = x·Wxn + rh·Whn + bn.
            let dzn = dn.hadamard(&s.n.map(|v| 1.0 - v * v));
            let drh = dzn.matmul_tb(&self.whn);
            let dr = drh.hadamard(&s.h_prev);
            dh_prev += &drh.hadamard(&s.r);
            // Gate paths.
            let dzz = dz.hadamard(&s.z).hadamard(&s.z.map(|v| 1.0 - v));
            let dzr = dr.hadamard(&s.r).hadamard(&s.r.map(|v| 1.0 - v));
            if let Some(g) = grads.as_mut() {
                g.dw[0] += &s.x.transpose_matmul(&dzz);
                g.dw[1] += &s.x.transpose_matmul(&dzr);
                g.dw[2] += &s.x.transpose_matmul(&dzn);
                g.dw[3] += &s.h_prev.transpose_matmul(&dzz);
                g.dw[4] += &s.h_prev.transpose_matmul(&dzr);
                g.dw[5] += &s.rh.transpose_matmul(&dzn);
                g.db[0] += &dzz.sum_rows();
                g.db[1] += &dzr.sum_rows();
                g.db[2] += &dzn.sum_rows();
            }
            let mut dx = dzn.matmul_tb(&self.wxn);
            dx += &dzz.matmul_tb(&self.wxz);
            dx += &dzr.matmul_tb(&self.wxr);
            dxs[t] = dx;
            dh_prev += &dzz.matmul_tb(&self.whz);
            dh_prev += &dzr.matmul_tb(&self.whr);
            dh_next = dh_prev;
        }
        (grads, dxs)
    }

    /// Applies one Adam update using slots starting at `offset`; returns
    /// the next free offset.
    pub fn apply_update(
        &mut self,
        trainer: &mut crate::adam::AdamTrainer,
        offset: usize,
        grads: &GruGrads,
    ) -> usize {
        let params: [&mut Matrix; 6] = [
            &mut self.wxz,
            &mut self.wxr,
            &mut self.wxn,
            &mut self.whz,
            &mut self.whr,
            &mut self.whn,
        ];
        let mut off = offset;
        for (p, g) in params.into_iter().zip(grads.dw.iter()) {
            off = trainer.update(off, p, g);
        }
        let biases: [&mut Matrix; 3] = [&mut self.bz, &mut self.br, &mut self.bn];
        for (p, g) in biases.into_iter().zip(grads.db.iter()) {
            off = trainer.update(off, p, g);
        }
        off
    }

    /// Test-only weight perturbation (finite-difference checks).
    #[doc(hidden)]
    pub fn perturb(&mut self, which: usize, r: usize, c: usize, delta: f64) {
        let m = match which {
            0 => &mut self.wxz,
            1 => &mut self.wxr,
            2 => &mut self.wxn,
            3 => &mut self.whz,
            4 => &mut self.whr,
            _ => &mut self.whn,
        };
        m.set(r, c, m.get(r, c) + delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{max_relative_error, numeric_input_grad};
    use crate::init::random_normal;

    fn objective(gru: &Gru, xs: &[Matrix]) -> f64 {
        let (hs, _) = gru.forward(xs);
        hs.iter().map(Matrix::sum).sum()
    }

    #[test]
    fn forward_shapes_and_bounds() {
        let mut rng = SmallRng::new(1);
        let gru = Gru::new(3, 5, &mut rng);
        let xs: Vec<Matrix> = (0..4).map(|_| random_normal(2, 3, 1.0, &mut rng)).collect();
        let (hs, cache) = gru.forward(&xs);
        assert_eq!(hs.len(), 4);
        assert_eq!(cache.steps.len(), 4);
        for h in &hs {
            assert_eq!(h.shape(), (2, 5));
            // h is a convex combination of tanh values and prior h ⇒ |h| < 1.
            assert!(h.max_abs() <= 1.0);
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = SmallRng::new(2);
        let gru = Gru::new(3, 4, &mut rng);
        let xs: Vec<Matrix> = (0..3).map(|_| random_normal(2, 3, 0.5, &mut rng)).collect();
        let (hs, cache) = gru.forward(&xs);
        let dhs: Vec<Matrix> = hs
            .iter()
            .map(|h| Matrix::filled(h.rows(), h.cols(), 1.0))
            .collect();
        let (_, dxs) = gru.backward(&cache, &dhs);
        for t in 0..3 {
            let num = numeric_input_grad(&xs[t], 1e-5, |xp| {
                let mut xs2 = xs.clone();
                xs2[t] = xp.clone();
                objective(&gru, &xs2)
            });
            let err = max_relative_error(&dxs[t], &num);
            assert!(err < 1e-6, "step {t} input-grad error {err}");
        }
    }

    #[test]
    fn weight_gradients_match_finite_difference() {
        let mut rng = SmallRng::new(3);
        let gru = Gru::new(2, 3, &mut rng);
        let xs: Vec<Matrix> = (0..3).map(|_| random_normal(2, 2, 0.5, &mut rng)).collect();
        let (hs, cache) = gru.forward(&xs);
        let dhs: Vec<Matrix> = hs
            .iter()
            .map(|h| Matrix::filled(h.rows(), h.cols(), 1.0))
            .collect();
        let (grads, _) = gru.backward(&cache, &dhs);
        let h = 1e-5;
        // Sample entries from every weight tensor, including recurrent ones.
        for (which, r, c) in [
            (0usize, 0, 0),
            (1, 1, 2),
            (2, 0, 1),
            (3, 2, 0),
            (4, 1, 1),
            (5, 0, 2),
        ] {
            let mut plus = gru.clone();
            plus.perturb(which, r, c, h);
            let mut minus = gru.clone();
            minus.perturb(which, r, c, -h);
            let num = (objective(&plus, &xs) - objective(&minus, &xs)) / (2.0 * h);
            let ana = grads.dw[which].get(r, c);
            assert!(
                (ana - num).abs() < 1e-6,
                "dw[{which}]({r},{c}): {ana} vs {num}"
            );
        }
    }

    #[test]
    fn gradient_flows_to_first_input_from_last_step() {
        let mut rng = SmallRng::new(4);
        let gru = Gru::new(2, 3, &mut rng);
        let xs: Vec<Matrix> = (0..4).map(|_| random_normal(1, 2, 0.5, &mut rng)).collect();
        let (hs, cache) = gru.forward(&xs);
        let mut dhs: Vec<Matrix> = hs
            .iter()
            .map(|h| Matrix::zeros(h.rows(), h.cols()))
            .collect();
        let last = dhs.len() - 1;
        dhs[last] = Matrix::filled(1, 3, 1.0);
        let (_, dxs) = gru.backward(&cache, &dhs);
        assert!(dxs[0].max_abs() > 0.0);
    }

    #[test]
    fn param_count_matches_tensors() {
        let gru = Gru::new(4, 6, &mut SmallRng::new(5));
        assert_eq!(gru.param_count(), 3 * 4 * 6 + 3 * 6 * 6 + 3 * 6);
    }

    #[test]
    fn deterministic_construction() {
        assert_eq!(
            Gru::new(3, 4, &mut SmallRng::new(6)),
            Gru::new(3, 4, &mut SmallRng::new(6))
        );
    }
}
