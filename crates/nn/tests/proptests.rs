//! Property-based tests of the linear-algebra and activation invariants
//! the training and attack code relies on.

use cpsmon_nn::activation::{relu, sigmoid_scalar, softmax_rows};
use cpsmon_nn::rng::SmallRng;
use cpsmon_nn::Matrix;
use proptest::prelude::*;

/// Strategy: a matrix of the given shape with bounded entries.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Reference GEMM implementation (naive jki order) to check the optimized
/// loop ordering against.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0;
            for k in 0..a.cols() {
                acc += a.get(i, k) * b.get(k, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

fn approx_eq(a: &Matrix, b: &Matrix, tol: f64) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #[test]
    fn matmul_matches_naive(a in matrix(4, 3), b in matrix(3, 5)) {
        prop_assert!(approx_eq(&a.matmul(&b), &naive_matmul(&a, &b), 1e-12));
    }

    #[test]
    fn matmul_associative(a in matrix(3, 3), b in matrix(3, 3), c in matrix(3, 3)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(approx_eq(&left, &right, 1e-9));
    }

    #[test]
    fn matmul_distributes_over_add(a in matrix(3, 4), b in matrix(4, 2), c in matrix(4, 2)) {
        let left = a.matmul(&(&b + &c));
        let right = &a.matmul(&b) + &a.matmul(&c);
        prop_assert!(approx_eq(&left, &right, 1e-10));
    }

    #[test]
    fn transpose_of_product(a in matrix(3, 4), b in matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(approx_eq(&left, &right, 1e-12));
    }

    #[test]
    fn fused_transpose_kernels_agree(a in matrix(4, 3), b in matrix(4, 5)) {
        // aᵀ·b via the fused kernel vs explicit transpose.
        prop_assert!(approx_eq(&a.transpose_matmul(&b), &a.transpose().matmul(&b), 1e-12));
        // a·cᵀ via the fused kernel vs explicit transpose.
        let c = Matrix::from_vec(5, 3, b.slice_rows(0, 3).transpose().into_vec());
        prop_assert!(approx_eq(&a.matmul_transpose(&c), &a.matmul(&c.transpose()), 1e-12));
    }

    #[test]
    fn identity_is_neutral(a in matrix(4, 4)) {
        prop_assert!(approx_eq(&a.matmul(&Matrix::identity(4)), &a, 0.0));
        prop_assert!(approx_eq(&Matrix::identity(4).matmul(&a), &a, 0.0));
    }

    #[test]
    fn softmax_rows_are_distributions(a in matrix(5, 4)) {
        let p = softmax_rows(&a);
        for r in 0..p.rows() {
            let sum: f64 = p.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_preserves_argmax(a in matrix(3, 5)) {
        let p = softmax_rows(&a);
        prop_assert_eq!(a.argmax_rows(), p.argmax_rows());
    }

    #[test]
    fn relu_is_idempotent_and_nonnegative(a in matrix(4, 4)) {
        let r = relu(&a);
        prop_assert!(r.as_slice().iter().all(|&v| v >= 0.0));
        prop_assert!(approx_eq(&relu(&r), &r, 0.0));
    }

    #[test]
    fn sigmoid_is_monotone(a in -20.0f64..20.0, b in -20.0f64..20.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(sigmoid_scalar(lo) <= sigmoid_scalar(hi));
    }

    #[test]
    fn rng_uniform_respects_bounds(seed in any::<u64>(), lo in -100.0f64..0.0, width in 0.001f64..100.0) {
        let mut rng = SmallRng::new(seed);
        let hi = lo + width;
        for _ in 0..50 {
            let v = rng.uniform_range(lo, hi);
            prop_assert!((lo..hi).contains(&v));
        }
    }

    #[test]
    fn frobenius_triangle_inequality(a in matrix(3, 3), b in matrix(3, 3)) {
        let sum = &a + &b;
        prop_assert!(sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-9);
    }

    #[test]
    fn select_rows_matches_manual(a in matrix(5, 3), idx in proptest::collection::vec(0usize..5, 1..6)) {
        let sel = a.select_rows(&idx);
        for (i, &r) in idx.iter().enumerate() {
            prop_assert_eq!(sel.row(i), a.row(r));
        }
    }
}
