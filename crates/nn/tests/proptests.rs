//! Property-based tests of the linear-algebra and activation invariants
//! the training and attack code relies on.

use cpsmon_nn::activation::{relu, sigmoid_scalar, softmax_rows};
use cpsmon_nn::rng::SmallRng;
use cpsmon_nn::Matrix;
use proptest::prelude::*;

/// Strategy: a matrix of the given shape with bounded entries.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// One ascending-k multiply-add step with the *active backend's* rounding:
/// unfused for the scalar kernels, fused (`mul_add`) under AVX2+FMA. The
/// bit-identity contract of the GEMM entry points is stated against this.
fn madd(acc: f64, a: f64, b: f64) -> f64 {
    if cpsmon_nn::simd::fma_active() {
        a.mul_add(b, acc)
    } else {
        acc + a * b
    }
}

/// Reference GEMM implementation (naive jki order, backend-matched
/// multiply-add) to check the optimized loop ordering against.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0;
            for k in 0..a.cols() {
                acc = madd(acc, a.get(i, k), b.get(k, j));
            }
            out.set(i, j, acc);
        }
    }
    out
}

/// Never-fused naive GEMM, the reference for kernels that stay scalar
/// under every backend (`transpose_matmul`).
fn naive_matmul_plain(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0;
            for k in 0..a.cols() {
                acc += a.get(i, k) * b.get(k, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

fn approx_eq(a: &Matrix, b: &Matrix, tol: f64) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #[test]
    fn matmul_matches_naive(a in matrix(4, 3), b in matrix(3, 5)) {
        prop_assert!(approx_eq(&a.matmul(&b), &naive_matmul(&a, &b), 1e-12));
    }

    #[test]
    fn matmul_associative(a in matrix(3, 3), b in matrix(3, 3), c in matrix(3, 3)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(approx_eq(&left, &right, 1e-9));
    }

    #[test]
    fn matmul_distributes_over_add(a in matrix(3, 4), b in matrix(4, 2), c in matrix(4, 2)) {
        let left = a.matmul(&(&b + &c));
        let right = &a.matmul(&b) + &a.matmul(&c);
        prop_assert!(approx_eq(&left, &right, 1e-10));
    }

    #[test]
    fn transpose_of_product(a in matrix(3, 4), b in matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(approx_eq(&left, &right, 1e-12));
    }

    #[test]
    fn fused_transpose_kernels_agree(a in matrix(4, 3), b in matrix(4, 5)) {
        // aᵀ·b via the fused kernel vs explicit transpose.
        prop_assert!(approx_eq(&a.transpose_matmul(&b), &a.transpose().matmul(&b), 1e-12));
        // a·cᵀ via the fused kernel vs explicit transpose.
        let c = Matrix::from_vec(5, 3, b.slice_rows(0, 3).transpose().into_vec());
        prop_assert!(approx_eq(&a.matmul_transpose(&c), &a.matmul(&c.transpose()), 1e-12));
    }

    #[test]
    fn identity_is_neutral(a in matrix(4, 4)) {
        prop_assert!(approx_eq(&a.matmul(&Matrix::identity(4)), &a, 0.0));
        prop_assert!(approx_eq(&Matrix::identity(4).matmul(&a), &a, 0.0));
    }

    #[test]
    fn softmax_rows_are_distributions(a in matrix(5, 4)) {
        let p = softmax_rows(&a);
        for r in 0..p.rows() {
            let sum: f64 = p.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_preserves_argmax(a in matrix(3, 5)) {
        let p = softmax_rows(&a);
        prop_assert_eq!(a.argmax_rows(), p.argmax_rows());
    }

    #[test]
    fn relu_is_idempotent_and_nonnegative(a in matrix(4, 4)) {
        let r = relu(&a);
        prop_assert!(r.as_slice().iter().all(|&v| v >= 0.0));
        prop_assert!(approx_eq(&relu(&r), &r, 0.0));
    }

    #[test]
    fn sigmoid_is_monotone(a in -20.0f64..20.0, b in -20.0f64..20.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(sigmoid_scalar(lo) <= sigmoid_scalar(hi));
    }

    #[test]
    fn rng_uniform_respects_bounds(seed in any::<u64>(), lo in -100.0f64..0.0, width in 0.001f64..100.0) {
        let mut rng = SmallRng::new(seed);
        let hi = lo + width;
        for _ in 0..50 {
            let v = rng.uniform_range(lo, hi);
            prop_assert!((lo..hi).contains(&v));
        }
    }

    #[test]
    fn frobenius_triangle_inequality(a in matrix(3, 3), b in matrix(3, 3)) {
        let sum = &a + &b;
        prop_assert!(sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-9);
    }

    #[test]
    fn select_rows_matches_manual(a in matrix(5, 3), idx in proptest::collection::vec(0usize..5, 1..6)) {
        let sel = a.select_rows(&idx);
        for (i, &r) in idx.iter().enumerate() {
            prop_assert_eq!(sel.row(i), a.row(r));
        }
    }
}

/// Reference A·Bᵀ with the same strictly-ascending-k accumulation (and
/// backend-matched multiply-add) the kernels guarantee.
fn naive_matmul_tb(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        for j in 0..b.rows() {
            let mut acc = 0.0;
            for k in 0..a.cols() {
                acc = madd(acc, a.get(i, k), b.get(j, k));
            }
            out.set(i, j, acc);
        }
    }
    out
}

/// Strategy: matrix dimensions that cross the kernels' unroll width (4) and
/// cache-block size (128) boundaries.
fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..9, prop_oneof![1usize..9, 120usize..140], 1usize..9)
}

proptest! {
    // The blocked/unrolled kernels accumulate every output element in
    // strictly ascending k order, so they are BIT-identical to the naive
    // triple loop — not merely close. prop_assert_eq!, not approx_eq.
    #[test]
    fn blocked_matmul_is_bit_identical((m, k, n) in dims(), seed in any::<u64>()) {
        let mut rng = SmallRng::new(seed);
        let a = cpsmon_nn::init::random_normal(m, k, 1.0, &mut rng);
        let b = cpsmon_nn::init::random_normal(k, n, 1.0, &mut rng);
        prop_assert_eq!(a.matmul(&b), naive_matmul(&a, &b));
    }

    #[test]
    fn matmul_tb_is_bit_identical((m, k, n) in dims(), seed in any::<u64>()) {
        let mut rng = SmallRng::new(seed);
        let a = cpsmon_nn::init::random_normal(m, k, 1.0, &mut rng);
        let b = cpsmon_nn::init::random_normal(n, k, 1.0, &mut rng);
        prop_assert_eq!(a.matmul_tb(&b), naive_matmul_tb(&a, &b));
    }

    #[test]
    fn transpose_matmul_is_bit_identical((k, m, n) in dims(), seed in any::<u64>()) {
        let mut rng = SmallRng::new(seed);
        let a = cpsmon_nn::init::random_normal(m, k, 1.0, &mut rng);
        let b = cpsmon_nn::init::random_normal(m, n, 1.0, &mut rng);
        prop_assert_eq!(a.transpose_matmul(&b), naive_matmul_plain(&a.transpose(), &b));
    }

    #[test]
    fn matmul_acc_accumulates_bit_exactly((m, k, n) in dims(), seed in any::<u64>()) {
        let mut rng = SmallRng::new(seed);
        let a = cpsmon_nn::init::random_normal(m, k, 1.0, &mut rng);
        let b = cpsmon_nn::init::random_normal(k, n, 1.0, &mut rng);
        let mut out = cpsmon_nn::init::random_normal(m, n, 1.0, &mut rng);
        let mut expect = out.clone();
        a.matmul_acc(&b, &mut out);
        // Reference: seed-first accumulation in the same ascending k order.
        for i in 0..m {
            for j in 0..n {
                let mut acc = expect.get(i, j);
                for kk in 0..k {
                    acc = madd(acc, a.get(i, kk), b.get(kk, j));
                }
                expect.set(i, j, acc);
            }
        }
        prop_assert_eq!(out, expect);
    }
}

// ---------------------------------------------------------------------------
// SIMD vs scalar agreement: both kernel families must compute the same
// mathematical function to well under 1e-6 relative tolerance on random
// shapes, and the vector lanes must be bit-identical to their scalar-tail
// mirrors (offset/length invariance).
// ---------------------------------------------------------------------------

fn rel_close(x: f64, y: f64, tol: f64) -> bool {
    (x - y).abs() <= tol * x.abs().max(y.abs()).max(1.0)
}

#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

proptest! {
    #[test]
    fn simd_gemm_agrees_with_scalar_gemm((m, k, n) in dims(), seed in any::<u64>()) {
        #[cfg(target_arch = "x86_64")]
        {
            if avx2_available() {
                let mut rng = SmallRng::new(seed);
                let a = cpsmon_nn::init::random_normal(m, k, 1.0, &mut rng).into_vec();
                let b = cpsmon_nn::init::random_normal(k, n, 1.0, &mut rng).into_vec();
                let mut scalar = vec![0.0; m * n];
                let mut simd = vec![0.0; m * n];
                cpsmon_nn::simd::gemm_acc_scalar(&a, m, k, &b, n, &mut scalar);
                cpsmon_nn::simd::gemm_acc_fma(&a, m, k, &b, n, &mut simd);
                for (i, (&s, &v)) in scalar.iter().zip(&simd).enumerate() {
                    prop_assert!(rel_close(s, v, 1e-6), "gemm elem {}: scalar {} vs simd {}", i, s, v);
                }
            }
        }
        let _ = (m, k, n, seed);
    }

    #[test]
    fn simd_transcendental_mirrors_agree_with_libm(vals in proptest::collection::vec(-40.0f64..40.0, 1..40)) {
        // The scalar mirrors of the vector lanes vs the libm scalar kernels
        // (what the two backends respectively compute per element).
        for &v in &vals {
            prop_assert!(rel_close(cpsmon_nn::simd::sigmoid_m(v), sigmoid_scalar(v), 1e-9), "sigmoid({})", v);
            prop_assert!(rel_close(cpsmon_nn::simd::tanh_m(v), v.tanh(), 1e-9), "tanh({})", v);
            prop_assert!(rel_close(cpsmon_nn::simd::exp_m(-v.abs()), (-v.abs()).exp(), 1e-9), "exp({})", -v.abs());
        }
    }

    #[test]
    fn simd_softmax_agrees_with_scalar(vals in proptest::collection::vec(-15.0f64..15.0, 1..24)) {
        let mut scalar = vals.clone();
        cpsmon_nn::simd::softmax_row_scalar(&mut scalar);
        #[cfg(target_arch = "x86_64")]
        {
            if avx2_available() {
                // Dispatch resolves per process; exercise the AVX2 row kernel
                // through the full slice vs the scalar reference.
                let mut row = vals.clone();
                cpsmon_nn::simd::softmax_row(&mut row);
                for (i, (&s, &v)) in scalar.iter().zip(&row).enumerate() {
                    prop_assert!(rel_close(s, v, 1e-6), "softmax elem {}: {} vs {}", i, s, v);
                }
            }
        }
        let sum: f64 = scalar.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn simd_lstm_step_agrees_with_scalar(h_dim in 1usize..17, seed in any::<u64>()) {
        let mut rng = SmallRng::new(seed);
        let z = cpsmon_nn::init::random_normal(1, 4 * h_dim, 2.0, &mut rng).into_vec();
        let c0 = cpsmon_nn::init::random_normal(1, h_dim, 1.0, &mut rng).into_vec();
        let mut c_scalar = c0.clone();
        let mut h_scalar = vec![0.0; h_dim];
        cpsmon_nn::simd::lstm_step_row_scalar(&z, &mut c_scalar, &mut h_scalar, h_dim);
        let mut c_any = c0.clone();
        let mut h_any = vec![0.0; h_dim];
        cpsmon_nn::simd::lstm_step_row(&z, &mut c_any, &mut h_any, h_dim);
        for j in 0..h_dim {
            prop_assert!(rel_close(c_scalar[j], c_any[j], 1e-6), "c[{}]", j);
            prop_assert!(rel_close(h_scalar[j], h_any[j], 1e-6), "h[{}]", j);
        }
    }

    #[test]
    fn simd_slices_are_offset_invariant(vals in proptest::collection::vec(-30.0f64..30.0, 2..40), cut in 1usize..8) {
        // Processing the same values at a different offset/length must give
        // the same bits per value — the lane/tail mirror invariant that
        // makes streaming (1-row) inference bit-identical to batch.
        let cut = cut.min(vals.len() - 1);
        let mut whole = vals.clone();
        cpsmon_nn::simd::sigmoid_slice(&mut whole);
        let mut tail = vals[cut..].to_vec();
        cpsmon_nn::simd::sigmoid_slice(&mut tail);
        for (i, &v) in tail.iter().enumerate() {
            prop_assert_eq!(v.to_bits(), whole[cut + i].to_bits(), "sigmoid offset {}", i);
        }
        let mut whole_t = vals.clone();
        cpsmon_nn::simd::tanh_slice(&mut whole_t);
        let mut tail_t = vals[cut..].to_vec();
        cpsmon_nn::simd::tanh_slice(&mut tail_t);
        for (i, &v) in tail_t.iter().enumerate() {
            prop_assert_eq!(v.to_bits(), whole_t[cut + i].to_bits(), "tanh offset {}", i);
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-count invariance: the determinism contract of `cpsmon_nn::par`.
// Every data-parallel entry point must return bit-identical results for
// CPSMON_THREADS=1 and CPSMON_THREADS>1. Fewer cases: each one trains nets.
// ---------------------------------------------------------------------------

use cpsmon_nn::par::{ThreadsGuard, GRAD_CHUNK, PREDICT_CHUNK};
use cpsmon_nn::{AdamTrainer, GradModel, LstmConfig, LstmNet, MlpConfig, MlpNet};

fn labeled_batch(rows: usize, cols: usize, seed: u64) -> (Matrix, Vec<usize>) {
    let mut rng = SmallRng::new(seed);
    let x = cpsmon_nn::init::random_normal(rows, cols, 1.0, &mut rng);
    let labels = (0..rows).map(|_| rng.index(2)).collect();
    (x, labels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn mlp_is_thread_count_invariant(seed in any::<u64>(), extra in 0usize..40) {
        // Enough rows to force several PREDICT_CHUNK/GRAD_CHUNK chunks.
        let rows = 2 * GRAD_CHUNK.max(PREDICT_CHUNK) + 1 + extra;
        let (x, labels) = labeled_batch(rows, 10, seed);
        let net = MlpNet::new(&MlpConfig { input_dim: 10, hidden: vec![12], classes: 2, seed });
        let run = |threads: usize| {
            let _guard = ThreadsGuard::set(threads);
            let proba = net.predict_proba(&x);
            let grad = net.input_gradient(&x, &labels);
            let mut trained = net.clone();
            let mut tr = AdamTrainer::new(trained.param_count(), 1e-3);
            let loss = trained.train_batch(&x, &labels, None, &mut tr);
            (proba, grad, loss, trained.predict_proba(&x))
        };
        let serial = run(1);
        for threads in [2usize, 4, 8] {
            let parallel = run(threads);
            prop_assert_eq!(&serial.0, &parallel.0, "predict_proba differs at {} threads", threads);
            prop_assert_eq!(&serial.1, &parallel.1, "input_gradient differs at {} threads", threads);
            prop_assert_eq!(serial.2, parallel.2, "train loss differs at {} threads", threads);
            prop_assert_eq!(&serial.3, &parallel.3, "post-train predictions differ at {} threads", threads);
        }
    }

    #[test]
    fn lstm_is_thread_count_invariant(seed in any::<u64>()) {
        let rows = 2 * GRAD_CHUNK + 3;
        let (x, labels) = labeled_batch(rows, 8, seed);
        let net = LstmNet::new(&LstmConfig {
            feature_dim: 2, timesteps: 4, hidden: vec![5], classes: 2, seed,
        });
        let run = |threads: usize| {
            let _guard = ThreadsGuard::set(threads);
            let proba = net.predict_proba(&x);
            let grad = net.input_gradient(&x, &labels);
            let mut trained = net.clone();
            let mut tr = AdamTrainer::new(trained.param_count(), 1e-3);
            let loss = trained.train_batch(&x, &labels, None, &mut tr);
            (proba, grad, loss, trained.predict_proba(&x))
        };
        let serial = run(1);
        let parallel = run(4);
        prop_assert_eq!(serial.0, parallel.0);
        prop_assert_eq!(serial.1, parallel.1);
        prop_assert_eq!(serial.2, parallel.2);
        prop_assert_eq!(serial.3, parallel.3);
    }

    #[test]
    fn big_batch_predict_equals_rowwise_predict(seed in any::<u64>(), extra in 0usize..20) {
        // Chunked prediction must equal predicting each row alone: forward
        // passes are row-independent and chunking never mixes rows.
        let rows = PREDICT_CHUNK + 1 + extra;
        let (x, _) = labeled_batch(rows, 10, seed);
        let net = MlpNet::new(&MlpConfig { input_dim: 10, hidden: vec![9], classes: 2, seed });
        let whole = net.predict_proba(&x);
        for r in [0, PREDICT_CHUNK - 1, PREDICT_CHUNK, rows - 1] {
            let single = net.predict_proba(&x.slice_rows(r, r + 1));
            prop_assert_eq!(whole.row(r), single.row(0), "row {} differs", r);
        }
    }
}
