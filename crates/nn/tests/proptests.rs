//! Property-based tests of the linear-algebra and activation invariants
//! the training and attack code relies on.

use cpsmon_nn::activation::{relu, sigmoid_scalar, softmax_rows};
use cpsmon_nn::rng::SmallRng;
use cpsmon_nn::Matrix;
use proptest::prelude::*;

/// Strategy: a matrix of the given shape with bounded entries.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Reference GEMM implementation (naive jki order) to check the optimized
/// loop ordering against.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0;
            for k in 0..a.cols() {
                acc += a.get(i, k) * b.get(k, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

fn approx_eq(a: &Matrix, b: &Matrix, tol: f64) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #[test]
    fn matmul_matches_naive(a in matrix(4, 3), b in matrix(3, 5)) {
        prop_assert!(approx_eq(&a.matmul(&b), &naive_matmul(&a, &b), 1e-12));
    }

    #[test]
    fn matmul_associative(a in matrix(3, 3), b in matrix(3, 3), c in matrix(3, 3)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(approx_eq(&left, &right, 1e-9));
    }

    #[test]
    fn matmul_distributes_over_add(a in matrix(3, 4), b in matrix(4, 2), c in matrix(4, 2)) {
        let left = a.matmul(&(&b + &c));
        let right = &a.matmul(&b) + &a.matmul(&c);
        prop_assert!(approx_eq(&left, &right, 1e-10));
    }

    #[test]
    fn transpose_of_product(a in matrix(3, 4), b in matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(approx_eq(&left, &right, 1e-12));
    }

    #[test]
    fn fused_transpose_kernels_agree(a in matrix(4, 3), b in matrix(4, 5)) {
        // aᵀ·b via the fused kernel vs explicit transpose.
        prop_assert!(approx_eq(&a.transpose_matmul(&b), &a.transpose().matmul(&b), 1e-12));
        // a·cᵀ via the fused kernel vs explicit transpose.
        let c = Matrix::from_vec(5, 3, b.slice_rows(0, 3).transpose().into_vec());
        prop_assert!(approx_eq(&a.matmul_transpose(&c), &a.matmul(&c.transpose()), 1e-12));
    }

    #[test]
    fn identity_is_neutral(a in matrix(4, 4)) {
        prop_assert!(approx_eq(&a.matmul(&Matrix::identity(4)), &a, 0.0));
        prop_assert!(approx_eq(&Matrix::identity(4).matmul(&a), &a, 0.0));
    }

    #[test]
    fn softmax_rows_are_distributions(a in matrix(5, 4)) {
        let p = softmax_rows(&a);
        for r in 0..p.rows() {
            let sum: f64 = p.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_preserves_argmax(a in matrix(3, 5)) {
        let p = softmax_rows(&a);
        prop_assert_eq!(a.argmax_rows(), p.argmax_rows());
    }

    #[test]
    fn relu_is_idempotent_and_nonnegative(a in matrix(4, 4)) {
        let r = relu(&a);
        prop_assert!(r.as_slice().iter().all(|&v| v >= 0.0));
        prop_assert!(approx_eq(&relu(&r), &r, 0.0));
    }

    #[test]
    fn sigmoid_is_monotone(a in -20.0f64..20.0, b in -20.0f64..20.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(sigmoid_scalar(lo) <= sigmoid_scalar(hi));
    }

    #[test]
    fn rng_uniform_respects_bounds(seed in any::<u64>(), lo in -100.0f64..0.0, width in 0.001f64..100.0) {
        let mut rng = SmallRng::new(seed);
        let hi = lo + width;
        for _ in 0..50 {
            let v = rng.uniform_range(lo, hi);
            prop_assert!((lo..hi).contains(&v));
        }
    }

    #[test]
    fn frobenius_triangle_inequality(a in matrix(3, 3), b in matrix(3, 3)) {
        let sum = &a + &b;
        prop_assert!(sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-9);
    }

    #[test]
    fn select_rows_matches_manual(a in matrix(5, 3), idx in proptest::collection::vec(0usize..5, 1..6)) {
        let sel = a.select_rows(&idx);
        for (i, &r) in idx.iter().enumerate() {
            prop_assert_eq!(sel.row(i), a.row(r));
        }
    }
}

/// Reference A·Bᵀ with the same strictly-ascending-k accumulation the
/// kernels guarantee.
fn naive_matmul_tb(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        for j in 0..b.rows() {
            let mut acc = 0.0;
            for k in 0..a.cols() {
                acc += a.get(i, k) * b.get(j, k);
            }
            out.set(i, j, acc);
        }
    }
    out
}

/// Strategy: matrix dimensions that cross the kernels' unroll width (4) and
/// cache-block size (128) boundaries.
fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..9, prop_oneof![1usize..9, 120usize..140], 1usize..9)
}

proptest! {
    // The blocked/unrolled kernels accumulate every output element in
    // strictly ascending k order, so they are BIT-identical to the naive
    // triple loop — not merely close. prop_assert_eq!, not approx_eq.
    #[test]
    fn blocked_matmul_is_bit_identical((m, k, n) in dims(), seed in any::<u64>()) {
        let mut rng = SmallRng::new(seed);
        let a = cpsmon_nn::init::random_normal(m, k, 1.0, &mut rng);
        let b = cpsmon_nn::init::random_normal(k, n, 1.0, &mut rng);
        prop_assert_eq!(a.matmul(&b), naive_matmul(&a, &b));
    }

    #[test]
    fn matmul_tb_is_bit_identical((m, k, n) in dims(), seed in any::<u64>()) {
        let mut rng = SmallRng::new(seed);
        let a = cpsmon_nn::init::random_normal(m, k, 1.0, &mut rng);
        let b = cpsmon_nn::init::random_normal(n, k, 1.0, &mut rng);
        prop_assert_eq!(a.matmul_tb(&b), naive_matmul_tb(&a, &b));
    }

    #[test]
    fn transpose_matmul_is_bit_identical((k, m, n) in dims(), seed in any::<u64>()) {
        let mut rng = SmallRng::new(seed);
        let a = cpsmon_nn::init::random_normal(m, k, 1.0, &mut rng);
        let b = cpsmon_nn::init::random_normal(m, n, 1.0, &mut rng);
        prop_assert_eq!(a.transpose_matmul(&b), naive_matmul(&a.transpose(), &b));
    }

    #[test]
    fn matmul_acc_accumulates_bit_exactly((m, k, n) in dims(), seed in any::<u64>()) {
        let mut rng = SmallRng::new(seed);
        let a = cpsmon_nn::init::random_normal(m, k, 1.0, &mut rng);
        let b = cpsmon_nn::init::random_normal(k, n, 1.0, &mut rng);
        let mut out = cpsmon_nn::init::random_normal(m, n, 1.0, &mut rng);
        let mut expect = out.clone();
        a.matmul_acc(&b, &mut out);
        // Reference: seed-first accumulation in the same ascending k order.
        for i in 0..m {
            for j in 0..n {
                let mut acc = expect.get(i, j);
                for kk in 0..k {
                    acc += a.get(i, kk) * b.get(kk, j);
                }
                expect.set(i, j, acc);
            }
        }
        prop_assert_eq!(out, expect);
    }
}

// ---------------------------------------------------------------------------
// Thread-count invariance: the determinism contract of `cpsmon_nn::par`.
// Every data-parallel entry point must return bit-identical results for
// CPSMON_THREADS=1 and CPSMON_THREADS>1. Fewer cases: each one trains nets.
// ---------------------------------------------------------------------------

use cpsmon_nn::par::{ThreadsGuard, GRAD_CHUNK, PREDICT_CHUNK};
use cpsmon_nn::{AdamTrainer, GradModel, LstmConfig, LstmNet, MlpConfig, MlpNet};

fn labeled_batch(rows: usize, cols: usize, seed: u64) -> (Matrix, Vec<usize>) {
    let mut rng = SmallRng::new(seed);
    let x = cpsmon_nn::init::random_normal(rows, cols, 1.0, &mut rng);
    let labels = (0..rows).map(|_| rng.index(2)).collect();
    (x, labels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn mlp_is_thread_count_invariant(seed in any::<u64>(), extra in 0usize..40) {
        // Enough rows to force several PREDICT_CHUNK/GRAD_CHUNK chunks.
        let rows = 2 * GRAD_CHUNK.max(PREDICT_CHUNK) + 1 + extra;
        let (x, labels) = labeled_batch(rows, 10, seed);
        let net = MlpNet::new(&MlpConfig { input_dim: 10, hidden: vec![12], classes: 2, seed });
        let run = |threads: usize| {
            let _guard = ThreadsGuard::set(threads);
            let proba = net.predict_proba(&x);
            let grad = net.input_gradient(&x, &labels);
            let mut trained = net.clone();
            let mut tr = AdamTrainer::new(trained.param_count(), 1e-3);
            let loss = trained.train_batch(&x, &labels, None, &mut tr);
            (proba, grad, loss, trained.predict_proba(&x))
        };
        let serial = run(1);
        for threads in [2usize, 4, 8] {
            let parallel = run(threads);
            prop_assert_eq!(&serial.0, &parallel.0, "predict_proba differs at {} threads", threads);
            prop_assert_eq!(&serial.1, &parallel.1, "input_gradient differs at {} threads", threads);
            prop_assert_eq!(serial.2, parallel.2, "train loss differs at {} threads", threads);
            prop_assert_eq!(&serial.3, &parallel.3, "post-train predictions differ at {} threads", threads);
        }
    }

    #[test]
    fn lstm_is_thread_count_invariant(seed in any::<u64>()) {
        let rows = 2 * GRAD_CHUNK + 3;
        let (x, labels) = labeled_batch(rows, 8, seed);
        let net = LstmNet::new(&LstmConfig {
            feature_dim: 2, timesteps: 4, hidden: vec![5], classes: 2, seed,
        });
        let run = |threads: usize| {
            let _guard = ThreadsGuard::set(threads);
            let proba = net.predict_proba(&x);
            let grad = net.input_gradient(&x, &labels);
            let mut trained = net.clone();
            let mut tr = AdamTrainer::new(trained.param_count(), 1e-3);
            let loss = trained.train_batch(&x, &labels, None, &mut tr);
            (proba, grad, loss, trained.predict_proba(&x))
        };
        let serial = run(1);
        let parallel = run(4);
        prop_assert_eq!(serial.0, parallel.0);
        prop_assert_eq!(serial.1, parallel.1);
        prop_assert_eq!(serial.2, parallel.2);
        prop_assert_eq!(serial.3, parallel.3);
    }

    #[test]
    fn big_batch_predict_equals_rowwise_predict(seed in any::<u64>(), extra in 0usize..20) {
        // Chunked prediction must equal predicting each row alone: forward
        // passes are row-independent and chunking never mixes rows.
        let rows = PREDICT_CHUNK + 1 + extra;
        let (x, _) = labeled_batch(rows, 10, seed);
        let net = MlpNet::new(&MlpConfig { input_dim: 10, hidden: vec![9], classes: 2, seed });
        let whole = net.predict_proba(&x);
        for r in [0, PREDICT_CHUNK - 1, PREDICT_CHUNK, rows - 1] {
            let single = net.predict_proba(&x.slice_rows(r, r + 1));
            prop_assert_eq!(whole.row(r), single.row(0), "row {} differs", r);
        }
    }
}
